#include "exec/scheduler.h"

#include "exec/operator_factory.h"
#include "memory/memory_manager.h"

namespace reoptdb {

Result<std::unique_ptr<PipelineExecutor>> PipelineExecutor::Create(
    ExecContext* ctx, PlanNode* root) {
  auto exec = std::unique_ptr<PipelineExecutor>(new PipelineExecutor(ctx, root));
  ASSIGN_OR_RETURN(exec->root_op_, BuildOperatorTree(ctx, root));
  exec->CollectStages(root);
  exec->IndexOps(exec->root_op_.get());
  return exec;
}

void PipelineExecutor::CollectStages(PlanNode* node) {
  // Build-side-first blocking order, shared with the MemoryManager so both
  // agree on "execution order".
  CollectBlockingOrder(node, &stages_);
}

void PipelineExecutor::IndexOps(Operator* op) {
  op_index_.emplace(op->node(), op);
  if (op->node()->kind == OpKind::kStatsCollector) {
    collectors_.emplace_back(op->node(),
                             static_cast<StatsCollectorOp*>(op));
  }
  for (const auto& c : op->children()) IndexOps(c.get());
}

Operator* PipelineExecutor::FindOp(const PlanNode* node) const {
  auto it = op_index_.find(node);
  return it == op_index_.end() ? nullptr : it->second;
}

Status PipelineExecutor::Open() {
  if (opened_) return Status::OK();
  opened_ = true;
  return root_op_->Open();
}

Status PipelineExecutor::Close() { return root_op_->Close(); }

void PipelineExecutor::SweepCollectors(StageResult* result) {
  for (auto& [node, op] : collectors_) {
    if (!op->finalized()) continue;
    if (reported_collectors_.count(node->id)) continue;
    reported_collectors_.insert(node->id);
    result->new_collectors.push_back(node);
  }
}

Result<PipelineExecutor::StageResult> PipelineExecutor::RunNextStage(
    std::vector<Tuple>* sink) {
  RETURN_IF_ERROR(ctx_->CheckCancelled());  // stage boundary
  RETURN_IF_ERROR(Open());
  StageResult result;
  if (delivery_done_)
    return Status::Internal("RunNextStage called after completion");

  if (next_stage_ < stages_.size()) {
    PlanNode* node = stages_[next_stage_++];
    Operator* op = FindOp(node);
    if (op == nullptr) return Status::Internal("stage operator not found");
    RETURN_IF_ERROR(op->EnsureBlockingPhase());
    result.stage_node = node;
    SweepCollectors(&result);
    return result;
  }

  // Delivery stage: drain the root. Cancellation/deadline is checked once
  // per pull — per batch when batched, per row otherwise.
  if (ctx_->batched()) {
    TupleBatch batch(ctx_->batch_size());
    while (true) {
      ASSIGN_OR_RETURN(bool more, root_op_->NextBatch(&batch));
      if (!more) break;
      if (sink) {
        for (Tuple& row : batch) sink->push_back(std::move(row));
      }
    }
  } else {
    Tuple row;
    while (true) {
      ASSIGN_OR_RETURN(bool more, root_op_->Next(&row));
      if (!more) break;
      if (sink) sink->push_back(std::move(row));
    }
  }
  delivery_done_ = true;
  result.finished = true;
  SweepCollectors(&result);
  return result;
}

std::vector<PlanNode*> PipelineExecutor::PendingStages() const {
  std::vector<PlanNode*> out;
  for (size_t i = next_stage_; i < stages_.size(); ++i)
    out.push_back(stages_[i]);
  return out;
}

Result<uint64_t> PipelineExecutor::MaterializeInto(PlanNode* node,
                                                   HeapFile* temp) {
  RETURN_IF_ERROR(Open());
  Operator* op = FindOp(node);
  if (op == nullptr) return Status::Internal("materialize: operator not found");
  uint64_t rows = 0;
  // A plan switch can redirect an arbitrarily large intermediate result;
  // check cancellation/deadline explicitly on every pull so a query killed
  // mid-switch stops promptly instead of writing the whole temp table.
  if (ctx_->batched()) {
    TupleBatch batch(ctx_->batch_size());
    while (true) {
      RETURN_IF_ERROR(ctx_->CheckCancelled());
      ASSIGN_OR_RETURN(bool more, op->NextBatch(&batch));
      if (!more) break;
      for (const Tuple& row : batch)
        RETURN_IF_ERROR(temp->Append(row).status());
      rows += batch.size();
    }
  } else {
    Tuple row;
    while (true) {
      RETURN_IF_ERROR(ctx_->CheckCancelled());
      ASSIGN_OR_RETURN(bool more, op->Next(&row));
      if (!more) break;
      RETURN_IF_ERROR(temp->Append(row).status());
      ++rows;
    }
  }
  RETURN_IF_ERROR(temp->Flush());
  return rows;
}

}  // namespace reoptdb
