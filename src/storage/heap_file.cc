#include "storage/heap_file.h"

#include <cstring>
#include <string>

namespace reoptdb {

namespace slotted {

// Layout: [u16 count][u16 free_end] [slot0 off,len][slot1 off,len]...
// Tuple payloads grow downward from the end of the page; free_end is the
// lowest byte used by payload data (kPageSize when empty).

namespace {
constexpr size_t kHeaderBytes = 4;
constexpr size_t kSlotBytes = 4;

uint16_t ReadU16(const Page& p, size_t off) {
  uint16_t v;
  std::memcpy(&v, p.data + off, sizeof(v));
  return v;
}
void WriteU16(Page* p, size_t off, uint16_t v) {
  std::memcpy(p->data + off, &v, sizeof(v));
}
}  // namespace

uint16_t Count(const Page& p) { return ReadU16(p, 0); }

Result<uint32_t> Insert(Page* p, const std::string& payload) {
  uint16_t count = ReadU16(*p, 0);
  uint16_t free_end = ReadU16(*p, 2);
  if (free_end == 0) free_end = static_cast<uint16_t>(kPageSize);  // fresh page

  size_t slots_end = kHeaderBytes + kSlotBytes * (count + 1);
  if (payload.size() > kPageSize - kHeaderBytes - kSlotBytes)
    return Status::InvalidArgument("tuple larger than a page");
  if (slots_end + payload.size() > free_end)
    return Status::NotSupported("page full");

  uint16_t new_free = static_cast<uint16_t>(free_end - payload.size());
  std::memcpy(p->data + new_free, payload.data(), payload.size());
  size_t slot_off = kHeaderBytes + kSlotBytes * count;
  WriteU16(p, slot_off, new_free);
  WriteU16(p, slot_off + 2, static_cast<uint16_t>(payload.size()));
  WriteU16(p, 0, static_cast<uint16_t>(count + 1));
  WriteU16(p, 2, new_free);
  return static_cast<uint32_t>(count);
}

Status Read(const Page& p, uint32_t slot, const char** data, size_t* len) {
  uint16_t count = ReadU16(p, 0);
  if (slot >= count)
    return Status::Internal("slot out of range: " + std::to_string(slot));
  size_t slot_off = kHeaderBytes + kSlotBytes * slot;
  uint16_t off = ReadU16(p, slot_off);
  uint16_t sz = ReadU16(p, slot_off + 2);
  *data = p.data + off;
  *len = sz;
  return Status::OK();
}

}  // namespace slotted

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

/// Folds one tuple payload (length, then bytes) into a chained FNV-1a
/// state. Hashing the length first makes payload boundaries unambiguous.
uint64_t FoldPayload(uint64_t h, const char* data, size_t len) {
  uint32_t n = static_cast<uint32_t>(len);
  for (size_t i = 0; i < sizeof(n); ++i) {
    h ^= (n >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  for (size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

HeapFile::~HeapFile() {
  // Best-effort: release pages so long-lived pools don't leak temp space.
  // Destroy keeps only the pages whose free actually failed, so a second
  // pass retries exactly those — a free that consumed a transient injected
  // fault (including a crash fire) must not strand its page.
  if (!Destroy().ok()) (void)Destroy();
}

Result<Rid> HeapFile::Append(const Tuple& tuple) {
  std::string payload;
  tuple.SerializeTo(&payload);

  if (!tail_) {
    tail_ = std::make_unique<Page>();
    tail_->Zero();
    tail_id_ = pool_->disk()->AllocatePage();
  }
  Result<uint32_t> slot = slotted::Insert(tail_.get(), payload);
  if (!slot.ok()) {
    if (slot.status().code() != StatusCode::kNotSupported)
      return slot.status();
    // Tail full: flush it and start a new one.
    RETURN_IF_ERROR(Flush());
    tail_ = std::make_unique<Page>();
    tail_->Zero();
    tail_id_ = pool_->disk()->AllocatePage();
    ASSIGN_OR_RETURN(uint32_t s2, slotted::Insert(tail_.get(), payload));
    slot = s2;
  }
  ++tuple_count_;
  total_tuple_bytes_ += payload.size();
  content_checksum_ = FoldPayload(content_checksum_, payload.data(),
                                  payload.size());
  return Rid{static_cast<uint32_t>(pages_.size()), slot.value()};
}

Status HeapFile::Flush() {
  if (!tail_) return Status::OK();
  RETURN_IF_ERROR(pool_->disk()->WritePage(tail_id_, *tail_));
  // Ordinal bookkeeping is maintained only while it has stayed consistent
  // (adopted files start without it and never regain it).
  if (page_first_ordinal_.size() == pages_.size())
    page_first_ordinal_.push_back(flushed_tuple_count_);
  pages_.push_back(tail_id_);
  flushed_tuple_count_ = tuple_count_;
  tail_.reset();
  tail_id_ = kInvalidPageId;
  return Status::OK();
}

Status HeapFile::MarkDeleted(const Rid& rid, uint64_t epoch) {
  const size_t flushed = pages_.size();
  if (rid.page_ordinal > flushed ||
      (rid.page_ordinal == flushed && !tail_))
    return Status::Internal("MarkDeleted: rid page out of range");
  uint64_t key = RidKey(rid);
  if (deleted_.count(key))
    return Status::Internal("MarkDeleted: rid already deleted");
  deleted_[key] = epoch;
  return Status::OK();
}

std::optional<uint64_t> HeapFile::RidOrdinal(const Rid& rid) const {
  if (rid.page_ordinal < pages_.size()) {
    if (page_first_ordinal_.size() != pages_.size()) return std::nullopt;
    return page_first_ordinal_[rid.page_ordinal] + rid.slot;
  }
  if (rid.page_ordinal == pages_.size() && tail_)
    return flushed_tuple_count_ + rid.slot;
  return std::nullopt;
}

Result<HeapFile::Checkpoint> HeapFile::CaptureCheckpoint() const {
  if (tail_)
    return Status::Internal(
        "CaptureCheckpoint requires a flushed file (tail pages are "
        "volatile)");
  Checkpoint cp;
  cp.page_count = pages_.size();
  cp.tuple_count = tuple_count_;
  cp.total_tuple_bytes = total_tuple_bytes_;
  cp.content_checksum = content_checksum_;
  cp.deleted = deleted_;
  return cp;
}

Status HeapFile::RestoreCheckpoint(const Checkpoint& cp) {
  if (cp.page_count > pages_.size())
    return Status::Internal(
        "RestoreCheckpoint: checkpoint covers more pages than the file "
        "holds");
  // Free the volatile tail first, then the flushed suffix from the end.
  // Each page is popped only after its free succeeds, so an injected
  // failure (or crash) mid-restore leaves a consistent state that a retry
  // simply resumes.
  if (tail_) {
    pool_->Discard(tail_id_);
    RETURN_IF_ERROR(pool_->disk()->FreePage(tail_id_));
    tail_.reset();
    tail_id_ = kInvalidPageId;
  }
  while (pages_.size() > cp.page_count) {
    PageId id = pages_.back();
    pool_->Discard(id);
    RETURN_IF_ERROR(pool_->disk()->FreePage(id));
    pages_.pop_back();
    if (page_first_ordinal_.size() > pages_.size())
      page_first_ordinal_.pop_back();
  }
  tuple_count_ = cp.tuple_count;
  flushed_tuple_count_ = cp.tuple_count;
  total_tuple_bytes_ = cp.total_tuple_bytes;
  content_checksum_ = cp.content_checksum;
  deleted_ = cp.deleted;
  return Status::OK();
}

Result<Tuple> HeapFile::Fetch(const Rid& rid) const {
  const size_t flushed = pages_.size();
  if (rid.page_ordinal == flushed && tail_) {
    const char* data;
    size_t len;
    RETURN_IF_ERROR(slotted::Read(*tail_, rid.slot, &data, &len));
    size_t offset = 0;
    return Tuple::Deserialize(data, len, &offset);
  }
  if (rid.page_ordinal >= flushed)
    return Status::Internal("rid page out of range");
  ASSIGN_OR_RETURN(PageGuard guard,
                   PageGuard::Fetch(pool_, pages_[rid.page_ordinal]));
  const char* data;
  size_t len;
  RETURN_IF_ERROR(slotted::Read(*guard.page(), rid.slot, &data, &len));
  size_t offset = 0;
  return Tuple::Deserialize(data, len, &offset);
}

Status HeapFile::Destroy() {
  // Best-effort: a failed free must not strand the remaining pages (the
  // destructor and temp-table cleanup retry Destroy, so only pages whose
  // free actually failed stay tracked).
  Status first_error;
  std::vector<PageId> failed;
  for (PageId id : pages_) {
    pool_->Discard(id);
    Status st = pool_->disk()->FreePage(id);
    if (!st.ok()) {
      failed.push_back(id);
      if (first_error.ok()) first_error = st;
    }
  }
  pages_ = std::move(failed);
  if (tail_) {
    Status st = pool_->disk()->FreePage(tail_id_);
    if (st.ok()) {
      tail_.reset();
      tail_id_ = kInvalidPageId;
    } else if (first_error.ok()) {
      first_error = st;
    }
  }
  page_first_ordinal_.clear();
  if (!first_error.ok()) return first_error;
  tuple_count_ = 0;
  flushed_tuple_count_ = 0;
  total_tuple_bytes_ = 0;
  content_checksum_ = kFnvOffset;
  deleted_.clear();
  return Status::OK();
}

Result<uint64_t> HeapFile::ComputeContentChecksum() const {
  uint64_t h = kFnvOffset;
  Page buf;
  for (size_t ordinal = 0; ordinal < pages_.size() + (tail_ ? 1 : 0);
       ++ordinal) {
    const Page* p;
    if (ordinal < pages_.size()) {
      RETURN_IF_ERROR(pool_->disk()->ReadPage(pages_[ordinal], &buf));
      p = &buf;
    } else {
      p = tail_.get();
    }
    uint16_t count = slotted::Count(*p);
    for (uint32_t slot = 0; slot < count; ++slot) {
      const char* data;
      size_t len;
      RETURN_IF_ERROR(slotted::Read(*p, slot, &data, &len));
      h = FoldPayload(h, data, len);
    }
  }
  return h;
}

Status HeapFile::AdoptPages(std::vector<PageId> pages, uint64_t tuple_count,
                            uint64_t total_tuple_bytes,
                            uint64_t content_checksum) {
  if (tuple_count_ != 0 || !pages_.empty() || tail_)
    return Status::InvalidArgument("AdoptPages requires an empty heap file");
  pages_ = std::move(pages);
  tuple_count_ = tuple_count;
  flushed_tuple_count_ = tuple_count;
  total_tuple_bytes_ = total_tuple_bytes;
  content_checksum_ = content_checksum;
  // Per-page ordinals are unknown for adopted pages; RidOrdinal reports
  // nullopt and callers treat rows as unconditionally in range.
  page_first_ordinal_.clear();
  return Status::OK();
}

std::vector<PageId> HeapFile::ReleasePages() {
  std::vector<PageId> released = std::move(pages_);
  pages_.clear();
  page_first_ordinal_.clear();
  if (tail_) {
    // The tail never reached the disk; like any volatile state it dies
    // with the "process".
    pool_->Discard(tail_id_);
    (void)pool_->disk()->FreePage(tail_id_);
    tail_.reset();
    tail_id_ = kInvalidPageId;
  }
  tuple_count_ = 0;
  flushed_tuple_count_ = 0;
  total_tuple_bytes_ = 0;
  content_checksum_ = kFnvOffset;
  deleted_.clear();
  return released;
}

Result<bool> HeapFile::Iterator::Next(Tuple* out) {
  while (true) {
    // The append ordinal bound ends the scan outright: rows are appended
    // in ordinal order, so everything past the bound postdates the
    // snapshot.
    if (ordinal_ >= limit_) return false;
    const size_t flushed = file_->pages_.size();
    const size_t total = flushed + (file_->tail_ ? 1 : 0);
    if (page_ordinal_ >= total) return false;
    if (!loaded_) {
      if (page_ordinal_ < flushed) {
        RETURN_IF_ERROR(
            file_->pool_->disk()->ReadPage(file_->pages_[page_ordinal_], &buf_));
      } else {
        buf_ = *file_->tail_;  // in-memory tail: no I/O
      }
      loaded_ = true;
      slot_ = 0;
    }
    uint16_t count = slotted::Count(buf_);
    if (slot_ >= count) {
      loaded_ = false;
      ++page_ordinal_;
      continue;
    }
    Rid rid{static_cast<uint32_t>(page_ordinal_), slot_};
    ++slot_;
    if (file_->IsDeletedAsOf(rid, epoch_)) {
      ++ordinal_;
      continue;
    }
    const char* data;
    size_t len;
    RETURN_IF_ERROR(slotted::Read(buf_, slot_ - 1, &data, &len));
    ++ordinal_;
    last_rid_ = rid;
    size_t offset = 0;
    RETURN_IF_ERROR(Tuple::DeserializeInto(data, len, &offset, out));
    return true;
  }
}

}  // namespace reoptdb
