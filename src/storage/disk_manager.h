// Simulated disk with exact I/O accounting.
//
// The paper's measurements (SIGMOD'98 hardware) are dominated by page I/O:
// one-pass vs. two-pass hash joins, extra materializations, wrong join
// orders. We therefore simulate the disk: pages live in host memory, and
// every page read/write increments counters that the cost model converts
// into deterministic "simulated milliseconds". This reproduces the paper's
// result *shapes* independent of 2026 hardware (see DESIGN.md §3).

#ifndef REOPTDB_STORAGE_DISK_MANAGER_H_
#define REOPTDB_STORAGE_DISK_MANAGER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/status.h"
#include "storage/page.h"

namespace reoptdb {

/// Monotonic counters of disk traffic.
struct DiskStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t pages_allocated = 0;
  uint64_t pages_freed = 0;

  DiskStats operator-(const DiskStats& o) const {
    return DiskStats{page_reads - o.page_reads, page_writes - o.page_writes,
                     pages_allocated - o.pages_allocated,
                     pages_freed - o.pages_freed};
  }
};

/// \brief Allocates, reads and writes simulated pages.
///
/// Single-threaded; the engine is a single-query-at-a-time system, like the
/// per-node data server in Paradise.
class DiskManager {
 public:
  DiskManager() = default;
  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Allocates a zeroed page and returns its id.
  PageId AllocatePage();

  /// Releases a page's storage. Reading a freed page is an error.
  Status FreePage(PageId id);

  /// Copies the page contents into `*out`, charging one read.
  Status ReadPage(PageId id, Page* out);

  /// Copies `page` to the simulated disk, charging one write.
  Status WritePage(PageId id, const Page& page);

  const DiskStats& stats() const { return stats_; }

  /// Number of live (allocated, not freed) pages.
  size_t live_pages() const { return pages_.size(); }

 private:
  std::unordered_map<PageId, std::unique_ptr<Page>> pages_;
  PageId next_id_ = 0;
  DiskStats stats_;
};

}  // namespace reoptdb

#endif  // REOPTDB_STORAGE_DISK_MANAGER_H_
