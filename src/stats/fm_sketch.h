// Flajolet-Martin probabilistic counting (PCSA) [6].
//
// Used by the statistics-collector operator to estimate the number of
// unique values of an attribute (or attribute set) in one streaming pass —
// the paper's "bitmap approach of [6]".

#ifndef REOPTDB_STATS_FM_SKETCH_H_
#define REOPTDB_STATS_FM_SKETCH_H_

#include <cstdint>

namespace reoptdb {

/// \brief PCSA distinct-count sketch with 64 bitmaps.
class FmSketch {
 public:
  FmSketch();

  /// Adds a (pre-hashed) element.
  void AddHash(uint64_t hash);

  /// Estimated number of distinct elements seen.
  double Estimate() const;

  /// Merges another sketch (union of the underlying sets).
  void Merge(const FmSketch& other);

  void Reset();

 private:
  static constexpr int kNumMaps = 64;
  uint64_t bitmaps_[kNumMaps];
};

}  // namespace reoptdb

#endif  // REOPTDB_STATS_FM_SKETCH_H_
