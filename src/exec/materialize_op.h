// Materialization: write the child's output to a temp heap, then stream it.

#ifndef REOPTDB_EXEC_MATERIALIZE_OP_H_
#define REOPTDB_EXEC_MATERIALIZE_OP_H_

#include <memory>
#include <optional>

#include "exec/operator.h"
#include "storage/heap_file.h"

namespace reoptdb {

/// \brief Pipeline breaker that forces an intermediate result to disk.
///
/// Mid-query plan modification uses the same write path via the scheduler,
/// which redirects an in-flight operator's output into a catalog temp
/// table; this operator covers plan-internal materialization.
class MaterializeOp : public Operator {
 public:
  MaterializeOp(ExecContext* ctx, PlanNode* node) : Operator(ctx, node) {}

  Status OpenImpl() override {
    RETURN_IF_ERROR(OpenChildren());
    return Status::OK();
  }

  Status BlockingPhaseImpl() override {
    if (built_) return Status::OK();
    built_ = true;
    temp_ = ctx_->MakeTempHeap();
    if (ctx_->batched()) {
      TupleBatch batch(ctx_->batch_size());
      while (true) {
        ASSIGN_OR_RETURN(bool more, child(0)->NextBatch(&batch));
        if (!more) break;
        for (const Tuple& row : batch)
          RETURN_IF_ERROR(temp_->Append(row).status());
        ctx_->ChargeTuples(batch.size());
      }
    } else {
      Tuple row;
      while (true) {
        ASSIGN_OR_RETURN(bool more, child(0)->Next(&row));
        if (!more) break;
        RETURN_IF_ERROR(temp_->Append(row).status());
        ctx_->ChargeTuples(1);
      }
    }
    RETURN_IF_ERROR(temp_->Flush());
    it_.emplace(temp_->Scan());
    return Status::OK();
  }

  Result<bool> NextImpl(Tuple* out) override {
    RETURN_IF_ERROR(EnsureBlockingPhase());
    return it_->Next(out);
  }

  Result<bool> NextBatchImpl(TupleBatch* out) override {
    RETURN_IF_ERROR(EnsureBlockingPhase());
    while (!out->full()) {
      Tuple* slot = out->AddSlot();
      ASSIGN_OR_RETURN(bool more, it_->Next(slot));
      if (!more) {
        out->PopSlot();
        break;
      }
    }
    return !out->empty();
  }

  Status CloseImpl() override {
    it_.reset();
    temp_.reset();
    return CloseChildren();
  }

 private:
  bool built_ = false;
  std::unique_ptr<HeapFile> temp_;
  std::optional<HeapFile::Iterator> it_;
};

}  // namespace reoptdb

#endif  // REOPTDB_EXEC_MATERIALIZE_OP_H_
