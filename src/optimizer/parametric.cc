#include "optimizer/parametric.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace reoptdb {

Result<ParametricPlanSet> ParametricPlanSet::Plan(
    const Catalog* catalog, const CostModel* cost,
    OptimizerOptions base_options, const QuerySpec& spec,
    std::vector<double> memory_candidates) {
  if (memory_candidates.empty())
    return Status::InvalidArgument("parametric: no memory candidates");
  std::sort(memory_candidates.begin(), memory_candidates.end());
  memory_candidates.erase(
      std::unique(memory_candidates.begin(), memory_candidates.end()),
      memory_candidates.end());

  ParametricPlanSet set;
  for (double mem : memory_candidates) {
    if (mem <= 0)
      return Status::InvalidArgument("parametric: non-positive budget");
    OptimizerOptions opts = base_options;
    opts.assumed_mem_pages = mem;
    Optimizer optimizer(catalog, cost, opts);
    ASSIGN_OR_RETURN(OptimizeResult r, optimizer.Plan(spec));
    ParametricBranch branch;
    branch.assumed_mem_pages = mem;
    branch.plan = std::move(r.plan);
    branch.plans_enumerated = r.plans_enumerated;
    set.total_sim_opt_time_ms_ += r.sim_opt_time_ms;
    set.branches_.push_back(std::move(branch));
  }
  return set;
}

const ParametricBranch& ParametricPlanSet::Pick(
    double actual_mem_pages) const {
  assert(!branches_.empty());
  const ParametricBranch* best = &branches_.front();
  double best_dist = std::numeric_limits<double>::infinity();
  for (const ParametricBranch& b : branches_) {
    double dist = std::fabs(std::log(std::max(1.0, actual_mem_pages)) -
                            std::log(std::max(1.0, b.assumed_mem_pages)));
    if (dist < best_dist) {
      best_dist = dist;
      best = &b;
    }
  }
  return *best;
}

}  // namespace reoptdb
