#include "exec/stats_collector_op.h"

#include "common/logging.h"

namespace reoptdb {

Status StatsCollectorOp::OpenImpl() {
  RETURN_IF_ERROR(OpenChildren());
  const Schema& schema = node_->output_schema;
  minmax_.assign(schema.NumColumns(), MinMax{});
  uint64_t seed = 0xc011ec70 + static_cast<uint64_t>(node_->id);
  for (const std::string& q : node_->collector.histogram_cols) {
    ASSIGN_OR_RETURN(size_t i, schema.IndexOf(q));
    hists_.push_back(
        HistCollector{i, q,
                      ReservoirSampler<double>(
                          node_->collector.reservoir_capacity, seed++)});
  }
  for (const std::string& q : node_->collector.unique_cols) {
    ASSIGN_OR_RETURN(size_t i, schema.IndexOf(q));
    uniques_.push_back(UniqueCollector{i, q, FmSketch()});
  }
  return Status::OK();
}

void StatsCollectorOp::Observe(const Tuple& t) {
  ++count_;
  bytes_ += static_cast<uint64_t>(t.SerializedSize());
  uint64_t minmax_work = 0;
  for (size_t i = 0; i < minmax_.size(); ++i) {
    const Value& v = t.at(i);
    if (v.is_string()) continue;
    ++minmax_work;
    double d = v.AsNumeric();
    MinMax& mm = minmax_[i];
    if (!mm.seen) {
      mm.min = mm.max = d;
      mm.seen = true;
    } else {
      if (d < mm.min) mm.min = d;
      if (d > mm.max) mm.max = d;
    }
  }
  for (HistCollector& h : hists_) {
    const Value& v = t.at(h.col);
    if (!v.is_string()) h.sample.Add(v.AsNumeric());
  }
  for (UniqueCollector& u : uniques_) u.sketch.AddHash(t.at(u.col).Hash());
  // Min/max maintenance runs over every numeric column and was formerly
  // never charged; it is real work that must show up in simulated time so
  // collection overhead reflects what the estimates accounted for.
  if (minmax_work > 0) ctx_->ChargeMinMax(minmax_work);
  uint64_t charged = hists_.size() + uniques_.size();
  if (charged > 0) ctx_->ChargeStat(charged);
}

void StatsCollectorOp::ObserveBatch(const TupleBatch& batch) {
  // Single row-major pass (each tuple is visited once while cache-hot) with
  // the simulated-time charges accumulated and applied once per batch. The
  // per-column value stream seen by each sampler/sketch is in row order,
  // exactly as in the row-at-a-time path, so the collected statistics are
  // bit-identical.
  const size_t n = batch.size();
  count_ += n;
  uint64_t bytes = 0;
  uint64_t minmax_work = 0;
  for (const Tuple& t : batch) {
    bytes += static_cast<uint64_t>(t.SerializedSize());
    for (size_t i = 0; i < minmax_.size(); ++i) {
      const Value& v = t.at(i);
      if (v.is_string()) continue;
      ++minmax_work;
      double d = v.AsNumeric();
      MinMax& mm = minmax_[i];
      if (!mm.seen) {
        mm.min = mm.max = d;
        mm.seen = true;
      } else {
        if (d < mm.min) mm.min = d;
        if (d > mm.max) mm.max = d;
      }
    }
    for (HistCollector& h : hists_) {
      const Value& v = t.at(h.col);
      if (!v.is_string()) h.sample.Add(v.AsNumeric());
    }
    for (UniqueCollector& u : uniques_) u.sketch.AddHash(t.at(u.col).Hash());
  }
  bytes_ += bytes;
  if (minmax_work > 0) ctx_->ChargeMinMax(minmax_work);
  uint64_t charged =
      (hists_.size() + uniques_.size()) * static_cast<uint64_t>(n);
  if (charged > 0) ctx_->ChargeStat(charged);
}

void StatsCollectorOp::Finalize() {
  finalized_ = true;
  ObservedStats obs;
  obs.valid = true;
  obs.cardinality = static_cast<double>(count_);
  obs.avg_tuple_bytes = count_ > 0 ? bytes_ / static_cast<double>(count_) : 0;

  const Schema& schema = node_->output_schema;
  for (size_t i = 0; i < schema.NumColumns(); ++i) {
    if (!minmax_[i].seen) continue;
    ColumnStats cs;
    cs.type = schema.column(i).type;
    cs.has_bounds = true;
    cs.min = minmax_[i].min;
    cs.max = minmax_[i].max;
    cs.avg_width = schema.column(i).avg_width;
    obs.columns[schema.column(i).QualifiedName()] = std::move(cs);
  }
  for (HistCollector& h : hists_) {
    ColumnStats& cs = obs.columns[h.qualified];
    // Run-time histograms can be specific to their purpose (Section 2.2);
    // we always build the serial-family MaxDiff kind.
    cs.histogram = Histogram::Build(HistogramKind::kMaxDiff,
                                    h.sample.sample(),
                                    node_->collector.num_buckets,
                                    static_cast<double>(count_));
    if (cs.histogram.kind() != HistogramKind::kNone)
      cs.distinct = cs.histogram.EstimateDistinct();
  }
  for (UniqueCollector& u : uniques_) {
    ColumnStats& cs = obs.columns[u.qualified];
    double est = u.sketch.Estimate();
    cs.distinct = std::min(est, static_cast<double>(count_));
  }

  node_->observed = obs;
  if (!node_->children.empty()) node_->children[0]->observed = obs;
  ctx_->NotifyCollectorFinalized(node_);
  REOPTDB_LOG(kDebug) << "collector " << node_->id << " finalized: rows="
                      << count_;
}

Result<bool> StatsCollectorOp::NextImpl(Tuple* out) {
  ASSIGN_OR_RETURN(bool more, child(0)->Next(out));
  if (!more) {
    if (!finalized_) Finalize();
    return false;
  }
  Observe(*out);
  return true;
}

Result<bool> StatsCollectorOp::NextBatchImpl(TupleBatch* out) {
  // Pass-through: the child fills the caller's batch directly and we observe
  // it in place, so collection adds no copy to the batched pipeline.
  ASSIGN_OR_RETURN(bool more, child(0)->NextBatch(out));
  if (!more) {
    if (!finalized_) Finalize();
    return false;
  }
  ObserveBatch(*out);
  return true;
}

Status StatsCollectorOp::CloseImpl() {
  // Closing before the input is exhausted (plan switch, early limit): the
  // tuples seen so far are still a valid *lower bound* on the edge's
  // cardinality and distinct counts. Publish them tagged partial so the
  // feedback store can raise estimates without ever treating a prefix as
  // exact. Min/max and histograms are omitted: a prefix is scan-order
  // biased and would fabricate tight bounds. The dispatcher is not
  // notified and finalized_ stays false — partial stats never trigger the
  // controller's improved-estimate refresh.
  if (!finalized_ && count_ > 0 && !node_->observed.valid) {
    ObservedStats obs;
    obs.valid = true;
    obs.partial = true;
    obs.cardinality = static_cast<double>(count_);
    obs.avg_tuple_bytes = bytes_ / static_cast<double>(count_);
    for (UniqueCollector& u : uniques_) {
      ColumnStats& cs = obs.columns[u.qualified];
      cs.type = node_->output_schema.column(u.col).type;
      cs.avg_width = node_->output_schema.column(u.col).avg_width;
      cs.distinct = std::min(u.sketch.Estimate(), static_cast<double>(count_));
      cs.distinct_is_lower_bound = true;
    }
    node_->observed = obs;
    if (!node_->children.empty()) node_->children[0]->observed = obs;
  }
  return CloseChildren();
}

}  // namespace reoptdb
