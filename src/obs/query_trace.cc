#include "obs/query_trace.h"

#include <cstdio>

#include "obs/json.h"

namespace reoptdb {

namespace {

using obs::JsonValue;

std::string Ms(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

double GetNum(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->is_number() ? v->AsNumber() : 0;
}

bool GetBool(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->is_bool() && v->AsBool();
}

std::string GetStr(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : std::string();
}

Status ExpectArray(const JsonValue& root, const char* key,
                   const JsonValue** out) {
  const JsonValue* v = root.Find(key);
  if (v == nullptr || !v->is_array())
    return Status::ParseError(std::string("trace: missing array '") + key +
                              "'");
  *out = v;
  return Status::OK();
}

JsonValue SpanJson(const OperatorSpan& s) {
  JsonValue o = JsonValue::MakeObject();
  o.Set("gen", JsonValue::MakeNumber(s.plan_generation));
  o.Set("node", JsonValue::MakeNumber(s.node_id));
  o.Set("op", JsonValue::MakeString(s.op));
  o.Set("detail", JsonValue::MakeString(s.detail));
  o.Set("open_at_ms", JsonValue::MakeNumber(s.open_at_ms));
  o.Set("close_at_ms", JsonValue::MakeNumber(s.close_at_ms));
  o.Set("blocking_ms", JsonValue::MakeNumber(s.blocking_ms));
  o.Set("next_ms", JsonValue::MakeNumber(s.next_ms));
  o.Set("next_calls", JsonValue::MakeNumber(static_cast<double>(s.next_calls)));
  o.Set("rows", JsonValue::MakeNumber(static_cast<double>(s.rows)));
  o.Set("page_ios", JsonValue::MakeNumber(static_cast<double>(s.page_ios)));
  return o;
}

OperatorSpan SpanFromJson(const JsonValue& o) {
  OperatorSpan s;
  s.plan_generation = static_cast<int>(GetNum(o, "gen"));
  s.node_id = static_cast<int>(GetNum(o, "node"));
  s.op = GetStr(o, "op");
  s.detail = GetStr(o, "detail");
  s.open_at_ms = GetNum(o, "open_at_ms");
  s.close_at_ms = GetNum(o, "close_at_ms");
  s.blocking_ms = GetNum(o, "blocking_ms");
  s.next_ms = GetNum(o, "next_ms");
  s.next_calls = static_cast<uint64_t>(GetNum(o, "next_calls"));
  s.rows = static_cast<uint64_t>(GetNum(o, "rows"));
  s.page_ios = static_cast<uint64_t>(GetNum(o, "page_ios"));
  return s;
}

}  // namespace

std::string QueryTrace::ToJson() const {
  JsonValue root = JsonValue::MakeObject();

  JsonValue cfg = JsonValue::MakeObject();
  cfg.Set("mode", JsonValue::MakeString(config.mode));
  cfg.Set("mu", JsonValue::MakeNumber(config.mu));
  cfg.Set("theta1", JsonValue::MakeNumber(config.theta1));
  cfg.Set("theta2", JsonValue::MakeNumber(config.theta2));
  cfg.Set("mid_execution_memory",
          JsonValue::MakeBool(config.mid_execution_memory));
  root.Set("config", std::move(cfg));

  JsonValue spans_j = JsonValue::MakeArray();
  for (const OperatorSpan& s : spans) spans_j.Append(SpanJson(s));
  root.Set("spans", std::move(spans_j));

  JsonValue eq2_j = JsonValue::MakeArray();
  for (const Eq2Check& r : eq2_checks) {
    JsonValue o = JsonValue::MakeObject();
    o.Set("stage_node_id", JsonValue::MakeNumber(r.stage_node_id));
    o.Set("improved", JsonValue::MakeNumber(r.improved));
    o.Set("est", JsonValue::MakeNumber(r.est));
    o.Set("degradation", JsonValue::MakeNumber(r.degradation));
    o.Set("theta2", JsonValue::MakeNumber(r.theta2));
    o.Set("fired", JsonValue::MakeBool(r.fired));
    o.Set("revocation_only", JsonValue::MakeBool(r.revocation_only));
    o.Set("stats_churn", JsonValue::MakeBool(r.stats_churn));
    o.Set("integrity_recheck", JsonValue::MakeBool(r.integrity_recheck));
    eq2_j.Append(std::move(o));
  }
  root.Set("eq2_checks", std::move(eq2_j));

  JsonValue eq1_j = JsonValue::MakeArray();
  for (const Eq1Check& r : eq1_checks) {
    JsonValue o = JsonValue::MakeObject();
    o.Set("stage_node_id", JsonValue::MakeNumber(r.stage_node_id));
    o.Set("t_opt_est", JsonValue::MakeNumber(r.t_opt_est));
    o.Set("rem_cur", JsonValue::MakeNumber(r.rem_cur));
    o.Set("theta1", JsonValue::MakeNumber(r.theta1));
    o.Set("fired", JsonValue::MakeBool(r.fired));
    eq1_j.Append(std::move(o));
  }
  root.Set("eq1_checks", std::move(eq1_j));

  JsonValue sw_j = JsonValue::MakeArray();
  for (const SwitchDecision& r : switches) {
    JsonValue o = JsonValue::MakeObject();
    o.Set("stage_node_id", JsonValue::MakeNumber(r.stage_node_id));
    o.Set("rem_cur", JsonValue::MakeNumber(r.rem_cur));
    o.Set("rem_new", JsonValue::MakeNumber(r.rem_new));
    o.Set("accepted", JsonValue::MakeBool(r.accepted));
    o.Set("temp_table", JsonValue::MakeString(r.temp_table));
    o.Set("mat_rows", JsonValue::MakeNumber(static_cast<double>(r.mat_rows)));
    sw_j.Append(std::move(o));
  }
  root.Set("switches", std::move(sw_j));

  JsonValue mr_j = JsonValue::MakeArray();
  for (const MemoryReallocation& r : memory_reallocations) {
    JsonValue o = JsonValue::MakeObject();
    o.Set("trigger_node_id", JsonValue::MakeNumber(r.trigger_node_id));
    o.Set("mid_execution", JsonValue::MakeBool(r.mid_execution));
    o.Set("before_ms", JsonValue::MakeNumber(r.before_ms));
    o.Set("after_ms", JsonValue::MakeNumber(r.after_ms));
    o.Set("kept", JsonValue::MakeBool(r.kept));
    mr_j.Append(std::move(o));
  }
  root.Set("memory_reallocations", std::move(mr_j));

  JsonValue bc_j = JsonValue::MakeArray();
  for (const BudgetChange& r : budget_changes) {
    JsonValue o = JsonValue::MakeObject();
    o.Set("gen", JsonValue::MakeNumber(r.plan_generation));
    o.Set("node", JsonValue::MakeNumber(r.node_id));
    o.Set("at_ms", JsonValue::MakeNumber(r.at_ms));
    o.Set("before_pages", JsonValue::MakeNumber(r.before_pages));
    o.Set("after_pages", JsonValue::MakeNumber(r.after_pages));
    bc_j.Append(std::move(o));
  }
  root.Set("budget_changes", std::move(bc_j));

  JsonValue rf_j = JsonValue::MakeArray();
  for (const ReoptFailure& r : reopt_failures) {
    JsonValue o = JsonValue::MakeObject();
    o.Set("point", JsonValue::MakeString(r.point));
    o.Set("status", JsonValue::MakeString(r.status));
    o.Set("action", JsonValue::MakeString(r.action));
    o.Set("attempts", JsonValue::MakeNumber(r.attempts));
    o.Set("stage_node_id", JsonValue::MakeNumber(r.stage_node_id));
    o.Set("at_ms", JsonValue::MakeNumber(r.at_ms));
    rf_j.Append(std::move(o));
  }
  root.Set("reopt_failures", std::move(rf_j));

  JsonValue dg_j = JsonValue::MakeArray();
  for (const DegradationEvent& r : degradations) {
    JsonValue o = JsonValue::MakeObject();
    o.Set("from_mode", JsonValue::MakeString(r.from_mode));
    o.Set("to_mode", JsonValue::MakeString(r.to_mode));
    o.Set("failures", JsonValue::MakeNumber(r.failures));
    o.Set("at_ms", JsonValue::MakeNumber(r.at_ms));
    dg_j.Append(std::move(o));
  }
  root.Set("degradations", std::move(dg_j));

  JsonValue rc_j = JsonValue::MakeArray();
  for (const RecoveryEvent& r : recoveries) {
    JsonValue o = JsonValue::MakeObject();
    o.Set("stage", JsonValue::MakeNumber(r.stage));
    o.Set("temp_table", JsonValue::MakeString(r.temp_table));
    o.Set("rows", JsonValue::MakeNumber(static_cast<double>(r.rows)));
    o.Set("skipped_work_ms", JsonValue::MakeNumber(r.skipped_work_ms));
    o.Set("fingerprint_match", JsonValue::MakeBool(r.fingerprint_match));
    o.Set("resumed", JsonValue::MakeBool(r.resumed));
    rc_j.Append(std::move(o));
  }
  root.Set("recoveries", std::move(rc_j));

  JsonValue fb_j = JsonValue::MakeArray();
  for (const RecoveryFallback& r : recovery_fallbacks) {
    JsonValue o = JsonValue::MakeObject();
    o.Set("reason", JsonValue::MakeString(r.reason));
    fb_j.Append(std::move(o));
  }
  root.Set("recovery_fallbacks", std::move(fb_j));

  JsonValue sp_j = JsonValue::MakeArray();
  for (const SpillEvent& r : spills) {
    JsonValue o = JsonValue::MakeObject();
    o.Set("gen", JsonValue::MakeNumber(r.plan_generation));
    o.Set("node", JsonValue::MakeNumber(r.node_id));
    o.Set("op", JsonValue::MakeString(r.op));
    o.Set("reason", JsonValue::MakeString(r.reason));
    o.Set("partitions", JsonValue::MakeNumber(r.partitions));
    o.Set("at_ms", JsonValue::MakeNumber(r.at_ms));
    sp_j.Append(std::move(o));
  }
  root.Set("spills", std::move(sp_j));

  JsonValue rv_j = JsonValue::MakeArray();
  for (const RevocationEvent& r : revocations) {
    JsonValue o = JsonValue::MakeObject();
    o.Set("victim", JsonValue::MakeNumber(static_cast<double>(r.victim_query_id)));
    o.Set("beneficiary",
          JsonValue::MakeNumber(static_cast<double>(r.beneficiary_query_id)));
    o.Set("pages", JsonValue::MakeNumber(r.pages));
    o.Set("victim_grant_after", JsonValue::MakeNumber(r.victim_grant_after));
    o.Set("at_ms", JsonValue::MakeNumber(r.at_ms));
    rv_j.Append(std::move(o));
  }
  root.Set("revocations", std::move(rv_j));

  JsonValue fa_j = JsonValue::MakeArray();
  for (const FeedbackApplied& r : feedback_applied) {
    JsonValue o = JsonValue::MakeObject();
    o.Set("scope", JsonValue::MakeString(r.scope));
    o.Set("table", JsonValue::MakeString(r.table));
    o.Set("signature", JsonValue::MakeString(r.signature));
    o.Set("est_rows", JsonValue::MakeNumber(r.est_rows));
    o.Set("fb_rows", JsonValue::MakeNumber(r.fb_rows));
    o.Set("partial", JsonValue::MakeBool(r.partial));
    fa_j.Append(std::move(o));
  }
  root.Set("feedback_applied", std::move(fa_j));

  JsonValue pc_j = JsonValue::MakeArray();
  for (const PlanCacheHit& r : plan_cache_hits) {
    JsonValue o = JsonValue::MakeObject();
    o.Set("sql", JsonValue::MakeString(r.sql));
    o.Set("saved_opt_ms", JsonValue::MakeNumber(r.saved_opt_ms));
    o.Set("entry_hits", JsonValue::MakeNumber(r.entry_hits));
    pc_j.Append(std::move(o));
  }
  root.Set("plan_cache_hits", std::move(pc_j));

  JsonValue mrep_j = JsonValue::MakeArray();
  for (const MemoRepair& r : memo_repairs) {
    JsonValue o = JsonValue::MakeObject();
    o.Set("stage_node_id", JsonValue::MakeNumber(r.stage_node_id));
    o.Set("entries_total",
          JsonValue::MakeNumber(static_cast<double>(r.entries_total)));
    o.Set("entries_invalidated",
          JsonValue::MakeNumber(static_cast<double>(r.entries_invalidated)));
    o.Set("entries_reused",
          JsonValue::MakeNumber(static_cast<double>(r.entries_reused)));
    o.Set("offers_repaired",
          JsonValue::MakeNumber(static_cast<double>(r.offers_repaired)));
    o.Set("leaves_changed", JsonValue::MakeNumber(r.leaves_changed));
    o.Set("fell_back", JsonValue::MakeBool(r.fell_back));
    o.Set("incremental_ms", JsonValue::MakeNumber(r.incremental_ms));
    o.Set("scratch_est_ms", JsonValue::MakeNumber(r.scratch_est_ms));
    mrep_j.Append(std::move(o));
  }
  root.Set("memo_repairs", std::move(mrep_j));

  JsonValue sk_j = JsonValue::MakeArray();
  for (const ShardSkewRecord& r : shard_skews) {
    JsonValue o = JsonValue::MakeObject();
    o.Set("stage", JsonValue::MakeNumber(r.stage));
    o.Set("node", JsonValue::MakeNumber(r.node));
    o.Set("node_rows", JsonValue::MakeNumber(static_cast<double>(r.node_rows)));
    o.Set("est_share", JsonValue::MakeNumber(r.est_share));
    o.Set("skew_factor", JsonValue::MakeNumber(r.skew_factor));
    sk_j.Append(std::move(o));
  }
  root.Set("shard_skews", std::move(sk_j));

  JsonValue st_j = JsonValue::MakeArray();
  for (const StragglerRecord& r : stragglers) {
    JsonValue o = JsonValue::MakeObject();
    o.Set("stage", JsonValue::MakeNumber(r.stage));
    o.Set("node", JsonValue::MakeNumber(r.node));
    o.Set("node_ms", JsonValue::MakeNumber(r.node_ms));
    o.Set("percentile_ms", JsonValue::MakeNumber(r.percentile_ms));
    o.Set("new_weight", JsonValue::MakeNumber(r.new_weight));
    st_j.Append(std::move(o));
  }
  root.Set("stragglers", std::move(st_j));

  JsonValue nl_j = JsonValue::MakeArray();
  for (const NodeLostRecord& r : node_losses) {
    JsonValue o = JsonValue::MakeObject();
    o.Set("stage", JsonValue::MakeNumber(r.stage));
    o.Set("node", JsonValue::MakeNumber(r.node));
    o.Set("reason", JsonValue::MakeString(r.reason));
    o.Set("survivors", JsonValue::MakeNumber(r.survivors));
    o.Set("rehomed_rows",
          JsonValue::MakeNumber(static_cast<double>(r.rehomed_rows)));
    o.Set("journal_resume", JsonValue::MakeBool(r.journal_resume));
    o.Set("promoted_rows",
          JsonValue::MakeNumber(static_cast<double>(r.promoted_rows)));
    o.Set("coordinator_rows",
          JsonValue::MakeNumber(static_cast<double>(r.coordinator_rows)));
    o.Set("epoch", JsonValue::MakeNumber(static_cast<double>(r.epoch)));
    nl_j.Append(std::move(o));
  }
  root.Set("node_losses", std::move(nl_j));

  JsonValue ds_j = JsonValue::MakeArray();
  for (const DistributionSwitchRecord& r : distribution_switches) {
    JsonValue o = JsonValue::MakeObject();
    o.Set("stage", JsonValue::MakeNumber(r.stage));
    o.Set("from", JsonValue::MakeString(r.from));
    o.Set("to", JsonValue::MakeString(r.to));
    o.Set("reason", JsonValue::MakeString(r.reason));
    o.Set("est_ms", JsonValue::MakeNumber(r.est_ms));
    o.Set("new_ms", JsonValue::MakeNumber(r.new_ms));
    ds_j.Append(std::move(o));
  }
  root.Set("distribution_switches", std::move(ds_j));

  JsonValue ns_j = JsonValue::MakeArray();
  for (const NodeSuspectRecord& r : node_suspects) {
    JsonValue o = JsonValue::MakeObject();
    o.Set("stage", JsonValue::MakeNumber(r.stage));
    o.Set("node", JsonValue::MakeNumber(r.node));
    o.Set("reason", JsonValue::MakeString(r.reason));
    o.Set("missed_beats", JsonValue::MakeNumber(r.missed_beats));
    o.Set("lease_remaining_ms", JsonValue::MakeNumber(r.lease_remaining_ms));
    ns_j.Append(std::move(o));
  }
  root.Set("node_suspects", std::move(ns_j));

  JsonValue ef_j = JsonValue::MakeArray();
  for (const EpochFenceRecord& r : epoch_fences) {
    JsonValue o = JsonValue::MakeObject();
    o.Set("stage", JsonValue::MakeNumber(r.stage));
    o.Set("node", JsonValue::MakeNumber(r.node));
    o.Set("stale_epoch",
          JsonValue::MakeNumber(static_cast<double>(r.stale_epoch)));
    o.Set("current_epoch",
          JsonValue::MakeNumber(static_cast<double>(r.current_epoch)));
    o.Set("fenced_rows",
          JsonValue::MakeNumber(static_cast<double>(r.fenced_rows)));
    ef_j.Append(std::move(o));
  }
  root.Set("epoch_fences", std::move(ef_j));

  JsonValue rr_j = JsonValue::MakeArray();
  for (const ReplicaRepairRecord& r : replica_repairs) {
    JsonValue o = JsonValue::MakeObject();
    o.Set("table", JsonValue::MakeString(r.table));
    o.Set("node", JsonValue::MakeNumber(r.node));
    o.Set("role", JsonValue::MakeString(r.role));
    o.Set("source", JsonValue::MakeString(r.source));
    o.Set("rows", JsonValue::MakeNumber(static_cast<double>(r.rows)));
    o.Set("sim_ms", JsonValue::MakeNumber(r.sim_ms));
    rr_j.Append(std::move(o));
  }
  root.Set("replica_repairs", std::move(rr_j));

  JsonValue sr_j = JsonValue::MakeArray();
  for (const ScrubReportRecord& r : scrub_reports) {
    JsonValue o = JsonValue::MakeObject();
    o.Set("table", JsonValue::MakeString(r.table));
    o.Set("node", JsonValue::MakeNumber(r.node));
    o.Set("role", JsonValue::MakeString(r.role));
    o.Set("finding", JsonValue::MakeString(r.finding));
    o.Set("rows_expected",
          JsonValue::MakeNumber(static_cast<double>(r.rows_expected)));
    o.Set("repaired", JsonValue::MakeBool(r.repaired));
    sr_j.Append(std::move(o));
  }
  root.Set("scrub_reports", std::move(sr_j));

  return root.Serialize();
}

Result<QueryTrace> QueryTrace::FromJson(const std::string& json) {
  ASSIGN_OR_RETURN(JsonValue root, obs::ParseJson(json));
  if (!root.is_object()) return Status::ParseError("trace: not an object");
  QueryTrace t;

  const JsonValue* cfg = root.Find("config");
  if (cfg == nullptr || !cfg->is_object())
    return Status::ParseError("trace: missing 'config'");
  t.config.mode = GetStr(*cfg, "mode");
  t.config.mu = GetNum(*cfg, "mu");
  t.config.theta1 = GetNum(*cfg, "theta1");
  t.config.theta2 = GetNum(*cfg, "theta2");
  t.config.mid_execution_memory = GetBool(*cfg, "mid_execution_memory");

  const JsonValue* arr = nullptr;
  RETURN_IF_ERROR(ExpectArray(root, "spans", &arr));
  for (const JsonValue& o : arr->items()) t.spans.push_back(SpanFromJson(o));

  RETURN_IF_ERROR(ExpectArray(root, "eq2_checks", &arr));
  for (const JsonValue& o : arr->items()) {
    Eq2Check r;
    r.stage_node_id = static_cast<int>(GetNum(o, "stage_node_id"));
    r.improved = GetNum(o, "improved");
    r.est = GetNum(o, "est");
    r.degradation = GetNum(o, "degradation");
    r.theta2 = GetNum(o, "theta2");
    r.fired = GetBool(o, "fired");
    r.revocation_only = GetBool(o, "revocation_only");
    r.stats_churn = GetBool(o, "stats_churn");
    r.integrity_recheck = GetBool(o, "integrity_recheck");
    t.eq2_checks.push_back(r);
  }

  RETURN_IF_ERROR(ExpectArray(root, "eq1_checks", &arr));
  for (const JsonValue& o : arr->items()) {
    Eq1Check r;
    r.stage_node_id = static_cast<int>(GetNum(o, "stage_node_id"));
    r.t_opt_est = GetNum(o, "t_opt_est");
    r.rem_cur = GetNum(o, "rem_cur");
    r.theta1 = GetNum(o, "theta1");
    r.fired = GetBool(o, "fired");
    t.eq1_checks.push_back(r);
  }

  RETURN_IF_ERROR(ExpectArray(root, "switches", &arr));
  for (const JsonValue& o : arr->items()) {
    SwitchDecision r;
    r.stage_node_id = static_cast<int>(GetNum(o, "stage_node_id"));
    r.rem_cur = GetNum(o, "rem_cur");
    r.rem_new = GetNum(o, "rem_new");
    r.accepted = GetBool(o, "accepted");
    r.temp_table = GetStr(o, "temp_table");
    r.mat_rows = static_cast<uint64_t>(GetNum(o, "mat_rows"));
    t.switches.push_back(std::move(r));
  }

  RETURN_IF_ERROR(ExpectArray(root, "memory_reallocations", &arr));
  for (const JsonValue& o : arr->items()) {
    MemoryReallocation r;
    r.trigger_node_id = static_cast<int>(GetNum(o, "trigger_node_id"));
    r.mid_execution = GetBool(o, "mid_execution");
    r.before_ms = GetNum(o, "before_ms");
    r.after_ms = GetNum(o, "after_ms");
    r.kept = GetBool(o, "kept");
    t.memory_reallocations.push_back(r);
  }

  RETURN_IF_ERROR(ExpectArray(root, "budget_changes", &arr));
  for (const JsonValue& o : arr->items()) {
    BudgetChange r;
    r.plan_generation = static_cast<int>(GetNum(o, "gen"));
    r.node_id = static_cast<int>(GetNum(o, "node"));
    r.at_ms = GetNum(o, "at_ms");
    r.before_pages = GetNum(o, "before_pages");
    r.after_pages = GetNum(o, "after_pages");
    t.budget_changes.push_back(r);
  }

  // Failure/degradation arrays are optional so traces serialized before
  // the fault-tolerance layer still parse.
  if (const JsonValue* rf = root.Find("reopt_failures");
      rf != nullptr && rf->is_array()) {
    for (const JsonValue& o : rf->items()) {
      ReoptFailure r;
      r.point = GetStr(o, "point");
      r.status = GetStr(o, "status");
      r.action = GetStr(o, "action");
      r.attempts = static_cast<int>(GetNum(o, "attempts"));
      r.stage_node_id = static_cast<int>(GetNum(o, "stage_node_id"));
      r.at_ms = GetNum(o, "at_ms");
      t.reopt_failures.push_back(std::move(r));
    }
  }
  if (const JsonValue* dg = root.Find("degradations");
      dg != nullptr && dg->is_array()) {
    for (const JsonValue& o : dg->items()) {
      DegradationEvent r;
      r.from_mode = GetStr(o, "from_mode");
      r.to_mode = GetStr(o, "to_mode");
      r.failures = static_cast<int>(GetNum(o, "failures"));
      r.at_ms = GetNum(o, "at_ms");
      t.degradations.push_back(std::move(r));
    }
  }
  if (const JsonValue* rc = root.Find("recoveries");
      rc != nullptr && rc->is_array()) {
    for (const JsonValue& o : rc->items()) {
      RecoveryEvent r;
      r.stage = static_cast<int>(GetNum(o, "stage"));
      r.temp_table = GetStr(o, "temp_table");
      r.rows = static_cast<uint64_t>(GetNum(o, "rows"));
      r.skipped_work_ms = GetNum(o, "skipped_work_ms");
      r.fingerprint_match = GetBool(o, "fingerprint_match");
      r.resumed = GetBool(o, "resumed");
      t.recoveries.push_back(std::move(r));
    }
  }
  if (const JsonValue* fb = root.Find("recovery_fallbacks");
      fb != nullptr && fb->is_array()) {
    for (const JsonValue& o : fb->items()) {
      RecoveryFallback r;
      r.reason = GetStr(o, "reason");
      t.recovery_fallbacks.push_back(std::move(r));
    }
  }
  // Spill/revocation arrays are optional so traces serialized before the
  // multi-query overload layer still parse.
  if (const JsonValue* sp = root.Find("spills");
      sp != nullptr && sp->is_array()) {
    for (const JsonValue& o : sp->items()) {
      SpillEvent r;
      r.plan_generation = static_cast<int>(GetNum(o, "gen"));
      r.node_id = static_cast<int>(GetNum(o, "node"));
      r.op = GetStr(o, "op");
      r.reason = GetStr(o, "reason");
      r.partitions = static_cast<int>(GetNum(o, "partitions"));
      r.at_ms = GetNum(o, "at_ms");
      t.spills.push_back(std::move(r));
    }
  }
  if (const JsonValue* rv = root.Find("revocations");
      rv != nullptr && rv->is_array()) {
    for (const JsonValue& o : rv->items()) {
      RevocationEvent r;
      r.victim_query_id = static_cast<uint64_t>(GetNum(o, "victim"));
      r.beneficiary_query_id = static_cast<uint64_t>(GetNum(o, "beneficiary"));
      r.pages = GetNum(o, "pages");
      r.victim_grant_after = GetNum(o, "victim_grant_after");
      r.at_ms = GetNum(o, "at_ms");
      t.revocations.push_back(r);
    }
  }
  // Feedback/plan-cache arrays are optional so traces serialized before the
  // cardinality-feedback layer still parse.
  if (const JsonValue* fa = root.Find("feedback_applied");
      fa != nullptr && fa->is_array()) {
    for (const JsonValue& o : fa->items()) {
      FeedbackApplied r;
      r.scope = GetStr(o, "scope");
      r.table = GetStr(o, "table");
      r.signature = GetStr(o, "signature");
      r.est_rows = GetNum(o, "est_rows");
      r.fb_rows = GetNum(o, "fb_rows");
      r.partial = GetBool(o, "partial");
      t.feedback_applied.push_back(std::move(r));
    }
  }
  if (const JsonValue* pc = root.Find("plan_cache_hits");
      pc != nullptr && pc->is_array()) {
    for (const JsonValue& o : pc->items()) {
      PlanCacheHit r;
      r.sql = GetStr(o, "sql");
      r.saved_opt_ms = GetNum(o, "saved_opt_ms");
      r.entry_hits = static_cast<int>(GetNum(o, "entry_hits"));
      t.plan_cache_hits.push_back(std::move(r));
    }
  }
  // Memo-repair array is optional so traces serialized before the
  // incremental re-optimizer still parse.
  if (const JsonValue* mrep = root.Find("memo_repairs");
      mrep != nullptr && mrep->is_array()) {
    for (const JsonValue& o : mrep->items()) {
      MemoRepair r;
      r.stage_node_id = static_cast<int>(GetNum(o, "stage_node_id"));
      r.entries_total = static_cast<uint64_t>(GetNum(o, "entries_total"));
      r.entries_invalidated =
          static_cast<uint64_t>(GetNum(o, "entries_invalidated"));
      r.entries_reused = static_cast<uint64_t>(GetNum(o, "entries_reused"));
      r.offers_repaired = static_cast<uint64_t>(GetNum(o, "offers_repaired"));
      r.leaves_changed = static_cast<int>(GetNum(o, "leaves_changed"));
      r.fell_back = GetBool(o, "fell_back");
      r.incremental_ms = GetNum(o, "incremental_ms");
      r.scratch_est_ms = GetNum(o, "scratch_est_ms");
      t.memo_repairs.push_back(r);
    }
  }
  // Shard arrays are optional so traces serialized before the sharded
  // execution layer still parse.
  if (const JsonValue* sk = root.Find("shard_skews");
      sk != nullptr && sk->is_array()) {
    for (const JsonValue& o : sk->items()) {
      ShardSkewRecord r;
      r.stage = static_cast<int>(GetNum(o, "stage"));
      r.node = static_cast<int>(GetNum(o, "node"));
      r.node_rows = static_cast<uint64_t>(GetNum(o, "node_rows"));
      r.est_share = GetNum(o, "est_share");
      r.skew_factor = GetNum(o, "skew_factor");
      t.shard_skews.push_back(r);
    }
  }
  if (const JsonValue* st = root.Find("stragglers");
      st != nullptr && st->is_array()) {
    for (const JsonValue& o : st->items()) {
      StragglerRecord r;
      r.stage = static_cast<int>(GetNum(o, "stage"));
      r.node = static_cast<int>(GetNum(o, "node"));
      r.node_ms = GetNum(o, "node_ms");
      r.percentile_ms = GetNum(o, "percentile_ms");
      r.new_weight = GetNum(o, "new_weight");
      t.stragglers.push_back(r);
    }
  }
  if (const JsonValue* nl = root.Find("node_losses");
      nl != nullptr && nl->is_array()) {
    for (const JsonValue& o : nl->items()) {
      NodeLostRecord r;
      r.stage = static_cast<int>(GetNum(o, "stage"));
      r.node = static_cast<int>(GetNum(o, "node"));
      r.reason = GetStr(o, "reason");
      r.survivors = static_cast<int>(GetNum(o, "survivors"));
      r.rehomed_rows = static_cast<uint64_t>(GetNum(o, "rehomed_rows"));
      r.journal_resume = GetBool(o, "journal_resume");
      r.promoted_rows = static_cast<uint64_t>(GetNum(o, "promoted_rows"));
      r.coordinator_rows =
          static_cast<uint64_t>(GetNum(o, "coordinator_rows"));
      r.epoch = static_cast<uint64_t>(GetNum(o, "epoch"));
      t.node_losses.push_back(std::move(r));
    }
  }
  if (const JsonValue* ds = root.Find("distribution_switches");
      ds != nullptr && ds->is_array()) {
    for (const JsonValue& o : ds->items()) {
      DistributionSwitchRecord r;
      r.stage = static_cast<int>(GetNum(o, "stage"));
      r.from = GetStr(o, "from");
      r.to = GetStr(o, "to");
      r.reason = GetStr(o, "reason");
      r.est_ms = GetNum(o, "est_ms");
      r.new_ms = GetNum(o, "new_ms");
      t.distribution_switches.push_back(std::move(r));
    }
  }
  // Replication / integrity arrays are optional so traces serialized
  // before the replication layer still parse.
  if (const JsonValue* ns = root.Find("node_suspects");
      ns != nullptr && ns->is_array()) {
    for (const JsonValue& o : ns->items()) {
      NodeSuspectRecord r;
      r.stage = static_cast<int>(GetNum(o, "stage"));
      r.node = static_cast<int>(GetNum(o, "node"));
      r.reason = GetStr(o, "reason");
      r.missed_beats = static_cast<int>(GetNum(o, "missed_beats"));
      r.lease_remaining_ms = GetNum(o, "lease_remaining_ms");
      t.node_suspects.push_back(std::move(r));
    }
  }
  if (const JsonValue* ef = root.Find("epoch_fences");
      ef != nullptr && ef->is_array()) {
    for (const JsonValue& o : ef->items()) {
      EpochFenceRecord r;
      r.stage = static_cast<int>(GetNum(o, "stage"));
      r.node = static_cast<int>(GetNum(o, "node"));
      r.stale_epoch = static_cast<uint64_t>(GetNum(o, "stale_epoch"));
      r.current_epoch = static_cast<uint64_t>(GetNum(o, "current_epoch"));
      r.fenced_rows = static_cast<uint64_t>(GetNum(o, "fenced_rows"));
      t.epoch_fences.push_back(r);
    }
  }
  if (const JsonValue* rr = root.Find("replica_repairs");
      rr != nullptr && rr->is_array()) {
    for (const JsonValue& o : rr->items()) {
      ReplicaRepairRecord r;
      r.table = GetStr(o, "table");
      r.node = static_cast<int>(GetNum(o, "node"));
      r.role = GetStr(o, "role");
      r.source = GetStr(o, "source");
      r.rows = static_cast<uint64_t>(GetNum(o, "rows"));
      r.sim_ms = GetNum(o, "sim_ms");
      t.replica_repairs.push_back(std::move(r));
    }
  }
  if (const JsonValue* sr = root.Find("scrub_reports");
      sr != nullptr && sr->is_array()) {
    for (const JsonValue& o : sr->items()) {
      ScrubReportRecord r;
      r.table = GetStr(o, "table");
      r.node = static_cast<int>(GetNum(o, "node"));
      r.role = GetStr(o, "role");
      r.finding = GetStr(o, "finding");
      r.rows_expected = static_cast<uint64_t>(GetNum(o, "rows_expected"));
      r.repaired = GetBool(o, "repaired");
      t.scrub_reports.push_back(std::move(r));
    }
  }

  return t;
}

std::string QueryTrace::Summary() const {
  std::string out;
  char buf[256];
  out += "operators:\n";
  for (const OperatorSpan& s : spans) {
    std::snprintf(buf, sizeof(buf),
                  "  gen%d #%-3d %-14s rows=%-8llu next=%9.3fms "
                  "blocking=%9.3fms io=%-7llu %s\n",
                  s.plan_generation, s.node_id, s.op.c_str(),
                  static_cast<unsigned long long>(s.rows), s.next_ms,
                  s.blocking_ms, static_cast<unsigned long long>(s.page_ios),
                  s.detail.c_str());
    out += buf;
  }
  if (!budget_changes.empty()) {
    out += "memory budget changes:\n";
    for (const BudgetChange& b : budget_changes) {
      std::snprintf(buf, sizeof(buf),
                    "  gen%d #%-3d at %.3fms: %.0f -> %.0f pages\n",
                    b.plan_generation, b.node_id, b.at_ms, b.before_pages,
                    b.after_pages);
      out += buf;
    }
  }
  if (!eq2_checks.empty() || !eq1_checks.empty() || !switches.empty() ||
      !memory_reallocations.empty()) {
    out += "decisions:\n";
    for (const Eq2Check& r : eq2_checks) out += "  " + Render(r) + "\n";
    for (const Eq1Check& r : eq1_checks) out += "  " + Render(r) + "\n";
    for (const MemoryReallocation& r : memory_reallocations)
      out += "  " + Render(r) + "\n";
    for (const SwitchDecision& r : switches) out += "  " + Render(r) + "\n";
  }
  if (!reopt_failures.empty() || !degradations.empty()) {
    out += "failures:\n";
    for (const ReoptFailure& r : reopt_failures) out += "  " + Render(r) + "\n";
    for (const DegradationEvent& r : degradations)
      out += "  " + Render(r) + "\n";
  }
  if (!recoveries.empty() || !recovery_fallbacks.empty()) {
    out += "recovery:\n";
    for (const RecoveryEvent& r : recoveries) out += "  " + Render(r) + "\n";
    for (const RecoveryFallback& r : recovery_fallbacks)
      out += "  " + Render(r) + "\n";
  }
  if (!spills.empty() || !revocations.empty()) {
    out += "memory pressure:\n";
    for (const SpillEvent& r : spills) out += "  " + Render(r) + "\n";
    for (const RevocationEvent& r : revocations)
      out += "  " + Render(r) + "\n";
  }
  if (!feedback_applied.empty() || !plan_cache_hits.empty()) {
    out += "feedback:\n";
    for (const PlanCacheHit& r : plan_cache_hits) out += "  " + Render(r) + "\n";
    for (const FeedbackApplied& r : feedback_applied)
      out += "  " + Render(r) + "\n";
  }
  if (!memo_repairs.empty()) {
    out += "memo repairs:\n";
    for (const MemoRepair& r : memo_repairs) out += "  " + Render(r) + "\n";
  }
  if (!shard_skews.empty() || !stragglers.empty() || !node_losses.empty() ||
      !distribution_switches.empty()) {
    out += "sharding:\n";
    for (const ShardSkewRecord& r : shard_skews) out += "  " + Render(r) + "\n";
    for (const StragglerRecord& r : stragglers) out += "  " + Render(r) + "\n";
    for (const NodeLostRecord& r : node_losses) out += "  " + Render(r) + "\n";
    for (const DistributionSwitchRecord& r : distribution_switches)
      out += "  " + Render(r) + "\n";
  }
  if (!node_suspects.empty() || !epoch_fences.empty() ||
      !replica_repairs.empty() || !scrub_reports.empty()) {
    out += "replication:\n";
    for (const NodeSuspectRecord& r : node_suspects)
      out += "  " + Render(r) + "\n";
    for (const EpochFenceRecord& r : epoch_fences)
      out += "  " + Render(r) + "\n";
    for (const ReplicaRepairRecord& r : replica_repairs)
      out += "  " + Render(r) + "\n";
    for (const ScrubReportRecord& r : scrub_reports)
      out += "  " + Render(r) + "\n";
  }
  return out;
}

std::string QueryTrace::CompactSummaryJson() const {
  using obs::JsonValue;
  JsonValue root = JsonValue::MakeObject();

  // Aggregate span time by operator kind (inclusive; the dominant kinds
  // are what a trajectory wants to attribute time to).
  std::vector<std::pair<std::string, std::pair<double, uint64_t>>> by_op;
  for (const OperatorSpan& s : spans) {
    bool found = false;
    for (auto& [op, agg] : by_op) {
      if (op == s.op) {
        agg.first += s.next_ms + s.blocking_ms;
        agg.second += s.rows;
        found = true;
        break;
      }
    }
    if (!found) by_op.push_back({s.op, {s.next_ms + s.blocking_ms, s.rows}});
  }
  JsonValue ops = JsonValue::MakeArray();
  for (const auto& [op, agg] : by_op) {
    JsonValue o = JsonValue::MakeObject();
    o.Set("op", JsonValue::MakeString(op));
    o.Set("ms", JsonValue::MakeNumber(agg.first));
    o.Set("rows", JsonValue::MakeNumber(static_cast<double>(agg.second)));
    ops.Append(std::move(o));
  }
  root.Set("ops", std::move(ops));

  int eq2_fired = 0, accepted = 0, kept = 0;
  for (const Eq2Check& r : eq2_checks) eq2_fired += r.fired ? 1 : 0;
  for (const SwitchDecision& r : switches) accepted += r.accepted ? 1 : 0;
  for (const MemoryReallocation& r : memory_reallocations)
    kept += r.kept ? 1 : 0;
  root.Set("eq2_checks", JsonValue::MakeNumber(eq2_checks.size()));
  root.Set("eq2_fired", JsonValue::MakeNumber(eq2_fired));
  root.Set("eq1_checks", JsonValue::MakeNumber(eq1_checks.size()));
  root.Set("switches", JsonValue::MakeNumber(switches.size()));
  root.Set("switches_accepted", JsonValue::MakeNumber(accepted));
  root.Set("mem_reallocs", JsonValue::MakeNumber(memory_reallocations.size()));
  root.Set("mem_reallocs_kept", JsonValue::MakeNumber(kept));
  root.Set("reopt_failures", JsonValue::MakeNumber(reopt_failures.size()));
  root.Set("degraded", JsonValue::MakeBool(!degradations.empty()));
  root.Set("spills", JsonValue::MakeNumber(spills.size()));
  root.Set("revocations", JsonValue::MakeNumber(revocations.size()));
  root.Set("feedback_applied", JsonValue::MakeNumber(feedback_applied.size()));
  root.Set("plan_cache_hits", JsonValue::MakeNumber(plan_cache_hits.size()));
  root.Set("memo_repairs", JsonValue::MakeNumber(memo_repairs.size()));
  root.Set("shard_skews", JsonValue::MakeNumber(shard_skews.size()));
  root.Set("stragglers", JsonValue::MakeNumber(stragglers.size()));
  root.Set("node_losses", JsonValue::MakeNumber(node_losses.size()));
  root.Set("distribution_switches",
           JsonValue::MakeNumber(distribution_switches.size()));
  root.Set("node_suspects", JsonValue::MakeNumber(node_suspects.size()));
  root.Set("epoch_fences", JsonValue::MakeNumber(epoch_fences.size()));
  root.Set("replica_repairs", JsonValue::MakeNumber(replica_repairs.size()));
  root.Set("scrub_reports", JsonValue::MakeNumber(scrub_reports.size()));
  return root.Serialize();
}

std::string Render(const Eq2Check& r) {
  return "eq2 check after stage " + std::to_string(r.stage_node_id) +
         ": improved=" + Ms(r.improved) + " est=" + Ms(r.est) +
         " degradation=" + Ms(r.degradation) +
         (r.stats_churn ? " [stats churn]" : "") +
         (r.integrity_recheck ? " [integrity recheck]" : "") +
         (r.revocation_only
              ? " (suppressed: revocation-only change)"
              : (r.fired ? " (fired)" : " (below theta2)"));
}

std::string Render(const Eq1Check& r) {
  return "eq1 check after stage " + std::to_string(r.stage_node_id) +
         ": t_opt_est=" + Ms(r.t_opt_est) + "ms rem_cur=" + Ms(r.rem_cur) +
         "ms" + (r.fired ? " (fired)" : " (optimizer too expensive)");
}

std::string Render(const SwitchDecision& r) {
  std::string s = "reopt gate: rem_cur=" + Ms(r.rem_cur) +
                  "ms rem_new=" + Ms(r.rem_new) + "ms -> ";
  if (r.accepted) {
    s += "plan switched: materialized " + std::to_string(r.mat_rows) +
         " rows into " + r.temp_table;
  } else {
    s += "rejected (kept current plan)";
  }
  return s;
}

std::string Render(const ReoptFailure& r) {
  std::string s = "reopt failure at " + r.point;
  if (r.stage_node_id >= 0)
    s += " (stage " + std::to_string(r.stage_node_id) + ")";
  s += ": " + r.status;
  if (r.attempts > 1)
    s += " after " + std::to_string(r.attempts) + " attempts";
  s += " -> " + r.action;
  return s;
}

std::string Render(const DegradationEvent& r) {
  return "re-optimization degraded " + r.from_mode + " -> " + r.to_mode +
         " after " + std::to_string(r.failures) + " recovered failures";
}

std::string Render(const RecoveryEvent& r) {
  if (!r.resumed)
    return "recovery: no usable journal stage, ran from scratch";
  std::string s = "resumed from stage " + std::to_string(r.stage) +
                  ", skipped " + Ms(r.skipped_work_ms) + " ms of work (" +
                  r.temp_table + ", " + std::to_string(r.rows) + " rows";
  s += r.fingerprint_match ? ", plan fingerprint match)"
                           : ", plan re-derived)";
  return s;
}

std::string Render(const RecoveryFallback& r) {
  return "recovery fallback: " + r.reason + " -> clean from-scratch re-run";
}

std::string Render(const SpillEvent& r) {
  std::string s = r.op + " " + std::to_string(r.node_id) + " spilled (" +
                  r.reason + ")";
  if (r.partitions > 0)
    s += " into " + std::to_string(r.partitions) + " partition(s)";
  s += " at " + Ms(r.at_ms) + "ms";
  return s;
}

std::string Render(const AdmissionReject& r) {
  return "admission reject: query " + std::to_string(r.query_id) + " (" +
         r.reason + ", queued=" + std::to_string(r.queued) +
         " active=" + std::to_string(r.active) + ") at " + Ms(r.at_ms) + "ms";
}

std::string Render(const RevocationEvent& r) {
  return "revocation: " + Ms(r.pages) + " pages from query " +
         std::to_string(r.victim_query_id) + " to query " +
         std::to_string(r.beneficiary_query_id) + " (victim grant now " +
         Ms(r.victim_grant_after) + ") at " + Ms(r.at_ms) + "ms";
}

std::string Render(const FeedbackApplied& r) {
  std::string s = "feedback applied (" + r.scope + "): ";
  if (!r.table.empty()) s += r.table + " ";
  s += "[" + r.signature + "] est=" + Ms(r.est_rows) + " rows -> " +
       Ms(r.fb_rows) + " rows";
  if (r.partial) s += " (lower bound)";
  return s;
}

std::string Render(const PlanCacheHit& r) {
  return "plan cache hit (" + std::to_string(r.entry_hits) +
         " total): started on corrected plan, saved " + Ms(r.saved_opt_ms) +
         "ms optimization";
}

std::string Render(const MemoRepair& r) {
  if (r.fell_back) {
    return "memo repair (stage " + std::to_string(r.stage_node_id) +
           "): fell back to from-scratch re-plan, " + Ms(r.incremental_ms) +
           "ms charged";
  }
  return "memo repair (stage " + std::to_string(r.stage_node_id) + "): " +
         std::to_string(r.entries_reused) + "/" +
         std::to_string(r.entries_total) + " entries reused, " +
         std::to_string(r.entries_invalidated) + " invalidated (" +
         std::to_string(r.leaves_changed) + " leaf/leaves changed), " +
         std::to_string(r.offers_repaired) + " offers repaired: " +
         Ms(r.incremental_ms) + "ms vs " + Ms(r.scratch_est_ms) +
         "ms from-scratch";
}

std::string Render(const ShardSkewRecord& r) {
  return "shard skew (stage " + std::to_string(r.stage) + "): node " +
         std::to_string(r.node) + " received " +
         std::to_string(r.node_rows) + " rows vs estimated share " +
         Ms(r.est_share) + " (threshold " + Ms(r.skew_factor) + "x)";
}

std::string Render(const StragglerRecord& r) {
  return "straggler (stage " + std::to_string(r.stage) + "): node " +
         std::to_string(r.node) + " took " + Ms(r.node_ms) +
         "ms vs peer percentile " + Ms(r.percentile_ms) +
         "ms -> weight " + Ms(r.new_weight);
}

std::string Render(const NodeLostRecord& r) {
  std::string s = "node " + std::to_string(r.node) + " lost (stage " +
                  std::to_string(r.stage) + ", " + r.reason + "): " +
                  std::to_string(r.survivors) + " survivor(s), " +
                  std::to_string(r.rehomed_rows) + " row(s) re-homed";
  if (r.promoted_rows > 0 || r.coordinator_rows > 0)
    s += " (" + std::to_string(r.promoted_rows) + " from replicas, " +
         std::to_string(r.coordinator_rows) + " from coordinator)";
  if (r.epoch > 0) s += ", epoch now " + std::to_string(r.epoch);
  if (r.journal_resume) s += ", prior stages validated from journal";
  return s;
}

std::string Render(const NodeSuspectRecord& r) {
  return "node " + std::to_string(r.node) + " suspected (stage " +
         std::to_string(r.stage) + ", " + r.reason + "): " +
         std::to_string(r.missed_beats) + " missed beat(s), lease " +
         Ms(r.lease_remaining_ms) + "ms remaining; stage retried";
}

std::string Render(const EpochFenceRecord& r) {
  return "epoch fence (stage " + std::to_string(r.stage) + "): node " +
         std::to_string(r.node) + " sent " + std::to_string(r.fenced_rows) +
         " row(s) at stale epoch " + std::to_string(r.stale_epoch) +
         " (cluster at " + std::to_string(r.current_epoch) + "); dropped";
}

std::string Render(const ReplicaRepairRecord& r) {
  return "replica repair: " + r.table + " " + r.role + " copy on node " +
         std::to_string(r.node) + " rebuilt from " + r.source + " (" +
         std::to_string(r.rows) + " row(s), " + Ms(r.sim_ms) + "ms)";
}

std::string Render(const ScrubReportRecord& r) {
  return "scrub: " + r.table + " " + r.role + " copy on node " +
         std::to_string(r.node) + " " + r.finding + " (" +
         std::to_string(r.rows_expected) + " row(s) expected)" +
         (r.repaired ? ", repaired" : ", quarantined");
}

std::string Render(const DistributionSwitchRecord& r) {
  return "distribution switch (stage " + std::to_string(r.stage) + "): " +
         r.from + " -> " + r.to + " (" + r.reason + ", " + Ms(r.est_ms) +
         "ms -> " + Ms(r.new_ms) + "ms projected)";
}

std::string Render(const TxnBeginRecord& r) {
  return "txn " + std::to_string(r.txn_id) + " begin";
}

std::string Render(const TxnCommitRecord& r) {
  std::string s = "txn " + std::to_string(r.txn_id) + " commit: epoch " +
                  std::to_string(r.epoch) + ", " +
                  std::to_string(r.rows_changed) + " row(s), " +
                  std::to_string(r.wal_records) + " wal record(s)";
  if (!r.client_tag.empty()) s += " [tag " + r.client_tag + "]";
  return s;
}

std::string Render(const TxnAbortRecord& r) {
  return "txn " + std::to_string(r.txn_id) + " abort (" + r.reason + ")";
}

std::string Render(const LockWaitRecord& r) {
  return "txn " + std::to_string(r.txn_id) + " waits for " + r.mode +
         " on " + r.resource + " held by txn " +
         std::to_string(r.holder_txn_id);
}

std::string Render(const DeadlockVictimRecord& r) {
  return "deadlock: cycle of " + std::to_string(r.cycle_length) +
         " at " + r.resource + " (requester txn " +
         std::to_string(r.requester_txn_id) + ") -> victim txn " +
         std::to_string(r.victim_txn_id) + " aborted";
}

std::string Render(const WalReplayRecord& r) {
  return "wal replay: " + std::to_string(r.committed_txns) +
         " committed txn(s), " + std::to_string(r.records_applied) +
         " record(s) applied, " + std::to_string(r.records_skipped) +
         " skipped, " + std::to_string(r.tables_restored) +
         " checkpoint(s) restored";
}

std::string Render(const MemoryReallocation& r) {
  if (r.mid_execution) {
    return "mid-execution memory response after collector " +
           std::to_string(r.trigger_node_id);
  }
  std::string s = "memory re-allocated after collector feedback (stage " +
                  std::to_string(r.trigger_node_id) +
                  "): est " + Ms(r.before_ms) + " -> " + Ms(r.after_ms) + "ms";
  s += r.kept ? " (kept)" : " (rolled back)";
  return s;
}

}  // namespace reoptdb
