#include "common/logging.h"

#include <cstdio>
#include <cstring>

namespace reoptdb {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel SetLogLevel(LogLevel level) {
  LogLevel prev = g_level;
  g_level = level;
  return prev;
}

LogLevel GetLogLevel() { return g_level; }

namespace internal {

void EmitLog(LogLevel level, const char* file, int line, const std::string& msg) {
  const char* base = std::strrchr(file, '/');
  base = base ? base + 1 : file;
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line, msg.c_str());
}

}  // namespace internal
}  // namespace reoptdb
