// Column projection / renaming.

#ifndef REOPTDB_EXEC_PROJECT_OP_H_
#define REOPTDB_EXEC_PROJECT_OP_H_

#include "exec/operator.h"

namespace reoptdb {

/// \brief Projects the child's columns listed in node->project_cols into
/// the output schema order (pure column moves; no cost charged).
class ProjectOp : public Operator {
 public:
  ProjectOp(ExecContext* ctx, PlanNode* node) : Operator(ctx, node) {}

  Status OpenImpl() override {
    RETURN_IF_ERROR(OpenChildren());
    const Schema& in = child(0)->OutputSchema();
    for (const std::string& col : node_->project_cols) {
      ASSIGN_OR_RETURN(size_t idx, in.IndexOf(col));
      indexes_.push_back(idx);
    }
    return Status::OK();
  }

  Result<bool> NextImpl(Tuple* out) override {
    Tuple in;
    ASSIGN_OR_RETURN(bool more, child(0)->Next(&in));
    if (!more) return false;
    std::vector<Value> values;
    values.reserve(indexes_.size());
    for (size_t i : indexes_) values.push_back(in.at(i));
    *out = Tuple(std::move(values));
    return true;
  }

  Result<bool> NextBatchImpl(TupleBatch* out) override {
    if (in_batch_ == nullptr)
      in_batch_ = std::make_unique<TupleBatch>(out->capacity());
    ASSIGN_OR_RETURN(bool more, child(0)->NextBatch(in_batch_.get()));
    if (!more) return false;
    for (Tuple& in : *in_batch_) {
      std::vector<Value> values;
      values.reserve(indexes_.size());
      for (size_t i : indexes_) values.push_back(in.at(i));
      out->PushBack(Tuple(std::move(values)));
    }
    return true;
  }

  Status CloseImpl() override { return CloseChildren(); }

 private:
  std::vector<size_t> indexes_;
  std::unique_ptr<TupleBatch> in_batch_;  // batched pulls only
};

/// \brief LIMIT n.
class LimitOp : public Operator {
 public:
  LimitOp(ExecContext* ctx, PlanNode* node) : Operator(ctx, node) {}

  Status OpenImpl() override { return OpenChildren(); }

  Result<bool> NextImpl(Tuple* out) override {
    if (node_->limit >= 0 && emitted_ >= node_->limit) return false;
    ASSIGN_OR_RETURN(bool more, child(0)->Next(out));
    if (!more) return false;
    ++emitted_;
    return true;
  }

  Status CloseImpl() override { return CloseChildren(); }

 private:
  int64_t emitted_ = 0;
};

}  // namespace reoptdb

#endif  // REOPTDB_EXEC_PROJECT_OP_H_
