#include "txn/wal.h"

#include "storage/disk_manager.h"
#include "storage/heap_file.h"  // slotted page helpers

namespace reoptdb {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (i * 8)));
}

void PutStr(std::string* out, const std::string& s) {
  PutU64(out, s.size());
  out->append(s);
}

Result<uint64_t> TakeU64(const std::string& in, size_t* off) {
  if (*off + 8 > in.size())
    return Status::IoError("wal record truncated (u64)");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<uint64_t>(static_cast<unsigned char>(in[*off + i]))
         << (i * 8);
  *off += 8;
  return v;
}

Result<std::string> TakeStr(const std::string& in, size_t* off) {
  ASSIGN_OR_RETURN(uint64_t len, TakeU64(in, off));
  if (*off + len > in.size())
    return Status::IoError("wal record truncated (string)");
  std::string s = in.substr(*off, len);
  *off += len;
  return s;
}

uint64_t Fnv(const char* data, size_t len) {
  uint64_t h = kFnvOffset;
  for (size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= kFnvPrime;
  }
  return h;
}

/// Record wire form: the checksummed body, then the checksum.
std::string Serialize(const WriteAheadLog::Record& r) {
  std::string body;
  PutU64(&body, r.lsn);
  PutU64(&body, r.txn_id);
  body.push_back(static_cast<char>(r.kind));
  PutStr(&body, r.table);
  PutStr(&body, r.payload);
  PutStr(&body, r.client_tag);
  PutU64(&body, Fnv(body.data(), body.size()));
  return body;
}

Result<WriteAheadLog::Record> Parse(const char* data, size_t len) {
  std::string in(data, len);
  size_t off = 0;
  WriteAheadLog::Record r;
  ASSIGN_OR_RETURN(r.lsn, TakeU64(in, &off));
  ASSIGN_OR_RETURN(r.txn_id, TakeU64(in, &off));
  if (off >= in.size()) return Status::IoError("wal record truncated (kind)");
  r.kind = static_cast<WriteAheadLog::Record::Kind>(in[off++]);
  ASSIGN_OR_RETURN(r.table, TakeStr(in, &off));
  ASSIGN_OR_RETURN(r.payload, TakeStr(in, &off));
  ASSIGN_OR_RETURN(r.client_tag, TakeStr(in, &off));
  size_t body_end = off;
  ASSIGN_OR_RETURN(uint64_t stored, TakeU64(in, &off));
  if (stored != Fnv(in.data(), body_end))
    return Status::IoError("wal record checksum mismatch at lsn " +
                           std::to_string(r.lsn));
  return r;
}

const char* KindName(WriteAheadLog::Record::Kind k) {
  switch (k) {
    case WriteAheadLog::Record::Kind::kInsert:
      return "insert";
    case WriteAheadLog::Record::Kind::kDelete:
      return "delete";
    case WriteAheadLog::Record::Kind::kCommit:
      return "commit";
  }
  return "?";
}

}  // namespace

std::string WriteAheadLog::EncodeU64(uint64_t v) {
  std::string s;
  PutU64(&s, v);
  return s;
}

Result<uint64_t> WriteAheadLog::DecodeU64(const std::string& payload) {
  size_t off = 0;
  return TakeU64(payload, &off);
}

Result<uint64_t> WriteAheadLog::Append(Record rec) {
  if (faults_ != nullptr)
    RETURN_IF_ERROR(faults_->Check(faults::kWalAppend));
  rec.lsn = next_lsn_++;
  buffered_.push_back(std::move(rec));
  return buffered_.back().lsn;
}

Status WriteAheadLog::Fsync(uint64_t committing_txn_id) {
  if (buffered_.empty()) return Status::OK();
  if (faults_ != nullptr)
    RETURN_IF_ERROR(faults_->Check(faults::kWalFsync));

  // Pack buffered records into fresh pages in append order and write them
  // oldest-first, so a partial failure can only lose a suffix — which
  // always includes the newest commit record.
  std::vector<Page> staged(1);
  staged.back().Zero();
  for (const Record& r : buffered_) {
    std::string wire = Serialize(r);
    Result<uint32_t> slot = slotted::Insert(&staged.back(), wire);
    if (!slot.ok()) {
      staged.emplace_back();
      staged.back().Zero();
      Result<uint32_t> retry = slotted::Insert(&staged.back(), wire);
      if (!retry.ok())
        return Status::Internal("wal record exceeds page capacity");
    }
  }
  for (const Page& p : staged) {
    PageId id = pool_->disk()->AllocatePage();
    Status st = pool_->disk()->WritePage(id, p);
    if (!st.ok()) {
      // The page never made it durable; give its id back so the crash
      // harness's leak accounting stays exact.
      (void)pool_->disk()->FreePage(id);
      return st;
    }
    pages_.push_back(id);
  }

  ++fsyncs_;
  flushed_records_ += buffered_.size();
  for (const Record& r : buffered_)
    if (r.txn_id != committing_txn_id) ++piggybacked_;
  buffered_.clear();
  return Status::OK();
}

Result<std::vector<WriteAheadLog::Record>> WriteAheadLog::ReadAll() const {
  std::vector<Record> out;
  Page buf;
  for (PageId id : pages_) {
    RETURN_IF_ERROR(pool_->disk()->ReadPage(id, &buf));
    uint16_t count = slotted::Count(buf);
    for (uint16_t s = 0; s < count; ++s) {
      const char* data;
      size_t len;
      RETURN_IF_ERROR(slotted::Read(buf, s, &data, &len));
      ASSIGN_OR_RETURN(Record rec, Parse(data, len));
      out.push_back(std::move(rec));
    }
  }
  return out;
}

Status WriteAheadLog::Truncate() {
  while (!pages_.empty()) {
    RETURN_IF_ERROR(pool_->disk()->FreePage(pages_.back()));
    pages_.pop_back();
  }
  flushed_records_ = 0;
  return Status::OK();
}

std::string WriteAheadLog::Describe() const {
  std::string out = "wal: " + std::to_string(pages_.size()) +
                    " page(s), " + std::to_string(flushed_records_) +
                    " flushed record(s), " +
                    std::to_string(buffered_.size()) +
                    " buffered, next lsn " + std::to_string(next_lsn_) +
                    ", " + std::to_string(fsyncs_) + " fsync(s), " +
                    std::to_string(piggybacked_) + " piggybacked\n";
  size_t first = buffered_.size() > 5 ? buffered_.size() - 5 : 0;
  for (size_t i = first; i < buffered_.size(); ++i) {
    const Record& r = buffered_[i];
    out += "  [" + std::to_string(r.lsn) + "] txn" +
           std::to_string(r.txn_id) + " " + KindName(r.kind);
    if (!r.table.empty()) out += " " + r.table;
    if (!r.client_tag.empty()) out += " tag=" + r.client_tag;
    out += "\n";
  }
  return out;
}

}  // namespace reoptdb
