// Indexed nested-loops join: probes the inner table's B+-tree per outer row.

#ifndef REOPTDB_EXEC_INDEX_NL_JOIN_H_
#define REOPTDB_EXEC_INDEX_NL_JOIN_H_

#include <vector>

#include "exec/expression.h"
#include "exec/operator.h"
#include "storage/btree.h"

namespace reoptdb {

/// \brief Indexed nested-loops join.
///
/// Child 0 is the outer input. The inner side is a base table (node->table)
/// with a B+-tree on node->index_column; node->filters holds the inner
/// relation's residual predicates plus any extra join predicates, evaluated
/// against the concatenated output schema.
class IndexNLJoinOp : public Operator {
 public:
  IndexNLJoinOp(ExecContext* ctx, PlanNode* node) : Operator(ctx, node) {}

  Status OpenImpl() override;
  Result<bool> NextImpl(Tuple* out) override;
  Status CloseImpl() override;

 private:
  const HeapFile* inner_heap_ = nullptr;
  const BTree* index_ = nullptr;
  size_t outer_key_ = 0;
  std::vector<CompiledPred> residuals_;

  Tuple outer_row_;
  std::vector<Rid> matches_;
  size_t match_pos_ = 0;
  bool have_outer_ = false;
};

}  // namespace reoptdb

#endif  // REOPTDB_EXEC_INDEX_NL_JOIN_H_
