#include "reopt/controller.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>

#include "common/logging.h"
#include "exec/scheduler.h"
#include "memory/memory_manager.h"
#include "optimizer/remainder_sql.h"
#include "optimizer/selectivity.h"
#include "storage/page.h"

namespace reoptdb {

const char* ReoptModeName(ReoptMode mode) {
  switch (mode) {
    case ReoptMode::kOff:
      return "off";
    case ReoptMode::kMemoryOnly:
      return "memory-only";
    case ReoptMode::kPlanOnly:
      return "plan-only";
    case ReoptMode::kFull:
      return "full";
  }
  return "?";
}

size_t DefaultExecBatchSize() {
  static const size_t cached = [] {
    if (const char* env = std::getenv("REOPTDB_BATCH_SIZE")) {
      char* end = nullptr;
      long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v >= 1)
        return static_cast<size_t>(v);
    }
    return TupleBatch::kDefaultCapacity;
  }();
  return cached;
}

namespace {

double PagesOf(double rows, double bytes) {
  return std::max(1.0, std::ceil(rows * (bytes + 4.0) / (kPageSize * 0.95)));
}

/// Drops every tracked temp table when it goes out of scope, so error
/// returns anywhere in ExecuteWithPlan cannot leak catalog temp tables.
/// The success path drains explicitly (DropAll) to surface drop errors.
///
/// Exception: a pending injected crash. The simulated process is dead, so
/// nothing runs on the unwind path — temp pages stay on disk (that is the
/// durable state recovery needs) and catalog entries stay too; the
/// RecoveryManager detaches and rebinds or garbage-collects them on
/// restart, guided by the journal.
class TempTableCleaner {
 public:
  TempTableCleaner(Catalog* catalog, FaultInjector* faults)
      : catalog_(catalog), faults_(faults) {}
  ~TempTableCleaner() {
    if (faults_ != nullptr && faults_->crash_pending()) return;
    for (const std::string& name : names_) (void)catalog_->Drop(name);
  }
  TempTableCleaner(const TempTableCleaner&) = delete;
  TempTableCleaner& operator=(const TempTableCleaner&) = delete;

  void Track(std::string name) { names_.push_back(std::move(name)); }

  size_t tracked() const { return names_.size(); }

  /// Drops one table now (a rejected or rolled-back switch's temp). The
  /// name is untracked regardless of the outcome: Catalog::Drop always
  /// removes the catalog entry, so a retry could only report NotFound —
  /// any pages a failed Destroy left behind are retried by the HeapFile
  /// destructor, not by a second Drop.
  Status DropNow(const std::string& name) {
    names_.erase(std::remove(names_.begin(), names_.end(), name),
                 names_.end());
    return catalog_->Drop(name);
  }

  /// Drops every tracked table, continuing past failures (stopping at the
  /// first would strand the rest until the destructor, which swallows
  /// errors); the first failure is returned.
  Status DropAll() {
    Status first;
    while (!names_.empty()) {
      // A crash mid-drop kills the process: stop dropping further tables.
      if (faults_ != nullptr && faults_->crash_pending())
        return first.ok() ? Status::Crashed("crash during temp-table cleanup")
                          : first;
      std::string name = std::move(names_.back());
      names_.pop_back();
      Status st = catalog_->Drop(name);
      if (!st.ok() && first.ok()) first = std::move(st);
    }
    return first;
  }

 private:
  Catalog* catalog_;
  FaultInjector* faults_;
  std::vector<std::string> names_;
};

/// Clears the query's journal records when execution ends without a crash
/// (clean completion or an in-process failure: the temp tables are dropped
/// on those paths, so a journal record would point at freed pages). With a
/// crash pending nothing runs — the records are exactly what survives for
/// the RecoveryManager.
class JournalGuard {
 public:
  JournalGuard(QueryJournal* journal, const std::string* root_sql,
               FaultInjector* faults)
      : journal_(journal), root_sql_(root_sql), faults_(faults) {}
  ~JournalGuard() {
    if (journal_ == nullptr) return;
    if (faults_ != nullptr && faults_->crash_pending()) return;
    journal_->MarkComplete(*root_sql_);
  }
  JournalGuard(const JournalGuard&) = delete;
  JournalGuard& operator=(const JournalGuard&) = delete;

 private:
  QueryJournal* journal_;
  const std::string* root_sql_;
  FaultInjector* faults_;
};

/// Defuses the mid-execution collector hook on every exit path: nulls the
/// shared live-plan slot (so a late notification is a no-op even if the
/// closure somehow survives) and uninstalls the hook from the context.
/// Error returns anywhere in ExecuteWithPlan can therefore never leave a
/// hook dangling over a dead plan tree.
class HookGuard {
 public:
  HookGuard(ExecContext* ctx, std::shared_ptr<PlanNode*>* slot)
      : ctx_(ctx), slot_(slot) {}
  ~HookGuard() { Defuse(); }
  HookGuard(const HookGuard&) = delete;
  HookGuard& operator=(const HookGuard&) = delete;

  void Defuse() {
    if (*slot_) {
      **slot_ = nullptr;
      ctx_->SetCollectorHook(nullptr);
      slot_->reset();
    }
  }

 private:
  ExecContext* ctx_;
  std::shared_ptr<PlanNode*>* slot_;
};

/// Operator self-cost from a given set of input/output estimates and the
/// actual memory budget.
double SelfCost(const PlanNode& n, const CostModel& cost, bool improved) {
  auto in = [&](size_t i) -> const PlanEstimates& {
    return improved ? n.children[i]->improved : n.children[i]->est;
  };
  const PlanEstimates& out = improved ? n.improved : n.est;
  double mem = n.mem_budget_pages > 0 ? n.mem_budget_pages : 64;
  switch (n.kind) {
    case OpKind::kSeqScan:
    case OpKind::kIndexScan:
      // Scan cost is dominated by the (fixed) table size; for index scans
      // the match count could shift, but collectors sit above scans so the
      // original estimate is the best available.
      return n.est.cost_self_ms;
    case OpKind::kHashJoin: {
      int passes = 0;
      return cost.HashJoin(in(0).cardinality, in(0).pages, in(1).cardinality,
                           in(1).pages, mem, out.cardinality, &passes);
    }
    case OpKind::kMergeJoin:
      return cost.MergeJoin(in(0).cardinality, in(1).cardinality,
                            out.cardinality);
    case OpKind::kIndexNLJoin: {
      // Probe cost scales linearly with the outer cardinality.
      double base = std::max(1e-9, n.est.cost_self_ms);
      double est_outer = std::max(1.0, n.children[0]->est.cardinality);
      return base * (in(0).cardinality / est_outer);
    }
    case OpKind::kHashAggregate: {
      double groups = out.num_groups > 0 ? out.num_groups : out.cardinality;
      double group_bytes = n.output_schema.AvgTupleBytes() + 96;
      return cost.HashAggregate(in(0).cardinality, in(0).pages, groups,
                                group_bytes, mem);
    }
    case OpKind::kSort:
      return cost.Sort(in(0).cardinality, in(0).pages, mem);
    case OpKind::kMaterialize:
      return cost.Materialize(in(0).pages);
    case OpKind::kStatsCollector: {
      int nstats = static_cast<int>(n.collector.histogram_cols.size() +
                                    n.collector.unique_cols.size());
      return cost.Collector(in(0).cardinality, nstats,
                            CollectorMinMaxCols(n.output_schema));
    }
    default:
      return n.est.cost_self_ms;
  }
}

}  // namespace

void RecostWithBudgets(PlanNode* root, const CostModel& cost) {
  root->PostOrder([&](PlanNode* n) {
    n->est.cost_self_ms = SelfCost(*n, cost, /*improved=*/false);
    double total = n->est.cost_self_ms;
    for (auto& c : n->children) total += c->est.cost_total_ms;
    n->est.cost_total_ms = total;
    n->improved = n->est;
  });
}

void RefreshImprovedEstimates(PlanNode* root, const CostModel& cost) {
  root->PostOrder([&](PlanNode* n) {
    PlanEstimates imp = n->est;
    // Partial observations (collector closed before exhausting its input)
    // are lower bounds, not exact counts: treating them as exact would
    // *shrink* improved estimates toward the prefix seen so far. They are
    // consumed only by the feedback store.
    if (n->children.empty()) {
      // Base scans: collectors sit above them and also write into the scan
      // node's `observed`.
      if (n->observed.valid && !n->observed.partial) {
        imp.cardinality = n->observed.cardinality;
        if (n->observed.avg_tuple_bytes > 0)
          imp.avg_tuple_bytes = n->observed.avg_tuple_bytes;
      }
    } else if (n->observed.valid && !n->observed.partial) {
      imp.cardinality = n->observed.cardinality;
      if (n->observed.avg_tuple_bytes > 0)
        imp.avg_tuple_bytes = n->observed.avg_tuple_bytes;
    } else {
      // Scale the estimate by the children's improvement ratios.
      double ratio = 1.0;
      for (auto& c : n->children) {
        double est_card = std::max(1.0, c->est.cardinality);
        ratio *= std::max(1e-6, c->improved.cardinality) / est_card;
      }
      imp.cardinality = std::max(1.0, n->est.cardinality * ratio);
    }
    // Aggregates: refine the group count from observed unique values of
    // the group columns when available.
    if (n->kind == OpKind::kHashAggregate && !n->children.empty()) {
      const PlanNode& child = *n->children[0];
      double groups = n->est.num_groups;
      if (child.observed.valid && !child.observed.partial &&
          !n->group_cols.empty()) {
        double product = 1;
        bool all = true;
        for (const std::string& g : n->group_cols) {
          auto it = child.observed.columns.find(g);
          if (it == child.observed.columns.end() || it->second.distinct <= 0) {
            all = false;
            break;
          }
          product *= it->second.distinct;
        }
        if (all) groups = product;
      }
      groups = std::min(std::max(1.0, groups),
                        std::max(1.0, child.improved.cardinality));
      imp.num_groups = groups;
      if (!n->observed.valid) imp.cardinality = groups;
    }
    imp.pages = PagesOf(imp.cardinality, imp.avg_tuple_bytes);
    n->improved = imp;
    n->improved.cost_self_ms = SelfCost(*n, cost, /*improved=*/true);
    double total = n->improved.cost_self_ms;
    for (auto& c : n->children) total += c->improved.cost_total_ms;
    n->improved.cost_total_ms = total;
  });
}

BaseRelOverrides CollectBaseRelOverrides(const PlanNode& root,
                                         const QuerySpec& spec,
                                         const Catalog& catalog) {
  BaseRelOverrides overrides;
  root.PostOrder([&](const PlanNode* n) {
    if (n->kind != OpKind::kSeqScan && n->kind != OpKind::kIndexScan) return;
    if (!n->observed.valid || n->observed.partial) return;
    DerivedRel rel;
    rel.rows = std::max(1.0, n->observed.cardinality);
    rel.avg_tuple_bytes = n->observed.avg_tuple_bytes > 0
                              ? n->observed.avg_tuple_bytes
                              : n->est.avg_tuple_bytes;
    // Base: catalog column stats (capped); overlay: observations.
    Result<const TableInfo*> info = catalog.Get(n->table);
    if (info.ok()) {
      for (const Column& c : info.value()->schema.columns()) {
        ColumnStats cs;
        const ColumnStats* base = info.value()->stats.Find(c.name);
        if (base) {
          cs = *base;
        } else {
          cs.type = c.type;
          cs.avg_width = c.avg_width;
        }
        if (cs.distinct > 0) cs.distinct = std::min(cs.distinct, rel.rows);
        rel.cols[n->alias + "." + c.name] = std::move(cs);
      }
    }
    for (const auto& [qualified, cs] : n->observed.columns) {
      ColumnStats& dst = rel.cols[qualified];
      if (cs.has_bounds) {
        dst.has_bounds = true;
        dst.min = cs.min;
        dst.max = cs.max;
      }
      if (cs.distinct > 0) dst.distinct = std::min(cs.distinct, rel.rows);
      if (cs.has_histogram()) dst.histogram = cs.histogram;
    }
    overrides[n->alias] = std::move(rel);
  });
  return overrides;
}

TableStats BuildTempStats(const PlanNode& frontier, const QuerySpec& spec,
                          const Catalog& catalog) {
  TableStats ts;
  ts.analyzed = true;
  ts.row_count = std::max(1.0, frontier.improved.cardinality);
  ts.avg_tuple_bytes = frontier.improved.avg_tuple_bytes;
  ts.page_count = frontier.improved.pages;

  for (const Column& col : frontier.output_schema.columns()) {
    const std::string qualified = col.qualifier + "." + col.name;
    ColumnStats cs;
    cs.type = col.type;
    cs.avg_width = col.avg_width;

    // Prefer the shallowest observed statistic in the subtree (closest to
    // the frontier's output distribution).
    const ColumnStats* found = nullptr;
    frontier.PostOrder([&](const PlanNode* n) {
      if (!n->observed.valid || n->observed.partial) return;
      auto it = n->observed.columns.find(qualified);
      if (it != n->observed.columns.end()) found = &it->second;
    });
    if (found != nullptr) {
      cs = *found;
    } else {
      // Fall back to the base table's catalog statistics.
      for (const RelationRef& r : spec.relations) {
        if (r.alias != col.qualifier) continue;
        Result<const TableInfo*> info = catalog.Get(r.table);
        if (!info.ok()) break;
        const ColumnStats* base = info.value()->stats.Find(col.name);
        if (base != nullptr) cs = *base;
        break;
      }
    }
    if (cs.distinct > 0) cs.distinct = std::min(cs.distinct, ts.row_count);
    ts.columns[TempColumnName(col.qualifier, col.name)] = std::move(cs);
  }
  return ts;
}

void HarvestFeedback(const PlanNode& plan, const QuerySpec& spec,
                     const Catalog& catalog, CardinalityFeedbackStore* store) {
  if (store == nullptr) return;
  plan.PostOrder([&](const PlanNode* n) {
    if (!n->observed.valid) return;
    const bool is_scan =
        n->kind == OpKind::kSeqScan || n->kind == OpKind::kIndexScan;
    const bool is_join = n->kind == OpKind::kHashJoin ||
                         n->kind == OpKind::kMergeJoin ||
                         n->kind == OpKind::kIndexNLJoin;
    // Collector nodes are skipped: the child carries the same observation,
    // and harvesting both would double-count it.
    if (is_scan) {
      Result<const TableInfo*> info = catalog.Get(n->table);
      if (!info.ok() || info.value()->is_temp) return;
      int rel_idx = -1;
      for (size_t i = 0; i < spec.relations.size(); ++i) {
        if (spec.relations[i].alias == n->alias) {
          rel_idx = static_cast<int>(i);
          break;
        }
      }
      if (rel_idx < 0) return;
      const double base_rows =
          static_cast<double>(info.value()->heap->tuple_count());
      BaseRelFeedback fb;
      fb.table = n->table;
      fb.predicate_sig = PredicateSignature(spec, rel_idx);
      fb.observed_rows = n->observed.cardinality;
      fb.selectivity =
          std::min(1.0, n->observed.cardinality / std::max(1.0, base_rows));
      fb.avg_tuple_bytes = n->observed.avg_tuple_bytes;
      fb.partial = n->observed.partial;
      fb.base_rows_at_obs = base_rows;
      fb.update_activity_at_obs = info.value()->stats.update_activity;
      const std::string prefix = n->alias + ".";
      for (const auto& [qualified, cs] : n->observed.columns) {
        // Stored under the bare column name — the alias is query-local.
        std::string bare = qualified;
        if (bare.rfind(prefix, 0) == 0) bare = bare.substr(prefix.size());
        ColumnFeedback cf;
        cf.has_bounds = cs.has_bounds && !n->observed.partial;
        cf.min = cs.min;
        cf.max = cs.max;
        cf.distinct = cs.distinct;
        cf.distinct_is_lower_bound =
            cs.distinct_is_lower_bound || n->observed.partial;
        fb.columns[bare] = cf;
      }
      store->ObserveBaseRel(std::move(fb));
    } else if (is_join) {
      // Every covered relation must be a live base table: a remainder plan
      // joining a temp table has a query-local shape that no future
      // optimization can match.
      JoinFeedback fb;
      for (int rel : n->covers) {
        if (rel < 0 || rel >= static_cast<int>(spec.relations.size())) return;
        Result<const TableInfo*> info = catalog.Get(spec.relations[rel].table);
        if (!info.ok() || info.value()->is_temp) return;
        JoinTableMark mark;
        mark.table = spec.relations[rel].table;
        mark.rows_at_obs =
            static_cast<double>(info.value()->heap->tuple_count());
        mark.update_activity_at_obs = info.value()->stats.update_activity;
        fb.tables.push_back(std::move(mark));
      }
      fb.signature = JoinSignature(spec, n->covers);
      if (fb.signature.empty()) return;
      fb.observed_rows = n->observed.cardinality;
      fb.partial = n->observed.partial;
      store->ObserveJoin(std::move(fb));
    }
  });
}

ObservedStats MergeObservedStats(
    const std::vector<const ObservedStats*>& parts) {
  ObservedStats merged;
  double total_bytes = 0;
  for (const ObservedStats* p : parts) {
    if (p == nullptr || !p->valid) continue;
    merged.valid = true;
    merged.partial = merged.partial || p->partial;
    merged.cardinality += p->cardinality;
    total_bytes += p->cardinality * p->avg_tuple_bytes;
    for (const auto& [col, cs] : p->columns) {
      if (!cs.has_bounds) continue;
      auto [it, inserted] = merged.columns.try_emplace(col);
      ColumnStats& m = it->second;
      if (inserted) {
        m.type = cs.type;
        m.avg_width = cs.avg_width;
        m.has_bounds = true;
        m.min = cs.min;
        m.max = cs.max;
      } else {
        m.min = std::min(m.min, cs.min);
        m.max = std::max(m.max, cs.max);
      }
      // Histograms and distinct sketches stay dropped (default-initialized):
      // per-partition sketches overlap in domain, so any cheap union would
      // overstate distinct counts and skew bucket boundaries.
    }
  }
  if (merged.valid && merged.cardinality > 0)
    merged.avg_tuple_bytes = total_bytes / merged.cardinality;
  return merged;
}

/// \brief The moved-out body of the old monolithic ExecuteWithPlan, held
/// alive between Step() calls.
///
/// Everything that used to be a local of the execute loop — the report,
/// the live mode, the scope guards, the frozen-operator set, the memory
/// manager — lives here so execution can pause at every stage boundary
/// (the WorkloadManager's yield points) and resume later. Destroying the
/// State mid-query runs the same guard cleanup as an error unwind did in
/// the monolithic version.
struct QuerySession::State {
  State(DynamicReoptimizer* o, QuerySpec s, std::unique_ptr<PlanNode> p,
        ExecContext* c, std::vector<Tuple>* r, Schema* os)
      : owner(o),
        spec(std::move(s)),
        plan(std::move(p)),
        ctx(c),
        rows(r),
        out_schema(os),
        trace(c->trace()),
        faults(c->faults()),
        mode(o->opts_.mode),
        root_sql(o->journal_root_override_.empty()
                     ? spec.ToSql()
                     : o->journal_root_override_),
        optimizer(o->catalog_, o->cost_, o->optimizer_opts_, o->feedback_),
        mm(o->cost_, o->query_mem_pages_),
        temp_tables(o->catalog_, c->faults()),
        hook_guard(c, &o->live_plan_slot_),
        journal_guard(o->journal_, &root_sql, c->faults()) {
    if (o->scrub_signal_ != nullptr) scrub_seen = *o->scrub_signal_;
  }

  DynamicReoptimizer* owner;
  QuerySpec spec;
  std::unique_ptr<PlanNode> plan;
  ExecContext* ctx;
  std::vector<Tuple>* rows;
  Schema* out_schema;

  QueryTrace* trace;
  FaultInjector* faults;

  ExecutionReport report;
  /// The DP memo retained from the optimization that produced `plan` (null
  /// when the caller supplied a plan without one). A re-optimization point
  /// consumes it — translated into the remainder's ordinal space and
  /// repaired incrementally by Optimizer::RepairPlan; an accepted switch
  /// retains the repaired memo, a rejected one leaves the session without
  /// a memo (later gates re-plan from scratch, the pre-memo behaviour).
  std::unique_ptr<PlanMemo> memo;
  /// The query's *live* mode: graceful degradation demotes it to kOff
  /// after repeated recovered failures without touching the options (the
  /// next query starts fresh).
  ReoptMode mode;
  /// The journal keys records by the *root* query's canonical SQL: a
  /// resumed remainder executes under its original query's root (the
  /// override), so a further switch supersedes the journaled stage instead
  /// of starting a new chain.
  const std::string root_sql;
  Optimizer optimizer;
  MemoryManager mm;
  TempTableCleaner temp_tables;
  HookGuard hook_guard;
  JournalGuard journal_guard;

  std::set<int> started;
  int recovered_failures = 0;
  bool finished = false;
  /// Per-base-table (live rows, update_activity) at query start, feeding
  /// the stats-churn Eq.(2) term. Empty when the churn gate is disabled.
  std::map<std::string, std::pair<double, double>> churn_baseline;
  /// Reopt-thrash hysteresis: set when the broker shrank this query's
  /// grant; the next gate evaluation with no new collector feedback is
  /// recorded as suppressed instead of firing (see Eq2Check's
  /// revocation_only).
  bool revoked_since_gate = false;
  /// Scrub-findings counter value last acted on (see SetScrubSignal). An
  /// advance forces journaled-temp revalidation at the next Eq.(2) gate.
  uint64_t scrub_seen = 0;
  std::unique_ptr<PipelineExecutor> exec;

  Status Start();
  Result<bool> Step();
  Status Finalize();

  /// Largest per-table churn fraction since Start(): rows appended or
  /// deleted relative to the baseline, or update activity accrued by
  /// committed DML. 0 when the baseline is empty (gate disabled).
  double ChurnSinceStart() const {
    double churn = 0;
    for (const auto& [table, base] : churn_baseline) {
      Result<TableInfo*> info = owner->catalog_->Get(table);
      if (!info.ok()) continue;
      const double rows_now =
          static_cast<double>(info.value()->heap->live_tuple_count());
      const double rows_delta =
          std::abs(rows_now - base.first) / std::max(1.0, base.first);
      const double activity_delta =
          info.value()->stats.update_activity - base.second;
      churn = std::max(churn, std::max(rows_delta, activity_delta));
    }
    return churn;
  }

  void RecordFailure(const char* point, const Status& st, const char* action,
                     int stage_node_id, int attempts) {
    ReoptFailure f;
    f.point = point;
    f.status = st.ToString();
    f.action = action;
    f.attempts = attempts;
    f.stage_node_id = stage_node_id;
    f.at_ms = ctx->SimElapsedMs();
    ctx->AddEvent(Render(f));
    trace->reopt_failures.push_back(std::move(f));
    ++report.reopt_failures;
  }

  void NoteRecovered() {
    ++recovered_failures;
    if (mode != ReoptMode::kOff &&
        recovered_failures >= owner->opts_.max_reopt_failures) {
      DegradationEvent d;
      d.from_mode = ReoptModeName(mode);
      d.to_mode = ReoptModeName(ReoptMode::kOff);
      d.failures = recovered_failures;
      d.at_ms = ctx->SimElapsedMs();
      ctx->AddEvent(Render(d));
      trace->degradations.push_back(std::move(d));
      mode = ReoptMode::kOff;
      report.reopt_degraded = true;
      // The collector hook (if installed) is defused at the next stage
      // boundary — a safe point; doing it here could destroy the hook
      // closure while it is executing.
    }
  }
};

Status QuerySession::State::Start() {
  const ReoptOptions& opts = owner->opts_;
  trace->config.mode = ReoptModeName(opts.mode);
  trace->config.mu = opts.mu;
  trace->config.theta1 = opts.theta1;
  trace->config.theta2 = opts.theta2;
  trace->config.mid_execution_memory = opts.mid_execution_memory;

  if (opts.deadline_ms > 0) ctx->SetDeadlineMs(opts.deadline_ms);
  ctx->SetBatchSize(opts.batch_size);

  if (opts.stats_churn_theta > 0) {
    for (const RelationRef& rel : spec.relations) {
      Result<TableInfo*> info = owner->catalog_->Get(rel.table);
      if (!info.ok() || info.value()->is_temp) continue;
      churn_baseline[rel.table] = {
          static_cast<double>(info.value()->heap->live_tuple_count()),
          info.value()->stats.update_activity};
    }
  }

  if (mode != ReoptMode::kOff) {
    // Collector insertion is advisory: without collectors the query simply
    // runs conventionally, so a failure here is recovered, not fatal.
    Status st = faults != nullptr ? faults->Check(faults::kReoptScia)
                                  : Status::OK();
    if (st.ok()) {
      SciaOptions scia;
      scia.mu = opts.mu;
      scia.histogram_buckets = opts.histogram_buckets;
      scia.reservoir_capacity = opts.reservoir_capacity;
      Result<SciaResult> sres = InsertStatsCollectors(
          &plan, spec, *owner->catalog_, *owner->cost_, scia);
      if (sres.ok()) {
        report.collectors_inserted = sres.value().collectors_inserted;
      } else {
        st = sres.status();
      }
    }
    if (st.code() == StatusCode::kCrashed) return st;
    if (!st.ok()) {
      RecordFailure(faults::kReoptScia, st, "continued", -1, 1);
      NoteRecovered();
    }
  }

  if (Result<bool> grant =
          mm.TryAllocate(faults, plan.get(), started, trace,
                         ctx->SimElapsedMs(), ctx->plan_generation());
      !grant.ok()) {
    if (grant.status().code() == StatusCode::kCrashed) return grant.status();
    // A failed grant leaves budgets untouched; operators fall back to
    // conservative defaults, so execution proceeds.
    RecordFailure(faults::kMemoryGrant, grant.status(), "continued", -1, 1);
    NoteRecovered();
  }
  RecostWithBudgets(plan.get(), *owner->cost_);
  report.plan_before = plan->ToString();
  report.estimated_cost_ms = plan->est.cost_total_ms;
  if (out_schema) *out_schema = plan->output_schema;

  // Section 2.3 extension: react to collector completions immediately,
  // not just at stage boundaries. Operators re-read their budgets while
  // running, so an in-flight build can pick up extra memory.
  if (opts.mid_execution_memory &&
      (mode == ReoptMode::kMemoryOnly || mode == ReoptMode::kFull)) {
    owner->live_plan_slot_ = std::make_shared<PlanNode*>(nullptr);
    std::shared_ptr<PlanNode*> live_plan = owner->live_plan_slot_;
    ctx->SetCollectorHook([this, live_plan](PlanNode* collector) {
      if (mode == ReoptMode::kOff) return;  // degraded: inert until defused
      PlanNode* root = *live_plan;
      if (root == nullptr || root->Find(collector->id) != collector) return;
      RefreshImprovedEstimates(root, *owner->cost_);
      const double before = root->improved.cost_total_ms;
      std::set<int> no_frozen;  // running operators may respond mid-flight
      Result<bool> changed =
          mm.TryAllocate(ctx->faults(), root, no_frozen, ctx->trace(),
                         ctx->SimElapsedMs(), ctx->plan_generation());
      if (!changed.ok()) {
        // A crash cannot propagate from inside the hook; the injector's
        // crash_pending latch fails the query at the operator's next
        // cancellation check.
        if (changed.status().code() == StatusCode::kCrashed) return;
        RecordFailure(faults::kMemoryGrant, changed.status(), "continued",
                      collector->id, 1);
        NoteRecovered();
        return;
      }
      if (changed.value()) {
        RefreshImprovedEstimates(root, *owner->cost_);
        MemoryReallocation rec;
        rec.trigger_node_id = collector->id;
        rec.mid_execution = true;
        rec.before_ms = before;
        rec.after_ms = root->improved.cost_total_ms;
        rec.kept = true;  // mid-execution responses are never rolled back
        ctx->trace()->memory_reallocations.push_back(rec);
        ctx->AddEvent(Render(rec));
      }
    });
    // The hook needs the current root even after plan switches.
    ctx->AddEvent("mid-execution memory response enabled");
  }
  return Status::OK();
}

Result<bool> QuerySession::State::Step() {
  if (finished) return true;
  if (!exec) {
    if (owner->live_plan_slot_) *owner->live_plan_slot_ = plan.get();
    ASSIGN_OR_RETURN(exec, PipelineExecutor::Create(ctx, plan.get()));
    RETURN_IF_ERROR(exec->Open());
  }
  if (!exec->HasMoreStages()) {
    // Defensive: a plan whose root stage already delivered (should be
    // unreachable — RunNextStage reports finished on the delivery stage).
    RETURN_IF_ERROR(exec->Close());
    RETURN_IF_ERROR(Finalize());
    return true;
  }

  ASSIGN_OR_RETURN(PipelineExecutor::StageResult stage,
                   exec->RunNextStage(rows));
  // Safe point to retire the hook if the query degraded mid-stage.
  if (mode == ReoptMode::kOff) hook_guard.Defuse();
  if (stage.stage_node) started.insert(stage.stage_node->id);
  for (PlanNode* c : stage.new_collectors) {
    report.edges.push_back(EdgeComparison{
        c->id, c->est.cardinality, c->observed.cardinality});
  }
  if (stage.finished) {
    RETURN_IF_ERROR(exec->Close());
    RETURN_IF_ERROR(Finalize());
    return true;
  }
  // Stats churn: committed concurrent DML since this query started is
  // fresh evidence against the optimizer's inputs even when no collector
  // finalized this stage, so it can open the gate path on its own.
  const double churn_theta = owner->opts_.stats_churn_theta;
  const double churn = churn_theta > 0 ? ChurnSinceStart() : 0.0;
  const bool churn_fired = churn_theta > 0 && churn > churn_theta;

  if (mode == ReoptMode::kOff ||
      (stage.new_collectors.empty() && !churn_fired)) {
    // Reopt-thrash hysteresis: when the only change since the last gate
    // evaluation is a broker revocation (no new collector feedback), the
    // Eq.(2) gate is suppressed. A revocation inflates the improved
    // estimate of *any* plan; letting it trigger a switch — and the
    // regrant trigger a switch back — would oscillate on external memory
    // pressure rather than on evidence about this plan's quality.
    if (revoked_since_gate && stage.stage_node != nullptr &&
        (mode == ReoptMode::kPlanOnly || mode == ReoptMode::kFull)) {
      RefreshImprovedEstimates(plan.get(), *owner->cost_);
      Eq2Check eq2;
      eq2.stage_node_id = stage.stage_node->id;
      eq2.improved = plan->improved.cost_total_ms;
      eq2.est = plan->est.cost_total_ms;
      eq2.degradation =
          (eq2.improved - eq2.est) / std::max(1e-9, eq2.est);
      eq2.theta2 = owner->opts_.theta2;
      eq2.fired = false;
      eq2.revocation_only = true;
      trace->eq2_checks.push_back(eq2);
      ctx->AddEvent(Render(eq2));
      revoked_since_gate = false;
    }
    return false;
  }
  // Fresh collector feedback: gate decisions below rest on real evidence,
  // not just the revocation, so the hysteresis latch clears.
  revoked_since_gate = false;

  RefreshImprovedEstimates(plan.get(), *owner->cost_);

  // Dynamic memory re-allocation for operators that have not started.
  // The new allocation is kept only if it improves the (improved)
  // estimated total — "overall performance is expected to improve
  // since the new memory allocation is based on improved estimates".
  if (mode == ReoptMode::kMemoryOnly || mode == ReoptMode::kFull) {
    std::map<int, double> snapshot;
    plan->PostOrder([&](PlanNode* n) {
      if (n->IsMemoryConsumer()) snapshot[n->id] = n->mem_budget_pages;
    });
    double before = plan->improved.cost_total_ms;
    size_t bc_mark = trace->budget_changes.size();
    Result<bool> realloc =
        mm.TryAllocate(faults, plan.get(), started, trace,
                       ctx->SimElapsedMs(), ctx->plan_generation());
    if (!realloc.ok()) {
      if (realloc.status().code() == StatusCode::kCrashed)
        return realloc.status();
      // Advisory: the current allocation keeps working.
      RecordFailure(faults::kMemoryGrant, realloc.status(), "continued",
                    stage.stage_node ? stage.stage_node->id : -1, 1);
      NoteRecovered();
    } else if (realloc.value()) {
      RefreshImprovedEstimates(plan.get(), *owner->cost_);
      MemoryReallocation rec;
      rec.trigger_node_id =
          stage.stage_node ? stage.stage_node->id : -1;
      rec.before_ms = before;
      rec.after_ms = plan->improved.cost_total_ms;
      // Keep the new allocation only with a clear improvement margin —
      // estimate noise should not shuffle budgets back and forth.
      rec.kept = plan->improved.cost_total_ms < before * 0.98;
      if (rec.kept) {
        ++report.memory_reallocations;
      } else {
        plan->PostOrder([&](PlanNode* n) {
          auto it = snapshot.find(n->id);
          if (it != snapshot.end()) n->mem_budget_pages = it->second;
        });
        RefreshImprovedEstimates(plan.get(), *owner->cost_);
        trace->budget_changes.resize(bc_mark);  // rolled back: un-record
      }
      trace->memory_reallocations.push_back(rec);
      ctx->AddEvent(Render(rec));
    }
  }

  // Query plan modification.
  if ((mode != ReoptMode::kPlanOnly && mode != ReoptMode::kFull) ||
      report.plans_switched >= owner->opts_.max_plan_switches ||
      stage.stage_node == nullptr) {
    return false;
  }
  PlanNode* frontier = stage.stage_node;
  // Nothing left to re-order when the frontier already covers every
  // relation.
  if (frontier->covers.size() >= spec.relations.size()) return false;

  const double work_done =
      std::max(0.0, ctx->SimElapsedMs() - ctx->external_ms());
  const double rem_cur = std::max(
      1e-3, plan->improved.cost_total_ms - work_done);

  // Anti-entropy tie-in: a scrub finding since the last gate evaluation
  // means durable state somewhere in the cluster was silently wrong. The
  // journaled temp snapshots are revalidated before any resume decision
  // may trust them, and the gate record is annotated so traces show the
  // recheck happened where the decision was made.
  bool integrity_recheck = false;
  if (owner->scrub_signal_ != nullptr &&
      *owner->scrub_signal_ != scrub_seen) {
    scrub_seen = *owner->scrub_signal_;
    integrity_recheck = true;
    Result<int> dropped = RevalidateJournaledStages(
        owner->journal_, owner->catalog_, faults, root_sql);
    if (!dropped.ok()) {
      if (dropped.status().code() == StatusCode::kCrashed)
        return dropped.status();
      RecordFailure(faults::kRecoveryLoad, dropped.status(), "continued",
                    frontier->id, 1);
      NoteRecovered();
    } else if (dropped.value() > 0) {
      ctx->AddEvent("integrity recheck: dropped " +
                    std::to_string(dropped.value()) +
                    " journaled stage(s) with stale temp checksums");
    }
  }

  // Eq. (2): is the current plan likely sub-optimal?
  const double t_est = std::max(1e-9, plan->est.cost_total_ms);
  Eq2Check eq2;
  eq2.stage_node_id = frontier->id;
  eq2.integrity_recheck = integrity_recheck;
  eq2.improved = plan->improved.cost_total_ms;
  eq2.est = plan->est.cost_total_ms;
  eq2.degradation = (eq2.improved - eq2.est) / t_est;
  if (churn_fired && churn > eq2.degradation) {
    // The churn fraction joins the sub-optimality indicator: estimates
    // built on inputs that concurrent DML has since changed by `churn`
    // are at least that unreliable, whatever the collectors say.
    eq2.degradation = churn;
    eq2.stats_churn = true;
  }
  eq2.theta2 = owner->opts_.theta2;
  eq2.fired = eq2.degradation > owner->opts_.theta2;
  trace->eq2_checks.push_back(eq2);
  ctx->AddEvent(Render(eq2));
  if (!eq2.fired) return false;

  // Eq. (1): is re-optimization cheap relative to what remains? With a
  // retained memo the prospective re-plan is an incremental repair, so it
  // is priced at the marginal cost of the changed leaves — the temp-table
  // leaf (always new) plus every uncovered relation whose scan has exact
  // run-time observations (those become overrides that dirty the leaf) —
  // instead of the full from-scratch estimate. Cheaper re-planning lowers
  // the gate: switches the old pricing rejected can now be considered.
  const int remainder_rels = static_cast<int>(
      spec.relations.size() - frontier->covers.size() + 1);
  int changed_leaves = remainder_rels;
  if (memo != nullptr) {
    int observed_uncovered = 0;
    plan->PostOrder([&](PlanNode* n) {
      if (n->kind != OpKind::kSeqScan && n->kind != OpKind::kIndexScan) return;
      if (!n->observed.valid || n->observed.partial) return;
      if (n->covers.size() == 1 &&
          frontier->covers.count(*n->covers.begin()) == 0) {
        ++observed_uncovered;
      }
    });
    changed_leaves = std::min(remainder_rels, 1 + observed_uncovered);
  }
  Eq1Check eq1;
  eq1.stage_node_id = frontier->id;
  eq1.t_opt_est =
      owner->calibration_
          ? (memo != nullptr
                 ? owner->calibration_->EstimateIncrementalOptTimeMs(
                       remainder_rels, changed_leaves)
                 : owner->calibration_->EstimateOptTimeMs(remainder_rels))
          : owner->cost_->params().t_opt_per_plan_ms * 256;
  eq1.rem_cur = rem_cur;
  eq1.theta1 = owner->opts_.theta1;
  eq1.fired = eq1.t_opt_est <= owner->opts_.theta1 * rem_cur;
  trace->eq1_checks.push_back(eq1);
  ctx->AddEvent(Render(eq1));
  if (!eq1.fired) return false;
  const double t_opt_est = eq1.t_opt_est;

  // Candidate plan switch — a transaction against the current plan.
  // Until the frontier is drained into the temp table (the point of no
  // return), any failure rolls the candidate back: the temp table is
  // dropped, its budget records un-recorded, and the query continues
  // on its current plan. Failures after the drain are fatal but still
  // unwind through the scope guards (no leaked temps, no live hook).
  ++report.reopts_considered;
  // A successful switch frees the old plan tree (and `frontier` with
  // it) before the post-switch fault check, so failure records must
  // not read through the pointer.
  const int frontier_id = frontier->id;
  const DiskStats io_before = ctx->pool()->disk()->stats();
  const size_t cand_bc_mark = trace->budget_changes.size();
  std::string temp_name;
  bool accepted = false;
  bool past_no_return = false;
  const char* site = faults::kReoptOptimize;
  Status cand = [&]() -> Status {
    temp_name = owner->catalog_->NextTempName();
    Schema temp_schema =
        TempTableSchema(temp_name, frontier->output_schema);
    TableInfo* temp_info = nullptr;
    ASSIGN_OR_RETURN(temp_info,
                     owner->catalog_->CreateTable(temp_name, temp_schema,
                                                  /*is_temp=*/true));
    temp_tables.Track(temp_name);  // dropped on rollback or unwind
    RETURN_IF_ERROR(owner->catalog_->SetStats(
        temp_name, BuildTempStats(*frontier, spec, *owner->catalog_)));
    QuerySpec remainder;
    ASSIGN_OR_RETURN(remainder, BuildRemainderSpec(spec, frontier->covers,
                                                   temp_name));

    // Re-invoke the optimizer with the new statistics: observed base
    // relation stats override the (possibly stale) catalog.
    BaseRelOverrides overrides =
        CollectBaseRelOverrides(*plan, spec, *owner->catalog_);
    if (faults != nullptr)
      RETURN_IF_ERROR(faults->Check(faults::kReoptOptimize));
    OptimizeResult new_opt;
    if (memo != nullptr) {
      // Incremental repair: translate the retained memo into the
      // remainder's ordinal space (consuming it — a rejected candidate
      // leaves the session without a memo, falling back to the pre-memo
      // from-scratch behaviour at later gates) and repair only the
      // subsets touched by changed leaves.
      MemoRepair mr;
      mr.stage_node_id = frontier_id;
      mr.scratch_est_ms =
          owner->calibration_
              ? owner->calibration_->EstimateOptTimeMs(remainder_rels)
              : 0;
      std::unique_ptr<PlanMemo> translated = TranslateMemoForRemainder(
          std::move(*memo), spec, frontier->covers);
      memo.reset();
      ASSIGN_OR_RETURN(new_opt,
                       optimizer.RepairPlan(remainder, &overrides,
                                            std::move(translated), &mr));
      ctx->AddEvent(Render(mr));
      trace->memo_repairs.push_back(std::move(mr));
    } else {
      ASSIGN_OR_RETURN(new_opt, optimizer.Plan(remainder, &overrides));
    }
    for (FeedbackApplied& fa : new_opt.feedback_applied) {
      ctx->AddEvent(Render(fa));
      trace->feedback_applied.push_back(std::move(fa));
    }
    ctx->ChargeExternalMs(new_opt.sim_opt_time_ms);
    report.reopt_overhead_ms += new_opt.sim_opt_time_ms;

    // Cost the candidate under the memory it would actually receive;
    // comparing an optimistically costed new plan against the
    // budget-aware improved estimate of the current plan would bias
    // the gate toward switching. Budget changes are recorded against
    // the candidate's generation and un-recorded on reject/rollback.
    site = faults::kMemoryGrant;
    {
      std::set<int> fresh;
      RETURN_IF_ERROR(mm.TryAllocate(faults, new_opt.plan.get(), fresh,
                                     trace, ctx->SimElapsedMs(),
                                     ctx->plan_generation() + 1)
                          .status());
      RecostWithBudgets(new_opt.plan.get(), *owner->cost_);
    }

    const double finish_frontier =
        std::max(0.0, frontier->improved.cost_total_ms - work_done);
    const double write_cost =
        frontier->improved.pages * owner->cost_->params().t_io_ms;
    const double rem_new = finish_frontier + write_cost +
                           new_opt.plan->est.cost_total_ms + t_opt_est;

    SwitchDecision decision;
    decision.stage_node_id = frontier->id;
    decision.rem_cur = rem_cur;
    decision.rem_new = rem_new;
    decision.temp_table = temp_name;
    decision.accepted = rem_new < rem_cur;
    if (!decision.accepted) {
      // Reject: keep the current plan; only the optimizer call was
      // paid.
      trace->budget_changes.resize(cand_bc_mark);
      trace->switches.push_back(decision);
      ctx->AddEvent(Render(decision));
      site = faults::kStorageFree;
      RETURN_IF_ERROR(temp_tables.DropNow(temp_name));
      return Status::OK();
    }

    // Accept. Collector insertion for the new plan runs before the
    // point of no return so its failure can still roll back.
    std::unique_ptr<PlanNode> new_plan = std::move(new_opt.plan);
    if (mode == ReoptMode::kFull || mode == ReoptMode::kPlanOnly) {
      site = faults::kReoptScia;
      if (faults != nullptr)
        RETURN_IF_ERROR(faults->Check(faults::kReoptScia));
      SciaOptions scia;
      scia.mu = owner->opts_.mu;
      scia.histogram_buckets = owner->opts_.histogram_buckets;
      scia.reservoir_capacity = owner->opts_.reservoir_capacity;
      SciaResult sres;
      ASSIGN_OR_RETURN(sres, InsertStatsCollectors(&new_plan, remainder,
                                                   *owner->catalog_,
                                                   *owner->cost_, scia));
      report.collectors_inserted += sres.collectors_inserted;
    }

    // Materializing drains the in-flight operator's output into the
    // temp table (Fig. 6); the drained state cannot be replayed, so
    // this is the point of no return. The injected fault is checked
    // *before* the drain — injected materialize failures stay
    // recoverable; a real failure mid-drain is fatal (but clean).
    site = faults::kReoptMaterialize;
    if (faults != nullptr)
      RETURN_IF_ERROR(faults->Check(faults::kReoptMaterialize));
    past_no_return = true;
    uint64_t mat_rows = 0;
    ASSIGN_OR_RETURN(
        mat_rows, exec->MaterializeInto(frontier, temp_info->heap.get()));
    decision.mat_rows = mat_rows;
    trace->switches.push_back(decision);
    ctx->AddEvent(Render(decision));

    // Refresh the temp's stats with exact counts.
    TableStats exact = temp_info->stats;
    exact.row_count = static_cast<double>(mat_rows);
    exact.page_count = static_cast<double>(temp_info->heap->page_count());
    exact.avg_tuple_bytes = temp_info->heap->avg_tuple_bytes();
    RETURN_IF_ERROR(owner->catalog_->SetStats(temp_name, std::move(exact)));

    ctx->BumpPlanGeneration();  // new plan: ids may collide with old
    started.clear();
    if (Result<bool> grant =
            mm.TryAllocate(faults, new_plan.get(), started, trace,
                           ctx->SimElapsedMs(), ctx->plan_generation());
        !grant.ok()) {
      if (grant.status().code() == StatusCode::kCrashed)
        return grant.status();
      // Advisory even past the point of no return: the adopted plan
      // runs on default budgets.
      RecordFailure(faults::kMemoryGrant, grant.status(), "continued",
                    frontier_id, 1);
      NoteRecovered();
    }
    RecostWithBudgets(new_plan.get(), *owner->cost_);

    // Journal the committed stage: the materialized temps are durable,
    // budgets are final, and the remainder is known — everything a
    // restart needs to resume from here instead of starting over. An
    // injected crash here models dying during the journal fsync (the
    // previous resume point survives; this stage's work is lost). A
    // plain write error is advisory: the journal is a recovery aid,
    // losing it must not perturb the query itself.
    if (owner->journal_ != nullptr) {
      site = faults::kJournalAppend;
      JournalStage jstage;
      jstage.root_sql = root_sql;
      jstage.stage = report.plans_switched + 1;
      jstage.remainder_sql = remainder.ToSql();
      jstage.plan_fingerprint = FingerprintPlanText(new_plan->ToString());
      jstage.work_done_ms = ctx->SimElapsedMs();
      new_plan->PostOrder([&](PlanNode* n) {
        if (n->IsMemoryConsumer())
          jstage.budgets.emplace_back(n->id, n->mem_budget_pages);
      });
      // Snapshot every temp table the remainder reads (an earlier
      // switch's temp may still be referenced), flushing first so the
      // journaled page list covers every row.
      for (const RelationRef& r : remainder.relations) {
        Result<TableInfo*> ti = owner->catalog_->Get(r.table);
        if (!ti.ok() || !ti.value()->is_temp) continue;
        RETURN_IF_ERROR(ti.value()->heap->Flush());
        TempSnapshot snap;
        snap.name = ti.value()->name;
        snap.schema = ti.value()->schema;
        for (size_t p = 0; p < ti.value()->heap->flushed_page_count(); ++p)
          snap.page_ids.push_back(ti.value()->heap->page_id(p));
        snap.tuple_count = ti.value()->heap->tuple_count();
        snap.total_tuple_bytes = ti.value()->heap->total_tuple_bytes();
        snap.content_checksum = ti.value()->heap->content_checksum();
        snap.stats = ti.value()->stats;
        jstage.temps.push_back(std::move(snap));
      }
      Status jst = owner->journal_->AppendStage(jstage, faults);
      if (jst.code() == StatusCode::kCrashed) return jst;
      if (!jst.ok()) {
        // Recorded but not counted toward degradation: a broken
        // journal must not switch re-optimization off.
        RecordFailure(faults::kJournalAppend, jst, "continued",
                      frontier_id, 1);
      } else {
        ctx->ChargeExternalMs(
            owner->cost_->params().t_io_ms);  // the "fsync"
      }
    }

    RETURN_IF_ERROR(exec->Close());
    // Close published partial observations from still-open collectors; bank
    // everything the abandoned plan learned before adopting the new one
    // (whose temp-table scans are not harvestable).
    HarvestFeedback(*plan, spec, *owner->catalog_, owner->feedback_);
    spec = std::move(remainder);
    plan = std::move(new_plan);
    // Retain the repaired memo for the adopted plan's own re-optimization
    // points. (If the harvest above deposited new feedback, the next
    // repair will detect the generation bump and fall back — correct, the
    // retained join entries never saw that feedback.)
    memo = std::move(new_opt.memo);
    ++report.plans_switched;
    report.plan_after = plan->ToString();
    if (out_schema) *out_schema = plan->output_schema;

    // The old plan is closed and replaced: any failure from here
    // aborts the query (the scope guards still clean up).
    site = faults::kReoptPostSwitch;
    if (faults != nullptr)
      RETURN_IF_ERROR(faults->Check(faults::kReoptPostSwitch));
    if (owner->opts_.fault_inject_after_switch)  // deprecated alias (see .h)
      return Status::Internal("fault injection: abort after plan switch");
    accepted = true;
    return Status::OK();
  }();

  if (!cand.ok()) {
    const DiskStats io_now = ctx->pool()->disk()->stats();
    const int attempts =
        1 + static_cast<int>(io_now.io_retries - io_before.io_retries);
    if (cand.code() == StatusCode::kCrashed) {
      // Simulated process death: never roll back (nothing runs in a
      // dead process — the scope guards skip cleanup too, leaving the
      // durable state exactly as the crash found it).
      RecordFailure(site, cand, "crashed", frontier_id, attempts);
      return cand;
    }
    if (past_no_return) {
      // Fatal: record, then unwind — the scope guards drop every temp
      // table and defuse the hook on the way out.
      RecordFailure(site, cand, "fatal", frontier_id, attempts);
      return cand;
    }
    // Roll back the candidate: un-record its budget changes, drop its
    // temp table, and keep executing the current plan from the same
    // frontier.
    trace->budget_changes.resize(cand_bc_mark);
    if (!temp_name.empty()) (void)temp_tables.DropNow(temp_name);
    RecordFailure(site, cand, "rolled_back", frontier_id, attempts);
    NoteRecovered();
    return false;
  }
  if (!accepted) return false;  // gate rejected the candidate plan

  // Accepted switch: the old executor is already closed; the next Step()
  // creates a fresh one over the adopted plan (the old outer loop's next
  // iteration).
  exec.reset();
  return false;
}

Status QuerySession::State::Finalize() {
  finished = true;
  if (plan != nullptr)
    HarvestFeedback(*plan, spec, *owner->catalog_, owner->feedback_);
  exec.reset();
  hook_guard.Defuse();

  if (Status st = temp_tables.DropAll(); !st.ok()) {
    // A crash during cleanup still kills the query (recovery re-runs it);
    // any other failed drop is best-effort: the results are already
    // delivered, so it is recorded, not returned (failed page releases are
    // retried by the heap destructors).
    if (st.code() == StatusCode::kCrashed) return st;
    RecordFailure(faults::kStorageFree, st, "continued", -1, 1);
  }

  report.sim_time_ms = ctx->SimElapsedMs();
  report.page_ios = ctx->PageIos();
  report.output_rows = rows ? rows->size() : 0;
  report.trace = *trace;
  for (const std::string& e : ctx->events()) report.events.push_back(e);
  return Status::OK();
}

QuerySession::QuerySession(std::unique_ptr<State> state)
    : state_(std::move(state)) {}

QuerySession::~QuerySession() = default;

Result<bool> QuerySession::Step() { return state_->Step(); }

ExecutionReport QuerySession::TakeReport() {
  return std::move(state_->report);
}

ExecContext* QuerySession::ctx() const { return state_->ctx; }

double QuerySession::PinnedPages() const {
  const State* s = state_.get();
  if (s->finished || s->plan == nullptr) return 0;
  double pinned = 0;
  s->plan->PostOrder([&](PlanNode* n) {
    if (n->IsMemoryConsumer() && s->started.count(n->id) > 0)
      pinned += n->mem_budget_pages;
  });
  return pinned;
}

Result<std::unique_ptr<QuerySession>> DynamicReoptimizer::StartSessionWithPlan(
    QuerySpec spec, std::unique_ptr<PlanNode> plan, ExecContext* ctx,
    std::vector<Tuple>* rows, Schema* out_schema,
    std::unique_ptr<PlanMemo> memo) {
  auto state = std::make_unique<QuerySession::State>(
      this, std::move(spec), std::move(plan), ctx, rows, out_schema);
  state->memo = std::move(memo);
  RETURN_IF_ERROR(state->Start());
  return std::unique_ptr<QuerySession>(new QuerySession(std::move(state)));
}

Result<std::unique_ptr<QuerySession>> DynamicReoptimizer::StartSession(
    QuerySpec spec, ExecContext* ctx, std::vector<Tuple>* rows,
    Schema* out_schema) {
  Optimizer optimizer(catalog_, cost_, optimizer_opts_, feedback_);
  ASSIGN_OR_RETURN(OptimizeResult opt, optimizer.Plan(spec));
  for (FeedbackApplied& fa : opt.feedback_applied) {
    ctx->AddEvent(Render(fa));
    ctx->trace()->feedback_applied.push_back(std::move(fa));
  }
  ctx->ChargeExternalMs(opt.sim_opt_time_ms);
  return StartSessionWithPlan(std::move(spec), std::move(opt.plan), ctx, rows,
                              out_schema, std::move(opt.memo));
}

Result<ExecutionReport> DynamicReoptimizer::Execute(QuerySpec spec,
                                                    ExecContext* ctx,
                                                    std::vector<Tuple>* rows,
                                                    Schema* out_schema) {
  Optimizer optimizer(catalog_, cost_, optimizer_opts_, feedback_);
  ASSIGN_OR_RETURN(OptimizeResult opt, optimizer.Plan(spec));
  for (FeedbackApplied& fa : opt.feedback_applied) {
    ctx->AddEvent(Render(fa));
    ctx->trace()->feedback_applied.push_back(std::move(fa));
  }
  ctx->ChargeExternalMs(opt.sim_opt_time_ms);
  return ExecuteWithPlan(std::move(spec), std::move(opt.plan), ctx, rows,
                         out_schema, std::move(opt.memo));
}

Result<ExecutionReport> DynamicReoptimizer::ExecuteWithPlan(
    QuerySpec spec, std::unique_ptr<PlanNode> plan, ExecContext* ctx,
    std::vector<Tuple>* rows, Schema* out_schema,
    std::unique_ptr<PlanMemo> memo) {
  std::unique_ptr<QuerySession> session;
  ASSIGN_OR_RETURN(session,
                   StartSessionWithPlan(std::move(spec), std::move(plan), ctx,
                                        rows, out_schema, std::move(memo)));
  while (true) {
    bool done = false;
    ASSIGN_OR_RETURN(done, session->Step());
    if (done) break;
  }
  return session->TakeReport();
}

void QuerySession::OnGrantChanged(double new_total_pages) {
  State* s = state_.get();
  const double old_total = s->mm.total_pages();
  s->mm.set_total_pages(new_total_pages);
  if (s->finished || s->plan == nullptr) return;
  // Re-divide under the new total. Started operators stay frozen
  // (Section 2.3's invariant); in-flight operators that are now over the
  // budget they re-read will spill rather than grow.
  Result<bool> changed =
      s->mm.TryAllocate(s->faults, s->plan.get(), s->started, s->trace,
                        s->ctx->SimElapsedMs(), s->ctx->plan_generation());
  if (!changed.ok()) {
    // Crash latches in the injector and fails the query at its next
    // cancellation check; any other failure leaves the old budgets in
    // place. Not NoteRecovered(): an external revocation must not push
    // the victim toward reopt degradation.
    if (changed.status().code() != StatusCode::kCrashed)
      s->RecordFailure(faults::kMemoryGrant, changed.status(), "continued",
                       -1, 1);
  } else if (changed.value()) {
    RefreshImprovedEstimates(s->plan.get(), *s->owner->cost_);
  }
  if (new_total_pages < old_total) s->revoked_since_gate = true;
}

Result<int> RevalidateJournaledStages(QueryJournal* journal, Catalog* catalog,
                                      FaultInjector* faults,
                                      const std::string& root_sql) {
  if (journal == nullptr || journal->empty()) return 0;
  ASSIGN_OR_RETURN(std::vector<JournalStage> stages, journal->Load(faults));
  int dropped = 0;
  for (const JournalStage& js : stages) {
    if (!root_sql.empty() && js.root_sql != root_sql) continue;
    bool intact = true;
    for (const TempSnapshot& snap : js.temps) {
      if (!catalog->Exists(snap.name)) {
        intact = false;
        break;
      }
      Result<TableInfo*> info = catalog->Get(snap.name);
      if (!info.ok()) {
        intact = false;
        break;
      }
      HeapFile* heap = info.value()->heap.get();
      if (heap->tuple_count() != snap.tuple_count) {
        intact = false;
        break;
      }
      // Recompute from the stored bytes (charged I/O): the incremental
      // checksum would only restate what Append was told, not what the
      // media kept.
      Result<uint64_t> cs = heap->ComputeContentChecksum();
      if (!cs.ok() || cs.value() != snap.content_checksum) {
        intact = false;
        break;
      }
    }
    if (!intact) {
      journal->MarkComplete(js.root_sql);
      ++dropped;
    }
  }
  return dropped;
}

}  // namespace reoptdb
