// Sensitivity ablation: mu, theta1, theta2.
//
// The paper sets mu=0.05, theta1=0.05, theta2=0.2 and defers the
// sensitivity study to Kabra's thesis [12]; this bench implements it.
// Sweeps each knob on a complex query (Q5) and a medium query (Q3).

#include "bench_common.h"

using namespace reoptdb;
using namespace reoptdb::bench;

namespace {

void Sweep(Database* db, const char* qname, const std::string& sql) {
  QueryResult normal = MustRun(db, sql, Mode(ReoptMode::kOff));
  double base = normal.report.sim_time_ms;
  std::printf("\n### %s (normal = %.1f ms)\n\n", qname, base);

  std::printf("| mu | improvement | collectors |\n|---|---|---|\n");
  for (double mu : {0.005, 0.01, 0.02, 0.05, 0.1, 0.2}) {
    ReoptOptions o = Mode(ReoptMode::kFull);
    o.mu = mu;
    QueryResult r = MustRun(db, sql, o);
    std::printf("| %.3f | %+.1f%% | %d |\n", mu,
                (1.0 - r.report.sim_time_ms / base) * 100,
                r.report.collectors_inserted);
  }

  std::printf("\n| theta2 | improvement | reopts considered | switches |\n");
  std::printf("|---|---|---|---|\n");
  for (double t2 : {0.05, 0.1, 0.2, 0.4, 0.8, 2.0}) {
    ReoptOptions o = Mode(ReoptMode::kFull);
    o.theta2 = t2;
    QueryResult r = MustRun(db, sql, o);
    std::printf("| %.2f | %+.1f%% | %d | %d |\n", t2,
                (1.0 - r.report.sim_time_ms / base) * 100,
                r.report.reopts_considered, r.report.plans_switched);
  }

  std::printf("\n| theta1 | improvement | reopts considered |\n|---|---|---|\n");
  for (double t1 : {0.005, 0.02, 0.05, 0.2, 1.0}) {
    ReoptOptions o = Mode(ReoptMode::kFull);
    o.theta1 = t1;
    QueryResult r = MustRun(db, sql, o);
    std::printf("| %.3f | %+.1f%% | %d |\n", t1,
                (1.0 - r.report.sim_time_ms / base) * 100,
                r.report.reopts_considered);
  }
}

}  // namespace

int main() {
  BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader("Sensitivity to mu, theta1, theta2 (paper Section 2.4/3.2)",
              cfg);
  auto db = MakeTpcdDatabase(cfg);
  Sweep(db.get(), "Q5 (complex)", tpcd::Q5Sql());
  Sweep(db.get(), "Q3 (medium)", tpcd::Q3Sql());
  return 0;
}
