file(REMOVE_RECURSE
  "CMakeFiles/reoptdb_shell.dir/reoptdb_shell.cpp.o"
  "CMakeFiles/reoptdb_shell.dir/reoptdb_shell.cpp.o.d"
  "reoptdb_shell"
  "reoptdb_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reoptdb_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
