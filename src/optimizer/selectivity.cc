#include "optimizer/selectivity.h"

#include <algorithm>
#include <cmath>

#include "storage/page.h"

namespace reoptdb {

namespace {
// System-R magic numbers [22], used when no statistics help.
constexpr double kDefaultEq = 0.1;
constexpr double kDefaultRange = 1.0 / 3.0;
constexpr double kDefaultNe = 0.9;
// Column-vs-column predicates within one relation (e.g. correlated dates):
// the engine has no joint statistics, so a constant is all it can do —
// a deliberate, realistic source of estimation error.
constexpr double kColColRange = 1.0 / 3.0;
constexpr double kColColEq = 0.05;
// Slotted-page overhead: 4-byte slot per tuple + page header.
constexpr double kPageFillFactor = 0.95;
}  // namespace

double DerivedRel::Pages() const {
  double bytes = rows * (avg_tuple_bytes + 4.0);
  return std::max(1.0, std::ceil(bytes / (kPageSize * kPageFillFactor)));
}

double Estimator::OnePredSelectivity(const ColumnStats* cs, const FilterPred& f,
                                     double rows) {
  if (f.rhs_is_column) {
    return f.op == CmpOp::kEq ? kColColEq
           : f.op == CmpOp::kNe ? kDefaultNe
                                : kColColRange;
  }
  if (cs == nullptr) {
    switch (f.op) {
      case CmpOp::kEq:
        return kDefaultEq;
      case CmpOp::kNe:
        return kDefaultNe;
      default:
        return kDefaultRange;
    }
  }
  if (f.literal.is_string()) {
    double d = cs->distinct > 0 ? cs->distinct : 1.0 / kDefaultEq;
    double eq = 1.0 / std::max(1.0, d);
    switch (f.op) {
      case CmpOp::kEq:
        return eq;
      case CmpOp::kNe:
        return 1.0 - eq;
      default:
        return kDefaultRange;  // range over strings: no stats
    }
  }
  const double v = f.literal.AsNumeric();
  const double inf = std::numeric_limits<double>::infinity();
  switch (f.op) {
    case CmpOp::kEq:
      return cs->SelectivityEquals(v, rows);
    case CmpOp::kNe:
      return 1.0 - cs->SelectivityEquals(v, rows);
    case CmpOp::kLt:
      return cs->SelectivityRange(-inf, false, v, /*hi_strict=*/true, rows);
    case CmpOp::kLe:
      return cs->SelectivityRange(-inf, false, v, /*hi_strict=*/false, rows);
    case CmpOp::kGt:
      return cs->SelectivityRange(v, /*lo_strict=*/true, inf, false, rows);
    case CmpOp::kGe:
      return cs->SelectivityRange(v, /*lo_strict=*/false, inf, false, rows);
  }
  return kDefaultRange;
}

Result<DerivedRel> Estimator::RawRel(int rel_idx) const {
  const RelationRef& ref = spec_->relations[rel_idx];
  ASSIGN_OR_RETURN(const TableInfo* info, catalog_->Get(ref.table));
  DerivedRel rel;
  rel.rels = {rel_idx};
  const TableStats& ts = info->stats;
  rel.rows = ts.analyzed ? ts.row_count
                         : static_cast<double>(info->heap->tuple_count());
  rel.avg_tuple_bytes = ts.analyzed && ts.avg_tuple_bytes > 0
                            ? ts.avg_tuple_bytes
                            : std::max(16.0, info->heap->avg_tuple_bytes());
  for (const Column& c : info->schema.columns()) {
    ColumnStats cs;
    const ColumnStats* found = ts.Find(c.name);
    if (found) {
      cs = *found;
    } else {
      cs.type = c.type;
      cs.avg_width = c.avg_width;
    }
    rel.cols[ref.alias + "." + c.name] = std::move(cs);
  }
  return rel;
}

Result<double> Estimator::FilterSelectivity(int rel_idx) const {
  ASSIGN_OR_RETURN(DerivedRel raw, RawRel(rel_idx));
  double sel = 1.0;
  const RelationRef& ref = spec_->relations[rel_idx];

  // Range predicates on the same column are merged into one interval
  // before estimation (multiplying them as if independent would square
  // the selectivity of a BETWEEN). Other predicate shapes multiply under
  // the independence assumption.
  struct RangeAcc {
    double lo = -std::numeric_limits<double>::infinity();
    bool lo_strict = false;
    double hi = std::numeric_limits<double>::infinity();
    bool hi_strict = false;
  };
  std::map<std::string, RangeAcc> ranges;

  for (const FilterPred& f : spec_->filters) {
    if (f.rel != rel_idx) continue;
    const ColumnStats* cs = raw.Find(ref.alias + "." + f.column);
    const bool mergeable_range =
        !f.rhs_is_column && !f.literal.is_string() &&
        (f.op == CmpOp::kLt || f.op == CmpOp::kLe || f.op == CmpOp::kGt ||
         f.op == CmpOp::kGe || f.op == CmpOp::kEq);
    if (!mergeable_range) {
      sel *= OnePredSelectivity(cs, f, raw.rows);  // independence assumption
      continue;
    }
    RangeAcc& acc = ranges[f.column];
    double v = f.literal.AsNumeric();
    switch (f.op) {
      case CmpOp::kEq:
        if (v >= acc.lo) {
          acc.lo = v;
          acc.lo_strict = false;
        }
        if (v <= acc.hi) {
          acc.hi = v;
          acc.hi_strict = false;
        }
        break;
      case CmpOp::kLt:
        if (v < acc.hi || (v == acc.hi && !acc.hi_strict)) {
          acc.hi = v;
          acc.hi_strict = true;
        }
        break;
      case CmpOp::kLe:
        if (v < acc.hi) {
          acc.hi = v;
          acc.hi_strict = false;
        }
        break;
      case CmpOp::kGt:
        if (v > acc.lo || (v == acc.lo && !acc.lo_strict)) {
          acc.lo = v;
          acc.lo_strict = true;
        }
        break;
      case CmpOp::kGe:
        if (v > acc.lo) {
          acc.lo = v;
          acc.lo_strict = false;
        }
        break;
      default:
        break;
    }
  }
  for (const auto& [column, acc] : ranges) {
    const ColumnStats* cs = raw.Find(ref.alias + "." + column);
    if (cs == nullptr) {
      sel *= kDefaultRange;
      continue;
    }
    sel *= cs->SelectivityRange(acc.lo, acc.lo_strict, acc.hi, acc.hi_strict,
                                raw.rows);
  }
  return std::clamp(sel, 0.0, 1.0);
}

Result<DerivedRel> Estimator::BaseRel(int rel_idx) const {
  if (overrides_ != nullptr) {
    auto it = overrides_->find(spec_->relations[rel_idx].alias);
    if (it != overrides_->end()) {
      // Run-time overrides are *this* query's live observations — fresher
      // than any persisted feedback, so feedback is not consulted.
      DerivedRel rel = it->second;
      rel.rels = {rel_idx};
      return rel;
    }
  }
  ASSIGN_OR_RETURN(DerivedRel rel, RawRel(rel_idx));
  ASSIGN_OR_RETURN(double sel, FilterSelectivity(rel_idx));
  double new_rows = std::max(1.0, rel.rows * sel);

  const RelationRef& ref = spec_->relations[rel_idx];
  // Adjust per-column stats: filtered columns lose their histogram and get
  // tightened bounds; every distinct count is capped by the new row count.
  for (auto& [name, cs] : rel.cols) {
    bool filtered = false;
    for (const FilterPred& f : spec_->filters) {
      if (f.rel != rel_idx || ref.alias + "." + f.column != name) continue;
      filtered = true;
      if (!f.rhs_is_column && !f.literal.is_string() && cs.has_bounds) {
        double v = f.literal.AsNumeric();
        switch (f.op) {
          case CmpOp::kEq:
            cs.min = cs.max = v;
            break;
          case CmpOp::kLt:
          case CmpOp::kLe:
            cs.max = std::min(cs.max, v);
            break;
          case CmpOp::kGt:
          case CmpOp::kGe:
            cs.min = std::max(cs.min, v);
            break;
          default:
            break;
        }
      }
    }
    if (filtered) {
      if (cs.has_histogram()) {
        // Keep distinct-in-range before dropping the histogram.
        cs.distinct = cs.histogram.EstimateDistinctInRange(cs.min, cs.max);
        cs.histogram = Histogram();
      } else if (cs.distinct > 0) {
        cs.distinct = std::max(1.0, cs.distinct * sel);
      }
    }
    if (cs.distinct > 0) cs.distinct = std::min(cs.distinct, new_rows);
  }
  rel.rows = new_rows;
  ApplyBaseFeedback(rel_idx, &rel);
  return rel;
}

void Estimator::LogFeedback(FeedbackApplied rec) const {
  if (feedback_log_ == nullptr) return;
  const std::string key = rec.scope + "|" + rec.table + "|" + rec.signature;
  if (!logged_.insert(key).second) return;
  feedback_log_->push_back(std::move(rec));
}

void Estimator::ApplyBaseFeedback(int rel_idx, DerivedRel* rel) const {
  if (feedback_ == nullptr) return;
  const RelationRef& ref = spec_->relations[rel_idx];
  Result<const TableInfo*> info = catalog_->Get(ref.table);
  if (!info.ok() || info.value()->is_temp) return;  // temps are query-local
  const double current_rows =
      static_cast<double>(info.value()->heap->tuple_count());
  const std::string sig = PredicateSignature(*spec_, rel_idx);
  const BaseRelFeedback* fb = feedback_->LookupBaseRel(
      ref.table, sig, current_rows, info.value()->stats.update_activity);
  if (fb == nullptr) return;

  const double est_rows = rel->rows;
  double fb_rows;
  if (fb->partial) {
    // A lower bound can only raise the estimate.
    fb_rows = std::max(est_rows, fb->observed_rows);
  } else {
    // Re-apply the observed selectivity to the current row count so
    // feedback tracks growth within the staleness window.
    fb_rows = std::clamp(fb->selectivity, 0.0, 1.0) * current_rows;
  }
  rel->rows = std::max(1.0, fb_rows);
  if (!fb->partial && fb->avg_tuple_bytes > 0)
    rel->avg_tuple_bytes = fb->avg_tuple_bytes;
  for (const auto& [name, cf] : fb->columns) {
    auto it = rel->cols.find(ref.alias + "." + name);
    if (it == rel->cols.end()) continue;
    ColumnStats& cs = it->second;
    if (cf.has_bounds) {
      cs.has_bounds = true;
      cs.min = cf.min;
      cs.max = cf.max;
    }
    if (cf.distinct > 0) {
      if (cf.distinct_is_lower_bound) {
        // Lower bounds never shrink an existing distinct estimate.
        if (cf.distinct > cs.distinct) {
          cs.distinct = cf.distinct;
          cs.distinct_is_lower_bound = true;
        }
      } else {
        cs.distinct = cf.distinct;
        cs.distinct_is_lower_bound = false;
      }
    }
  }
  for (auto& [name, cs] : rel->cols) {
    if (cs.distinct > 0) cs.distinct = std::min(cs.distinct, rel->rows);
  }
  LogFeedback(FeedbackApplied{"base", ref.table, sig, est_rows, rel->rows,
                              fb->partial});
}

void Estimator::ApplyJoinFeedback(DerivedRel* out) const {
  if (feedback_ == nullptr || out->rels.size() < 2) return;
  // Temp relations (a remainder query's materialized frontier) are
  // query-local: their signatures must not key persistent feedback.
  for (int r : out->rels) {
    Result<const TableInfo*> info = catalog_->Get(spec_->relations[r].table);
    if (!info.ok() || info.value()->is_temp) return;
  }
  const std::string sig = JoinSignature(*spec_, out->rels);
  if (sig.empty()) return;
  const JoinFeedback* fb = feedback_->LookupJoin(sig, *catalog_);
  if (fb == nullptr) return;
  const double est_rows = out->rows;
  out->rows = fb->partial ? std::max(est_rows, fb->observed_rows)
                          : std::max(1.0, fb->observed_rows);
  for (auto& [name, cs] : out->cols) {
    if (cs.distinct > 0) cs.distinct = std::min(cs.distinct, out->rows);
  }
  LogFeedback(
      FeedbackApplied{"join", "", sig, est_rows, out->rows, fb->partial});
}

DerivedRel Estimator::Join(const DerivedRel& left, const DerivedRel& right,
                           const std::vector<const JoinPred*>& preds) const {
  double prefeedback_rows = 0;
  DerivedRel out = JoinShallow(left, right, preds, &prefeedback_rows);
  FillJoinCols(&out, left, right, prefeedback_rows);
  return out;
}

const std::pair<std::string, std::string>& Estimator::PredNames(
    const JoinPred* p) const {
  const JoinPred* base = spec_->joins.data();
  const size_t idx = static_cast<size_t>(p - base);
  if (idx < spec_->joins.size() && base + idx == p) {
    if (pred_names_.size() != spec_->joins.size()) {
      pred_names_.clear();
      pred_names_.reserve(spec_->joins.size());
      for (const JoinPred& j : spec_->joins)
        pred_names_.emplace_back(
            spec_->relations[j.left_rel].alias + "." + j.left_col,
            spec_->relations[j.right_rel].alias + "." + j.right_col);
    }
    return pred_names_[idx];
  }
  // Caller-synthesized predicate (tests): build on the spot.
  pred_names_scratch_ = {
      spec_->relations[p->left_rel].alias + "." + p->left_col,
      spec_->relations[p->right_rel].alias + "." + p->right_col};
  return pred_names_scratch_;
}

DerivedRel Estimator::JoinShallow(const DerivedRel& left,
                                  const DerivedRel& right,
                                  const std::vector<const JoinPred*>& preds,
                                  double* prefeedback_rows) const {
  DerivedRel out;
  double sel = 1.0;
  for (const JoinPred* p : preds) {
    const auto& [lq, rq] = PredNames(p);
    const ColumnStats* lcs = left.Find(lq);
    if (lcs == nullptr) lcs = right.Find(lq);
    const ColumnStats* rcs = right.Find(rq);
    if (rcs == nullptr) rcs = left.Find(rq);
    // When both join columns carry histograms, estimate by bucket overlap:
    // this sees partial/disjoint key domains that 1/max(V) cannot.
    if (histogram_joins_ && lcs != nullptr && rcs != nullptr &&
        lcs->has_histogram() && rcs->has_histogram() && left.rows > 0 &&
        right.rows > 0) {
      double join_card = Histogram::EstimateEquiJoinCard(lcs->histogram,
                                                         rcs->histogram);
      // Scale from histogram totals to the derived relations' row counts
      // (histograms may predate earlier filters).
      double lt = std::max(1.0, lcs->histogram.total_count());
      double rt = std::max(1.0, rcs->histogram.total_count());
      join_card *= (left.rows / lt) * (right.rows / rt);
      sel *= std::clamp(join_card / (left.rows * right.rows), 0.0, 1.0);
      continue;
    }
    double dl = (lcs && lcs->distinct > 0) ? lcs->distinct : left.rows;
    double dr = (rcs && rcs->distinct > 0) ? rcs->distinct : right.rows;
    sel *= 1.0 / std::max({1.0, dl, dr});
  }
  if (preds.empty()) sel = 1.0;  // cross product
  out.rows = std::max(1.0, left.rows * right.rows * sel);
  out.avg_tuple_bytes = left.avg_tuple_bytes + right.avg_tuple_bytes;
  out.rels = left.rels;
  out.rels.insert(right.rels.begin(), right.rels.end());
  if (prefeedback_rows != nullptr) *prefeedback_rows = out.rows;
  // Feedback correction runs here, once: FillJoinCols is pure, so a caller
  // may complete any number of shallow results without double-counting
  // feedback hits or duplicating log entries.
  ApplyJoinFeedback(&out);
  return out;
}

void Estimator::FillJoinCols(DerivedRel* out, const DerivedRel& left,
                             const DerivedRel& right, double prefeedback_rows) {
  out->cols = left.cols;
  for (const auto& [name, cs] : right.cols) out->cols[name] = cs;
  // Join clamps distinct counts to the pre-feedback row estimate, then
  // ApplyJoinFeedback re-clamps to the (possibly lower) corrected one:
  // the net effect is min of both, reproduced here.
  const double cap = std::min(prefeedback_rows, out->rows);
  for (auto& [name, cs] : out->cols) {
    if (cs.distinct > 0) cs.distinct = std::min(cs.distinct, cap);
  }
}

double Estimator::GroupCount(const DerivedRel& input,
                             const std::vector<std::string>& qualified_cols) {
  if (qualified_cols.empty()) return 1;
  double product = 1;
  for (const std::string& q : qualified_cols) {
    const ColumnStats* cs = input.Find(q);
    double d = (cs && cs->distinct > 0) ? cs->distinct : input.rows * 0.1;
    product *= std::max(1.0, d);
    if (product > input.rows) break;
  }
  return std::max(1.0, std::min(product, input.rows));
}

}  // namespace reoptdb
