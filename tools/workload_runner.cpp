// Workload overload harness: seeded concurrent TPC-D mixes at increasing
// load factors over a budget sized for ~4 queries, checking the
// overload-robustness contract end to end:
//
//   * every completed query's rows are bit-identical to a solo run of the
//     same statement on an identical database;
//   * every non-completed query carries a typed admission outcome
//     (kResourceExhausted rejection or kCancelled deadline) — never a
//     crash or an untyped error;
//   * after each wave the broker's budget is whole again and the shared
//     Database leaks no temp tables or disk pages.
//
// With --out it also emits a BENCH json summarizing throughput and tail
// latency per load factor (simulated time, so the numbers are exactly
// reproducible for a given seed).
//
//   workload_runner [--seed N] [--loads a,b,c] [--out FILE] [--verbose]
//
// Exit status 0 only if every wave satisfied the contract.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/database.h"
#include "engine/workload_manager.h"
#include "tpcd/dbgen.h"
#include "tpcd/queries.h"

namespace reoptdb {
namespace {

/// Canonical form of a result set: one rendered string per row, sorted
/// (queries without ORDER BY have no defined row order); doubles rounded
/// so hash-order-independent aggregates compare equal.
std::vector<std::string> Canon(const std::vector<Tuple>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Tuple& t : rows) {
    std::string s;
    for (size_t i = 0; i < t.size(); ++i) {
      const Value& v = t.at(i);
      if (i) s += "|";
      if (v.is_double()) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.4f", v.AsDouble());
        s += buf;
      } else {
        s += v.ToString();
      }
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::unique_ptr<Database> MakeDb() {
  DatabaseOptions opts;
  opts.buffer_pool_pages = 128;
  opts.query_mem_pages = 48;
  auto db = std::make_unique<Database>(opts);
  tpcd::TpcdOptions gen;
  gen.scale_factor = 0.003;
  gen.update_fraction = 1.0;  // stale catalog: plan switches actually fire
  Status st = tpcd::Load(db.get(), gen);
  if (!st.ok()) {
    std::fprintf(stderr, "dbgen failed: %s\n", st.ToString().c_str());
    std::exit(2);
  }
  return db;
}

WorkloadOptions OverloadConfig() {
  // Budget sized for ~4 concurrent queries (48 pages / min grant 8, four
  // active slots): load 1 runs solo, load 4 contends via revocation, load
  // 16 overflows the queue and exercises typed rejection.
  WorkloadOptions wo;
  wo.global_mem_pages = 48;
  wo.min_grant_pages = 8;
  wo.max_active = 4;
  wo.max_queue = 8;
  wo.reopt.mode = ReoptMode::kFull;
  return wo;
}

struct LoadStats {
  int load = 0;
  int queries = 0;
  int completed = 0;
  int rejected = 0;
  int cancelled = 0;
  size_t spills = 0;
  size_t revocations = 0;
  double sim_ms = 0;        ///< simulated wall clock for the whole wave
  double throughput = 0;    ///< completed queries per simulated second
  double p99_ms = 0;        ///< p99 of submitted->finished across completed
};

bool Verbose = false;

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const size_t idx = static_cast<size_t>(p * static_cast<double>(xs.size()));
  return xs[std::min(idx, xs.size() - 1)];
}

/// One wave: `load` seeded-shuffled TPC-D queries through a fresh
/// WorkloadManager on a fresh database. Returns false on any contract
/// violation (mismatch, untyped failure, leak).
bool RunWave(int load, uint64_t seed, LoadStats* stats) {
  stats->load = load;
  stats->queries = load;

  std::unique_ptr<Database> db = MakeDb();
  const size_t baseline_pages = db->disk()->live_pages();
  const WorkloadOptions wo = OverloadConfig();

  // Seeded mix: cycle the tier-1 queries, then shuffle submission order so
  // different seeds hit the admission queue in different interleavings.
  const std::vector<tpcd::TpcdQuery> all = tpcd::AllQueries();
  std::vector<size_t> order;
  for (int i = 0; i < load; ++i) order.push_back(i % all.size());
  Rng rng(seed);
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBelow(i)]);
  }

  // Solo oracles on an identical database, one per distinct query used.
  std::map<size_t, std::vector<std::string>> oracle;
  {
    std::unique_ptr<Database> solo = MakeDb();
    for (size_t qi : order) {
      if (oracle.count(qi)) continue;
      Result<QueryResult> r = solo->ExecuteWith(all[qi].sql, wo.reopt);
      if (!r.ok()) {
        std::fprintf(stderr, "[load=%d] solo %s failed: %s\n", load,
                     all[qi].name, r.status().ToString().c_str());
        return false;
      }
      oracle[qi] = Canon(r->rows);
    }
  }

  WorkloadManager wm(db.get(), wo);
  std::vector<size_t> submitted_qi;
  for (size_t qi : order) {
    wm.Submit(all[qi].sql);
    submitted_qi.push_back(qi);
  }
  Result<std::vector<WorkloadQueryResult>> run = wm.Run();
  if (!run.ok()) {
    std::fprintf(stderr, "[load=%d] workload run failed: %s\n", load,
                 run.status().ToString().c_str());
    return false;
  }

  bool ok = true;
  std::vector<double> latencies;
  for (size_t i = 0; i < run->size(); ++i) {
    const WorkloadQueryResult& r = (*run)[i];
    if (r.status.ok()) {
      ++stats->completed;
      latencies.push_back(r.finished_ms - r.submitted_ms);
      stats->spills += r.result.report.trace.spills.size();
      if (Canon(r.result.rows) != oracle[submitted_qi[i]]) {
        std::fprintf(stderr,
                     "[load=%d seed=%llu] ROW MISMATCH: %s (query %llu) "
                     "differs from its solo run\n",
                     load, static_cast<unsigned long long>(seed),
                     all[submitted_qi[i]].name,
                     static_cast<unsigned long long>(r.query_id));
        ok = false;
      }
    } else if (r.status.code() == StatusCode::kResourceExhausted) {
      ++stats->rejected;
    } else if (r.status.code() == StatusCode::kCancelled) {
      ++stats->cancelled;
    } else {
      std::fprintf(stderr, "[load=%d seed=%llu] UNTYPED FAILURE: %s: %s\n",
                   load, static_cast<unsigned long long>(seed),
                   all[submitted_qi[i]].name,
                   r.status.ToString().c_str());
      ok = false;
    }
  }
  stats->revocations = wm.broker().revocations().size();
  stats->sim_ms = wm.now_ms();
  stats->throughput =
      stats->sim_ms > 0 ? stats->completed / (stats->sim_ms / 1000.0) : 0;
  stats->p99_ms = Percentile(latencies, 0.99);

  // Every typed rejection must be matched by an AdmissionReject record.
  if (static_cast<size_t>(stats->rejected + stats->cancelled) !=
      wm.rejections().size()) {
    std::fprintf(stderr,
                 "[load=%d] rejection records (%zu) do not match rejected "
                 "results (%d)\n",
                 load, wm.rejections().size(),
                 stats->rejected + stats->cancelled);
    ok = false;
  }

  // Post-wave hygiene: whole budget back, no temp tables, no page leaks.
  if (wm.broker().active() != 0 ||
      wm.broker().free_pages() != wm.broker().total_pages()) {
    std::fprintf(stderr, "[load=%d] broker leak: active=%d free=%g/%g\n",
                 load, wm.broker().active(), wm.broker().free_pages(),
                 wm.broker().total_pages());
    ok = false;
  }
  if (!db->catalog()->TempTableNames().empty()) {
    std::fprintf(stderr, "[load=%d] temp tables leaked\n", load);
    ok = false;
  }
  if (db->disk()->live_pages() != baseline_pages) {
    std::fprintf(stderr, "[load=%d] disk pages leaked: %zu vs %zu\n", load,
                 db->disk()->live_pages(), baseline_pages);
    ok = false;
  }

  if (Verbose || !ok) {
    std::printf(
        "load=%-3d completed=%d rejected=%d cancelled=%d spills=%zu "
        "revocations=%zu sim_ms=%.1f p99_ms=%.1f %s\n",
        load, stats->completed, stats->rejected, stats->cancelled,
        stats->spills, stats->revocations, stats->sim_ms, stats->p99_ms,
        ok ? "ok" : "FAIL");
  }
  return ok;
}

void WriteBench(const char* path, uint64_t seed,
                const std::vector<LoadStats>& all) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    std::exit(2);
  }
  const char* batch_env = std::getenv("REOPTDB_BATCH_SIZE");
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"workload_runner (tools/workload_runner.cpp)\",\n");
  std::fprintf(
      f,
      "  \"description\": \"Seeded concurrent TPC-D mixes through the "
      "WorkloadManager at 1x/4x/16x load over a 48-page budget sized for "
      "~4 queries (min grant 8, 4 active slots, queue depth 8). Every "
      "completed query is diffed bit-identical against a solo run; "
      "rejected/cancelled queries must carry typed AdmissionReject "
      "records; each wave must return the broker budget whole with no "
      "temp-table or disk-page leaks. Time is simulated, so throughput "
      "and P99 are exactly reproducible per seed.\",\n");
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"batch_size_env\": \"%s\",\n",
               batch_env != nullptr ? batch_env : "default");
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < all.size(); ++i) {
    const LoadStats& s = all[i];
    std::fprintf(
        f,
        "    { \"load\": %d, \"queries\": %d, \"completed\": %d, "
        "\"rejected\": %d, \"cancelled\": %d, \"spills\": %zu, "
        "\"revocations\": %zu, \"sim_ms\": %.3f, "
        "\"throughput_qps_sim\": %.4f, \"p99_ms\": %.3f }%s\n",
        s.load, s.queries, s.completed, s.rejected, s.cancelled, s.spills,
        s.revocations, s.sim_ms, s.throughput, s.p99_ms,
        i + 1 < all.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"acceptance\": \"all completed queries bit-identical to "
               "solo, all failures typed, zero leaks at every load: PASS\"\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace reoptdb

int main(int argc, char** argv) {
  using namespace reoptdb;
  uint64_t seed = 42;
  std::vector<int> loads = {1, 4, 16};
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--loads") && i + 1 < argc) {
      loads.clear();
      for (const char* p = argv[++i]; *p != '\0';) {
        loads.push_back(std::atoi(p));
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--verbose")) {
      Verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: workload_runner [--seed N] [--loads a,b,c] "
                   "[--out FILE] [--verbose]\n");
      return 2;
    }
  }

  bool ok = true;
  std::vector<LoadStats> all;
  for (int load : loads) {
    LoadStats stats;
    ok = RunWave(load, seed + static_cast<uint64_t>(load), &stats) && ok;
    all.push_back(stats);
  }
  if (out_path != nullptr && ok) WriteBench(out_path, seed, all);

  for (const LoadStats& s : all) {
    std::printf(
        "load=%-3d queries=%-3d completed=%-3d rejected=%-2d cancelled=%-2d "
        "spills=%-3zu revocations=%-3zu throughput=%.2f q/s(sim) "
        "p99=%.1fms\n",
        s.load, s.queries, s.completed, s.rejected, s.cancelled, s.spills,
        s.revocations, s.throughput, s.p99_ms);
  }
  std::printf("workload_runner: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
