#include "reopt/scia.h"

#include <algorithm>
#include <map>

#include "optimizer/optimizer.h"

namespace reoptdb {

void RecomputeCostTotals(PlanNode* root) {
  root->PostOrder([](PlanNode* n) {
    double total = n->est.cost_self_ms;
    for (auto& c : n->children) total += c->est.cost_total_ms;
    n->est.cost_total_ms = total;
  });
}

int CollectorMinMaxCols(const Schema& schema) {
  int n = 0;
  for (size_t i = 0; i < schema.NumColumns(); ++i)
    if (schema.column(i).type != ValueType::kString) ++n;
  return n;
}

namespace {

bool IsCandidateEdge(const PlanNode& n) {
  switch (n.kind) {
    case OpKind::kSeqScan:
    case OpKind::kIndexScan:
    case OpKind::kHashJoin:
    case OpKind::kIndexNLJoin:
      return true;
    default:
      return false;
  }
}

/// Walks the plan collecting candidates; `ancestors` is the path from the
/// root down to (excluding) `node`.
void EnumerateCandidates(PlanNode* node, std::vector<PlanNode*>* ancestors,
                         const InaccuracyAnalyzer& analyzer,
                         const CostModel& cost, double root_total,
                         std::vector<StatCandidate>* out) {
  if (IsCandidateEdge(*node) && !ancestors->empty()) {
    // Useful statistics: columns of this output used above.
    std::map<std::pair<bool, std::string>, PlanNode*> wanted;  // -> consumer
    for (auto it = ancestors->rbegin(); it != ancestors->rend(); ++it) {
      PlanNode* a = *it;
      auto consider = [&](bool is_hist, const std::string& col) {
        if (!node->output_schema.Contains(col)) return;
        auto key = std::make_pair(is_hist, col);
        if (!wanted.count(key)) wanted[key] = a;  // nearest consumer wins
      };
      if (a->kind == OpKind::kHashJoin) {
        for (const std::string& k : a->left_keys) consider(true, k);
        for (const std::string& k : a->right_keys) consider(true, k);
      } else if (a->kind == OpKind::kIndexNLJoin) {
        consider(true, a->left_keys[0]);
        for (const ScalarPred& p : a->filters) {
          consider(true, p.column);
          if (p.rhs_is_column) consider(true, p.rhs_column);
        }
      } else if (a->kind == OpKind::kHashAggregate) {
        for (const std::string& g : a->group_cols) consider(false, g);
      }
    }
    for (const auto& [key, consumer] : wanted) {
      const auto& [is_hist, col] = key;
      StatCandidate c;
      c.below_node_id = node->id;
      c.is_histogram = is_hist;
      c.column = col;
      c.potential = is_hist ? analyzer.HistogramPotential(*node, col)
                            : analyzer.UniquePotential(*node, col);
      double affected = root_total - consumer->est.cost_total_ms +
                        consumer->est.cost_self_ms;
      c.affected_fraction =
          root_total > 0 ? std::clamp(affected / root_total, 0.0, 1.0) : 0;
      c.collect_cost_ms = cost.Collector(node->est.cardinality, 1);
      out->push_back(std::move(c));
    }
  }
  ancestors->push_back(node);
  for (auto& child : node->children)
    EnumerateCandidates(child.get(), ancestors, analyzer, cost, root_total,
                        out);
  ancestors->pop_back();
}

/// Wraps candidate edges (children slots) with collector nodes.
void InsertCollectors(
    std::unique_ptr<PlanNode>* slot,
    const std::map<int, std::pair<std::vector<std::string>,
                                  std::vector<std::string>>>& stats_by_node,
    const CostModel& cost, const SciaOptions& opts, int* inserted) {
  PlanNode* node = slot->get();
  // Recurse first (ids are stable during insertion: new nodes get id -1
  // until reassignment).
  for (auto& child : node->children)
    InsertCollectors(&child, stats_by_node, cost, opts, inserted);

  if (!IsCandidateEdge(*node)) return;
  auto coll = std::make_unique<PlanNode>();
  coll->kind = OpKind::kStatsCollector;
  coll->output_schema = node->output_schema;
  coll->covers = node->covers;
  coll->est = node->est;
  auto it = stats_by_node.find(node->id);
  int nstats = 0;
  if (it != stats_by_node.end()) {
    coll->collector.histogram_cols = it->second.first;
    coll->collector.unique_cols = it->second.second;
    nstats = static_cast<int>(it->second.first.size() +
                              it->second.second.size());
  }
  coll->collector.num_buckets = opts.histogram_buckets;
  coll->collector.reservoir_capacity = opts.reservoir_capacity;
  coll->est.cost_self_ms =
      cost.Collector(node->est.cardinality, nstats,
                     CollectorMinMaxCols(node->output_schema));
  coll->improved = coll->est;
  coll->children.push_back(std::move(*slot));
  *slot = std::move(coll);
  ++*inserted;
}

}  // namespace

Result<SciaResult> InsertStatsCollectors(std::unique_ptr<PlanNode>* root,
                                         const QuerySpec& spec,
                                         const Catalog& catalog,
                                         const CostModel& cost,
                                         const SciaOptions& opts) {
  SciaResult result;
  InaccuracyAnalyzer analyzer(&catalog, &spec);
  double root_total = (*root)->est.cost_total_ms;

  std::vector<PlanNode*> ancestors;
  EnumerateCandidates(root->get(), &ancestors, analyzer, cost, root_total,
                      &result.candidates);

  // Every candidate edge gets a collector that maintains per-column min/max
  // regardless of which histogram/unique candidates survive. That baseline
  // is real charged work; it is costed into each collector node (so
  // remaining-time estimates are honest) and reported here, but the mu
  // budget governs only the deletable histogram/unique candidates, matching
  // the paper's framing of min/max as always-on.
  (*root)->PostOrder([&](PlanNode* n) {
    if (IsCandidateEdge(*n))
      result.minmax_baseline_ms +=
          cost.Collector(n->est.cardinality, 0,
                         CollectorMinMaxCols(n->output_schema));
  });

  // Effectiveness order: higher inaccuracy potential first, then larger
  // affected fraction. Delete from the least effective end until the total
  // collection cost fits the mu budget.
  std::vector<StatCandidate*> ranked;
  double total_cost = 0;
  for (StatCandidate& c : result.candidates) {
    ranked.push_back(&c);
    total_cost += c.collect_cost_ms;
    c.kept = true;
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const StatCandidate* a, const StatCandidate* b) {
              if (a->potential != b->potential)
                return a->potential < b->potential;  // least effective first
              return a->affected_fraction < b->affected_fraction;
            });
  const double budget = opts.mu * root_total;
  for (StatCandidate* c : ranked) {
    if (total_cost <= budget) break;
    c->kept = false;
    total_cost -= c->collect_cost_ms;
  }
  result.estimated_overhead_ms = total_cost;

  // Group kept statistics by edge.
  std::map<int, std::pair<std::vector<std::string>, std::vector<std::string>>>
      stats_by_node;
  for (const StatCandidate& c : result.candidates) {
    if (!c.kept) continue;
    auto& entry = stats_by_node[c.below_node_id];
    (c.is_histogram ? entry.first : entry.second).push_back(c.column);
  }

  InsertCollectors(root, stats_by_node, cost, opts,
                   &result.collectors_inserted);
  RecomputeCostTotals(root->get());
  AssignPlanIds(root->get());
  // Re-sync improved annotations after the structural edit.
  (*root)->PostOrder([](PlanNode* n) { n->improved = n->est; });
  return result;
}

}  // namespace reoptdb
