#include "exec/operator_factory.h"

#include "exec/exchange_op.h"
#include "exec/filter_op.h"
#include "exec/hash_aggregate.h"
#include "exec/hash_join.h"
#include "exec/index_nl_join.h"
#include "exec/index_scan.h"
#include "exec/materialize_op.h"
#include "exec/merge_join.h"
#include "exec/project_op.h"
#include "exec/seq_scan.h"
#include "exec/sort_op.h"
#include "exec/stats_collector_op.h"

namespace reoptdb {

Result<std::unique_ptr<Operator>> BuildOperatorTree(ExecContext* ctx,
                                                    PlanNode* node) {
  std::unique_ptr<Operator> op;
  switch (node->kind) {
    case OpKind::kSeqScan:
      op = std::make_unique<SeqScanOp>(ctx, node);
      break;
    case OpKind::kIndexScan:
      op = std::make_unique<IndexScanOp>(ctx, node);
      break;
    case OpKind::kFilter:
      op = std::make_unique<FilterOp>(ctx, node);
      break;
    case OpKind::kProject:
      op = std::make_unique<ProjectOp>(ctx, node);
      break;
    case OpKind::kHashJoin:
      op = std::make_unique<HashJoinOp>(ctx, node);
      break;
    case OpKind::kMergeJoin:
      op = std::make_unique<MergeJoinOp>(ctx, node);
      break;
    case OpKind::kIndexNLJoin:
      op = std::make_unique<IndexNLJoinOp>(ctx, node);
      break;
    case OpKind::kHashAggregate:
      op = std::make_unique<HashAggregateOp>(ctx, node);
      break;
    case OpKind::kSort:
      op = std::make_unique<SortOp>(ctx, node);
      break;
    case OpKind::kMaterialize:
      op = std::make_unique<MaterializeOp>(ctx, node);
      break;
    case OpKind::kStatsCollector:
      op = std::make_unique<StatsCollectorOp>(ctx, node);
      break;
    case OpKind::kLimit:
      op = std::make_unique<LimitOp>(ctx, node);
      break;
    case OpKind::kExchange:
      op = std::make_unique<ExchangeSourceOp>(ctx, node);
      break;
  }
  for (auto& child : node->children) {
    ASSIGN_OR_RETURN(std::unique_ptr<Operator> c,
                     BuildOperatorTree(ctx, child.get()));
    op->AddChild(std::move(c));
  }
  return op;
}

}  // namespace reoptdb
