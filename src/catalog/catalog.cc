#include "catalog/catalog.h"

#include <unordered_set>

#include "stats/reservoir.h"

namespace reoptdb {

Result<TableInfo*> Catalog::CreateTable(const std::string& name, Schema schema,
                                        bool is_temp) {
  if (tables_.count(name))
    return Status::AlreadyExists("table exists: " + name);
  auto info = std::make_unique<TableInfo>();
  info->name = name;
  // Qualify unqualified columns with the table name.
  std::vector<Column> cols;
  for (Column c : schema.columns()) {
    if (c.qualifier.empty()) c.qualifier = name;
    cols.push_back(std::move(c));
  }
  info->schema = Schema(std::move(cols));
  info->heap = std::make_unique<HeapFile>(pool_);
  info->is_temp = is_temp;
  TableInfo* raw = info.get();
  tables_[name] = std::move(info);
  return raw;
}

Status Catalog::DeclareKey(const std::string& table, const std::string& column) {
  ASSIGN_OR_RETURN(TableInfo * info, Get(table));
  info->key_columns.insert(column);
  return Status::OK();
}

Status Catalog::CreateIndex(const std::string& table, const std::string& column) {
  ASSIGN_OR_RETURN(TableInfo * info, Get(table));
  ASSIGN_OR_RETURN(size_t col_idx, info->schema.IndexOf(column));
  if (info->schema.column(col_idx).type != ValueType::kInt64)
    return Status::NotSupported("indexes require INT columns: " + column);
  if (info->indexes.count(column))
    return Status::AlreadyExists("index exists on " + table + "." + column);

  ASSIGN_OR_RETURN(BTree tree, BTree::Create(pool_));
  auto index = std::make_unique<BTree>(std::move(tree));

  // Bulk build by walking heap pages directly so rids are exact. Flush the
  // tail page first so every row lives on a disk page.
  RETURN_IF_ERROR(info->heap->Flush());
  for (size_t p = 0; p < info->heap->flushed_page_count(); ++p) {
    ASSIGN_OR_RETURN(PageGuard guard, PageGuard::Fetch(pool_, info->heap->page_id(p)));
    uint16_t count = slotted::Count(*guard.page());
    for (uint16_t s = 0; s < count; ++s) {
      const char* data;
      size_t len;
      RETURN_IF_ERROR(slotted::Read(*guard.page(), s, &data, &len));
      size_t off = 0;
      ASSIGN_OR_RETURN(Tuple tuple, Tuple::Deserialize(data, len, &off));
      RETURN_IF_ERROR(index->Insert(tuple.at(col_idx).AsInt(),
                                    Rid{static_cast<uint32_t>(p), s}));
    }
  }
  info->indexes[column] = std::move(index);
  return Status::OK();
}

Status Catalog::Analyze(const std::string& table, const AnalyzeOptions& opts) {
  ASSIGN_OR_RETURN(TableInfo * info, Get(table));
  TableStats stats;
  stats.analyzed = true;
  stats.row_count = static_cast<double>(info->heap->tuple_count());
  stats.page_count = static_cast<double>(info->heap->page_count());
  stats.avg_tuple_bytes = info->heap->avg_tuple_bytes();
  stats.update_activity = 0;

  const size_t ncols = info->schema.NumColumns();
  std::vector<ReservoirSampler<double>> samples;
  std::vector<std::unordered_set<uint64_t>> distinct(ncols);
  std::vector<double> mins(ncols, 0), maxs(ncols, 0);
  std::vector<bool> seen(ncols, false);
  std::vector<double> widths(ncols, 0);
  samples.reserve(ncols);
  size_t reservoir_cap =
      opts.sample_size == 0 ? static_cast<size_t>(stats.row_count) + 1
                            : opts.sample_size;
  for (size_t c = 0; c < ncols; ++c)
    samples.emplace_back(reservoir_cap, opts.seed + c);

  HeapFile::Iterator it = info->heap->Scan();
  Tuple t;
  while (true) {
    ASSIGN_OR_RETURN(bool more, it.Next(&t));
    if (!more) break;
    for (size_t c = 0; c < ncols; ++c) {
      const Value& v = t.at(c);
      distinct[c].insert(v.Hash());
      widths[c] += static_cast<double>(v.SerializedSize());
      if (v.is_string()) continue;
      double d = v.AsNumeric();
      if (!seen[c]) {
        mins[c] = maxs[c] = d;
        seen[c] = true;
      } else {
        mins[c] = std::min(mins[c], d);
        maxs[c] = std::max(maxs[c], d);
      }
      samples[c].Add(d);
    }
  }

  for (size_t c = 0; c < ncols; ++c) {
    const Column& col = info->schema.column(c);
    ColumnStats cs;
    cs.type = col.type;
    cs.distinct = static_cast<double>(distinct[c].size());
    cs.avg_width =
        stats.row_count > 0 ? widths[c] / stats.row_count : col.avg_width;
    if (seen[c]) {
      cs.has_bounds = true;
      cs.min = mins[c];
      cs.max = maxs[c];
      if (opts.histogram_kind != HistogramKind::kNone) {
        cs.histogram =
            Histogram::Build(opts.histogram_kind, samples[c].sample(),
                             opts.histogram_buckets, stats.row_count);
      }
    }
    stats.columns[col.name] = std::move(cs);
  }
  info->stats = std::move(stats);
  return Status::OK();
}

Status Catalog::SetStats(const std::string& table, TableStats stats) {
  ASSIGN_OR_RETURN(TableInfo * info, Get(table));
  info->stats = std::move(stats);
  return Status::OK();
}

Status Catalog::BumpUpdateActivity(const std::string& table, double fraction) {
  ASSIGN_OR_RETURN(TableInfo * info, Get(table));
  info->stats.update_activity += fraction;
  return Status::OK();
}

Status Catalog::SetPartitioning(const std::string& table,
                                TablePartitioning p) {
  ASSIGN_OR_RETURN(TableInfo * info, Get(table));
  info->partitioning = std::move(p);
  return Status::OK();
}

Result<TableInfo*> Catalog::Get(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  return it->second.get();
}

Result<const TableInfo*> Catalog::Get(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  return const_cast<const TableInfo*>(it->second.get());
}

Status Catalog::Drop(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  // The entry leaves the catalog even when page release fails (a persistent
  // storage fault must not leave a phantom table behind); ~HeapFile retries
  // the release of whatever pages failed, best-effort.
  Status st = it->second->heap->Destroy();
  tables_.erase(it);
  return st;
}

Result<std::vector<PageId>> Catalog::Detach(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  // Indexes are volatile structures rebuilt on demand; only heap pages are
  // treated as durable. Index pages are reclaimed normally.
  std::vector<PageId> pages = it->second->heap->ReleasePages();
  tables_.erase(it);
  return pages;
}

std::vector<std::string> Catalog::TempTableNames() const {
  std::vector<std::string> names;
  for (const auto& [name, info] : tables_)
    if (info->is_temp) names.push_back(name);
  return names;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  for (const auto& [name, info] : tables_) names.push_back(name);
  return names;
}

}  // namespace reoptdb
