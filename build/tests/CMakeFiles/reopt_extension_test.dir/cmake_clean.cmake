file(REMOVE_RECURSE
  "CMakeFiles/reopt_extension_test.dir/reopt_extension_test.cc.o"
  "CMakeFiles/reopt_extension_test.dir/reopt_extension_test.cc.o.d"
  "reopt_extension_test"
  "reopt_extension_test.pdb"
  "reopt_extension_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reopt_extension_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
