// Tests for the lexer and SQL parser.

#include "gtest/gtest.h"
#include "parser/lexer.h"
#include "parser/parser.h"

namespace reoptdb {
namespace {

TEST(LexerTest, BasicTokens) {
  Result<std::vector<Token>> r =
      Lex("SELECT a, b FROM t WHERE a <= 10 AND b <> 'x'");
  ASSERT_TRUE(r.ok());
  const auto& toks = r.value();
  EXPECT_TRUE(toks[0].IsKeyword("SELECT"));
  EXPECT_EQ(toks[1].type, TokenType::kIdentifier);
  EXPECT_EQ(toks[1].text, "a");
  EXPECT_EQ(toks[2].type, TokenType::kComma);
  EXPECT_EQ(toks.back().type, TokenType::kEof);
}

TEST(LexerTest, NumbersAndStrings) {
  Result<std::vector<Token>> r = Lex("42 3.25 'hello world' -7");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0].int_value, 42);
  EXPECT_DOUBLE_EQ(r.value()[1].float_value, 3.25);
  EXPECT_EQ(r.value()[2].text, "hello world");
}

TEST(LexerTest, IdentifiersLowercasedKeywordsUppercased) {
  Result<std::vector<Token>> r = Lex("Select FooBar from T");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value()[0].IsKeyword("SELECT"));
  EXPECT_EQ(r.value()[1].text, "foobar");
  EXPECT_EQ(r.value()[3].text, "t");
}

TEST(LexerTest, ComparisonOperators) {
  Result<std::vector<Token>> r = Lex("= <> != < <= > >=");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0].type, TokenType::kEq);
  EXPECT_EQ(r.value()[1].type, TokenType::kNe);
  EXPECT_EQ(r.value()[2].type, TokenType::kNe);
  EXPECT_EQ(r.value()[3].type, TokenType::kLt);
  EXPECT_EQ(r.value()[4].type, TokenType::kLe);
  EXPECT_EQ(r.value()[5].type, TokenType::kGt);
  EXPECT_EQ(r.value()[6].type, TokenType::kGe);
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Lex("SELECT 'oops").ok());
}

TEST(LexerTest, UnexpectedCharFails) { EXPECT_FALSE(Lex("SELECT #").ok()); }

TEST(ParserTest, MinimalSelect) {
  Result<SelectStmtAst> r = ParseSelect("SELECT a FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().items.size(), 1u);
  EXPECT_EQ(r.value().items[0].column.name, "a");
  ASSERT_EQ(r.value().tables.size(), 1u);
  EXPECT_EQ(r.value().tables[0].table, "t");
  EXPECT_EQ(r.value().tables[0].alias, "t");
}

TEST(ParserTest, QualifiedColumnsAndAliases) {
  Result<SelectStmtAst> r =
      ParseSelect("SELECT n1.n_name FROM nation n1, nation n2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().items[0].column.qualifier, "n1");
  EXPECT_EQ(r.value().tables[0].alias, "n1");
  EXPECT_EQ(r.value().tables[1].alias, "n2");
  EXPECT_EQ(r.value().tables[1].table, "nation");
}

TEST(ParserTest, Aggregates) {
  Result<SelectStmtAst> r = ParseSelect(
      "SELECT SUM(a) AS total, AVG(b), COUNT(*), MIN(c), MAX(d) FROM t");
  ASSERT_TRUE(r.ok());
  const auto& items = r.value().items;
  ASSERT_EQ(items.size(), 5u);
  EXPECT_EQ(items[0].agg, AggFunc::kSum);
  EXPECT_EQ(items[0].alias, "total");
  EXPECT_EQ(items[1].agg, AggFunc::kAvg);
  EXPECT_TRUE(items[2].count_star);
  EXPECT_EQ(items[3].agg, AggFunc::kMin);
  EXPECT_EQ(items[4].agg, AggFunc::kMax);
}

TEST(ParserTest, WhereConjunction) {
  Result<SelectStmtAst> r = ParseSelect(
      "SELECT a FROM t WHERE a = 1 AND b < 2.5 AND c = 'x' AND a = b");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().predicates.size(), 4u);
}

TEST(ParserTest, BetweenDesugarsToTwoPredicates) {
  Result<SelectStmtAst> r =
      ParseSelect("SELECT a FROM t WHERE a BETWEEN 3 AND 7");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().predicates.size(), 2u);
  EXPECT_EQ(r.value().predicates[0].op, CmpOp::kGe);
  EXPECT_EQ(r.value().predicates[1].op, CmpOp::kLe);
}

TEST(ParserTest, GroupOrderLimit) {
  Result<SelectStmtAst> r = ParseSelect(
      "SELECT a, SUM(b) AS s FROM t GROUP BY a ORDER BY s DESC, a LIMIT 10;");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().group_by.size(), 1u);
  ASSERT_EQ(r.value().order_by.size(), 2u);
  EXPECT_FALSE(r.value().order_by[0].ascending);
  EXPECT_TRUE(r.value().order_by[1].ascending);
  EXPECT_EQ(r.value().limit, 10);
}

TEST(ParserTest, LiteralOnLeft) {
  Result<SelectStmtAst> r = ParseSelect("SELECT a FROM t WHERE 5 < a");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(std::holds_alternative<Value>(r.value().predicates[0].lhs));
}

class ParserErrorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserErrorTest, RejectsMalformedInput) {
  Result<SelectStmtAst> r = ParseSelect(GetParam());
  EXPECT_FALSE(r.ok()) << "accepted: " << GetParam();
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

INSTANTIATE_TEST_SUITE_P(
    BadQueries, ParserErrorTest,
    ::testing::Values("", "SELECT", "SELECT FROM t", "SELECT a",
                      "SELECT a FROM", "SELECT a FROM t WHERE",
                      "SELECT a FROM t WHERE a >",
                      "SELECT a FROM t WHERE a BETWEEN 1", "FROM t SELECT a",
                      "SELECT a FROM t GROUP a",
                      "SELECT a FROM t ORDER a",
                      "SELECT a FROM t LIMIT x",
                      "SELECT SUM(a FROM t",
                      "SELECT a FROM t extra garbage here",
                      "SELECT a FROM t WHERE a = 1 2"));

TEST(ParserTest, BetweenRequiresColumnLhs) {
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE 5 BETWEEN 1 AND 9").ok());
}

}  // namespace
}  // namespace reoptdb
