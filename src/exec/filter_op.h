// Standalone filter operator (the optimizer pushes predicates into scans;
// this operator exists for plans built by hand and for tests).

#ifndef REOPTDB_EXEC_FILTER_OP_H_
#define REOPTDB_EXEC_FILTER_OP_H_

#include <utility>

#include "exec/expression.h"
#include "exec/operator.h"

namespace reoptdb {

/// \brief Streams child tuples that satisfy the node's predicates.
class FilterOp : public Operator {
 public:
  FilterOp(ExecContext* ctx, PlanNode* node) : Operator(ctx, node) {}

  Status OpenImpl() override {
    RETURN_IF_ERROR(OpenChildren());
    ASSIGN_OR_RETURN(preds_,
                     CompilePreds(node_->filters, child(0)->OutputSchema()));
    return Status::OK();
  }

  Result<bool> NextImpl(Tuple* out) override {
    while (true) {
      ASSIGN_OR_RETURN(bool more, child(0)->Next(out));
      if (!more) return false;
      ctx_->ChargeTuples(1);
      if (EvalAll(preds_, *out)) return true;
    }
  }

  Result<bool> NextBatchImpl(TupleBatch* out) override {
    if (in_batch_ == nullptr)
      in_batch_ = std::make_unique<TupleBatch>(out->capacity());
    uint64_t seen = 0;
    while (!out->full()) {
      if (in_pos_ >= in_batch_->size()) {
        if (in_done_) break;
        ASSIGN_OR_RETURN(bool more, child(0)->NextBatch(in_batch_.get()));
        in_pos_ = 0;
        if (!more) {
          in_done_ = true;
          break;
        }
      }
      Tuple& t = (*in_batch_)[in_pos_++];
      ++seen;
      // Swap, not move: the output slot's old tuple (and its value-vector
      // storage) lands back in the input batch, where the child's next
      // refill reuses it — keeping the steady state allocation-free, like
      // the row path's slot reuse.
      if (EvalAll(preds_, t)) std::swap(*out->AddSlot(), t);
    }
    if (seen > 0) ctx_->ChargeTuples(seen);
    return !out->empty();
  }

  Status CloseImpl() override { return CloseChildren(); }

 private:
  std::vector<CompiledPred> preds_;
  std::unique_ptr<TupleBatch> in_batch_;  // batched pulls only
  size_t in_pos_ = 0;
  bool in_done_ = false;
};

}  // namespace reoptdb

#endif  // REOPTDB_EXEC_FILTER_OP_H_
