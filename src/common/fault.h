// Fault-injection registry for fault-tolerance testing.
//
// Production re-optimizers must treat a failed re-optimization attempt as
// advisory: the query keeps running on its current plan. To exercise those
// recovery paths deterministically, the engine threads a FaultInjector
// through its layers and asks it, at named injection points, whether an
// error should be injected. With nothing armed, a check is a single branch.
//
// Points are armed programmatically (Arm), from the REOPTDB_FAULTS
// environment variable at Database construction, or from the shell's
// \faults meta command. Trigger policies: fire on the nth call, fire on
// every call, or fire with a seeded probability per call (deterministic
// across runs).
//
// Spec grammar (REOPTDB_FAULTS / REOPTDB_CRASH_SCHEDULE / \faults /
// Configure):
//   spec     := entry (',' entry)*
//   entry    := point '=' ['crash:' | 'corrupt:'] trigger
//   trigger  := 'every' | 'nth:' count | 'prob:' p ['@' seed]
// e.g. REOPTDB_FAULTS="reopt.optimize=nth:1,storage.read=prob:0.01@7"
//      REOPTDB_CRASH_SCHEDULE="reopt.materialize=nth:1"
//      \faults storage.write=corrupt:nth:12   (silent bit-rot on write #12)
//
// The 'crash:' action prefix turns a firing point into a simulated process
// death: instead of a recoverable layer error, Check() returns kCrashed and
// latches a crash_pending flag that ExecContext::CheckCancelled() observes,
// so execution unwinds cooperatively from any depth without running
// query-level cleanup (temp tables and the query journal survive, exactly
// as durable state survives a real crash). ClearCrash() is the "restart".

#ifndef REOPTDB_COMMON_FAULT_H_
#define REOPTDB_COMMON_FAULT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace reoptdb {

/// Canonical injection-point names. Call sites pass these constants so a
/// typo is a compile error, not a silently dead injection point.
namespace faults {
inline constexpr char kStorageRead[] = "storage.read";
inline constexpr char kStorageWrite[] = "storage.write";
inline constexpr char kStorageFree[] = "storage.free";
inline constexpr char kMemoryGrant[] = "memory.grant";
inline constexpr char kReoptOptimize[] = "reopt.optimize";
inline constexpr char kReoptMaterialize[] = "reopt.materialize";
inline constexpr char kReoptScia[] = "reopt.scia";
inline constexpr char kReoptPostSwitch[] = "reopt.post_switch";
inline constexpr char kJournalAppend[] = "journal.append";
inline constexpr char kRecoveryLoad[] = "recovery.load";
inline constexpr char kMemoryRevoke[] = "memory.revoke";
inline constexpr char kExecSpill[] = "exec.spill";
inline constexpr char kWalAppend[] = "wal.append";
inline constexpr char kWalFsync[] = "wal.fsync";
inline constexpr char kLockAcquire[] = "lock.acquire";
inline constexpr char kTxnCommit[] = "txn.commit";
/// Sharded execution (src/shard): a tuple-batch send or receive on an
/// exchange channel, and the death of a simulated node. net.* errors are
/// transient (kIoError) and absorbed by the channel's retry/backoff, which
/// mirrors the DiskManager policy; exhausted retries escalate to node loss.
inline constexpr char kNetSend[] = "net.send";
inline constexpr char kNetRecv[] = "net.recv";
inline constexpr char kNodeCrash[] = "node.crash";
/// A dead node comes back mid-query with a stale view of the membership
/// (the "zombie"). The shard executor checks this point at stage start;
/// when it fires, the most recently dead node's buffered sends are replayed
/// against the exchange and must be epoch-fenced, never merged into the
/// stage. The zombie does not rejoin the membership.
inline constexpr char kNodeResurrect[] = "node.resurrect";
}  // namespace faults

/// When an armed point fires.
enum class FaultTrigger : uint8_t {
  kNthCall,      ///< fire exactly once, on the nth Check() (1-based)
  kEveryCall,    ///< fire on every Check()
  kProbability,  ///< fire with probability p per Check() (seeded stream)
};

/// What a firing point injects.
enum class FaultAction : uint8_t {
  kError,  ///< recoverable layer error (kIoError / kResourceExhausted / ...)
  kCrash,  ///< simulated process death: kCrashed + latched crash_pending
  /// Silent bit-rot: Check() returns kDataLoss, which the DiskManager's
  /// storage.write site interprets as "perform the write, then flip stored
  /// bytes without updating the recorded checksum, and report success".
  /// The damage surfaces only when the page is next read (kDataLoss) or a
  /// scrubber compares the copy against a replica. At any other point the
  /// kDataLoss status surfaces directly (no site knows how to be silent).
  kCorrupt,
};

/// How an armed injection point behaves.
struct FaultSpec {
  FaultTrigger trigger = FaultTrigger::kNthCall;
  FaultAction action = FaultAction::kError;
  uint64_t nth = 1;         ///< call index for kNthCall (1-based)
  double probability = 0;   ///< per-call fire probability for kProbability
  uint64_t seed = 42;       ///< probability stream seed (deterministic)
};

/// Per-point call/fire counters (kept while armed).
struct FaultPointStats {
  uint64_t calls = 0;
  uint64_t fires = 0;
};

/// \brief Registry of named fault-injection points.
///
/// Single-threaded, like the rest of the engine. One injector typically
/// lives on the Database and is shared by the storage, memory, and reopt
/// layers via ExecContext / DiskManager pointers.
class FaultInjector {
 public:
  /// Every point name the engine checks, for validation and \faults list.
  static const std::vector<std::string>& KnownPoints();

  /// Arms `point` with `spec`, resetting its counters. Rejects unknown
  /// point names.
  Status Arm(const std::string& point, const FaultSpec& spec);

  /// Disarms one point (no-op if not armed).
  void Disarm(const std::string& point);

  /// Disarms everything.
  void Reset();

  bool armed(const std::string& point) const;
  bool AnyArmed() const { return !armed_.empty(); }

  /// The hot-path gate: returns OK unless `point` is armed and its trigger
  /// fires, in which case the injected error is returned — kIoError for
  /// storage.* points (modeling transient device errors, which callers may
  /// retry), kResourceExhausted for memory.*, kInternal otherwise.
  Status Check(const char* point);

  /// Parses and arms a comma-separated spec string (grammar above).
  /// Earlier entries are applied even if a later entry fails to parse.
  Status Configure(const std::string& config);

  /// Counters for one point (zeros if not armed).
  FaultPointStats StatsFor(const std::string& point) const;

  /// The 1-based call indices at which `point` has fired since it was
  /// armed (empty if not armed). Lets tests assert that two runs saw the
  /// same fire *schedule*, not merely the same fire count.
  std::vector<uint64_t> FireLog(const std::string& point) const;

  /// True after any kCrash-action point has fired and until ClearCrash().
  /// While set, ExecContext::CheckCancelled() fails with kCrashed so the
  /// whole query unwinds; query-level cleanup (temp-table drops) is
  /// suppressed to model state surviving a process death.
  bool crash_pending() const { return crash_pending_; }

  /// "Restarts the process": clears the pending-crash latch so the next
  /// query (typically RecoveryManager's resume) can run.
  void ClearCrash() { crash_pending_ = false; }

  /// Human-readable list of armed points with their policies and counters
  /// (the shell's \faults output). "no faults armed" when empty.
  std::string Describe() const;

 private:
  struct ArmedPoint {
    FaultSpec spec;
    FaultPointStats stats;
    std::vector<uint64_t> fire_log;
    Rng rng{42};
  };
  // std::map: deterministic Describe() order.
  std::map<std::string, ArmedPoint> armed_;
  bool crash_pending_ = false;
};

}  // namespace reoptdb

#endif  // REOPTDB_COMMON_FAULT_H_
