#include "shard/replica_manager.h"

#include <algorithm>

namespace reoptdb {

namespace {

/// Trailing append-ordinal column of a partition/replica row.
uint64_t OrdinalOf(const Tuple& row) {
  return static_cast<uint64_t>(row.at(row.size() - 1).AsInt());
}

/// Refreshes a partition/replica table's catalog stats from its heap.
Status RefreshStats(Catalog* catalog, const std::string& table,
                    TableInfo* info) {
  TableStats st = info->stats;
  st.analyzed = true;
  st.row_count = static_cast<double>(info->heap->tuple_count());
  st.page_count = static_cast<double>(info->heap->page_count());
  st.avg_tuple_bytes = info->heap->avg_tuple_bytes();
  return catalog->SetStats(table, std::move(st));
}

}  // namespace

ReplicaManager::ReplicaManager(ShardCluster* cluster, int factor)
    : cluster_(cluster),
      factor_(std::clamp(factor, 1, cluster->num_nodes())) {}

Status ReplicaManager::PlaceReplicas(const std::string& table) {
  // Drop any stale replica tables from a previous sharding first, so a
  // re-shard at a lower factor does not leave orphan copies behind.
  const std::string rt = ReplicaTableName(table);
  for (int id = 0; id < cluster_->num_nodes(); ++id) {
    ShardNode* n = cluster_->node(id);
    if (n->alive && n->catalog->Exists(rt)) RETURN_IF_ERROR(n->catalog->Drop(rt));
  }
  dir_.erase(table);
  const std::vector<int> alive = cluster_->AliveNodes();
  const int copies = std::min<int>(factor_, static_cast<int>(alive.size()));
  auto rit = cluster_->routes_.find(table);
  if (rit == cluster_->routes_.end())
    return Status::Internal("replicas before routing: " + table);
  const std::vector<int>& route = rit->second;
  if (copies <= 1) return Status::OK();

  // Replica tables share the partition schema (ordinal column included).
  ASSIGN_OR_RETURN(TableInfo * coord, cluster_->db_->catalog()->Get(table));
  Schema part_schema = coord->schema;
  part_schema.AddColumn(Column{ShardCluster::kOrdQualifier,
                               ShardCluster::OrdColumnName(table),
                               ValueType::kInt64, 8.0});
  std::vector<TableInfo*> repl(static_cast<size_t>(cluster_->num_nodes()),
                               nullptr);
  for (int id : alive) {
    ASSIGN_OR_RETURN(TableInfo * pt, cluster_->node(id)->catalog->CreateTable(
                                         rt, part_schema));
    repl[static_cast<size_t>(id)] = pt;
  }

  // Owners of each slice: the next copies-1 alive nodes after the primary
  // in node-id order. Deterministic, distinct, and spread so that losing
  // any single node leaves every slice at least one surviving copy.
  std::vector<std::vector<int>>& dir = dir_[table];
  dir.assign(route.size(), {});
  std::vector<size_t> alive_pos(static_cast<size_t>(cluster_->num_nodes()), 0);
  for (size_t i = 0; i < alive.size(); ++i)
    alive_pos[static_cast<size_t>(alive[i])] = i;

  // One more pass over the durable copy to write the replicas (charged:
  // creating redundancy is real I/O, not bookkeeping).
  HeapFile::Iterator it = coord->heap->Scan();
  Tuple t;
  uint64_t ord = 0;
  while (true) {
    ASSIGN_OR_RETURN(bool more, it.Next(&t));
    if (!more) break;
    if (ord >= route.size()) break;
    const size_t base = alive_pos[static_cast<size_t>(route[ord])];
    Tuple part_row = t;
    part_row.Append(Value(static_cast<int64_t>(ord)));
    for (int c = 1; c < copies; ++c) {
      const int owner = alive[(base + static_cast<size_t>(c)) % alive.size()];
      dir[ord].push_back(owner);
      RETURN_IF_ERROR(
          repl[static_cast<size_t>(owner)]->heap->Append(part_row).status());
    }
    ++ord;
  }
  for (int id : alive) {
    TableInfo* pt = repl[static_cast<size_t>(id)];
    RETURN_IF_ERROR(pt->heap->Flush());
    RETURN_IF_ERROR(RefreshStats(cluster_->node(id)->catalog.get(), rt, pt));
  }
  return Status::OK();
}

std::vector<int> ReplicaManager::ReplicasOf(const std::string& table,
                                            uint64_t ord) const {
  auto it = dir_.find(table);
  if (it == dir_.end() || ord >= it->second.size()) return {};
  return it->second[ord];
}

std::vector<uint64_t> ReplicaManager::ExpectedOrdinals(
    const std::string& table, int node, const std::string& role) const {
  std::vector<uint64_t> out;
  if (role == "primary") {
    auto rit = cluster_->routes_.find(table);
    if (rit == cluster_->routes_.end()) return out;
    for (uint64_t o = 0; o < rit->second.size(); ++o)
      if (rit->second[o] == node) out.push_back(o);
    return out;
  }
  auto it = dir_.find(table);
  if (it == dir_.end()) return out;
  for (uint64_t o = 0; o < it->second.size(); ++o)
    for (int owner : it->second[o])
      if (owner == node) out.push_back(o);
  return out;
}

std::vector<std::pair<int, bool>> ReplicaManager::OtherHolders(
    const std::string& table, uint64_t ord, int skip_node,
    bool skip_primary) const {
  std::vector<std::pair<int, bool>> out;
  auto rit = cluster_->routes_.find(table);
  if (rit != cluster_->routes_.end() && ord < rit->second.size()) {
    const int prim = rit->second[ord];
    if (!(prim == skip_node && skip_primary) &&
        cluster_->node(prim)->alive)
      out.emplace_back(prim, true);
  }
  for (int owner : ReplicasOf(table, ord)) {
    if (owner == skip_node && !skip_primary) continue;
    if (cluster_->node(owner)->alive) out.emplace_back(owner, false);
  }
  return out;
}

Status ReplicaManager::CollectRows(const std::string& table, int node,
                                   bool from_replica,
                                   const std::set<uint64_t>& ords,
                                   std::map<uint64_t, Tuple>* out) const {
  if (ords.empty()) return Status::OK();
  const std::string phys = from_replica ? ReplicaTableName(table) : table;
  ASSIGN_OR_RETURN(TableInfo * info,
                   cluster_->node(node)->catalog->Get(phys));
  HeapFile::Iterator it = info->heap->Scan();
  Tuple t;
  while (true) {
    ASSIGN_OR_RETURN(bool more, it.Next(&t));
    if (!more) break;
    const uint64_t ord = OrdinalOf(t);
    if (ords.count(ord) != 0) (*out)[ord] = t;
  }
  return Status::OK();
}

Status ReplicaManager::CollectCoordinatorRows(
    const std::string& table, const std::set<uint64_t>& ords,
    std::map<uint64_t, Tuple>* out) const {
  if (ords.empty()) return Status::OK();
  ASSIGN_OR_RETURN(TableInfo * info, cluster_->db_->catalog()->Get(table));
  HeapFile::Iterator it = info->heap->Scan();
  Tuple t;
  uint64_t ord = 0;
  while (true) {
    ASSIGN_OR_RETURN(bool more, it.Next(&t));
    if (!more) break;
    if (ords.count(ord) != 0) {
      Tuple part_row = t;
      part_row.Append(Value(static_cast<int64_t>(ord)));
      (*out)[ord] = std::move(part_row);
    }
    ++ord;
  }
  return Status::OK();
}

Result<ShardCluster::RehomeResult> ReplicaManager::FailoverDeadNode(
    int dead, std::vector<ReplicaRepairRecord>* repairs) {
  const std::vector<int> alive = cluster_->AliveNodes();
  if (alive.empty()) return Status::Internal("no survivors");

  ShardCluster::RehomeResult res;
  const double t_io = cluster_->db_->cost_model().params().t_io_ms;
  const DiskStats coord_before = cluster_->db_->disk()->stats();
  std::vector<DiskStats> node_before;
  node_before.reserve(cluster_->nodes_.size());
  for (const auto& n : cluster_->nodes_) node_before.push_back(n->disk->stats());

  // Aggregated repair log: (node, role, source) -> rows, per table.
  struct RepairKey {
    int node;
    std::string role, source;
    bool operator<(const RepairKey& o) const {
      return std::tie(node, role, source) < std::tie(o.node, o.role, o.source);
    }
  };
  uint64_t copy_bytes = 0;  // node-to-node re-establishment traffic
  uint64_t copy_rows = 0;

  for (auto& [table, route] : cluster_->routes_) {
    std::vector<std::vector<int>>& dir = dir_[table];
    if (dir.size() < route.size()) dir.resize(route.size());

    // Classify the dead node's slices. `promote[ord]` is the surviving
    // replica owner taking over as primary; `fallback` holds slices whose
    // every copy died (coordinator re-read).
    std::map<uint64_t, int> promote;
    std::set<uint64_t> fallback;
    std::set<uint64_t> affected;  // any slice that lost a copy
    for (uint64_t ord = 0; ord < route.size(); ++ord) {
      std::vector<int>& owners = dir[ord];
      const bool was_replica =
          std::find(owners.begin(), owners.end(), dead) != owners.end();
      owners.erase(std::remove(owners.begin(), owners.end(), dead),
                   owners.end());
      if (route[ord] == dead) {
        affected.insert(ord);
        int surv = -1;
        for (int o : owners)
          if (cluster_->node(o)->alive) {
            surv = o;
            break;
          }
        if (surv >= 0) {
          promote[ord] = surv;
          owners.erase(std::remove(owners.begin(), owners.end(), surv),
                       owners.end());
        } else {
          fallback.insert(ord);
        }
      } else if (was_replica) {
        affected.insert(ord);
      }
    }
    if (affected.empty()) continue;

    // Decide new replica owners to restore the k-way invariant, and which
    // healthy copy sources each needed row. Group the reads into one scan
    // per (node, heap) so the charged I/O stays honest.
    const int desired = std::min<int>(factor_, static_cast<int>(alive.size()));
    std::map<uint64_t, std::vector<int>> new_owners;  // ord -> added replicas
    std::map<std::pair<int, bool>, std::set<uint64_t>> scan_jobs;
    std::set<uint64_t> coord_job = fallback;
    for (uint64_t ord : affected) {
      const int prim = promote.count(ord) != 0 ? promote[ord] : route[ord];
      std::vector<int>& owners = dir[ord];
      int have = 1 + static_cast<int>(owners.size());
      if (fallback.count(ord) != 0) have = 1;  // primary re-read, no replicas
      for (size_t i = 0; have < desired && i < alive.size(); ++i) {
        const int cand =
            alive[(ord + 1 + i) % alive.size()];  // spread, deterministic
        if (cand == prim) continue;
        if (std::find(owners.begin(), owners.end(), cand) != owners.end())
          continue;
        owners.push_back(cand);
        new_owners[ord].push_back(cand);
        ++have;
      }
      // Row source: the promoted owner's replica heap covers both the
      // promotion and any new copies; an intact primary serves new copies
      // from its partition table; a fully-lost slice reads the coordinator.
      if (promote.count(ord) != 0) {
        scan_jobs[{promote[ord], true}].insert(ord);
      } else if (fallback.count(ord) != 0) {
        coord_job.insert(ord);
      } else if (new_owners.count(ord) != 0) {
        scan_jobs[{route[ord], false}].insert(ord);
      }
    }

    std::map<uint64_t, Tuple> rows;
    for (const auto& [src, ords] : scan_jobs)
      RETURN_IF_ERROR(CollectRows(table, src.first, src.second, ords, &rows));
    RETURN_IF_ERROR(CollectCoordinatorRows(table, coord_job, &rows));

    // Apply, in ordinal order (deterministic layout for bit-identical
    // re-runs): promotions and fallbacks land in partition tables, new
    // copies in replica heaps.
    std::map<RepairKey, uint64_t> log;
    std::set<std::pair<int, bool>> touched;
    auto heap_of = [&](int node, bool replica) -> Result<TableInfo*> {
      ShardNode* n = cluster_->node(node);
      const std::string phys = replica ? ReplicaTableName(table) : table;
      if (replica && !n->catalog->Exists(phys)) {
        // A survivor that never held replicas of this table gets one now.
        ASSIGN_OR_RETURN(TableInfo * base, n->catalog->Get(table));
        return n->catalog->CreateTable(phys, base->schema);
      }
      return n->catalog->Get(phys);
    };
    for (uint64_t ord : affected) {
      auto row = rows.find(ord);
      if (row == rows.end() && promote.count(ord) == 0) continue;
      if (promote.count(ord) != 0) {
        const int target = promote[ord];
        if (row == rows.end())
          return Status::DataLoss("replica of " + table + " ordinal " +
                                  std::to_string(ord) + " missing on node " +
                                  std::to_string(target));
        ASSIGN_OR_RETURN(TableInfo * pt, heap_of(target, false));
        RETURN_IF_ERROR(pt->heap->Append(row->second).status());
        touched.insert({target, false});
        route[ord] = target;
        ++res.promoted_rows;
        ++log[RepairKey{target, "primary", "replica"}];
      } else if (fallback.count(ord) != 0) {
        const int target = alive[ord % alive.size()];
        ASSIGN_OR_RETURN(TableInfo * pt, heap_of(target, false));
        RETURN_IF_ERROR(pt->heap->Append(row->second).status());
        touched.insert({target, false});
        route[ord] = target;
        ++res.coordinator_rows;
        ++log[RepairKey{target, "primary", "coordinator"}];
      }
      auto no = new_owners.find(ord);
      if (no != new_owners.end() && row != rows.end()) {
        const std::string source =
            fallback.count(ord) != 0 ? "coordinator" : "primary";
        for (int owner : no->second) {
          ASSIGN_OR_RETURN(TableInfo * pt, heap_of(owner, true));
          RETURN_IF_ERROR(pt->heap->Append(row->second).status());
          touched.insert({owner, true});
          ++res.restored_copies;
          ++log[RepairKey{owner, "replica", source}];
          if (source == "primary") {
            copy_bytes += row->second.SerializedSize();
            ++copy_rows;
          }
        }
      }
    }
    for (const auto& [node, replica] : touched) {
      const std::string phys = replica ? ReplicaTableName(table) : table;
      ASSIGN_OR_RETURN(TableInfo * pt,
                       cluster_->node(node)->catalog->Get(phys));
      RETURN_IF_ERROR(pt->heap->Flush());
      RETURN_IF_ERROR(
          RefreshStats(cluster_->node(node)->catalog.get(), phys, pt));
    }
    if (repairs != nullptr) {
      for (const auto& [key, count] : log) {
        ReplicaRepairRecord r;
        r.table = table;
        r.node = key.node;
        r.role = key.role;
        r.source = key.source;
        r.rows = count;
        repairs->push_back(std::move(r));
      }
    }
  }
  res.rehomed_rows = res.promoted_rows + res.coordinator_rows;

  // Simulated cost: the coordinator's re-read (zero on the all-replica
  // path) plus the slowest survivor's local I/O (they work in parallel)
  // plus the node-to-node traffic for re-established copies.
  const DiskStats coord_delta = cluster_->db_->disk()->stats() - coord_before;
  res.sim_ms = static_cast<double>(coord_delta.page_reads) * t_io +
               coord_delta.retry_penalty_ms;
  double worst_node = 0;
  for (const auto& n : cluster_->nodes_) {
    if (!n->alive) continue;
    const DiskStats d =
        n->disk->stats() - node_before[static_cast<size_t>(n->id)];
    const double ms =
        (static_cast<double>(d.page_reads + d.page_writes) * t_io +
         d.retry_penalty_ms) *
        n->slowdown;
    worst_node = std::max(worst_node, ms);
  }
  res.sim_ms += worst_node;
  if (copy_rows > 0)
    res.sim_ms += cluster_->db_->cost_model().NetTransfer(
        static_cast<double>(copy_bytes),
        static_cast<double>((copy_rows + ExchangeChannel::kTuplesPerMessage -
                             1) /
                            ExchangeChannel::kTuplesPerMessage));
  if (repairs != nullptr && !repairs->empty()) {
    const double share = res.sim_ms / static_cast<double>(repairs->size());
    for (ReplicaRepairRecord& r : *repairs) r.sim_ms = share;
  }
  return res;
}

}  // namespace reoptdb
