// Plan-correction cache.
//
// When the Dynamic Re-Optimization controller commits a plan switch it has
// paid (optimization time, materialization I/O) to learn that the static
// plan for this query text was wrong. The PlanCorrectionCache banks that
// lesson: the corrected plan — re-planned from the *original* query spec
// with feedback-corrected statistics, not the temp-table remainder the
// switch actually ran — is stored under the canonical SQL text. A repeat of
// the same query then starts directly on the corrected plan, skipping
// optimization entirely (a cache hit is reported as a PlanCacheHit trace
// record).
//
// Entries are validated on lookup, never trusted blindly:
//   - schema_changed: any referenced table's schema/keys/indexes changed
//     (fingerprint mismatch) — the plan may be unexecutable; entry evicted.
//   - stats_stale: a referenced table's row count drifted or update
//     activity advanced past the staleness thresholds — the corrected plan
//     is no longer known-good; entry evicted so the next run re-learns.
//   - insufficient_memory: the cached plan was corrected under a larger
//     query memory budget than the current one; falling back to fresh
//     optimization (which sizes operators for the current budget) is safer.
//     The entry is KEPT — memory pressure is transient, schema drift is not.

#ifndef REOPTDB_OPTIMIZER_PLAN_CACHE_H_
#define REOPTDB_OPTIMIZER_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "optimizer/plan_memo.h"
#include "plan/physical_plan.h"

namespace reoptdb {

/// Validation snapshot of one table referenced by a cached plan.
struct PlanCacheTableMark {
  std::string table;
  uint64_t schema_fingerprint = 0;
  double row_count = 0;
  double update_activity = 0;
};

struct PlanCacheOptions {
  /// Relative row-count drift that invalidates an entry.
  double staleness_rows_frac = 0.2;
  /// Absolute update-activity advance that invalidates an entry.
  double staleness_activity = 0.05;
  size_t max_entries = 64;
};

struct PlanCacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;          ///< no entry for the SQL text
  uint64_t schema_evictions = 0;
  uint64_t stale_evictions = 0;
  uint64_t memory_rejects = 0;  ///< entry kept, lookup declined
  uint64_t installs = 0;
};

/// FNV-1a over a table's structural identity: column names/types/widths,
/// key columns, and indexed columns. Statistics are deliberately excluded —
/// they are covered by the row-count/activity marks.
uint64_t SchemaFingerprint(const TableInfo& info);

/// \brief Cache of corrected plans keyed on canonical SQL text.
class PlanCorrectionCache {
 public:
  explicit PlanCorrectionCache(PlanCacheOptions opts = PlanCacheOptions{})
      : opts_(opts) {}

  /// Stores (or replaces) the corrected plan for `sql`. `plan` is cloned;
  /// `opt_time_ms` is the simulated optimization time a future hit saves;
  /// `query_mem_pages` is the budget the plan was corrected under. Tables
  /// referenced by the plan are snapshotted from `catalog` for validation.
  /// `memo`, when non-null, is the corrected plan's DP memo (cloned); a
  /// future hit hands a copy to the session so mid-query re-optimization
  /// can repair incrementally despite having skipped the optimizer.
  void Install(const std::string& sql, const PlanNode& plan,
               double opt_time_ms, double query_mem_pages,
               const Catalog& catalog, const PlanMemo* memo = nullptr);

  /// Returns a fresh executable clone (observations reset, improved
  /// re-seeded from estimates, memory budgets cleared) when a valid entry
  /// exists, else nullptr with `reason` set to one of "miss",
  /// "schema_changed", "stats_stale", "insufficient_memory". On a hit
  /// `saved_opt_ms` receives the banked optimization time and `entry_hits`
  /// the entry's cumulative hit count (this hit included). `memo_out`,
  /// when non-null, receives a clone of the entry's DP memo (or nullptr if
  /// the entry was installed without one).
  std::unique_ptr<PlanNode> Lookup(const std::string& sql,
                                   double query_mem_pages,
                                   const Catalog& catalog,
                                   std::string* reason,
                                   double* saved_opt_ms,
                                   uint64_t* entry_hits,
                                   std::unique_ptr<PlanMemo>* memo_out =
                                       nullptr);

  /// Drops every entry referencing `table` (DDL, bulk load).
  void InvalidateTable(const std::string& table);

  void Clear();

  size_t entry_count() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const PlanCacheCounters& counters() const { return counters_; }

  /// Human-readable dump for the shell's \plancache command.
  std::string Describe() const;

 private:
  struct Entry {
    std::unique_ptr<PlanNode> plan;
    /// DP memo of the corrected plan's optimization (may be null for
    /// entries installed without one).
    std::unique_ptr<PlanMemo> memo;
    double opt_time_ms = 0;
    double query_mem_pages = 0;
    std::vector<PlanCacheTableMark> marks;
    uint64_t hits = 0;
  };

  void EnforceCapacity();

  PlanCacheOptions opts_;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  ///< front = coldest
  PlanCacheCounters counters_;
};

}  // namespace reoptdb

#endif  // REOPTDB_OPTIMIZER_PLAN_CACHE_H_
