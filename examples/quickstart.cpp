// Quickstart: create a database, load a small TPC-D instance, and run a
// query with and without Dynamic Re-Optimization.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// `--trace-json` runs the re-optimized query only, serializes its
// structured trace to JSON, re-parses and re-serializes it, and exits 0
// iff the trace is populated and the round-trip is lossless (wired up as
// the `quickstart_trace_json` ctest).

#include <cstdio>
#include <cstring>

#include "engine/database.h"
#include "obs/json.h"
#include "tpcd/dbgen.h"
#include "tpcd/queries.h"

using namespace reoptdb;

namespace {

void PrintReport(const char* label, const QueryResult& r) {
  std::printf("%-14s time=%9.1f ms  io=%7llu pages  rows=%llu"
              "  collectors=%d  mem_reallocs=%d  reopts=%d  switches=%d\n",
              label, r.report.sim_time_ms,
              static_cast<unsigned long long>(r.report.page_ios),
              static_cast<unsigned long long>(r.report.output_rows),
              r.report.collectors_inserted, r.report.memory_reallocations,
              r.report.reopts_considered, r.report.plans_switched);
}

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

/// --trace-json: emit the trace JSON and self-validate the round-trip.
int TraceJsonMode(const QueryResult& r) {
  const std::string json = r.report.trace.ToJson();
  std::printf("%s\n", json.c_str());

  Result<obs::JsonValue> parsed = obs::ParseJson(json);
  if (!parsed.ok()) return Fail(parsed.status());
  Result<QueryTrace> back = QueryTrace::FromJson(json);
  if (!back.ok()) return Fail(back.status());
  if (back->ToJson() != json)
    return Fail(Status::Internal("trace JSON round-trip not lossless"));
  if (back->spans.empty())
    return Fail(Status::Internal("trace has no operator spans"));
  if (back->config.mode != "full")
    return Fail(Status::Internal("trace config mode not recorded"));
  std::fprintf(stderr, "trace JSON ok: %zu spans, %zu eq2 checks, "
               "%zu budget changes\n",
               back->spans.size(), back->eq2_checks.size(),
               back->budget_changes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool trace_json =
      argc > 1 && std::strcmp(argv[1], "--trace-json") == 0;
  DatabaseOptions opts;
  opts.buffer_pool_pages = 512;
  opts.query_mem_pages = 96;
  Database db(opts);

  if (!trace_json) std::printf("Loading TPC-D (scale 0.005, uniform)...\n");
  tpcd::TpcdOptions gen;
  gen.scale_factor = 0.005;
  Status st = tpcd::Load(&db, gen);
  if (!st.ok()) return Fail(st);

  const std::string sql = tpcd::Q5Sql();
  if (trace_json) {
    ReoptOptions full;
    Result<QueryResult> reopt = db.ExecuteWith(sql, full);
    if (!reopt.ok()) return Fail(reopt.status());
    return TraceJsonMode(*reopt);
  }
  std::printf("\nQuery (TPC-D Q5):\n  %s\n\n", sql.c_str());

  Result<std::string> plan = db.Explain(sql);
  if (!plan.ok()) return Fail(plan.status());
  std::printf("Optimizer plan (annotated):\n%s\n", plan->c_str());

  ReoptOptions off;
  off.mode = ReoptMode::kOff;
  Result<QueryResult> normal = db.ExecuteWith(sql, off);
  if (!normal.ok()) return Fail(normal.status());
  PrintReport("normal:", *normal);

  ReoptOptions full;  // paper defaults: mu=0.05, theta1=0.05, theta2=0.2
  Result<QueryResult> reopt = db.ExecuteWith(sql, full);
  if (!reopt.ok()) return Fail(reopt.status());
  PrintReport("re-optimized:", *reopt);

  for (const std::string& e : reopt->report.events)
    std::printf("  event: %s\n", e.c_str());

  std::printf("\nFirst rows:\n");
  size_t n = std::min<size_t>(5, reopt->rows.size());
  for (size_t i = 0; i < n; ++i)
    std::printf("  %s\n", reopt->rows[i].ToString().c_str());

  double speedup = normal->report.sim_time_ms /
                   std::max(1e-9, reopt->report.sim_time_ms);
  std::printf("\nspeedup (normal / re-optimized): %.2fx\n", speedup);
  return 0;
}
