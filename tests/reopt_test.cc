// Tests for the Dynamic Re-Optimization machinery: inaccuracy potentials,
// the SCIA, improved-estimate refresh, and the controller's behaviour.

#include "gtest/gtest.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "reopt/controller.h"
#include "reopt/inaccuracy.h"
#include "reopt/scia.h"
#include "test_util.h"
#include "tpcd/dbgen.h"
#include "tpcd/queries.h"

namespace reoptdb {
namespace {

using testing_util::Canon;
using testing_util::LoadEmpDept;

TEST(InaccuracyLevelTest, BumpSaturates) {
  EXPECT_EQ(Bump(InaccuracyLevel::kLow), InaccuracyLevel::kMedium);
  EXPECT_EQ(Bump(InaccuracyLevel::kMedium), InaccuracyLevel::kHigh);
  EXPECT_EQ(Bump(InaccuracyLevel::kHigh), InaccuracyLevel::kHigh);
  EXPECT_EQ(MaxLevel(InaccuracyLevel::kLow, InaccuracyLevel::kMedium),
            InaccuracyLevel::kMedium);
}

class InaccuracyTest : public ::testing::Test {
 protected:
  void Load(HistogramKind kind) {
    AnalyzeOptions a;
    a.histogram_kind = kind;
    DatabaseOptions opts;
    db_ = std::make_unique<Database>(opts);
    LoadEmpDept(db_.get());
    REOPTDB_ASSERT_OK(db_->Analyze("emp", a));
    REOPTDB_ASSERT_OK(db_->Analyze("dept", a));
  }

  Result<QuerySpec> BindSql(const std::string& sql) {
    Result<SelectStmtAst> ast = ParseSelect(sql);
    if (!ast.ok()) return ast.status();
    return Bind(ast.value(), *db_->catalog());
  }

  std::unique_ptr<Database> db_;
};

TEST_F(InaccuracyTest, BaseHistogramPotentialByKind) {
  Load(HistogramKind::kMaxDiff);
  Result<QuerySpec> spec = BindSql("SELECT emp_id FROM emp");
  ASSERT_TRUE(spec.ok());
  InaccuracyAnalyzer serial(db_->catalog(), &spec.value());
  EXPECT_EQ(serial.BaseHistogramPotential("emp.salary"),
            InaccuracyLevel::kLow);
  // Strings have no histogram -> high.
  EXPECT_EQ(serial.BaseHistogramPotential("emp.name"),
            InaccuracyLevel::kHigh);

  Load(HistogramKind::kEquiWidth);
  Result<QuerySpec> spec2 = BindSql("SELECT emp_id FROM emp");
  ASSERT_TRUE(spec2.ok());
  InaccuracyAnalyzer ew(db_->catalog(), &spec2.value());
  EXPECT_EQ(ew.BaseHistogramPotential("emp.salary"),
            InaccuracyLevel::kMedium);
}

TEST_F(InaccuracyTest, UpdateActivityBumpsLevel) {
  Load(HistogramKind::kMaxDiff);
  REOPTDB_ASSERT_OK(db_->BumpUpdateActivity("emp", 0.5));
  Result<QuerySpec> spec = BindSql("SELECT emp_id FROM emp");
  ASSERT_TRUE(spec.ok());
  InaccuracyAnalyzer a(db_->catalog(), &spec.value());
  EXPECT_EQ(a.BaseHistogramPotential("emp.salary"),
            InaccuracyLevel::kMedium);  // low bumped once
}

TEST_F(InaccuracyTest, MultiAttributeSelectionBumps) {
  Load(HistogramKind::kMaxDiff);
  Result<QuerySpec> one =
      BindSql("SELECT emp_id FROM emp WHERE salary > 100");
  Result<QuerySpec> two = BindSql(
      "SELECT emp_id FROM emp WHERE salary > 100 AND emp_id < 50");
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(two.ok());

  PlanNode scan_one;
  scan_one.kind = OpKind::kSeqScan;
  scan_one.table = "emp";
  scan_one.alias = "emp";
  scan_one.filters.push_back(
      ScalarPred{"emp.salary", CmpOp::kGt, false, Value(100.0), ""});

  PlanNode scan_two = {};
  scan_two.kind = OpKind::kSeqScan;
  scan_two.table = "emp";
  scan_two.alias = "emp";
  scan_two.filters.push_back(
      ScalarPred{"emp.salary", CmpOp::kGt, false, Value(100.0), ""});
  scan_two.filters.push_back(
      ScalarPred{"emp.emp_id", CmpOp::kLt, false, Value(int64_t{50}), ""});

  InaccuracyAnalyzer a1(db_->catalog(), &one.value());
  InaccuracyAnalyzer a2(db_->catalog(), &two.value());
  InaccuracyLevel p1 = a1.NodePotential(scan_one);
  InaccuracyLevel p2 = a2.NodePotential(scan_two);
  EXPECT_EQ(p1, InaccuracyLevel::kLow);     // serial histogram
  EXPECT_EQ(p2, InaccuracyLevel::kMedium);  // correlation bump
}

TEST_F(InaccuracyTest, UniquePotentialRules) {
  Load(HistogramKind::kMaxDiff);
  Result<QuerySpec> spec = BindSql("SELECT emp_id FROM emp");
  ASSERT_TRUE(spec.ok());
  InaccuracyAnalyzer a(db_->catalog(), &spec.value());

  PlanNode bare_scan;
  bare_scan.kind = OpKind::kSeqScan;
  bare_scan.table = "emp";
  bare_scan.alias = "emp";
  EXPECT_EQ(a.UniquePotential(bare_scan, "emp.dept_id"),
            InaccuracyLevel::kLow);

  PlanNode filtered = {};
  filtered.kind = OpKind::kSeqScan;
  filtered.table = "emp";
  filtered.alias = "emp";
  filtered.filters.push_back(
      ScalarPred{"emp.salary", CmpOp::kGt, false, Value(1.0), ""});
  EXPECT_EQ(a.UniquePotential(filtered, "emp.dept_id"),
            InaccuracyLevel::kHigh);
}

class SciaTest : public ::testing::Test {
 protected:
  SciaTest() { LoadEmpDept(&db_, 2000, 20); }

  Result<std::unique_ptr<PlanNode>> PlanFor(const std::string& sql,
                                            QuerySpec* spec_out) {
    Result<SelectStmtAst> ast = ParseSelect(sql);
    if (!ast.ok()) return ast.status();
    Result<QuerySpec> spec = Bind(ast.value(), *db_.catalog());
    if (!spec.ok()) return spec.status();
    *spec_out = spec.value();
    Optimizer opt(db_.catalog(), &db_.cost_model());
    Result<OptimizeResult> r = opt.Plan(spec.value());
    if (!r.ok()) return r.status();
    return std::move(r.value().plan);
  }

  Database db_;
};

TEST_F(SciaTest, InsertsCollectorsOnScanAndJoinEdges) {
  QuerySpec spec;
  Result<std::unique_ptr<PlanNode>> plan = PlanFor(
      "SELECT emp.dept_id, SUM(salary) FROM emp, dept "
      "WHERE emp.dept_id = dept.dept_id AND salary > 2000 "
      "GROUP BY emp.dept_id",
      &spec);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  SciaOptions opts;
  Result<SciaResult> r = InsertStatsCollectors(&plan.value(), spec,
                                               *db_.catalog(),
                                               db_.cost_model(), opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(r.value().collectors_inserted, 3);  // 2 scans + 1 join

  int collectors = 0;
  plan.value()->PostOrder([&](const PlanNode* n) {
    if (n->kind == OpKind::kStatsCollector) ++collectors;
  });
  EXPECT_EQ(collectors, r.value().collectors_inserted);
}

TEST_F(SciaTest, CandidatesIncludeJoinHistogramAndGroupUnique) {
  QuerySpec spec;
  Result<std::unique_ptr<PlanNode>> plan = PlanFor(
      "SELECT emp.dept_id, SUM(salary) FROM emp, dept "
      "WHERE emp.dept_id = dept.dept_id AND salary > 2000 "
      "GROUP BY emp.dept_id",
      &spec);
  ASSERT_TRUE(plan.ok());
  SciaOptions opts;
  Result<SciaResult> r = InsertStatsCollectors(&plan.value(), spec,
                                               *db_.catalog(),
                                               db_.cost_model(), opts);
  ASSERT_TRUE(r.ok());
  bool has_join_hist = false, has_group_unique = false;
  for (const StatCandidate& c : r.value().candidates) {
    if (c.is_histogram && c.column == "emp.dept_id") has_join_hist = true;
    if (!c.is_histogram && c.column == "emp.dept_id") has_group_unique = true;
  }
  EXPECT_TRUE(has_join_hist);
  EXPECT_TRUE(has_group_unique);
}

TEST_F(SciaTest, MuBudgetDropsLeastEffective) {
  QuerySpec spec;
  Result<std::unique_ptr<PlanNode>> plan = PlanFor(
      "SELECT emp.dept_id, SUM(salary) FROM emp, dept "
      "WHERE emp.dept_id = dept.dept_id GROUP BY emp.dept_id",
      &spec);
  ASSERT_TRUE(plan.ok());
  SciaOptions tight;
  tight.mu = 1e-9;  // essentially no budget
  Result<SciaResult> r = InsertStatsCollectors(&plan.value(), spec,
                                               *db_.catalog(),
                                               db_.cost_model(), tight);
  ASSERT_TRUE(r.ok());
  for (const StatCandidate& c : r.value().candidates)
    EXPECT_FALSE(c.kept) << c.column;
  EXPECT_NEAR(r.value().estimated_overhead_ms, 0, 1e-6);
}

TEST_F(SciaTest, CostTotalsIncludeCollectors) {
  QuerySpec spec;
  Result<std::unique_ptr<PlanNode>> plan = PlanFor(
      "SELECT emp.dept_id, SUM(salary) FROM emp GROUP BY emp.dept_id", &spec);
  ASSERT_TRUE(plan.ok());
  double before = plan.value()->est.cost_total_ms;
  SciaOptions opts;
  Result<SciaResult> r = InsertStatsCollectors(&plan.value(), spec,
                                               *db_.catalog(),
                                               db_.cost_model(), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(plan.value()->est.cost_total_ms, before);
  // Overhead respects mu.
  EXPECT_LE(r.value().estimated_overhead_ms, opts.mu * before * 1.01);
}

TEST(RefreshTest, ObservedCardinalityPropagatesUpward) {
  // scan(est 1000) -> collector(observed 100) -> agg(est groups 50)
  auto scan = std::make_unique<PlanNode>();
  scan->kind = OpKind::kSeqScan;
  scan->est.cardinality = 1000;
  scan->est.pages = 10;
  scan->est.avg_tuple_bytes = 40;
  scan->est.cost_self_ms = 10;

  auto coll = std::make_unique<PlanNode>();
  coll->kind = OpKind::kStatsCollector;
  coll->est = scan->est;
  coll->observed.valid = true;
  coll->observed.cardinality = 100;
  coll->observed.avg_tuple_bytes = 40;
  coll->children.push_back(std::move(scan));
  coll->children[0]->observed = coll->observed;

  auto agg = std::make_unique<PlanNode>();
  agg->kind = OpKind::kHashAggregate;
  agg->group_cols = {"t.g"};
  agg->est.cardinality = 50;
  agg->est.num_groups = 50;
  agg->output_schema =
      Schema(std::vector<Column>{{"", "g", ValueType::kInt64, 8}});
  agg->children.push_back(std::move(coll));
  int id = 0;
  agg->PostOrder([&](PlanNode* n) {
    n->id = id++;
    n->improved = n->est;
  });

  CostModel cost;
  RefreshImprovedEstimates(agg.get(), cost);
  EXPECT_DOUBLE_EQ(agg->children[0]->improved.cardinality, 100);
  EXPECT_DOUBLE_EQ(agg->children[0]->children[0]->improved.cardinality, 100);
  // Groups capped by the improved input cardinality.
  EXPECT_LE(agg->improved.num_groups, 100);
  EXPECT_GT(agg->improved.cost_total_ms, 0);
}

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest() {
    DatabaseOptions opts;
    opts.query_mem_pages = 64;
    opts.buffer_pool_pages = 256;
    db_ = std::make_unique<Database>(opts);
    LoadEmpDept(db_.get(), 3000, 30);
  }
  std::unique_ptr<Database> db_;
};

TEST_F(ControllerTest, AllModesReturnSameRows) {
  const std::string sql =
      "SELECT emp.dept_id, SUM(salary) AS total FROM emp, dept "
      "WHERE emp.dept_id = dept.dept_id AND salary > 2000 "
      "GROUP BY emp.dept_id";
  std::vector<std::string> reference;
  for (ReoptMode mode : {ReoptMode::kOff, ReoptMode::kMemoryOnly,
                         ReoptMode::kPlanOnly, ReoptMode::kFull}) {
    ReoptOptions o;
    o.mode = mode;
    Result<QueryResult> r = db_->ExecuteWith(sql, o);
    ASSERT_TRUE(r.ok()) << ReoptModeName(mode) << ": "
                        << r.status().ToString();
    if (reference.empty()) {
      reference = Canon(r.value().rows);
    } else {
      EXPECT_EQ(Canon(r.value().rows), reference) << ReoptModeName(mode);
    }
  }
}

TEST_F(ControllerTest, OffModeHasNoCollectors) {
  ReoptOptions off;
  off.mode = ReoptMode::kOff;
  Result<QueryResult> r =
      db_->ExecuteWith("SELECT emp_id FROM emp WHERE salary > 100", off);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().report.collectors_inserted, 0);
  EXPECT_EQ(r.value().report.memory_reallocations, 0);
  EXPECT_EQ(r.value().report.plans_switched, 0);
}

TEST_F(ControllerTest, MemoryOnlyNeverSwitchesPlans) {
  ReoptOptions mem;
  mem.mode = ReoptMode::kMemoryOnly;
  Result<QueryResult> r = db_->ExecuteWith(
      "SELECT emp.dept_id, SUM(salary) FROM emp, dept "
      "WHERE emp.dept_id = dept.dept_id GROUP BY emp.dept_id",
      mem);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().report.plans_switched, 0);
  EXPECT_EQ(r.value().report.reopts_considered, 0);
}

TEST_F(ControllerTest, Theta2GateBlocksReoptWhenHuge) {
  ReoptOptions strict;
  strict.mode = ReoptMode::kFull;
  strict.theta2 = 1e9;  // never consider the plan sub-optimal
  Result<QueryResult> r = db_->ExecuteWith(
      "SELECT e.emp_id FROM emp e, dept d1, dept d2 "
      "WHERE e.dept_id = d1.dept_id AND d1.region_id = d2.region_id",
      strict);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().report.reopts_considered, 0);
  EXPECT_EQ(r.value().report.plans_switched, 0);
}

TEST_F(ControllerTest, ReportIsPopulated) {
  ReoptOptions full;
  Result<QueryResult> r = db_->ExecuteWith(
      "SELECT emp.dept_id, SUM(salary) FROM emp, dept "
      "WHERE emp.dept_id = dept.dept_id GROUP BY emp.dept_id",
      full);
  ASSERT_TRUE(r.ok());
  const ExecutionReport& rep = r.value().report;
  EXPECT_GT(rep.sim_time_ms, 0);
  EXPECT_GT(rep.estimated_cost_ms, 0);
  EXPECT_FALSE(rep.plan_before.empty());
  EXPECT_GT(rep.collectors_inserted, 0);
  EXPECT_FALSE(rep.edges.empty());
  for (const EdgeComparison& e : rep.edges) {
    EXPECT_GE(e.observed_rows, 0);
    EXPECT_GT(e.estimated_rows, 0);
  }
}

TEST_F(ControllerTest, TraceRecordsGateDecisions) {
  ReoptOptions full;
  Result<QueryResult> r = db_->ExecuteWith(
      "SELECT emp.dept_id, SUM(salary) FROM emp, dept "
      "WHERE emp.dept_id = dept.dept_id GROUP BY emp.dept_id",
      full);
  ASSERT_TRUE(r.ok());
  const QueryTrace& trace = r.value().report.trace;
  EXPECT_EQ(trace.config.mode, "full");
  EXPECT_DOUBLE_EQ(trace.config.theta1, full.theta1);
  EXPECT_DOUBLE_EQ(trace.config.theta2, full.theta2);
  ASSERT_FALSE(trace.spans.empty());
  // Without a plan switch, the first span is the root operator and its row
  // count is the query's output cardinality.
  if (r.value().report.plans_switched == 0)
    EXPECT_EQ(trace.spans.front().rows, r.value().report.output_rows);
  for (const OperatorSpan& s : trace.spans) {
    EXPECT_GE(s.node_id, 0);
    EXPECT_FALSE(s.op.empty());
    EXPECT_GE(s.close_at_ms, s.open_at_ms);
  }
  // Eq.(1) checks only happen after a fired Eq.(2) check.
  EXPECT_LE(trace.eq1_checks.size(), trace.eq2_checks.size());
  for (const Eq1Check& c : trace.eq1_checks) {
    EXPECT_DOUBLE_EQ(c.theta1, full.theta1);
    EXPECT_EQ(c.fired, c.t_opt_est <= c.theta1 * c.rem_cur);
  }
}

TEST_F(ControllerTest, Theta2BlockRecordedStructurally) {
  ReoptOptions strict;
  strict.mode = ReoptMode::kFull;
  strict.theta2 = 1e9;  // never consider the plan sub-optimal
  Result<QueryResult> r = db_->ExecuteWith(
      "SELECT e.emp_id FROM emp e, dept d1, dept d2 "
      "WHERE e.dept_id = d1.dept_id AND d1.region_id = d2.region_id",
      strict);
  ASSERT_TRUE(r.ok());
  const QueryTrace& trace = r.value().report.trace;
  for (const Eq2Check& c : trace.eq2_checks) EXPECT_FALSE(c.fired);
  EXPECT_TRUE(trace.eq1_checks.empty());  // gate never reached Eq.(1)
  EXPECT_TRUE(trace.switches.empty());
}

TEST_F(ControllerTest, TempTablesCleanedUpAfterSwitch) {
  // Force switches by making the gate maximally permissive.
  ReoptOptions eager;
  eager.mode = ReoptMode::kFull;
  eager.theta2 = -1.0;  // any degradation (even none) passes Eq. 2
  eager.theta1 = 1e9;
  Result<QueryResult> r = db_->ExecuteWith(
      "SELECT e.emp_id FROM emp e, dept d1, dept d2 "
      "WHERE e.dept_id = d1.dept_id AND d1.region_id = d2.region_id "
      "AND e.salary > 2000",
      eager);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // No temp tables linger in the catalog.
  EXPECT_FALSE(db_->catalog()->Exists("__temp1"));
  EXPECT_FALSE(db_->catalog()->Exists("__temp2"));
}

TEST(FaultInjectionTest, FaultAfterSwitchLeavesNoTempTables) {
  // A stale-catalog TPC-D instance where the eager gate reliably accepts a
  // plan switch; the reopt.post_switch injection point then fails the query
  // right after the first accepted switch (past the point of no return),
  // and the scope guards must still drop the temp table the switch
  // materialized into.
  DatabaseOptions opts;
  opts.buffer_pool_pages = 128;
  opts.query_mem_pages = 48;
  Database db(opts);
  tpcd::TpcdOptions gen;
  gen.scale_factor = 0.003;
  gen.update_fraction = 1.0;
  REOPTDB_ASSERT_OK(tpcd::Load(&db, gen));

  ReoptOptions eager;
  eager.mode = ReoptMode::kFull;
  eager.theta2 = -1.0;  // any degradation (even none) passes Eq. 2
  eager.theta1 = 1e9;

  // Sanity: this query does switch plans under the eager gate, so the
  // injected fault actually fires after a materialization.
  Result<QueryResult> clean = db.ExecuteWith(tpcd::Q5Sql(), eager);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  ASSERT_GE(clean.value().report.plans_switched, 1);
  ASSERT_FALSE(clean.value().report.trace.switches.empty());

  FaultSpec nth1;
  nth1.trigger = FaultTrigger::kNthCall;
  nth1.nth = 1;
  REOPTDB_ASSERT_OK(db.faults()->Arm(faults::kReoptPostSwitch, nth1));
  Result<QueryResult> r = db.ExecuteWith(tpcd::Q5Sql(), eager);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find(faults::kReoptPostSwitch),
            std::string::npos);
  EXPECT_EQ(db.faults()->StatsFor(faults::kReoptPostSwitch).fires, 1u);
  db.faults()->Reset();
  for (int i = 1; i <= 8; ++i)
    EXPECT_FALSE(db.catalog()->Exists("__temp" + std::to_string(i))) << i;

  // The engine stays usable: the same query still runs to completion.
  Result<QueryResult> again = db.ExecuteWith(tpcd::Q5Sql(), eager);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(Canon(again.value().rows), Canon(clean.value().rows));

  // The deprecated ReoptOptions knob is an alias for the same injection
  // point and must keep working until callers migrate.
  eager.fault_inject_after_switch = true;
  Result<QueryResult> legacy = db.ExecuteWith(tpcd::Q5Sql(), eager);
  ASSERT_FALSE(legacy.ok());
  EXPECT_NE(legacy.status().ToString().find("fault injection"),
            std::string::npos);
  for (int i = 1; i <= 16; ++i)
    EXPECT_FALSE(db.catalog()->Exists("__temp" + std::to_string(i))) << i;
}

}  // namespace
}  // namespace reoptdb
