// Transaction-layer tests: crash-atomic DML over the WAL and the 2PL lock
// manager (txn/txn_manager.h).
//
// The contract under test (DESIGN.md §13): a transaction's writes are
// invisible until its commit record is fsynced and all-visible afterwards,
// across any simulated crash; deadlocks resolve by youngest-victim abort
// with full lock cleanup; lock waits charge the simulated clock and cancel
// cleanly at the deadline; recovery is idempotent and replays committed
// transactions bit-identically.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "engine/database.h"
#include "engine/workload_manager.h"
#include "gtest/gtest.h"
#include "parser/statement.h"
#include "test_util.h"
#include "tpcd/dbgen.h"
#include "tpcd/queries.h"

namespace reoptdb {
namespace {

using testing_util::Canon;
using testing_util::LoadEmpDept;

int64_t CountRows(Database* db, const std::string& sql) {
  Result<QueryResult> r = db->Execute(sql);
  EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
  if (!r.ok() || r.value().rows.empty()) return -1;
  return r.value().rows[0].at(0).AsInt();
}

// ---------------------------------------------------------------------------
// Statement-level semantics (autocommit).

TEST(TxnTest, AutocommitInsertUpdateDelete) {
  Database db;
  LoadEmpDept(&db, 20, 4);

  Result<QueryResult> ins = db.ExecuteSql(
      "INSERT INTO emp VALUES (100, 1, 9999.0, 'newbie'), "
      "(101, 2, 8888.0, 'newbie2')");
  REOPTDB_ASSERT_OK(ins.status());
  EXPECT_NE(ins.value().message.find("inserted 2"), std::string::npos);
  EXPECT_EQ(CountRows(&db, "SELECT COUNT(*) AS c FROM emp"), 22);

  Result<QueryResult> upd =
      db.ExecuteSql("UPDATE emp SET salary = 1.5 WHERE emp_id >= 100");
  REOPTDB_ASSERT_OK(upd.status());
  EXPECT_NE(upd.value().message.find("updated 2"), std::string::npos);
  EXPECT_EQ(CountRows(&db,
                      "SELECT COUNT(*) AS c FROM emp WHERE salary < 2.0"),
            2);

  Result<QueryResult> del =
      db.ExecuteSql("DELETE FROM emp WHERE emp_id >= 100");
  REOPTDB_ASSERT_OK(del.status());
  EXPECT_NE(del.value().message.find("deleted 2"), std::string::npos);
  EXPECT_EQ(CountRows(&db, "SELECT COUNT(*) AS c FROM emp"), 20);

  // The typed log recorded one commit per autocommitted statement.
  EXPECT_EQ(db.txn_manager()->log().commits.size(), 3u);
  EXPECT_EQ(db.txn_manager()->active_count(), 0u);
}

TEST(TxnTest, ExplicitTxnIsInvisibleUntilCommit) {
  Database db;
  LoadEmpDept(&db, 20, 4);

  uint64_t session = 0;
  REOPTDB_ASSERT_OK(db.ExecuteSqlInTxn("BEGIN", &session).status());
  ASSERT_NE(session, 0u);
  REOPTDB_ASSERT_OK(
      db.ExecuteSqlInTxn("INSERT INTO emp VALUES (200, 1, 5.0, 'x')",
                         &session)
          .status());
  REOPTDB_ASSERT_OK(
      db.ExecuteSqlInTxn("DELETE FROM emp WHERE emp_id = 0", &session)
          .status());

  // Uncommitted: reads see neither the insert nor the delete.
  EXPECT_EQ(CountRows(&db, "SELECT COUNT(*) AS c FROM emp"), 20);
  EXPECT_EQ(
      CountRows(&db, "SELECT COUNT(*) AS c FROM emp WHERE emp_id = 0"), 1);

  REOPTDB_ASSERT_OK(db.ExecuteSqlInTxn("COMMIT", &session).status());
  EXPECT_EQ(session, 0u);
  EXPECT_EQ(CountRows(&db, "SELECT COUNT(*) AS c FROM emp"), 20);
  EXPECT_EQ(
      CountRows(&db, "SELECT COUNT(*) AS c FROM emp WHERE emp_id = 0"), 0);
  EXPECT_EQ(
      CountRows(&db, "SELECT COUNT(*) AS c FROM emp WHERE emp_id = 200"), 1);
}

TEST(TxnTest, RollbackDiscardsEverything) {
  Database db;
  LoadEmpDept(&db, 20, 4);

  uint64_t session = 0;
  REOPTDB_ASSERT_OK(db.ExecuteSqlInTxn("BEGIN TRANSACTION", &session)
                        .status());
  REOPTDB_ASSERT_OK(
      db.ExecuteSqlInTxn("UPDATE emp SET salary = 0.0", &session).status());
  REOPTDB_ASSERT_OK(
      db.ExecuteSqlInTxn("DELETE FROM emp WHERE emp_id < 10", &session)
          .status());
  REOPTDB_ASSERT_OK(db.ExecuteSqlInTxn("ROLLBACK", &session).status());
  EXPECT_EQ(session, 0u);

  EXPECT_EQ(CountRows(&db, "SELECT COUNT(*) AS c FROM emp"), 20);
  EXPECT_EQ(
      CountRows(&db, "SELECT COUNT(*) AS c FROM emp WHERE salary < 1.0"), 0);
  ASSERT_FALSE(db.txn_manager()->log().aborts.empty());
  EXPECT_EQ(db.txn_manager()->log().aborts.back().reason, "rollback");
}

TEST(TxnTest, SessionProtocolErrors) {
  Database db;
  LoadEmpDept(&db, 10, 2);

  uint64_t session = 0;
  EXPECT_FALSE(db.ExecuteSqlInTxn("COMMIT", &session).ok());
  EXPECT_FALSE(db.ExecuteSqlInTxn("ROLLBACK", &session).ok());
  REOPTDB_ASSERT_OK(db.ExecuteSqlInTxn("BEGIN", &session).status());
  EXPECT_FALSE(db.ExecuteSqlInTxn("BEGIN", &session).ok());  // nested
  REOPTDB_ASSERT_OK(db.ExecuteSqlInTxn("ROLLBACK", &session).status());
}

// A transaction's own statements see its pending writes: an UPDATE can hit
// a row the same transaction inserted, a DELETE can retract one.
TEST(TxnTest, ReadYourOwnWritesAcrossStatements) {
  Database db;
  LoadEmpDept(&db, 10, 2);

  uint64_t session = 0;
  REOPTDB_ASSERT_OK(db.ExecuteSqlInTxn("BEGIN", &session).status());
  REOPTDB_ASSERT_OK(
      db.ExecuteSqlInTxn(
            "INSERT INTO emp VALUES (300, 1, 10.0, 'a'), (301, 1, 20.0, 'b')",
            &session)
          .status());
  // UPDATE matches the pending insert (300) and nothing else.
  Result<QueryResult> upd = db.ExecuteSqlInTxn(
      "UPDATE emp SET salary = 42.0 WHERE emp_id = 300", &session);
  REOPTDB_ASSERT_OK(upd.status());
  EXPECT_NE(upd.value().message.find("updated 1"), std::string::npos);
  // DELETE retracts the other pending insert before it ever hits the heap.
  Result<QueryResult> del =
      db.ExecuteSqlInTxn("DELETE FROM emp WHERE emp_id = 301", &session);
  REOPTDB_ASSERT_OK(del.status());
  EXPECT_NE(del.value().message.find("deleted 1"), std::string::npos);
  REOPTDB_ASSERT_OK(db.ExecuteSqlInTxn("COMMIT", &session).status());

  EXPECT_EQ(
      CountRows(&db,
                "SELECT COUNT(*) AS c FROM emp WHERE emp_id = 300 AND "
                "salary > 41.0"),
      1);
  EXPECT_EQ(
      CountRows(&db, "SELECT COUNT(*) AS c FROM emp WHERE emp_id = 301"), 0);
}

// ---------------------------------------------------------------------------
// Locking: conflicts, deadlock victim abort, timeout.

Statement MustParse(const std::string& sql) {
  Result<Statement> s = ParseStatement(sql);
  EXPECT_TRUE(s.ok()) << sql << ": " << s.status().ToString();
  return std::move(s.value());
}

TEST(TxnTest, WriterBlocksWriterOnRowLock) {
  Database db;  // deadline_ms = 0: ExecuteDml returns kLockWait, no retry
  LoadEmpDept(&db, 20, 4);

  Result<uint64_t> t1 = db.BeginTxn();
  Result<uint64_t> t2 = db.BeginTxn();
  REOPTDB_ASSERT_OK(t1.status());
  REOPTDB_ASSERT_OK(t2.status());

  REOPTDB_ASSERT_OK(
      db.ExecuteDml(t1.value(),
                    MustParse("UPDATE emp SET salary = 1.0 WHERE emp_id = 3"))
          .status());
  Result<uint64_t> blocked = db.ExecuteDml(
      t2.value(), MustParse("UPDATE emp SET salary = 2.0 WHERE emp_id = 3"));
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kLockWait);
  ASSERT_FALSE(db.txn_manager()->log().lock_waits.empty());
  EXPECT_EQ(db.txn_manager()->log().lock_waits.back().holder_txn_id,
            t1.value());

  // Holder commits; the blocked statement now succeeds re-issued verbatim.
  REOPTDB_ASSERT_OK(db.CommitTxn(t1.value()));
  Result<uint64_t> retried = db.ExecuteDml(
      t2.value(), MustParse("UPDATE emp SET salary = 2.0 WHERE emp_id = 3"));
  REOPTDB_ASSERT_OK(retried.status());
  EXPECT_EQ(retried.value(), 1u);
  REOPTDB_ASSERT_OK(db.CommitTxn(t2.value()));
  EXPECT_EQ(
      CountRows(&db,
                "SELECT COUNT(*) AS c FROM emp WHERE emp_id = 3 AND "
                "salary > 1.5"),
      1);
}

TEST(TxnTest, DeadlockResolvedByYoungestVictimAbort) {
  Database db;
  LoadEmpDept(&db, 20, 4);

  uint64_t t1 = db.BeginTxn().value();
  uint64_t t2 = db.BeginTxn().value();

  REOPTDB_ASSERT_OK(
      db.ExecuteDml(t1, MustParse("UPDATE emp SET salary = 1.0 "
                                  "WHERE emp_id = 1"))
          .status());
  REOPTDB_ASSERT_OK(
      db.ExecuteDml(t2, MustParse("UPDATE emp SET salary = 2.0 "
                                  "WHERE emp_id = 2"))
          .status());

  // t1 -> waits for t2's row.
  Result<uint64_t> w1 = db.ExecuteDml(
      t1, MustParse("UPDATE emp SET salary = 3.0 WHERE emp_id = 2"));
  ASSERT_EQ(w1.status().code(), StatusCode::kLockWait);

  // t2 -> t1's row closes the cycle; t2 (youngest) is the victim.
  Result<uint64_t> w2 = db.ExecuteDml(
      t2, MustParse("UPDATE emp SET salary = 4.0 WHERE emp_id = 1"));
  ASSERT_FALSE(w2.ok());
  EXPECT_EQ(w2.status().code(), StatusCode::kCancelled);
  EXPECT_FALSE(db.txn_manager()->IsActive(t2));

  ASSERT_EQ(db.txn_manager()->log().deadlocks.size(), 1u);
  const DeadlockVictimRecord& v = db.txn_manager()->log().deadlocks[0];
  EXPECT_EQ(v.victim_txn_id, t2);
  EXPECT_EQ(v.requester_txn_id, t2);
  EXPECT_EQ(v.cycle_length, 2);
  ASSERT_FALSE(db.txn_manager()->log().aborts.empty());
  EXPECT_EQ(db.txn_manager()->log().aborts.back().reason, "deadlock");

  // Full cleanup: the victim's locks are gone, so t1's retry goes through
  // and its commit leaves exactly its own changes.
  Result<uint64_t> retried = db.ExecuteDml(
      t1, MustParse("UPDATE emp SET salary = 3.0 WHERE emp_id = 2"));
  REOPTDB_ASSERT_OK(retried.status());
  REOPTDB_ASSERT_OK(db.CommitTxn(t1));
  EXPECT_EQ(
      CountRows(&db,
                "SELECT COUNT(*) AS c FROM emp WHERE salary < 5.0"),
      2);  // emp 1 -> 1.0 and emp 2 -> 3.0; t2's writes vanished
  EXPECT_EQ(db.txn_manager()->active_count(), 0u);
}

TEST(TxnTest, LockWaitTimeoutCancelsCleanly) {
  DatabaseOptions opts;
  opts.reopt.deadline_ms = 25;  // ExecuteDml retries, 5ms quanta
  Database db(opts);
  LoadEmpDept(&db, 20, 4);

  uint64_t holder = db.BeginTxn().value();
  REOPTDB_ASSERT_OK(
      db.ExecuteDml(holder, MustParse("UPDATE emp SET salary = 1.0 "
                                      "WHERE emp_id = 5"))
          .status());

  uint64_t waiter = db.BeginTxn().value();
  Result<uint64_t> r = db.ExecuteDml(
      waiter, MustParse("UPDATE emp SET salary = 2.0 WHERE emp_id = 5"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_NE(r.status().message().find("timeout"), std::string::npos);
  EXPECT_FALSE(db.txn_manager()->IsActive(waiter));
  ASSERT_FALSE(db.txn_manager()->log().aborts.empty());
  EXPECT_EQ(db.txn_manager()->log().aborts.back().reason, "timeout");

  // The holder is unaffected and commits.
  REOPTDB_ASSERT_OK(db.CommitTxn(holder));
  EXPECT_EQ(
      CountRows(&db,
                "SELECT COUNT(*) AS c FROM emp WHERE emp_id = 5 AND "
                "salary < 1.5"),
      1);
}

// ---------------------------------------------------------------------------
// Crash atomicity at each fault point.

TEST(TxnTest, CrashAtCommitLosesUncommittedWrites) {
  Database db;
  LoadEmpDept(&db, 20, 4);
  REOPTDB_ASSERT_OK(db.faults()->Configure("txn.commit=crash:nth:1"));

  Result<QueryResult> r =
      db.ExecuteSql("INSERT INTO emp VALUES (400, 1, 7.0, 'ghost')");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCrashed);

  REOPTDB_ASSERT_OK(db.RecoverStorage());
  EXPECT_EQ(
      CountRows(&db, "SELECT COUNT(*) AS c FROM emp WHERE emp_id = 400"), 0);
  EXPECT_EQ(CountRows(&db, "SELECT COUNT(*) AS c FROM emp"), 20);
  EXPECT_EQ(db.txn_manager()->active_count(), 0u);

  // The system is fully usable afterwards.
  REOPTDB_ASSERT_OK(
      db.ExecuteSql("INSERT INTO emp VALUES (401, 1, 8.0, 'real')")
          .status());
  EXPECT_EQ(
      CountRows(&db, "SELECT COUNT(*) AS c FROM emp WHERE emp_id = 401"), 1);
}

TEST(TxnTest, CrashAtWalAppendAndFsyncAreAtomic) {
  for (const char* spec :
       {"wal.append=crash:nth:1", "wal.fsync=crash:nth:1"}) {
    Database db;
    LoadEmpDept(&db, 20, 4);
    REOPTDB_ASSERT_OK(db.faults()->Configure(spec));

    Result<QueryResult> r =
        db.ExecuteSql("DELETE FROM emp WHERE emp_id < 5");
    ASSERT_FALSE(r.ok()) << spec;
    EXPECT_EQ(r.status().code(), StatusCode::kCrashed) << spec;

    REOPTDB_ASSERT_OK(db.RecoverStorage());
    EXPECT_EQ(CountRows(&db, "SELECT COUNT(*) AS c FROM emp"), 20) << spec;
  }
}

TEST(TxnTest, LockAcquireFaultFailsStatementNotEngine) {
  Database db;
  LoadEmpDept(&db, 20, 4);
  REOPTDB_ASSERT_OK(db.faults()->Configure("lock.acquire=nth:1"));

  Result<QueryResult> r =
      db.ExecuteSql("UPDATE emp SET salary = 0.0 WHERE emp_id = 1");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(CountRows(&db,
                      "SELECT COUNT(*) AS c FROM emp WHERE salary < 1.0"),
            0);
  EXPECT_EQ(db.txn_manager()->active_count(), 0u);

  // Unarmed retry succeeds.
  REOPTDB_ASSERT_OK(
      db.ExecuteSql("UPDATE emp SET salary = 0.0 WHERE emp_id = 1")
          .status());
  EXPECT_EQ(CountRows(&db,
                      "SELECT COUNT(*) AS c FROM emp WHERE salary < 1.0"),
            1);
}

// ---------------------------------------------------------------------------
// Durability and recovery.

TEST(TxnTest, CommittedWritesSurviveCrashAndReplay) {
  Database db;
  LoadEmpDept(&db, 20, 4);

  // Transaction 1 commits durably, with an idempotency tag.
  uint64_t t1 = db.BeginTxn().value();
  REOPTDB_ASSERT_OK(
      db.ExecuteDml(t1, MustParse("INSERT INTO emp VALUES "
                                  "(500, 2, 50.0, 'kept')"))
          .status());
  REOPTDB_ASSERT_OK(db.CommitTxn(t1, "txn-one"));
  EXPECT_TRUE(db.txn_manager()->HasCommitted("txn-one"));

  // Transaction 2 crashes mid-commit (its WAL append dies).
  REOPTDB_ASSERT_OK(db.faults()->Configure("wal.append=crash:nth:1"));
  uint64_t t2 = db.BeginTxn().value();
  REOPTDB_ASSERT_OK(
      db.ExecuteDml(t2, MustParse("INSERT INTO emp VALUES "
                                  "(501, 2, 51.0, 'lost')"))
          .status());
  Status st = db.CommitTxn(t2, "txn-two");
  EXPECT_EQ(st.code(), StatusCode::kCrashed);

  REOPTDB_ASSERT_OK(db.RecoverStorage());
  EXPECT_EQ(
      CountRows(&db, "SELECT COUNT(*) AS c FROM emp WHERE emp_id = 500"), 1);
  EXPECT_EQ(
      CountRows(&db, "SELECT COUNT(*) AS c FROM emp WHERE emp_id = 501"), 0);
  EXPECT_TRUE(db.txn_manager()->HasCommitted("txn-one"));
  EXPECT_FALSE(db.txn_manager()->HasCommitted("txn-two"));
  ASSERT_FALSE(db.txn_manager()->log().replays.empty());
  EXPECT_GE(db.txn_manager()->log().replays.back().committed_txns, 1u);

  // The lost transaction re-submits (the idempotency check said it never
  // committed) and lands.
  uint64_t t3 = db.BeginTxn().value();
  REOPTDB_ASSERT_OK(
      db.ExecuteDml(t3, MustParse("INSERT INTO emp VALUES "
                                  "(501, 2, 51.0, 'lost')"))
          .status());
  REOPTDB_ASSERT_OK(db.CommitTxn(t3, "txn-two"));
  EXPECT_TRUE(db.txn_manager()->HasCommitted("txn-two"));
  EXPECT_EQ(
      CountRows(&db, "SELECT COUNT(*) AS c FROM emp WHERE emp_id = 501"), 1);
}

TEST(TxnTest, RecoveryIsIdempotentAcrossRepeatedCrashes) {
  Database db;
  LoadEmpDept(&db, 20, 4);

  REOPTDB_ASSERT_OK(
      db.ExecuteSql("UPDATE emp SET salary = 77.0 WHERE dept_id = 1")
          .status());
  REOPTDB_ASSERT_OK(
      db.ExecuteSql("DELETE FROM emp WHERE emp_id = 19").status());
  std::vector<std::string> expected =
      Canon(db.Execute("SELECT emp_id, salary FROM emp").value().rows);

  // Crash once mid-statement, then recover repeatedly — including a
  // re-entrant Recover right after the first (crash-during-replay is the
  // same code path: Recover is restartable from the top).
  REOPTDB_ASSERT_OK(db.faults()->Configure("wal.fsync=crash:nth:1"));
  Result<QueryResult> r =
      db.ExecuteSql("DELETE FROM emp WHERE emp_id = 1");
  ASSERT_EQ(r.status().code(), StatusCode::kCrashed);
  REOPTDB_ASSERT_OK(db.RecoverStorage());
  REOPTDB_ASSERT_OK(db.RecoverStorage());
  REOPTDB_ASSERT_OK(db.RecoverStorage());

  EXPECT_EQ(Canon(db.Execute("SELECT emp_id, salary FROM emp").value().rows),
            expected);
}

TEST(TxnTest, CheckpointTruncatesWalAndSurvivesCrash) {
  Database db;
  LoadEmpDept(&db, 20, 4);

  REOPTDB_ASSERT_OK(
      db.ExecuteSql("INSERT INTO emp VALUES (600, 3, 1.0, 'pre')").status());
  REOPTDB_ASSERT_OK(db.Checkpoint());
  EXPECT_EQ(db.txn_manager()->wal()->flushed_record_count(), 0u);

  REOPTDB_ASSERT_OK(
      db.ExecuteSql("INSERT INTO emp VALUES (601, 3, 2.0, 'post')")
          .status());
  REOPTDB_ASSERT_OK(db.faults()->Configure("txn.commit=crash:nth:1"));
  ASSERT_EQ(db.ExecuteSql("DELETE FROM emp WHERE emp_id = 600")
                .status()
                .code(),
            StatusCode::kCrashed);

  REOPTDB_ASSERT_OK(db.RecoverStorage());
  // Pre-checkpoint row: inside the restore point. Post-checkpoint commit:
  // replayed from the WAL. Crashed delete: gone.
  EXPECT_EQ(
      CountRows(&db, "SELECT COUNT(*) AS c FROM emp WHERE emp_id >= 600"),
      2);
}

TEST(TxnTest, GroupCommitSharesOneFsync) {
  Database db;
  LoadEmpDept(&db, 20, 4);
  TransactionManager* tm = db.txn_manager();

  uint64_t t1 = db.BeginTxn().value();
  uint64_t t2 = db.BeginTxn().value();
  REOPTDB_ASSERT_OK(
      db.ExecuteDml(t1, MustParse("INSERT INTO emp VALUES "
                                  "(700, 1, 1.0, 'g1')"))
          .status());
  REOPTDB_ASSERT_OK(
      db.ExecuteDml(t2, MustParse("INSERT INTO emp VALUES "
                                  "(701, 1, 2.0, 'g2')"))
          .status());

  uint64_t fsyncs_before = tm->wal()->fsync_count();
  REOPTDB_ASSERT_OK(tm->CommitGroup({{t1, "g1"}, {t2, "g2"}}));
  EXPECT_EQ(tm->wal()->fsync_count(), fsyncs_before + 1);
  EXPECT_GT(tm->wal()->piggybacked_records(), 0u);
  EXPECT_TRUE(tm->HasCommitted("g1"));
  EXPECT_TRUE(tm->HasCommitted("g2"));
  EXPECT_EQ(
      CountRows(&db, "SELECT COUNT(*) AS c FROM emp WHERE emp_id >= 700"),
      2);
}

// ---------------------------------------------------------------------------
// Concurrent DML under the WorkloadManager: snapshot isolation for readers,
// group commit for writers, churn-driven re-optimization.

TEST(TxnTest, WorkloadMixesDmlAndSelectsDeterministically) {
  DatabaseOptions dopts;
  Database db(dopts);
  LoadEmpDept(&db, 100, 5);
  REOPTDB_ASSERT_OK(db.Analyze("emp"));
  REOPTDB_ASSERT_OK(db.Analyze("dept"));

  const std::string select =
      "SELECT dept_name, COUNT(*) AS cnt FROM emp, dept "
      "WHERE emp.dept_id = dept.dept_id GROUP BY dept_name";
  std::vector<std::string> solo = Canon(db.Execute(select).value().rows);

  WorkloadOptions wopts;
  wopts.max_active = 4;
  WorkloadManager wm(&db, wopts);
  uint64_t qid = wm.Submit(select);
  uint64_t ins = wm.Submit(
      "INSERT INTO emp VALUES (900, 0, 1.0, 'w1'), (901, 1, 2.0, 'w2')");
  uint64_t upd = wm.Submit("UPDATE emp SET salary = 3.0 WHERE emp_id = 901");

  Result<std::vector<WorkloadQueryResult>> rr = wm.Run();
  REOPTDB_ASSERT_OK(rr.status());
  for (const WorkloadQueryResult& q : rr.value()) {
    REOPTDB_ASSERT_OK(q.status);
    if (q.query_id == qid) {
      // Snapshot-bounded: the concurrent reader returns exactly its solo
      // answer even though writers landed mid-flight.
      EXPECT_EQ(Canon(q.result.rows), solo);
    }
    if (q.query_id == ins)
      EXPECT_NE(q.result.message.find("inserted 2"), std::string::npos);
    if (q.query_id == upd)
      EXPECT_NE(q.result.message.find("updated"), std::string::npos);
  }
  EXPECT_EQ(
      CountRows(&db, "SELECT COUNT(*) AS c FROM emp WHERE emp_id >= 900"),
      2);
  EXPECT_EQ(db.txn_manager()->active_count(), 0u);
}

// The directed churn test: a query concurrent with bulk INSERT re-optimizes
// because Eq.(2) fires on stats churn — and would not have fired without
// the concurrent writes — while its answer stays bit-identical to a solo
// run over the same snapshot.
//
// The query must be a deep join: Eq.(2) only evaluates at stage boundaries
// whose frontier covers a strict subset of the relations, and in the
// round-robin workload the first such boundary runs before any writer's
// group commit lands. TPC-D Q5 (6 relations) re-checks the gate over many
// rounds; the writers bulk-insert into `supplier` (tiny at this scale), so
// a modest batch is >100% relative churn.
TEST(TxnTest, ConcurrentBulkInsertFlipsEq2ViaStatsChurn) {
  auto make_db = []() {
    DatabaseOptions dopts;
    dopts.buffer_pool_pages = 128;
    dopts.query_mem_pages = 48;
    auto db = std::make_unique<Database>(dopts);
    tpcd::TpcdOptions gen;
    gen.scale_factor = 0.003;  // fresh, accurate catalog stats
    EXPECT_TRUE(tpcd::Load(db.get(), gen).ok());
    return db;
  };
  ReoptOptions reopt;
  reopt.mode = ReoptMode::kFull;
  reopt.theta2 = 0.3;            // closed on collector feedback alone...
  reopt.stats_churn_theta = 0.1; // ...but open past 10% churn

  // Control: no concurrent DML. The gate never fires.
  std::unique_ptr<Database> solo_db = make_db();
  Result<QueryResult> solo = solo_db->ExecuteWith(tpcd::Q5Sql(), reopt);
  REOPTDB_ASSERT_OK(solo.status());
  EXPECT_FALSE(solo.value().report.trace.eq2_checks.empty());
  for (const Eq2Check& c : solo.value().report.trace.eq2_checks) {
    EXPECT_FALSE(c.fired);
    EXPECT_FALSE(c.stats_churn);
  }

  // Concurrent run: bulk INSERTs into supplier land mid-query.
  std::unique_ptr<Database> db = make_db();
  WorkloadOptions wopts;
  wopts.max_active = 4;
  wopts.reopt = reopt;
  WorkloadManager wm(db.get(), wopts);
  uint64_t qid = wm.Submit(tpcd::Q5Sql());
  for (int batch = 0; batch < 2; ++batch) {
    std::string sql = "INSERT INTO supplier VALUES ";
    for (int i = 0; i < 20; ++i) {
      int id = 100000 + batch * 20 + i;
      if (i) sql += ", ";
      sql += "(" + std::to_string(id) + ", " + std::to_string(i % 25) +
             ", 10.0)";
    }
    wm.Submit(sql);
  }

  Result<std::vector<WorkloadQueryResult>> rr = wm.Run();
  REOPTDB_ASSERT_OK(rr.status());
  bool churn_fired = false;
  for (const WorkloadQueryResult& q : rr.value()) {
    REOPTDB_ASSERT_OK(q.status);
    if (q.query_id != qid) continue;
    for (const Eq2Check& c : q.result.report.trace.eq2_checks)
      if (c.fired && c.stats_churn) churn_fired = true;
    // Snapshot-bounded scans: the answer ignores the concurrent inserts
    // and matches the solo run bit for bit — even across the plan
    // switches the churn provoked.
    EXPECT_EQ(Canon(q.result.rows), Canon(solo.value().rows));
  }
  EXPECT_TRUE(churn_fired)
      << "Eq.(2) should fire on stats churn from concurrent bulk INSERT";
  EXPECT_EQ(
      db->Execute("SELECT COUNT(*) AS c FROM supplier").value().rows[0]
          .at(0)
          .AsInt(),
      70);  // 30 generated + 40 inserted
}

}  // namespace
}  // namespace reoptdb
