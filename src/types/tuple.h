// Tuple: a row of Values, with page-friendly (de)serialization.

#ifndef REOPTDB_TYPES_TUPLE_H_
#define REOPTDB_TYPES_TUPLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "types/schema.h"
#include "types/value.h"

namespace reoptdb {

/// \brief A row of values.
///
/// Tuples are positional; the associated Schema gives names and types.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const Value& at(size_t i) const { return values_[i]; }
  Value& at(size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }
  void Clear() { values_.clear(); }

  /// Serialized byte size (2-byte field count + per-value bytes).
  size_t SerializedSize() const;

  /// Appends the wire form to `out`.
  void SerializeTo(std::string* out) const;

  /// Parses one tuple from `data + *offset`, advancing `*offset`.
  static Result<Tuple> Deserialize(const char* data, size_t size, size_t* offset);

  /// Same, but parses into `*out`, reusing its value storage. Scan loops
  /// that recycle the same tuple (or batch slot) avoid a per-row
  /// allocation this way.
  static Status DeserializeInto(const char* data, size_t size, size_t* offset,
                                Tuple* out);

  /// Concatenates two tuples (join output).
  static Tuple Concat(const Tuple& left, const Tuple& right);

  /// Combined hash over the given column indexes.
  uint64_t HashOn(const std::vector<size_t>& cols) const;

  /// True if this and `other` agree on the given column indexes.
  bool EqualsOn(const Tuple& other, const std::vector<size_t>& mine,
                const std::vector<size_t>& theirs) const;

  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

}  // namespace reoptdb

#endif  // REOPTDB_TYPES_TUPLE_H_
