file(REMOVE_RECURSE
  "CMakeFiles/binder_test.dir/binder_test.cc.o"
  "CMakeFiles/binder_test.dir/binder_test.cc.o.d"
  "binder_test"
  "binder_test.pdb"
  "binder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
