# Empty dependencies file for bench_fig12.
# This may be replaced when dependencies are built.
