// Skew and straggler detection for sharded execution (DESIGN.md §15).
//
// Pure decision logic, separated from the executor so tests can drive it
// with synthetic observations. The detector answers three questions at a
// stage boundary:
//   - Did the repartitioned build side land on one node far in excess of
//     its estimated uniform share? (partition skew)
//   - Did one node's charged simulated time exceed a configurable multiple
//     of its peers' percentile? (straggler)
//   - How should routing weights translate into a deterministic slot table
//     for subsequent hash-repartitioning?

#ifndef REOPTDB_SHARD_SKEW_DETECTOR_H_
#define REOPTDB_SHARD_SKEW_DETECTOR_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace reoptdb {

/// Detection thresholds (defaults follow ISSUE/DESIGN §15: a build
/// partition 10x its estimated share is skewed, a node 2x slower than the
/// median of its peers is a straggler).
struct SkewThresholds {
  /// A node's received build rows must be at least this multiple of the
  /// estimated uniform share to count as skew.
  double skew_factor = 10.0;
  /// ...and at least this many rows in absolute terms (tiny inputs are
  /// never "skewed" — redistribution overhead would dwarf any win).
  uint64_t min_skew_rows = 64;
  /// A node is a straggler when its charged time exceeds this multiple of
  /// the peer percentile below.
  double straggler_ratio = 2.0;
  /// Percentile of the *other* alive nodes' charged times used as the
  /// straggler baseline (0.5 = median).
  double straggler_percentile = 0.5;
};

/// \brief Stage-boundary skew / straggler decisions.
class SkewDetector {
 public:
  explicit SkewDetector(SkewThresholds t) : t_(t) {}

  const SkewThresholds& thresholds() const { return t_; }

  /// One node's build partition far exceeds its estimated share.
  struct BuildSkew {
    int node = -1;           ///< offending node id
    uint64_t node_rows = 0;  ///< rows that landed on it
    double est_share = 0;    ///< estimated uniform per-node share (rows)
  };

  /// Checks per-node received build rows against the estimated total.
  /// `node_ids[i]` received `recv_rows[i]`. Fires when the largest
  /// partition is >= skew_factor x the uniform share of `est_total_rows`,
  /// >= min_skew_rows, and >= 2x the mean of what actually arrived (so a
  /// uniformly underestimated build does not read as skew).
  std::optional<BuildSkew> CheckBuildSkew(
      const std::vector<int>& node_ids,
      const std::vector<uint64_t>& recv_rows, double est_total_rows) const;

  /// One node ran far behind its peers.
  struct Straggler {
    int node = -1;
    double node_ms = 0;        ///< its charged simulated time
    double percentile_ms = 0;  ///< the peer baseline it was compared to
    double new_weight = 0;     ///< suggested routing weight (<= 1)
  };

  /// Flags every node whose charged time exceeds straggler_ratio x the
  /// straggler_percentile of the other nodes. The suggested weight is
  /// percentile/node_ms clamped to [0.1, 1], so future repartitioning
  /// sends a slow node proportionally less data.
  std::vector<Straggler> CheckStragglers(
      const std::vector<int>& node_ids,
      const std::vector<double>& node_ms) const;

  /// Deterministic weighted routing table: kSlotsPerNode x n slots
  /// assigned to nodes proportionally to `weights` by largest remainder
  /// (ties broken by node id). Routing a row = table[hash % size]. Every
  /// node with positive weight gets at least one slot.
  static constexpr int kSlotsPerNode = 128;
  static std::vector<int> BuildSlotTable(const std::vector<int>& node_ids,
                                         const std::vector<double>& weights);

  /// Linear-interpolated percentile of `v` (p in [0,1]); 0 when empty.
  static double Percentile(std::vector<double> v, double p);

 private:
  SkewThresholds t_;
};

}  // namespace reoptdb

#endif  // REOPTDB_SHARD_SKEW_DETECTOR_H_
