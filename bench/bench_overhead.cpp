// Overhead ablation: statistics collection alone.
//
// Validates the paper's guarantee that the SCIA keeps the collection
// overhead within mu of the estimated execution time ("we set mu to 0.05
// ensuring that none of the queries ever performed 5% worse than
// normal"). Collectors run, but theta2 is set so high that no
// re-optimization decision ever fires; the remaining difference vs normal
// execution is pure collection overhead.

#include "bench_common.h"

using namespace reoptdb;
using namespace reoptdb::bench;

int main() {
  BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader("Statistics-collection overhead (must stay within ~mu)", cfg);
  auto db = MakeTpcdDatabase(cfg);

  std::printf("| query | normal ms | collectors-only ms | overhead |"
              " collectors |\n");
  std::printf("|---|---|---|---|---|\n");
  bool ok = true;
  for (const tpcd::TpcdQuery& q : tpcd::AllQueries()) {
    QueryResult normal = MustRun(db.get(), q.sql, Mode(ReoptMode::kOff));
    // Plan-only mode with an unreachable theta2: collectors run, but no
    // re-optimization or memory re-allocation ever fires — the remaining
    // difference is pure collection overhead.
    ReoptOptions collectors_only = Mode(ReoptMode::kPlanOnly);
    collectors_only.theta2 = 1e12;  // never re-optimize
    QueryResult with = MustRun(db.get(), q.sql, collectors_only);
    double overhead =
        with.report.sim_time_ms / normal.report.sim_time_ms - 1.0;
    // Memory re-allocation may still help, so overhead can be negative.
    if (overhead > 0.06) ok = false;
    std::printf("| %s | %.1f | %.1f | %+.2f%% | %d |\n", q.name,
                normal.report.sim_time_ms, with.report.sim_time_ms,
                overhead * 100, with.report.collectors_inserted);
  }
  std::printf("\n%s\n", ok ? "PASS: every query stayed within the budget."
                           : "WARNING: a query exceeded the mu budget.");
  return ok ? 0 : 1;
}
