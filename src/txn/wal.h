// Write-ahead log: append-only redo records on simulated disk pages.
//
// This grows PR 4's checksummed QueryJournal idea into a true WAL. Redo
// records (insert / delete / commit) are buffered in memory as statements
// execute and reach the disk only at Fsync(), which a committing
// transaction calls after appending its commit record. One fsync covers
// every record buffered at that moment — records of other, still-active
// transactions ride along (group commit), so their own later fsyncs write
// less. A record is durable iff an fsync has flushed it; a simulated crash
// discards the buffered tail (DiscardUnflushed), exactly like losing the
// OS page cache.
//
// Redo-only + no-steal: nothing is ever written back to a heap before
// commit, so recovery needs no undo — it restores the last checkpoint and
// re-applies committed transactions in commit order (see
// TransactionManager::Recover).
//
// Every record carries a FNV-1a checksum verified on read; a mismatch
// surfaces as kIoError, the same contract as torn-page detection in the
// DiskManager.

#ifndef REOPTDB_TXN_WAL_H_
#define REOPTDB_TXN_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace reoptdb {

/// \brief Append-only redo log over slotted disk pages.
class WriteAheadLog {
 public:
  struct Record {
    enum class Kind : uint8_t {
      kInsert = 1,  ///< payload = serialized Tuple
      kDelete = 2,  ///< payload = u64 rid key ((page_ordinal<<32)|slot)
      kCommit = 3,  ///< payload = u64 commit epoch; client_tag set
    };
    uint64_t lsn = 0;
    uint64_t txn_id = 0;
    Kind kind = Kind::kInsert;
    std::string table;       ///< target table (empty on kCommit)
    std::string payload;
    std::string client_tag;  ///< idempotency tag (kCommit only)
  };

  WriteAheadLog(BufferPool* pool, FaultInjector* faults)
      : pool_(pool), faults_(faults) {}

  /// Buffers a record (volatile until Fsync), assigning its LSN.
  /// Checks the wal.append fault point.
  Result<uint64_t> Append(Record rec);

  /// Writes every buffered record to fresh log pages through the
  /// DiskManager. Records are packed in append order, so the most recent
  /// commit record lands on the last page written: if the write sequence
  /// fails partway, the commit record is the first thing missing and the
  /// transaction correctly counts as unacknowledged. `committing_txn_id`
  /// only feeds the group-commit statistics. Checks wal.fsync.
  Status Fsync(uint64_t committing_txn_id);

  /// Crash semantics: the buffered (never-fsynced) tail is lost.
  void DiscardUnflushed() { buffered_.clear(); }

  /// Reads and verifies every flushed record, in LSN order. Charges one
  /// page read per log page (recovery replay time is real simulated time).
  Result<std::vector<Record>> ReadAll() const;

  /// Frees all log pages (checkpoint truncation). Resumable: pages are
  /// freed from the end and popped as they go, so a failed free (or crash)
  /// leaves a shorter log that a retry finishes truncating.
  Status Truncate();

  size_t flushed_page_count() const { return pages_.size(); }
  size_t buffered_record_count() const { return buffered_.size(); }
  uint64_t flushed_record_count() const { return flushed_records_; }
  uint64_t next_lsn() const { return next_lsn_; }
  uint64_t fsync_count() const { return fsyncs_; }
  /// Records flushed by some other transaction's fsync (group commit).
  uint64_t piggybacked_records() const { return piggybacked_; }

  /// One-line state plus the buffered tail (the shell's \txn WAL view).
  std::string Describe() const;

  /// u64 payload helpers (delete rid keys, commit epochs).
  static std::string EncodeU64(uint64_t v);
  static Result<uint64_t> DecodeU64(const std::string& payload);

 private:
  BufferPool* pool_;
  FaultInjector* faults_;
  std::vector<PageId> pages_;     ///< flushed log pages, oldest first
  std::vector<Record> buffered_;  ///< appended but not yet fsynced
  uint64_t next_lsn_ = 1;
  uint64_t flushed_records_ = 0;
  uint64_t fsyncs_ = 0;
  uint64_t piggybacked_ = 0;
};

}  // namespace reoptdb

#endif  // REOPTDB_TXN_WAL_H_
