// Durable query journal for crash-consistent mid-query recovery.
//
// Kabra & DeWitt's plan-modification strategy materializes the in-flight
// operator's output into a temp table and re-optimizes only the remainder
// query — which makes every committed re-optimization stage a natural
// restart point. The journal makes those points durable: at the point of no
// return the controller appends one self-contained, checksummed record
// (remainder SQL, plan fingerprint, memory budgets, and a full snapshot of
// every temp table the remainder reads), "fsync'd" to the simulated disk.
// After a crash the RecoveryManager loads the journal, validates the temp
// snapshots against their checksums and row counts, rebinds them in the
// catalog, and resumes the remainder instead of starting over. A record
// that fails validation is never trusted: recovery falls back to a clean
// from-scratch re-run — saved work is sacrificed, the answer never is.
//
// The journal lives in host memory like the rest of the simulated durable
// state (see storage/disk_manager.h): what makes it "durable" is that
// nothing on the query's crash-unwind path clears it.

#ifndef REOPTDB_REOPT_QUERY_JOURNAL_H_
#define REOPTDB_REOPT_QUERY_JOURNAL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/fault.h"
#include "common/status.h"
#include "storage/page.h"
#include "types/schema.h"

namespace reoptdb {

/// Snapshot of one materialized temp table referenced by a journaled
/// remainder query: everything recovery needs to rebind and validate it.
/// Histograms are deliberately not journaled — losing them costs the
/// resumed optimizer some estimate accuracy, never correctness.
struct TempSnapshot {
  std::string name;
  Schema schema;
  std::vector<PageId> page_ids;   ///< flushed heap pages, in append order
  uint64_t tuple_count = 0;
  uint64_t total_tuple_bytes = 0;
  uint64_t content_checksum = 0;  ///< HeapFile chained payload FNV
  TableStats stats;               ///< exact post-materialization stats
};

/// One committed re-optimization stage (written only at the controller's
/// point of no return). Records are self-contained: the latest record for
/// a query is sufficient to resume it, so AppendStage compacts earlier
/// records for the same root query.
struct JournalStage {
  std::string root_sql;       ///< canonical SQL of the original user query
  int stage = 0;              ///< 1-based switch ordinal within its execution
  std::string remainder_sql;  ///< the adopted remainder (QuerySpec::ToSql)
  uint64_t plan_fingerprint = 0;  ///< FNV of the adopted plan's ToString
  double work_done_ms = 0;    ///< simulated work already paid at commit
  /// Cluster membership epoch at commit time (0 = single-node, no cluster).
  /// A resume under a different epoch means nodes died or slices moved
  /// since the stage committed; the sharded executor then revalidates the
  /// temps instead of trusting them blindly.
  uint64_t membership_epoch = 0;
  std::vector<std::pair<int, double>> budgets;  ///< node id -> mem pages
  std::vector<TempSnapshot> temps;  ///< every temp table the remainder reads
};

/// FNV-1a fingerprint of a rendered plan (PlanNode::ToString). Recovery
/// compares the resumed plan's fingerprint against the journaled one for
/// observability (a mismatch means the remainder was re-derived, which is
/// legal — overrides from observed base statistics are not journaled).
uint64_t FingerprintPlanText(const std::string& plan_text);

/// \brief Append-only, checksummed journal of committed re-optimization
/// stages. One instance lives on the Database and survives query unwind.
class QueryJournal {
 public:
  /// Serializes `stage` and appends it, then compacts older records with
  /// the same root_sql (the new record supersedes them). The
  /// `journal.append` fault point is checked first, modeling a crash or
  /// write error during the journal fsync: on failure nothing is appended
  /// and prior records remain intact.
  Status AppendStage(const JournalStage& stage, FaultInjector* faults);

  /// Parses every record, verifying checksums. Any corrupt or unparseable
  /// record fails the whole load (recovery then falls back to a clean
  /// re-run). The `recovery.load` fault point is checked first.
  Result<std::vector<JournalStage>> Load(FaultInjector* faults) const;

  /// Removes every record for `root_sql` — called when the query completes
  /// (or fails in-process without a crash); there is nothing left to
  /// recover.
  void MarkComplete(const std::string& root_sql);

  void Clear() { records_.clear(); }
  size_t record_count() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// Flips bytes of a stored record's payload without updating its
  /// checksum, modeling on-media journal corruption. Test-only.
  void CorruptRecordForTesting(size_t index);

 private:
  struct Record {
    std::string payload;   ///< serialized JournalStage (JSON)
    uint64_t checksum = 0; ///< FNV-1a over payload
    std::string root_sql;  ///< duplicated for compaction / MarkComplete
  };
  std::vector<Record> records_;
};

}  // namespace reoptdb

#endif  // REOPTDB_REOPT_QUERY_JOURNAL_H_
