#include "exec/expression.h"

namespace reoptdb {

bool CompiledPred::Eval(const Tuple& t) const {
  const Value& lhs = t.at(col);
  const Value& rhs = rhs_is_column ? t.at(rhs_col) : literal;
  int c = lhs.Compare(rhs);
  switch (op) {
    case CmpOp::kEq:
      return c == 0;
    case CmpOp::kNe:
      return c != 0;
    case CmpOp::kLt:
      return c < 0;
    case CmpOp::kLe:
      return c <= 0;
    case CmpOp::kGt:
      return c > 0;
    case CmpOp::kGe:
      return c >= 0;
  }
  return false;
}

Result<CompiledPred> CompilePred(const ScalarPred& pred, const Schema& schema) {
  CompiledPred out;
  ASSIGN_OR_RETURN(out.col, schema.IndexOf(pred.column));
  out.op = pred.op;
  out.rhs_is_column = pred.rhs_is_column;
  if (pred.rhs_is_column) {
    ASSIGN_OR_RETURN(out.rhs_col, schema.IndexOf(pred.rhs_column));
  } else {
    out.literal = pred.literal;
  }
  return out;
}

Result<std::vector<CompiledPred>> CompilePreds(
    const std::vector<ScalarPred>& preds, const Schema& schema) {
  std::vector<CompiledPred> out;
  out.reserve(preds.size());
  for (const ScalarPred& p : preds) {
    ASSIGN_OR_RETURN(CompiledPred cp, CompilePred(p, schema));
    out.push_back(std::move(cp));
  }
  return out;
}

bool EvalAll(const std::vector<CompiledPred>& preds, const Tuple& t) {
  for (const CompiledPred& p : preds) {
    if (!p.Eval(t)) return false;
  }
  return true;
}

}  // namespace reoptdb
