#include "optimizer/optimizer.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "common/logging.h"
#include "optimizer/plan_cache.h"  // SchemaFingerprint
#include "storage/page.h"

namespace reoptdb {

namespace {

/// Mutable planning state for one Plan() / RepairPlan() call.
struct Planner {
  const Catalog* catalog;
  const CostModel* cost;
  const OptimizerOptions* opts;
  const QuerySpec* spec;
  Estimator est;
  uint64_t enumerated = 0;
  std::map<uint32_t, MemoEntry> dp;
  /// Pre-filter base-rel stats per relation, retained into the result memo.
  std::map<int, DerivedRel> leaf_raw;
  /// Repair mode: masks whose entries were moved in verbatim from a
  /// retained memo; PlanJoins skips them entirely.
  std::set<uint32_t> preserved;
  /// Repair mode: candidates that cannot beat the incumbent are costed but
  /// their plan nodes are never materialized. The keep decision depends
  /// only on cost, so the surviving entries are identical to eager mode;
  /// skipping the node assembly and subtree clones of losing candidates is
  /// where most of the incremental-repair wall-clock win comes from.
  bool lazy = false;

  /// Deferred-build state for lazy join enumeration. While `probing`,
  /// OfferCandidate only records the cheapest candidate seen for the mask
  /// (first-wins on ties, same as the dp insert rule); PlanJoins then
  /// re-runs the winning split once with `building_winner` set so exactly
  /// one candidate per mask is materialized. Eager enumeration keeps ~2.3
  /// builds per mask (every running-minimum improvement); this brings the
  /// repair path to exactly 1.
  struct PendingWin {
    bool valid = false;
    double cost = 0;
    uint32_t left_mask = 0;
    int r = -1;
    int kind = -1;  ///< candidate ordinal within TryJoin
    int aux = 0;    ///< index-NL: position in the split's pred vector
  };
  PendingWin pending;
  bool probing = false;          ///< lazy PlanJoins: cost-only sweep
  bool building_winner = false;  ///< lazy Materialize: single rebuild pass
  uint32_t cur_left = 0;         ///< split TryJoin is currently costing
  int cur_r = -1;

  /// Lazy mode: how to rebuild a decision-only entry's plan node. Repaired
  /// masks carry {cost, stats} immediately (upper subsets need both for
  /// costing and estimation) but the node itself — assembly plus subtree
  /// clones, the expensive part — is materialized only along the final
  /// plan's spine (see Materialize).
  struct RebuildInfo {
    uint32_t left_mask = 0;
    int r = -1;
    int kind = -1;
    int aux = 0;
  };
  std::map<uint32_t, RebuildInfo> deferred;

  std::vector<FeedbackApplied> feedback_applied;

  Planner(const Catalog* c, const CostModel* cm, const OptimizerOptions* o,
          const QuerySpec* s, const BaseRelOverrides* overrides,
          const CardinalityFeedbackStore* feedback)
      : catalog(c),
        cost(cm),
        opts(o),
        spec(s),
        est(c, s, overrides, o->histogram_join_estimation, feedback,
            &feedback_applied) {}

  double MissProb(double table_pages) const {
    return std::clamp(table_pages / std::max(1.0, opts->pool_pages_hint), 0.02,
                      1.0);
  }

  bool WouldKeep(uint32_t mask, double total_cost) const {
    auto it = dp.find(mask);
    return it == dp.end() || it->second.cost > total_cost;
  }

  /// Considers a candidate for `mask` at `total_cost`, keeping it if
  /// cheapest (first-wins on ties, as always). `build` materializes the
  /// {plan node, output stats} pair; it runs unconditionally in eager mode
  /// (the historical enumeration, byte by byte), and in lazy mode only for
  /// the one recorded winner per mask (deferred-build, see PendingWin).
  /// `kind`/`aux` identify the candidate within its TryJoin call so the
  /// rebuild pass can find it again.
  template <typename BuildFn>
  void OfferCandidate(uint32_t mask, double total_cost, BuildFn&& build,
                      int kind = -1, int aux = 0) {
    if (building_winner) {
      // Rebuild pass: materialize the recorded winner, skip everything else.
      // Costs recompute bit-identically (same inputs, same operations).
      if (kind != pending.kind || aux != pending.aux) return;
      std::pair<std::unique_ptr<PlanNode>, DerivedRel> cand = build();
      MemoEntry e;
      e.plan = std::move(cand.first);
      e.stats = std::move(cand.second);
      e.cost = total_cost;
      dp[mask] = std::move(e);
      return;
    }
    ++enumerated;
    if (probing) {
      // Strict < keeps the FIRST candidate achieving the minimum — the same
      // survivor the eager insert rule ("keep existing on ties") produces.
      if (!pending.valid || total_cost < pending.cost) {
        pending.valid = true;
        pending.cost = total_cost;
        pending.left_mask = cur_left;
        pending.r = cur_r;
        pending.kind = kind;
        pending.aux = aux;
      }
      return;
    }
    if (lazy && !WouldKeep(mask, total_cost)) return;
    std::pair<std::unique_ptr<PlanNode>, DerivedRel> cand = build();
    if (!WouldKeep(mask, total_cost)) return;
    MemoEntry e;
    e.plan = std::move(cand.first);
    e.stats = std::move(cand.second);
    e.cost = total_cost;
    dp[mask] = std::move(e);
  }

  /// Join predicates connecting the left subset with relation r.
  std::vector<const JoinPred*> SplitPreds(uint32_t left_mask, int r) const {
    std::vector<const JoinPred*> preds;
    for (const JoinPred& j : spec->joins) {
      bool lr = (left_mask >> j.left_rel & 1) && j.right_rel == r;
      bool rl = (left_mask >> j.right_rel & 1) && j.left_rel == r;
      if (lr || rl) preds.push_back(&j);
    }
    return preds;
  }

  Status PlanBaseRel(int r);
  Status PlanJoins();
  Status TryJoin(uint32_t left_mask, int r);
  Status Materialize(uint32_t mask);
  Result<std::unique_ptr<PlanNode>> Finish();
};

Schema ScanSchema(const TableInfo& info, const std::string& alias) {
  std::vector<Column> cols;
  for (Column c : info.schema.columns()) {
    c.qualifier = alias;
    cols.push_back(std::move(c));
  }
  return Schema(std::move(cols));
}

std::vector<ScalarPred> RelFilters(const QuerySpec& spec, int r) {
  std::vector<ScalarPred> out;
  const std::string& alias = spec.relations[r].alias;
  for (const FilterPred& f : spec.filters) {
    if (f.rel != r) continue;
    ScalarPred p;
    p.column = alias + "." + f.column;
    p.op = f.op;
    p.rhs_is_column = f.rhs_is_column;
    p.literal = f.literal;
    if (f.rhs_is_column) p.rhs_column = alias + "." + f.rhs_column;
    out.push_back(std::move(p));
  }
  return out;
}

void FillOutputEstimates(PlanNode* n, const DerivedRel& stats,
                         double cost_self, double children_total) {
  n->est.cardinality = stats.rows;
  n->est.avg_tuple_bytes = stats.avg_tuple_bytes;
  n->est.pages = stats.Pages();
  n->est.cost_self_ms = cost_self;
  n->est.cost_total_ms = cost_self + children_total;
  n->improved = n->est;  // until run-time observations arrive
}

Status Planner::PlanBaseRel(int r) {
  const RelationRef& ref = spec->relations[r];
  ASSIGN_OR_RETURN(const TableInfo* info, catalog->Get(ref.table));
  ASSIGN_OR_RETURN(DerivedRel raw, est.RawRel(r));
  ASSIGN_OR_RETURN(DerivedRel filtered, est.BaseRel(r));
  const uint32_t mask = 1u << r;
  leaf_raw[r] = raw;

  // Sequential scan with pushed-down filters.
  {
    double c = cost->SeqScan(static_cast<double>(info->heap->page_count()),
                             raw.rows);
    OfferCandidate(mask, c, [&] {
      auto n = std::make_unique<PlanNode>();
      n->kind = OpKind::kSeqScan;
      n->table = ref.table;
      n->alias = ref.alias;
      n->filters = RelFilters(*spec, r);
      n->output_schema = ScanSchema(*info, ref.alias);
      n->covers = {r};
      FillOutputEstimates(n.get(), filtered, c, 0);
      n->est.selectivity = raw.rows > 0 ? filtered.rows / raw.rows : 1.0;
      n->improved = n->est;
      return std::make_pair(std::move(n), filtered);
    });
  }

  // Index scans: one candidate per index whose column carries a literal
  // equality or range filter.
  if (opts->enable_index_scan) {
    for (const auto& [col, index] : info->indexes) {
      bool has_pred = false;
      std::optional<int64_t> lo, hi;
      for (const FilterPred& f : spec->filters) {
        if (f.rel != r || f.column != col || f.rhs_is_column) continue;
        if (f.literal.is_string()) continue;
        // The index stores integers, so a fractional literal is rounded
        // toward the side that keeps the bound tight AND correct: ceil for
        // lower bounds, floor for upper bounds (truncation would widen
        // `a > 1.5` to `a >= 1`). Strict comparisons on an exactly
        // integral literal still take the +-1 step.
        const double d = f.literal.AsNumeric();
        const int64_t fl = static_cast<int64_t>(std::floor(d));
        const int64_t ce = static_cast<int64_t>(std::ceil(d));
        switch (f.op) {
          case CmpOp::kEq:
            // Fractional equality matches no integer: ce > fl then, and
            // the empty range [ce, fl] estimates (near) zero matches.
            lo = lo ? std::max(*lo, ce) : ce;
            hi = hi ? std::min(*hi, fl) : fl;
            has_pred = true;
            break;
          case CmpOp::kLt: {
            const int64_t v = (d == static_cast<double>(fl)) ? fl - 1 : fl;
            hi = hi ? std::min(*hi, v) : v;
            has_pred = true;
            break;
          }
          case CmpOp::kLe:
            hi = hi ? std::min(*hi, fl) : fl;
            has_pred = true;
            break;
          case CmpOp::kGt: {
            const int64_t v = (d == static_cast<double>(ce)) ? ce + 1 : ce;
            lo = lo ? std::max(*lo, v) : v;
            has_pred = true;
            break;
          }
          case CmpOp::kGe:
            lo = lo ? std::max(*lo, ce) : ce;
            has_pred = true;
            break;
          default:
            break;
        }
      }
      if (!has_pred) continue;

      // Matches before residual predicates.
      const ColumnStats* cs = raw.Find(ref.alias + "." + col);
      double matches = raw.rows;
      if (cs) {
        const double inf = std::numeric_limits<double>::infinity();
        matches = raw.rows *
                  cs->SelectivityRange(lo ? static_cast<double>(*lo) : -inf,
                                       false,
                                       hi ? static_cast<double>(*hi) : inf,
                                       false, raw.rows);
      }
      matches = std::max(1.0, matches);
      double leaf_pages =
          std::max(1.0, matches / 400.0);  // ~400 index entries per leaf
      double miss =
          MissProb(static_cast<double>(info->heap->page_count()));
      double c = cost->IndexScan(index->height(), matches, leaf_pages, miss);

      OfferCandidate(mask, c, [&] {
        auto n = std::make_unique<PlanNode>();
        n->kind = OpKind::kIndexScan;
        n->table = ref.table;
        n->alias = ref.alias;
        n->index_column = col;
        n->range_lo = lo;
        n->range_hi = hi;
        n->filters = RelFilters(*spec, r);  // residuals re-checked after fetch
        n->output_schema = ScanSchema(*info, ref.alias);
        n->covers = {r};
        FillOutputEstimates(n.get(), filtered, c, 0);
        n->est.selectivity = raw.rows > 0 ? filtered.rows / raw.rows : 1.0;
        n->improved = n->est;
        return std::make_pair(std::move(n), filtered);
      });
    }
  }
  return Status::OK();
}

Status Planner::TryJoin(uint32_t left_mask, int r) {
  cur_left = left_mask;
  cur_r = r;
  auto left_it = dp.find(left_mask);
  auto right_it = dp.find(1u << r);
  if (left_it == dp.end() || right_it == dp.end()) return Status::OK();
  MemoEntry& left = left_it->second;
  MemoEntry& right = right_it->second;

  std::vector<const JoinPred*> preds = SplitPreds(left_mask, r);

  const uint32_t mask = left_mask | (1u << r);
  // Shallow estimate first: every candidate below is costed from
  // `joined.rows` alone, and the column-stats merge — the dominant per-split
  // cost on wide intermediates — is deferred until a builder actually runs
  // (at most once per TryJoin). Feedback side effects happen here, exactly
  // once, same as the old up-front est.Join.
  double pre_rows = 0;
  DerivedRel joined = est.JoinShallow(left.stats, right.stats, preds,
                                      &pre_rows);
  bool joined_filled = false;
  auto full_joined = [&]() -> const DerivedRel& {
    if (!joined_filled) {
      Estimator::FillJoinCols(&joined, left.stats, right.stats, pre_rows);
      joined_filled = true;
    }
    return joined;
  };

  auto offer_hash_join = [&](MemoEntry& build, MemoEntry& probe,
                             bool build_is_left_subset) {
    int passes = 0;
    double c = cost->HashJoin(build.stats.rows, build.stats.Pages(),
                              probe.stats.rows, probe.stats.Pages(),
                              opts->assumed_mem_pages, joined.rows, &passes);
    double children = build.cost + probe.cost;
    OfferCandidate(
        mask, children + c,
        [&] {
      auto n = std::make_unique<PlanNode>();
      n->kind = OpKind::kHashJoin;
      for (const JoinPred* p : preds) {
        std::string lq = spec->Qualified(ColumnId{p->left_rel, p->left_col});
        std::string rq = spec->Qualified(ColumnId{p->right_rel, p->right_col});
        // Keys on the build (child 0) side go to left_keys.
        bool left_pred_on_build = build_is_left_subset
                                      ? (left_mask >> p->left_rel & 1) != 0
                                      : p->left_rel == r;
        if (left_pred_on_build) {
          n->left_keys.push_back(lq);
          n->right_keys.push_back(rq);
        } else {
          n->left_keys.push_back(rq);
          n->right_keys.push_back(lq);
        }
      }
      n->output_schema = Schema::Concat(build.plan->output_schema,
                                        probe.plan->output_schema);
      n->covers = build.plan->covers;
      n->covers.insert(probe.plan->covers.begin(), probe.plan->covers.end());
      // Join output column order follows the schema concat; DerivedRel is a
      // map so no reorder is needed.
      DerivedRel out = full_joined();
      out.avg_tuple_bytes =
          build.stats.avg_tuple_bytes + probe.stats.avg_tuple_bytes;
      n->children.push_back(build.plan->Clone());
      n->children.push_back(probe.plan->Clone());
      FillOutputEstimates(n.get(), out, c, children);
      return std::make_pair(std::move(n), std::move(out));
        },
        /*kind=*/build_is_left_subset ? 0 : 1);
  };

  // Sort-merge join: explicit sorts on the join keys become blocking
  // stages of their own (more re-optimization points); competitive when
  // both inputs fit sort memory or are badly skewed for hashing.
  auto offer_merge_join = [&]() {
    double lsort_c =
        cost->Sort(left.stats.rows, left.stats.Pages(), opts->assumed_mem_pages);
    double rsort_c = cost->Sort(right.stats.rows, right.stats.Pages(),
                                opts->assumed_mem_pages);
    double children = (left.cost + lsort_c) + (right.cost + rsort_c);
    double c = cost->MergeJoin(left.stats.rows, right.stats.rows, joined.rows);
    OfferCandidate(
        mask, children + c,
        [&] {
      auto wrap_sort = [&](MemoEntry& e, const std::vector<std::string>& keys,
                           double sort_c) {
        auto sort = std::make_unique<PlanNode>();
        sort->kind = OpKind::kSort;
        for (const std::string& k : keys)
          sort->sort_keys.emplace_back(k, true);
        sort->output_schema = e.plan->output_schema;
        sort->covers = e.plan->covers;
        sort->children.push_back(e.plan->Clone());
        FillOutputEstimates(sort.get(), e.stats, sort_c, e.cost);
        return sort;
      };
      auto n = std::make_unique<PlanNode>();
      n->kind = OpKind::kMergeJoin;
      for (const JoinPred* p : preds) {
        std::string lq = spec->Qualified(ColumnId{p->left_rel, p->left_col});
        std::string rq = spec->Qualified(ColumnId{p->right_rel, p->right_col});
        bool pred_left_in_subset = (left_mask >> p->left_rel & 1) != 0;
        n->left_keys.push_back(pred_left_in_subset ? lq : rq);
        n->right_keys.push_back(pred_left_in_subset ? rq : lq);
      }
      std::unique_ptr<PlanNode> lsort = wrap_sort(left, n->left_keys, lsort_c);
      std::unique_ptr<PlanNode> rsort = wrap_sort(right, n->right_keys, rsort_c);
      n->output_schema = Schema::Concat(lsort->output_schema,
                                        rsort->output_schema);
      n->covers = left.plan->covers;
      n->covers.insert(right.plan->covers.begin(), right.plan->covers.end());
      n->children.push_back(std::move(lsort));
      n->children.push_back(std::move(rsort));
      DerivedRel out = full_joined();
      FillOutputEstimates(n.get(), out, c, children);
      return std::make_pair(std::move(n), std::move(out));
        },
        /*kind=*/2);
  };

  if (!preds.empty()) {
    offer_hash_join(left, right, /*build_is_left_subset=*/true);
    if (!opts->build_on_left_subtree || __builtin_popcount(left_mask) == 1)
      offer_hash_join(right, left, /*build_is_left_subset=*/false);
    if (opts->enable_sort_merge_join) offer_merge_join();
  } else {
    // Cross product: only via (cheap) hash join with no keys.
    offer_hash_join(right, left, false);
  }

  // Indexed nested-loops join: outer = left subset, inner = base relation r
  // with an index on its join column.
  if (opts->enable_index_nl_join && !preds.empty()) {
    const RelationRef& ref = spec->relations[r];
    Result<const TableInfo*> info_r = catalog->Get(ref.table);
    if (!info_r.ok()) return info_r.status();
    const TableInfo* info = info_r.value();
    for (int pi = 0; pi < static_cast<int>(preds.size()); ++pi) {
      const JoinPred* p = preds[pi];
      const std::string& inner_col = p->left_rel == r ? p->left_col : p->right_col;
      const std::string& outer_q =
          p->left_rel == r ? spec->Qualified(ColumnId{p->right_rel, p->right_col})
                           : spec->Qualified(ColumnId{p->left_rel, p->left_col});
      const BTree* index = info->FindIndex(inner_col);
      if (index == nullptr) continue;

      ASSIGN_OR_RETURN(DerivedRel raw_r, est.RawRel(r));
      // Matches fetched per index probe, before residual filters.
      const ColumnStats* ics = raw_r.Find(ref.alias + "." + inner_col);
      double d_inner = (ics && ics->distinct > 0) ? ics->distinct : raw_r.rows;
      double matches = left.stats.rows * raw_r.rows / std::max(1.0, d_inner);
      double miss = MissProb(static_cast<double>(info->heap->page_count()));
      double c = cost->IndexNLJoin(left.stats.rows, index->height(), matches,
                                   miss);

      OfferCandidate(
          mask, left.cost + c,
          [&] {
        auto n = std::make_unique<PlanNode>();
        n->kind = OpKind::kIndexNLJoin;
        n->table = ref.table;
        n->alias = ref.alias;
        n->index_column = inner_col;
        n->left_keys.push_back(outer_q);           // outer key column
        n->right_keys.push_back(ref.alias + "." + inner_col);
        n->filters = RelFilters(*spec, r);  // inner residual filters
        // Remaining join predicates become residual filters too.
        for (const JoinPred* q : preds) {
          if (q == p) continue;
          ScalarPred sp;
          sp.column = spec->Qualified(ColumnId{q->left_rel, q->left_col});
          sp.op = CmpOp::kEq;
          sp.rhs_is_column = true;
          sp.rhs_column = spec->Qualified(ColumnId{q->right_rel, q->right_col});
          n->filters.push_back(std::move(sp));
        }
        n->output_schema = Schema::Concat(left.plan->output_schema,
                                          ScanSchema(*info, ref.alias));
        n->covers = left.plan->covers;
        n->covers.insert(r);
        n->children.push_back(left.plan->Clone());
        DerivedRel out = full_joined();
        FillOutputEstimates(n.get(), out, c, left.cost);
        return std::make_pair(std::move(n), std::move(out));
          },
          /*kind=*/3, /*aux=*/pi);
    }
  }
  return Status::OK();
}

Status Planner::Materialize(uint32_t mask) {
  auto it = dp.find(mask);
  if (it == dp.end())
    return Status::Internal("optimizer: missing memo entry to materialize");
  if (it->second.plan != nullptr) return Status::OK();
  auto di = deferred.find(mask);
  if (di == deferred.end())
    return Status::Internal("optimizer: decision-only entry lost its rebuild");
  const RebuildInfo ri = di->second;
  // Children first: the left subset may itself be decision-only. The right
  // side is a leaf, and leaves are always materialized by PlanBaseRel.
  RETURN_IF_ERROR(Materialize(ri.left_mask));
  pending.valid = true;
  pending.kind = ri.kind;
  pending.aux = ri.aux;
  building_winner = true;
  Status built = TryJoin(ri.left_mask, ri.r);
  building_winner = false;
  RETURN_IF_ERROR(built);
  if (it->second.plan == nullptr)
    return Status::Internal("optimizer: recorded winner failed to rebuild");
  return Status::OK();
}

Status Planner::PlanJoins() {
  const int n = static_cast<int>(spec->relations.size());
  const uint32_t full = (1u << n) - 1;
  // Enumerate left-deep plans by subset size.
  for (int size = 2; size <= n; ++size) {
    for (uint32_t mask = 1; mask <= full; ++mask) {
      if (__builtin_popcount(mask) != size) continue;
      // Repair mode: this subset's entry was reused verbatim from the
      // retained memo (every leaf under it proven unchanged).
      if (preserved.count(mask) != 0) continue;
      if (lazy) {
        pending = PendingWin{};
        probing = true;
      }
      for (int r = 0; r < n; ++r) {
        if (!(mask >> r & 1)) continue;
        uint32_t left_mask = mask & ~(1u << r);
        if (left_mask == 0) continue;
        // Skip cross products when the subset has connected splits.
        bool connected = false;
        for (const JoinPred& j : spec->joins) {
          if (((left_mask >> j.left_rel & 1) && j.right_rel == r) ||
              ((left_mask >> j.right_rel & 1) && j.left_rel == r)) {
            connected = true;
            break;
          }
        }
        if (connected) RETURN_IF_ERROR(TryJoin(left_mask, r));
      }
      // An eager offer always creates the entry, a probed offer always sets
      // `pending`, so these fallback conditions are equivalent.
      const bool no_candidate =
          lazy ? !pending.valid : dp.find(mask) == dp.end();
      if (no_candidate) {
        // No connected split: fall back to cross products.
        for (int r = 0; r < n; ++r) {
          if (!(mask >> r & 1)) continue;
          uint32_t left_mask = mask & ~(1u << r);
          if (left_mask == 0) continue;
          RETURN_IF_ERROR(TryJoin(left_mask, r));
        }
      }
      if (lazy) {
        probing = false;
        if (pending.valid) {
          // Record the winning decision with its cost and full output stats
          // (upper subsets cost against rows/pages and estimate through the
          // column stats) but no plan node: only subsets the final plan
          // actually uses pay node assembly and subtree clones, in
          // Materialize. est.Join recomputes the probe's estimate
          // bit-identically (same inputs, same operations).
          MemoEntry e;
          e.cost = pending.cost;
          e.stats =
              est.Join(dp[pending.left_mask].stats, dp[1u << pending.r].stats,
                       SplitPreds(pending.left_mask, pending.r));
          dp[mask] = std::move(e);
          deferred[mask] = RebuildInfo{pending.left_mask, pending.r,
                                       pending.kind, pending.aux};
        }
      }
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<PlanNode>> Planner::Finish() {
  const uint32_t full = (1u << spec->relations.size()) - 1;
  auto it = dp.find(full);
  if (it == dp.end()) return Status::Internal("optimizer: no complete plan");
  // Lazy repair defers node assembly; build the winning spine now.
  RETURN_IF_ERROR(Materialize(full));
  std::unique_ptr<PlanNode> plan = it->second.plan->Clone();
  DerivedRel stats = it->second.stats;
  double total = it->second.cost;

  const bool aggregated = spec->has_aggregates() || !spec->group_by.empty();
  if (aggregated) {
    auto agg = std::make_unique<PlanNode>();
    agg->kind = OpKind::kHashAggregate;
    for (const ColumnId& g : spec->group_by)
      agg->group_cols.push_back(spec->Qualified(g));
    Schema out_schema;
    for (const OutputItem& item : spec->items) {
      if (item.agg == AggFunc::kNone) {
        Column c;
        c.qualifier = "";
        c.name = item.name;
        c.type = item.col.type;
        const ColumnStats* cs = stats.Find(spec->Qualified(item.col));
        if (cs) c.avg_width = cs->avg_width;
        out_schema.AddColumn(c);
        // Source mapping for the executor: group column feeding this output.
        agg->project_cols.push_back(spec->Qualified(item.col));
        continue;
      }
      agg->project_cols.push_back("");  // aggregate output
      AggSpec a;
      a.func = item.agg;
      a.count_star = item.count_star;
      if (!item.count_star) a.column = spec->Qualified(item.col);
      a.out_name = item.name;
      a.out_type = item.agg == AggFunc::kCount ? ValueType::kInt64
                   : (item.agg == AggFunc::kMin || item.agg == AggFunc::kMax)
                       ? item.col.type
                       : ValueType::kDouble;
      agg->aggs.push_back(a);
      Column c;
      c.name = item.name;
      c.type = a.out_type;
      out_schema.AddColumn(c);
    }
    agg->output_schema = out_schema;
    agg->covers = plan->covers;

    double groups = Estimator::GroupCount(stats, agg->group_cols);
    double group_bytes = out_schema.AvgTupleBytes() + 32;  // hash entry overhead
    double c = cost->HashAggregate(stats.rows, stats.Pages(), groups,
                                   group_bytes, opts->assumed_mem_pages);
    DerivedRel out;
    out.rows = groups;
    out.avg_tuple_bytes = out_schema.AvgTupleBytes();
    agg->children.push_back(std::move(plan));
    FillOutputEstimates(agg.get(), out, c, total);
    agg->est.num_groups = groups;
    agg->improved = agg->est;
    plan = std::move(agg);
    stats = out;
    total += c;
    ++enumerated;
  } else {
    auto proj = std::make_unique<PlanNode>();
    proj->kind = OpKind::kProject;
    Schema out_schema;
    for (const OutputItem& item : spec->items) {
      proj->project_cols.push_back(spec->Qualified(item.col));
      proj->project_names.push_back(item.name);
      Column c;
      c.name = item.name;
      c.type = item.col.type;
      out_schema.AddColumn(c);
    }
    proj->output_schema = out_schema;
    proj->covers = plan->covers;
    DerivedRel out = stats;
    out.avg_tuple_bytes = out_schema.AvgTupleBytes();
    double c = 0;  // projection is free (column moves only)
    proj->children.push_back(std::move(plan));
    FillOutputEstimates(proj.get(), out, c, total);
    plan = std::move(proj);
    stats = out;
  }

  if (!spec->order_by.empty()) {
    auto sort = std::make_unique<PlanNode>();
    sort->kind = OpKind::kSort;
    for (const auto& [item_idx, asc] : spec->order_by)
      sort->sort_keys.emplace_back(spec->items[item_idx].name, asc);
    sort->output_schema = plan->output_schema;
    sort->covers = plan->covers;
    double c = cost->Sort(stats.rows, stats.Pages(), opts->assumed_mem_pages);
    sort->children.push_back(std::move(plan));
    FillOutputEstimates(sort.get(), stats, c, total);
    plan = std::move(sort);
    total += c;
  }

  if (spec->limit >= 0) {
    auto lim = std::make_unique<PlanNode>();
    lim->kind = OpKind::kLimit;
    lim->limit = spec->limit;
    lim->output_schema = plan->output_schema;
    lim->covers = plan->covers;
    DerivedRel out = stats;
    out.rows = std::min(out.rows, static_cast<double>(spec->limit));
    lim->children.push_back(std::move(plan));
    FillOutputEstimates(lim.get(), out, 0, total);
    plan = std::move(lim);
  }
  return plan;
}

/// Entry guards shared by Plan and RepairPlan. The 31-relation wall is a
/// correctness bound, not a practical one: the DP keys subsets by a 32-bit
/// mask and `1u << r` for r >= 32 silently aliases subsets, so it is
/// checked first and hard-errors even if the practical limit below is ever
/// raised.
Status CheckPlannable(const QuerySpec& spec) {
  if (spec.relations.empty())
    return Status::InvalidArgument("query has no relations");
  if (spec.relations.size() > 31)
    return Status::InvalidArgument(
        "too many relations (max 31: join-subset bitmask is 32-bit)");
  if (spec.relations.size() > 20)
    return Status::NotSupported("too many relations (max 20)");
  return Status::OK();
}

std::vector<MemoRelSnapshot> SnapshotRelations(const QuerySpec& spec,
                                               const Catalog& catalog) {
  std::vector<MemoRelSnapshot> out(spec.relations.size());
  for (size_t i = 0; i < spec.relations.size(); ++i) {
    Result<const TableInfo*> info = catalog.Get(spec.relations[i].table);
    if (!info.ok()) continue;  // planning would already have failed
    MemoRelSnapshot& s = out[i];
    s.table = spec.relations[i].table;
    s.schema_fingerprint = SchemaFingerprint(*info.value());
    s.heap_tuple_count =
        static_cast<double>(info.value()->heap->tuple_count());
    s.heap_page_count =
        static_cast<double>(info.value()->heap->page_count());
    s.stats_row_count = info.value()->stats.row_count;
    s.stats_page_count = info.value()->stats.page_count;
    s.update_activity = info.value()->stats.update_activity;
  }
  return out;
}

bool SnapshotMatches(const MemoRelSnapshot& s, const RelationRef& ref,
                     const Catalog& catalog) {
  if (s.table != ref.table) return false;
  Result<const TableInfo*> info = catalog.Get(ref.table);
  if (!info.ok()) return false;
  return s.schema_fingerprint == SchemaFingerprint(*info.value()) &&
         s.heap_tuple_count ==
             static_cast<double>(info.value()->heap->tuple_count()) &&
         s.heap_page_count ==
             static_cast<double>(info.value()->heap->page_count()) &&
         s.stats_row_count == info.value()->stats.row_count &&
         s.stats_page_count == info.value()->stats.page_count &&
         s.update_activity == info.value()->stats.update_activity;
}

/// Shared tail of Plan/RepairPlan: final plan assembly plus memo handover.
Result<OptimizeResult> FinishResult(Planner* planner, const QuerySpec& spec,
                                    const Catalog* catalog,
                                    const CostModel* cost,
                                    const CardinalityFeedbackStore* feedback) {
  ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> plan, planner->Finish());
  AssignPlanIds(plan.get());

  OptimizeResult result;
  result.plan = std::move(plan);
  result.plans_enumerated = planner->enumerated;
  result.sim_opt_time_ms = static_cast<double>(planner->enumerated) *
                           cost->params().t_opt_per_plan_ms;
  result.feedback_applied = std::move(planner->feedback_applied);

  auto memo = std::make_unique<PlanMemo>();
  memo->entries = std::move(planner->dp);
  memo->leaf_raw = std::move(planner->leaf_raw);
  memo->rel_snapshots = SnapshotRelations(spec, *catalog);
  memo->feedback_generation = feedback ? feedback->generation() : 0;
  result.memo = std::move(memo);
  return result;
}

}  // namespace

void AssignPlanIds(PlanNode* root) {
  int next = 0;
  root->PostOrder([&](PlanNode* n) { n->id = next++; });
}

Result<OptimizeResult> Optimizer::Plan(
    const QuerySpec& spec, const BaseRelOverrides* overrides) const {
  RETURN_IF_ERROR(CheckPlannable(spec));

  Planner planner(catalog_, cost_, &opts_, &spec, overrides, feedback_);
  for (int r = 0; r < static_cast<int>(spec.relations.size()); ++r)
    RETURN_IF_ERROR(planner.PlanBaseRel(r));
  RETURN_IF_ERROR(planner.PlanJoins());
  return FinishResult(&planner, spec, catalog_, cost_, feedback_);
}

Result<OptimizeResult> Optimizer::RepairPlan(const QuerySpec& spec,
                                             const BaseRelOverrides* overrides,
                                             std::unique_ptr<PlanMemo> retained,
                                             MemoRepair* repair) const {
  RETURN_IF_ERROR(CheckPlannable(spec));

  const uint64_t current_gen = feedback_ ? feedback_->generation() : 0;
  if (retained == nullptr || retained->feedback_generation != current_gen) {
    // No memo, or the feedback store changed under it: join estimates
    // flowing through the store can no longer be proven unchanged, so the
    // retained entries are untrustworthy wholesale.
    if (repair != nullptr) {
      repair->fell_back = true;
      repair->leaves_changed = static_cast<int>(spec.relations.size());
    }
    ASSIGN_OR_RETURN(OptimizeResult scratch, Plan(spec, overrides));
    if (repair != nullptr) {
      repair->offers_repaired = scratch.plans_enumerated;
      repair->incremental_ms = scratch.sim_opt_time_ms;
    }
    return scratch;
  }

  Planner planner(catalog_, cost_, &opts_, &spec, overrides, feedback_);
  planner.lazy = true;
  const int n = static_cast<int>(spec.relations.size());

  // Leaves are always re-derived: O(n) and cheap, and the fresh derivation
  // is the ground truth the retained entries are validated against.
  for (int r = 0; r < n; ++r) RETURN_IF_ERROR(planner.PlanBaseRel(r));

  // A leaf is dirty when any input of its derivation drifted: the catalog
  // snapshot (schema/index DDL, heap growth, stats churn, feedback-anchor
  // state), the pre-filter stats, or the derived leaf entry itself (cost,
  // full column stats, chosen access path) — the latter is what collector
  // overrides and new feedback show up in.
  uint32_t dirty = 0;
  int leaves_changed = 0;
  for (int r = 0; r < n; ++r) {
    const uint32_t mask = 1u << r;
    bool clean =
        static_cast<size_t>(r) < retained->rel_snapshots.size() &&
        SnapshotMatches(retained->rel_snapshots[static_cast<size_t>(r)],
                        spec.relations[static_cast<size_t>(r)], *catalog_);
    if (clean) {
      auto fresh_it = planner.dp.find(mask);
      auto old_it = retained->entries.find(mask);
      auto fresh_raw = planner.leaf_raw.find(r);
      auto old_raw = retained->leaf_raw.find(r);
      clean = fresh_it != planner.dp.end() &&
              old_it != retained->entries.end() &&
              old_it->second.plan != nullptr &&
              fresh_raw != planner.leaf_raw.end() &&
              old_raw != retained->leaf_raw.end() &&
              fresh_it->second.cost == old_it->second.cost &&
              StatsEqual(fresh_it->second.stats, old_it->second.stats) &&
              StatsEqual(fresh_raw->second, old_raw->second) &&
              fresh_it->second.plan->ToString() ==
                  old_it->second.plan->ToString();
    }
    if (!clean) {
      dirty |= mask;
      ++leaves_changed;
    }
  }

  // Delta-propagation: every join entry whose subset avoids all dirty
  // leaves is proven identical to what a from-scratch enumeration would
  // re-derive (its inputs are unchanged and the DP is deterministic), so
  // it is MOVED in verbatim — no clone, no re-costing. PlanJoins then
  // repairs bottom-up, re-enumerating only subsets containing a dirty leaf
  // (lazily; see OfferCandidate).
  uint64_t total = 0, reused = 0, invalidated = 0;
  for (auto& [mask, entry] : retained->entries) {
    if (__builtin_popcount(mask) < 2) continue;  // leaves: re-derived above
    ++total;
    // A decision-only entry (repaired last round but never on the final
    // plan's spine, so its node was never materialized) has nothing to
    // reuse verbatim; re-enumerate it.
    if ((mask & dirty) != 0 || mask > (1u << n) - 1 || entry.plan == nullptr) {
      ++invalidated;
      continue;
    }
    planner.preserved.insert(mask);
    planner.dp[mask] = std::move(entry);
    ++reused;
  }

  RETURN_IF_ERROR(planner.PlanJoins());
  ASSIGN_OR_RETURN(OptimizeResult result,
                   FinishResult(&planner, spec, catalog_, cost_, feedback_));
  if (repair != nullptr) {
    repair->entries_total = total;
    repair->entries_invalidated = invalidated;
    repair->entries_reused = reused;
    repair->offers_repaired = result.plans_enumerated;
    repair->leaves_changed = leaves_changed;
    repair->incremental_ms = result.sim_opt_time_ms;
  }
  return result;
}

}  // namespace reoptdb
