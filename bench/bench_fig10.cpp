// Figure 10: Performance of Dynamic Re-Optimization.
//
// Reproduces the paper's headline experiment: TPC-D queries Q1, Q3, Q5,
// Q6, Q7, Q8, Q10 on uniform data, executed normally and with the full
// Dynamic Re-Optimization algorithm (mu=0.05, theta1=0.05, theta2=0.2).
//
// Paper's result shape: simple queries (Q1, Q6) see no benefit and Q1 a
// small collection overhead; medium queries (Q3, Q10) improve modestly
// (up to ~5%); complex queries (Q5, Q7, Q8) improve 10-30%.

#include "bench_common.h"

using namespace reoptdb;
using namespace reoptdb::bench;

int main() {
  BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader("Figure 10: Normal vs Re-Optimized execution time", cfg);
  auto db = MakeTpcdDatabase(cfg);

  std::printf("| query | class | normal ms | reopt ms | improvement |"
              " collectors | mem-reallocs | plan-switches |\n");
  std::printf("|---|---|---|---|---|---|---|---|\n");
  for (const tpcd::TpcdQuery& q : tpcd::AllQueries()) {
    QueryResult normal = MustRun(db.get(), q.sql, Mode(ReoptMode::kOff));
    QueryResult reopt = MustRun(db.get(), q.sql, Mode(ReoptMode::kFull));
    double imp = 1.0 - reopt.report.sim_time_ms / normal.report.sim_time_ms;
    std::printf("| %s | %s | %.1f | %.1f | %+.1f%% | %d | %d | %d |\n",
                q.name, tpcd::QueryClassName(q.cls),
                normal.report.sim_time_ms, reopt.report.sim_time_ms,
                imp * 100, reopt.report.collectors_inserted,
                reopt.report.memory_reallocations,
                reopt.report.plans_switched);
  }
  std::printf(
      "\nExpected shape (paper): simple ~0%% (Q1 slightly negative), "
      "medium up to ~5%%, complex 10-30%%.\n");
  return 0;
}
