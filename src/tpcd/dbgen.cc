#include "tpcd/dbgen.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/rng.h"
#include "stats/zipf.h"

namespace reoptdb {
namespace tpcd {

namespace {

const char* kNations[25] = {
    "ALGERIA", "ARGENTINA", "BRAZIL",  "CANADA",     "EGYPT",
    "ETHIOPIA", "FRANCE",   "GERMANY", "INDIA",      "INDONESIA",
    "IRAN",     "IRAQ",     "JAPAN",   "JORDAN",     "KENYA",
    "MOROCCO",  "MOZAMBIQUE", "PERU",  "CHINA",      "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};

// Standard TPC-D nation -> region assignment.
const int kNationRegion[25] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                               4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};

const char* kRegions[5] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                           "MIDDLE EAST"};

const char* kTypeA[6] = {"STANDARD", "SMALL", "MEDIUM",
                         "LARGE",    "ECONOMY", "PROMO"};
const char* kTypeB[5] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                         "BRUSHED"};
const char* kTypeC[5] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};

const char* kSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                            "MACHINERY", "HOUSEHOLD"};

Column IntCol(const char* name) {
  return Column{"", name, ValueType::kInt64, 8};
}
Column DblCol(const char* name) {
  return Column{"", name, ValueType::kDouble, 8};
}
Column StrCol(const char* name, double width) {
  return Column{"", name, ValueType::kString, width};
}

int64_t YearOf(int64_t day) { return 1992 + day / 365; }

/// Per-attribute skew helper: draws from a Zipf over [0, n) or uniform.
class Skewed {
 public:
  Skewed(uint64_t n, double z, uint64_t scramble_seed)
      : dist_(n, z, /*scramble=*/z > 0, scramble_seed) {}
  int64_t Draw(Rng* rng) const {
    return static_cast<int64_t>(dist_.Sample(rng));
  }

 private:
  ZipfDistribution dist_;
};

}  // namespace

TpcdSizes SizesFor(double sf) {
  TpcdSizes s;
  s.supplier = std::max<int64_t>(5, static_cast<int64_t>(10000 * sf));
  s.customer = std::max<int64_t>(10, static_cast<int64_t>(150000 * sf));
  s.part = std::max<int64_t>(10, static_cast<int64_t>(200000 * sf));
  s.partsupp = std::max<int64_t>(20, static_cast<int64_t>(800000 * sf));
  s.orders = std::max<int64_t>(20, static_cast<int64_t>(1500000 * sf));
  return s;
}

const char* NationName(int64_t nationkey) { return kNations[nationkey % 25]; }
const char* RegionName(int64_t regionkey) { return kRegions[regionkey % 5]; }
int64_t NationRegion(int64_t nationkey) {
  return kNationRegion[nationkey % 25];
}
std::string PartTypeName(int64_t index) {
  int64_t i = index % 150;
  return std::string(kTypeA[i / 25]) + " " + kTypeB[(i / 5) % 5] + " " +
         kTypeC[i % 5];
}
const char* MktSegmentName(int64_t index) { return kSegments[index % 5]; }

Status Load(Database* db, const TpcdOptions& opts) {
  const TpcdSizes sizes = SizesFor(opts.scale_factor);
  const double z = opts.zipf_z;
  Rng rng(opts.seed);

  // --- region
  {
    Schema s(std::vector<Column>{IntCol("r_regionkey"), StrCol("r_name", 8)});
    RETURN_IF_ERROR(db->CreateTable("region", s));
    for (int64_t r = 0; r < sizes.region; ++r) {
      RETURN_IF_ERROR(db->Insert(
          "region", Tuple({Value(r), Value(std::string(RegionName(r)))})));
    }
  }

  // --- nation
  {
    Schema s(std::vector<Column>{IntCol("n_nationkey"), StrCol("n_name", 10),
                                 IntCol("n_regionkey")});
    RETURN_IF_ERROR(db->CreateTable("nation", s));
    for (int64_t n = 0; n < sizes.nation; ++n) {
      RETURN_IF_ERROR(db->Insert(
          "nation", Tuple({Value(n), Value(std::string(NationName(n))),
                           Value(NationRegion(n))})));
    }
  }

  // --- supplier
  Skewed nation_skew(25, z, opts.seed ^ 0x11);
  {
    Schema s(std::vector<Column>{IntCol("s_suppkey"), IntCol("s_nationkey"),
                                 DblCol("s_acctbal")});
    RETURN_IF_ERROR(db->CreateTable("supplier", s));
    for (int64_t k = 0; k < sizes.supplier; ++k) {
      RETURN_IF_ERROR(db->Insert(
          "supplier",
          Tuple({Value(k), Value(nation_skew.Draw(&rng)),
                 Value(rng.NextDouble(-999.99, 9999.99))})));
    }
  }

  // --- customer
  Skewed segment_skew(5, z, opts.seed ^ 0x22);
  {
    Schema s(std::vector<Column>{IntCol("c_custkey"), IntCol("c_nationkey"),
                                 StrCol("c_mktsegment", 10),
                                 DblCol("c_acctbal")});
    RETURN_IF_ERROR(db->CreateTable("customer", s));
    for (int64_t k = 0; k < sizes.customer; ++k) {
      RETURN_IF_ERROR(db->Insert(
          "customer",
          Tuple({Value(k), Value(nation_skew.Draw(&rng)),
                 Value(std::string(MktSegmentName(segment_skew.Draw(&rng)))),
                 Value(rng.NextDouble(-999.99, 9999.99))})));
    }
  }

  // --- part
  Skewed type_skew(150, z, opts.seed ^ 0x33);
  Skewed size_skew(50, z, opts.seed ^ 0x44);
  {
    Schema s(std::vector<Column>{IntCol("p_partkey"), StrCol("p_type", 22),
                                 IntCol("p_size"), DblCol("p_retailprice")});
    RETURN_IF_ERROR(db->CreateTable("part", s));
    for (int64_t k = 0; k < sizes.part; ++k) {
      RETURN_IF_ERROR(db->Insert(
          "part", Tuple({Value(k), Value(PartTypeName(type_skew.Draw(&rng))),
                         Value(size_skew.Draw(&rng) + 1),
                         Value(900.0 + (k % 1000) * 0.1)})));
    }
  }

  // --- partsupp
  {
    Schema s(std::vector<Column>{IntCol("ps_partkey"), IntCol("ps_suppkey"),
                                 DblCol("ps_supplycost")});
    RETURN_IF_ERROR(db->CreateTable("partsupp", s));
    for (int64_t k = 0; k < sizes.partsupp; ++k) {
      RETURN_IF_ERROR(db->Insert(
          "partsupp",
          Tuple({Value(k % sizes.part),
                 Value(static_cast<int64_t>(rng.NextBelow(sizes.supplier))),
                 Value(rng.NextDouble(1.0, 1000.0))})));
    }
  }

  // --- orders + lineitem
  Skewed date_skew(kEndDate - 120, z, opts.seed ^ 0x55);
  Skewed qty_skew(50, z, opts.seed ^ 0x66);
  {
    Schema so(std::vector<Column>{
        IntCol("o_orderkey"), IntCol("o_custkey"), StrCol("o_orderstatus", 1),
        DblCol("o_totalprice"), IntCol("o_orderdate"), IntCol("o_orderyear")});
    RETURN_IF_ERROR(db->CreateTable("orders", so));
    Schema sl(std::vector<Column>{
        IntCol("l_orderkey"), IntCol("l_partkey"), IntCol("l_suppkey"),
        IntCol("l_linenumber"), DblCol("l_quantity"),
        DblCol("l_extendedprice"), DblCol("l_discount"),
        StrCol("l_returnflag", 1), StrCol("l_linestatus", 1),
        IntCol("l_shipdate"), IntCol("l_commitdate"), IntCol("l_receiptdate"),
        IntCol("l_shipyear")});
    RETURN_IF_ERROR(db->CreateTable("lineitem", sl));
  }

  // Appends one order with its lineitems; `draw_date` picks the orderdate.
  auto append_order = [&](int64_t o,
                          const std::function<int64_t()>& draw_date) -> Status {
    int64_t custkey = static_cast<int64_t>(rng.NextBelow(sizes.customer));
    int64_t orderdate = draw_date();
    int64_t nlines = rng.NextInt(1, 7);
    double totalprice = 0;
    for (int64_t ln = 0; ln < nlines; ++ln) {
      int64_t shipdate = orderdate + rng.NextInt(1, 121);
      int64_t commitdate = orderdate + rng.NextInt(30, 90);
      int64_t receiptdate = shipdate + rng.NextInt(1, 30);
      double quantity = static_cast<double>(qty_skew.Draw(&rng) + 1);
      // Correlated discount: bulk lines earn bigger discounts. The
      // optimizer's independence assumption cannot see this.
      double discount = quantity >= 25 ? rng.NextDouble(0.04, 0.10)
                                       : rng.NextDouble(0.0, 0.04);
      double extprice = quantity * rng.NextDouble(900.0, 1100.0);
      totalprice += extprice * (1 - discount);
      const char* returnflag = receiptdate <= kCurrentDate
                                   ? (rng.NextBool(0.5) ? "R" : "A")
                                   : "N";
      const char* linestatus = shipdate <= kCurrentDate ? "F" : "O";
      RETURN_IF_ERROR(db->Insert(
          "lineitem",
          Tuple({Value(o), Value(static_cast<int64_t>(rng.NextBelow(
                               static_cast<uint64_t>(sizes.part)))),
                 Value(static_cast<int64_t>(rng.NextBelow(
                     static_cast<uint64_t>(sizes.supplier)))),
                 Value(ln + 1), Value(quantity), Value(extprice),
                 Value(discount), Value(std::string(returnflag)),
                 Value(std::string(linestatus)), Value(shipdate),
                 Value(commitdate), Value(receiptdate),
                 Value(YearOf(shipdate))})));
    }
    const char* status = orderdate + 121 <= kCurrentDate ? "F" : "O";
    return db->Insert("orders",
                      Tuple({Value(o), Value(custkey),
                             Value(std::string(status)), Value(totalprice),
                             Value(orderdate), Value(YearOf(orderdate))}));
  };

  for (int64_t o = 0; o < sizes.orders; ++o) {
    RETURN_IF_ERROR(append_order(o, [&]() { return date_skew.Draw(&rng); }));
  }

  auto flush_all = [&]() -> Status {
    for (const char* t : {"region", "nation", "supplier", "customer", "part",
                          "partsupp", "orders", "lineitem"}) {
      ASSIGN_OR_RETURN(TableInfo * info, db->catalog()->Get(t));
      RETURN_IF_ERROR(info->heap->Flush());
    }
    return Status::OK();
  };
  RETURN_IF_ERROR(flush_all());

  // ANALYZE sees only the base load; updates below stay invisible to the
  // catalog, exactly like a production system between ANALYZE runs.
  if (opts.analyze) {
    for (const char* t : {"region", "nation", "supplier", "customer", "part",
                          "partsupp", "orders", "lineitem"}) {
      RETURN_IF_ERROR(db->Analyze(t, opts.analyze_options));
    }
  }

  if (opts.update_fraction > 0) {
    // New customers sign up, concentrated in one hot market segment
    // (business growth looks like this; the stale catalog still believes
    // segments are evenly spread).
    int64_t new_customers =
        static_cast<int64_t>(sizes.customer * opts.update_fraction);
    for (int64_t k = 0; k < new_customers; ++k) {
      RETURN_IF_ERROR(db->Insert(
          "customer",
          Tuple({Value(sizes.customer + k), Value(nation_skew.Draw(&rng)),
                 Value(std::string("BUILDING")),
                 Value(rng.NextDouble(-999.99, 9999.99))})));
    }
    int64_t extra = static_cast<int64_t>(sizes.orders * opts.update_fraction);
    for (int64_t i = 0; i < extra; ++i) {
      RETURN_IF_ERROR(append_order(sizes.orders + i, [&]() {
        return rng.NextInt(opts.update_date_lo, opts.update_date_hi);
      }));
    }
    RETURN_IF_ERROR(flush_all());
    RETURN_IF_ERROR(db->BumpUpdateActivity("customer", opts.update_fraction));
    RETURN_IF_ERROR(db->BumpUpdateActivity("orders", opts.update_fraction));
    RETURN_IF_ERROR(db->BumpUpdateActivity("lineitem", opts.update_fraction));
  }

  // Keys (for the key-join inaccuracy rule and estimation).
  RETURN_IF_ERROR(db->DeclareKey("region", "r_regionkey"));
  RETURN_IF_ERROR(db->DeclareKey("nation", "n_nationkey"));
  RETURN_IF_ERROR(db->DeclareKey("supplier", "s_suppkey"));
  RETURN_IF_ERROR(db->DeclareKey("customer", "c_custkey"));
  RETURN_IF_ERROR(db->DeclareKey("part", "p_partkey"));
  RETURN_IF_ERROR(db->DeclareKey("orders", "o_orderkey"));

  // Indexes are built after every batch so they cover the whole table.
  if (opts.build_indexes) {
    RETURN_IF_ERROR(db->CreateIndex("nation", "n_nationkey"));
    RETURN_IF_ERROR(db->CreateIndex("supplier", "s_suppkey"));
    RETURN_IF_ERROR(db->CreateIndex("customer", "c_custkey"));
    RETURN_IF_ERROR(db->CreateIndex("part", "p_partkey"));
    RETURN_IF_ERROR(db->CreateIndex("orders", "o_orderkey"));
    RETURN_IF_ERROR(db->CreateIndex("lineitem", "l_orderkey"));
  }
  return Status::OK();
}

}  // namespace tpcd
}  // namespace reoptdb
