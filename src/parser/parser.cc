#include "parser/parser.h"

#include "parser/lexer.h"

namespace reoptdb {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

CmpOp FlipCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kGe:
      return CmpOp::kLe;
    default:
      return op;
  }
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kNone:
      return "";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

namespace {

/// Token-stream cursor with helpers.
class Cursor {
 public:
  explicit Cursor(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& Advance() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  bool Check(TokenType t) const { return Peek().type == t; }
  bool Match(TokenType t) {
    if (!Check(t)) return false;
    Advance();
    return true;
  }
  bool MatchKeyword(const char* kw) {
    if (!Peek().IsKeyword(kw)) return false;
    Advance();
    return true;
  }
  Status Expect(TokenType t, const char* what) {
    if (Match(t)) return Status::OK();
    return Status::ParseError(std::string("expected ") + what + " at offset " +
                              std::to_string(Peek().pos) + " (found '" +
                              Peek().text + "')");
  }
  Status ExpectKeyword(const char* kw) {
    if (MatchKeyword(kw)) return Status::OK();
    return Status::ParseError(std::string("expected ") + kw + " at offset " +
                              std::to_string(Peek().pos));
  }

 private:
  std::vector<Token> toks_;
  size_t pos_ = 0;
};

Result<ColumnRefAst> ParseColumnRef(Cursor* c) {
  if (!c->Check(TokenType::kIdentifier))
    return Status::ParseError("expected column name at offset " +
                              std::to_string(c->Peek().pos));
  ColumnRefAst ref;
  ref.name = c->Advance().text;
  if (c->Match(TokenType::kDot)) {
    if (!c->Check(TokenType::kIdentifier))
      return Status::ParseError("expected column after '.'");
    ref.qualifier = ref.name;
    ref.name = c->Advance().text;
  }
  return ref;
}

Result<OperandAst> ParseOperand(Cursor* c) {
  const Token& t = c->Peek();
  switch (t.type) {
    case TokenType::kInteger:
      c->Advance();
      return OperandAst(Value(t.int_value));
    case TokenType::kFloat:
      c->Advance();
      return OperandAst(Value(t.float_value));
    case TokenType::kString:
      c->Advance();
      return OperandAst(Value(t.text));
    case TokenType::kIdentifier: {
      ASSIGN_OR_RETURN(ColumnRefAst ref, ParseColumnRef(c));
      return OperandAst(std::move(ref));
    }
    default:
      return Status::ParseError("expected column or literal at offset " +
                                std::to_string(t.pos));
  }
}

Result<CmpOp> ParseCmp(Cursor* c) {
  switch (c->Peek().type) {
    case TokenType::kEq:
      c->Advance();
      return CmpOp::kEq;
    case TokenType::kNe:
      c->Advance();
      return CmpOp::kNe;
    case TokenType::kLt:
      c->Advance();
      return CmpOp::kLt;
    case TokenType::kLe:
      c->Advance();
      return CmpOp::kLe;
    case TokenType::kGt:
      c->Advance();
      return CmpOp::kGt;
    case TokenType::kGe:
      c->Advance();
      return CmpOp::kGe;
    default:
      return Status::ParseError("expected comparison operator at offset " +
                                std::to_string(c->Peek().pos));
  }
}

Status ParsePredicate(Cursor* c, std::vector<PredicateAst>* out) {
  ASSIGN_OR_RETURN(OperandAst lhs, ParseOperand(c));
  if (c->MatchKeyword("BETWEEN")) {
    // col BETWEEN a AND b  ->  col >= a AND col <= b
    if (!std::holds_alternative<ColumnRefAst>(lhs))
      return Status::ParseError("BETWEEN requires a column on the left");
    ASSIGN_OR_RETURN(OperandAst lo, ParseOperand(c));
    RETURN_IF_ERROR(c->ExpectKeyword("AND"));
    ASSIGN_OR_RETURN(OperandAst hi, ParseOperand(c));
    out->push_back(PredicateAst{lhs, CmpOp::kGe, std::move(lo)});
    out->push_back(PredicateAst{std::move(lhs), CmpOp::kLe, std::move(hi)});
    return Status::OK();
  }
  ASSIGN_OR_RETURN(CmpOp op, ParseCmp(c));
  ASSIGN_OR_RETURN(OperandAst rhs, ParseOperand(c));
  out->push_back(PredicateAst{std::move(lhs), op, std::move(rhs)});
  return Status::OK();
}

Result<SelectItemAst> ParseSelectItem(Cursor* c) {
  SelectItemAst item;
  if (c->Match(TokenType::kStar)) {
    item.star = true;
    return item;
  }
  const Token& t = c->Peek();
  auto agg_of = [](const std::string& kw) {
    if (kw == "SUM") return AggFunc::kSum;
    if (kw == "AVG") return AggFunc::kAvg;
    if (kw == "COUNT") return AggFunc::kCount;
    if (kw == "MIN") return AggFunc::kMin;
    if (kw == "MAX") return AggFunc::kMax;
    return AggFunc::kNone;
  };
  if (t.type == TokenType::kKeyword && agg_of(t.text) != AggFunc::kNone) {
    item.agg = agg_of(t.text);
    c->Advance();
    RETURN_IF_ERROR(c->Expect(TokenType::kLParen, "'('"));
    if (item.agg == AggFunc::kCount && c->Match(TokenType::kStar)) {
      item.count_star = true;
    } else {
      ASSIGN_OR_RETURN(item.column, ParseColumnRef(c));
    }
    RETURN_IF_ERROR(c->Expect(TokenType::kRParen, "')'"));
  } else {
    ASSIGN_OR_RETURN(item.column, ParseColumnRef(c));
  }
  if (c->MatchKeyword("AS")) {
    if (!c->Check(TokenType::kIdentifier))
      return Status::ParseError("expected alias after AS");
    item.alias = c->Advance().text;
  }
  return item;
}

}  // namespace

Result<SelectStmtAst> ParseSelect(const std::string& sql) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Cursor c(std::move(tokens));
  SelectStmtAst stmt;

  RETURN_IF_ERROR(c.ExpectKeyword("SELECT"));
  do {
    ASSIGN_OR_RETURN(SelectItemAst item, ParseSelectItem(&c));
    stmt.items.push_back(std::move(item));
  } while (c.Match(TokenType::kComma));

  RETURN_IF_ERROR(c.ExpectKeyword("FROM"));
  do {
    if (!c.Check(TokenType::kIdentifier))
      return Status::ParseError("expected table name at offset " +
                                std::to_string(c.Peek().pos));
    TableRefAst ref;
    ref.table = c.Advance().text;
    ref.alias = ref.table;
    if (c.Check(TokenType::kIdentifier)) ref.alias = c.Advance().text;
    stmt.tables.push_back(std::move(ref));
  } while (c.Match(TokenType::kComma));

  if (c.MatchKeyword("WHERE")) {
    do {
      RETURN_IF_ERROR(ParsePredicate(&c, &stmt.predicates));
    } while (c.MatchKeyword("AND"));
  }

  if (c.MatchKeyword("GROUP")) {
    RETURN_IF_ERROR(c.ExpectKeyword("BY"));
    do {
      ASSIGN_OR_RETURN(ColumnRefAst ref, ParseColumnRef(&c));
      stmt.group_by.push_back(std::move(ref));
    } while (c.Match(TokenType::kComma));
  }

  if (c.MatchKeyword("ORDER")) {
    RETURN_IF_ERROR(c.ExpectKeyword("BY"));
    do {
      OrderByAst ob;
      ASSIGN_OR_RETURN(ob.column, ParseColumnRef(&c));
      if (c.MatchKeyword("DESC")) {
        ob.ascending = false;
      } else {
        c.MatchKeyword("ASC");
      }
      stmt.order_by.push_back(std::move(ob));
    } while (c.Match(TokenType::kComma));
  }

  if (c.MatchKeyword("LIMIT")) {
    if (!c.Check(TokenType::kInteger))
      return Status::ParseError("expected integer after LIMIT");
    stmt.limit = c.Advance().int_value;
  }

  c.Match(TokenType::kSemicolon);
  if (!c.Check(TokenType::kEof))
    return Status::ParseError("trailing tokens at offset " +
                              std::to_string(c.Peek().pos));
  return stmt;
}

}  // namespace reoptdb
