// reoptdb interactive shell.
//
// A small REPL over Database::ExecuteSql, handy for poking at the engine
// and watching Dynamic Re-Optimization act on your own queries.
//
//   ./build/tools/reoptdb_shell [--tpcd <scale>] [--mem <pages>]
//
// Meta commands:
//   \mode off|memory|plan|full     re-optimization mode (default full)
//   \report                        toggle per-query execution reports
//   \trace                         toggle per-query structured trace summary
//   \tables                        list catalog tables
//   \faults [spec|list|off]        fault injection: show armed points, arm
//                                  from a spec (e.g. reopt.optimize=nth:1),
//                                  list known points, or disarm all
//   \crash [spec|off]              arm a crash schedule: like \faults but
//                                  every trigger gets the crash: action
//                                  (e.g. \crash reopt.post_switch=nth:1);
//                                  no arg shows the crash latch + schedule
//   \recover <sql>                 restart-resume a crashed query: clears
//                                  the crash latch, validates journaled
//                                  temp tables, resumes the remainder (or
//                                  re-runs from scratch)
//   \txn                           transaction layer: active transactions,
//                                  held locks, the WAL tail, and commit /
//                                  abort / deadlock / replay counts.
//                                  BEGIN / COMMIT / ROLLBACK are plain SQL
//                                  (the shell keeps one session transaction)
//   \checkpoint                    capture a storage restore point for every
//                                  base table and truncate the WAL
//   \workload [sub]                concurrent execution via the
//                                  WorkloadManager: `add <sql>` queues a
//                                  statement, `run` executes everything
//                                  queued concurrently (admission control,
//                                  revocable grants, spill-under-pressure),
//                                  `mem|active|queue N` set the budget
//                                  knobs, `clear` drops pending, no arg
//                                  shows the knobs and pending statements
//   \shard [sub]                   sharded execution (needs --tpcd): `on
//                                  [N]` builds an N-node cluster with the
//                                  TPC-D tables hash-partitioned by key
//                                  and routes every SELECT through the
//                                  distributed executor, `off` drops it,
//                                  `replicas <K>` arms K-way replica
//                                  placement for the next `on` (each slice
//                                  on K distinct nodes), `kill <id>` fails
//                                  a node — slices are promoted from
//                                  surviving replicas, falling back to the
//                                  coordinator copy only when none exists —
//                                  `faults <spec|off>` arms the cluster's
//                                  injector (net.send / net.recv /
//                                  node.crash / node.resurrect / corrupt:),
//                                  no arg shows node status (health, epoch)
//   \scrub                         anti-entropy pass over every partition
//                                  copy: content checksums are compared
//                                  across replicas and against the
//                                  coordinator, divergent or bit-rotted
//                                  copies are quarantined and rebuilt from
//                                  a healthy source
//   \q                             quit

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include <vector>

#include "engine/database.h"
#include "engine/workload_manager.h"
#include "shard/scrubber.h"
#include "shard/sharded_executor.h"
#include "tpcd/dbgen.h"

using namespace reoptdb;

namespace {

void PrintRows(const QueryResult& r) {
  // Header.
  for (size_t i = 0; i < r.schema.NumColumns(); ++i)
    std::printf("%s%s", i ? " | " : "", r.schema.column(i).name.c_str());
  if (r.schema.NumColumns() > 0) std::printf("\n");
  size_t shown = 0;
  for (const Tuple& t : r.rows) {
    if (++shown > 50) {
      std::printf("... (%zu rows total)\n", r.rows.size());
      break;
    }
    for (size_t i = 0; i < t.size(); ++i) {
      const Value& v = t.at(i);
      std::printf("%s%s", i ? " | " : "",
                  v.is_string() ? v.AsString().c_str() : v.ToString().c_str());
    }
    std::printf("\n");
  }
  std::printf("(%zu row%s)\n", r.rows.size(), r.rows.size() == 1 ? "" : "s");
}

void PrintReport(const ExecutionReport& rep) {
  std::printf("-- %.1f simulated ms, %llu page I/Os, %d collectors, "
              "%d mem-reallocs, %d plan-switches\n",
              rep.sim_time_ms, static_cast<unsigned long long>(rep.page_ios),
              rep.collectors_inserted, rep.memory_reallocations,
              rep.plans_switched);
  for (const std::string& e : rep.events) std::printf("--   %s\n", e.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  DatabaseOptions opts;
  opts.buffer_pool_pages = 256;
  opts.query_mem_pages = 128;
  double tpcd_scale = 0;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--tpcd") && i + 1 < argc)
      tpcd_scale = atof(argv[++i]);
    else if (!std::strcmp(argv[i], "--mem") && i + 1 < argc)
      opts.query_mem_pages = atof(argv[++i]);
  }

  Database db(opts);
  if (tpcd_scale > 0) {
    std::printf("loading TPC-D at scale %.3f...\n", tpcd_scale);
    tpcd::TpcdOptions gen;
    gen.scale_factor = tpcd_scale;
    Status st = tpcd::Load(&db, gen);
    if (!st.ok()) {
      std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  ReoptOptions reopt;  // full, paper defaults
  bool show_report = true;
  bool show_trace = false;
  WorkloadOptions wlopts;  // \workload knobs; global 0 = query_mem_pages
  std::vector<std::string> wl_pending;
  uint64_t session_txn = 0;  // the shell's ambient transaction (BEGIN..COMMIT)
  std::unique_ptr<ShardCluster> shard;  // \shard cluster (own coordinator db)
  std::unique_ptr<ShardedExecutor> shard_exec;
  int shard_repl = 1;  // \shard replicas K, applied at the next \shard on
  std::printf("reoptdb shell — SQL or \\q to quit, \\mode, \\report, "
              "\\trace, \\tables, \\faults, \\crash, \\recover, \\batch, "
              "\\workload, \\shard, \\scrub, \\feedback, \\plancache, "
              "\\txn, \\checkpoint\n");

  std::string line, buffer;
  while (true) {
    std::printf(buffer.empty() ? "reoptdb> " : "      -> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;

    if (buffer.empty() && !line.empty() && line[0] == '\\') {
      std::istringstream is(line);
      std::string cmd, arg;
      is >> cmd >> arg;
      if (cmd == "\\q") break;
      if (cmd == "\\report") {
        show_report = !show_report;
        std::printf("reports %s\n", show_report ? "on" : "off");
      } else if (cmd == "\\trace") {
        show_trace = !show_trace;
        std::printf("trace %s\n", show_trace ? "on" : "off");
      } else if (cmd == "\\mode") {
        if (arg == "off") reopt.mode = ReoptMode::kOff;
        else if (arg == "memory") reopt.mode = ReoptMode::kMemoryOnly;
        else if (arg == "plan") reopt.mode = ReoptMode::kPlanOnly;
        else reopt.mode = ReoptMode::kFull;
        std::printf("mode = %s\n", ReoptModeName(reopt.mode));
      } else if (cmd == "\\faults") {
        if (arg.empty()) {
          std::printf("%s\n", db.faults()->Describe().c_str());
        } else if (arg == "off") {
          db.faults()->Reset();
          std::printf("all fault points disarmed\n");
        } else if (arg == "list") {
          for (const std::string& p : FaultInjector::KnownPoints())
            std::printf("  %s\n", p.c_str());
        } else {
          Status st = db.faults()->Configure(arg);
          if (!st.ok())
            std::printf("error: %s\n", st.ToString().c_str());
          else
            std::printf("%s\n", db.faults()->Describe().c_str());
        }
      } else if (cmd == "\\crash") {
        if (arg.empty()) {
          std::printf("crash latch: %s\n%s",
                      db.faults()->crash_pending() ? "PENDING (use \\recover)"
                                                   : "clear",
                      db.faults()->Describe().c_str());
        } else if (arg == "off") {
          db.faults()->Reset();
          db.faults()->ClearCrash();
          std::printf("crash schedule disarmed, latch cleared\n");
        } else {
          // Same grammar as \faults, with crash: implied on every trigger
          // (mirrors REOPTDB_CRASH_SCHEDULE).
          std::string forced;
          std::istringstream entries(arg);
          std::string entry;
          while (std::getline(entries, entry, ',')) {
            size_t eq = entry.find('=');
            if (eq != std::string::npos &&
                entry.compare(eq + 1, 6, "crash:") != 0)
              entry.insert(eq + 1, "crash:");
            if (!forced.empty()) forced += ",";
            forced += entry;
          }
          Status st = db.faults()->Configure(forced);
          if (!st.ok())
            std::printf("error: %s\n", st.ToString().c_str());
          else
            std::printf("%s\n", db.faults()->Describe().c_str());
        }
      } else if (cmd == "\\recover") {
        std::string sql;
        std::getline(is, sql);
        sql = arg + sql;
        if (sql.empty()) {
          std::printf("usage: \\recover <select ...>\n");
        } else {
          db.faults()->Reset();  // armed schedules died with the "process"
          Result<QueryResult> r = db.Recover(sql, reopt);
          if (!r.ok()) {
            std::printf("error: %s\n", r.status().ToString().c_str());
          } else {
            PrintRows(*r);
            if (show_report) PrintReport(r->report);
            if (show_trace)
              std::printf("%s", r->report.trace.Summary().c_str());
          }
        }
      } else if (cmd == "\\batch") {
        if (arg.empty()) {
          std::printf("batch_size = %zu\n", reopt.batch_size);
        } else {
          long v = std::atol(arg.c_str());
          if (v < 1) {
            std::printf("error: batch size must be >= 1 (1 = row-at-a-time)\n");
          } else {
            reopt.batch_size = static_cast<size_t>(v);
            std::printf("batch_size = %zu\n", reopt.batch_size);
          }
        }
      } else if (cmd == "\\feedback") {
        if (arg.empty() || arg == "show") {
          std::printf("feedback %s\n%s", db.feedback_enabled() ? "on" : "off",
                      db.feedback_store()->Describe().c_str());
        } else if (arg == "on" || arg == "off") {
          db.set_feedback_enabled(arg == "on");
          std::printf("feedback %s\n", arg.c_str());
        } else if (arg == "clear") {
          db.feedback_store()->Clear();
          std::printf("feedback store cleared\n");
        } else {
          std::printf("usage: \\feedback [show|on|off|clear]\n");
        }
      } else if (cmd == "\\plancache") {
        if (arg.empty() || arg == "show") {
          std::printf("plan cache %s\n%s",
                      db.plan_cache_enabled() ? "on" : "off",
                      db.plan_cache()->Describe().c_str());
        } else if (arg == "on" || arg == "off") {
          db.set_plan_cache_enabled(arg == "on");
          std::printf("plan cache %s\n", arg.c_str());
        } else if (arg == "clear") {
          db.plan_cache()->Clear();
          std::printf("plan cache cleared\n");
        } else {
          std::printf("usage: \\plancache [show|on|off|clear]\n");
        }
      } else if (cmd == "\\workload") {
        if (arg.empty()) {
          std::printf(
              "workload: global_mem=%g pages (0 = query_mem), "
              "min_grant=%g, max_active=%d, max_queue=%zu\n",
              wlopts.global_mem_pages, wlopts.min_grant_pages,
              wlopts.max_active, wlopts.max_queue);
          for (size_t i = 0; i < wl_pending.size(); ++i)
            std::printf("  [%zu] %s\n", i + 1, wl_pending[i].c_str());
          if (wl_pending.empty())
            std::printf("  (nothing queued — \\workload add <sql>, "
                        "then \\workload run)\n");
        } else if (arg == "mem" || arg == "active" || arg == "queue") {
          std::string v;
          is >> v;
          if (arg == "mem") wlopts.global_mem_pages = std::atof(v.c_str());
          else if (arg == "active") wlopts.max_active = std::atoi(v.c_str());
          else wlopts.max_queue = static_cast<size_t>(std::atol(v.c_str()));
          std::printf("workload: global_mem=%g max_active=%d max_queue=%zu\n",
                      wlopts.global_mem_pages, wlopts.max_active,
                      wlopts.max_queue);
        } else if (arg == "add") {
          std::string sql;
          std::getline(is, sql);
          size_t b = sql.find_first_not_of(" \t");
          if (b == std::string::npos) {
            std::printf("usage: \\workload add <select ...>\n");
          } else {
            wl_pending.push_back(sql.substr(b));
            std::printf("queued [%zu]\n", wl_pending.size());
          }
        } else if (arg == "clear") {
          wl_pending.clear();
          std::printf("workload queue cleared\n");
        } else if (arg == "run") {
          if (wl_pending.empty()) {
            std::printf("nothing queued — \\workload add <sql> first\n");
          } else {
            wlopts.reopt = reopt;  // session \mode and \batch apply
            WorkloadManager wm(&db, wlopts);
            for (std::string& sql : wl_pending) wm.Submit(sql);
            Result<std::vector<WorkloadQueryResult>> res = wm.Run();
            if (!res.ok()) {
              std::printf("error: %s\n", res.status().ToString().c_str());
            } else {
              for (const WorkloadQueryResult& r : *res) {
                if (r.status.ok()) {
                  std::printf(
                      "  q%llu ok: %zu rows, grant=%g pages, wait=%.1fms, "
                      "ran %.1f..%.1fms, %zu spills, %d plan-switches\n",
                      static_cast<unsigned long long>(r.query_id),
                      r.result.rows.size(), r.granted_pages,
                      r.started_ms - r.submitted_ms, r.started_ms,
                      r.finished_ms, r.result.report.trace.spills.size(),
                      r.result.report.plans_switched);
                } else {
                  std::printf("  q%llu %s\n",
                              static_cast<unsigned long long>(r.query_id),
                              r.status.ToString().c_str());
                }
              }
              std::printf(
                  "  -- %.1f simulated ms total, %zu revocations, "
                  "%zu admission rejections\n",
                  wm.now_ms(), wm.broker().revocations().size(),
                  wm.rejections().size());
            }
            wl_pending.clear();
          }
        } else {
          std::printf("usage: \\workload [add <sql> | run | clear | "
                      "mem N | active N | queue N]\n");
        }
      } else if (cmd == "\\shard") {
        if (arg.empty()) {
          if (!shard) {
            std::printf("sharding off — \\shard on [N] (needs --tpcd)\n");
          } else {
            std::printf("sharded execution on: %d nodes, replication %d, "
                        "epoch %llu, reopt %s\n",
                        shard->num_nodes(),
                        shard->options().replication_factor,
                        static_cast<unsigned long long>(shard->epoch()),
                        shard->options().reopt_enabled ? "enabled"
                                                       : "disabled");
            for (int i = 0; i < shard->num_nodes(); ++i) {
              const ShardNode* n = shard->node(i);
              const char* health =
                  n->health == NodeHealth::kDead
                      ? "DEAD"
                      : (n->health == NodeHealth::kSuspect ? "SUSPECT"
                                                           : "alive");
              std::printf(
                  "  node %d: %s, weight %.2f, net %llu msgs / %llu bytes "
                  "sent, %llu retries, %llu fenced\n",
                  n->id, health, n->weight,
                  static_cast<unsigned long long>(n->net.msgs_sent),
                  static_cast<unsigned long long>(n->net.bytes_sent),
                  static_cast<unsigned long long>(n->net.retries),
                  static_cast<unsigned long long>(n->net.fenced_buffers));
            }
            std::printf("  cluster makespan charged so far: %.1f ms, "
                        "scrub findings: %llu\n",
                        shard->cluster_ms(),
                        static_cast<unsigned long long>(
                            shard->scrub_findings()));
          }
        } else if (arg == "on") {
          if (tpcd_scale <= 0) {
            std::printf("error: \\shard needs the TPC-D tables — restart "
                        "with --tpcd <scale>\n");
          } else {
            std::string v;
            is >> v;
            ShardOptions so;
            so.num_nodes = v.empty() ? 4 : std::max(std::atoi(v.c_str()), 1);
            so.replication_factor = shard_repl;
            shard = std::make_unique<ShardCluster>(so);
            tpcd::TpcdOptions gen;
            gen.scale_factor = tpcd_scale;
            Status st = tpcd::Load(shard->db(), gen);
            static const std::pair<const char*, const char*> kKeys[] = {
                {"region", "r_regionkey"},   {"nation", "n_nationkey"},
                {"supplier", "s_suppkey"},   {"customer", "c_custkey"},
                {"part", "p_partkey"},       {"partsupp", "ps_partkey"},
                {"orders", "o_orderkey"},    {"lineitem", "l_orderkey"}};
            for (const auto& [table, col] : kKeys)
              if (st.ok()) st = shard->ShardByHash(table, col);
            if (!st.ok()) {
              std::printf("error: %s\n", st.ToString().c_str());
              shard.reset();
            } else {
              shard_exec = std::make_unique<ShardedExecutor>(shard.get());
              std::printf("cluster up: %d nodes, %d-way replication, TPC-D "
                          "hash-partitioned by primary key; SELECTs now run "
                          "distributed\n",
                          shard->num_nodes(),
                          shard->options().replication_factor);
            }
          }
        } else if (arg == "off") {
          shard_exec.reset();
          shard.reset();
          std::printf("sharding off; SELECTs back on the session database\n");
        } else if (arg == "kill") {
          std::string v;
          is >> v;
          if (!shard || v.empty()) {
            std::printf("usage: \\shard kill <node-id> (cluster must be on)\n");
          } else {
            const int id = std::atoi(v.c_str());
            Status st = shard->MarkDead(id);
            if (st.ok()) {
              Result<ShardCluster::RehomeResult> r = shard->RehomeDeadNode(id);
              if (!r.ok()) {
                std::printf("error: %s\n", r.status().ToString().c_str());
              } else {
                shard->AddClusterMs(r->sim_ms);
                std::printf(
                    "node %d down (epoch %llu): %llu rows promoted from "
                    "replicas, %llu re-read from the coordinator, %llu "
                    "replica rows re-copied onto %zu survivors "
                    "(%.1f ms charged)\n",
                    id, static_cast<unsigned long long>(shard->epoch()),
                    static_cast<unsigned long long>(r->promoted_rows),
                    static_cast<unsigned long long>(r->coordinator_rows),
                    static_cast<unsigned long long>(r->restored_copies),
                    shard->AliveNodes().size(), r->sim_ms);
              }
            } else {
              std::printf("error: %s\n", st.ToString().c_str());
            }
          }
        } else if (arg == "faults") {
          std::string spec;
          is >> spec;
          if (!shard) {
            std::printf("cluster is off\n");
          } else if (spec.empty()) {
            std::printf("%s\n", shard->faults()->Describe().c_str());
          } else if (spec == "off") {
            shard->faults()->Reset();
            std::printf("cluster fault points disarmed\n");
          } else {
            Status st = shard->faults()->Configure(spec);
            if (!st.ok())
              std::printf("error: %s\n", st.ToString().c_str());
            else
              std::printf("%s\n", shard->faults()->Describe().c_str());
          }
        } else if (arg == "replicas") {
          std::string v;
          is >> v;
          if (v.empty()) {
            std::printf("replication factor: %d (set with \\shard "
                        "replicas <K>)\n",
                        shard_repl);
          } else {
            shard_repl = std::max(std::atoi(v.c_str()), 1);
            if (shard) {
              std::printf("replication factor %d armed — applies when the "
                          "cluster is rebuilt (\\shard off; \\shard on "
                          "[N])\n",
                          shard_repl);
            } else {
              std::printf("replication factor %d armed for the next "
                          "\\shard on\n",
                          shard_repl);
            }
          }
        } else {
          std::printf("usage: \\shard [on [N] | off | replicas <K> | "
                      "kill <id> | faults <spec|off>]\n");
        }
      } else if (cmd == "\\scrub") {
        if (!shard) {
          std::printf("cluster is off — \\shard on first\n");
        } else {
          Scrubber scrub(shard.get());
          Result<ScrubSummary> s = scrub.ScrubAll();
          if (!s.ok()) {
            std::printf("error: %s\n", s.status().ToString().c_str());
          } else {
            shard->AddClusterMs(s->sim_ms);
            std::printf(
                "scrub: %llu copies checked, %llu findings, %llu repaired "
                "(%llu rows refetched from the coordinator, %.1f ms "
                "charged)\n",
                static_cast<unsigned long long>(s->copies_checked),
                static_cast<unsigned long long>(s->findings),
                static_cast<unsigned long long>(s->repaired),
                static_cast<unsigned long long>(s->coordinator_rows),
                s->sim_ms);
            for (const ScrubReportRecord& r : s->reports)
              std::printf("  %s\n", Render(r).c_str());
          }
        }
      } else if (cmd == "\\txn") {
        std::printf("%s", db.txn_manager()->Describe().c_str());
        if (session_txn != 0)
          std::printf("shell session transaction: %llu\n",
                      static_cast<unsigned long long>(session_txn));
      } else if (cmd == "\\checkpoint") {
        Status st = db.Checkpoint();
        if (!st.ok())
          std::printf("error: %s\n", st.ToString().c_str());
        else
          std::printf("checkpoint taken, WAL truncated\n");
      } else if (cmd == "\\tables") {
        for (const char* t :
             {"region", "nation", "supplier", "customer", "part", "partsupp",
              "orders", "lineitem"}) {
          Result<const TableInfo*> info =
              const_cast<const Catalog*>(db.catalog())->Get(t);
          if (info.ok())
            std::printf("  %-10s %10llu rows\n", t,
                        static_cast<unsigned long long>(
                            info.value()->heap->tuple_count()));
        }
      } else {
        std::printf("unknown meta command %s\n", cmd.c_str());
      }
      continue;
    }

    buffer += line;
    // Execute on ';' (or a lone non-empty line without one).
    if (buffer.find(';') == std::string::npos && !line.empty()) {
      buffer += " ";
      continue;
    }
    if (buffer.empty()) continue;

    // SELECTs honor the session's \mode; other statements have no
    // re-optimization dimension. With \shard on, SELECTs run distributed
    // on the cluster (its coordinator holds the same TPC-D data).
    bool is_select =
        buffer.find_first_not_of(" \t") != std::string::npos &&
        (std::tolower(buffer[buffer.find_first_not_of(" \t")]) == 's');
    Result<QueryResult> r = [&]() -> Result<QueryResult> {
      if (is_select && shard_exec) {
        ShardQueryOptions sq;
        sq.batch_size = reopt.batch_size;
        ASSIGN_OR_RETURN(ShardExecResult sr, shard_exec->Execute(buffer, sq));
        std::printf("-- distributed: %d stage%s, %d switch%s, %d node%s "
                    "lost%s, %.1f ms cluster makespan\n",
                    sr.stages_run, sr.stages_run == 1 ? "" : "s",
                    sr.distribution_switches,
                    sr.distribution_switches == 1 ? "" : "es",
                    sr.nodes_lost, sr.nodes_lost == 1 ? "" : "s",
                    sr.coordinator_fallback ? " (coordinator fallback)" : "",
                    sr.cluster_ms);
        return std::move(sr.result);
      }
      return is_select ? db.ExecuteWith(buffer, reopt)
                       : db.ExecuteSqlInTxn(buffer, &session_txn);
    }();
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().ToString().c_str());
    } else if (!r->message.empty()) {
      std::printf("%s\n", r->message.c_str());
    } else {
      PrintRows(*r);
      if (show_report) PrintReport(r->report);
      if (show_trace && is_select)
        std::printf("%s", r->report.trace.Summary().c_str());
    }
    buffer.clear();
  }
  return 0;
}
