#include "parser/statement.h"

#include "parser/lexer.h"
#include "parser/parser.h"

namespace reoptdb {

namespace {

/// Minimal cursor over the token stream (statement-level grammar only).
class Toks {
 public:
  explicit Toks(std::vector<Token> t) : toks_(std::move(t)) {}

  const Token& Peek() const { return toks_[pos_]; }
  const Token& Advance() {
    return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_];
  }
  bool MatchKeyword(const char* kw) {
    if (!Peek().IsKeyword(kw)) return false;
    Advance();
    return true;
  }
  bool Match(TokenType t) {
    if (Peek().type != t) return false;
    Advance();
    return true;
  }
  Status Expect(TokenType t, const char* what) {
    if (Match(t)) return Status::OK();
    return Status::ParseError(std::string("expected ") + what +
                              " at offset " + std::to_string(Peek().pos));
  }
  Status ExpectKeyword(const char* kw) {
    if (MatchKeyword(kw)) return Status::OK();
    return Status::ParseError(std::string("expected ") + kw + " at offset " +
                              std::to_string(Peek().pos));
  }
  Result<std::string> ExpectIdentifier(const char* what) {
    if (Peek().type != TokenType::kIdentifier)
      return Status::ParseError(std::string("expected ") + what +
                                " at offset " + std::to_string(Peek().pos));
    return Advance().text;
  }
  bool AtEnd() {
    Match(TokenType::kSemicolon);
    return Peek().type == TokenType::kEof;
  }

 private:
  std::vector<Token> toks_;
  size_t pos_ = 0;
};

Result<Statement> ParseCreate(Toks* t) {
  if (t->MatchKeyword("TABLE")) {
    CreateTableAst ast;
    ASSIGN_OR_RETURN(ast.table, t->ExpectIdentifier("table name"));
    RETURN_IF_ERROR(t->Expect(TokenType::kLParen, "'('"));
    do {
      Column col;
      ASSIGN_OR_RETURN(col.name, t->ExpectIdentifier("column name"));
      if (t->MatchKeyword("INT")) {
        col.type = ValueType::kInt64;
        col.avg_width = 8;
      } else if (t->MatchKeyword("DOUBLE")) {
        col.type = ValueType::kDouble;
        col.avg_width = 8;
      } else if (t->MatchKeyword("STRING")) {
        col.type = ValueType::kString;
        col.avg_width = 16;
      } else {
        return Status::ParseError("expected column type (INT/DOUBLE/STRING)");
      }
      if (t->MatchKeyword("PRIMARY")) {
        RETURN_IF_ERROR(t->ExpectKeyword("KEY"));
        ast.keys.push_back(col.name);
      }
      ast.columns.push_back(std::move(col));
    } while (t->Match(TokenType::kComma));
    RETURN_IF_ERROR(t->Expect(TokenType::kRParen, "')'"));
    if (!t->AtEnd()) return Status::ParseError("trailing tokens");
    return Statement(std::move(ast));
  }
  if (t->MatchKeyword("INDEX")) {
    CreateIndexAst ast;
    RETURN_IF_ERROR(t->ExpectKeyword("ON"));
    ASSIGN_OR_RETURN(ast.table, t->ExpectIdentifier("table name"));
    RETURN_IF_ERROR(t->Expect(TokenType::kLParen, "'('"));
    ASSIGN_OR_RETURN(ast.column, t->ExpectIdentifier("column name"));
    RETURN_IF_ERROR(t->Expect(TokenType::kRParen, "')'"));
    if (!t->AtEnd()) return Status::ParseError("trailing tokens");
    return Statement(std::move(ast));
  }
  return Status::ParseError("expected TABLE or INDEX after CREATE");
}

Result<Statement> ParseInsert(Toks* t) {
  InsertAst ast;
  RETURN_IF_ERROR(t->ExpectKeyword("INTO"));
  ASSIGN_OR_RETURN(ast.table, t->ExpectIdentifier("table name"));
  RETURN_IF_ERROR(t->ExpectKeyword("VALUES"));
  do {
    RETURN_IF_ERROR(t->Expect(TokenType::kLParen, "'('"));
    std::vector<Value> row;
    do {
      const Token& tok = t->Peek();
      switch (tok.type) {
        case TokenType::kInteger:
          row.push_back(Value(tok.int_value));
          break;
        case TokenType::kFloat:
          row.push_back(Value(tok.float_value));
          break;
        case TokenType::kString:
          row.push_back(Value(tok.text));
          break;
        default:
          return Status::ParseError("expected literal in VALUES at offset " +
                                    std::to_string(tok.pos));
      }
      t->Advance();
    } while (t->Match(TokenType::kComma));
    RETURN_IF_ERROR(t->Expect(TokenType::kRParen, "')'"));
    ast.rows.push_back(std::move(row));
  } while (t->Match(TokenType::kComma));
  if (!t->AtEnd()) return Status::ParseError("trailing tokens");
  return Statement(std::move(ast));
}

Result<Value> ParseLiteral(Toks* t) {
  const Token& tok = t->Peek();
  Value v;
  switch (tok.type) {
    case TokenType::kInteger:
      v = Value(tok.int_value);
      break;
    case TokenType::kFloat:
      v = Value(tok.float_value);
      break;
    case TokenType::kString:
      v = Value(tok.text);
      break;
    default:
      return Status::ParseError("expected literal at offset " +
                                std::to_string(tok.pos));
  }
  t->Advance();
  return v;
}

Result<CmpOp> ParseCmpOp(Toks* t) {
  switch (t->Peek().type) {
    case TokenType::kEq:
      t->Advance();
      return CmpOp::kEq;
    case TokenType::kNe:
      t->Advance();
      return CmpOp::kNe;
    case TokenType::kLt:
      t->Advance();
      return CmpOp::kLt;
    case TokenType::kLe:
      t->Advance();
      return CmpOp::kLe;
    case TokenType::kGt:
      t->Advance();
      return CmpOp::kGt;
    case TokenType::kGe:
      t->Advance();
      return CmpOp::kGe;
    default:
      return Status::ParseError("expected comparison operator at offset " +
                                std::to_string(t->Peek().pos));
  }
}

/// Optional `WHERE col cmp literal (AND ...)*`. DML predicates are
/// deliberately simpler than SELECT's (no BETWEEN, no column-column): a
/// write's row selection must be cheap to re-evaluate under lock retries.
Result<std::vector<PredicateAst>> ParseDmlWhere(Toks* t) {
  std::vector<PredicateAst> preds;
  if (!t->MatchKeyword("WHERE")) return preds;
  do {
    PredicateAst p;
    ColumnRefAst col;
    ASSIGN_OR_RETURN(col.name, t->ExpectIdentifier("column name"));
    p.lhs = std::move(col);
    ASSIGN_OR_RETURN(p.op, ParseCmpOp(t));
    ASSIGN_OR_RETURN(Value lit, ParseLiteral(t));
    p.rhs = std::move(lit);
    preds.push_back(std::move(p));
  } while (t->MatchKeyword("AND"));
  return preds;
}

Result<Statement> ParseUpdate(Toks* t) {
  UpdateAst ast;
  ASSIGN_OR_RETURN(ast.table, t->ExpectIdentifier("table name"));
  RETURN_IF_ERROR(t->ExpectKeyword("SET"));
  do {
    std::string col;
    ASSIGN_OR_RETURN(col, t->ExpectIdentifier("column name"));
    RETURN_IF_ERROR(t->Expect(TokenType::kEq, "'='"));
    ASSIGN_OR_RETURN(Value lit, ParseLiteral(t));
    ast.sets.emplace_back(std::move(col), std::move(lit));
  } while (t->Match(TokenType::kComma));
  ASSIGN_OR_RETURN(ast.where, ParseDmlWhere(t));
  if (!t->AtEnd()) return Status::ParseError("trailing tokens");
  return Statement(std::move(ast));
}

Result<Statement> ParseDelete(Toks* t) {
  DeleteAst ast;
  RETURN_IF_ERROR(t->ExpectKeyword("FROM"));
  ASSIGN_OR_RETURN(ast.table, t->ExpectIdentifier("table name"));
  ASSIGN_OR_RETURN(ast.where, ParseDmlWhere(t));
  if (!t->AtEnd()) return Status::ParseError("trailing tokens");
  return Statement(std::move(ast));
}

}  // namespace

bool IsDmlStatement(const Statement& stmt) {
  return std::holds_alternative<InsertAst>(stmt) ||
         std::holds_alternative<UpdateAst>(stmt) ||
         std::holds_alternative<DeleteAst>(stmt);
}

Result<Statement> ParseStatement(const std::string& sql) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  if (tokens.empty() || tokens[0].type == TokenType::kEof)
    return Status::ParseError("empty statement");

  const Token& first = tokens[0];
  if (first.IsKeyword("SELECT")) {
    ASSIGN_OR_RETURN(SelectStmtAst select, ParseSelect(sql));
    return Statement(std::move(select));
  }
  if (first.IsKeyword("EXPLAIN")) {
    // Re-parse everything after EXPLAIN [ANALYZE] as a SELECT.
    bool analyze = tokens.size() >= 2 && tokens[1].IsKeyword("ANALYZE");
    size_t select_tok = analyze ? 2 : 1;
    if (tokens.size() <= select_tok ||
        tokens[select_tok].type == TokenType::kEof)
      return Status::ParseError("expected SELECT after EXPLAIN");
    std::string rest = sql.substr(tokens[select_tok].pos);
    ASSIGN_OR_RETURN(SelectStmtAst select, ParseSelect(rest));
    return Statement(ExplainAst{std::move(select), analyze});
  }

  Toks t(std::move(tokens));
  if (t.MatchKeyword("CREATE")) return ParseCreate(&t);
  if (t.MatchKeyword("INSERT")) return ParseInsert(&t);
  if (t.MatchKeyword("UPDATE")) return ParseUpdate(&t);
  if (t.MatchKeyword("DELETE")) return ParseDelete(&t);
  if (t.MatchKeyword("BEGIN")) {
    t.MatchKeyword("TRANSACTION");
    if (!t.AtEnd()) return Status::ParseError("trailing tokens");
    return Statement(BeginTxnAst{});
  }
  if (t.MatchKeyword("COMMIT")) {
    if (!t.AtEnd()) return Status::ParseError("trailing tokens");
    return Statement(CommitTxnAst{});
  }
  if (t.MatchKeyword("ROLLBACK")) {
    if (!t.AtEnd()) return Status::ParseError("trailing tokens");
    return Statement(RollbackTxnAst{});
  }
  if (t.MatchKeyword("DROP")) {
    RETURN_IF_ERROR(t.ExpectKeyword("TABLE"));
    DropTableAst ast;
    ASSIGN_OR_RETURN(ast.table, t.ExpectIdentifier("table name"));
    if (!t.AtEnd()) return Status::ParseError("trailing tokens");
    return Statement(std::move(ast));
  }
  if (t.MatchKeyword("ANALYZE")) {
    AnalyzeAst ast;
    ASSIGN_OR_RETURN(ast.table, t.ExpectIdentifier("table name"));
    if (!t.AtEnd()) return Status::ParseError("trailing tokens");
    return Statement(std::move(ast));
  }
  return Status::ParseError("unrecognized statement at offset " +
                            std::to_string(first.pos));
}

}  // namespace reoptdb
