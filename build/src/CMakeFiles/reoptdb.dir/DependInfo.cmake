
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/reoptdb.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/column_stats.cc" "src/CMakeFiles/reoptdb.dir/catalog/column_stats.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/catalog/column_stats.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/reoptdb.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/reoptdb.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/reoptdb.dir/common/status.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/common/status.cc.o.d"
  "/root/repo/src/engine/database.cc" "src/CMakeFiles/reoptdb.dir/engine/database.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/engine/database.cc.o.d"
  "/root/repo/src/exec/exec_context.cc" "src/CMakeFiles/reoptdb.dir/exec/exec_context.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/exec/exec_context.cc.o.d"
  "/root/repo/src/exec/expression.cc" "src/CMakeFiles/reoptdb.dir/exec/expression.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/exec/expression.cc.o.d"
  "/root/repo/src/exec/hash_aggregate.cc" "src/CMakeFiles/reoptdb.dir/exec/hash_aggregate.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/exec/hash_aggregate.cc.o.d"
  "/root/repo/src/exec/hash_join.cc" "src/CMakeFiles/reoptdb.dir/exec/hash_join.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/exec/hash_join.cc.o.d"
  "/root/repo/src/exec/index_nl_join.cc" "src/CMakeFiles/reoptdb.dir/exec/index_nl_join.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/exec/index_nl_join.cc.o.d"
  "/root/repo/src/exec/index_scan.cc" "src/CMakeFiles/reoptdb.dir/exec/index_scan.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/exec/index_scan.cc.o.d"
  "/root/repo/src/exec/merge_join.cc" "src/CMakeFiles/reoptdb.dir/exec/merge_join.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/exec/merge_join.cc.o.d"
  "/root/repo/src/exec/operator_factory.cc" "src/CMakeFiles/reoptdb.dir/exec/operator_factory.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/exec/operator_factory.cc.o.d"
  "/root/repo/src/exec/scheduler.cc" "src/CMakeFiles/reoptdb.dir/exec/scheduler.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/exec/scheduler.cc.o.d"
  "/root/repo/src/exec/seq_scan.cc" "src/CMakeFiles/reoptdb.dir/exec/seq_scan.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/exec/seq_scan.cc.o.d"
  "/root/repo/src/exec/sort_op.cc" "src/CMakeFiles/reoptdb.dir/exec/sort_op.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/exec/sort_op.cc.o.d"
  "/root/repo/src/exec/stats_collector_op.cc" "src/CMakeFiles/reoptdb.dir/exec/stats_collector_op.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/exec/stats_collector_op.cc.o.d"
  "/root/repo/src/memory/memory_manager.cc" "src/CMakeFiles/reoptdb.dir/memory/memory_manager.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/memory/memory_manager.cc.o.d"
  "/root/repo/src/obs/json.cc" "src/CMakeFiles/reoptdb.dir/obs/json.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/obs/json.cc.o.d"
  "/root/repo/src/obs/query_trace.cc" "src/CMakeFiles/reoptdb.dir/obs/query_trace.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/obs/query_trace.cc.o.d"
  "/root/repo/src/optimizer/calibration.cc" "src/CMakeFiles/reoptdb.dir/optimizer/calibration.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/optimizer/calibration.cc.o.d"
  "/root/repo/src/optimizer/cost_model.cc" "src/CMakeFiles/reoptdb.dir/optimizer/cost_model.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/optimizer/cost_model.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/CMakeFiles/reoptdb.dir/optimizer/optimizer.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/optimizer/optimizer.cc.o.d"
  "/root/repo/src/optimizer/parametric.cc" "src/CMakeFiles/reoptdb.dir/optimizer/parametric.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/optimizer/parametric.cc.o.d"
  "/root/repo/src/optimizer/remainder_sql.cc" "src/CMakeFiles/reoptdb.dir/optimizer/remainder_sql.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/optimizer/remainder_sql.cc.o.d"
  "/root/repo/src/optimizer/selectivity.cc" "src/CMakeFiles/reoptdb.dir/optimizer/selectivity.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/optimizer/selectivity.cc.o.d"
  "/root/repo/src/parser/binder.cc" "src/CMakeFiles/reoptdb.dir/parser/binder.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/parser/binder.cc.o.d"
  "/root/repo/src/parser/lexer.cc" "src/CMakeFiles/reoptdb.dir/parser/lexer.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/parser/lexer.cc.o.d"
  "/root/repo/src/parser/parser.cc" "src/CMakeFiles/reoptdb.dir/parser/parser.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/parser/parser.cc.o.d"
  "/root/repo/src/parser/statement.cc" "src/CMakeFiles/reoptdb.dir/parser/statement.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/parser/statement.cc.o.d"
  "/root/repo/src/plan/physical_plan.cc" "src/CMakeFiles/reoptdb.dir/plan/physical_plan.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/plan/physical_plan.cc.o.d"
  "/root/repo/src/plan/query_spec.cc" "src/CMakeFiles/reoptdb.dir/plan/query_spec.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/plan/query_spec.cc.o.d"
  "/root/repo/src/reopt/controller.cc" "src/CMakeFiles/reoptdb.dir/reopt/controller.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/reopt/controller.cc.o.d"
  "/root/repo/src/reopt/inaccuracy.cc" "src/CMakeFiles/reoptdb.dir/reopt/inaccuracy.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/reopt/inaccuracy.cc.o.d"
  "/root/repo/src/reopt/scia.cc" "src/CMakeFiles/reoptdb.dir/reopt/scia.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/reopt/scia.cc.o.d"
  "/root/repo/src/stats/fm_sketch.cc" "src/CMakeFiles/reoptdb.dir/stats/fm_sketch.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/stats/fm_sketch.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/reoptdb.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/zipf.cc" "src/CMakeFiles/reoptdb.dir/stats/zipf.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/stats/zipf.cc.o.d"
  "/root/repo/src/storage/btree.cc" "src/CMakeFiles/reoptdb.dir/storage/btree.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/storage/btree.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/reoptdb.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/disk_manager.cc" "src/CMakeFiles/reoptdb.dir/storage/disk_manager.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/storage/disk_manager.cc.o.d"
  "/root/repo/src/storage/heap_file.cc" "src/CMakeFiles/reoptdb.dir/storage/heap_file.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/storage/heap_file.cc.o.d"
  "/root/repo/src/tpcd/dbgen.cc" "src/CMakeFiles/reoptdb.dir/tpcd/dbgen.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/tpcd/dbgen.cc.o.d"
  "/root/repo/src/tpcd/queries.cc" "src/CMakeFiles/reoptdb.dir/tpcd/queries.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/tpcd/queries.cc.o.d"
  "/root/repo/src/types/schema.cc" "src/CMakeFiles/reoptdb.dir/types/schema.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/types/schema.cc.o.d"
  "/root/repo/src/types/tuple.cc" "src/CMakeFiles/reoptdb.dir/types/tuple.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/types/tuple.cc.o.d"
  "/root/repo/src/types/value.cc" "src/CMakeFiles/reoptdb.dir/types/value.cc.o" "gcc" "src/CMakeFiles/reoptdb.dir/types/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
