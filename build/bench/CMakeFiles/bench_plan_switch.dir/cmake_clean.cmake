file(REMOVE_RECURSE
  "CMakeFiles/bench_plan_switch.dir/bench_plan_switch.cpp.o"
  "CMakeFiles/bench_plan_switch.dir/bench_plan_switch.cpp.o.d"
  "bench_plan_switch"
  "bench_plan_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_plan_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
