#include "common/status.h"

namespace reoptdb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kLockWait:
      return "LockWait";
    case StatusCode::kCrashed:
      return "Crashed";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  if (!msg_.empty()) {
    s += ": ";
    s += msg_;
  }
  return s;
}

}  // namespace reoptdb
