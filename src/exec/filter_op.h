// Standalone filter operator (the optimizer pushes predicates into scans;
// this operator exists for plans built by hand and for tests).

#ifndef REOPTDB_EXEC_FILTER_OP_H_
#define REOPTDB_EXEC_FILTER_OP_H_

#include "exec/expression.h"
#include "exec/operator.h"

namespace reoptdb {

/// \brief Streams child tuples that satisfy the node's predicates.
class FilterOp : public Operator {
 public:
  FilterOp(ExecContext* ctx, PlanNode* node) : Operator(ctx, node) {}

  Status OpenImpl() override {
    RETURN_IF_ERROR(OpenChildren());
    ASSIGN_OR_RETURN(preds_,
                     CompilePreds(node_->filters, child(0)->OutputSchema()));
    return Status::OK();
  }

  Result<bool> NextImpl(Tuple* out) override {
    while (true) {
      ASSIGN_OR_RETURN(bool more, child(0)->Next(out));
      if (!more) return false;
      ctx_->ChargeTuples(1);
      if (EvalAll(preds_, *out)) return true;
    }
  }

  Status CloseImpl() override { return CloseChildren(); }

 private:
  std::vector<CompiledPred> preds_;
};

}  // namespace reoptdb

#endif  // REOPTDB_EXEC_FILTER_OP_H_
