// Tests for the structured observability layer: the minimal JSON model,
// QueryTrace JSON round-trips (unit-level and for a real TPC-D execution
// under full Dynamic Re-Optimization), and the rendered-event views.

#include "gtest/gtest.h"
#include "obs/json.h"
#include "obs/query_trace.h"
#include "reopt/controller.h"
#include "engine/database.h"
#include "test_util.h"
#include "tpcd/dbgen.h"
#include "tpcd/queries.h"

namespace reoptdb {
namespace {

using obs::JsonValue;
using obs::ParseJson;

TEST(JsonTest, SerializeScalars) {
  EXPECT_EQ(JsonValue().Serialize(), "null");
  EXPECT_EQ(JsonValue::MakeBool(true).Serialize(), "true");
  EXPECT_EQ(JsonValue::MakeBool(false).Serialize(), "false");
  EXPECT_EQ(JsonValue::MakeNumber(0).Serialize(), "0");
  EXPECT_EQ(JsonValue::MakeNumber(-3).Serialize(), "-3");
  EXPECT_EQ(JsonValue::MakeNumber(2.5).Serialize(), "2.5");
  EXPECT_EQ(JsonValue::MakeString("hi").Serialize(), "\"hi\"");
}

TEST(JsonTest, StringEscapes) {
  JsonValue s = JsonValue::MakeString("a\"b\\c\nd\te");
  EXPECT_EQ(s.Serialize(), "\"a\\\"b\\\\c\\nd\\te\"");
  Result<JsonValue> back = ParseJson(s.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->AsString(), "a\"b\\c\nd\te");
}

TEST(JsonTest, ObjectsKeepInsertionOrder) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("z", JsonValue::MakeNumber(1));
  obj.Set("a", JsonValue::MakeNumber(2));
  EXPECT_EQ(obj.Serialize(), "{\"z\":1,\"a\":2}");
  // Replacing a member keeps its slot.
  obj.Set("z", JsonValue::MakeNumber(9));
  EXPECT_EQ(obj.Serialize(), "{\"z\":9,\"a\":2}");
}

TEST(JsonTest, ParseNested) {
  const std::string text =
      "{\"a\":[1,2.5,{\"b\":true},null],\"c\":\"x\"} ";
  Result<JsonValue> v = ParseJson(text);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items().size(), 4u);
  EXPECT_DOUBLE_EQ(a->items()[1].AsNumber(), 2.5);
  EXPECT_TRUE(a->items()[2].Find("b")->AsBool());
  EXPECT_TRUE(a->items()[3].is_null());
  EXPECT_EQ(v->Find("c")->AsString(), "x");
}

TEST(JsonTest, ParseRejectsMalformed) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2",
        "{\"a\":1,}", "[1]]", "nul"}) {
    EXPECT_FALSE(ParseJson(bad).ok()) << bad;
  }
}

TEST(JsonTest, NumbersRoundTripExactly) {
  for (double d : {0.0, 1.0, -1.5, 0.05, 1e-9, 123456789.25, 3.141592653589793,
                   1e300}) {
    std::string s = JsonValue::MakeNumber(d).Serialize();
    Result<JsonValue> back = ParseJson(s);
    ASSERT_TRUE(back.ok()) << s;
    EXPECT_EQ(back->AsNumber(), d) << s;
  }
}

TEST(QueryTraceTest, EmptyTraceRoundTrips) {
  QueryTrace trace;
  trace.config.mode = "off";
  const std::string json = trace.ToJson();
  Result<QueryTrace> back = QueryTrace::FromJson(json);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->ToJson(), json);
  EXPECT_EQ(back->config.mode, "off");
}

TEST(QueryTraceTest, PopulatedTraceRoundTripsLosslessly) {
  QueryTrace trace;
  trace.config.mode = "full";
  trace.config.mu = 0.05;
  trace.config.theta1 = 0.05;
  trace.config.theta2 = 0.2;
  trace.config.mid_execution_memory = true;

  OperatorSpan* span = trace.NewSpan();
  span->plan_generation = 1;
  span->node_id = 7;
  span->op = "HashJoin";
  span->detail = "lineitem [l]";
  span->open_at_ms = 1.25;
  span->close_at_ms = 99.5;
  span->blocking_ms = 40.125;
  span->next_ms = 58.0625;
  span->next_calls = 1001;
  span->rows = 1000;
  span->page_ios = 321;

  trace.eq2_checks.push_back(Eq2Check{3, 120.5, 80.25, 0.5015, 0.2, true});
  trace.eq1_checks.push_back(Eq1Check{3, 2.5, 100.0, 0.05, true});
  trace.switches.push_back(SwitchDecision{3, 100.0, 60.5, true, "__temp1", 42});
  trace.memory_reallocations.push_back(
      MemoryReallocation{5, false, 200.0, 150.5, true});
  trace.budget_changes.push_back(BudgetChange{0, 4, 12.5, 8, 64});

  const std::string json = trace.ToJson();
  Result<QueryTrace> back = QueryTrace::FromJson(json);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  // Canonical serialization makes string equality a lossless-ness proof.
  EXPECT_EQ(back->ToJson(), json);

  ASSERT_EQ(back->spans.size(), 1u);
  EXPECT_EQ(back->spans[0].plan_generation, 1);
  EXPECT_EQ(back->spans[0].op, "HashJoin");
  EXPECT_EQ(back->spans[0].next_calls, 1001u);
  ASSERT_EQ(back->switches.size(), 1u);
  EXPECT_EQ(back->switches[0].temp_table, "__temp1");
  EXPECT_EQ(back->switches[0].mat_rows, 42u);
  ASSERT_EQ(back->eq2_checks.size(), 1u);
  EXPECT_TRUE(back->eq2_checks[0].fired);
  ASSERT_EQ(back->budget_changes.size(), 1u);
  EXPECT_DOUBLE_EQ(back->budget_changes[0].after_pages, 64);
}

TEST(QueryTraceTest, FromJsonRejectsGarbage) {
  EXPECT_FALSE(QueryTrace::FromJson("not json").ok());
  EXPECT_FALSE(QueryTrace::FromJson("[]").ok());
  EXPECT_FALSE(QueryTrace::FromJson("{\"spans\":{}}").ok());
}

TEST(QueryTraceTest, RenderedViewsMatchLegacyPhrasing) {
  MemoryReallocation mid;
  mid.trigger_node_id = 9;
  mid.mid_execution = true;
  EXPECT_EQ(Render(mid), "mid-execution memory response after collector 9");

  SwitchDecision rejected;
  rejected.stage_node_id = 2;
  rejected.rem_cur = 10;
  rejected.rem_new = 20;
  EXPECT_NE(Render(rejected).find("rejected"), std::string::npos);

  Eq2Check fired;
  fired.stage_node_id = 4;
  fired.fired = true;
  EXPECT_NE(Render(fired).find("eq2 check after stage 4"), std::string::npos);
}

TEST(QueryTraceTest, SummaryAndCompactJsonRender) {
  QueryTrace trace;
  OperatorSpan* span = trace.NewSpan();
  span->node_id = 1;
  span->op = "SeqScan";
  span->rows = 10;
  std::string summary = trace.Summary();
  EXPECT_NE(summary.find("SeqScan"), std::string::npos);
  Result<JsonValue> compact = ParseJson(trace.CompactSummaryJson());
  ASSERT_TRUE(compact.ok()) << compact.status().ToString();
}

TEST(QueryTraceTest, TpcdFullModeTraceRoundTrips) {
  // The acceptance scenario: a real TPC-D query under ReoptMode::kFull
  // populates the trace, and the trace survives a JSON round trip.
  DatabaseOptions opts;
  opts.buffer_pool_pages = 128;
  opts.query_mem_pages = 48;
  Database db(opts);
  tpcd::TpcdOptions gen;
  gen.scale_factor = 0.003;
  gen.update_fraction = 1.0;  // stale catalog: collectors will disagree
  ASSERT_TRUE(tpcd::Load(&db, gen).ok());

  ReoptOptions full;  // paper defaults
  Result<QueryResult> r = db.ExecuteWith(tpcd::Q5Sql(), full);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const QueryTrace& trace = r.value().report.trace;

  EXPECT_EQ(trace.config.mode, "full");
  EXPECT_FALSE(trace.spans.empty());
  uint64_t scan_rows = 0;
  for (const OperatorSpan& s : trace.spans)
    if (s.op == "SeqScan") scan_rows += s.rows;
  EXPECT_GT(scan_rows, 0u);

  const std::string json = trace.ToJson();
  Result<QueryTrace> back = QueryTrace::FromJson(json);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->ToJson(), json);
  EXPECT_EQ(back->spans.size(), trace.spans.size());
  EXPECT_EQ(back->eq2_checks.size(), trace.eq2_checks.size());
  EXPECT_EQ(back->budget_changes.size(), trace.budget_changes.size());
}

}  // namespace
}  // namespace reoptdb
