// Status / Result error-handling primitives for reoptdb.
//
// The library does not throw exceptions: every fallible operation returns a
// Status (or a Result<T> when it also produces a value), in the style of
// RocksDB and Arrow.

#ifndef REOPTDB_COMMON_STATUS_H_
#define REOPTDB_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace reoptdb {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIoError,
  kResourceExhausted,
  kNotSupported,
  kInternal,
  kParseError,
  kBindError,
  kCancelled,
  /// A lock request conflicts with a lock held by another live transaction.
  /// Retryable: the wait is registered with the LockManager; re-issuing the
  /// statement re-attempts the acquisition (and accrues lock-wait time
  /// against the timeout).
  kLockWait,
  /// Simulated process death (fault injection): the query terminates
  /// immediately; durable state (journal, flushed temp pages) survives and
  /// the RecoveryManager resumes or re-runs on "restart".
  kCrashed,
  /// Stored bytes failed their integrity check and a re-read confirmed the
  /// damage is on the media, not the wire: retrying cannot help. Callers
  /// must repair from a redundant copy (replica, coordinator) or fail.
  kDataLoss,
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// \brief Outcome of a fallible operation.
///
/// A Status is either OK or carries a code plus a message. It is cheap to
/// copy in the OK case and must be checked by the caller (callers typically
/// use the RETURN_IF_ERROR macro).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Crashed(std::string msg) {
    return Status(StatusCode::kCrashed, std::move(msg));
  }
  static Status LockWait(std::string msg) {
    return Status(StatusCode::kLockWait, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Either a value of type T or an error Status.
///
/// Equivalent to arrow::Result / absl::StatusOr. Access the value only after
/// checking ok(); ValueOrDie() asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : v_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error Status.
  Result(Status status) : v_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(v_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status ok_status;
    return ok() ? ok_status : std::get<Status>(v_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(v_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> v_;
};

// Propagates a non-OK Status to the caller.
#define RETURN_IF_ERROR(expr)             \
  do {                                    \
    ::reoptdb::Status _st = (expr);       \
    if (!_st.ok()) return _st;            \
  } while (0)

#define REOPTDB_CONCAT_INNER(a, b) a##b
#define REOPTDB_CONCAT(a, b) REOPTDB_CONCAT_INNER(a, b)

// Evaluates `rexpr` (a Result<T>), propagating errors; on success assigns the
// value to `lhs` (which may include a declaration).
#define ASSIGN_OR_RETURN(lhs, rexpr)                                   \
  ASSIGN_OR_RETURN_IMPL(REOPTDB_CONCAT(_res_, __LINE__), lhs, rexpr)
#define ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                          \
  if (!tmp.ok()) return tmp.status();          \
  lhs = std::move(tmp).value();

}  // namespace reoptdb

#endif  // REOPTDB_COMMON_STATUS_H_
