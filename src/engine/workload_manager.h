// WorkloadManager: overload-robust multi-query execution.
//
// Runs N concurrent query sessions multiplexed over one Database — its
// shared DiskManager, buffer pool, and a global memory budget brokered by
// the MemoryBroker. Everything is cooperative on the simulated clock: no
// OS threads; the scheduler's stage boundaries are the yield points, and
// each QuerySession::Step() runs exactly one stage. Three layers:
//
//   1. Admission control — a bounded FIFO queue in front of a global
//      memory / active-query budget. Overflow and infeasible asks are
//      rejected with a typed AdmissionReject record; time spent queued
//      counts against the query's ReoptOptions::deadline_ms.
//   2. Revocable grants — the broker may shave the un-started portion of
//      an admitted query's grant (largest-first, mirroring the
//      MemoryManager's pass-1 shave) to admit the next query; the victim
//      is notified and re-divides what remains.
//   3. Spill-under-pressure — operators whose budget shrank mid-flight
//      degrade to partitioned execution (SpillEvent records) instead of
//      overrunning the revoked grant; the controller suppresses
//      revocation-only re-optimization (Eq2Check::revocation_only).

#ifndef REOPTDB_ENGINE_WORKLOAD_MANAGER_H_
#define REOPTDB_ENGINE_WORKLOAD_MANAGER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/database.h"
#include "memory/memory_broker.h"

namespace reoptdb {

/// Workload-level knobs. Defaults of 0 inherit from the Database.
struct WorkloadOptions {
  /// Global page budget divided among concurrent queries. 0 = the
  /// Database's query_mem_pages (i.e. one solo query's worth — any
  /// concurrency then contends).
  double global_mem_pages = 0;
  /// Pages each query asks the broker for. 0 = global_mem_pages, i.e.
  /// every query asks for everything and concurrency runs on revocation.
  double per_query_mem_pages = 0;
  /// Admission floor: a query is not admitted below this grant.
  double min_grant_pages = 8;
  /// Maximum concurrently executing queries.
  int max_active = 4;
  /// Maximum queued (admitted-pending) queries; overflow is rejected.
  size_t max_queue = 8;
  /// Aging/anti-starvation: how many times younger queries may be admitted
  /// past a stuck queue head before admission turns strictly FIFO (the
  /// head then drains the budget it needs). 0 = always strict FIFO.
  int max_head_skips = 4;
  /// Re-optimization configuration for every workload query (deadline_ms
  /// covers queued time too).
  ReoptOptions reopt;
};

/// Per-submission overrides. Defaults inherit from WorkloadOptions.
struct SubmitOptions {
  /// Simulated arrival time: the query enters the admission queue once the
  /// workload clock reaches this (0 = queued immediately at Submit()).
  double arrival_ms = 0;
  /// Broker ask for this query; 0 = WorkloadOptions::per_query_mem_pages.
  double ask_pages = 0;
  /// Admission floor for this query; 0 = WorkloadOptions::min_grant_pages.
  double min_grant_pages = 0;
  /// Re-optimization options for this query (its deadline_ms covers queued
  /// time); nullopt = WorkloadOptions::reopt.
  std::optional<ReoptOptions> reopt;
};

/// Terminal state of one submitted query.
struct WorkloadQueryResult {
  uint64_t query_id = 0;
  std::string sql;
  /// OK = completed; kResourceExhausted = rejected by admission control;
  /// kCancelled = deadline (queued or running); other codes = execution
  /// error.
  Status status = Status::OK();
  /// Valid when status.ok(): rows, schema and the full ExecutionReport
  /// (its trace carries this query's SpillEvents and RevocationEvents).
  QueryResult result;
  double submitted_ms = 0;
  double started_ms = 0;   ///< admission time; 0 if never admitted
  double finished_ms = 0;
  double granted_pages = 0;  ///< broker grant at admission; 0 if rejected
};

/// \brief Cooperative multi-query scheduler over one Database.
///
/// Usage: Submit() any number of statements, then Run() to completion.
/// Single-threaded and deterministic: sessions are stepped round-robin in
/// admission order, and all time is simulated.
class WorkloadManager {
 public:
  WorkloadManager(Database* db, WorkloadOptions opts);
  ~WorkloadManager();

  WorkloadManager(const WorkloadManager&) = delete;
  WorkloadManager& operator=(const WorkloadManager&) = delete;

  /// Enqueues a SELECT or DML statement for execution and returns its
  /// workload query id. DML runs as an autocommit transaction under the
  /// lock manager: lock waits yield to other sessions each round and
  /// count against deadline_ms; statements finishing in the same round
  /// commit together (group commit, one WAL fsync).
  /// A full queue rejects immediately (typed AdmissionReject, reason
  /// "queue_full"); the rejection surfaces in Run()'s results, not here.
  /// Future arrival_ms defers the queue-entry (and its capacity check)
  /// until the workload clock reaches it.
  uint64_t Submit(std::string sql, SubmitOptions sub = SubmitOptions{});

  /// Runs every submitted query to a terminal state and returns results
  /// in submission order. Queries admitted mid-run interleave with the
  /// ones already executing.
  Result<std::vector<WorkloadQueryResult>> Run();

  /// Simulated workload clock: total simulated ms executed so far across
  /// all sessions (admissions, steps, and optimizer invocations).
  double now_ms() const { return now_ms_; }

  /// Admission rejections and cancellations, in order.
  const std::vector<AdmissionReject>& rejections() const {
    return rejections_;
  }

  /// The broker (grant and revocation state).
  const MemoryBroker& broker() const { return broker_; }

 private:
  struct QueryRun;
  class SessionGrantHolder;

  /// Applies the feasibility and queue-capacity checks and either queues q
  /// or records the typed rejection.
  void EnqueueOne(QueryRun* q);
  /// Moves submitted-but-not-yet-arrived queries whose arrival_ms has
  /// passed into the admission queue (applying the capacity check).
  void EnqueueArrivals();
  /// Admits queued queries while budget and slots allow, honoring the
  /// head-skip bound. Returns true if at least one query was admitted.
  bool AdmitPending();
  /// Parses, registers with the broker, and starts q's session. A
  /// non-kResourceExhausted failure marks q terminally failed.
  Status AdmitOne(QueryRun* q);
  /// One round of a DML run: attempts the statement once. True = ready to
  /// commit; false = blocked on a lock (wait charged); error = terminal.
  Result<bool> StepDml(QueryRun* q);
  /// Cancels queued queries whose deadline elapsed while waiting.
  void CancelExpiredQueued();
  void FinishQuery(QueryRun* q, Status status);
  void RecordRejection(QueryRun* q, const char* reason, Status status);

  Database* db_;
  WorkloadOptions opts_;
  MemoryBroker broker_;
  double now_ms_ = 0;
  uint64_t next_id_ = 1;
  int head_skips_ = 0;

  std::map<uint64_t, std::unique_ptr<QueryRun>> queries_;
  std::deque<uint64_t> arrivals_;  ///< submitted, arrival_ms in the future
  std::deque<uint64_t> queued_;
  std::vector<uint64_t> running_;  ///< admission order = step order
  std::vector<AdmissionReject> rejections_;
};

}  // namespace reoptdb

#endif  // REOPTDB_ENGINE_WORKLOAD_MANAGER_H_
