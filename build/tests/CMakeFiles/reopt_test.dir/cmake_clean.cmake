file(REMOVE_RECURSE
  "CMakeFiles/reopt_test.dir/reopt_test.cc.o"
  "CMakeFiles/reopt_test.dir/reopt_test.cc.o.d"
  "reopt_test"
  "reopt_test.pdb"
  "reopt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reopt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
