// Hybrid hash join with Grace-style partition overflow.
//
// The build side (child 0 — the paper's "left input") is consumed in the
// blocking phase. If it fits the operator's memory budget, the join runs in
// one pass; otherwise both inputs are partitioned to temp files and joined
// partition-by-partition, recursively re-partitioning build partitions that
// still exceed the budget. An *under-estimated* build side therefore causes
// a mid-build spill and an extra read+write of both inputs — the exact
// failure mode the paper's Fig. 3 memory re-allocation example corrects.

#ifndef REOPTDB_EXEC_HASH_JOIN_H_
#define REOPTDB_EXEC_HASH_JOIN_H_

#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>

#include "exec/operator.h"
#include "storage/heap_file.h"

namespace reoptdb {

/// \brief Hybrid hash join operator.
class HashJoinOp : public Operator {
 public:
  HashJoinOp(ExecContext* ctx, PlanNode* node) : Operator(ctx, node) {}

  Status OpenImpl() override;
  Status BlockingPhaseImpl() override;
  Result<bool> NextImpl(Tuple* out) override;
  Result<bool> NextBatchImpl(TupleBatch* out) override;
  Status CloseImpl() override;

  /// Number of partitioning passes performed (0 = pure in-memory).
  int passes() const { return passes_; }

 private:
  struct PartitionPair {
    std::unique_ptr<HeapFile> build;
    std::unique_ptr<HeapFile> probe;
    int depth = 0;
  };

  uint64_t BuildHash(const Tuple& t, int depth) const;
  uint64_t ProbeHash(const Tuple& t, int depth) const;

  /// Moves the in-memory build rows into fresh partitions (spill).
  Status SpillBuild();

  /// Loads the next pending partition's build side into the in-memory
  /// table, re-partitioning if it still exceeds the budget. Returns false
  /// when no partitions remain.
  Result<bool> LoadNextPartition();

  /// Inserts one build row into the in-memory table.
  void InsertBuildRow(Tuple row);

  /// Records a typed SpillEvent in the query trace (the AddEvent string
  /// next to each call site is the human-readable rendering kept for
  /// compatibility) and checks the exec.spill injection point.
  Status RecordSpill(const char* reason, int partitions);

  std::vector<size_t> build_keys_, probe_keys_;
  double budget_bytes_ = 0;
  /// Budget seen at Open; a smaller budget later means the grant shrank
  /// mid-flight (broker revocation), which attributes the spill reason.
  double open_budget_bytes_ = 0;
  size_t fanout_ = 8;
  bool built_ = false;
  int passes_ = 0;

  // In-memory hash table over the (current) build rows.
  std::vector<Tuple> build_rows_;
  std::unordered_multimap<uint64_t, size_t> table_;
  double mem_bytes_ = 0;
  bool in_memory_ = true;

  // Partitioned mode.
  std::vector<std::unique_ptr<HeapFile>> build_parts_;
  std::vector<std::unique_ptr<HeapFile>> probe_parts_;
  bool probe_partitioned_ = false;
  std::deque<PartitionPair> pending_;
  std::optional<HeapFile::Iterator> part_probe_it_;
  std::unique_ptr<HeapFile> current_build_file_, current_probe_file_;
  int current_depth_ = 0;

  // Probe state (row mode).
  Tuple probe_row_;
  std::vector<size_t> matches_;
  size_t match_pos_ = 0;
  bool have_probe_row_ = false;

  // Probe state (batch mode, in-memory joins only). cur_probe_ points into
  // probe_batch_, whose slot storage is stable until the next refill — and a
  // refill only happens once the current row's matches are drained.
  std::unique_ptr<TupleBatch> probe_batch_;
  size_t probe_pos_ = 0;
  bool probe_done_ = false;
  const Tuple* cur_probe_ = nullptr;
};

}  // namespace reoptdb

#endif  // REOPTDB_EXEC_HASH_JOIN_H_
