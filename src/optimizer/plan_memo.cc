#include "optimizer/plan_memo.h"

#include <utility>

namespace reoptdb {

MemoEntry MemoEntry::Clone() const {
  MemoEntry copy;
  copy.plan = plan ? plan->Clone() : nullptr;
  copy.stats = stats;
  copy.cost = cost;
  return copy;
}

std::unique_ptr<PlanMemo> PlanMemo::Clone() const {
  auto copy = std::make_unique<PlanMemo>();
  for (const auto& [mask, entry] : entries) {
    copy->entries.emplace(mask, entry.Clone());
  }
  copy->leaf_raw = leaf_raw;
  copy->rel_snapshots = rel_snapshots;
  copy->feedback_generation = feedback_generation;
  return copy;
}

namespace {

bool HistogramsEqual(const Histogram& a, const Histogram& b) {
  if (a.kind() != b.kind()) return false;
  if (a.total_count() != b.total_count()) return false;
  if (a.min() != b.min() || a.max() != b.max()) return false;
  const auto& ba = a.buckets();
  const auto& bb = b.buckets();
  if (ba.size() != bb.size()) return false;
  for (size_t i = 0; i < ba.size(); ++i) {
    if (ba[i].lo != bb[i].lo || ba[i].hi != bb[i].hi ||
        ba[i].count != bb[i].count || ba[i].distinct != bb[i].distinct) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool ColumnStatsEqual(const ColumnStats& a, const ColumnStats& b) {
  return a.type == b.type && a.has_bounds == b.has_bounds && a.min == b.min &&
         a.max == b.max && a.distinct == b.distinct &&
         a.distinct_is_lower_bound == b.distinct_is_lower_bound &&
         a.avg_width == b.avg_width && HistogramsEqual(a.histogram, b.histogram);
}

bool StatsEqual(const DerivedRel& a, const DerivedRel& b) {
  if (a.rows != b.rows || a.avg_tuple_bytes != b.avg_tuple_bytes) return false;
  if (a.rels != b.rels) return false;
  if (a.cols.size() != b.cols.size()) return false;
  auto it_a = a.cols.begin();
  auto it_b = b.cols.begin();
  for (; it_a != a.cols.end(); ++it_a, ++it_b) {
    if (it_a->first != it_b->first) return false;
    if (!ColumnStatsEqual(it_a->second, it_b->second)) return false;
  }
  return true;
}

std::unique_ptr<PlanMemo> TranslateMemoForRemainder(
    PlanMemo memo, const QuerySpec& original, const std::set<int>& covered) {
  auto out = std::make_unique<PlanMemo>();
  out->feedback_generation = memo.feedback_generation;

  // Ordinal remap matching BuildRemainderSpec: the temp table is relation 0;
  // uncovered relations keep their relative order starting at 1.
  const int n = static_cast<int>(original.relations.size());
  std::vector<int> remap(n, -1);
  int next = 1;
  for (int r = 0; r < n; ++r) {
    if (covered.count(r) == 0) remap[r] = next++;
  }
  uint32_t covered_bits = 0;
  for (int r : covered) {
    if (r >= 0 && r < n) covered_bits |= 1u << r;
  }

  // Relation 0 (the temp leaf) intentionally has no snapshot and no leaf
  // stats: RepairPlan treats it as dirty, which is exactly right — it is a
  // brand-new exact-cardinality leaf the retained memo has never seen.
  out->rel_snapshots.resize(static_cast<size_t>(next));
  for (int r = 0; r < n; ++r) {
    if (remap[r] < 0) continue;
    if (static_cast<size_t>(r) < memo.rel_snapshots.size()) {
      out->rel_snapshots[static_cast<size_t>(remap[r])] =
          memo.rel_snapshots[static_cast<size_t>(r)];
    }
  }

  auto remap_rels = [&](const std::set<int>& rels) {
    std::set<int> mapped;
    for (int r : rels) {
      if (r >= 0 && r < n && remap[r] >= 0) mapped.insert(remap[r]);
    }
    return mapped;
  };

  for (auto& [r, raw] : memo.leaf_raw) {
    if (r < 0 || r >= n || remap[r] < 0) continue;
    DerivedRel mapped = std::move(raw);
    mapped.rels = remap_rels(mapped.rels);
    out->leaf_raw.emplace(remap[r], std::move(mapped));
  }

  for (auto& [mask, entry] : memo.entries) {
    if ((mask & covered_bits) != 0) continue;  // subsumed by the temp table
    if (mask >= (1u << n)) continue;           // defensive: foreign ordinal
    uint32_t new_mask = 0;
    for (int r = 0; r < n; ++r) {
      if ((mask & (1u << r)) != 0) new_mask |= 1u << remap[r];
    }
    MemoEntry moved = std::move(entry);
    moved.stats.rels = remap_rels(moved.stats.rels);
    if (moved.plan) {
      moved.plan->PostOrder([&](PlanNode* node) {
        node->covers = remap_rels(node->covers);
      });
    }
    out->entries.emplace(new_mask, std::move(moved));
  }
  return out;
}

}  // namespace reoptdb
