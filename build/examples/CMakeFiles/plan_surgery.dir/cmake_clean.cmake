file(REMOVE_RECURSE
  "CMakeFiles/plan_surgery.dir/plan_surgery.cpp.o"
  "CMakeFiles/plan_surgery.dir/plan_surgery.cpp.o.d"
  "plan_surgery"
  "plan_surgery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_surgery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
