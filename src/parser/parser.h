// Recursive-descent parser for the SQL subset.

#ifndef REOPTDB_PARSER_PARSER_H_
#define REOPTDB_PARSER_PARSER_H_

#include <string>

#include "common/status.h"
#include "parser/ast.h"

namespace reoptdb {

/// Parses one SELECT statement.
Result<SelectStmtAst> ParseSelect(const std::string& sql);

}  // namespace reoptdb

#endif  // REOPTDB_PARSER_PARSER_H_
