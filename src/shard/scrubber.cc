#include "shard/scrubber.h"

#include <algorithm>
#include <map>
#include <set>

#include "shard/replica_manager.h"

namespace reoptdb {

namespace {

/// Trailing append-ordinal column of a partition/replica row.
uint64_t OrdinalOf(const Tuple& row) {
  return static_cast<uint64_t>(row.at(row.size() - 1).AsInt());
}

}  // namespace

Result<ScrubSummary> Scrubber::ScrubAll() {
  std::vector<std::string> tables;
  for (const auto& [table, route] : cluster_->routes_) {
    (void)route;
    tables.push_back(table);
  }
  return RunPass(tables);
}

Result<ScrubSummary> Scrubber::ScrubTable(const std::string& table) {
  return RunPass({table});
}

Result<ScrubSummary> Scrubber::RunPass(
    const std::vector<std::string>& tables) {
  ScrubSummary sum;
  const double t_io = cluster_->db_->cost_model().params().t_io_ms;
  const DiskStats coord_before = cluster_->db_->disk()->stats();
  std::vector<DiskStats> node_before;
  node_before.reserve(cluster_->nodes_.size());
  for (const auto& n : cluster_->nodes_)
    node_before.push_back(n->disk->stats());

  for (const std::string& table : tables)
    RETURN_IF_ERROR(ScrubTableInto(table, &sum));

  const DiskStats coord_delta = cluster_->db_->disk()->stats() - coord_before;
  sum.sim_ms = static_cast<double>(coord_delta.page_reads) * t_io +
               coord_delta.retry_penalty_ms;
  double worst_node = 0;
  for (const auto& n : cluster_->nodes_) {
    if (!n->alive) continue;
    const DiskStats d =
        n->disk->stats() - node_before[static_cast<size_t>(n->id)];
    const double ms =
        (static_cast<double>(d.page_reads + d.page_writes) * t_io +
         d.retry_penalty_ms) *
        n->slowdown;
    worst_node = std::max(worst_node, ms);
  }
  sum.sim_ms += worst_node;
  if (!sum.repairs.empty()) {
    const double share = sum.sim_ms / static_cast<double>(sum.repairs.size());
    for (ReplicaRepairRecord& r : sum.repairs) r.sim_ms = share;
  }
  if (sum.findings > 0) cluster_->NoteScrubFindings(sum.findings);
  return sum;
}

Status Scrubber::ScrubTableInto(const std::string& table, ScrubSummary* sum) {
  auto rit = cluster_->routes_.find(table);
  if (rit == cluster_->routes_.end())
    return Status::InvalidArgument("not a sharded table: " + table);
  ReplicaManager* rm = cluster_->replicas_.get();

  // Reference content hashes from the coordinator's durable copy: one
  // combined hash per row over the base columns (the ordinal column is the
  // executor's bookkeeping, not data, and coordinator rows don't carry it).
  ASSIGN_OR_RETURN(TableInfo * coord, cluster_->db_->catalog()->Get(table));
  std::vector<size_t> base_cols(coord->schema.NumColumns());
  for (size_t i = 0; i < base_cols.size(); ++i) base_cols[i] = i;
  std::vector<uint64_t> ref;
  ref.reserve(rit->second.size());
  {
    HeapFile::Iterator it = coord->heap->Scan();
    Tuple t;
    while (true) {
      ASSIGN_OR_RETURN(bool more, it.Next(&t));
      if (!more) break;
      ref.push_back(t.HashOn(base_cols));
    }
  }

  for (int id = 0; id < cluster_->num_nodes(); ++id) {
    ShardNode* node = cluster_->node(id);
    if (!node->alive) continue;
    for (const char* role : {"primary", "replica"}) {
      const std::vector<uint64_t> expected =
          rm->ExpectedOrdinals(table, id, role);
      if (expected.empty()) continue;
      const bool is_replica = role[0] == 'r';
      const std::string phys =
          is_replica ? ReplicaManager::ReplicaTableName(table) : table;
      if (!node->catalog->Exists(phys)) continue;
      ASSIGN_OR_RETURN(TableInfo * info, node->catalog->Get(phys));
      ++sum->copies_checked;

      // Pass 1 — physical scan. A kDataLoss is the media telling us the
      // copy rotted; any other error is a real failure and propagates.
      std::string finding;
      std::map<uint64_t, uint64_t> have;
      {
        HeapFile::Iterator it = info->heap->Scan();
        Tuple t;
        while (true) {
          Result<bool> more = it.Next(&t);
          if (!more.ok()) {
            if (more.status().code() != StatusCode::kDataLoss)
              return more.status();
            finding = "data-loss";
            break;
          }
          if (!more.value()) break;
          have[OrdinalOf(t)] = t.HashOn(base_cols);
        }
      }

      // Pass 2 — content comparison against the coordinator (chained over
      // the owned ordinal set; stale leftover rows are ignored).
      if (finding.empty()) {
        for (uint64_t ord : expected) {
          auto hit = have.find(ord);
          if (hit == have.end() || ord >= ref.size() ||
              hit->second != ref[ord]) {
            finding = "divergence";
            break;
          }
        }
      }
      if (finding.empty()) continue;

      ++sum->findings;
      ScrubReportRecord report;
      report.table = table;
      report.node = id;
      report.role = role;
      report.finding = finding;
      report.rows_expected = static_cast<uint64_t>(expected.size());

      // Quarantine + rebuild: gather every owned slice from the first
      // healthy other holder (grouped into one scan per source heap); a
      // source that turns out to be rotten itself falls back to the
      // coordinator, as does a slice with no surviving copy.
      std::map<std::pair<int, bool>, std::set<uint64_t>> jobs;
      std::set<uint64_t> coord_job;
      for (uint64_t ord : expected) {
        const auto holders = rm->OtherHolders(table, ord, id, !is_replica);
        if (holders.empty())
          coord_job.insert(ord);
        else
          jobs[{holders[0].first, !holders[0].second}].insert(ord);
      }
      std::map<uint64_t, Tuple> rows;
      std::map<std::string, uint64_t> by_source;
      for (const auto& [src, ords] : jobs) {
        std::map<uint64_t, Tuple> got;
        Status st = rm->CollectRows(table, src.first, src.second, ords, &got);
        if (st.code() == StatusCode::kDataLoss) {
          coord_job.insert(ords.begin(), ords.end());
          continue;
        }
        RETURN_IF_ERROR(st);
        // Trust but verify: a repair sourced from a copy that is itself
        // divergent would just clone the damage.
        for (uint64_t ord : ords) {
          auto hit = got.find(ord);
          if (hit == got.end() || ord >= ref.size() ||
              hit->second.HashOn(base_cols) != ref[ord]) {
            coord_job.insert(ord);
            continue;
          }
          rows[ord] = std::move(hit->second);
          ++by_source[src.second ? "replica" : "primary"];
        }
      }
      RETURN_IF_ERROR(rm->CollectCoordinatorRows(table, coord_job, &rows));
      if (!coord_job.empty()) {
        by_source["coordinator"] += static_cast<uint64_t>(coord_job.size());
        sum->coordinator_rows += static_cast<uint64_t>(coord_job.size());
      }

      Schema schema = info->schema;
      RETURN_IF_ERROR(node->catalog->Drop(phys));
      ASSIGN_OR_RETURN(TableInfo * fresh,
                       node->catalog->CreateTable(phys, schema));
      for (uint64_t ord : expected) {
        auto row = rows.find(ord);
        if (row == rows.end())
          return Status::DataLoss("scrub: no copy of " + table + " ordinal " +
                                  std::to_string(ord) + " survives");
        RETURN_IF_ERROR(fresh->heap->Append(row->second).status());
      }
      RETURN_IF_ERROR(fresh->heap->Flush());
      TableStats st = coord->stats;
      st.analyzed = true;
      st.row_count = static_cast<double>(fresh->heap->tuple_count());
      st.page_count = static_cast<double>(fresh->heap->page_count());
      st.avg_tuple_bytes = fresh->heap->avg_tuple_bytes();
      RETURN_IF_ERROR(node->catalog->SetStats(phys, std::move(st)));

      ++sum->repaired;
      report.repaired = true;
      sum->reports.push_back(std::move(report));
      for (const auto& [source, count] : by_source) {
        ReplicaRepairRecord r;
        r.table = table;
        r.node = id;
        r.role = role;
        r.source = source;
        r.rows = count;
        sum->repairs.push_back(std::move(r));
      }
    }
  }
  return Status::OK();
}

}  // namespace reoptdb
