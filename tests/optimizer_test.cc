// Tests for selectivity estimation, the cost model, DP join enumeration,
// plan annotation, calibration, and remainder-spec construction.

#include "gtest/gtest.h"
#include "optimizer/calibration.h"
#include "optimizer/cost_model.h"
#include "optimizer/optimizer.h"
#include "optimizer/remainder_sql.h"
#include "optimizer/selectivity.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "test_util.h"

namespace reoptdb {
namespace {

using testing_util::LoadEmpDept;

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() { LoadEmpDept(&db_, 2000, 20); }

  Result<QuerySpec> BindSql(const std::string& sql) {
    Result<SelectStmtAst> ast = ParseSelect(sql);
    if (!ast.ok()) return ast.status();
    return Bind(ast.value(), *db_.catalog());
  }

  Result<OptimizeResult> Plan(const std::string& sql) {
    Result<QuerySpec> spec = BindSql(sql);
    if (!spec.ok()) return spec.status();
    Optimizer opt(db_.catalog(), &db_.cost_model());
    return opt.Plan(spec.value());
  }

  Database db_;
};

TEST_F(OptimizerTest, EstimatorBaseRelCardinality) {
  Result<QuerySpec> spec =
      BindSql("SELECT emp_id FROM emp WHERE emp_id < 1000");
  ASSERT_TRUE(spec.ok());
  Estimator est(db_.catalog(), &spec.value());
  Result<DerivedRel> rel = est.BaseRel(0);
  ASSERT_TRUE(rel.ok());
  // emp_id uniform 0..1999; < 1000 selects half.
  EXPECT_NEAR(rel.value().rows, 1000, 120);
}

TEST_F(OptimizerTest, EstimatorEqualityOnKey) {
  Result<QuerySpec> spec = BindSql("SELECT emp_id FROM emp WHERE emp_id = 7");
  ASSERT_TRUE(spec.ok());
  Estimator est(db_.catalog(), &spec.value());
  Result<DerivedRel> rel = est.BaseRel(0);
  ASSERT_TRUE(rel.ok());
  EXPECT_NEAR(rel.value().rows, 1, 3);
}

TEST_F(OptimizerTest, EstimatorJoinUsesDistinctCounts) {
  Result<QuerySpec> spec = BindSql(
      "SELECT emp_id FROM emp, dept WHERE emp.dept_id = dept.dept_id");
  ASSERT_TRUE(spec.ok());
  Estimator est(db_.catalog(), &spec.value());
  Result<DerivedRel> emp = est.BaseRel(0);
  Result<DerivedRel> dept = est.BaseRel(1);
  ASSERT_TRUE(emp.ok());
  ASSERT_TRUE(dept.ok());
  std::vector<const JoinPred*> preds{&spec.value().joins[0]};
  DerivedRel joined = est.Join(emp.value(), dept.value(), preds);
  // FK join: every emp row matches exactly one dept -> ~2000 rows.
  EXPECT_NEAR(joined.rows, 2000, 200);
}

TEST_F(OptimizerTest, GroupCountEstimate) {
  Result<QuerySpec> spec = BindSql("SELECT emp_id FROM emp");
  ASSERT_TRUE(spec.ok());
  Estimator est(db_.catalog(), &spec.value());
  Result<DerivedRel> rel = est.BaseRel(0);
  ASSERT_TRUE(rel.ok());
  EXPECT_NEAR(Estimator::GroupCount(rel.value(), {"emp.dept_id"}), 20, 3);
  // Group count never exceeds the input cardinality.
  EXPECT_LE(Estimator::GroupCount(rel.value(), {"emp.emp_id", "emp.dept_id"}),
            rel.value().rows + 1);
}

TEST_F(OptimizerTest, PlanSingleTableHasScanAndAnnotations) {
  Result<OptimizeResult> r =
      Plan("SELECT emp_id FROM emp WHERE salary > 5000");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const PlanNode& root = *r.value().plan;
  EXPECT_EQ(root.kind, OpKind::kProject);
  ASSERT_EQ(root.children.size(), 1u);
  EXPECT_EQ(root.children[0]->kind, OpKind::kSeqScan);
  // Annotated: estimates present on every node.
  root.PostOrder([](const PlanNode* n) {
    EXPECT_GT(n->est.cardinality, 0) << OpKindName(n->kind);
    EXPECT_GE(n->est.cost_total_ms, n->est.cost_self_ms);
  });
  EXPECT_GT(r.value().plans_enumerated, 0u);
  EXPECT_GT(r.value().sim_opt_time_ms, 0);
}

TEST_F(OptimizerTest, JoinPlanCoversAllRelations) {
  Result<OptimizeResult> r = Plan(
      "SELECT emp_id FROM emp, dept WHERE emp.dept_id = dept.dept_id");
  ASSERT_TRUE(r.ok());
  const PlanNode& root = *r.value().plan;
  EXPECT_EQ(root.covers.size(), 2u);
  bool has_join = false;
  root.PostOrder([&](const PlanNode* n) {
    if (n->kind == OpKind::kHashJoin || n->kind == OpKind::kIndexNLJoin)
      has_join = true;
  });
  EXPECT_TRUE(has_join);
}

TEST_F(OptimizerTest, HashJoinBuildsOnSmallerInput) {
  Result<OptimizeResult> r = Plan(
      "SELECT emp_id FROM emp, dept WHERE emp.dept_id = dept.dept_id");
  ASSERT_TRUE(r.ok());
  // Find the hash join; its build (child 0) should be the small dept side.
  const PlanNode* join = nullptr;
  r.value().plan->PostOrder([&](const PlanNode* n) {
    if (n->kind == OpKind::kHashJoin) join = n;
  });
  if (join != nullptr) {
    EXPECT_LE(join->children[0]->est.cardinality,
              join->children[1]->est.cardinality);
  }
}

TEST_F(OptimizerTest, IndexScanChosenForSelectiveKeyPredicate) {
  ASSERT_TRUE(db_.CreateIndex("emp", "emp_id").ok());
  Result<OptimizeResult> r =
      Plan("SELECT emp_id FROM emp WHERE emp_id = 42");
  ASSERT_TRUE(r.ok());
  bool has_index_scan = false;
  r.value().plan->PostOrder([&](const PlanNode* n) {
    if (n->kind == OpKind::kIndexScan) {
      has_index_scan = true;
      EXPECT_EQ(n->index_column, "emp_id");
      ASSERT_TRUE(n->range_lo.has_value());
      EXPECT_EQ(*n->range_lo, 42);
      EXPECT_EQ(*n->range_hi, 42);
    }
  });
  EXPECT_TRUE(has_index_scan);
}

TEST_F(OptimizerTest, SeqScanChosenForUnselectivePredicate) {
  ASSERT_TRUE(db_.CreateIndex("emp", "emp_id").ok());
  Result<OptimizeResult> r =
      Plan("SELECT emp_id FROM emp WHERE emp_id >= 0");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().plan->children[0]->kind, OpKind::kSeqScan);
}

TEST_F(OptimizerTest, AggregatePlanShape) {
  Result<OptimizeResult> r = Plan(
      "SELECT emp.dept_id, SUM(salary) AS total FROM emp GROUP BY emp.dept_id "
      "ORDER BY total DESC LIMIT 3");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const PlanNode* n = r.value().plan.get();
  EXPECT_EQ(n->kind, OpKind::kLimit);
  n = n->children[0].get();
  EXPECT_EQ(n->kind, OpKind::kSort);
  n = n->children[0].get();
  EXPECT_EQ(n->kind, OpKind::kHashAggregate);
  EXPECT_GT(n->est.num_groups, 0);
  EXPECT_EQ(n->output_schema.NumColumns(), 2u);
  EXPECT_EQ(n->output_schema.column(1).type, ValueType::kDouble);
}

TEST_F(OptimizerTest, MoreJoinsEnumerateMorePlans) {
  Result<OptimizeResult> one = Plan("SELECT emp_id FROM emp");
  Result<OptimizeResult> two = Plan(
      "SELECT emp_id FROM emp, dept WHERE emp.dept_id = dept.dept_id");
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(two.ok());
  EXPECT_GT(two.value().plans_enumerated, one.value().plans_enumerated);
}

TEST(CostModelTest, HashJoinPassesDependOnMemory) {
  CostModel cost;
  int passes_big = -1, passes_small = -1;
  double c_big = cost.HashJoin(10000, 100, 10000, 100, /*mem=*/200, 10000,
                               &passes_big);
  double c_small = cost.HashJoin(10000, 100, 10000, 100, /*mem=*/10, 10000,
                                 &passes_small);
  EXPECT_EQ(passes_big, 0);
  EXPECT_GE(passes_small, 1);
  EXPECT_GT(c_small, c_big);
}

TEST(CostModelTest, MemoryDemandsMatchPaperNarrative) {
  CostModel cost;
  // Max demand = F x build size + overhead; min ~ sqrt of that.
  EXPECT_GT(cost.HashJoinMaxMem(100), 100);
  EXPECT_LT(cost.HashJoinMinMem(100), cost.HashJoinMaxMem(100));
  EXPECT_GE(cost.HashJoinMinMem(100), 2);
  EXPECT_GE(cost.SortMinMem(100), 2);
  EXPECT_DOUBLE_EQ(cost.SortMaxMem(100), 100);
}

TEST(CostModelTest, SortCostGrowsWhenSpilling) {
  CostModel cost;
  EXPECT_GT(cost.Sort(100000, 500, 10), cost.Sort(100000, 500, 1000));
}

TEST(CostModelTest, TimeMsCombinesCounters) {
  CostParams p;
  p.t_io_ms = 2;
  p.t_cpu_tuple_ms = 0.5;
  CostModel cost(p);
  CpuWork w;
  w.tuples = 10;
  EXPECT_DOUBLE_EQ(cost.TimeMs(3, w), 3 * 2 + 10 * 0.5);
}

TEST(CalibrationTest, MonotoneInRelationCount) {
  CostModel cost;
  Result<OptimizerCalibration> cal = OptimizerCalibration::Run(7, cost);
  ASSERT_TRUE(cal.ok()) << cal.status().ToString();
  EXPECT_TRUE(cal.value().calibrated());
  double prev = 0;
  for (int n = 2; n <= 7; ++n) {
    double t = cal.value().EstimateOptTimeMs(n);
    EXPECT_GT(t, prev) << "n=" << n;
    prev = t;
  }
  // Extrapolation beyond the table keeps growing.
  EXPECT_GT(cal.value().EstimateOptTimeMs(10),
            cal.value().EstimateOptTimeMs(7));
}

TEST_F(OptimizerTest, RemainderSpecConstruction) {
  Result<QuerySpec> spec = BindSql(
      "SELECT emp.dept_id, SUM(salary) AS total FROM emp, dept "
      "WHERE emp.dept_id = dept.dept_id AND salary > 100 AND dept_name = 'x' "
      "GROUP BY emp.dept_id");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  // Pretend the emp side (relation 0) was materialized.
  Result<QuerySpec> rem =
      BuildRemainderSpec(spec.value(), {0}, "__temp1");
  ASSERT_TRUE(rem.ok());
  const QuerySpec& q = rem.value();
  ASSERT_EQ(q.relations.size(), 2u);
  EXPECT_EQ(q.relations[0].table, "__temp1");
  EXPECT_EQ(q.relations[1].table, "dept");
  // The emp filter is gone; the dept filter survives.
  ASSERT_EQ(q.filters.size(), 1u);
  EXPECT_EQ(q.filters[0].column, "dept_name");
  // The join now targets the temp's renamed column.
  ASSERT_EQ(q.joins.size(), 1u);
  EXPECT_EQ(q.joins[0].left_rel, 0);
  EXPECT_EQ(q.joins[0].left_col, "emp__dept_id");
  // Items and group-by remapped.
  EXPECT_EQ(q.items[0].col.rel, 0);
  EXPECT_EQ(q.items[0].col.column, "emp__dept_id");
  EXPECT_EQ(q.group_by[0].column, "emp__dept_id");
}

TEST_F(OptimizerTest, TempSchemaNaming) {
  Schema inter(std::vector<Column>{{"e1", "a", ValueType::kInt64, 8},
                                   {"e2", "a", ValueType::kInt64, 8}});
  Schema temp = TempTableSchema("__temp9", inter);
  EXPECT_EQ(temp.column(0).QualifiedName(), "__temp9.e1__a");
  EXPECT_EQ(temp.column(1).QualifiedName(), "__temp9.e2__a");
  EXPECT_EQ(TempColumnName("n1", "n_name"), "n1__n_name");
}

// `1u << r` for r >= 32 silently aliases subset masks, so relation counts
// past 31 must hard-error (InvalidArgument, checked before the practical
// 20-relation NotSupported wall) rather than enumerate garbage.
TEST_F(OptimizerTest, RelationCountGuards) {
  Optimizer opt(db_.catalog(), &db_.cost_model());
  auto spec_with = [](int n) {
    QuerySpec spec;
    for (int i = 0; i < n; ++i) {
      std::string alias = "e" + std::to_string(i);
      spec.relations.push_back({std::move(alias), "emp"});
    }
    return spec;
  };
  Result<OptimizeResult> none = opt.Plan(spec_with(0));
  EXPECT_EQ(none.status().code(), StatusCode::kInvalidArgument);
  Result<OptimizeResult> wide = opt.Plan(spec_with(32));
  EXPECT_EQ(wide.status().code(), StatusCode::kInvalidArgument)
      << wide.status().ToString();
  Result<OptimizeResult> repair32 =
      opt.RepairPlan(spec_with(32), nullptr, nullptr);
  EXPECT_EQ(repair32.status().code(), StatusCode::kInvalidArgument);
  // 21..31 is the practical (raisable) limit, a different failure class.
  Result<OptimizeResult> many = opt.Plan(spec_with(21));
  EXPECT_EQ(many.status().code(), StatusCode::kNotSupported);
}

// Index range bounds from fractional literals must round toward the side
// that keeps the integer range tight AND correct: ceil for lower bounds,
// floor for upper bounds. Truncation turned `emp_id > 1994.5` into
// bound 1994 — admitting 1995 twice over (>= vs >) was wrong.
TEST_F(OptimizerTest, FractionalRangeLiteralRounding) {
  ASSERT_TRUE(db_.CreateIndex("emp", "emp_id").ok());
  auto index_bounds = [&](const std::string& sql)
      -> std::pair<std::optional<int64_t>, std::optional<int64_t>> {
    Result<OptimizeResult> r = Plan(sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    if (!r.ok()) return {std::nullopt, std::nullopt};
    std::pair<std::optional<int64_t>, std::optional<int64_t>> bounds;
    bool found = false;
    r.value().plan->PostOrder([&](const PlanNode* n) {
      if (n->kind != OpKind::kIndexScan) return;
      found = true;
      bounds = {n->range_lo, n->range_hi};
    });
    EXPECT_TRUE(found) << sql << ": no index scan chosen";
    return bounds;
  };

  auto gt = index_bounds("SELECT emp_id FROM emp WHERE emp_id > 1994.5");
  ASSERT_TRUE(gt.first.has_value());
  EXPECT_EQ(*gt.first, 1995);
  auto ge = index_bounds("SELECT emp_id FROM emp WHERE emp_id >= 1994.5");
  ASSERT_TRUE(ge.first.has_value());
  EXPECT_EQ(*ge.first, 1995);
  auto lt = index_bounds("SELECT emp_id FROM emp WHERE emp_id < 3.5");
  ASSERT_TRUE(lt.second.has_value());
  EXPECT_EQ(*lt.second, 3);
  auto le = index_bounds("SELECT emp_id FROM emp WHERE emp_id <= 3.5");
  ASSERT_TRUE(le.second.has_value());
  EXPECT_EQ(*le.second, 3);
  // Strict comparisons on an exactly integral literal still step past it.
  auto gtint = index_bounds("SELECT emp_id FROM emp WHERE emp_id > 1994.0");
  ASSERT_TRUE(gtint.first.has_value());
  EXPECT_EQ(*gtint.first, 1995);
}

// A fractional equality matches no integer key: the bounds come out
// inverted (lo > hi), the estimate is ~zero, and the executor's bounded
// index iterator returns no rows rather than misbehaving.
TEST_F(OptimizerTest, FractionalEqualityYieldsEmptyRange) {
  ASSERT_TRUE(db_.CreateIndex("emp", "emp_id").ok());
  Result<OptimizeResult> r = Plan("SELECT emp_id FROM emp WHERE emp_id = 7.5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const PlanNode* scan = nullptr;
  r.value().plan->PostOrder([&](const PlanNode* n) {
    if (n->kind == OpKind::kIndexScan) scan = n;
  });
  ASSERT_NE(scan, nullptr);
  ASSERT_TRUE(scan->range_lo.has_value());
  ASSERT_TRUE(scan->range_hi.has_value());
  EXPECT_EQ(*scan->range_lo, 8);
  EXPECT_EQ(*scan->range_hi, 7);
  Result<QueryResult> rows =
      db_.Execute("SELECT emp_id FROM emp WHERE emp_id = 7.5");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_TRUE(rows.value().rows.empty());
}

// --- Incremental repair: RepairPlan must be bit-identical to Plan. -------

TEST_F(OptimizerTest, RepairPlanIdenticalAfterStatsChurn) {
  // Three relations so a clean subset ({e1,e2}) survives the churn: its
  // memo entry must be reused, making the repair enumerate strictly less.
  Result<QuerySpec> spec = BindSql(
      "SELECT e1.emp_id FROM emp e1, emp e2, dept "
      "WHERE e1.dept_id = dept.dept_id AND e2.dept_id = dept.dept_id "
      "AND e1.salary > 100");
  ASSERT_TRUE(spec.ok());
  Optimizer opt(db_.catalog(), &db_.cost_model());
  Result<OptimizeResult> initial = opt.Plan(spec.value());
  ASSERT_TRUE(initial.ok());

  // dept's statistics drift (growth + distinct shift); emp stays put.
  Result<TableInfo*> dept = db_.catalog()->Get("dept");
  ASSERT_TRUE(dept.ok());
  TableStats ts = dept.value()->stats;
  ts.row_count *= 4;
  ts.page_count *= 4;
  for (auto& [col, cs] : ts.columns) cs.distinct *= 2;
  ASSERT_TRUE(db_.catalog()->SetStats("dept", std::move(ts)).ok());

  Result<OptimizeResult> scratch = opt.Plan(spec.value());
  ASSERT_TRUE(scratch.ok());
  MemoRepair mr;
  Result<OptimizeResult> repaired = opt.RepairPlan(
      spec.value(), nullptr, std::move(initial.value().memo), &mr);
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();

  EXPECT_FALSE(mr.fell_back);
  EXPECT_EQ(mr.leaves_changed, 1);
  EXPECT_EQ(repaired.value().plan->ToString(), scratch.value().plan->ToString());
  EXPECT_EQ(repaired.value().plan->est.cost_total_ms,
            scratch.value().plan->est.cost_total_ms);
  // The repair offered strictly fewer candidates than the scratch re-plan.
  EXPECT_LT(repaired.value().plans_enumerated,
            scratch.value().plans_enumerated);
}

TEST_F(OptimizerTest, RepairPlanIdenticalUnderOverridesAndCleanStats) {
  Result<QuerySpec> spec = BindSql(
      "SELECT emp_id FROM emp, dept "
      "WHERE emp.dept_id = dept.dept_id AND salary > 100");
  ASSERT_TRUE(spec.ok());
  Optimizer opt(db_.catalog(), &db_.cost_model());
  Result<OptimizeResult> initial = opt.Plan(spec.value());
  ASSERT_TRUE(initial.ok());

  // No catalog churn at all: run-time overrides alone (the mid-query
  // feedback path) must dirty exactly the overridden leaf.
  BaseRelOverrides overrides;
  Result<DerivedRel> emp_obs = Estimator(db_.catalog(), &spec.value()).BaseRel(0);
  ASSERT_TRUE(emp_obs.ok());
  DerivedRel obs = emp_obs.value();
  obs.rows *= 9;  // observed much larger than estimated
  overrides["emp"] = obs;

  Result<OptimizeResult> scratch = opt.Plan(spec.value(), &overrides);
  ASSERT_TRUE(scratch.ok());
  MemoRepair mr;
  Result<OptimizeResult> repaired = opt.RepairPlan(
      spec.value(), &overrides, std::move(initial.value().memo), &mr);
  ASSERT_TRUE(repaired.ok());
  EXPECT_FALSE(mr.fell_back);
  EXPECT_EQ(mr.leaves_changed, 1);
  EXPECT_EQ(repaired.value().plan->ToString(), scratch.value().plan->ToString());

  // And with nothing changed at all, every join entry is reused.
  Result<OptimizeResult> again = opt.Plan(spec.value());
  ASSERT_TRUE(again.ok());
  MemoRepair clean;
  Result<OptimizeResult> noop =
      opt.RepairPlan(spec.value(), nullptr, std::move(again.value().memo),
                     &clean);
  ASSERT_TRUE(noop.ok());
  EXPECT_FALSE(clean.fell_back);
  EXPECT_EQ(clean.leaves_changed, 0);
  EXPECT_EQ(clean.entries_invalidated, 0u);
  EXPECT_EQ(clean.entries_reused, clean.entries_total);
  Result<OptimizeResult> scratch2 = opt.Plan(spec.value());
  ASSERT_TRUE(scratch2.ok());
  EXPECT_EQ(noop.value().plan->ToString(), scratch2.value().plan->ToString());
}

TEST_F(OptimizerTest, RepairPlanIdenticalAfterIndexDdl) {
  Result<QuerySpec> spec = BindSql(
      "SELECT emp_id FROM emp, dept "
      "WHERE emp.dept_id = dept.dept_id AND emp_id < 50");
  ASSERT_TRUE(spec.ok());
  Optimizer opt(db_.catalog(), &db_.cost_model());
  Result<OptimizeResult> initial = opt.Plan(spec.value());
  ASSERT_TRUE(initial.ok());

  // Index DDL after the memo was built: the emp leaf's snapshot (schema
  // fingerprint covers indexes) must go dirty, and the repaired plan must
  // pick up the new index scan exactly like a scratch re-plan does.
  ASSERT_TRUE(db_.CreateIndex("emp", "emp_id").ok());

  Result<OptimizeResult> scratch = opt.Plan(spec.value());
  ASSERT_TRUE(scratch.ok());
  MemoRepair mr;
  Result<OptimizeResult> repaired = opt.RepairPlan(
      spec.value(), nullptr, std::move(initial.value().memo), &mr);
  ASSERT_TRUE(repaired.ok());
  EXPECT_FALSE(mr.fell_back);
  EXPECT_EQ(mr.leaves_changed, 1);
  EXPECT_EQ(repaired.value().plan->ToString(), scratch.value().plan->ToString());
}

TEST_F(OptimizerTest, RepairPlanFallsBackWhenFeedbackStoreMoves) {
  CardinalityFeedbackStore store;
  Result<QuerySpec> spec = BindSql(
      "SELECT emp_id FROM emp, dept WHERE emp.dept_id = dept.dept_id");
  ASSERT_TRUE(spec.ok());
  Optimizer opt(db_.catalog(), &db_.cost_model(), OptimizerOptions{}, &store);
  Result<OptimizeResult> initial = opt.Plan(spec.value());
  ASSERT_TRUE(initial.ok());

  // A concurrent query deposits join feedback: the retained join entries
  // never saw it, so the memo is untrustworthy wholesale.
  JoinFeedback fb;
  fb.signature = JoinSignature(spec.value(), {0, 1});
  fb.observed_rows = 123456;
  store.ObserveJoin(std::move(fb));

  MemoRepair mr;
  Result<OptimizeResult> repaired = opt.RepairPlan(
      spec.value(), nullptr, std::move(initial.value().memo), &mr);
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(mr.fell_back);
  // The fallback IS a scratch plan, so it matches one trivially — but it
  // must also have applied the new feedback.
  Result<OptimizeResult> scratch = opt.Plan(spec.value());
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ(repaired.value().plan->ToString(), scratch.value().plan->ToString());
}

TEST(CalibrationTest, IncrementalEstimateBelowScratch) {
  // Uncalibrated instance: the exponential fallback model still must price
  // an incremental re-plan below a from-scratch one whenever any leaf is
  // clean — this is what makes the Eq.(1) gate cheaper to pass after PR8.
  OptimizerCalibration cal;
  for (int changed = 1; changed < 8; ++changed) {
    const double inc = cal.EstimateIncrementalOptTimeMs(8, changed);
    EXPECT_LT(inc, cal.EstimateOptTimeMs(8)) << changed;
    EXPECT_GT(inc, 0.0);
  }
  // Everything changed: exactly the scratch estimate.
  EXPECT_EQ(cal.EstimateIncrementalOptTimeMs(8, 8), cal.EstimateOptTimeMs(8));
  EXPECT_EQ(cal.EstimateIncrementalOptTimeMs(8, 12), cal.EstimateOptTimeMs(8));
  // More changed leaves never estimate cheaper.
  for (int changed = 2; changed <= 8; ++changed) {
    EXPECT_GE(cal.EstimateIncrementalOptTimeMs(8, changed),
              cal.EstimateIncrementalOptTimeMs(8, changed - 1));
  }
}

}  // namespace
}  // namespace reoptdb
