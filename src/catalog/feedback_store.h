// Cardinality feedback store: runtime observations that outlive the query.
//
// Kabra & DeWitt's collectors discover estimation errors mid-query, but the
// corrected statistics die with the execution — every repeat of the same
// query shape rediscovers the same error and pays the same re-optimization
// tax. Following Perron et al. ("How I Learned to Stop Worrying and Love
// Re-optimization", PAPERS.md), this store persists each collector's
// observed cardinalities, selectivities, bounds and distinct counts, keyed
// on a canonical (table, predicate-signature) or join-signature fingerprint
// computed from the bound plan, so the *next* optimization of a matching
// query starts from corrected statistics. Keys are at sub-plan granularity
// (per base relation and per join subset) so future incremental
// re-optimization (Liu/Ives/Loo, PAPERS.md) can consume them directly.
//
// Staleness/decay policy: every entry anchors the base table's row count
// and update activity at observation time; a lookup whose current values
// drifted beyond the configured fractions evicts the entry instead of
// serving it, so churned tables cannot fossilize old feedback. Repeat
// observations blend by EWMA rather than overwrite, damping oscillation.
//
// Partial observations (a collector closed before exhausting its input)
// are tagged and only ever *raise* an estimate — a prefix count is a lower
// bound, and feedback must never make an estimate worse than no feedback.
//
// Persistence mirrors the durable query journal (reopt/query_journal.h):
// ExportManifest renders one checksummed record per entry; ImportManifest
// verifies every checksum and rejects the whole manifest on any corruption
// (stale feedback is an accuracy aid, a corrupt record is never trusted).

#ifndef REOPTDB_CATALOG_FEEDBACK_STORE_H_
#define REOPTDB_CATALOG_FEEDBACK_STORE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "plan/query_spec.h"

namespace reoptdb {

class Catalog;

/// Canonical signature of relation `rel_idx`'s pushed-down filter
/// predicates: sorted "col op literal" / "col op col" terms, rendered
/// exactly as QuerySpec::ToSql renders them so the same bound predicate
/// always produces the same signature. Empty string = unfiltered scan.
std::string PredicateSignature(const QuerySpec& spec, int rel_idx);

/// Canonical signature of the join result over the relation subset `rels`:
/// sorted "table[predicate-sig]" participants plus the sorted join
/// predicates among them (by table name, not alias, so the same join shape
/// matches across queries that alias differently).
std::string JoinSignature(const QuerySpec& spec, const std::set<int>& rels);

/// Observed per-column statistics riding along with a base-rel observation.
/// Keyed by bare column name (the alias is query-local).
struct ColumnFeedback {
  bool has_bounds = false;
  double min = 0;
  double max = 0;
  double distinct = 0;  ///< 0 = not observed
  bool distinct_is_lower_bound = false;
};

/// One base relation's observed post-filter statistics.
struct BaseRelFeedback {
  std::string table;
  std::string predicate_sig;
  double observed_rows = 0;
  /// observed_rows / base table rows at observation time. Applied to the
  /// *current* row count on lookup, so feedback tracks table growth.
  double selectivity = 0;
  double avg_tuple_bytes = 0;
  bool partial = false;  ///< lower bound only (collector closed early)
  std::map<std::string, ColumnFeedback> columns;
  // --- staleness anchors + decay state.
  double base_rows_at_obs = 0;
  double update_activity_at_obs = 0;
  int observations = 0;
};

/// Anchors one participating table's state at join-observation time.
struct JoinTableMark {
  std::string table;
  double rows_at_obs = 0;
  double update_activity_at_obs = 0;
};

/// One join subset's observed output cardinality.
struct JoinFeedback {
  std::string signature;
  double observed_rows = 0;
  bool partial = false;
  std::vector<JoinTableMark> tables;
  int observations = 0;
};

struct FeedbackStoreOptions {
  /// EWMA weight of the newest observation when blending with an existing
  /// entry (1.0 = always overwrite).
  double blend_alpha = 0.6;
  /// Evict on lookup when the base table's row count drifted by more than
  /// this fraction since observation.
  double staleness_rows_frac = 0.2;
  /// Evict on lookup when update activity drifted by more than this.
  double staleness_activity = 0.05;
  /// Hard cap on entries (base + join); inserting past it drops the
  /// least-recently observed entry.
  size_t max_entries = 4096;
};

/// Running counters (monotone; Clear() resets them with the entries).
struct FeedbackStoreCounters {
  uint64_t base_hits = 0;
  uint64_t base_misses = 0;
  uint64_t join_hits = 0;
  uint64_t join_misses = 0;
  uint64_t stale_evictions = 0;
  uint64_t observations = 0;
};

/// \brief Persistent (per-Database) store of runtime cardinality feedback.
class CardinalityFeedbackStore {
 public:
  explicit CardinalityFeedbackStore(FeedbackStoreOptions opts = {})
      : opts_(opts) {}

  /// Records / EWMA-blends one base-rel observation. Partial observations
  /// only ever raise an existing entry, never lower it; an exact
  /// observation replaces a partial one outright.
  void ObserveBaseRel(BaseRelFeedback obs);

  /// Records / EWMA-blends one join observation (same partial rules).
  void ObserveJoin(JoinFeedback obs);

  /// Entry for (table, predicate_sig), or nullptr. Checks the staleness
  /// anchors against the caller-supplied current table state and evicts
  /// (returning nullptr) when drifted.
  const BaseRelFeedback* LookupBaseRel(const std::string& table,
                                       const std::string& predicate_sig,
                                       double current_rows,
                                       double current_activity) const;

  /// Entry for the join signature, or nullptr. Staleness is checked per
  /// participating table against the live catalog.
  const JoinFeedback* LookupJoin(const std::string& signature,
                                 const Catalog& catalog) const;

  /// Drops every entry touching `table` (DDL invalidation).
  void InvalidateTable(const std::string& table);

  void Clear();
  size_t base_entry_count() const { return base_.size(); }
  size_t join_entry_count() const { return joins_.size(); }
  bool empty() const { return base_.empty() && joins_.empty(); }
  const FeedbackStoreCounters& counters() const { return counters_; }

  /// Monotone content-change counter: bumped on every observation,
  /// invalidation, clear, import, and lookup-time stale eviction. A
  /// retained PlanMemo snapshots it at build time; any drift means join
  /// estimates derived through this store can no longer be trusted as
  /// unchanged, and incremental repair falls back to a from-scratch plan.
  uint64_t generation() const { return generation_; }

  /// Renders the whole store as a manifest: a header line followed by one
  /// "<fnv1a-checksum> <json-payload>" line per entry.
  std::string ExportManifest() const;

  /// Replaces the store's entries with the manifest's. All-or-nothing: any
  /// checksum/parse failure rejects the whole manifest and leaves the
  /// store unchanged.
  Status ImportManifest(const std::string& manifest);

  /// Human-readable dump for the shell's \feedback command.
  std::string Describe() const;

 private:
  static std::string BaseKey(const std::string& table,
                             const std::string& predicate_sig) {
    return table + "|" + predicate_sig;
  }
  void EnforceCapacity();

  FeedbackStoreOptions opts_;
  /// Mutable: lookups are logically const but evict stale entries and
  /// count hits/misses.
  mutable std::map<std::string, BaseRelFeedback> base_;
  mutable std::map<std::string, JoinFeedback> joins_;
  /// Insertion order for capacity eviction (oldest observation first).
  mutable std::vector<std::string> lru_;
  mutable FeedbackStoreCounters counters_;
  /// See generation(). Mutable: stale evictions happen inside const lookups.
  mutable uint64_t generation_ = 0;
};

}  // namespace reoptdb

#endif  // REOPTDB_CATALOG_FEEDBACK_STORE_H_
