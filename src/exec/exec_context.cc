#include "exec/exec_context.h"

namespace reoptdb {

ExecContext::ExecContext(BufferPool* pool, Catalog* catalog,
                         const CostModel* cost, uint64_t seed)
    : pool_(pool), catalog_(catalog), cost_(cost), rng_(seed) {
  disk_start_ = pool->disk()->stats();
}

uint64_t ExecContext::PageIos() const {
  DiskStats d = pool_->disk()->stats() - disk_start_;
  return d.page_reads + d.page_writes;
}

double ExecContext::SimElapsedMs() const {
  return cost_->TimeMs(PageIos(), cpu_) + external_ms_;
}

}  // namespace reoptdb
