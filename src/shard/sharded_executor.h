// Distributed query execution over a ShardCluster (DESIGN.md §15).
//
// The coordinator plans the query with its hash-only left-deep profile,
// then the executor runs the join tree bottom-up as distributed stages:
// each stage exchanges one join's build input across the alive nodes
// (broadcast or hash-repartition, chosen from the cost model's network
// term), runs the join fragment on every node against its local probe
// partition, and gathers the results back to the coordinator — sorted by
// the rows' carried ordinals, so the stage's materialized temp holds the
// tuples in exactly the order a single-node execution would have emitted
// them. The final aggregation/sort runs on the coordinator over the last
// temp via PR 4's remainder-SQL machinery, which makes the distributed
// answer bit-identical to the single-node oracle, float for float.
//
// Mid-query defenses, all driven by per-stage observations:
//  - distribution switches (broadcast <-> repartition) when the observed
//    build size contradicts the estimate, or when a repartitioned build
//    lands skewed on one node;
//  - straggler re-weighting: a node far behind its peers gets a smaller
//    share of subsequent repartition slot tables;
//  - node-failure recovery: a node.crash fault or a net link down past the
//    retry budget kills the node; its base partitions are re-homed from
//    the coordinator's durable copy, completed stages are re-validated
//    from the query journal, and the stage re-runs on the survivors. With
//    no survivors the remainder falls back to the coordinator.

#ifndef REOPTDB_SHARD_SHARDED_EXECUTOR_H_
#define REOPTDB_SHARD_SHARDED_EXECUTOR_H_

#include <string>

#include "shard/shard_cluster.h"

namespace reoptdb {

/// Per-query knobs.
struct ShardQueryOptions {
  /// Rows per operator pull inside node fragments and the remainder
  /// (1 = row-at-a-time). Results are bit-identical at every setting.
  size_t batch_size = 1;
  /// Pin the distribution strategy for every stage (tests/ablations).
  enum class Force : uint8_t { kAuto, kBroadcast, kRepartition };
  Force force = Force::kAuto;
  /// Run an anti-entropy scrub pass (shard/scrubber.h) after every
  /// committed stage. Findings are repaired in place, recorded in the
  /// trace, and bump the cluster's scrub generation — which makes the
  /// remainder revalidate journaled temps before trusting them.
  bool scrub_between_stages = false;
};

/// Outcome of one distributed execution.
struct ShardExecResult {
  QueryResult result;
  /// Simulated cluster makespan charged for this query: per-stage max over
  /// the alive nodes, plus coordinator work (gather, temps, remainder).
  double cluster_ms = 0;
  int stages_run = 0;
  int distribution_switches = 0;
  int nodes_lost = 0;
  /// The query (or its remainder) ran entirely on the coordinator — plan
  /// shape outside the distributable profile, an unpartitioned relation,
  /// or no surviving nodes.
  bool coordinator_fallback = false;
};

/// \brief Stage-at-a-time distributed executor.
class ShardedExecutor {
 public:
  explicit ShardedExecutor(ShardCluster* cluster) : cluster_(cluster) {}

  /// Executes `sql` across the cluster. Bit-identical (Canon) to
  /// ExecuteSingleNode on the same data at any node count.
  Result<ShardExecResult> Execute(const std::string& sql,
                                  const ShardQueryOptions& q = {});

  /// The single-node oracle: the same query on the coordinator alone
  /// (which holds the full copy of every base table), re-optimization off.
  Result<QueryResult> ExecuteSingleNode(const std::string& sql,
                                        size_t batch_size = 1);

 private:
  ShardCluster* cluster_;
};

}  // namespace reoptdb

#endif  // REOPTDB_SHARD_SHARDED_EXECUTOR_H_
