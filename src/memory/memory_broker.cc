#include "memory/memory_broker.h"

#include <algorithm>

namespace reoptdb {

namespace {

/// Pages the entry could give up right now: its grant minus the larger of
/// what its operators have pinned and its admission-time floor.
double Revocable(const MemoryBroker::GrantHolder& holder, double grant,
                 double min_pages) {
  return std::max(0.0, grant - std::max(holder.PinnedPages(), min_pages));
}

}  // namespace

Result<double> MemoryBroker::Register(uint64_t query_id, GrantHolder* holder,
                                      double ask_pages, double min_pages,
                                      double at_ms) {
  ask_pages = std::max(ask_pages, min_pages);

  // Feasibility first: if even revoking everything revocable cannot reach
  // the floor, reject *before* shaving anyone — an admission that is going
  // to fail must not leave other queries poorer.
  double reachable = free_pages_;
  for (const auto& [id, e] : entries_)
    reachable += Revocable(*e.holder, e.grant, e.min_pages);
  if (reachable < min_pages)
    return Status::ResourceExhausted(
        "memory broker: ask exceeds revocable budget");

  // Shave the largest revocable grant first until the ask is covered —
  // the MemoryManager's pass-1 heuristic lifted one level up: big holders
  // lose least (relatively) and fragmenting many small grants causes more
  // spills than trimming one large one.
  while (free_pages_ < ask_pages) {
    auto victim = entries_.end();
    double victim_rev = 0;
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      double rev = Revocable(*it->second.holder, it->second.grant,
                             it->second.min_pages);
      if (rev > victim_rev) {
        victim_rev = rev;
        victim = it;
      }
    }
    if (victim == entries_.end()) break;  // nothing left to revoke

    if (faults_ != nullptr) {
      Status st = faults_->Check(faults::kMemoryRevoke);
      if (st.code() == StatusCode::kCrashed) return st;
      if (!st.ok()) {
        // Injected revocation failure: stop shaving. Victims already
        // notified stay shrunk (their pages are in the free pool); the
        // admission below succeeds or fails on what was actually freed.
        if (free_pages_ >= min_pages) break;
        return st;
      }
    }

    const double take = std::min(victim_rev, ask_pages - free_pages_);
    victim->second.grant -= take;
    free_pages_ += take;

    RevocationEvent rev;
    rev.victim_query_id = victim->first;
    rev.beneficiary_query_id = query_id;
    rev.pages = take;
    rev.victim_grant_after = victim->second.grant;
    rev.at_ms = at_ms;
    log_.push_back(rev);
    victim->second.holder->OnGrantChanged(victim->second.grant, &rev);
  }

  const double granted = std::min(ask_pages, free_pages_);
  if (granted < min_pages)
    return Status::ResourceExhausted(
        "memory broker: insufficient free pages after revocation");
  free_pages_ -= granted;
  entries_[query_id] = Entry{holder, granted, min_pages};
  return granted;
}

void MemoryBroker::Release(uint64_t query_id) {
  auto it = entries_.find(query_id);
  if (it == entries_.end()) return;
  free_pages_ += it->second.grant;
  entries_.erase(it);
}

double MemoryBroker::grant(uint64_t query_id) const {
  auto it = entries_.find(query_id);
  return it == entries_.end() ? 0 : it->second.grant;
}

}  // namespace reoptdb
