#include "common/rng.h"

#include <cassert>

namespace reoptdb {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (int i = 0; i < 4; ++i) {
    s = SplitMix64(s);
    s_[i] = s;
  }
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded generation.
  __uint128_t m = static_cast<__uint128_t>(Next()) * n;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < n) {
    uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(Next()) * n;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace reoptdb
