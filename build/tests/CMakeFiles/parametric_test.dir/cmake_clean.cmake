file(REMOVE_RECURSE
  "CMakeFiles/parametric_test.dir/parametric_test.cc.o"
  "CMakeFiles/parametric_test.dir/parametric_test.cc.o.d"
  "parametric_test"
  "parametric_test.pdb"
  "parametric_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parametric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
