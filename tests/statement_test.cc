// Tests for the statement grammar (DDL/DML) and Database::ExecuteSql.

#include "engine/database.h"
#include "gtest/gtest.h"
#include "parser/statement.h"
#include "test_util.h"

namespace reoptdb {
namespace {

TEST(StatementParseTest, CreateTable) {
  Result<Statement> r = ParseStatement(
      "CREATE TABLE emp (id INT PRIMARY KEY, salary DOUBLE, name STRING)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto* ct = std::get_if<CreateTableAst>(&r.value());
  ASSERT_NE(ct, nullptr);
  EXPECT_EQ(ct->table, "emp");
  ASSERT_EQ(ct->columns.size(), 3u);
  EXPECT_EQ(ct->columns[0].type, ValueType::kInt64);
  EXPECT_EQ(ct->columns[1].type, ValueType::kDouble);
  EXPECT_EQ(ct->columns[2].type, ValueType::kString);
  ASSERT_EQ(ct->keys.size(), 1u);
  EXPECT_EQ(ct->keys[0], "id");
}

TEST(StatementParseTest, CreateIndex) {
  Result<Statement> r = ParseStatement("CREATE INDEX ON emp (id);");
  ASSERT_TRUE(r.ok());
  auto* ci = std::get_if<CreateIndexAst>(&r.value());
  ASSERT_NE(ci, nullptr);
  EXPECT_EQ(ci->table, "emp");
  EXPECT_EQ(ci->column, "id");
}

TEST(StatementParseTest, InsertMultiRow) {
  Result<Statement> r = ParseStatement(
      "INSERT INTO emp VALUES (1, 10.5, 'ann'), (2, 20.0, 'bob')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto* ins = std::get_if<InsertAst>(&r.value());
  ASSERT_NE(ins, nullptr);
  ASSERT_EQ(ins->rows.size(), 2u);
  EXPECT_EQ(ins->rows[0][0].AsInt(), 1);
  EXPECT_EQ(ins->rows[1][2].AsString(), "bob");
}

TEST(StatementParseTest, AnalyzeAndExplain) {
  Result<Statement> a = ParseStatement("ANALYZE emp");
  ASSERT_TRUE(a.ok());
  EXPECT_NE(std::get_if<AnalyzeAst>(&a.value()), nullptr);

  Result<Statement> e = ParseStatement("EXPLAIN SELECT id FROM emp");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  auto* ex = std::get_if<ExplainAst>(&e.value());
  ASSERT_NE(ex, nullptr);
  EXPECT_EQ(ex->select.items.size(), 1u);
  EXPECT_FALSE(ex->analyze);
}

TEST(StatementParseTest, ExplainAnalyze) {
  Result<Statement> e =
      ParseStatement("EXPLAIN ANALYZE SELECT id FROM emp WHERE id > 3");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  auto* ex = std::get_if<ExplainAst>(&e.value());
  ASSERT_NE(ex, nullptr);
  EXPECT_TRUE(ex->analyze);
  EXPECT_EQ(ex->select.items.size(), 1u);

  EXPECT_FALSE(ParseStatement("EXPLAIN ANALYZE").ok());
  EXPECT_FALSE(ParseStatement("EXPLAIN").ok());
}

TEST(StatementParseTest, SelectDispatchesToSelectAst) {
  Result<Statement> r = ParseStatement("SELECT a FROM t WHERE a < 5");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(std::get_if<SelectStmtAst>(&r.value()), nullptr);
}

class StatementErrorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(StatementErrorTest, Rejected) {
  Result<Statement> r = ParseStatement(GetParam());
  EXPECT_FALSE(r.ok()) << "accepted: " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Bad, StatementErrorTest,
    ::testing::Values("", "CREATE", "CREATE VIEW v", "CREATE TABLE t",
                      "CREATE TABLE t (a)", "CREATE TABLE t (a BLOB)",
                      "CREATE INDEX emp (id)", "INSERT emp VALUES (1)",
                      "INSERT INTO emp VALUES 1, 2",
                      "INSERT INTO emp VALUES (SELECT)",
                      "ANALYZE", "DROP t", "DROP INDEX i",
                      "CREATE TABLE t (a INT) garbage",
                      "UPDATE emp", "UPDATE emp SET", "UPDATE emp SET a",
                      "UPDATE emp SET a = 1 WHERE", "DELETE emp",
                      "DELETE FROM emp WHERE a =", "BEGIN garbage",
                      "COMMIT extra", "ROLLBACK now"));

TEST(StatementParseTest, DropTable) {
  Result<Statement> r = ParseStatement("DROP TABLE emp");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto* dt = std::get_if<DropTableAst>(&r.value());
  ASSERT_NE(dt, nullptr);
  EXPECT_EQ(dt->table, "emp");
}

TEST(StatementParseTest, UpdateSetListAndWhere) {
  Result<Statement> r = ParseStatement(
      "UPDATE emp SET salary = 10.5, name = 'ann' "
      "WHERE id >= 3 AND dept <> 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto* up = std::get_if<UpdateAst>(&r.value());
  ASSERT_NE(up, nullptr);
  EXPECT_EQ(up->table, "emp");
  ASSERT_EQ(up->sets.size(), 2u);
  EXPECT_EQ(up->sets[0].first, "salary");
  EXPECT_DOUBLE_EQ(up->sets[0].second.AsDouble(), 10.5);
  EXPECT_EQ(up->sets[1].second.AsString(), "ann");
  ASSERT_EQ(up->where.size(), 2u);
  EXPECT_EQ(up->where[0].op, CmpOp::kGe);
  EXPECT_EQ(up->where[1].op, CmpOp::kNe);
  EXPECT_TRUE(IsDmlStatement(r.value()));
}

TEST(StatementParseTest, UpdateWithoutWhereHitsAllRows) {
  Result<Statement> r = ParseStatement("UPDATE emp SET salary = 0");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto* up = std::get_if<UpdateAst>(&r.value());
  ASSERT_NE(up, nullptr);
  EXPECT_TRUE(up->where.empty());
}

TEST(StatementParseTest, DeleteWithAndWithoutWhere) {
  Result<Statement> all = ParseStatement("DELETE FROM emp");
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  auto* d1 = std::get_if<DeleteAst>(&all.value());
  ASSERT_NE(d1, nullptr);
  EXPECT_EQ(d1->table, "emp");
  EXPECT_TRUE(d1->where.empty());
  EXPECT_TRUE(IsDmlStatement(all.value()));

  Result<Statement> some =
      ParseStatement("DELETE FROM emp WHERE id = 7 AND salary < 100.0");
  ASSERT_TRUE(some.ok()) << some.status().ToString();
  auto* d2 = std::get_if<DeleteAst>(&some.value());
  ASSERT_NE(d2, nullptr);
  ASSERT_EQ(d2->where.size(), 2u);
  EXPECT_EQ(d2->where[1].op, CmpOp::kLt);
}

TEST(StatementParseTest, TransactionControlStatements) {
  Result<Statement> b = ParseStatement("BEGIN");
  ASSERT_TRUE(b.ok());
  EXPECT_NE(std::get_if<BeginTxnAst>(&b.value()), nullptr);
  EXPECT_FALSE(IsDmlStatement(b.value()));

  Result<Statement> bt = ParseStatement("BEGIN TRANSACTION");
  ASSERT_TRUE(bt.ok());
  EXPECT_NE(std::get_if<BeginTxnAst>(&bt.value()), nullptr);

  Result<Statement> c = ParseStatement("COMMIT");
  ASSERT_TRUE(c.ok());
  EXPECT_NE(std::get_if<CommitTxnAst>(&c.value()), nullptr);

  Result<Statement> rb = ParseStatement("ROLLBACK");
  ASSERT_TRUE(rb.ok());
  EXPECT_NE(std::get_if<RollbackTxnAst>(&rb.value()), nullptr);
}

class ExecuteSqlTest : public ::testing::Test {
 protected:
  Database db_;
};

TEST_F(ExecuteSqlTest, FullDdlDmlQueryCycle) {
  Result<QueryResult> r = db_.ExecuteSql(
      "CREATE TABLE emp (id INT PRIMARY KEY, dept INT, salary DOUBLE, "
      "name STRING)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->message.find("created table"), std::string::npos);

  r = db_.ExecuteSql(
      "INSERT INTO emp VALUES (1, 10, 100.0, 'ann'), (2, 10, 200.0, 'bob'), "
      "(3, 20, 300.0, 'cho')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->message.find("3 row"), std::string::npos);

  ASSERT_TRUE(db_.ExecuteSql("CREATE INDEX ON emp (id)").ok());
  ASSERT_TRUE(db_.ExecuteSql("ANALYZE emp").ok());

  Result<QueryResult> q = db_.ExecuteSql(
      "SELECT emp.dept, SUM(salary) AS total FROM emp GROUP BY emp.dept "
      "ORDER BY total");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->rows.size(), 2u);
  EXPECT_EQ(q->rows[0].at(0).AsInt(), 20);
  EXPECT_DOUBLE_EQ(q->rows[0].at(1).AsDouble(), 300.0);
  EXPECT_DOUBLE_EQ(q->rows[1].at(1).AsDouble(), 300.0);

  Result<QueryResult> ex =
      db_.ExecuteSql("EXPLAIN SELECT id FROM emp WHERE id = 2");
  ASSERT_TRUE(ex.ok());
  EXPECT_NE(ex->message.find("rows="), std::string::npos);
  // At 3 rows a sequential scan wins; either way the plan scans emp.
  EXPECT_NE(ex->message.find("emp"), std::string::npos);
}

TEST_F(ExecuteSqlTest, InsertTypeChecks) {
  ASSERT_TRUE(db_.ExecuteSql("CREATE TABLE t (a INT, s STRING)").ok());
  // Arity mismatch.
  EXPECT_FALSE(db_.ExecuteSql("INSERT INTO t VALUES (1)").ok());
  // Type mismatch: string into INT.
  EXPECT_FALSE(db_.ExecuteSql("INSERT INTO t VALUES ('x', 'y')").ok());
  // Numeric coercion int->double column is fine the other way; INT column
  // accepts an integer literal.
  EXPECT_TRUE(db_.ExecuteSql("INSERT INTO t VALUES (1, 'y')").ok());
}

TEST_F(ExecuteSqlTest, PrimaryKeyDeclarationFlowsToCatalog) {
  ASSERT_TRUE(db_.ExecuteSql("CREATE TABLE t (a INT PRIMARY KEY, b INT)").ok());
  Result<TableInfo*> info = db_.catalog()->Get("t");
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info.value()->key_columns.count("a"));
  EXPECT_FALSE(info.value()->key_columns.count("b"));
}

TEST_F(ExecuteSqlTest, DropTableRemovesFromCatalog) {
  ASSERT_TRUE(db_.ExecuteSql("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db_.ExecuteSql("INSERT INTO t VALUES (1), (2)").ok());
  Result<QueryResult> r = db_.ExecuteSql("DROP TABLE t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(db_.catalog()->Exists("t"));
  EXPECT_FALSE(db_.ExecuteSql("SELECT a FROM t").ok());
  EXPECT_FALSE(db_.ExecuteSql("DROP TABLE t").ok());
}

TEST_F(ExecuteSqlTest, UnknownTableErrors) {
  EXPECT_FALSE(db_.ExecuteSql("INSERT INTO nope VALUES (1)").ok());
  EXPECT_FALSE(db_.ExecuteSql("ANALYZE nope").ok());
  EXPECT_FALSE(db_.ExecuteSql("CREATE INDEX ON nope (x)").ok());
}

}  // namespace
}  // namespace reoptdb
