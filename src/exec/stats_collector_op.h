// Statistics-collector operator (paper Section 2.2, Fig. 2).
//
// A streaming pass-through: it examines tuples without copying, blocking or
// I/O. It maintains a running count, average tuple size, and per-column
// min/max (treated as free), plus — where the SCIA asked for them —
// reservoir-sampled histograms and FM-sketch unique-value counts. When its
// input is exhausted it finalizes ObservedStats into its plan node (and the
// observed edge's child node) and flags completion to the dispatcher.

#ifndef REOPTDB_EXEC_STATS_COLLECTOR_OP_H_
#define REOPTDB_EXEC_STATS_COLLECTOR_OP_H_

#include <map>
#include <vector>

#include "exec/operator.h"
#include "stats/fm_sketch.h"
#include "stats/reservoir.h"

namespace reoptdb {

/// \brief Streaming statistics collection.
class StatsCollectorOp : public Operator {
 public:
  StatsCollectorOp(ExecContext* ctx, PlanNode* node) : Operator(ctx, node) {}

  Status OpenImpl() override;
  Result<bool> NextImpl(Tuple* out) override;
  Result<bool> NextBatchImpl(TupleBatch* out) override;
  Status CloseImpl() override;

  /// True once the input is exhausted and observations are published.
  bool finalized() const { return finalized_; }

 private:
  void Observe(const Tuple& t);
  /// Column-major observation of a whole batch: one ChargeStat for the
  /// batch, with the same total (min/max + histogram + sketch work) the
  /// row path charges tuple by tuple.
  void ObserveBatch(const TupleBatch& batch);
  void Finalize();

  struct HistCollector {
    size_t col;
    std::string qualified;
    ReservoirSampler<double> sample;
  };
  struct UniqueCollector {
    size_t col;
    std::string qualified;
    FmSketch sketch;
  };
  struct MinMax {
    bool seen = false;
    double min = 0, max = 0;
  };

  uint64_t count_ = 0;
  /// Serialized bytes seen. Integer accumulation: a double loses precision
  /// past 2^53 and drifts avg_tuple_bytes on large drains.
  uint64_t bytes_ = 0;
  std::vector<MinMax> minmax_;  // per numeric column (always collected)
  std::vector<HistCollector> hists_;
  std::vector<UniqueCollector> uniques_;
  bool finalized_ = false;
};

}  // namespace reoptdb

#endif  // REOPTDB_EXEC_STATS_COLLECTOR_OP_H_
