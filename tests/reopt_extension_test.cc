// Tests for the re-optimization internals added around the controller:
// base-relation overrides for re-invoked optimization, temp-table stats
// construction, the mid-execution memory extension, and remainder-SQL
// round trips.

#include "gtest/gtest.h"
#include "memory/memory_manager.h"
#include "optimizer/optimizer.h"
#include "optimizer/remainder_sql.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "reopt/controller.h"
#include "reopt/scia.h"
#include "test_util.h"
#include "tpcd/dbgen.h"
#include "tpcd/queries.h"

namespace reoptdb {
namespace {

using testing_util::Canon;
using testing_util::LoadEmpDept;

class OverridesTest : public ::testing::Test {
 protected:
  OverridesTest() { LoadEmpDept(&db_, 1000, 10); }

  Result<QuerySpec> BindSql(const std::string& sql) {
    Result<SelectStmtAst> ast = ParseSelect(sql);
    if (!ast.ok()) return ast.status();
    return Bind(ast.value(), *db_.catalog());
  }

  Database db_;
};

TEST_F(OverridesTest, ObservedScanStatsOverrideCatalog) {
  Result<QuerySpec> spec =
      BindSql("SELECT emp_id FROM emp WHERE salary > 3000");
  ASSERT_TRUE(spec.ok());

  // Build a fake partially-executed plan: a scan with observations.
  PlanNode scan;
  scan.kind = OpKind::kSeqScan;
  scan.table = "emp";
  scan.alias = "emp";
  scan.est.cardinality = 700;
  scan.observed.valid = true;
  scan.observed.cardinality = 42;
  scan.observed.avg_tuple_bytes = 50;
  ColumnStats salary_obs;
  salary_obs.type = ValueType::kDouble;
  salary_obs.has_bounds = true;
  salary_obs.min = 3000;
  salary_obs.max = 9000;
  salary_obs.distinct = 40;
  scan.observed.columns["emp.salary"] = salary_obs;

  BaseRelOverrides overrides =
      CollectBaseRelOverrides(scan, spec.value(), *db_.catalog());
  ASSERT_EQ(overrides.size(), 1u);
  ASSERT_TRUE(overrides.count("emp"));
  const DerivedRel& rel = overrides.at("emp");
  EXPECT_DOUBLE_EQ(rel.rows, 42);
  // Observed bounds override the catalog...
  const ColumnStats* sal = rel.Find("emp.salary");
  ASSERT_NE(sal, nullptr);
  EXPECT_DOUBLE_EQ(sal->min, 3000);
  EXPECT_DOUBLE_EQ(sal->distinct, 40);
  // ...while unobserved columns fall back to (capped) catalog stats.
  const ColumnStats* dept = rel.Find("emp.dept_id");
  ASSERT_NE(dept, nullptr);
  EXPECT_LE(dept->distinct, 42);

  // The estimator prefers the override wholesale.
  Estimator est(db_.catalog(), &spec.value(), &overrides);
  Result<DerivedRel> base = est.BaseRel(0);
  ASSERT_TRUE(base.ok());
  EXPECT_DOUBLE_EQ(base.value().rows, 42);
}

TEST_F(OverridesTest, UnobservedScansProduceNoOverride) {
  Result<QuerySpec> spec = BindSql("SELECT emp_id FROM emp");
  ASSERT_TRUE(spec.ok());
  PlanNode scan;
  scan.kind = OpKind::kSeqScan;
  scan.table = "emp";
  scan.alias = "emp";
  BaseRelOverrides overrides =
      CollectBaseRelOverrides(scan, spec.value(), *db_.catalog());
  EXPECT_TRUE(overrides.empty());
}

TEST_F(OverridesTest, BuildTempStatsPrefersObservations) {
  Result<QuerySpec> spec = BindSql(
      "SELECT emp_id FROM emp, dept WHERE emp.dept_id = dept.dept_id");
  ASSERT_TRUE(spec.ok());

  // Frontier: a join whose build-side scan was observed.
  PlanNode frontier;
  frontier.kind = OpKind::kHashJoin;
  frontier.output_schema =
      Schema(std::vector<Column>{{"emp", "emp_id", ValueType::kInt64, 8},
                                 {"emp", "dept_id", ValueType::kInt64, 8},
                                 {"dept", "dept_name", ValueType::kString, 10}});
  frontier.improved.cardinality = 123;
  frontier.improved.avg_tuple_bytes = 40;
  frontier.improved.pages = 2;

  auto child = std::make_unique<PlanNode>();
  child->kind = OpKind::kSeqScan;
  child->observed.valid = true;
  ColumnStats obs;
  obs.type = ValueType::kInt64;
  obs.distinct = 77;
  child->observed.columns["emp.dept_id"] = obs;
  frontier.children.push_back(std::move(child));

  TableStats ts = BuildTempStats(frontier, spec.value(), *db_.catalog());
  EXPECT_DOUBLE_EQ(ts.row_count, 123);
  // Column renamed to the temp convention, stats from the observation.
  ASSERT_TRUE(ts.columns.count("emp__dept_id"));
  EXPECT_DOUBLE_EQ(ts.columns.at("emp__dept_id").distinct, 77);
  // Unobserved column fell back to the catalog (capped by row count).
  ASSERT_TRUE(ts.columns.count("emp__emp_id"));
  EXPECT_LE(ts.columns.at("emp__emp_id").distinct, 123);
}

TEST_F(OverridesTest, RemainderSqlOfSelfJoinParsesAndBinds) {
  Result<QuerySpec> spec = BindSql(
      "SELECT e1.emp_id FROM emp e1, emp e2, dept "
      "WHERE e1.dept_id = e2.dept_id AND e2.dept_id = dept.dept_id "
      "AND e1.salary > 100");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();

  Result<QuerySpec> rem = BuildRemainderSpec(spec.value(), {0, 1}, "__tmpx");
  ASSERT_TRUE(rem.ok());
  // Register a temp table matching the remainder schema so the regenerated
  // SQL binds.
  Schema inter(std::vector<Column>{{"e1", "emp_id", ValueType::kInt64, 8},
                                   {"e1", "dept_id", ValueType::kInt64, 8},
                                   {"e2", "dept_id", ValueType::kInt64, 8}});
  Schema temp_schema = TempTableSchema("__tmpx", inter);
  ASSERT_TRUE(db_.catalog()->CreateTable("__tmpx", temp_schema, true).ok());

  std::string sql = rem.value().ToSql();
  Result<SelectStmtAst> reparsed = ParseSelect(sql);
  ASSERT_TRUE(reparsed.ok()) << sql;
  Result<QuerySpec> rebound = Bind(reparsed.value(), *db_.catalog());
  ASSERT_TRUE(rebound.ok()) << sql << " -> " << rebound.status().ToString();
  EXPECT_EQ(rebound.value().joins.size(), 1u);
  EXPECT_EQ(rebound.value().joins[0].left_col, "e2__dept_id");
}

class MidExecutionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatabaseOptions opts;
    opts.buffer_pool_pages = 128;
    opts.query_mem_pages = 48;
    db_ = new Database(opts);
    tpcd::TpcdOptions gen;
    gen.scale_factor = 0.003;
    gen.update_fraction = 1.0;  // stale catalog: estimates will be wrong
    ASSERT_TRUE(tpcd::Load(db_, gen).ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* MidExecutionTest::db_ = nullptr;

TEST_F(MidExecutionTest, ExtensionPreservesResults) {
  for (const auto& q : tpcd::AllQueries()) {
    ReoptOptions base;
    base.mode = ReoptMode::kMemoryOnly;
    ReoptOptions ext = base;
    ext.mid_execution_memory = true;
    Result<QueryResult> a = db_->ExecuteWith(q.sql, base);
    Result<QueryResult> b = db_->ExecuteWith(q.sql, ext);
    ASSERT_TRUE(a.ok()) << q.name;
    ASSERT_TRUE(b.ok()) << q.name;
    EXPECT_EQ(Canon(a.value().rows), Canon(b.value().rows)) << q.name;
  }
}

TEST_F(MidExecutionTest, ExtensionRecordedInTrace) {
  ReoptOptions ext;
  ext.mode = ReoptMode::kFull;
  ext.mid_execution_memory = true;
  Result<QueryResult> r = db_->ExecuteWith(tpcd::Q5Sql(), ext);
  ASSERT_TRUE(r.ok());
  const QueryTrace& trace = r.value().report.trace;

  // The configuration the query ran under is part of the trace.
  EXPECT_EQ(trace.config.mode, "full");
  EXPECT_TRUE(trace.config.mid_execution_memory);
  EXPECT_DOUBLE_EQ(trace.config.theta2, ext.theta2);

  // Every operator of the executed plan has a span, and the Eq.(2) checks
  // are internally consistent typed records, not parsed strings.
  EXPECT_FALSE(trace.spans.empty());
  ASSERT_FALSE(trace.eq2_checks.empty());
  for (const Eq2Check& c : trace.eq2_checks) {
    EXPECT_GE(c.stage_node_id, 0);
    EXPECT_DOUBLE_EQ(c.theta2, ext.theta2);
    EXPECT_EQ(c.fired, c.degradation > c.theta2);
  }
  // Any mid-execution reallocation names the collector that triggered it.
  for (const MemoryReallocation& m : trace.memory_reallocations) {
    if (!m.mid_execution) continue;
    EXPECT_GE(m.trigger_node_id, 0);
    EXPECT_TRUE(m.kept);
  }
}

TEST_F(MidExecutionTest, ExtensionNeverSlowerThanBaseMemoryMode) {
  // The extension only adds earlier (accepted-if-better) re-allocations;
  // results may match or improve, but the simulated time should not blow
  // up relative to the stage-boundary-only mode.
  for (const char* qname : {"Q5", "Q7", "Q10"}) {
    const tpcd::TpcdQuery* q = nullptr;
    auto all = tpcd::AllQueries();
    for (const auto& cand : all)
      if (std::string(cand.name) == qname) q = &cand;
    ReoptOptions base;
    base.mode = ReoptMode::kMemoryOnly;
    ReoptOptions ext = base;
    ext.mid_execution_memory = true;
    Result<QueryResult> a = db_->ExecuteWith(q->sql, base);
    Result<QueryResult> b = db_->ExecuteWith(q->sql, ext);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_LT(b.value().report.sim_time_ms,
              a.value().report.sim_time_ms * 1.10)
        << qname;
  }
}

}  // namespace
}  // namespace reoptdb
