// Minimal leveled logging to stderr.
//
// Logging defaults to kWarn so library users see problems but not chatter;
// tests and benches raise the level when tracing re-optimization decisions.

#ifndef REOPTDB_COMMON_LOGGING_H_
#define REOPTDB_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace reoptdb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level emitted; returns the previous level.
LogLevel SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void EmitLog(LogLevel level, const char* file, int line, const std::string& msg);

/// Stream collector used by the REOPTDB_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { EmitLog(level_, file_, line_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};
}  // namespace internal

#define REOPTDB_LOG(level)                                             \
  if (::reoptdb::LogLevel::level < ::reoptdb::GetLogLevel()) {         \
  } else                                                               \
    ::reoptdb::internal::LogMessage(::reoptdb::LogLevel::level,        \
                                    __FILE__, __LINE__)                \
        .stream()

}  // namespace reoptdb

#endif  // REOPTDB_COMMON_LOGGING_H_
