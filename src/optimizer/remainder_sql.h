// Remainder-query construction for mid-query plan modification.
//
// After the in-flight operator's output (covering relation set S) is
// redirected to a temp table, "SQL corresponding to the remainder of the
// query is generated in terms of this temporary file [and] re-submitted to
// the parser/optimizer like a regular query" (paper Section 2.4, Fig. 6).

#ifndef REOPTDB_OPTIMIZER_REMAINDER_SQL_H_
#define REOPTDB_OPTIMIZER_REMAINDER_SQL_H_

#include <set>
#include <string>

#include "plan/query_spec.h"
#include "types/schema.h"

namespace reoptdb {

/// Name of a covered relation's column inside the temp table
/// ("alias__col"; the double underscore avoids collisions with base names
/// and keeps self-join aliases distinct).
std::string TempColumnName(const std::string& alias, const std::string& col);

/// Schema for the temp table holding the materialized intermediate result.
/// `intermediate_schema` is the output schema of the completed subtree
/// (columns qualified by their original aliases).
Schema TempTableSchema(const std::string& temp_name,
                       const Schema& intermediate_schema);

/// Builds the remainder query: the original query with the covered
/// relations replaced by the temp table. Filters on covered relations have
/// already been applied inside the completed subtree and are dropped; joins
/// internal to the covered set are dropped; joins crossing the boundary are
/// re-targeted at the temp table's renamed columns.
Result<QuerySpec> BuildRemainderSpec(const QuerySpec& original,
                                     const std::set<int>& covered,
                                     const std::string& temp_name);

}  // namespace reoptdb

#endif  // REOPTDB_OPTIMIZER_REMAINDER_SQL_H_
