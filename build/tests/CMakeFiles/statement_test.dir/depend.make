# Empty dependencies file for statement_test.
# This may be replaced when dependencies are built.
