# Empty compiler generated dependencies file for reoptdb.
# This may be replaced when dependencies are built.
