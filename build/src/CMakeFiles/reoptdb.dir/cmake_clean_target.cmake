file(REMOVE_RECURSE
  "libreoptdb.a"
)
