// System catalog: tables, indexes, and statistics.

#ifndef REOPTDB_CATALOG_CATALOG_H_
#define REOPTDB_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <set>
#include <string>

#include "catalog/column_stats.h"
#include "storage/btree.h"
#include "storage/heap_file.h"
#include "types/schema.h"

namespace reoptdb {

/// \brief Table-level statistics snapshot (what ANALYZE computes).
struct TableStats {
  bool analyzed = false;
  double row_count = 0;
  double page_count = 0;
  double avg_tuple_bytes = 0;
  /// Fraction of rows inserted/updated since the last ANALYZE. The paper's
  /// inaccuracy-potential rules bump all levels when this is significant.
  double update_activity = 0;
  std::map<std::string, ColumnStats> columns;  // bare column name -> stats

  const ColumnStats* Find(const std::string& column) const {
    auto it = columns.find(column);
    return it == columns.end() ? nullptr : &it->second;
  }
};

/// \brief How a table's rows are distributed across simulated shard nodes
/// (DESIGN.md §15). Recorded on the coordinator's catalog entry; the node
/// catalogs hold the per-node partition tables. kNone (the default) means
/// the table lives whole on the coordinator — single-node execution never
/// consults this.
struct TablePartitioning {
  enum class Kind : uint8_t { kNone, kHash, kRange };
  Kind kind = Kind::kNone;
  std::string column;  ///< bare partitioning column name
  int num_shards = 0;

  bool partitioned() const { return kind != Kind::kNone; }
};

/// \brief A table: schema, heap storage, indexes, statistics.
struct TableInfo {
  std::string name;
  Schema schema;                 // columns qualified with the table name
  std::unique_ptr<HeapFile> heap;
  std::map<std::string, std::unique_ptr<BTree>> indexes;  // column -> index
  std::set<std::string> key_columns;  // columns that are unique keys
  TableStats stats;
  bool is_temp = false;
  TablePartitioning partitioning;

  const BTree* FindIndex(const std::string& column) const {
    auto it = indexes.find(column);
    return it == indexes.end() ? nullptr : it->second.get();
  }
};

/// \brief Options controlling ANALYZE.
struct AnalyzeOptions {
  HistogramKind histogram_kind = HistogramKind::kMaxDiff;
  int histogram_buckets = 50;
  /// 0 = scan everything; otherwise reservoir-sample this many rows.
  size_t sample_size = 0;
  uint64_t seed = 42;
};

/// \brief The system catalog.
///
/// Owns every table's storage. Temp tables created by mid-query
/// re-optimization live here too, flagged is_temp, and are dropped when the
/// query finishes.
class Catalog {
 public:
  explicit Catalog(BufferPool* pool) : pool_(pool) {}

  /// Creates an empty table. Columns in `schema` must be qualified with
  /// `name` (the catalog enforces this for unqualified input).
  Result<TableInfo*> CreateTable(const std::string& name, Schema schema,
                                 bool is_temp = false);

  /// Declares `column` a unique key of `table` (for the optimizer's
  /// key-join inaccuracy rule and cardinality bounds).
  Status DeclareKey(const std::string& table, const std::string& column);

  /// Builds a B+-tree index on an int64 column.
  Status CreateIndex(const std::string& table, const std::string& column);

  /// Scans the table and recomputes its statistics.
  Status Analyze(const std::string& table, const AnalyzeOptions& opts);

  /// Overwrites a table's statistics wholesale (used to model stale
  /// catalogs and to register observed statistics for temp tables).
  Status SetStats(const std::string& table, TableStats stats);

  /// Records update activity (fraction of rows changed since ANALYZE).
  Status BumpUpdateActivity(const std::string& table, double fraction);

  /// Records how `table` is distributed across shard nodes (set by the
  /// ShardCluster when it partitions the table; metadata only — the rows
  /// stay in this catalog's heap, which remains the single-node oracle).
  Status SetPartitioning(const std::string& table, TablePartitioning p);

  Result<TableInfo*> Get(const std::string& name);
  Result<const TableInfo*> Get(const std::string& name) const;
  bool Exists(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  /// Drops a table, destroying its heap pages. Required for temp tables.
  Status Drop(const std::string& name);

  /// Removes a table's catalog entry WITHOUT freeing its heap pages and
  /// returns their ids. Models a restart: in-memory bindings vanish while
  /// durable pages survive; recovery either rebinds the pages (AdoptPages,
  /// guided by the query journal) or garbage-collects them.
  Result<std::vector<PageId>> Detach(const std::string& name);

  /// Names of all is_temp tables, in deterministic (map) order.
  std::vector<std::string> TempTableNames() const;

  /// Names of every table (base and temp), in deterministic (map) order.
  std::vector<std::string> TableNames() const;

  /// Fresh name for a mid-query temp table ("__temp1", "__temp2", ...).
  std::string NextTempName() {
    return "__temp" + std::to_string(++temp_counter_);
  }

  BufferPool* buffer_pool() const { return pool_; }

 private:
  BufferPool* pool_;
  std::map<std::string, std::unique_ptr<TableInfo>> tables_;
  int temp_counter_ = 0;
};

}  // namespace reoptdb

#endif  // REOPTDB_CATALOG_CATALOG_H_
