// QuerySpec: a bound, validated query — the optimizer's input.
//
// Mid-query re-optimization round-trips through this form: the remainder of
// a partially executed query is expressed as a new QuerySpec over a temp
// table, rendered to SQL (ToSql), and re-submitted through the parser and
// optimizer like a regular query (the paper's Fig. 6 strategy).

#ifndef REOPTDB_PLAN_QUERY_SPEC_H_
#define REOPTDB_PLAN_QUERY_SPEC_H_

#include <string>
#include <vector>

#include "parser/ast.h"
#include "types/value.h"

namespace reoptdb {

/// A FROM-clause relation: catalog table plus the alias used in the query.
struct RelationRef {
  std::string alias;
  std::string table;
};

/// A resolved column: relation ordinal plus bare column name.
struct ColumnId {
  int rel = -1;
  std::string column;
  ValueType type = ValueType::kInt64;

  bool operator==(const ColumnId& o) const {
    return rel == o.rel && column == o.column;
  }
};

/// Single-relation predicate: `col op literal`, or `col op col2` with both
/// columns from the same relation.
struct FilterPred {
  int rel = -1;
  std::string column;
  CmpOp op = CmpOp::kEq;
  bool rhs_is_column = false;
  Value literal;           // when !rhs_is_column
  std::string rhs_column;  // when rhs_is_column (same relation)
};

/// Equi-join predicate between two relations (canonical: left_rel < right_rel).
struct JoinPred {
  int left_rel = -1;
  std::string left_col;
  int right_rel = -1;
  std::string right_col;
};

/// One SELECT-list item (plain column or aggregate).
struct OutputItem {
  AggFunc agg = AggFunc::kNone;
  bool count_star = false;
  ColumnId col;       // unused when count_star
  std::string name;   // output column name
};

/// \brief A bound query.
struct QuerySpec {
  std::vector<RelationRef> relations;
  std::vector<FilterPred> filters;
  std::vector<JoinPred> joins;
  std::vector<OutputItem> items;
  std::vector<ColumnId> group_by;
  /// (index into items, ascending).
  std::vector<std::pair<int, bool>> order_by;
  int64_t limit = -1;

  bool has_aggregates() const {
    for (const OutputItem& it : items)
      if (it.agg != AggFunc::kNone) return true;
    return false;
  }

  /// Qualified name "alias.column" for display / SQL generation.
  std::string Qualified(const ColumnId& c) const {
    return relations[c.rel].alias + "." + c.column;
  }

  /// Renders the spec back to SQL text.
  std::string ToSql() const;
};

}  // namespace reoptdb

#endif  // REOPTDB_PLAN_QUERY_SPEC_H_
