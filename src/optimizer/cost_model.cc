#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

#include "storage/page.h"

namespace reoptdb {

double CostModel::TimeMs(uint64_t page_ios, const CpuWork& cpu) const {
  return params_.t_io_ms * static_cast<double>(page_ios) +
         params_.t_cpu_tuple_ms * static_cast<double>(cpu.tuples) +
         params_.t_hash_ms * static_cast<double>(cpu.hash_ops) +
         params_.t_cmp_ms * static_cast<double>(cpu.cmp_ops) +
         params_.t_stat_ms * static_cast<double>(cpu.stat_ops) +
         params_.t_minmax_ms * static_cast<double>(cpu.minmax_ops);
}

double CostModel::SeqScan(double pages, double rows) const {
  return params_.t_io_ms * pages + params_.t_cpu_tuple_ms * rows;
}

double CostModel::IndexScan(double height, double matches, double leaf_pages,
                            double match_io_prob) const {
  return params_.t_io_ms * (height + leaf_pages) +
         matches * (params_.t_cpu_tuple_ms +
                    params_.t_io_ms * std::clamp(match_io_prob, 0.0, 1.0));
}

double CostModel::HashJoin(double build_rows, double build_pages,
                           double probe_rows, double probe_pages,
                           double mem_pages, double out_rows,
                           int* passes) const {
  const double needed = HashJoinMaxMem(build_pages);
  // Hash-table inserts cost slightly more than probes; this also breaks
  // orientation ties toward the smaller build side.
  double cpu = params_.t_hash_ms * (1.05 * build_rows + probe_rows) +
               params_.t_cpu_tuple_ms * out_rows;
  int np = 0;
  double io = 0;
  if (needed > mem_pages) {
    // Grace-style partitioning. The first overflow costs one full
    // write+read pass over both inputs. After a pass with fanout F each
    // partition holds ~1/F of the data: if that still exceeds memory,
    // (essentially) every partition overflows and the executor pays
    // another full pass; near the boundary only some partitions overflow,
    // charged fractionally. Note the asymmetry: only the BUILD side's size
    // determines the depth, which steers plans toward small build sides.
    double fanout = std::max(2.0, std::min(mem_pages - 1, 32.0));
    double deeper = 0;
    double part_size = needed / fanout;
    int levels = 0;
    while (part_size > mem_pages && levels < 6) {
      deeper += 1.0;
      part_size /= fanout;
      ++levels;
    }
    // Hash variance: partitions within ~25% of the budget spill sometimes.
    if (part_size > 0.75 * mem_pages)
      deeper += (part_size / mem_pages - 0.75) * 2.0;
    io = 2.0 * (build_pages + probe_pages) * (1.0 + deeper);
    np = 1 + static_cast<int>(std::ceil(deeper));
    cpu += params_.t_cpu_tuple_ms * (build_rows + probe_rows) * np;
    // Reloading spilled build partitions re-hashes every build row; this
    // (real, measured) asymmetry steers plans toward small build sides.
    cpu += params_.t_hash_ms * build_rows * np;
  }
  if (passes) *passes = np;
  return io * params_.t_io_ms + cpu;
}

double CostModel::MergeJoin(double left_rows, double right_rows,
                            double out_rows) const {
  return params_.t_cmp_ms * (left_rows + right_rows) +
         params_.t_cpu_tuple_ms * out_rows;
}

double CostModel::IndexNLJoin(double outer_rows, double inner_height,
                              double total_matches,
                              double match_io_prob) const {
  // Upper index levels cache perfectly; assume one uncached page per probe
  // descent plus a possible heap fetch per match.
  double probe_io = outer_rows * std::min(inner_height, 1.0) *
                    std::clamp(match_io_prob, 0.05, 1.0);
  return params_.t_io_ms * probe_io +
         params_.t_hash_ms * outer_rows +
         total_matches * (params_.t_cpu_tuple_ms +
                          params_.t_io_ms * std::clamp(match_io_prob, 0.0, 1.0));
}

double CostModel::HashAggregate(double in_rows, double in_pages, double groups,
                                double group_bytes, double mem_pages) const {
  double cpu = params_.t_hash_ms * in_rows + params_.t_cpu_tuple_ms * groups;
  double needed = AggregateMaxMem(groups, group_bytes);
  double io = 0;
  if (needed > mem_pages) {
    // Spill: partition the input once (write + read), then aggregate
    // partitions in memory.
    io = 2.0 * in_pages;
    cpu += params_.t_cpu_tuple_ms * in_rows;
  }
  return io * params_.t_io_ms + cpu;
}

double CostModel::Sort(double rows, double pages, double mem_pages) const {
  double cpu = params_.t_cmp_ms * rows * std::log2(std::max(2.0, rows));
  if (pages <= mem_pages) return cpu;
  double runs = std::ceil(pages / std::max(1.0, mem_pages));
  double fan_in = std::max(2.0, mem_pages - 1);
  double merge_passes = std::ceil(std::log(runs) / std::log(fan_in));
  // Run generation (write+read) plus each extra merge pass.
  double io = 2.0 * pages * std::max(1.0, merge_passes);
  return io * params_.t_io_ms + cpu;
}

double CostModel::Materialize(double pages) const {
  return 2.0 * pages * params_.t_io_ms;
}

double CostModel::NetTransfer(double bytes, double msgs) const {
  return bytes * params_.t_net_byte_ms + msgs * params_.t_net_msg_ms;
}

double CostModel::Collector(double rows, int num_stats,
                            int minmax_cols) const {
  // Cardinality/size counters are treated as free (paper Section 2.5);
  // histograms and unique-count sketches cost t_stat per tuple each.
  // Per-column min/max maintenance — formerly treated as free, letting
  // real collector work go unaccounted on wide schemas — is charged at
  // its own (much cheaper) rate.
  return rows * (params_.t_stat_ms * num_stats +
                 params_.t_minmax_ms * minmax_cols);
}

double CostModel::HashJoinMaxMem(double build_pages) const {
  return std::max(2.0, std::ceil(params_.hash_fudge * build_pages));
}
double CostModel::HashJoinMinMem(double build_pages) const {
  return std::max(2.0, std::ceil(std::sqrt(params_.hash_fudge * build_pages)));
}
double CostModel::AggregateMaxMem(double groups, double group_bytes) const {
  double pages = groups * group_bytes * params_.hash_fudge / kPageSize;
  return std::max(1.0, std::ceil(pages));
}
double CostModel::AggregateMinMem(double groups, double group_bytes) const {
  return std::max(1.0, std::ceil(std::sqrt(AggregateMaxMem(groups, group_bytes))));
}
double CostModel::SortMaxMem(double input_pages) const {
  return std::max(1.0, input_pages);
}
double CostModel::SortMinMem(double input_pages) const {
  return std::max(2.0, std::ceil(std::sqrt(input_pages)));
}

}  // namespace reoptdb
