#include "reopt/query_journal.h"

#include <algorithm>
#include <cstdlib>

#include "obs/json.h"

namespace reoptdb {

namespace {

using obs::JsonValue;

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvHash(const std::string& s) {
  uint64_t h = kFnvOffset;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

double GetNum(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->is_number() ? v->AsNumber() : 0;
}

bool GetBool(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->is_bool() && v->AsBool();
}

std::string GetStr(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : std::string();
}

// Doubles round-trip exactly through JsonValue's shortest-round-trip
// format, so uint64 values (checksums, page ids) are carried as strings to
// avoid the 2^53 mantissa limit.
JsonValue U64(uint64_t v) { return JsonValue::MakeString(std::to_string(v)); }

uint64_t GetU64(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->is_string()) return 0;
  return std::strtoull(v->AsString().c_str(), nullptr, 10);
}

JsonValue StatsJson(const TableStats& s) {
  JsonValue o = JsonValue::MakeObject();
  o.Set("analyzed", JsonValue::MakeBool(s.analyzed));
  o.Set("row_count", JsonValue::MakeNumber(s.row_count));
  o.Set("page_count", JsonValue::MakeNumber(s.page_count));
  o.Set("avg_tuple_bytes", JsonValue::MakeNumber(s.avg_tuple_bytes));
  o.Set("update_activity", JsonValue::MakeNumber(s.update_activity));
  JsonValue cols = JsonValue::MakeArray();
  for (const auto& [name, cs] : s.columns) {
    JsonValue c = JsonValue::MakeObject();
    c.Set("name", JsonValue::MakeString(name));
    c.Set("type", JsonValue::MakeNumber(static_cast<int>(cs.type)));
    c.Set("has_bounds", JsonValue::MakeBool(cs.has_bounds));
    c.Set("min", JsonValue::MakeNumber(cs.min));
    c.Set("max", JsonValue::MakeNumber(cs.max));
    c.Set("distinct", JsonValue::MakeNumber(cs.distinct));
    c.Set("distinct_lb", JsonValue::MakeBool(cs.distinct_is_lower_bound));
    c.Set("avg_width", JsonValue::MakeNumber(cs.avg_width));
    cols.Append(std::move(c));
  }
  o.Set("columns", std::move(cols));
  return o;
}

TableStats StatsFromJson(const JsonValue& o) {
  TableStats s;
  s.analyzed = GetBool(o, "analyzed");
  s.row_count = GetNum(o, "row_count");
  s.page_count = GetNum(o, "page_count");
  s.avg_tuple_bytes = GetNum(o, "avg_tuple_bytes");
  s.update_activity = GetNum(o, "update_activity");
  if (const JsonValue* cols = o.Find("columns");
      cols != nullptr && cols->is_array()) {
    for (const JsonValue& c : cols->items()) {
      ColumnStats cs;
      cs.type = static_cast<ValueType>(static_cast<int>(GetNum(c, "type")));
      cs.has_bounds = GetBool(c, "has_bounds");
      cs.min = GetNum(c, "min");
      cs.max = GetNum(c, "max");
      cs.distinct = GetNum(c, "distinct");
      cs.distinct_is_lower_bound = GetBool(c, "distinct_lb");
      cs.avg_width = GetNum(c, "avg_width");
      s.columns[GetStr(c, "name")] = std::move(cs);
    }
  }
  return s;
}

JsonValue SnapshotJson(const TempSnapshot& t) {
  JsonValue o = JsonValue::MakeObject();
  o.Set("name", JsonValue::MakeString(t.name));
  JsonValue schema = JsonValue::MakeArray();
  for (const Column& c : t.schema.columns()) {
    JsonValue col = JsonValue::MakeObject();
    col.Set("qualifier", JsonValue::MakeString(c.qualifier));
    col.Set("name", JsonValue::MakeString(c.name));
    col.Set("type", JsonValue::MakeNumber(static_cast<int>(c.type)));
    col.Set("avg_width", JsonValue::MakeNumber(c.avg_width));
    schema.Append(std::move(col));
  }
  o.Set("schema", std::move(schema));
  JsonValue pages = JsonValue::MakeArray();
  for (PageId id : t.page_ids)
    pages.Append(JsonValue::MakeNumber(static_cast<double>(id)));
  o.Set("page_ids", std::move(pages));
  o.Set("tuple_count", U64(t.tuple_count));
  o.Set("total_tuple_bytes", U64(t.total_tuple_bytes));
  o.Set("content_checksum", U64(t.content_checksum));
  o.Set("stats", StatsJson(t.stats));
  return o;
}

Result<TempSnapshot> SnapshotFromJson(const JsonValue& o) {
  TempSnapshot t;
  t.name = GetStr(o, "name");
  if (t.name.empty())
    return Status::ParseError("journal: temp snapshot missing name");
  const JsonValue* schema = o.Find("schema");
  if (schema == nullptr || !schema->is_array())
    return Status::ParseError("journal: temp snapshot missing schema");
  std::vector<Column> cols;
  for (const JsonValue& c : schema->items()) {
    Column col;
    col.qualifier = GetStr(c, "qualifier");
    col.name = GetStr(c, "name");
    col.type = static_cast<ValueType>(static_cast<int>(GetNum(c, "type")));
    col.avg_width = GetNum(c, "avg_width");
    cols.push_back(std::move(col));
  }
  t.schema = Schema(std::move(cols));
  if (const JsonValue* pages = o.Find("page_ids");
      pages != nullptr && pages->is_array()) {
    for (const JsonValue& p : pages->items())
      t.page_ids.push_back(static_cast<PageId>(p.AsNumber()));
  }
  t.tuple_count = GetU64(o, "tuple_count");
  t.total_tuple_bytes = GetU64(o, "total_tuple_bytes");
  t.content_checksum = GetU64(o, "content_checksum");
  if (const JsonValue* stats = o.Find("stats");
      stats != nullptr && stats->is_object()) {
    t.stats = StatsFromJson(*stats);
  }
  return t;
}

std::string SerializeStage(const JournalStage& stage) {
  JsonValue root = JsonValue::MakeObject();
  root.Set("root_sql", JsonValue::MakeString(stage.root_sql));
  root.Set("stage", JsonValue::MakeNumber(stage.stage));
  root.Set("remainder_sql", JsonValue::MakeString(stage.remainder_sql));
  root.Set("plan_fingerprint", U64(stage.plan_fingerprint));
  root.Set("work_done_ms", JsonValue::MakeNumber(stage.work_done_ms));
  root.Set("membership_epoch", U64(stage.membership_epoch));
  JsonValue budgets = JsonValue::MakeArray();
  for (const auto& [node, pages] : stage.budgets) {
    JsonValue b = JsonValue::MakeObject();
    b.Set("node", JsonValue::MakeNumber(node));
    b.Set("pages", JsonValue::MakeNumber(pages));
    budgets.Append(std::move(b));
  }
  root.Set("budgets", std::move(budgets));
  JsonValue temps = JsonValue::MakeArray();
  for (const TempSnapshot& t : stage.temps) temps.Append(SnapshotJson(t));
  root.Set("temps", std::move(temps));
  return root.Serialize();
}

Result<JournalStage> ParseStage(const std::string& payload) {
  ASSIGN_OR_RETURN(JsonValue root, obs::ParseJson(payload));
  if (!root.is_object())
    return Status::ParseError("journal: record is not an object");
  JournalStage stage;
  stage.root_sql = GetStr(root, "root_sql");
  stage.stage = static_cast<int>(GetNum(root, "stage"));
  stage.remainder_sql = GetStr(root, "remainder_sql");
  stage.plan_fingerprint = GetU64(root, "plan_fingerprint");
  stage.work_done_ms = GetNum(root, "work_done_ms");
  stage.membership_epoch = GetU64(root, "membership_epoch");
  if (stage.root_sql.empty() || stage.remainder_sql.empty() ||
      stage.stage <= 0)
    return Status::ParseError("journal: record missing required fields");
  if (const JsonValue* budgets = root.Find("budgets");
      budgets != nullptr && budgets->is_array()) {
    for (const JsonValue& b : budgets->items())
      stage.budgets.emplace_back(static_cast<int>(GetNum(b, "node")),
                                 GetNum(b, "pages"));
  }
  const JsonValue* temps = root.Find("temps");
  if (temps == nullptr || !temps->is_array())
    return Status::ParseError("journal: record missing temps");
  for (const JsonValue& t : temps->items()) {
    ASSIGN_OR_RETURN(TempSnapshot snap, SnapshotFromJson(t));
    stage.temps.push_back(std::move(snap));
  }
  return stage;
}

}  // namespace

uint64_t FingerprintPlanText(const std::string& plan_text) {
  return FnvHash(plan_text);
}

Status QueryJournal::AppendStage(const JournalStage& stage,
                                 FaultInjector* faults) {
  // Checked before anything is written: an injected crash or write error
  // here models dying during the fsync — the previous records (and the
  // previous stage's resume point) stay intact.
  if (faults != nullptr)
    RETURN_IF_ERROR(faults->Check(faults::kJournalAppend));
  Record rec;
  rec.payload = SerializeStage(stage);
  rec.checksum = FnvHash(rec.payload);
  rec.root_sql = stage.root_sql;
  records_.push_back(std::move(rec));
  // Compact: the new self-contained record supersedes earlier stages of
  // the same root query. Done only after the append succeeded, so a
  // failure above can never lose the old resume point.
  const std::string& root = records_.back().root_sql;
  for (size_t i = records_.size() - 1; i-- > 0;) {
    if (records_[i].root_sql == root)
      records_.erase(records_.begin() + static_cast<long>(i));
  }
  return Status::OK();
}

Result<std::vector<JournalStage>> QueryJournal::Load(
    FaultInjector* faults) const {
  if (faults != nullptr)
    RETURN_IF_ERROR(faults->Check(faults::kRecoveryLoad));
  std::vector<JournalStage> stages;
  for (size_t i = 0; i < records_.size(); ++i) {
    const Record& rec = records_[i];
    if (FnvHash(rec.payload) != rec.checksum)
      return Status::IoError("journal record " + std::to_string(i) +
                             " failed checksum verification");
    ASSIGN_OR_RETURN(JournalStage stage, ParseStage(rec.payload));
    stages.push_back(std::move(stage));
  }
  return stages;
}

void QueryJournal::MarkComplete(const std::string& root_sql) {
  records_.erase(std::remove_if(records_.begin(), records_.end(),
                                [&](const Record& r) {
                                  return r.root_sql == root_sql;
                                }),
                 records_.end());
}

void QueryJournal::CorruptRecordForTesting(size_t index) {
  if (index >= records_.size()) return;
  std::string& p = records_[index].payload;
  for (size_t i = 0; i < p.size() && i < 16; ++i) p[i] ^= 0x5a;
}

}  // namespace reoptdb
