# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for reopt_extension_test.
