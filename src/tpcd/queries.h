// The paper's TPC-D query set: Q1, Q3, Q5, Q6, Q7, Q8, Q10.
//
// Queries are simplified exactly as the paper's footnote 4 describes
// (aggregates over expressions become single-column aggregates) and adapted
// to the engine's SQL subset (YEAR(date) becomes the generator's derived
// year columns; Q7's symmetric nation disjunction keeps one branch).
//
// The paper's classification (Section 3.2):
//   simple  (0-1 joins):  Q1, Q6  — never re-optimized
//   medium  (2-3 joins):  Q3, Q10 — benefit from memory re-allocation
//   complex (4+  joins):  Q5, Q7, Q8 — primary targets of plan modification

#ifndef REOPTDB_TPCD_QUERIES_H_
#define REOPTDB_TPCD_QUERIES_H_

#include <string>
#include <vector>

namespace reoptdb {
namespace tpcd {

/// Query complexity classes from the paper.
enum class QueryClass { kSimple, kMedium, kComplex };

struct TpcdQuery {
  const char* name;  ///< "Q1", "Q3", ...
  QueryClass cls;
  std::string sql;
};

std::string Q1Sql();
std::string Q3Sql();
std::string Q5Sql();
std::string Q6Sql();
std::string Q7Sql();
std::string Q8Sql();
std::string Q10Sql();

/// All seven queries in the paper's order.
std::vector<TpcdQuery> AllQueries();

const char* QueryClassName(QueryClass cls);

}  // namespace tpcd
}  // namespace reoptdb

#endif  // REOPTDB_TPCD_QUERIES_H_
