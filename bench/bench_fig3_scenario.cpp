// Figure 3 scenario: dynamic memory re-allocation on the running example.
//
// Reproduces the paper's Section 2.3 narrative. The filter over Rel1
// carries two anti-correlated attributes, so the optimizer's independence
// assumption OVERestimates its output by ~2x (paper: estimated 15000
// tuples, actual 7500). The group-by column inherits the same 2x error:
// its estimated group count (and therefore the aggregate's estimated
// memory demand) is twice reality. Under a budget that cannot satisfy
// both the second join's and the aggregate's estimated maxima, the
// allocator funds the (overestimated) aggregate and leaves the second
// hash join short — it runs in multiple passes. With Dynamic
// Re-Optimization, the first join's collector reveals the true filter
// cardinality, the Memory Manager re-divides — the aggregate's demand
// halves, the freed pages go to the second join — and the second join
// completes in one pass.

#include "bench_common.h"
#include "common/rng.h"

using namespace reoptdb;
using namespace reoptdb::bench;

namespace {

void LoadRunningExample(Database* db, int n1, int n2, int n3) {
  Rng rng(7);
  // Paper proportions (Fig. 3): filter(Rel1) ~3MB estimated is the
  // smallest build candidate; Rel2 (~8MB) and Rel3 are larger, so the
  // optimizer builds the first hash join on the filtered Rel1 and the
  // second on the first join's output.
  Schema r1(std::vector<Column>{{"", "selectattr1", ValueType::kInt64, 8},
                                {"", "selectattr2", ValueType::kInt64, 8},
                                {"", "joinattr2", ValueType::kInt64, 8},
                                {"", "joinattr3", ValueType::kInt64, 8},
                                {"", "groupattr", ValueType::kInt64, 8},
                                {"", "payload1", ValueType::kString, 24}});
  Schema r2(std::vector<Column>{{"", "joinattr2", ValueType::kInt64, 8},
                                {"", "payload2", ValueType::kString, 24}});
  Schema r3(std::vector<Column>{{"", "joinattr3", ValueType::kInt64, 8},
                                {"", "payload3", ValueType::kString, 24}});
  (void)db->CreateTable("rel1", r1);
  (void)db->CreateTable("rel2", r2);
  (void)db->CreateTable("rel3", r3);
  std::string pay1(100, 'x');
  std::string pay(160, 'y');
  for (int i = 0; i < n1; ++i) {
    int64_t a1 = rng.NextInt(0, 999);
    // Half the rows anti-correlate selectattr2 with selectattr1; the
    // conjunction (a1 < 500 AND a2 < 500) is half as selective as the
    // independence assumption predicts.
    int64_t a2 = rng.NextBool(0.5) ? 999 - a1 : rng.NextInt(0, 999);
    (void)db->Insert(
        "rel1", Tuple({Value(a1), Value(a2),
                       Value(rng.NextInt(0, n2 - 1)),
                       Value(rng.NextInt(0, n3 - 1)),
                       // High-cardinality group key: the estimated group
                       // count scales with the (overestimated) filter
                       // output, giving the aggregate an inflated memory
                       // demand that competes with the second join.
                       Value(rng.NextInt(0, n1 - 1)), Value(pay1)}));
  }
  for (int i = 0; i < n2; ++i)
    (void)db->Insert("rel2", Tuple({Value(int64_t{i}), Value(pay)}));
  for (int i = 0; i < n3; ++i)
    (void)db->Insert("rel3", Tuple({Value(int64_t{i}), Value(pay)}));
  (void)db->DeclareKey("rel2", "joinattr2");
  (void)db->DeclareKey("rel3", "joinattr3");
  for (const char* t : {"rel1", "rel2", "rel3"}) (void)db->Analyze(t);
}

int CountEvents(const QueryResult& r, const char* needle) {
  int n = 0;
  for (const std::string& e : r.report.events)
    if (e.find(needle) != std::string::npos) ++n;
  return n;
}

}  // namespace

int main() {
  BenchConfig cfg = BenchConfig::FromEnv();
  std::printf("\n## Figure 3 scenario: memory re-allocation on the running "
              "example\n\n");

  DatabaseOptions opts;
  opts.buffer_pool_pages = 64;
  // ~6.4 MB: scarce enough that the estimate-based division starves the
  // second join (the first join and the overestimated aggregate consume
  // the budget), while the observed ~2x-smaller cardinalities let the
  // re-allocation hand the second join a one-pass budget. The working
  // region is wide (~780-900 pages); REOPTDB_BENCH_MEM overrides it for
  // sensitivity runs.
  opts.query_mem_pages = 800;
  if (std::getenv("REOPTDB_BENCH_MEM") != nullptr)
    opts.query_mem_pages = cfg.query_mem_pages;
  Database db(opts);
  LoadRunningExample(&db, 60000, 40000, 30000);

  const std::string sql =
      "SELECT groupattr, AVG(selectattr1) AS avg1, AVG(selectattr2) AS avg2 "
      "FROM rel1, rel2, rel3 "
      "WHERE selectattr1 < 500 AND selectattr2 < 500 "
      "AND rel1.joinattr2 = rel2.joinattr2 "
      "AND rel1.joinattr3 = rel3.joinattr3 "
      "GROUP BY groupattr";

  QueryResult normal = MustRun(&db, sql, Mode(ReoptMode::kOff));
  QueryResult reopt = MustRun(&db, sql, Mode(ReoptMode::kMemoryOnly));

  std::printf("| run | time ms | page I/Os | join spills | reallocations |\n");
  std::printf("|---|---|---|---|---|\n");
  std::printf("| normal      | %.1f | %llu | %d | - |\n",
              normal.report.sim_time_ms,
              static_cast<unsigned long long>(normal.report.page_ios),
              CountEvents(normal, "exceeded budget"));
  std::printf("| re-optimized | %.1f | %llu | %d | %d |\n",
              reopt.report.sim_time_ms,
              static_cast<unsigned long long>(reopt.report.page_ios),
              CountEvents(reopt, "exceeded budget"),
              reopt.report.memory_reallocations);

  for (const EdgeComparison& e : reopt.report.edges) {
    std::printf("  observed edge %d: estimated %.0f rows, actual %.0f\n",
                e.node_id, e.estimated_rows, e.observed_rows);
  }
  double imp = (1.0 - reopt.report.sim_time_ms / normal.report.sim_time_ms);
  std::printf("\nimprovement: %+.1f%% (paper narrative: the observed filter "
              "cardinality halves the second join's demand, unlocking a "
              "one-pass join)\n", imp * 100);
  return 0;
}
