#include "exec/exec_context.h"

#include <cstdio>

namespace reoptdb {

ExecContext::ExecContext(BufferPool* pool, Catalog* catalog,
                         const CostModel* cost, uint64_t seed)
    : pool_(pool), catalog_(catalog), cost_(cost), rng_(seed) {
  disk_start_ = pool->disk()->stats();
}

uint64_t ExecContext::PageIos() const {
  DiskStats d = io_acc_ + (pool_->disk()->stats() - disk_start_);
  return d.page_reads + d.page_writes;
}

double ExecContext::SimElapsedMs() const {
  DiskStats d = io_acc_ + (pool_->disk()->stats() - disk_start_);
  return cost_->TimeMs(d.page_reads + d.page_writes, cpu_) +
         d.retry_penalty_ms + external_ms_;
}

Status ExecContext::CheckCancelled() const {
  // A pending injected crash terminates the query from any depth, like
  // cancellation — except callers treat kCrashed as process death and skip
  // query-level cleanup (temp tables and the journal survive for recovery).
  if (faults_ && faults_->crash_pending())
    return Status::Crashed("crash pending: query terminated");
  if (cancel_.cancelled()) return Status::Cancelled("query cancelled");
  if (deadline_ms_ > 0 && SimElapsedMs() > deadline_ms_) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "deadline exceeded (%.3fms > %.3fms simulated)",
                  SimElapsedMs(), deadline_ms_);
    return Status::Cancelled(buf);
  }
  return Status::OK();
}

}  // namespace reoptdb
