// Abstract syntax tree for the SQL subset.
//
// Grammar (informal):
//   query      := SELECT items FROM table_ref (',' table_ref)*
//                 [WHERE pred (AND pred)*]
//                 [GROUP BY col (',' col)*]
//                 [ORDER BY col [ASC|DESC] (',' ...)*]
//                 [LIMIT n] [';']
//   item       := col | agg '(' col ')' [AS ident] | COUNT '(' '*' ')' [AS ident]
//   table_ref  := ident [ident]                 -- optional alias
//   pred       := operand cmp operand | col BETWEEN lit AND lit
//   operand    := col | literal
//   col        := ident | ident '.' ident

#ifndef REOPTDB_PARSER_AST_H_
#define REOPTDB_PARSER_AST_H_

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "types/value.h"

namespace reoptdb {

/// Comparison operators.
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op);

/// Flips the operator for swapped operands (a < b  <=>  b > a).
CmpOp FlipCmp(CmpOp op);

/// Aggregate functions.
enum class AggFunc : uint8_t { kNone, kCount, kSum, kAvg, kMin, kMax };

const char* AggFuncName(AggFunc f);

/// Possibly qualified column reference ("alias.col" or "col").
struct ColumnRefAst {
  std::string qualifier;  // empty when unqualified
  std::string name;

  std::string ToString() const {
    return qualifier.empty() ? name : qualifier + "." + name;
  }
};

/// Either a column ref or a literal value.
using OperandAst = std::variant<ColumnRefAst, Value>;

/// One conjunct of the WHERE clause.
struct PredicateAst {
  OperandAst lhs;
  CmpOp op = CmpOp::kEq;
  OperandAst rhs;
};

/// One item of the SELECT list.
struct SelectItemAst {
  AggFunc agg = AggFunc::kNone;
  bool count_star = false;   // COUNT(*)
  bool star = false;         // bare '*': expand to all columns
  ColumnRefAst column;       // unused when count_star/star
  std::string alias;         // optional output name
};

/// A FROM-clause entry.
struct TableRefAst {
  std::string table;
  std::string alias;  // defaults to table name
};

/// ORDER BY entry.
struct OrderByAst {
  ColumnRefAst column;
  bool ascending = true;
};

/// A parsed SELECT statement.
struct SelectStmtAst {
  std::vector<SelectItemAst> items;
  std::vector<TableRefAst> tables;
  std::vector<PredicateAst> predicates;  // implicitly AND-ed
  std::vector<ColumnRefAst> group_by;
  std::vector<OrderByAst> order_by;
  int64_t limit = -1;  // -1 = no limit
};

}  // namespace reoptdb

#endif  // REOPTDB_PARSER_AST_H_
