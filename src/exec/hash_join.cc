#include "exec/hash_join.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace reoptdb {

namespace {
constexpr double kRowOverheadBytes = 16;  // hash entry slack
constexpr int kMaxRecursionDepth = 6;

uint64_t SaltedHash(uint64_t h, int depth) {
  return depth == 0 ? h : SplitMix64(h ^ (0x9e3779b97f4a7c15ULL * depth));
}
}  // namespace

Status HashJoinOp::OpenImpl() {
  RETURN_IF_ERROR(OpenChildren());
  const Schema& build_schema = child(0)->OutputSchema();
  const Schema& probe_schema = child(1)->OutputSchema();
  for (const std::string& k : node_->left_keys) {
    ASSIGN_OR_RETURN(size_t i, build_schema.IndexOf(k));
    build_keys_.push_back(i);
  }
  for (const std::string& k : node_->right_keys) {
    ASSIGN_OR_RETURN(size_t i, probe_schema.IndexOf(k));
    probe_keys_.push_back(i);
  }
  budget_bytes_ =
      std::max(2.0, node_->mem_budget_pages > 0 ? node_->mem_budget_pages : 64) *
      kPageSize;
  open_budget_bytes_ = budget_bytes_;
  fanout_ = static_cast<size_t>(
      std::clamp(node_->mem_budget_pages - 1, 2.0, 32.0));
  return Status::OK();
}

Status HashJoinOp::RecordSpill(const char* reason, int partitions) {
  if (ctx_->faults() != nullptr)
    RETURN_IF_ERROR(ctx_->faults()->Check(faults::kExecSpill));
  SpillEvent ev;
  ev.plan_generation = ctx_->plan_generation();
  ev.node_id = node_->id;
  ev.op = "hash-join";
  ev.reason = reason;
  ev.partitions = partitions;
  ev.at_ms = ctx_->SimElapsedMs();
  ctx_->trace()->spills.push_back(std::move(ev));
  return Status::OK();
}

uint64_t HashJoinOp::BuildHash(const Tuple& t, int depth) const {
  return SaltedHash(t.HashOn(build_keys_), depth);
}
uint64_t HashJoinOp::ProbeHash(const Tuple& t, int depth) const {
  return SaltedHash(t.HashOn(probe_keys_), depth);
}

void HashJoinOp::InsertBuildRow(Tuple row) {
  mem_bytes_ += static_cast<double>(row.SerializedSize()) + kRowOverheadBytes;
  table_.emplace(BuildHash(row, current_depth_), build_rows_.size());
  build_rows_.push_back(std::move(row));
}

Status HashJoinOp::SpillBuild() {
  RETURN_IF_ERROR(RecordSpill(
      budget_bytes_ < open_budget_bytes_ ? "shrink" : "budget",
      static_cast<int>(fanout_)));
  build_parts_.clear();
  for (size_t i = 0; i < fanout_; ++i)
    build_parts_.push_back(ctx_->MakeTempHeap());
  for (const Tuple& row : build_rows_) {
    uint64_t h = BuildHash(row, current_depth_ + 1);
    RETURN_IF_ERROR(
        build_parts_[h % fanout_]->Append(row).status());
    ctx_->ChargeHash(1);
  }
  build_rows_.clear();
  table_.clear();
  mem_bytes_ = 0;
  in_memory_ = false;
  ++passes_;
  ctx_->AddEvent("hash-join " + std::to_string(node_->id) +
                 ": build exceeded budget, spilled to " +
                 std::to_string(fanout_) + " partitions");
  return Status::OK();
}

Status HashJoinOp::BlockingPhaseImpl() {
  if (built_) return Status::OK();
  built_ = true;
  // Refresh the budget: the MemoryManager may have re-allocated memory
  // after this operator was created but before its build phase started.
  if (node_->mem_budget_pages > 0)
    budget_bytes_ = std::max(2.0, node_->mem_budget_pages) * kPageSize;
  fanout_ = static_cast<size_t>(
      std::clamp(node_->mem_budget_pages - 1, 2.0, 32.0));

  Tuple row;
  uint64_t rows_seen = 0;
  while (true) {
    ASSIGN_OR_RETURN(bool more, child(0)->Next(&row));
    if (!more) break;
    ctx_->ChargeHash(1);
    // Mid-execution memory response (paper Section 2.3 extension): pick up
    // budget increases granted while the build is running — and budget
    // *decreases* from a broker revocation, which make the very next
    // over-budget insert spill instead of overrunning the revoked grant.
    if ((++rows_seen & 0x1ff) == 0 && in_memory_) {
      budget_bytes_ = std::max(2.0, node_->mem_budget_pages) * kPageSize;
    }
    if (in_memory_) {
      InsertBuildRow(std::move(row));
      if (mem_bytes_ > budget_bytes_) RETURN_IF_ERROR(SpillBuild());
    } else {
      uint64_t h = BuildHash(row, current_depth_ + 1);
      RETURN_IF_ERROR(build_parts_[h % fanout_]->Append(row).status());
    }
  }
  if (!in_memory_) {
    for (auto& p : build_parts_) RETURN_IF_ERROR(p->Flush());
  }
  return Status::OK();
}

Result<bool> HashJoinOp::LoadNextPartition() {
  while (!pending_.empty()) {
    PartitionPair pair = std::move(pending_.front());
    pending_.pop_front();
    current_depth_ = pair.depth;

    // Load the build partition.
    build_rows_.clear();
    table_.clear();
    mem_bytes_ = 0;
    bool overflow = false;
    HeapFile::Iterator it = pair.build->Scan();
    Tuple row;
    std::vector<Tuple> overflow_rows;
    while (true) {
      ASSIGN_OR_RETURN(bool more, it.Next(&row));
      if (!more) break;
      ctx_->ChargeHash(1);
      if (!overflow) {
        InsertBuildRow(std::move(row));
        if (mem_bytes_ > budget_bytes_ && pair.depth < kMaxRecursionDepth &&
            pair.build->tuple_count() > 2) {
          overflow = true;
        }
      } else {
        // Rows past the overflow point are buffered until re-partitioning.
        // Under pathological skew (one key dominating a partition) Grace
        // partitioning cannot split further; the recursion-depth cap below
        // then forces the partition in memory — the standard fallback.
        overflow_rows.push_back(std::move(row));
      }
    }

    if (overflow) {
      // Re-partition this pair one level deeper.
      RETURN_IF_ERROR(RecordSpill("repartition", static_cast<int>(fanout_)));
      ++passes_;
      ctx_->AddEvent("hash-join " + std::to_string(node_->id) +
                     ": partition overflow at depth " +
                     std::to_string(pair.depth) + ", re-partitioning");
      int depth = pair.depth + 1;
      std::vector<PartitionPair> subs(fanout_);
      for (auto& s : subs) {
        s.build = ctx_->MakeTempHeap();
        s.probe = ctx_->MakeTempHeap();
        s.depth = depth;
      }
      for (const Tuple& r : build_rows_) {
        RETURN_IF_ERROR(
            subs[BuildHash(r, depth) % fanout_].build->Append(r).status());
        ctx_->ChargeHash(1);
      }
      for (const Tuple& r : overflow_rows) {
        RETURN_IF_ERROR(
            subs[BuildHash(r, depth) % fanout_].build->Append(r).status());
        ctx_->ChargeHash(1);
      }
      HeapFile::Iterator pit = pair.probe->Scan();
      while (true) {
        ASSIGN_OR_RETURN(bool more, pit.Next(&row));
        if (!more) break;
        ctx_->ChargeHash(1);
        RETURN_IF_ERROR(
            subs[ProbeHash(row, depth) % fanout_].probe->Append(row).status());
      }
      for (auto& s : subs) {
        RETURN_IF_ERROR(s.build->Flush());
        RETURN_IF_ERROR(s.probe->Flush());
        pending_.push_back(std::move(s));
      }
      build_rows_.clear();
      table_.clear();
      mem_bytes_ = 0;
      continue;
    }

    // Build table loaded (forced in-memory beyond the recursion cap).
    part_probe_it_.emplace(pair.probe->Scan());
    // Keep the files alive while we stream the probe side.
    current_build_file_ = std::move(pair.build);
    current_probe_file_ = std::move(pair.probe);
    return true;
  }
  return false;
}

Result<bool> HashJoinOp::NextImpl(Tuple* out) {
  RETURN_IF_ERROR(EnsureBlockingPhase());

  if (in_memory_) {
    while (true) {
      if (have_probe_row_ && match_pos_ < matches_.size()) {
        const Tuple& b = build_rows_[matches_[match_pos_++]];
        *out = Tuple::Concat(b, probe_row_);
        ctx_->ChargeTuples(1);
        return true;
      }
      ASSIGN_OR_RETURN(bool more, child(1)->Next(&probe_row_));
      if (!more) return false;
      have_probe_row_ = true;
      ctx_->ChargeHash(1);
      matches_.clear();
      match_pos_ = 0;
      auto [lo, hi] = table_.equal_range(ProbeHash(probe_row_, current_depth_));
      for (auto it = lo; it != hi; ++it) {
        if (build_rows_[it->second].EqualsOn(probe_row_, build_keys_,
                                             probe_keys_)) {
          matches_.push_back(it->second);
        }
      }
      // Emit matches in build insertion order. unordered_multimap's
      // equal-range order is implementation-defined; pinning it makes the
      // emission order platform-independent and lets the sharded executor
      // reproduce it exactly from (probe, build) ordinals.
      std::sort(matches_.begin(), matches_.end());
    }
  }

  // Partitioned mode: first split the probe input.
  if (!probe_partitioned_) {
    probe_parts_.clear();
    for (size_t i = 0; i < fanout_; ++i)
      probe_parts_.push_back(ctx_->MakeTempHeap());
    Tuple row;
    while (true) {
      ASSIGN_OR_RETURN(bool more, child(1)->Next(&row));
      if (!more) break;
      ctx_->ChargeHash(1);
      uint64_t h = ProbeHash(row, current_depth_ + 1);
      RETURN_IF_ERROR(probe_parts_[h % fanout_]->Append(row).status());
    }
    for (size_t i = 0; i < fanout_; ++i) {
      RETURN_IF_ERROR(probe_parts_[i]->Flush());
      PartitionPair pair;
      pair.build = std::move(build_parts_[i]);
      pair.probe = std::move(probe_parts_[i]);
      pair.depth = current_depth_ + 1;
      pending_.push_back(std::move(pair));
    }
    build_parts_.clear();
    probe_parts_.clear();
    probe_partitioned_ = true;
    have_probe_row_ = false;
    ASSIGN_OR_RETURN(bool any, LoadNextPartition());
    if (!any) return false;
  }

  while (true) {
    if (have_probe_row_ && match_pos_ < matches_.size()) {
      const Tuple& b = build_rows_[matches_[match_pos_++]];
      *out = Tuple::Concat(b, probe_row_);
      ctx_->ChargeTuples(1);
      return true;
    }
    ASSIGN_OR_RETURN(bool more, part_probe_it_->Next(&probe_row_));
    if (!more) {
      ASSIGN_OR_RETURN(bool any, LoadNextPartition());
      if (!any) return false;
      have_probe_row_ = false;
      continue;
    }
    have_probe_row_ = true;
    ctx_->ChargeHash(1);
    matches_.clear();
    match_pos_ = 0;
    auto [lo, hi] = table_.equal_range(ProbeHash(probe_row_, current_depth_));
    for (auto it = lo; it != hi; ++it) {
      if (build_rows_[it->second].EqualsOn(probe_row_, build_keys_,
                                           probe_keys_)) {
        matches_.push_back(it->second);
      }
    }
    std::sort(matches_.begin(), matches_.end());
  }
}

Result<bool> HashJoinOp::NextBatchImpl(TupleBatch* out) {
  RETURN_IF_ERROR(EnsureBlockingPhase());

  if (!in_memory_) {
    // Grace mode already streams partitions from temp files; batch the
    // output by looping the row path (identical per-row charges).
    while (!out->full()) {
      Tuple* slot = out->AddSlot();
      ASSIGN_OR_RETURN(bool more, NextImpl(slot));
      if (!more) {
        out->PopSlot();
        break;
      }
    }
    return !out->empty();
  }

  if (probe_batch_ == nullptr)
    probe_batch_ = std::make_unique<TupleBatch>(out->capacity());
  uint64_t probed = 0, emitted = 0;
  while (!out->full()) {
    if (cur_probe_ != nullptr && match_pos_ < matches_.size()) {
      *out->AddSlot() = Tuple::Concat(build_rows_[matches_[match_pos_++]],
                                      *cur_probe_);
      ++emitted;
      continue;
    }
    if (probe_pos_ >= probe_batch_->size()) {
      if (probe_done_) break;
      ASSIGN_OR_RETURN(bool more, child(1)->NextBatch(probe_batch_.get()));
      probe_pos_ = 0;
      if (!more) {
        probe_done_ = true;
        cur_probe_ = nullptr;
        break;
      }
    }
    cur_probe_ = &(*probe_batch_)[probe_pos_++];
    ++probed;
    matches_.clear();
    match_pos_ = 0;
    auto [lo, hi] = table_.equal_range(ProbeHash(*cur_probe_, current_depth_));
    for (auto it = lo; it != hi; ++it) {
      if (build_rows_[it->second].EqualsOn(*cur_probe_, build_keys_,
                                           probe_keys_)) {
        matches_.push_back(it->second);
      }
    }
    std::sort(matches_.begin(), matches_.end());
  }
  if (probed > 0) ctx_->ChargeHash(probed);
  if (emitted > 0) ctx_->ChargeTuples(emitted);
  return !out->empty();
}

Status HashJoinOp::CloseImpl() {
  build_rows_.clear();
  table_.clear();
  pending_.clear();
  build_parts_.clear();
  probe_parts_.clear();
  current_build_file_.reset();
  current_probe_file_.reset();
  return CloseChildren();
}

}  // namespace reoptdb
