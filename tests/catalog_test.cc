// Tests for the catalog: tables, indexes, ANALYZE, staleness.

#include "catalog/catalog.h"
#include "gtest/gtest.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace reoptdb {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  CatalogTest() : pool_(&disk_, 64), catalog_(&pool_) {}

  Schema TwoColSchema() {
    return Schema(std::vector<Column>{{"", "id", ValueType::kInt64, 8},
                                      {"", "name", ValueType::kString, 10}});
  }

  void Load(TableInfo* info, int n) {
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(info->heap
                      ->Append(Tuple({Value(int64_t{i}),
                                      Value("n" + std::to_string(i % 7))}))
                      .ok());
    }
    ASSERT_TRUE(info->heap->Flush().ok());
  }

  DiskManager disk_;
  BufferPool pool_;
  Catalog catalog_;
};

TEST_F(CatalogTest, CreateAndGet) {
  Result<TableInfo*> t = catalog_.CreateTable("t", TwoColSchema());
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(catalog_.Exists("t"));
  EXPECT_FALSE(catalog_.Exists("u"));
  // Columns got qualified with the table name.
  EXPECT_EQ(t.value()->schema.column(0).QualifiedName(), "t.id");
  EXPECT_TRUE(catalog_.Get("t").ok());
  EXPECT_FALSE(catalog_.Get("u").ok());
}

TEST_F(CatalogTest, DuplicateCreateFails) {
  ASSERT_TRUE(catalog_.CreateTable("t", TwoColSchema()).ok());
  Result<TableInfo*> again = catalog_.CreateTable("t", TwoColSchema());
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(CatalogTest, AnalyzeComputesStats) {
  Result<TableInfo*> t = catalog_.CreateTable("t", TwoColSchema());
  ASSERT_TRUE(t.ok());
  Load(t.value(), 1000);

  AnalyzeOptions opts;
  opts.histogram_kind = HistogramKind::kMaxDiff;
  ASSERT_TRUE(catalog_.Analyze("t", opts).ok());

  const TableStats& stats = t.value()->stats;
  EXPECT_TRUE(stats.analyzed);
  EXPECT_DOUBLE_EQ(stats.row_count, 1000);
  EXPECT_GT(stats.page_count, 0);
  EXPECT_GT(stats.avg_tuple_bytes, 0);

  const ColumnStats* id = stats.Find("id");
  ASSERT_NE(id, nullptr);
  EXPECT_TRUE(id->has_bounds);
  EXPECT_DOUBLE_EQ(id->min, 0);
  EXPECT_DOUBLE_EQ(id->max, 999);
  EXPECT_DOUBLE_EQ(id->distinct, 1000);
  EXPECT_TRUE(id->has_histogram());

  const ColumnStats* name = stats.Find("name");
  ASSERT_NE(name, nullptr);
  EXPECT_FALSE(name->has_bounds);       // strings have no numeric bounds
  EXPECT_DOUBLE_EQ(name->distinct, 7);  // i % 7
  EXPECT_FALSE(name->has_histogram());
}

TEST_F(CatalogTest, AnalyzeWithSampling) {
  Result<TableInfo*> t = catalog_.CreateTable("t", TwoColSchema());
  ASSERT_TRUE(t.ok());
  Load(t.value(), 5000);
  AnalyzeOptions opts;
  opts.sample_size = 500;
  ASSERT_TRUE(catalog_.Analyze("t", opts).ok());
  const ColumnStats* id = t.value()->stats.Find("id");
  ASSERT_NE(id, nullptr);
  // Histogram built from the sample is scaled to the full row count.
  EXPECT_NEAR(id->histogram.total_count(), 5000, 50);
}

TEST_F(CatalogTest, CreateIndexAndProbe) {
  Result<TableInfo*> t = catalog_.CreateTable("t", TwoColSchema());
  ASSERT_TRUE(t.ok());
  Load(t.value(), 500);
  ASSERT_TRUE(catalog_.CreateIndex("t", "id").ok());
  const BTree* index = t.value()->FindIndex("id");
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->entry_count(), 500u);
  std::vector<Rid> rids;
  ASSERT_TRUE(index->Lookup(123, &rids).ok());
  ASSERT_EQ(rids.size(), 1u);
  Result<Tuple> row = t.value()->heap->Fetch(rids[0]);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value().at(0).AsInt(), 123);
}

TEST_F(CatalogTest, IndexOnStringRejected) {
  Result<TableInfo*> t = catalog_.CreateTable("t", TwoColSchema());
  ASSERT_TRUE(t.ok());
  Status s = catalog_.CreateIndex("t", "name");
  EXPECT_EQ(s.code(), StatusCode::kNotSupported);
}

TEST_F(CatalogTest, DuplicateIndexRejected) {
  Result<TableInfo*> t = catalog_.CreateTable("t", TwoColSchema());
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(catalog_.CreateIndex("t", "id").ok());
  EXPECT_EQ(catalog_.CreateIndex("t", "id").code(),
            StatusCode::kAlreadyExists);
}

TEST_F(CatalogTest, KeysAndUpdateActivity) {
  ASSERT_TRUE(catalog_.CreateTable("t", TwoColSchema()).ok());
  ASSERT_TRUE(catalog_.DeclareKey("t", "id").ok());
  Result<TableInfo*> t = catalog_.Get("t");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t.value()->key_columns.count("id"));

  ASSERT_TRUE(catalog_.BumpUpdateActivity("t", 0.25).ok());
  EXPECT_DOUBLE_EQ(t.value()->stats.update_activity, 0.25);
  // ANALYZE resets staleness.
  ASSERT_TRUE(catalog_.Analyze("t", AnalyzeOptions{}).ok());
  EXPECT_DOUBLE_EQ(t.value()->stats.update_activity, 0);
}

TEST_F(CatalogTest, DropFreesPages) {
  Result<TableInfo*> t = catalog_.CreateTable("t", TwoColSchema());
  ASSERT_TRUE(t.ok());
  Load(t.value(), 2000);
  size_t live = disk_.live_pages();
  EXPECT_GT(live, 0u);
  ASSERT_TRUE(catalog_.Drop("t").ok());
  EXPECT_FALSE(catalog_.Exists("t"));
  EXPECT_LT(disk_.live_pages(), live);
  EXPECT_EQ(catalog_.Drop("t").code(), StatusCode::kNotFound);
}

TEST_F(CatalogTest, TempNamesAreFresh) {
  std::string a = catalog_.NextTempName();
  std::string b = catalog_.NextTempName();
  EXPECT_NE(a, b);
}

TEST_F(CatalogTest, SetStatsOverrides) {
  ASSERT_TRUE(catalog_.CreateTable("t", TwoColSchema()).ok());
  TableStats ts;
  ts.analyzed = true;
  ts.row_count = 12345;
  ASSERT_TRUE(catalog_.SetStats("t", ts).ok());
  Result<TableInfo*> t = catalog_.Get("t");
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(t.value()->stats.row_count, 12345);
}

TEST(ColumnStatsTest, SelectivityWithHistogram) {
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i % 100);
  ColumnStats cs;
  cs.type = ValueType::kInt64;
  cs.has_bounds = true;
  cs.min = 0;
  cs.max = 99;
  cs.distinct = 100;
  cs.histogram =
      Histogram::Build(HistogramKind::kMaxDiff, values, 50, values.size());
  EXPECT_NEAR(cs.SelectivityEquals(50, 1000), 0.01, 0.01);
  EXPECT_NEAR(cs.SelectivityRange(0, false, 49, false, 1000), 0.5, 0.08);
}

TEST(ColumnStatsTest, SelectivityFallbacks) {
  ColumnStats cs;  // no stats at all
  EXPECT_DOUBLE_EQ(cs.SelectivityEquals(5, 100), 0.1);      // System-R magic
  // Bounds only: uniform interpolation.
  cs.has_bounds = true;
  cs.min = 0;
  cs.max = 100;
  EXPECT_NEAR(cs.SelectivityRange(0, false, 50, false, 100), 0.5, 1e-9);
  // Distinct only: 1/V.
  cs.distinct = 20;
  EXPECT_DOUBLE_EQ(cs.SelectivityEquals(5, 100), 0.05);
  EXPECT_DOUBLE_EQ(cs.SelectivityEquals(500, 100), 0);  // out of bounds
}

}  // namespace
}  // namespace reoptdb
