#include "parser/lexer.h"

#include <cctype>
#include <set>

namespace reoptdb {

namespace {

const std::set<std::string>& Keywords() {
  static const std::set<std::string> kw = {
      "SELECT", "FROM",  "WHERE", "AND",   "GROUP", "BY",    "ORDER",
      "ASC",    "DESC",  "LIMIT", "AS",    "SUM",   "AVG",   "COUNT",
      "MIN",    "MAX",   "BETWEEN", "NOT", "OR",    "INSERT", "INTO",
      "VALUES", "CREATE", "TABLE", "INDEX", "ON",   "EXPLAIN", "ANALYZE",
      "INT",    "DOUBLE", "STRING", "PRIMARY", "KEY", "DROP",
      "UPDATE", "SET",    "DELETE", "BEGIN", "COMMIT", "ROLLBACK",
      "TRANSACTION"};
  return kw;
}

std::string Upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}
std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();

  auto push = [&](TokenType t, size_t pos) {
    Token tok;
    tok.type = t;
    tok.pos = pos;
    out.push_back(tok);
    return &out.back();
  };

  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '_')) {
        ++j;
      }
      std::string word = sql.substr(i, j - i);
      std::string up = Upper(word);
      Token* t;
      if (Keywords().count(up)) {
        t = push(TokenType::kKeyword, start);
        t->text = up;
      } else {
        t = push(TokenType::kIdentifier, start);
        t->text = Lower(word);
      }
      i = j;
      continue;
    }
    // '-' followed by a digit always starts a negative literal: the SQL
    // subset has no arithmetic, so '-' never means subtraction.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i + 1;
      bool is_float = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '.')) {
        if (sql[j] == '.') {
          if (is_float) break;
          is_float = true;
        }
        ++j;
      }
      std::string num = sql.substr(i, j - i);
      if (is_float) {
        Token* t = push(TokenType::kFloat, start);
        t->text = num;
        t->float_value = std::stod(num);
      } else {
        Token* t = push(TokenType::kInteger, start);
        t->text = num;
        t->int_value = std::stoll(num);
      }
      i = j;
      continue;
    }
    if (c == '\'') {
      size_t j = i + 1;
      std::string s;
      while (j < n && sql[j] != '\'') s.push_back(sql[j++]);
      if (j >= n)
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      Token* t = push(TokenType::kString, start);
      t->text = std::move(s);
      i = j + 1;
      continue;
    }
    switch (c) {
      case ',':
        push(TokenType::kComma, start);
        ++i;
        break;
      case '(':
        push(TokenType::kLParen, start);
        ++i;
        break;
      case ')':
        push(TokenType::kRParen, start);
        ++i;
        break;
      case '.':
        push(TokenType::kDot, start);
        ++i;
        break;
      case '*':
        push(TokenType::kStar, start);
        ++i;
        break;
      case ';':
        push(TokenType::kSemicolon, start);
        ++i;
        break;
      case '=':
        push(TokenType::kEq, start);
        ++i;
        break;
      case '!':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenType::kNe, start);
          i += 2;
        } else {
          return Status::ParseError("unexpected '!' at offset " +
                                    std::to_string(start));
        }
        break;
      case '<':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenType::kLe, start);
          i += 2;
        } else if (i + 1 < n && sql[i + 1] == '>') {
          push(TokenType::kNe, start);
          i += 2;
        } else {
          push(TokenType::kLt, start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenType::kGe, start);
          i += 2;
        } else {
          push(TokenType::kGt, start);
          ++i;
        }
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(start));
    }
  }
  push(TokenType::kEof, n);
  return out;
}

}  // namespace reoptdb
