// Substrate micro-benchmarks (google-benchmark): B+-tree, heap scans,
// histograms, sketches, sampling, parser+optimizer latency.
//
// These measure real wall-clock performance of the building blocks, unlike
// the figure benches which report deterministic simulated time.

#include <benchmark/benchmark.h>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "engine/database.h"
#include "exec/operator_factory.h"
#include "optimizer/optimizer.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "stats/fm_sketch.h"
#include "stats/histogram.h"
#include "stats/reservoir.h"
#include "stats/zipf.h"
#include "storage/btree.h"

namespace reoptdb {
namespace {

void BM_BTreeInsert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    DiskManager disk;
    BufferPool pool(&disk, 256);
    BTree tree = BTree::Create(&pool).value();
    Rng rng(1);
    state.ResumeTiming();
    for (int64_t i = 0; i < state.range(0); ++i) {
      benchmark::DoNotOptimize(
          tree.Insert(rng.NextInt(0, 1 << 20), Rid{0, 0}).ok());
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsert)->Arg(10000)->Arg(100000);

void BM_BTreeLookup(benchmark::State& state) {
  DiskManager disk;
  BufferPool pool(&disk, 256);
  BTree tree = BTree::Create(&pool).value();
  for (int64_t i = 0; i < 100000; ++i)
    (void)tree.Insert(i, Rid{static_cast<uint32_t>(i), 0});
  Rng rng(2);
  std::vector<Rid> rids;
  for (auto _ : state) {
    rids.clear();
    benchmark::DoNotOptimize(
        tree.Lookup(rng.NextInt(0, 99999), &rids).ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeLookup);

void BM_HeapAppendScan(benchmark::State& state) {
  for (auto _ : state) {
    DiskManager disk;
    BufferPool pool(&disk, 64);
    HeapFile heap(&pool);
    Tuple t({Value(int64_t{1}), Value(2.5), Value("payload-payload")});
    for (int i = 0; i < state.range(0); ++i) (void)heap.Append(t);
    (void)heap.Flush();
    HeapFile::Iterator it = heap.Scan();
    Tuple out;
    int n = 0;
    while (it.Next(&out).value()) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HeapAppendScan)->Arg(10000);

void BM_HistogramBuild(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> values(100000);
  for (double& v : values) v = rng.NextDouble(0, 1e6);
  for (auto _ : state) {
    Histogram h = Histogram::Build(
        static_cast<HistogramKind>(state.range(0)), values, 50,
        values.size());
    benchmark::DoNotOptimize(h.total_count());
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_HistogramBuild)
    ->Arg(static_cast<int>(HistogramKind::kEquiWidth))
    ->Arg(static_cast<int>(HistogramKind::kEquiDepth))
    ->Arg(static_cast<int>(HistogramKind::kMaxDiff));

void BM_FmSketchAdd(benchmark::State& state) {
  FmSketch sketch;
  uint64_t i = 0;
  for (auto _ : state) sketch.AddHash(SplitMix64(++i));
  benchmark::DoNotOptimize(sketch.Estimate());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FmSketchAdd);

void BM_ReservoirAdd(benchmark::State& state) {
  ReservoirSampler<double> sampler(1024, 4);
  double v = 0;
  for (auto _ : state) sampler.Add(v += 1.0);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReservoirAdd);

void BM_ZipfSample(benchmark::State& state) {
  ZipfDistribution dist(100000, 0.6, true);
  Rng rng(5);
  for (auto _ : state) benchmark::DoNotOptimize(dist.Sample(&rng));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

// Batched execution: wall-clock throughput of a scan -> filter -> stats
// collector drain. The *simulated* work charged is identical at every batch
// size; what changes is real per-row bookkeeping (span-timing clock reads,
// cancellation checks, virtual dispatch), which batching amortizes to once
// per batch. Arg = batch size; 1 is the legacy row-at-a-time path.
void BM_BatchedDrain(benchmark::State& state) {
  static Database* db = [] {
    DatabaseOptions opts;
    opts.buffer_pool_pages = 1024;
    auto* d = new Database(opts);
    Schema t(std::vector<Column>{{"t", "a", ValueType::kInt64, 8},
                                 {"t", "b", ValueType::kDouble, 8},
                                 {"t", "c", ValueType::kInt64, 8}});
    (void)d->CreateTable("t", t);
    Rng rng(42);
    for (int i = 0; i < 50000; ++i) {
      (void)d->Insert("t", Tuple({Value(int64_t{i}),
                                  Value(rng.NextDouble(0, 1000)),
                                  Value(rng.NextInt(0, 100))}));
    }
    return d;
  }();

  // Hand-built scan -> filter -> collector pipeline (the optimizer would
  // push the filter into the scan; keep it standalone to exercise the
  // buffered batch path too).
  auto scan = std::make_unique<PlanNode>();
  scan->kind = OpKind::kSeqScan;
  scan->table = "t";
  scan->alias = "t";
  scan->output_schema = db->catalog()->Get("t").value()->schema;

  auto filter = std::make_unique<PlanNode>();
  filter->kind = OpKind::kFilter;
  filter->output_schema = scan->output_schema;
  filter->filters.push_back(
      ScalarPred{"t.c", CmpOp::kLt, false, Value(int64_t{50}), ""});
  filter->children.push_back(std::move(scan));

  auto root = std::make_unique<PlanNode>();
  root->kind = OpKind::kStatsCollector;
  root->output_schema = filter->output_schema;
  root->collector.histogram_cols = {"t.b"};
  root->collector.unique_cols = {"t.a"};
  root->collector.num_buckets = 50;
  root->collector.reservoir_capacity = 1024;
  root->children.push_back(std::move(filter));
  AssignPlanIds(root.get());

  const size_t batch_size = static_cast<size_t>(state.range(0));
  uint64_t rows = 0;
  for (auto _ : state) {
    ExecContext ctx(db->buffer_pool(), db->catalog(), &db->cost_model());
    ctx.SetBatchSize(batch_size);
    std::unique_ptr<Operator> op =
        BuildOperatorTree(&ctx, root.get()).value();
    if (!op->Open().ok()) state.SkipWithError("open failed");
    rows = 0;
    if (ctx.batched()) {
      TupleBatch batch(batch_size);
      while (op->NextBatch(&batch).value()) rows += batch.size();
    } else {
      Tuple t;
      while (op->Next(&t).value()) ++rows;
    }
    benchmark::DoNotOptimize(rows);
    (void)op->Close();
  }
  state.SetItemsProcessed(state.iterations() * 50000);
  state.counters["out_rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_BatchedDrain)->Arg(1)->Arg(64)->Arg(1024);

void BM_ParseBindOptimize(benchmark::State& state) {
  Database db;
  Schema emp(std::vector<Column>{{"", "a", ValueType::kInt64, 8},
                                 {"", "b", ValueType::kInt64, 8}});
  Schema dept(std::vector<Column>{{"", "b", ValueType::kInt64, 8},
                                  {"", "c", ValueType::kInt64, 8}});
  Schema extra(std::vector<Column>{{"", "c", ValueType::kInt64, 8},
                                   {"", "d", ValueType::kInt64, 8}});
  (void)db.CreateTable("t1", emp);
  (void)db.CreateTable("t2", dept);
  (void)db.CreateTable("t3", extra);
  const std::string sql =
      "SELECT t1.a, COUNT(*) AS n FROM t1, t2, t3 "
      "WHERE t1.b = t2.b AND t2.c = t3.c AND a > 5 GROUP BY t1.a";
  Optimizer opt(db.catalog(), &db.cost_model());
  for (auto _ : state) {
    SelectStmtAst ast = ParseSelect(sql).value();
    QuerySpec spec = Bind(ast, *db.catalog()).value();
    Result<OptimizeResult> plan = opt.Plan(spec);
    benchmark::DoNotOptimize(plan.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseBindOptimize);

}  // namespace
}  // namespace reoptdb

BENCHMARK_MAIN();
