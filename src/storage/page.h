// Fixed-size page, the unit of simulated I/O.

#ifndef REOPTDB_STORAGE_PAGE_H_
#define REOPTDB_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>

namespace reoptdb {

/// Page size in bytes. 8 KiB, matching common database defaults.
inline constexpr size_t kPageSize = 8192;

/// Identifier of a page on the simulated disk.
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xffffffffu;

/// \brief Raw page bytes.
struct Page {
  char data[kPageSize];
  void Zero() { std::memset(data, 0, kPageSize); }
};

/// FNV-1a over the full page. The DiskManager records it at allocate/write
/// time and verifies it on every read, so silent corruption of the
/// simulated disk surfaces as kIoError instead of a wrong answer.
inline uint64_t PageChecksum(const Page& p) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < kPageSize; ++i) {
    h ^= static_cast<unsigned char>(p.data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

/// \brief Record identifier: ordinal of the page within its heap file plus
/// the slot number inside that page.
struct Rid {
  uint32_t page_ordinal = 0;
  uint32_t slot = 0;

  bool operator==(const Rid& o) const {
    return page_ordinal == o.page_ordinal && slot == o.slot;
  }
  bool operator<(const Rid& o) const {
    return page_ordinal != o.page_ordinal ? page_ordinal < o.page_ordinal
                                          : slot < o.slot;
  }
};

}  // namespace reoptdb

#endif  // REOPTDB_STORAGE_PAGE_H_
