#include "optimizer/calibration.h"

#include <cmath>

#include "catalog/catalog.h"
#include "optimizer/optimizer.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace reoptdb {

Result<OptimizerCalibration> OptimizerCalibration::Run(int max_relations,
                                                       const CostModel& cost) {
  OptimizerCalibration cal;
  cal.per_plan_ms_ = cost.params().t_opt_per_plan_ms;
  cal.time_by_rels_.assign(static_cast<size_t>(max_relations) + 1, 0.0);

  // Scratch catalog: a fact table with max_relations-1 dimension keys plus
  // the dimension tables. Optimization effort does not depend on data, so
  // the tables stay empty.
  DiskManager disk;
  BufferPool pool(&disk, 64);
  Catalog catalog(&pool);

  const int ndims = max_relations - 1;
  Schema fact_schema;
  fact_schema.AddColumn(Column{"", "f_id", ValueType::kInt64, 8});
  for (int d = 0; d < ndims; ++d) {
    fact_schema.AddColumn(
        Column{"", "f_d" + std::to_string(d), ValueType::kInt64, 8});
  }
  ASSIGN_OR_RETURN(TableInfo * fact,
                   catalog.CreateTable("cal_fact", fact_schema));
  (void)fact;
  for (int d = 0; d < ndims; ++d) {
    Schema s;
    s.AddColumn(Column{"", "d" + std::to_string(d) + "_id",
                       ValueType::kInt64, 8});
    RETURN_IF_ERROR(
        catalog.CreateTable("cal_dim" + std::to_string(d), s).status());
  }

  Optimizer optimizer(&catalog, &cost);
  for (int n = 2; n <= max_relations; ++n) {
    QuerySpec spec;
    spec.relations.push_back(RelationRef{"cal_fact", "cal_fact"});
    for (int d = 0; d < n - 1; ++d) {
      std::string dim = "cal_dim" + std::to_string(d);
      spec.relations.push_back(RelationRef{dim, dim});
      JoinPred j;
      j.left_rel = 0;
      j.left_col = "f_d" + std::to_string(d);
      j.right_rel = d + 1;
      j.right_col = "d" + std::to_string(d) + "_id";
      spec.joins.push_back(j);
    }
    OutputItem item;
    item.col = ColumnId{0, "f_id", ValueType::kInt64};
    item.name = "f_id";
    spec.items.push_back(item);

    ASSIGN_OR_RETURN(OptimizeResult r, optimizer.Plan(spec));
    cal.time_by_rels_[n] = r.sim_opt_time_ms;
  }
  // A single-relation query costs at least one access-path enumeration.
  cal.time_by_rels_[1] = cal.per_plan_ms_ * 2;
  return cal;
}

double OptimizerCalibration::EstimateOptTimeMs(int num_relations) const {
  if (num_relations < 1) return 0;
  if (!time_by_rels_.empty() &&
      num_relations < static_cast<int>(time_by_rels_.size())) {
    return time_by_rels_[num_relations];
  }
  // Extrapolate: left-deep star-join DP enumerates O(n * 2^n) plans.
  double n = static_cast<double>(num_relations);
  return per_plan_ms_ * n * std::pow(2.0, n);
}

double OptimizerCalibration::EstimateIncrementalOptTimeMs(
    int num_relations, int changed_leaves) const {
  if (num_relations < 1) return 0;
  if (changed_leaves >= num_relations) return EstimateOptTimeMs(num_relations);
  const double full = EstimateOptTimeMs(num_relations);
  const double clean = EstimateOptTimeMs(num_relations - changed_leaves);
  const double floor_ms = per_plan_ms_ * static_cast<double>(num_relations);
  return std::max(floor_ms, full - clean);
}

}  // namespace reoptdb
