// Decision-support session: runs the paper's full TPC-D query set against
// a stale catalog, with and without Dynamic Re-Optimization, and prints a
// per-query report — a miniature of the paper's Section 3.2 experiments.
//
//   ./build/examples/decision_support [scale_factor]

#include <cstdio>
#include <cstdlib>

#include "engine/database.h"
#include "tpcd/dbgen.h"
#include "tpcd/queries.h"

using namespace reoptdb;

int main(int argc, char** argv) {
  double sf = argc > 1 ? atof(argv[1]) : 0.01;

  DatabaseOptions opts;
  opts.buffer_pool_pages = 64;
  opts.query_mem_pages = 64;
  Database db(opts);

  std::printf("Loading TPC-D (scale %.3f) + a stale-catalog update batch...\n",
              sf);
  tpcd::TpcdOptions gen;
  gen.scale_factor = sf;
  gen.update_fraction = 1.0;  // updates arrive after ANALYZE
  Status st = tpcd::Load(&db, gen);
  if (!st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("\n%-5s %-8s %12s %12s %9s  %s\n", "query", "class",
              "normal(ms)", "reopt(ms)", "gain", "actions");
  for (const tpcd::TpcdQuery& q : tpcd::AllQueries()) {
    ReoptOptions off;
    off.mode = ReoptMode::kOff;
    Result<QueryResult> normal = db.ExecuteWith(q.sql, off);
    Result<QueryResult> reopt = db.Execute(q.sql);  // full reopt (default)
    if (!normal.ok() || !reopt.ok()) {
      std::fprintf(stderr, "%s failed\n", q.name);
      return 1;
    }
    double gain = 1.0 - reopt->report.sim_time_ms /
                            normal->report.sim_time_ms;
    char actions[128];
    std::snprintf(actions, sizeof(actions),
                  "%d collectors, %d mem-reallocs, %d plan-switches",
                  reopt->report.collectors_inserted,
                  reopt->report.memory_reallocations,
                  reopt->report.plans_switched);
    std::printf("%-5s %-8s %12.1f %12.1f %+8.1f%%  %s\n", q.name,
                tpcd::QueryClassName(q.cls), normal->report.sim_time_ms,
                reopt->report.sim_time_ms, gain * 100, actions);
  }

  std::printf("\nRe-optimization events for Q7 (complex):\n");
  Result<QueryResult> q7 = db.Execute(tpcd::Q7Sql());
  if (q7.ok()) {
    for (const std::string& e : q7->report.events)
      std::printf("  %s\n", e.c_str());
  }
  return 0;
}
