// Sharded execution tests (DESIGN.md §15).
//
// The load-bearing contract: a query distributed over N nodes returns the
// bit-identical Canon to the single-node oracle — N ∈ {1,2,4,8}, uniform
// and Zipf-skewed data, row and batched fragments, broadcast and
// repartition strategies, with and without mid-query defenses. On top of
// that: Zipf skew at 4 nodes triggers a recorded distribution switch that
// lowers the charged cluster makespan vs the no-reopt control; a slowed
// node is detected as a straggler and re-weighted; node crashes complete
// correctly via re-homing onto survivors (down to coordinator fallback);
// and per-partition scan observations are merged before feedback so an
// N-node run trains the feedback store exactly like a single-node run.

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "catalog/feedback_store.h"
#include "common/fault.h"
#include "gtest/gtest.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "reopt/controller.h"
#include "reopt/query_journal.h"
#include "shard/replica_manager.h"
#include "shard/scrubber.h"
#include "shard/sharded_executor.h"
#include "shard/skew_detector.h"
#include "test_util.h"

namespace reoptdb {
namespace {

using testing_util::Canon;
using testing_util::LoadEmpDept;

// ---------------------------------------------------------------------------
// Data generators.

/// Deterministic LCG (no process entropy in tests).
uint64_t Lcg(uint64_t* s) {
  *s = *s * 6364136223846793005ULL + 1442695040888963407ULL;
  return *s >> 33;
}

/// orders(order_id, cust_id, amount) ⋈ cust(cust_id, region, score):
/// `zipf` concentrates the join key so a hash repartition lands most
/// build rows on one node.
void LoadOrdersCust(Database* db, int norders, int ncust, bool zipf) {
  Schema orders(std::vector<Column>{{"", "order_id", ValueType::kInt64, 8},
                                    {"", "cust_id", ValueType::kInt64, 8},
                                    {"", "amount", ValueType::kDouble, 8}});
  Schema cust(std::vector<Column>{{"", "cust_id", ValueType::kInt64, 8},
                                  {"", "region", ValueType::kInt64, 8},
                                  {"", "score", ValueType::kDouble, 8}});
  ASSERT_TRUE(db->CreateTable("orders", orders).ok());
  ASSERT_TRUE(db->CreateTable("cust", cust).ok());
  uint64_t seed = 42;
  for (int i = 0; i < norders; ++i) {
    int64_t key;
    if (zipf) {
      // ~80% of rows share one hot key, the rest spread uniformly.
      key = (Lcg(&seed) % 10 < 8)
                ? 0
                : static_cast<int64_t>(Lcg(&seed) % static_cast<uint64_t>(ncust));
    } else {
      key = static_cast<int64_t>(Lcg(&seed) % static_cast<uint64_t>(ncust));
    }
    ASSERT_TRUE(db->Insert("orders", Tuple({Value(int64_t{i}), Value(key),
                                            Value(10.0 + i * 0.25)}))
                    .ok());
  }
  for (int c = 0; c < ncust; ++c) {
    ASSERT_TRUE(db->Insert("cust", Tuple({Value(int64_t{c}),
                                          Value(int64_t{c % 5}),
                                          Value(1.0 + c * 0.5)}))
                    .ok());
  }
  ASSERT_TRUE(db->Analyze("orders").ok());
  ASSERT_TRUE(db->Analyze("cust").ok());
}

std::unique_ptr<ShardCluster> MakeEmpDeptCluster(int nodes, int nemp = 120,
                                                 int ndept = 8) {
  ShardOptions so;
  so.num_nodes = nodes;
  auto cluster = std::make_unique<ShardCluster>(so);
  LoadEmpDept(cluster->db(), nemp, ndept);
  EXPECT_TRUE(cluster->ShardByHash("emp", "emp_id").ok());
  EXPECT_TRUE(cluster->ShardByHash("dept", "dept_id").ok());
  return cluster;
}

// ---------------------------------------------------------------------------
// The equivalence matrix (acceptance: 2/4/8-node runs bit-identical to
// single-node, uniform and Zipf, row and batched fragments).

const char* kJoinQueries[] = {
    // Projection + filter over a join.
    "SELECT e.emp_id, e.salary, d.dept_name FROM emp e, dept d "
    "WHERE e.dept_id = d.dept_id AND e.salary > 1400.0",
    // Float aggregation: the aggregation order must match the oracle's
    // exactly for the doubles to come out bit-identical.
    "SELECT d.dept_name, SUM(e.salary) AS total, AVG(e.salary) AS mean "
    "FROM emp e, dept d WHERE e.dept_id = d.dept_id GROUP BY d.dept_name",
    // ORDER BY + LIMIT through the coordinator remainder.
    "SELECT e.emp_id, e.salary FROM emp e, dept d "
    "WHERE e.dept_id = d.dept_id AND d.region_id = 1 "
    "ORDER BY e.salary DESC, e.emp_id LIMIT 7",
};

TEST(ShardEquivalence, EmpDeptMatrixAcrossNodeCounts) {
  for (int nodes : {1, 2, 4, 8}) {
    std::unique_ptr<ShardCluster> cluster = MakeEmpDeptCluster(nodes);
    ShardedExecutor exec(cluster.get());
    for (const char* sql : kJoinQueries) {
      Result<QueryResult> oracle = exec.ExecuteSingleNode(sql);
      ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
      for (size_t batch : {size_t{1}, size_t{1024}}) {
        ShardQueryOptions q;
        q.batch_size = batch;
        Result<ShardExecResult> r = exec.Execute(sql, q);
        ASSERT_TRUE(r.ok()) << nodes << " nodes: " << r.status().ToString();
        EXPECT_FALSE(r.value().coordinator_fallback);
        EXPECT_EQ(Canon(r.value().result.rows), Canon(oracle.value().rows))
            << nodes << " nodes, batch " << batch << ": " << sql;
        EXPECT_GE(r.value().stages_run, 1);
        EXPECT_GT(r.value().cluster_ms, 0.0);
      }
    }
  }
}

TEST(ShardEquivalence, ZipfSkewedDataStaysBitIdentical) {
  for (int nodes : {2, 4, 8}) {
    for (bool zipf : {false, true}) {
      ShardOptions so;
      so.num_nodes = nodes;
      ShardCluster cluster(so);
      LoadOrdersCust(cluster.db(), 400, 40, zipf);
      REOPTDB_ASSERT_OK(cluster.ShardByHash("orders", "order_id"));
      REOPTDB_ASSERT_OK(cluster.ShardByHash("cust", "cust_id"));
      ShardedExecutor exec(&cluster);
      const std::string sql =
          "SELECT c.region, SUM(o.amount) AS rev, COUNT(*) AS n "
          "FROM orders o, cust c WHERE o.cust_id = c.cust_id "
          "GROUP BY c.region";
      Result<QueryResult> oracle = exec.ExecuteSingleNode(sql);
      ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
      for (size_t batch : {size_t{1}, size_t{512}}) {
        ShardQueryOptions q;
        q.batch_size = batch;
        Result<ShardExecResult> r = exec.Execute(sql, q);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        EXPECT_EQ(Canon(r.value().result.rows), Canon(oracle.value().rows))
            << nodes << " nodes, zipf=" << zipf << ", batch " << batch;
      }
    }
  }
}

TEST(ShardEquivalence, ForcedStrategiesBothMatchOracle) {
  std::unique_ptr<ShardCluster> cluster = MakeEmpDeptCluster(4);
  ShardedExecutor exec(cluster.get());
  const char* sql = kJoinQueries[1];
  Result<QueryResult> oracle = exec.ExecuteSingleNode(sql);
  ASSERT_TRUE(oracle.ok());
  for (ShardQueryOptions::Force f : {ShardQueryOptions::Force::kBroadcast,
                                     ShardQueryOptions::Force::kRepartition}) {
    ShardQueryOptions q;
    q.force = f;
    Result<ShardExecResult> r = exec.Execute(sql, q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(Canon(r.value().result.rows), Canon(oracle.value().rows));
  }
}

TEST(ShardEquivalence, ThreeWayJoinRunsMultipleStages) {
  // emp ⋈ dept ⋈ dept-as-regions is artificial but exercises a two-stage
  // pipeline: stage 1's temp feeds stage 2's build from the coordinator.
  ShardOptions so;
  so.num_nodes = 4;
  ShardCluster cluster(so);
  Database* db = cluster.db();
  LoadEmpDept(db, 100, 8);
  Schema region(std::vector<Column>{{"", "region_id", ValueType::kInt64, 8},
                                    {"", "region_name", ValueType::kString, 8}});
  ASSERT_TRUE(db->CreateTable("region", region).ok());
  for (int i = 0; i < 3; ++i)
    ASSERT_TRUE(db->Insert("region", Tuple({Value(int64_t{i}),
                                            Value("r" + std::to_string(i))}))
                    .ok());
  REOPTDB_ASSERT_OK(db->Analyze("region"));
  REOPTDB_ASSERT_OK(cluster.ShardByHash("emp", "emp_id"));
  REOPTDB_ASSERT_OK(cluster.ShardByHash("dept", "dept_id"));
  REOPTDB_ASSERT_OK(cluster.ShardByHash("region", "region_id"));
  ShardedExecutor exec(&cluster);
  const std::string sql =
      "SELECT r.region_name, COUNT(*) AS n, SUM(e.salary) AS total "
      "FROM emp e, dept d, region r "
      "WHERE e.dept_id = d.dept_id AND d.region_id = r.region_id "
      "GROUP BY r.region_name";
  Result<QueryResult> oracle = exec.ExecuteSingleNode(sql);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  Result<ShardExecResult> r = exec.Execute(sql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().stages_run, 2);
  EXPECT_EQ(Canon(r.value().result.rows), Canon(oracle.value().rows));
}

TEST(ShardEquivalence, UnpartitionedTableFallsBackToCoordinator) {
  ShardOptions so;
  so.num_nodes = 2;
  ShardCluster cluster(so);
  LoadEmpDept(cluster.db(), 50, 5);
  REOPTDB_ASSERT_OK(cluster.ShardByHash("emp", "emp_id"));
  // dept stays unsharded: the query must still answer, on the coordinator.
  ShardedExecutor exec(&cluster);
  const char* sql = kJoinQueries[0];
  Result<QueryResult> oracle = exec.ExecuteSingleNode(sql);
  ASSERT_TRUE(oracle.ok());
  Result<ShardExecResult> r = exec.Execute(sql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().coordinator_fallback);
  EXPECT_EQ(Canon(r.value().result.rows), Canon(oracle.value().rows));
}

TEST(ShardEquivalence, RangePartitioningAndSingleTableScan) {
  ShardOptions so;
  so.num_nodes = 4;
  ShardCluster cluster(so);
  LoadEmpDept(cluster.db(), 90, 6);
  TablePartitioning p;
  p.kind = TablePartitioning::Kind::kRange;
  p.column = "salary";
  REOPTDB_ASSERT_OK(cluster.Shard("emp", std::move(p)));
  ShardedExecutor exec(&cluster);
  const std::string sql =
      "SELECT e.dept_id, COUNT(*) AS n, SUM(e.salary) AS total FROM emp e "
      "WHERE e.salary > 1200.0 GROUP BY e.dept_id";
  Result<QueryResult> oracle = exec.ExecuteSingleNode(sql);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  Result<ShardExecResult> r = exec.Execute(sql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r.value().coordinator_fallback);
  EXPECT_EQ(Canon(r.value().result.rows), Canon(oracle.value().rows));
}

// ---------------------------------------------------------------------------
// Skew defense (acceptance: Zipf at 4 nodes triggers ≥1 recorded
// distribution switch and lowers the charged makespan vs the control).

struct SkewRun {
  double cluster_ms = 0;
  int switches = 0;
  size_t skews_recorded = 0;
};

SkewRun RunZipfJoin(bool reopt_enabled) {
  ShardOptions so;
  so.num_nodes = 4;
  so.reopt_enabled = reopt_enabled;
  ShardCluster cluster(so);
  LoadOrdersCust(cluster.db(), 2000, 600, /*zipf=*/true);
  EXPECT_TRUE(cluster.ShardByHash("orders", "order_id").ok());
  EXPECT_TRUE(cluster.ShardByHash("cust", "cust_id").ok());
  // Stale coordinator stats understate the zipf-keyed orders side 100x, so
  // the planner makes it the build and broadcasts it. The observed build
  // contradicts the estimate at the stage boundary; the defended arm
  // switches to repartition before any data moves, then sees the hot key
  // land skewed and records it. The control broadcasts 2000 rows to every
  // node.
  {
    Result<TableInfo*> info = cluster.db()->catalog()->Get("orders");
    EXPECT_TRUE(info.ok());
    if (!info.ok()) return SkewRun{};
    TableStats stale = info.value()->stats;
    stale.row_count = 20;
    stale.page_count = 1;
    EXPECT_TRUE(
        cluster.db()->catalog()->SetStats("orders", std::move(stale)).ok());
  }
  ShardedExecutor exec(&cluster);
  ShardQueryOptions q;
  const std::string sql =
      "SELECT c.region, COUNT(*) AS n FROM orders o, cust c "
      "WHERE o.cust_id = c.cust_id GROUP BY c.region";
  Result<QueryResult> oracle = exec.ExecuteSingleNode(sql);
  EXPECT_TRUE(oracle.ok());
  Result<ShardExecResult> r = exec.Execute(sql, q);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  SkewRun out;
  if (!r.ok()) return out;
  EXPECT_EQ(Canon(r.value().result.rows), Canon(oracle.value().rows))
      << "reopt=" << reopt_enabled;
  out.cluster_ms = r.value().cluster_ms;
  out.switches = r.value().distribution_switches;
  out.skews_recorded = r.value().result.report.trace.shard_skews.size();
  return out;
}

TEST(SkewDefense, ZipfBuildTriggersSwitchAndBeatsControl) {
  SkewRun control = RunZipfJoin(/*reopt_enabled=*/false);
  SkewRun defended = RunZipfJoin(/*reopt_enabled=*/true);
  // Only the defended arm repartitions, so only it can observe the hot key
  // landing skewed; the control's broadcast never exposes it.
  EXPECT_GE(defended.skews_recorded, 1u);
  EXPECT_EQ(control.switches, 0);
  EXPECT_GE(defended.switches, 1)
      << "Zipf build skew did not trigger a distribution switch";
  EXPECT_LT(defended.cluster_ms, control.cluster_ms)
      << "the defended run should beat the no-reopt control";
}

// ---------------------------------------------------------------------------
// Skew / straggler detector units.

TEST(SkewDetectorUnit, BuildSkewThresholds) {
  SkewThresholds t;
  t.skew_factor = 10.0;
  t.min_skew_rows = 64;
  SkewDetector d(t);
  // 10x the per-node estimate, over the floor, over 2x the mean: fires.
  auto s = d.CheckBuildSkew({0, 1, 2, 3}, {1000, 10, 10, 10}, 40.0);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->node, 0);
  EXPECT_EQ(s->node_rows, 1000u);
  // Balanced: silent.
  EXPECT_FALSE(d.CheckBuildSkew({0, 1, 2, 3}, {250, 260, 240, 250}, 1000.0)
                   .has_value());
  // Skewed but tiny (under min_skew_rows): silent.
  EXPECT_FALSE(d.CheckBuildSkew({0, 1}, {40, 1}, 4.0).has_value());
}

TEST(SkewDetectorUnit, StragglerPercentileAndWeight) {
  SkewThresholds t;
  t.straggler_ratio = 2.0;
  t.straggler_percentile = 0.5;
  SkewDetector d(t);
  auto out = d.CheckStragglers({0, 1, 2, 3}, {100.0, 110.0, 105.0, 500.0});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].node, 3);
  EXPECT_GT(out[0].percentile_ms, 0.0);
  EXPECT_LT(out[0].new_weight, 1.0);
  EXPECT_GE(out[0].new_weight, 0.1);
  EXPECT_TRUE(d.CheckStragglers({0, 1}, {100.0, 150.0}).empty());
}

TEST(SkewDetectorUnit, SlotTableHonorsWeightsDeterministically) {
  std::vector<int> even = SkewDetector::BuildSlotTable({0, 1}, {1.0, 1.0});
  ASSERT_EQ(even.size(), 2u * SkewDetector::kSlotsPerNode);
  EXPECT_EQ(static_cast<size_t>(std::count(even.begin(), even.end(), 0)),
            static_cast<size_t>(SkewDetector::kSlotsPerNode));
  std::vector<int> skewed = SkewDetector::BuildSlotTable({0, 1}, {0.1, 1.0});
  const auto n0 = std::count(skewed.begin(), skewed.end(), 0);
  const auto n1 = std::count(skewed.begin(), skewed.end(), 1);
  EXPECT_GT(n1, 5 * n0) << "weight 0.1 vs 1.0 should shift ~10x the slots";
  EXPECT_GE(n0, 1) << "a live node must never be starved";
  EXPECT_EQ(SkewDetector::BuildSlotTable({0, 1}, {0.1, 1.0}), skewed);
}

// ---------------------------------------------------------------------------
// Straggler defense.

TEST(StragglerDefense, SlowNodeIsDetectedAndReweighted) {
  ShardOptions so;
  so.num_nodes = 4;
  so.node_slowdown = {1.0, 1.0, 1.0, 8.0};  // node 3 is 8x slower
  so.skew.straggler_ratio = 2.0;
  ShardCluster cluster(so);
  LoadEmpDept(cluster.db(), 160, 8);
  REOPTDB_ASSERT_OK(cluster.ShardByHash("emp", "emp_id"));
  REOPTDB_ASSERT_OK(cluster.ShardByHash("dept", "dept_id"));
  ShardedExecutor exec(&cluster);
  const char* sql = kJoinQueries[0];
  Result<QueryResult> oracle = exec.ExecuteSingleNode(sql);
  ASSERT_TRUE(oracle.ok());
  Result<ShardExecResult> r = exec.Execute(sql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Canon(r.value().result.rows), Canon(oracle.value().rows));
  const QueryTrace& trace = r.value().result.report.trace;
  ASSERT_FALSE(trace.stragglers.empty()) << "8x slowdown went undetected";
  bool found = false;
  for (const StragglerRecord& s : trace.stragglers)
    if (s.node == 3) {
      found = true;
      EXPECT_GT(s.node_ms, s.percentile_ms);
      EXPECT_LT(s.new_weight, 1.0);
    }
  EXPECT_TRUE(found);
  // The defense actually re-weighted the node's routing share.
  EXPECT_LT(cluster.node(3)->weight, 1.0);
  // The control arm records but does not act.
  ShardOptions co = so;
  co.reopt_enabled = false;
  ShardCluster control(co);
  LoadEmpDept(control.db(), 160, 8);
  REOPTDB_ASSERT_OK(control.ShardByHash("emp", "emp_id"));
  REOPTDB_ASSERT_OK(control.ShardByHash("dept", "dept_id"));
  ShardedExecutor cexec(&control);
  Result<ShardExecResult> cr = cexec.Execute(sql);
  ASSERT_TRUE(cr.ok());
  EXPECT_FALSE(cr.value().result.report.trace.stragglers.empty());
  EXPECT_EQ(control.node(3)->weight, 1.0);
}

// ---------------------------------------------------------------------------
// Node-failure defense (acceptance: seeded crash schedules complete
// correctly via remainder re-planning onto survivors).

TEST(NodeFailure, CrashMidQueryCompletesOnSurvivors) {
  for (int nodes : {2, 4}) {
    ShardOptions so;
    so.num_nodes = nodes;
    ShardCluster cluster(so);
    LoadEmpDept(cluster.db(), 100, 8);
    REOPTDB_ASSERT_OK(cluster.ShardByHash("emp", "emp_id"));
    REOPTDB_ASSERT_OK(cluster.ShardByHash("dept", "dept_id"));
    ShardedExecutor exec(&cluster);
    const char* sql = kJoinQueries[1];
    Result<QueryResult> oracle = exec.ExecuteSingleNode(sql);
    ASSERT_TRUE(oracle.ok());

    REOPTDB_ASSERT_OK(cluster.faults()->Configure("node.crash=nth:1"));
    Result<ShardExecResult> r = exec.Execute(sql);
    cluster.faults()->Reset();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().nodes_lost, 1);
    EXPECT_EQ(Canon(r.value().result.rows), Canon(oracle.value().rows))
        << nodes << " nodes";
    const QueryTrace& trace = r.value().result.report.trace;
    ASSERT_EQ(trace.node_losses.size(), 1u);
    EXPECT_EQ(trace.node_losses[0].reason, "node.crash");
    EXPECT_EQ(trace.node_losses[0].survivors, nodes - 1);
    EXPECT_GT(trace.node_losses[0].rehomed_rows, 0u);
    EXPECT_EQ(static_cast<int>(cluster.AliveNodes().size()), nodes - 1);

    // The dead node's rows were re-homed: the next query still answers
    // identically on the shrunken cluster.
    Result<ShardExecResult> again = exec.Execute(sql);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    EXPECT_EQ(again.value().nodes_lost, 0);
    EXPECT_EQ(Canon(again.value().result.rows), Canon(oracle.value().rows));
  }
}

TEST(NodeFailure, AllNodesLostFallsBackToCoordinator) {
  ShardOptions so;
  so.num_nodes = 2;
  ShardCluster cluster(so);
  LoadEmpDept(cluster.db(), 60, 6);
  REOPTDB_ASSERT_OK(cluster.ShardByHash("emp", "emp_id"));
  REOPTDB_ASSERT_OK(cluster.ShardByHash("dept", "dept_id"));
  ShardedExecutor exec(&cluster);
  const std::string sql =
      "SELECT d.region_id, COUNT(*) AS n FROM emp e, dept d "
      "WHERE e.dept_id = d.dept_id GROUP BY d.region_id";
  Result<QueryResult> oracle = exec.ExecuteSingleNode(sql);
  ASSERT_TRUE(oracle.ok());

  REOPTDB_ASSERT_OK(cluster.faults()->Configure("node.crash=every"));
  Result<ShardExecResult> r = exec.Execute(sql);
  cluster.faults()->Reset();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().coordinator_fallback);
  EXPECT_EQ(r.value().nodes_lost, 2);
  EXPECT_TRUE(cluster.AliveNodes().empty());
  EXPECT_EQ(Canon(r.value().result.rows), Canon(oracle.value().rows));
}

TEST(NodeFailure, MultiStageCrashValidatesJournaledStages) {
  // Crash during stage 2 of a three-way join: stage 1's journaled temp
  // must validate (tuple count + content checksum) so the re-run trusts
  // it instead of restarting the query.
  ShardOptions so;
  so.num_nodes = 3;
  ShardCluster cluster(so);
  Database* db = cluster.db();
  LoadEmpDept(db, 90, 9);
  Schema region(std::vector<Column>{{"", "region_id", ValueType::kInt64, 8},
                                    {"", "region_name", ValueType::kString, 8}});
  ASSERT_TRUE(db->CreateTable("region", region).ok());
  for (int i = 0; i < 3; ++i)
    ASSERT_TRUE(db->Insert("region", Tuple({Value(int64_t{i}),
                                            Value("r" + std::to_string(i))}))
                    .ok());
  REOPTDB_ASSERT_OK(db->Analyze("region"));
  REOPTDB_ASSERT_OK(cluster.ShardByHash("emp", "emp_id"));
  REOPTDB_ASSERT_OK(cluster.ShardByHash("dept", "dept_id"));
  REOPTDB_ASSERT_OK(cluster.ShardByHash("region", "region_id"));
  ShardedExecutor exec(&cluster);
  const std::string sql =
      "SELECT r.region_name, SUM(e.salary) AS total "
      "FROM emp e, dept d, region r "
      "WHERE e.dept_id = d.dept_id AND d.region_id = r.region_id "
      "GROUP BY r.region_name";
  Result<QueryResult> oracle = exec.ExecuteSingleNode(sql);
  ASSERT_TRUE(oracle.ok());

  // Count the node.crash check cadence with a never-firing probe, then
  // aim an nth trigger at the first stage-2 checkpoint (both stages run
  // the same checkpoints on the same node count, so it's the midpoint).
  REOPTDB_ASSERT_OK(cluster.faults()->Configure("node.crash=prob:0.0@1"));
  Result<ShardExecResult> clean = exec.Execute(sql);
  ASSERT_TRUE(clean.ok());
  ASSERT_EQ(clean.value().stages_run, 2);
  const uint64_t stage1_checks =
      cluster.faults()->StatsFor(faults::kNodeCrash).calls;
  cluster.faults()->Reset();
  ASSERT_GT(stage1_checks, 6u);  // 3 nodes x 2 checkpoints x 2 stages

  REOPTDB_ASSERT_OK(cluster.faults()->Configure(
      "node.crash=nth:" + std::to_string(stage1_checks / 2 + 1)));
  Result<ShardExecResult> r = exec.Execute(sql);
  cluster.faults()->Reset();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().nodes_lost, 1);
  EXPECT_EQ(Canon(r.value().result.rows), Canon(oracle.value().rows));
  const QueryTrace& trace = r.value().result.report.trace;
  ASSERT_EQ(trace.node_losses.size(), 1u);
  if (trace.node_losses[0].stage >= 2) {
    EXPECT_TRUE(trace.node_losses[0].journal_resume)
        << "a completed stage 1 temp should validate from the journal";
  }
}

TEST(NodeFailure, RehomeMovesEveryDeadRowAndChargesIo) {
  ShardOptions so;
  so.num_nodes = 3;
  ShardCluster cluster(so);
  LoadEmpDept(cluster.db(), 99, 9);
  REOPTDB_ASSERT_OK(cluster.ShardByHash("emp", "emp_id"));
  uint64_t dead_rows = 0;
  for (uint64_t ord = 0; ord < 99; ++ord)
    if (cluster.RouteOf("emp", ord) == 1) ++dead_rows;
  ASSERT_GT(dead_rows, 0u);
  REOPTDB_ASSERT_OK(cluster.MarkDead(1));
  Result<ShardCluster::RehomeResult> r = cluster.RehomeDeadNode(1);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().rehomed_rows, dead_rows);
  EXPECT_GT(r.value().sim_ms, 0.0);
  for (uint64_t ord = 0; ord < 99; ++ord) EXPECT_NE(cluster.RouteOf("emp", ord), 1);
  // Survivor partitions now hold every row.
  uint64_t total = 0;
  for (int id : cluster.AliveNodes()) {
    Result<TableInfo*> info = cluster.node(id)->catalog->Get("emp");
    ASSERT_TRUE(info.ok());
    total += info.value()->heap->tuple_count();
  }
  EXPECT_EQ(total, 99u);
}

// ---------------------------------------------------------------------------
// Feedback merge (satellite: per-partition observations are merged before
// the EWMA blend — an N-node run must train the store once, not N times).

struct FeedbackProbe {
  double observed_rows = -1;
  double avg_tuple_bytes = -1;
  int observations = 0;
};

FeedbackProbe ProbeFeedback(int nodes) {
  ShardOptions so;
  so.num_nodes = std::max(nodes, 1);
  so.coordinator.enable_feedback = true;
  ShardCluster cluster(so);
  LoadEmpDept(cluster.db(), 80, 8);
  EXPECT_TRUE(cluster.ShardByHash("emp", "emp_id").ok());
  EXPECT_TRUE(cluster.ShardByHash("dept", "dept_id").ok());
  ShardedExecutor exec(&cluster);
  const std::string sql =
      "SELECT e.emp_id, d.dept_name FROM emp e, dept d "
      "WHERE e.dept_id = d.dept_id AND e.salary > 1300.0";
  Result<ShardExecResult> r = exec.Execute(sql);
  EXPECT_TRUE(r.ok()) << r.status().ToString();

  FeedbackProbe out;
  Result<SelectStmtAst> ast = ParseSelect(sql);
  EXPECT_TRUE(ast.ok());
  Result<QuerySpec> spec = Bind(ast.value(), *cluster.db()->catalog());
  EXPECT_TRUE(spec.ok());
  int rel_idx = -1;
  for (size_t i = 0; i < spec.value().relations.size(); ++i)
    if (spec.value().relations[i].alias == "e") rel_idx = static_cast<int>(i);
  EXPECT_GE(rel_idx, 0);
  const BaseRelFeedback* fb = cluster.db()->feedback_store()->LookupBaseRel(
      "emp", PredicateSignature(spec.value(), rel_idx), 80.0, 0.0);
  if (fb != nullptr) {
    out.observed_rows = fb->observed_rows;
    out.avg_tuple_bytes = fb->avg_tuple_bytes;
    out.observations = fb->observations;
  }
  return out;
}

TEST(FeedbackMerge, ShardedRunTrainsStoreLikeSingleNode) {
  const FeedbackProbe single = ProbeFeedback(1);
  ASSERT_GT(single.observed_rows, 0.0);
  EXPECT_EQ(single.observations, 1);
  for (int nodes : {2, 4}) {
    const FeedbackProbe sharded = ProbeFeedback(nodes);
    // Exactly one merged observation — not one per partition.
    EXPECT_EQ(sharded.observations, 1) << nodes << " nodes";
    EXPECT_NEAR(sharded.observed_rows, single.observed_rows, 1e-9)
        << nodes << "-node feedback cardinality was double-counted or lost";
    // Merged byte counts shed the shard-internal ordinal column's 9
    // serialized bytes per row before blending.
    EXPECT_NEAR(sharded.avg_tuple_bytes, single.avg_tuple_bytes, 1e-6)
        << nodes << "-node avg tuple bytes drifted";
  }
}

// ---------------------------------------------------------------------------
// Accounting invariants.

TEST(ShardAccounting, NoPageLeaksAcrossQueriesAndNodeLoss) {
  ShardOptions so;
  so.num_nodes = 4;
  ShardCluster cluster(so);
  LoadEmpDept(cluster.db(), 80, 8);
  REOPTDB_ASSERT_OK(cluster.ShardByHash("emp", "emp_id"));
  REOPTDB_ASSERT_OK(cluster.ShardByHash("dept", "dept_id"));
  ShardedExecutor exec(&cluster);
  const char* sql = kJoinQueries[1];
  REOPTDB_ASSERT_OK(exec.Execute(sql).status());
  const size_t baseline = cluster.LivePagesAliveNodes();
  for (int i = 0; i < 3; ++i) REOPTDB_ASSERT_OK(exec.Execute(sql).status());
  EXPECT_EQ(cluster.LivePagesAliveNodes(), baseline)
      << "repeated sharded queries leaked pages";

  // Node loss: rehoming grows survivor partitions (legitimately), but
  // queries after the loss must be leak-free again.
  REOPTDB_ASSERT_OK(cluster.faults()->Configure("node.crash=nth:1"));
  REOPTDB_ASSERT_OK(exec.Execute(sql).status());
  cluster.faults()->Reset();
  const size_t after_loss = cluster.LivePagesAliveNodes();
  for (int i = 0; i < 3; ++i) REOPTDB_ASSERT_OK(exec.Execute(sql).status());
  EXPECT_EQ(cluster.LivePagesAliveNodes(), after_loss)
      << "post-loss sharded queries leaked pages";
}

TEST(ShardAccounting, MakespanAndNetworkChargesAreVisible) {
  std::unique_ptr<ShardCluster> cluster = MakeEmpDeptCluster(4);
  ShardedExecutor exec(cluster.get());
  const double before = cluster->cluster_ms();
  Result<ShardExecResult> r = exec.Execute(kJoinQueries[0]);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r.value().cluster_ms, 0.0);
  EXPECT_NEAR(cluster->cluster_ms() - before, r.value().cluster_ms, 1e-9);
  uint64_t bytes = 0;
  for (int id : cluster->AliveNodes()) bytes += cluster->node(id)->net.bytes_sent;
  EXPECT_GT(bytes, 0u) << "a distributed join moved no bytes?";
}

// ---------------------------------------------------------------------------
// Replication & failover (DESIGN.md §16): every partition slice on k
// distinct nodes; losing any single node promotes surviving replicas with
// zero coordinator re-reads.

std::unique_ptr<ShardCluster> MakeReplicatedCluster(int nodes, int factor,
                                                    int nemp = 120,
                                                    int ndept = 8) {
  ShardOptions so;
  so.num_nodes = nodes;
  so.replication_factor = factor;
  auto cluster = std::make_unique<ShardCluster>(so);
  LoadEmpDept(cluster->db(), nemp, ndept);
  EXPECT_TRUE(cluster->ShardByHash("emp", "emp_id").ok());
  EXPECT_TRUE(cluster->ShardByHash("dept", "dept_id").ok());
  return cluster;
}

TEST(Replication, PlacementIsKWayDistinctAndQueryInvisible) {
  std::unique_ptr<ShardCluster> cluster = MakeReplicatedCluster(4, 3, 80, 8);
  for (const char* table : {"emp", "dept"}) {
    const uint64_t nrows = table[0] == 'e' ? 80u : 8u;
    for (uint64_t ord = 0; ord < nrows; ++ord) {
      const int primary = cluster->RouteOf(table, ord);
      const std::vector<int> reps = cluster->replicas()->ReplicasOf(table, ord);
      ASSERT_EQ(reps.size(), 2u) << table << " ord " << ord;
      EXPECT_NE(reps[0], reps[1]);
      for (int r : reps) EXPECT_NE(r, primary) << table << " ord " << ord;
    }
  }
  // Replicas are query-invisible: the distributed answer is still the
  // oracle's, and no query-visible table with the replica prefix exists on
  // the coordinator.
  ShardedExecutor exec(cluster.get());
  for (const char* sql : kJoinQueries) {
    Result<QueryResult> oracle = exec.ExecuteSingleNode(sql);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    Result<ShardExecResult> r = exec.Execute(sql);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(r.value().coordinator_fallback);
    EXPECT_EQ(Canon(r.value().result.rows), Canon(oracle.value().rows)) << sql;
  }
  EXPECT_FALSE(cluster->db()->catalog()->Exists("__replica_emp"));

  // At factor 1 the manager is inert: no replica heaps anywhere.
  std::unique_ptr<ShardCluster> k1 = MakeEmpDeptCluster(3);
  for (int id = 0; id < 3; ++id)
    EXPECT_FALSE(k1->node(id)->catalog->Exists("__replica_emp"));
}

TEST(Replication, FailoverPromotesReplicasWithZeroCoordinatorReads) {
  const char* sql = kJoinQueries[1];
  for (int victim = 0; victim < 4; ++victim) {
    std::unique_ptr<ShardCluster> cluster = MakeReplicatedCluster(4, 2);
    ShardedExecutor exec(cluster.get());
    Result<QueryResult> oracle = exec.ExecuteSingleNode(sql);
    ASSERT_TRUE(oracle.ok());
    uint64_t dead_primary_rows = 0;
    for (uint64_t ord = 0; ord < 120; ++ord)
      if (cluster->RouteOf("emp", ord) == victim) ++dead_primary_rows;
    for (uint64_t ord = 0; ord < 8; ++ord)
      if (cluster->RouteOf("dept", ord) == victim) ++dead_primary_rows;

    const uint64_t epoch_before = cluster->epoch();
    const DiskStats coord_before = cluster->db()->disk()->stats();
    REOPTDB_ASSERT_OK(cluster->MarkDead(victim));
    std::vector<ReplicaRepairRecord> repairs;
    Result<ShardCluster::RehomeResult> r =
        cluster->RehomeDeadNode(victim, &repairs);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    const DiskStats coord_delta = cluster->db()->disk()->stats() - coord_before;

    // The acceptance bar: with k=2 and one dead node, every lost primary
    // slice has a surviving replica, so failover is node-local I/O only.
    EXPECT_EQ(coord_delta.page_reads, 0u)
        << "victim " << victim << ": failover re-read the coordinator";
    EXPECT_EQ(r.value().promoted_rows, dead_primary_rows) << "victim " << victim;
    EXPECT_EQ(r.value().coordinator_rows, 0u);
    EXPECT_GT(r.value().restored_copies, 0u);  // k-way invariant re-established
    EXPECT_GT(r.value().sim_ms, 0.0);
    EXPECT_FALSE(repairs.empty());
    EXPECT_GT(cluster->epoch(), epoch_before);  // membership change is fenced
    for (uint64_t ord = 0; ord < 120; ++ord)
      EXPECT_NE(cluster->RouteOf("emp", ord), victim);

    Result<ShardExecResult> res = exec.Execute(sql);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_EQ(res.value().nodes_lost, 0);
    EXPECT_EQ(Canon(res.value().result.rows), Canon(oracle.value().rows))
        << "victim " << victim;
  }
}

TEST(Replication, CrashMidQueryPromotesFromReplicas) {
  std::unique_ptr<ShardCluster> cluster = MakeReplicatedCluster(4, 2);
  ShardedExecutor exec(cluster.get());
  const char* sql = kJoinQueries[1];
  Result<QueryResult> oracle = exec.ExecuteSingleNode(sql);
  ASSERT_TRUE(oracle.ok());

  REOPTDB_ASSERT_OK(cluster->faults()->Configure("node.crash=nth:1"));
  Result<ShardExecResult> r = exec.Execute(sql);
  cluster->faults()->Reset();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().nodes_lost, 1);
  EXPECT_EQ(Canon(r.value().result.rows), Canon(oracle.value().rows));
  const QueryTrace& trace = r.value().result.report.trace;
  ASSERT_EQ(trace.node_losses.size(), 1u);
  EXPECT_GT(trace.node_losses[0].promoted_rows, 0u);
  EXPECT_EQ(trace.node_losses[0].coordinator_rows, 0u);
  EXPECT_GE(trace.node_losses[0].epoch, 2u);
  EXPECT_FALSE(trace.replica_repairs.empty());

  Result<ShardExecResult> again = exec.Execute(sql);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(Canon(again.value().result.rows), Canon(oracle.value().rows));
}

TEST(Replication, LosingEveryCopyFallsBackToCoordinator) {
  // With 3 nodes at k=2, node 0's primaries replicate to node 1 (the next
  // alive node in id order). Killing both before failover runs leaves those
  // slices with no surviving copy: the coordinator's durable heap is the
  // documented last resort.
  std::unique_ptr<ShardCluster> cluster = MakeReplicatedCluster(3, 2, 90, 9);
  ShardedExecutor exec(cluster.get());
  const char* sql = kJoinQueries[0];
  Result<QueryResult> oracle = exec.ExecuteSingleNode(sql);
  ASSERT_TRUE(oracle.ok());

  REOPTDB_ASSERT_OK(cluster->MarkDead(0));
  REOPTDB_ASSERT_OK(cluster->MarkDead(1));
  Result<ShardCluster::RehomeResult> r0 = cluster->RehomeDeadNode(0);
  ASSERT_TRUE(r0.ok()) << r0.status().ToString();
  EXPECT_EQ(r0.value().promoted_rows, 0u);
  EXPECT_GT(r0.value().coordinator_rows, 0u);
  Result<ShardCluster::RehomeResult> r1 = cluster->RehomeDeadNode(1);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();

  Result<ShardExecResult> r = exec.Execute(sql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Canon(r.value().result.rows), Canon(oracle.value().rows));
}

// ---------------------------------------------------------------------------
// Heartbeat state machine: transient trouble earns suspicion and a lease,
// not instant evacuation; persistent trouble still escalates to death.

TEST(Heartbeat, SuspicionLadderAndLeaseExpiry) {
  ShardOptions so;
  so.num_nodes = 2;
  ShardCluster cluster(so);

  // First miss: suspect, still a member.
  EXPECT_EQ(cluster.ReportMissedBeat(0), ShardCluster::BeatVerdict::kSuspect);
  EXPECT_EQ(cluster.node(0)->health, NodeHealth::kSuspect);
  EXPECT_EQ(cluster.node(0)->missed_beats, 1);
  EXPECT_TRUE(cluster.node(0)->alive);

  // A successful stage clears the suspicion entirely.
  cluster.ClearSuspicion(0);
  EXPECT_EQ(cluster.node(0)->health, NodeHealth::kAlive);
  EXPECT_EQ(cluster.node(0)->missed_beats, 0);

  // max_missed_beats consecutive misses: the verdict flips to dead.
  for (int i = 1; i < cluster.options().max_missed_beats; ++i)
    EXPECT_EQ(cluster.ReportMissedBeat(0), ShardCluster::BeatVerdict::kSuspect);
  EXPECT_EQ(cluster.ReportMissedBeat(0), ShardCluster::BeatVerdict::kDead);

  // Lease expiry is the other edge: one miss starts the lease; a second
  // miss after the simulated clock has run past it is fatal even though
  // the miss count alone would not be.
  EXPECT_EQ(cluster.ReportMissedBeat(1), ShardCluster::BeatVerdict::kSuspect);
  EXPECT_GT(cluster.node(1)->lease_expiry_ms, cluster.cluster_ms());
  cluster.AddClusterMs(cluster.options().lease_ms + 1.0);
  EXPECT_EQ(cluster.ReportMissedBeat(1), ShardCluster::BeatVerdict::kDead);
}

TEST(Heartbeat, PersistentLinkFaultIsSuspectedBeforeEscalation) {
  std::unique_ptr<ShardCluster> cluster = MakeEmpDeptCluster(2, 60, 6);
  ShardedExecutor exec(cluster.get());
  const char* sql = kJoinQueries[0];
  Result<QueryResult> oracle = exec.ExecuteSingleNode(sql);
  ASSERT_TRUE(oracle.ok());

  REOPTDB_ASSERT_OK(cluster->faults()->Configure("net.send=every"));
  Result<ShardExecResult> r = exec.Execute(sql);
  cluster->faults()->Reset();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Canon(r.value().result.rows), Canon(oracle.value().rows));
  // A persistent link fault must walk the whole ladder — suspicion records
  // first (with the heartbeat cost charged), death only after the miss
  // budget is spent — and the answer is still correct.
  const QueryTrace& trace = r.value().result.report.trace;
  ASSERT_FALSE(trace.node_suspects.empty());
  int max_missed = 0;
  for (const NodeSuspectRecord& s : trace.node_suspects) {
    EXPECT_EQ(s.reason, "net.send");
    max_missed = std::max(max_missed, s.missed_beats);
  }
  EXPECT_EQ(max_missed, cluster->options().max_missed_beats);
  EXPECT_TRUE(r.value().nodes_lost > 0 || r.value().coordinator_fallback);
}

// ---------------------------------------------------------------------------
// Epoch fencing: a dead node that resurrects with a stale membership view
// gets every replayed send dropped at the exchange, recorded and typed.

TEST(EpochFencing, ZombieReplayIsFencedAndHarmless) {
  std::unique_ptr<ShardCluster> cluster = MakeReplicatedCluster(4, 2);
  ShardedExecutor exec(cluster.get());
  const char* sql = kJoinQueries[0];
  Result<QueryResult> oracle = exec.ExecuteSingleNode(sql);
  ASSERT_TRUE(oracle.ok());

  // Kill node 2 out of band; failover bumps the epoch past its last view.
  REOPTDB_ASSERT_OK(cluster->MarkDead(2));
  ASSERT_TRUE(cluster->RehomeDeadNode(2).ok());
  const uint64_t fenced_before = cluster->node(2)->net.fenced_buffers;

  REOPTDB_ASSERT_OK(cluster->faults()->Configure("node.resurrect=nth:1"));
  Result<ShardExecResult> r = exec.Execute(sql);
  cluster->faults()->Reset();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().nodes_lost, 0);
  EXPECT_EQ(Canon(r.value().result.rows), Canon(oracle.value().rows));

  const QueryTrace& trace = r.value().result.report.trace;
  ASSERT_FALSE(trace.epoch_fences.empty());
  for (const EpochFenceRecord& f : trace.epoch_fences) {
    EXPECT_EQ(f.node, 2);
    EXPECT_LT(f.stale_epoch, f.current_epoch);
    EXPECT_GT(f.fenced_rows, 0u);
  }
  EXPECT_GT(cluster->node(2)->net.fenced_buffers, fenced_before);
  // The zombie never rejoins the membership.
  EXPECT_FALSE(cluster->node(2)->alive);
  EXPECT_EQ(cluster->AliveNodes().size(), 3u);
}

// ---------------------------------------------------------------------------
// The window between a skew-switch decision and its re-exchange is a
// distinct kill point (the executor checks node.crash there explicitly).

TEST(NodeFailure, CrashDuringDistributionSwitchStaysBitIdentical) {
  auto make_zipf_cluster = [] {
    ShardOptions so;
    so.num_nodes = 4;
    // Near-free bytes (messages still cost) put the query in the window
    // where the stale 20-row estimate picks broadcast, the observed 2000
    // rows flip it to repartition, and the hot-key build skew then flips
    // it back to broadcast — so the mid-switch kill point is reachable.
    so.coordinator.cost_params.t_net_byte_ms = 2e-7;
    auto cluster = std::make_unique<ShardCluster>(so);
    LoadOrdersCust(cluster->db(), 2000, 6000, /*zipf=*/true);
    EXPECT_TRUE(cluster->ShardByHash("orders", "order_id").ok());
    EXPECT_TRUE(cluster->ShardByHash("cust", "cust_id").ok());
    Result<TableInfo*> info = cluster->db()->catalog()->Get("orders");
    EXPECT_TRUE(info.ok());
    TableStats stale = info.value()->stats;
    stale.row_count = 20;
    stale.page_count = 1;
    EXPECT_TRUE(
        cluster->db()->catalog()->SetStats("orders", std::move(stale)).ok());
    return cluster;
  };
  const std::string sql =
      "SELECT c.region, COUNT(*) AS n FROM orders o, cust c "
      "WHERE o.cust_id = c.cust_id GROUP BY c.region";

  // Probe the node.crash cadence with a never-firing trigger on a twin
  // cluster: per stage, one checkpoint per alive node at stage start, one
  // per node in the fragment loop, plus exactly one in the switch window.
  uint64_t mid_switch_call = 0;
  {
    std::unique_ptr<ShardCluster> probe = make_zipf_cluster();
    ShardedExecutor exec(probe.get());
    REOPTDB_ASSERT_OK(probe->faults()->Configure("node.crash=prob:0.0@1"));
    Result<ShardExecResult> clean = exec.Execute(sql);
    const uint64_t calls =
        probe->faults()->StatsFor(faults::kNodeCrash).calls;
    probe->faults()->Reset();
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();
    ASSERT_GE(clean.value().distribution_switches, 2);  // estimate + skew
    ASSERT_FALSE(clean.value().result.report.trace.shard_skews.empty());
    ASSERT_EQ(calls, 2u * 4 + 1)
        << "node.crash checkpoint cadence changed; re-aim this test";
    mid_switch_call = 4 + 1;  // after the 4 stage-start checks
  }

  std::unique_ptr<ShardCluster> cluster = make_zipf_cluster();
  ShardedExecutor exec(cluster.get());
  Result<QueryResult> oracle = exec.ExecuteSingleNode(sql);
  ASSERT_TRUE(oracle.ok());
  REOPTDB_ASSERT_OK(cluster->faults()->Configure(
      "node.crash=nth:" + std::to_string(mid_switch_call)));
  Result<ShardExecResult> r = exec.Execute(sql);
  cluster->faults()->Reset();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().nodes_lost, 1);
  EXPECT_EQ(Canon(r.value().result.rows), Canon(oracle.value().rows));
  const QueryTrace& trace = r.value().result.report.trace;
  ASSERT_EQ(trace.node_losses.size(), 1u);
  EXPECT_EQ(trace.node_losses[0].reason, "node.crash");
  // The mid-switch checkpoint targets the overloaded node the skew
  // detector flagged — the victim must be that node.
  ASSERT_FALSE(trace.shard_skews.empty());
  EXPECT_EQ(trace.node_losses[0].node, trace.shard_skews[0].node);

  Result<ShardExecResult> again = exec.Execute(sql);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(Canon(again.value().result.rows), Canon(oracle.value().rows));
}

// ---------------------------------------------------------------------------
// Bit-rot on a node's primary partition: the scan surfaces typed kDataLoss
// (one confirming re-read, no transient-retry burn), the node is evacuated,
// and the answer still matches the oracle — in both batch modes.

TEST(NodeFailure, BitRotOnPrimaryPartitionEvacuatesNode) {
  for (size_t batch : {size_t{1}, size_t{1024}}) {
    std::unique_ptr<ShardCluster> cluster = MakeEmpDeptCluster(3);
    ShardedExecutor exec(cluster.get());
    const char* sql = kJoinQueries[0];
    Result<QueryResult> oracle = exec.ExecuteSingleNode(sql);
    ASSERT_TRUE(oracle.ok());

    Result<TableInfo*> part = cluster->node(1)->catalog->Get("emp");
    ASSERT_TRUE(part.ok());
    ASSERT_GT(part.value()->heap->flushed_page_count(), 0u);
    REOPTDB_ASSERT_OK(cluster->node(1)->disk->CorruptPageForTesting(
        part.value()->heap->page_id(0)));

    ShardQueryOptions q;
    q.batch_size = batch;
    Result<ShardExecResult> r = exec.Execute(sql, q);
    ASSERT_TRUE(r.ok()) << "batch " << batch << ": " << r.status().ToString();
    EXPECT_EQ(r.value().nodes_lost, 1);
    EXPECT_EQ(Canon(r.value().result.rows), Canon(oracle.value().rows))
        << "batch " << batch;
    const QueryTrace& trace = r.value().result.report.trace;
    ASSERT_EQ(trace.node_losses.size(), 1u);
    EXPECT_EQ(trace.node_losses[0].node, 1);
    const DiskStats& ds = cluster->node(1)->disk->stats();
    EXPECT_GE(ds.data_loss_reads, 1u);
    EXPECT_EQ(ds.io_retries, ds.data_loss_reads);  // 1 confirming re-read each
  }
}

// ---------------------------------------------------------------------------
// Anti-entropy scrubbing: checksum divergence across copies is detected,
// quarantined, repaired from a healthy holder, and charged.

TEST(Scrub, CleanClusterScrubsQuiet) {
  std::unique_ptr<ShardCluster> cluster = MakeReplicatedCluster(4, 2);
  Scrubber scrub(cluster.get());
  Result<ScrubSummary> s = scrub.ScrubAll();
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s.value().findings, 0u);
  EXPECT_EQ(s.value().repaired, 0u);
  EXPECT_GE(s.value().copies_checked, 8u);  // primaries + replicas, 2 tables
  EXPECT_GT(s.value().sim_ms, 0.0);         // verification reads are charged
  EXPECT_EQ(cluster->scrub_findings(), 0u);
}

TEST(Scrub, BitRotOnReplicaIsDetectedAndRepaired) {
  std::unique_ptr<ShardCluster> cluster = MakeReplicatedCluster(4, 2);
  int victim = -1;
  PageId pid = kInvalidPageId;
  for (int id = 0; id < 4 && victim < 0; ++id) {
    if (!cluster->node(id)->catalog->Exists("__replica_emp")) continue;
    Result<TableInfo*> info = cluster->node(id)->catalog->Get("__replica_emp");
    ASSERT_TRUE(info.ok());
    if (info.value()->heap->flushed_page_count() == 0) continue;
    victim = id;
    pid = info.value()->heap->page_id(0);
  }
  ASSERT_GE(victim, 0) << "no flushed replica heap to corrupt";
  REOPTDB_ASSERT_OK(cluster->node(victim)->disk->CorruptPageForTesting(pid));

  Scrubber scrub(cluster.get());
  Result<ScrubSummary> s = scrub.ScrubTable("emp");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s.value().findings, 1u);
  EXPECT_EQ(s.value().repaired, 1u);
  EXPECT_EQ(s.value().coordinator_rows, 0u);  // healed from surviving primaries
  ASSERT_EQ(s.value().reports.size(), 1u);
  EXPECT_EQ(s.value().reports[0].table, "emp");
  EXPECT_EQ(s.value().reports[0].node, victim);
  EXPECT_EQ(s.value().reports[0].role, "replica");
  EXPECT_EQ(s.value().reports[0].finding, "data-loss");
  EXPECT_TRUE(s.value().reports[0].repaired);
  EXPECT_FALSE(s.value().repairs.empty());
  EXPECT_GT(s.value().sim_ms, 0.0);
  EXPECT_GE(cluster->scrub_findings(), 1u);

  // A second pass over the repaired cluster is quiet.
  Result<ScrubSummary> s2 = scrub.ScrubAll();
  ASSERT_TRUE(s2.ok()) << s2.status().ToString();
  EXPECT_EQ(s2.value().findings, 0u);

  // The repaired replica is load-bearing: kill the primary whose slices it
  // mirrors (replica owners are the next alive node in id order) and the
  // promoted copy must produce the oracle answer with no coordinator rows.
  const int primary = (victim + 3) % 4;
  ShardedExecutor exec(cluster.get());
  const char* sql = kJoinQueries[1];
  Result<QueryResult> oracle = exec.ExecuteSingleNode(sql);
  ASSERT_TRUE(oracle.ok());
  REOPTDB_ASSERT_OK(cluster->MarkDead(primary));
  Result<ShardCluster::RehomeResult> rh = cluster->RehomeDeadNode(primary);
  ASSERT_TRUE(rh.ok()) << rh.status().ToString();
  EXPECT_GT(rh.value().promoted_rows, 0u);
  EXPECT_EQ(rh.value().coordinator_rows, 0u);
  Result<ShardExecResult> r = exec.Execute(sql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Canon(r.value().result.rows), Canon(oracle.value().rows));
}

TEST(Scrub, DivergentReplicaIsQuarantinedAndRebuilt) {
  std::unique_ptr<ShardCluster> cluster = MakeReplicatedCluster(4, 2);
  // Rewrite one node's replica of dept with a single mutated row: every
  // page reads fine, but the copy's content diverges from the coordinator
  // (a lost or misdirected write, invisible to page checksums).
  int victim = -1;
  for (int id = 0; id < 4 && victim < 0; ++id)
    if (cluster->node(id)->catalog->Exists("__replica_dept")) victim = id;
  ASSERT_GE(victim, 0);
  Catalog* cat = cluster->node(victim)->catalog.get();
  std::vector<Tuple> rows;
  Schema schema;
  {
    Result<TableInfo*> info = cat->Get("__replica_dept");
    ASSERT_TRUE(info.ok());
    schema = info.value()->schema;
    HeapFile::Iterator it = info.value()->heap->Scan();
    Tuple t;
    while (true) {
      Result<bool> more = it.Next(&t);
      ASSERT_TRUE(more.ok());
      if (!more.value()) break;
      rows.push_back(t);
    }
  }
  ASSERT_FALSE(rows.empty());
  REOPTDB_ASSERT_OK(cat->Drop("__replica_dept"));
  Result<TableInfo*> fresh = cat->CreateTable("__replica_dept", schema);
  ASSERT_TRUE(fresh.ok());
  for (size_t i = 0; i < rows.size(); ++i) {
    std::vector<Value> vals;
    for (size_t c = 0; c < rows[i].size(); ++c) vals.push_back(rows[i].at(c));
    if (i == 0) vals[0] = Value(int64_t{9999});  // the lost update
    ASSERT_TRUE(fresh.value()->heap->Append(Tuple(std::move(vals))).ok());
  }
  REOPTDB_ASSERT_OK(fresh.value()->heap->Flush());

  Scrubber scrub(cluster.get());
  Result<ScrubSummary> s = scrub.ScrubTable("dept");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s.value().findings, 1u);
  ASSERT_EQ(s.value().reports.size(), 1u);
  EXPECT_EQ(s.value().reports[0].finding, "divergence");
  EXPECT_EQ(s.value().reports[0].node, victim);
  EXPECT_EQ(s.value().reports[0].role, "replica");
  EXPECT_TRUE(s.value().reports[0].repaired);

  Result<ScrubSummary> s2 = scrub.ScrubTable("dept");
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s2.value().findings, 0u);
}

TEST(Scrub, MidQueryScrubRepairsAndIsTraced) {
  std::unique_ptr<ShardCluster> cluster = MakeReplicatedCluster(4, 2);
  int victim = -1;
  PageId pid = kInvalidPageId;
  for (int id = 0; id < 4 && victim < 0; ++id) {
    if (!cluster->node(id)->catalog->Exists("__replica_emp")) continue;
    Result<TableInfo*> info = cluster->node(id)->catalog->Get("__replica_emp");
    ASSERT_TRUE(info.ok());
    if (info.value()->heap->flushed_page_count() == 0) continue;
    victim = id;
    pid = info.value()->heap->page_id(0);
  }
  ASSERT_GE(victim, 0);
  REOPTDB_ASSERT_OK(cluster->node(victim)->disk->CorruptPageForTesting(pid));

  ShardedExecutor exec(cluster.get());
  const char* sql = kJoinQueries[2];
  Result<QueryResult> oracle = exec.ExecuteSingleNode(sql);
  ASSERT_TRUE(oracle.ok());
  ShardQueryOptions q;
  q.scrub_between_stages = true;
  Result<ShardExecResult> r = exec.Execute(sql, q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Canon(r.value().result.rows), Canon(oracle.value().rows));
  const QueryTrace& trace = r.value().result.report.trace;
  ASSERT_FALSE(trace.scrub_reports.empty());
  EXPECT_EQ(trace.scrub_reports[0].finding, "data-loss");
  EXPECT_GE(cluster->scrub_findings(), 1u);

  Scrubber scrub(cluster.get());
  Result<ScrubSummary> s2 = scrub.ScrubAll();
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s2.value().findings, 0u);
}

// ---------------------------------------------------------------------------
// The scrub signal's Eq.2-site consumer: journaled stages whose temps no
// longer verify are dropped rather than trusted on resume.

TEST(ScrubSignal, RevalidateDropsStagesWithRottenTemps) {
  Database db;
  Schema s(std::vector<Column>{{"", "a", ValueType::kInt64, 8}});
  for (const char* name : {"t_keep", "t_rot"}) {
    ASSERT_TRUE(db.CreateTable(name, s).ok());
    for (int i = 0; i < 64; ++i)
      ASSERT_TRUE(db.Insert(name, Tuple({Value(int64_t{i})})).ok());
  }
  JournalStage js;
  js.root_sql = "SELECT a FROM t_keep";
  js.stage = 1;
  js.remainder_sql = "SELECT a FROM t_keep";
  js.membership_epoch = 7;
  for (const char* name : {"t_keep", "t_rot"}) {
    Result<TableInfo*> info = db.catalog()->Get(name);
    ASSERT_TRUE(info.ok());
    REOPTDB_ASSERT_OK(info.value()->heap->Flush());
    TempSnapshot snap;
    snap.name = name;
    snap.schema = info.value()->schema;
    snap.tuple_count = info.value()->heap->tuple_count();
    Result<uint64_t> sum = info.value()->heap->ComputeContentChecksum();
    ASSERT_TRUE(sum.ok()) << sum.status().ToString();
    snap.content_checksum = sum.value();
    snap.stats = info.value()->stats;
    for (size_t p = 0; p < info.value()->heap->flushed_page_count(); ++p)
      snap.page_ids.push_back(info.value()->heap->page_id(p));
    js.temps.push_back(std::move(snap));
  }
  REOPTDB_ASSERT_OK(db.journal()->AppendStage(js, db.faults()));
  ASSERT_EQ(db.journal()->record_count(), 1u);

  // Intact temps: nothing dropped.
  Result<int> dropped =
      RevalidateJournaledStages(db.journal(), db.catalog(), db.faults(), "");
  ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
  EXPECT_EQ(dropped.value(), 0);
  EXPECT_EQ(db.journal()->record_count(), 1u);

  // Rot one referenced temp: the whole stage must be dropped — a resume
  // never trusts a temp that integrity checking has cast doubt on.
  Result<TableInfo*> rot = db.catalog()->Get("t_rot");
  ASSERT_TRUE(rot.ok());
  ASSERT_GT(rot.value()->heap->flushed_page_count(), 0u);
  REOPTDB_ASSERT_OK(
      db.disk()->CorruptPageForTesting(rot.value()->heap->page_id(0)));
  dropped =
      RevalidateJournaledStages(db.journal(), db.catalog(), db.faults(), "");
  ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
  EXPECT_EQ(dropped.value(), 1);
  EXPECT_EQ(db.journal()->record_count(), 0u);
}

}  // namespace
}  // namespace reoptdb
