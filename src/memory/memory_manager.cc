#include "memory/memory_manager.h"

#include <algorithm>
#include <cmath>

#include "storage/page.h"

namespace reoptdb {

void CollectBlockingOrder(PlanNode* root, std::vector<PlanNode*>* out) {
  switch (root->kind) {
    case OpKind::kHashJoin:
      CollectBlockingOrder(root->children[0].get(), out);
      out->push_back(root);
      CollectBlockingOrder(root->children[1].get(), out);
      break;
    case OpKind::kHashAggregate:
    case OpKind::kSort:
    case OpKind::kMaterialize:
      CollectBlockingOrder(root->children[0].get(), out);
      out->push_back(root);
      break;
    default:
      for (auto& c : root->children) CollectBlockingOrder(c.get(), out);
      break;
  }
}

void MemoryManager::ComputeDemands(PlanNode* node) const {
  switch (node->kind) {
    case OpKind::kHashJoin: {
      double build_pages = node->children[0]->improved.pages;
      node->max_mem_pages = cost_->HashJoinMaxMem(build_pages);
      node->min_mem_pages = cost_->HashJoinMinMem(build_pages);
      break;
    }
    case OpKind::kHashAggregate: {
      double groups =
          node->improved.num_groups > 0 ? node->improved.num_groups : 1;
      double group_bytes = node->output_schema.AvgTupleBytes() + 96;
      node->max_mem_pages = cost_->AggregateMaxMem(groups, group_bytes);
      node->min_mem_pages = cost_->AggregateMinMem(groups, group_bytes);
      break;
    }
    case OpKind::kSort: {
      double pages = node->children[0]->improved.pages;
      node->max_mem_pages = cost_->SortMaxMem(pages);
      node->min_mem_pages = cost_->SortMinMem(pages);
      break;
    }
    default:
      break;
  }
}

Result<bool> MemoryManager::TryAllocate(FaultInjector* faults, PlanNode* root,
                                        const std::set<int>& frozen_ids,
                                        QueryTrace* trace, double at_ms,
                                        int plan_generation) const {
  if (faults != nullptr)
    RETURN_IF_ERROR(faults->Check(faults::kMemoryGrant));
  return Allocate(root, frozen_ids, trace, at_ms, plan_generation);
}

bool MemoryManager::Allocate(PlanNode* root, const std::set<int>& frozen_ids,
                             QueryTrace* trace, double at_ms,
                             int plan_generation) const {
  std::vector<PlanNode*> order;
  CollectBlockingOrder(root, &order);
  std::vector<PlanNode*> consumers;
  double frozen_total = 0;
  for (PlanNode* n : order) {
    if (!n->IsMemoryConsumer()) continue;
    if (frozen_ids.count(n->id)) {
      frozen_total += n->mem_budget_pages;
      continue;
    }
    ComputeDemands(n);
    consumers.push_back(n);
  }
  if (consumers.empty()) return false;

  double budget = std::max(0.0, total_pages_ - frozen_total);

  // Pass 1: everyone gets its minimum (clamped to the budget share).
  std::vector<double> grant(consumers.size());
  double granted = 0;
  for (size_t i = 0; i < consumers.size(); ++i) {
    grant[i] = consumers[i]->min_mem_pages;
    granted += grant[i];
  }
  if (granted > budget) {
    // Not even the minima fit: scale down proportionally (floor 2 pages).
    double scale = budget / granted;
    granted = 0;
    for (double& g : grant) {
      g = std::max(2.0, std::floor(g * scale));
      granted += g;
    }
    // The 2-page floor can push the sum back over the budget; shave the
    // largest grants (never below the floor) until it holds again. Only
    // when the budget cannot even cover 2 pages per consumer does the
    // floor win over the budget.
    while (granted > budget) {
      size_t largest = grant.size();
      for (size_t i = 0; i < grant.size(); ++i) {
        if (grant[i] <= 2.0) continue;
        if (largest == grant.size() || grant[i] > grant[largest]) largest = i;
      }
      if (largest == grant.size()) break;  // everyone at the floor
      double shave = std::min(grant[largest] - 2.0, granted - budget);
      grant[largest] -= shave;
      granted -= shave;
    }
  }

  // Pass 2: in execution order, upgrade an operator to its maximum if the
  // full upgrade fits; otherwise it keeps its minimum (the paper's policy:
  // the first join gets its maximum, the second only its minimum).
  for (size_t i = 0; i < consumers.size(); ++i) {
    double extra = consumers[i]->max_mem_pages - grant[i];
    if (extra <= 0) continue;
    if (extra <= budget - granted) {
      grant[i] += extra;
      granted += extra;
    }
  }

  // Pass 3: leftover goes to the last operators (the paper hands the
  // remainder to the aggregate at the top), capped at each operator's
  // maximum — pages an operator cannot use spill to earlier consumers
  // that are still below their max. Whatever no consumer can use stays
  // unassigned.
  double leftover = budget - granted;
  for (size_t i = consumers.size(); i-- > 0 && leftover > 0;) {
    double room = consumers[i]->max_mem_pages - grant[i];
    if (room <= 0) continue;
    double give = std::min(room, leftover);
    grant[i] += give;
    leftover -= give;
  }

  bool changed = false;
  for (size_t i = 0; i < consumers.size(); ++i) {
    if (consumers[i]->mem_budget_pages != grant[i]) {
      changed = true;
      if (trace != nullptr) {
        BudgetChange bc;
        bc.plan_generation = plan_generation;
        bc.node_id = consumers[i]->id;
        bc.at_ms = at_ms;
        bc.before_pages = consumers[i]->mem_budget_pages;
        bc.after_pages = grant[i];
        trace->budget_changes.push_back(bc);
      }
    }
    consumers[i]->mem_budget_pages = grant[i];
  }
  return changed;
}

}  // namespace reoptdb
