// Tests for histograms, reservoir sampling, FM sketch, Zipf.

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "catalog/column_stats.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "stats/fm_sketch.h"
#include "stats/histogram.h"
#include "stats/reservoir.h"
#include "stats/zipf.h"

namespace reoptdb {
namespace {

std::vector<double> UniformValues(int n, double lo, double hi, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.NextDouble(lo, hi);
  return v;
}

class HistogramKindTest : public ::testing::TestWithParam<HistogramKind> {};

TEST_P(HistogramKindTest, TotalAndBoundsPreserved) {
  auto values = UniformValues(10000, 0, 100, 1);
  Histogram h = Histogram::Build(GetParam(), values, 20, values.size());
  EXPECT_EQ(h.kind(), GetParam());
  EXPECT_NEAR(h.total_count(), 10000, 1);
  EXPECT_GE(h.min(), 0);
  EXPECT_LE(h.max(), 100);
  EXPECT_FALSE(h.empty());
}

TEST_P(HistogramKindTest, RangeEstimateAccurateOnUniform) {
  auto values = UniformValues(20000, 0, 100, 2);
  Histogram h = Histogram::Build(GetParam(), values, 50, values.size());
  // True count in [20, 40] is ~20% of 20000.
  double est = h.EstimateRange(20, false, 40, false);
  EXPECT_NEAR(est / 20000, 0.2, 0.05);
  // One-sided: < 50 is ~half.
  double less = h.EstimateLess(50, false);
  EXPECT_NEAR(less / 20000, 0.5, 0.05);
}

TEST_P(HistogramKindTest, ScalesSampleToPopulation) {
  auto values = UniformValues(1000, 0, 10, 3);
  Histogram h = Histogram::Build(GetParam(), values, 10, /*population=*/1e6);
  EXPECT_NEAR(h.total_count(), 1e6, 1e6 * 0.01);
}

TEST_P(HistogramKindTest, EmptyInputYieldsNone) {
  Histogram h = Histogram::Build(GetParam(), {}, 10, 0);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.EstimateEqual(5), 0);
}

INSTANTIATE_TEST_SUITE_P(Kinds, HistogramKindTest,
                         ::testing::Values(HistogramKind::kEquiWidth,
                                           HistogramKind::kEquiDepth,
                                           HistogramKind::kMaxDiff));

TEST(HistogramTest, EqualityOnDiscreteDomain) {
  // 10 distinct values, value v appearing (v+1)*100 times.
  std::vector<double> values;
  for (int v = 0; v < 10; ++v)
    for (int i = 0; i < (v + 1) * 100; ++i) values.push_back(v);
  Histogram h =
      Histogram::Build(HistogramKind::kMaxDiff, values, 10, values.size());
  // With one bucket per distinct value, equality estimates are exact.
  EXPECT_NEAR(h.EstimateEqual(9), 1000, 50);
  EXPECT_NEAR(h.EstimateEqual(0), 100, 50);
  EXPECT_EQ(h.EstimateEqual(42), 0);
}

TEST(HistogramTest, MaxDiffBeatsEquiWidthOnSkew) {
  // Heavy head: value 0 dominates; a few spread-out tail values.
  std::vector<double> values(10000, 0.0);
  for (int i = 0; i < 100; ++i) values.push_back(50 + i * 0.5);
  double truth_tail = 100;

  Histogram md =
      Histogram::Build(HistogramKind::kMaxDiff, values, 10, values.size());
  Histogram ew =
      Histogram::Build(HistogramKind::kEquiWidth, values, 10, values.size());
  double md_err =
      std::abs(md.EstimateRange(40, false, 200, false) - truth_tail);
  double ew_err =
      std::abs(ew.EstimateRange(40, false, 200, false) - truth_tail);
  EXPECT_LE(md_err, ew_err + 1);
}

TEST(HistogramTest, DistinctInRange) {
  std::vector<double> values;
  for (int v = 0; v < 100; ++v) values.push_back(v);
  Histogram h =
      Histogram::Build(HistogramKind::kEquiDepth, values, 10, values.size());
  EXPECT_NEAR(h.EstimateDistinct(), 100, 1);
  EXPECT_NEAR(h.EstimateDistinctInRange(0, 49), 50, 10);
}

TEST(HistogramJoinTest, ForeignKeyJoinNearExact) {
  // L: 10000 rows over keys 0..999 (10 each); R: keys 0..999 unique.
  std::vector<double> l, r;
  for (int k = 0; k < 1000; ++k) {
    r.push_back(k);
    for (int i = 0; i < 10; ++i) l.push_back(k);
  }
  Histogram hl = Histogram::Build(HistogramKind::kEquiDepth, l, 40, l.size());
  Histogram hr = Histogram::Build(HistogramKind::kEquiDepth, r, 40, r.size());
  double est = Histogram::EstimateEquiJoinCard(hl, hr);
  EXPECT_NEAR(est, 10000, 2500);  // true join size = 10000
}

TEST(HistogramJoinTest, DisjointDomainsNearZero) {
  std::vector<double> l, r;
  for (int k = 0; k < 1000; ++k) {
    l.push_back(k);
    r.push_back(k + 5000);  // no overlap
  }
  Histogram hl = Histogram::Build(HistogramKind::kEquiWidth, l, 20, l.size());
  Histogram hr = Histogram::Build(HistogramKind::kEquiWidth, r, 20, r.size());
  EXPECT_DOUBLE_EQ(Histogram::EstimateEquiJoinCard(hl, hr), 0);
}

TEST(HistogramJoinTest, HalfOverlapScales) {
  // R covers only the upper half of L's domain: the classic 1/max(V)
  // formula predicts a full-size join; overlap estimation halves it.
  std::vector<double> l, r;
  for (int k = 0; k < 2000; ++k) l.push_back(k);
  for (int k = 1000; k < 2000; ++k) r.push_back(k);
  Histogram hl = Histogram::Build(HistogramKind::kEquiDepth, l, 50, l.size());
  Histogram hr = Histogram::Build(HistogramKind::kEquiDepth, r, 50, r.size());
  double est = Histogram::EstimateEquiJoinCard(hl, hr);
  EXPECT_NEAR(est, 1000, 300);
}

TEST(HistogramJoinTest, EmptyHistogramYieldsZero) {
  Histogram h = Histogram::Build(HistogramKind::kMaxDiff, {1, 2, 3}, 3, 3);
  EXPECT_DOUBLE_EQ(Histogram::EstimateEquiJoinCard(h, Histogram()), 0);
}

TEST(ReservoirTest, KeepsAllWhenUnderCapacity) {
  ReservoirSampler<int> r(100, 1);
  for (int i = 0; i < 50; ++i) r.Add(i);
  EXPECT_EQ(r.sample().size(), 50u);
  EXPECT_EQ(r.seen(), 50u);
}

TEST(ReservoirTest, CapsAtCapacity) {
  ReservoirSampler<int> r(100, 2);
  for (int i = 0; i < 100000; ++i) r.Add(i);
  EXPECT_EQ(r.sample().size(), 100u);
  EXPECT_EQ(r.seen(), 100000u);
}

TEST(ReservoirTest, ApproximatelyUniform) {
  // Each element should be kept with probability k/n; check the mean of
  // kept values is near the stream mean.
  ReservoirSampler<double> r(500, 3);
  const int n = 50000;
  for (int i = 0; i < n; ++i) r.Add(i);
  double sum = 0;
  for (double v : r.sample()) sum += v;
  double mean = sum / r.sample().size();
  EXPECT_NEAR(mean, n / 2.0, n * 0.06);
}

TEST(ReservoirTest, DeterministicForSeed) {
  ReservoirSampler<int> a(10, 7), b(10, 7);
  for (int i = 0; i < 1000; ++i) {
    a.Add(i);
    b.Add(i);
  }
  EXPECT_EQ(a.sample(), b.sample());
}

class FmSketchAccuracyTest : public ::testing::TestWithParam<int> {};

TEST_P(FmSketchAccuracyTest, EstimatesWithinFactorTwo) {
  const int distinct = GetParam();
  FmSketch sketch;
  Rng rng(42);
  for (int i = 0; i < distinct; ++i) {
    uint64_t h = SplitMix64(static_cast<uint64_t>(i) * 2654435761ULL + 12345);
    // Duplicates must not change the estimate.
    sketch.AddHash(h);
    sketch.AddHash(h);
  }
  double est = sketch.Estimate();
  EXPECT_GT(est, distinct / 2.2) << "distinct=" << distinct;
  EXPECT_LT(est, distinct * 2.2) << "distinct=" << distinct;
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, FmSketchAccuracyTest,
                         ::testing::Values(1000, 10000, 100000));

TEST(FmSketchTest, MergeIsUnion) {
  FmSketch a, b;
  for (int i = 0; i < 5000; ++i)
    a.AddHash(SplitMix64(static_cast<uint64_t>(i)));
  for (int i = 5000; i < 10000; ++i)
    b.AddHash(SplitMix64(static_cast<uint64_t>(i)));
  double ea = a.Estimate();
  a.Merge(b);
  EXPECT_GT(a.Estimate(), ea * 1.3);
}

TEST(FmSketchTest, ResetClears) {
  FmSketch s;
  for (int i = 0; i < 1000; ++i) s.AddHash(SplitMix64(i));
  s.Reset();
  EXPECT_LT(s.Estimate(), 200);  // baseline bias only
}

TEST(ZipfTest, ZeroIsUniform) {
  ZipfDistribution z(100, 0.0);
  Rng rng(1);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) counts[z.Sample(&rng)]++;
  // Expect every value hit, roughly evenly.
  EXPECT_EQ(counts.size(), 100u);
  for (auto& [v, c] : counts) EXPECT_NEAR(c, 1000, 250);
}

TEST(ZipfTest, SkewConcentratesMass) {
  ZipfDistribution z(1000, 1.0);
  Rng rng(2);
  int top10 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (z.Sample(&rng) < 10) ++top10;
  // With z=1 the top-10 ranks carry a large share (~39% for n=1000).
  EXPECT_GT(top10, n / 4);
}

TEST(ZipfTest, HigherZMoreSkew) {
  Rng r1(3), r2(3);
  ZipfDistribution z3(1000, 0.3), z6(1000, 0.6);
  int top_z3 = 0, top_z6 = 0;
  for (int i = 0; i < 50000; ++i) {
    if (z3.Sample(&r1) < 50) ++top_z3;
    if (z6.Sample(&r2) < 50) ++top_z6;
  }
  EXPECT_GT(top_z6, top_z3);
}

TEST(ZipfTest, ScrambleDecouplesRankFromValue) {
  ZipfDistribution z(1000, 0.8, /*scramble=*/true, 99);
  Rng rng(4);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) counts[z.Sample(&rng)]++;
  // The most frequent value should (very likely) not be value 0.
  uint64_t best = 0;
  int best_count = 0;
  for (auto& [v, c] : counts) {
    if (c > best_count) {
      best_count = c;
      best = v;
    }
  }
  EXPECT_NE(best, 0u);
  EXPECT_LT(best, 1000u);
}

// --- Regression: bucket-edge boundary handling ----------------------------

TEST(HistogramTest, StrictLessExcludesValueAtBucketUpperEdge) {
  // One bucket [0, 9], 100 rows, 10 distinct values. `< 9` must exclude
  // the ~count/distinct rows sitting exactly at the edge; before the fix
  // the partial-bucket fraction silently reached 1.0 there.
  std::vector<double> values;
  for (int v = 0; v < 10; ++v)
    for (int i = 0; i < 10; ++i) values.push_back(v);
  Histogram h = Histogram::Build(HistogramKind::kEquiWidth, values, 1,
                                 values.size());
  ASSERT_EQ(h.buckets().size(), 1u);
  const double edge = h.buckets()[0].hi;
  double strict = h.EstimateLess(edge, /*inclusive=*/false);
  double incl = h.EstimateLess(edge, /*inclusive=*/true);
  EXPECT_NEAR(incl, 100, 1);       // <= max covers everything
  EXPECT_NEAR(strict, 90, 5);      // < max backs out one value's share
  EXPECT_LT(strict, incl);
  // The excluded mass is exactly the equality estimate at the edge.
  EXPECT_NEAR(incl - strict, h.EstimateEqual(edge), 5);
}

TEST(HistogramKindTest2, StrictLessAtInteriorBucketEdgeStaysConsistent) {
  // Multi-bucket: at every bucket's upper edge, `< v` + `== v` ~ `<= v`.
  std::vector<double> values;
  for (int v = 0; v < 100; ++v)
    for (int i = 0; i < 20; ++i) values.push_back(v);
  for (HistogramKind kind :
       {HistogramKind::kEquiWidth, HistogramKind::kEquiDepth,
        HistogramKind::kMaxDiff}) {
    Histogram h = Histogram::Build(kind, values, 10, values.size());
    for (const HistogramBucket& b : h.buckets()) {
      double strict = h.EstimateLess(b.hi, false);
      double incl = h.EstimateLess(b.hi, true);
      EXPECT_LE(strict, incl);
      EXPECT_NEAR(strict + h.EstimateEqual(b.hi), incl, h.total_count() * 0.02)
          << HistogramKindName(kind) << " bucket hi=" << b.hi;
    }
    // Range [v, v] == equality at a bucket edge (strict bounds off).
    double edge = h.buckets().front().hi;
    EXPECT_NEAR(h.EstimateRange(edge, false, edge, false),
                h.EstimateEqual(edge), h.total_count() * 0.02);
  }
}

// --- Regression: equality-selectivity guards ------------------------------

TEST(ColumnStatsTest, FractionalDistinctClampsToOne) {
  // Scaled sampling can leave distinct in (0, 1); 1/distinct would exceed 1.
  ColumnStats cs;
  cs.distinct = 0.25;
  EXPECT_LE(cs.SelectivityEquals(5, 1000), 1.0);
  EXPECT_DOUBLE_EQ(cs.SelectivityEquals(5, 1000), 1.0);
}

TEST(ColumnStatsTest, EmptyHistogramDoesNotPoisonEstimate) {
  // A histogram built from zero rows has total_count() == 0; the estimate
  // must fall through instead of dividing by it (NaN survives std::clamp).
  ColumnStats cs;
  cs.histogram = Histogram::Build(HistogramKind::kMaxDiff, {0.0}, 1, 0);
  ASSERT_TRUE(cs.has_histogram());
  ASSERT_EQ(cs.histogram.total_count(), 0);
  cs.distinct = 10;
  double eq = cs.SelectivityEquals(5, 100);
  EXPECT_FALSE(std::isnan(eq));
  EXPECT_DOUBLE_EQ(eq, 0.1);  // 1/distinct fallback
  double range = cs.SelectivityRange(0, false, 5, false, 100);
  EXPECT_FALSE(std::isnan(range));
  EXPECT_GE(range, 0);
  EXPECT_LE(range, 1);
}

TEST(ColumnStatsTest, ZeroRowTableHasZeroSelectivity) {
  ColumnStats cs;
  cs.distinct = 10;
  EXPECT_DOUBLE_EQ(cs.SelectivityEquals(5, 0), 0);
  EXPECT_DOUBLE_EQ(cs.SelectivityRange(0, false, 5, false, 0), 0);
}

TEST(ColumnStatsTest, LowerBoundDistinctRenderedDistinctly) {
  ColumnStats cs;
  cs.distinct = 32;
  cs.distinct_is_lower_bound = true;
  EXPECT_NE(cs.ToString().find("d>=32"), std::string::npos);
  cs.distinct_is_lower_bound = false;
  EXPECT_NE(cs.ToString().find("d=32"), std::string::npos);
}

}  // namespace
}  // namespace reoptdb
