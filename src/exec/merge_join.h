// Sort-merge join over two sorted inputs.
//
// The optimizer emits this node with explicit kSort children, so each sort
// is a blocking stage of its own — in the Paradise segmentation this adds
// two more pipeline breaks (and therefore two more re-optimization points)
// compared with a hash join.

#ifndef REOPTDB_EXEC_MERGE_JOIN_H_
#define REOPTDB_EXEC_MERGE_JOIN_H_

#include <vector>

#include "exec/operator.h"

namespace reoptdb {

/// \brief Merge join of two inputs sorted on the join keys.
///
/// Duplicate key groups on the right side are buffered in memory and
/// cross-produced with the matching left rows (standard mark/rewind
/// behaviour, implemented with an explicit group buffer).
class MergeJoinOp : public Operator {
 public:
  MergeJoinOp(ExecContext* ctx, PlanNode* node) : Operator(ctx, node) {}

  Status OpenImpl() override;
  Result<bool> NextImpl(Tuple* out) override;
  Status CloseImpl() override;

 private:
  /// Lexicographic comparison of the key columns. <0, 0, >0.
  int CompareKeys(const Tuple& left, const Tuple& right) const;

  /// Pulls the next right-side group of equal keys into right_group_.
  Status AdvanceRightGroup();

  std::vector<size_t> left_keys_, right_keys_;

  Tuple left_row_;
  bool left_valid_ = false;

  // Current right-side duplicate group and the lookahead row beyond it.
  std::vector<Tuple> right_group_;
  Tuple right_ahead_;
  bool right_ahead_valid_ = false;
  bool right_exhausted_ = false;
  bool right_started_ = false;

  size_t group_pos_ = 0;   // next right row to pair with left_row_
  bool matching_ = false;  // left_row_ matches right_group_
};

}  // namespace reoptdb

#endif  // REOPTDB_EXEC_MERGE_JOIN_H_
