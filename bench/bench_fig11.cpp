// Figure 11: Isolating the effect of improvements.
//
// Runs the medium (Q3, Q10) and complex (Q5, Q7, Q8) queries in two
// restricted modes: memory re-allocation only, and plan modification only.
// Paper's result shape: medium queries benefit only from memory
// management; complex queries see 5-10% from memory and a larger 10-20%
// from plan modification.

#include "bench_common.h"

using namespace reoptdb;
using namespace reoptdb::bench;

int main() {
  BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader("Figure 11: memory-management-only vs plan-modification-only",
              cfg);
  auto db = MakeTpcdDatabase(cfg);

  std::printf("| query | class | normal ms | memory-only | plan-only | "
              "full |\n");
  std::printf("|---|---|---|---|---|---|\n");
  for (const tpcd::TpcdQuery& q : tpcd::AllQueries()) {
    if (q.cls == tpcd::QueryClass::kSimple) continue;  // as in the paper
    QueryResult normal = MustRun(db.get(), q.sql, Mode(ReoptMode::kOff));
    QueryResult mem = MustRun(db.get(), q.sql, Mode(ReoptMode::kMemoryOnly));
    QueryResult planm = MustRun(db.get(), q.sql, Mode(ReoptMode::kPlanOnly));
    QueryResult full = MustRun(db.get(), q.sql, Mode(ReoptMode::kFull));
    double base = normal.report.sim_time_ms;
    auto imp = [&](const QueryResult& r) {
      return (1.0 - r.report.sim_time_ms / base) * 100;
    };
    std::printf("| %s | %s | %.1f | %+.1f%% (%d reallocs) | %+.1f%% "
                "(%d switches) | %+.1f%% |\n",
                q.name, tpcd::QueryClassName(q.cls), base, imp(mem),
                mem.report.memory_reallocations, imp(planm),
                planm.report.plans_switched, imp(full));
  }
  std::printf(
      "\nExpected shape (paper): medium queries benefit only from memory "
      "management; complex queries gain more from plan modification.\n");
  return 0;
}
