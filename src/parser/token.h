// Token types for the SQL subset lexer.

#ifndef REOPTDB_PARSER_TOKEN_H_
#define REOPTDB_PARSER_TOKEN_H_

#include <cstdint>
#include <string>

namespace reoptdb {

enum class TokenType : uint8_t {
  kEof,
  kIdentifier,  // table/column names (case preserved)
  kKeyword,     // upper-cased SQL keyword
  kInteger,
  kFloat,
  kString,   // quoted literal, quotes stripped
  kComma,
  kLParen,
  kRParen,
  kDot,
  kStar,
  kSemicolon,
  kEq,    // =
  kNe,    // <> or !=
  kLt,    // <
  kLe,    // <=
  kGt,    // >
  kGe,    // >=
};

/// \brief One lexical token with source position for error messages.
struct Token {
  TokenType type = TokenType::kEof;
  std::string text;      // identifier/keyword/literal text
  int64_t int_value = 0;
  double float_value = 0;
  size_t pos = 0;  // byte offset in the query string

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
};

}  // namespace reoptdb

#endif  // REOPTDB_PARSER_TOKEN_H_
