// Cross-cutting integration tests: result equivalence across re-optimization
// modes, memory budgets and data skew; determinism; temp-table hygiene.

#include "gtest/gtest.h"
#include "test_util.h"
#include "tpcd/dbgen.h"
#include "tpcd/queries.h"

namespace reoptdb {
namespace {

using testing_util::Canon;
using testing_util::LoadEmpDept;

struct SweepParam {
  int query_idx;
  double zipf_z;
  double mem_pages;
};

class ModeEquivalenceSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  static Database* GetDb(double z, double mem) {
    // Cache one database per configuration (loading dominates test time).
    static std::map<std::pair<int, int>, std::unique_ptr<Database>> cache;
    auto key = std::make_pair(static_cast<int>(z * 10),
                              static_cast<int>(mem));
    auto it = cache.find(key);
    if (it != cache.end()) return it->second.get();
    DatabaseOptions opts;
    opts.buffer_pool_pages = 256;
    opts.query_mem_pages = mem;
    auto db = std::make_unique<Database>(opts);
    tpcd::TpcdOptions gen;
    gen.scale_factor = 0.002;
    gen.zipf_z = z;
    EXPECT_TRUE(tpcd::Load(db.get(), gen).ok());
    Database* raw = db.get();
    cache[key] = std::move(db);
    return raw;
  }
};

TEST_P(ModeEquivalenceSweep, AllModesAgree) {
  const SweepParam& p = GetParam();
  Database* db = GetDb(p.zipf_z, p.mem_pages);
  const tpcd::TpcdQuery q = tpcd::AllQueries()[p.query_idx];

  std::vector<std::string> reference;
  for (ReoptMode mode : {ReoptMode::kOff, ReoptMode::kMemoryOnly,
                         ReoptMode::kPlanOnly, ReoptMode::kFull}) {
    ReoptOptions o;
    o.mode = mode;
    Result<QueryResult> r = db->ExecuteWith(q.sql, o);
    ASSERT_TRUE(r.ok()) << q.name << "/" << ReoptModeName(mode) << ": "
                        << r.status().ToString();
    if (reference.empty()) {
      reference = Canon(r.value().rows);
    } else {
      ASSERT_EQ(Canon(r.value().rows), reference)
          << q.name << " diverges under " << ReoptModeName(mode)
          << " (z=" << p.zipf_z << ", mem=" << p.mem_pages << ")";
    }
  }
}

std::vector<SweepParam> SweepParams() {
  std::vector<SweepParam> out;
  for (int q = 0; q < 7; ++q) {
    out.push_back({q, 0.0, 64});
    out.push_back({q, 0.6, 64});
    out.push_back({q, 0.0, 16});  // tight memory: exercise spills
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModeEquivalenceSweep, ::testing::ValuesIn(SweepParams()),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      const SweepParam& p = info.param;
      return std::string(tpcd::AllQueries()[p.query_idx].name) + "_z" +
             std::to_string(static_cast<int>(p.zipf_z * 10)) + "_m" +
             std::to_string(static_cast<int>(p.mem_pages));
    });

TEST(IntegrationTest, SimulatedTimeIsDeterministic) {
  auto run = [](uint64_t seed) {
    DatabaseOptions opts;
    opts.query_mem_pages = 32;
    Database db(opts);
    tpcd::TpcdOptions gen;
    gen.scale_factor = 0.002;
    gen.seed = seed;
    EXPECT_TRUE(tpcd::Load(&db, gen).ok());
    Result<QueryResult> r = db.Execute(tpcd::Q5Sql());
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value().report.sim_time_ms;
  };
  EXPECT_DOUBLE_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(IntegrationTest, NoTempTablesOrPageLeaksAcrossQueries) {
  DatabaseOptions opts;
  opts.query_mem_pages = 32;
  Database db(opts);
  LoadEmpDept(&db, 2000, 20);
  size_t live_before = db.disk()->live_pages();
  for (int i = 0; i < 5; ++i) {
    Result<QueryResult> r = db.Execute(
        "SELECT emp.dept_id, SUM(salary) FROM emp, dept "
        "WHERE emp.dept_id = dept.dept_id GROUP BY emp.dept_id");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  // Temp/spill pages must all be reclaimed.
  EXPECT_EQ(db.disk()->live_pages(), live_before);
}

TEST(IntegrationTest, ExplainShowsAnnotations) {
  Database db;
  LoadEmpDept(&db);
  Result<std::string> plan = db.Explain(
      "SELECT emp.dept_id, SUM(salary) FROM emp, dept "
      "WHERE emp.dept_id = dept.dept_id GROUP BY emp.dept_id");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("HashAggregate"), std::string::npos);
  EXPECT_NE(plan->find("rows="), std::string::npos);
  EXPECT_NE(plan->find("cost="), std::string::npos);
}

TEST(IntegrationTest, CollectionOverheadRespectsMu) {
  // With reopt decisions effectively disabled (theta2 huge) the only extra
  // work vs kOff is statistics collection, bounded by mu.
  DatabaseOptions opts;
  opts.query_mem_pages = 128;
  Database db(opts);
  tpcd::TpcdOptions gen;
  gen.scale_factor = 0.002;
  ASSERT_TRUE(tpcd::Load(&db, gen).ok());

  ReoptOptions off;
  off.mode = ReoptMode::kOff;
  ReoptOptions collectors_only;
  collectors_only.mode = ReoptMode::kFull;
  collectors_only.theta2 = 1e12;
  collectors_only.mu = 0.05;

  for (const auto& q : tpcd::AllQueries()) {
    Result<QueryResult> base = db.ExecuteWith(q.sql, off);
    Result<QueryResult> with = db.ExecuteWith(q.sql, collectors_only);
    ASSERT_TRUE(base.ok()) << q.name;
    ASSERT_TRUE(with.ok()) << q.name;
    // Memory re-allocation can only help; collection overhead is bounded.
    double slowdown = with.value().report.sim_time_ms /
                      base.value().report.sim_time_ms;
    EXPECT_LT(slowdown, 1.12) << q.name;
  }
}

}  // namespace
}  // namespace reoptdb
