// Batched-vs-row execution equivalence.
//
// The batched (vectorized) engine must be a pure mechanical transformation
// of the row engine: identical result rows, identical charged work (and
// therefore identical simulated time), identical ObservedStats published by
// collectors, and identical re-optimization decision records — at every
// batch size, on every tier-1 TPC-D query. A batch size that changed any
// of these would silently change which plans the controller switches to.

#include <cmath>

#include "exec/scheduler.h"
#include "gtest/gtest.h"
#include "memory/memory_manager.h"
#include "optimizer/optimizer.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "reopt/scia.h"
#include "test_util.h"
#include "tpcd/dbgen.h"
#include "tpcd/queries.h"

namespace reoptdb {
namespace {

using testing_util::Canon;
using testing_util::LoadEmpDept;

class BatchEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatabaseOptions opts;
    opts.buffer_pool_pages = 512;
    opts.query_mem_pages = 64;
    db_ = new Database(opts);
    tpcd::TpcdOptions gen;
    gen.scale_factor = 0.002;
    Status st = tpcd::Load(db_, gen);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* BatchEquivalenceTest::db_ = nullptr;

void ExpectSameDecisions(const QueryTrace& a, const QueryTrace& b,
                         const char* label) {
  ASSERT_EQ(a.eq2_checks.size(), b.eq2_checks.size()) << label;
  for (size_t i = 0; i < a.eq2_checks.size(); ++i) {
    EXPECT_EQ(a.eq2_checks[i].stage_node_id, b.eq2_checks[i].stage_node_id)
        << label;
    EXPECT_DOUBLE_EQ(a.eq2_checks[i].improved, b.eq2_checks[i].improved)
        << label;
    EXPECT_DOUBLE_EQ(a.eq2_checks[i].est, b.eq2_checks[i].est) << label;
    EXPECT_EQ(a.eq2_checks[i].fired, b.eq2_checks[i].fired) << label;
  }
  ASSERT_EQ(a.eq1_checks.size(), b.eq1_checks.size()) << label;
  for (size_t i = 0; i < a.eq1_checks.size(); ++i) {
    EXPECT_EQ(a.eq1_checks[i].stage_node_id, b.eq1_checks[i].stage_node_id)
        << label;
    EXPECT_DOUBLE_EQ(a.eq1_checks[i].rem_cur, b.eq1_checks[i].rem_cur)
        << label;
    EXPECT_EQ(a.eq1_checks[i].fired, b.eq1_checks[i].fired) << label;
  }
  ASSERT_EQ(a.switches.size(), b.switches.size()) << label;
  for (size_t i = 0; i < a.switches.size(); ++i) {
    EXPECT_EQ(a.switches[i].stage_node_id, b.switches[i].stage_node_id)
        << label;
    EXPECT_EQ(a.switches[i].accepted, b.switches[i].accepted) << label;
    EXPECT_EQ(a.switches[i].mat_rows, b.switches[i].mat_rows) << label;
    EXPECT_DOUBLE_EQ(a.switches[i].rem_cur, b.switches[i].rem_cur) << label;
    EXPECT_DOUBLE_EQ(a.switches[i].rem_new, b.switches[i].rem_new) << label;
  }
  ASSERT_EQ(a.memory_reallocations.size(), b.memory_reallocations.size())
      << label;
  for (size_t i = 0; i < a.memory_reallocations.size(); ++i) {
    EXPECT_EQ(a.memory_reallocations[i].trigger_node_id,
              b.memory_reallocations[i].trigger_node_id)
        << label;
    EXPECT_EQ(a.memory_reallocations[i].kept, b.memory_reallocations[i].kept)
        << label;
  }
}

class BatchEquivalenceQueryTest
    : public BatchEquivalenceTest,
      public ::testing::WithParamInterface<int> {};

TEST_P(BatchEquivalenceQueryTest, BitIdenticalAcrossBatchSizes) {
  tpcd::TpcdQuery q = tpcd::AllQueries()[GetParam()];

  ReoptOptions row;
  row.mode = ReoptMode::kFull;
  row.batch_size = 1;
  Result<QueryResult> ref = db_->ExecuteWith(q.sql, row);
  ASSERT_TRUE(ref.ok()) << q.name << ": " << ref.status().ToString();
  std::vector<std::string> ref_rows = Canon(ref.value().rows);

  for (size_t batch : {size_t{7}, size_t{1024}}) {
    ReoptOptions opts;
    opts.mode = ReoptMode::kFull;
    opts.batch_size = batch;
    Result<QueryResult> got = db_->ExecuteWith(q.sql, opts);
    ASSERT_TRUE(got.ok()) << q.name << ": " << got.status().ToString();
    std::string label = std::string(q.name) + " batch=" +
                        std::to_string(batch);

    EXPECT_EQ(ref_rows, Canon(got.value().rows)) << label;

    const ExecutionReport& a = ref.value().report;
    const ExecutionReport& b = got.value().report;
    EXPECT_DOUBLE_EQ(a.sim_time_ms, b.sim_time_ms) << label;
    EXPECT_EQ(a.page_ios, b.page_ios) << label;
    EXPECT_EQ(a.output_rows, b.output_rows) << label;
    EXPECT_EQ(a.plans_switched, b.plans_switched) << label;
    EXPECT_EQ(a.memory_reallocations, b.memory_reallocations) << label;
    EXPECT_EQ(a.reopts_considered, b.reopts_considered) << label;

    // Observed intermediate edges feed the improved estimates; they must
    // match exactly or reopt decisions could diverge on other data.
    ASSERT_EQ(a.edges.size(), b.edges.size()) << label;
    for (size_t i = 0; i < a.edges.size(); ++i) {
      EXPECT_EQ(a.edges[i].node_id, b.edges[i].node_id) << label;
      EXPECT_DOUBLE_EQ(a.edges[i].estimated_rows, b.edges[i].estimated_rows)
          << label;
      EXPECT_DOUBLE_EQ(a.edges[i].observed_rows, b.edges[i].observed_rows)
          << label;
    }

    ExpectSameDecisions(a.trace, b.trace, label.c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(AllSeven, BatchEquivalenceQueryTest,
                         ::testing::Range(0, 7),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::string(
                               tpcd::AllQueries()[info.param].name);
                         });

// ---------------------------------------------------------------------------
// Scheduler-level: the full ObservedStats a collector publishes (min/max,
// histogram buckets, distinct estimates) must be identical across batch
// sizes, not just the cardinality the edge comparisons surface.

class BatchStatsTest : public ::testing::Test {
 protected:
  BatchStatsTest() { LoadEmpDept(&db_, 500, 10); }

  std::unique_ptr<PlanNode> PlanFor(const std::string& sql) {
    SelectStmtAst ast = ParseSelect(sql).value();
    spec_ = Bind(ast, *db_.catalog()).value();
    Optimizer opt(db_.catalog(), &db_.cost_model());
    std::unique_ptr<PlanNode> plan = opt.Plan(spec_).value().plan;
    SciaOptions opts;
    (void)InsertStatsCollectors(&plan, spec_, *db_.catalog(),
                                db_.cost_model(), opts);
    MemoryManager mm(&db_.cost_model(), 128);
    (void)mm.TryAllocate(nullptr, plan.get(), {});
    return plan;
  }

  /// Runs the plan to completion at `batch_size`; returns observed stats of
  /// every collector node in post-order, plus the delivered rows.
  void Run(PlanNode* plan, size_t batch_size,
           std::vector<ObservedStats>* observed, std::vector<Tuple>* rows,
           double* sim_ms) {
    ExecContext ctx(db_.buffer_pool(), db_.catalog(), &db_.cost_model());
    ctx.SetBatchSize(batch_size);
    auto exec = PipelineExecutor::Create(&ctx, plan).value();
    while (exec->HasMoreStages()) {
      auto stage = exec->RunNextStage(rows).value();
      if (stage.finished) break;
    }
    *sim_ms = ctx.SimElapsedMs();
    REOPTDB_ASSERT_OK(exec->Close());
    plan->PostOrder([&](PlanNode* n) {
      if (n->kind == OpKind::kStatsCollector) observed->push_back(n->observed);
    });
  }

  Database db_;
  QuerySpec spec_;
};

void ExpectSameObserved(const ObservedStats& a, const ObservedStats& b,
                        const std::string& label) {
  EXPECT_EQ(a.valid, b.valid) << label;
  EXPECT_DOUBLE_EQ(a.cardinality, b.cardinality) << label;
  EXPECT_DOUBLE_EQ(a.avg_tuple_bytes, b.avg_tuple_bytes) << label;
  ASSERT_EQ(a.columns.size(), b.columns.size()) << label;
  for (const auto& [col, ca] : a.columns) {
    auto it = b.columns.find(col);
    ASSERT_NE(it, b.columns.end()) << label << " " << col;
    const ColumnStats& cb = it->second;
    EXPECT_EQ(ca.has_bounds, cb.has_bounds) << label << " " << col;
    EXPECT_DOUBLE_EQ(ca.min, cb.min) << label << " " << col;
    EXPECT_DOUBLE_EQ(ca.max, cb.max) << label << " " << col;
    EXPECT_DOUBLE_EQ(ca.distinct, cb.distinct) << label << " " << col;
    ASSERT_EQ(ca.histogram.buckets().size(), cb.histogram.buckets().size())
        << label << " " << col;
    for (size_t i = 0; i < ca.histogram.buckets().size(); ++i) {
      const HistogramBucket& ba = ca.histogram.buckets()[i];
      const HistogramBucket& bb = cb.histogram.buckets()[i];
      EXPECT_DOUBLE_EQ(ba.lo, bb.lo) << label << " " << col;
      EXPECT_DOUBLE_EQ(ba.hi, bb.hi) << label << " " << col;
      EXPECT_DOUBLE_EQ(ba.count, bb.count) << label << " " << col;
      EXPECT_DOUBLE_EQ(ba.distinct, bb.distinct) << label << " " << col;
    }
  }
}

TEST_F(BatchStatsTest, CollectorStatsIdenticalAcrossBatchSizes) {
  const std::string sql =
      "SELECT emp.dept_id, SUM(salary) FROM emp, dept "
      "WHERE emp.dept_id = dept.dept_id GROUP BY emp.dept_id";

  std::vector<ObservedStats> obs_row;
  std::vector<Tuple> rows_row;
  double ms_row = 0;
  {
    auto plan = PlanFor(sql);
    Run(plan.get(), 1, &obs_row, &rows_row, &ms_row);
  }
  ASSERT_FALSE(obs_row.empty());

  for (size_t batch : {size_t{7}, size_t{1024}}) {
    std::vector<ObservedStats> obs;
    std::vector<Tuple> rows;
    double ms = 0;
    auto plan = PlanFor(sql);  // fresh plan: observed stats are per-run
    Run(plan.get(), batch, &obs, &rows, &ms);
    std::string label = "batch=" + std::to_string(batch);

    EXPECT_EQ(Canon(rows_row), Canon(rows)) << label;
    EXPECT_DOUBLE_EQ(ms_row, ms) << label;
    ASSERT_EQ(obs_row.size(), obs.size()) << label;
    for (size_t i = 0; i < obs.size(); ++i)
      ExpectSameObserved(obs_row[i], obs[i],
                         label + " collector#" + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------
// MaterializeInto must observe cancellation/deadline on every pull: a plan
// switch redirecting a large intermediate result respects a deadline that
// expires before (or during) the redirect.

TEST_F(BatchStatsTest, MaterializeIntoRespectsDeadline) {
  for (size_t batch : {size_t{1}, size_t{1024}}) {
    auto plan = PlanFor(
        "SELECT emp_id FROM emp, dept WHERE emp.dept_id = dept.dept_id");
    ExecContext ctx(db_.buffer_pool(), db_.catalog(), &db_.cost_model());
    ctx.SetBatchSize(batch);
    auto exec = PipelineExecutor::Create(&ctx, plan.get()).value();

    std::vector<Tuple> rows;
    auto stage = exec->RunNextStage(&rows).value();
    ASSERT_NE(stage.stage_node, nullptr);

    // The build stage has charged work, so the clock is already past this.
    ctx.SetDeadlineMs(ctx.SimElapsedMs() * 0.5);
    HeapFile temp(db_.buffer_pool());
    Result<uint64_t> r = exec->MaterializeInto(stage.stage_node, &temp);
    ASSERT_FALSE(r.ok()) << "batch=" << batch;
    EXPECT_EQ(r.status().code(), StatusCode::kCancelled)
        << "batch=" << batch;
    // Nothing was appended: the check fires before the first pull.
    EXPECT_EQ(temp.tuple_count(), 0u) << "batch=" << batch;
    (void)exec->Close();
  }
}

TEST_F(BatchStatsTest, MaterializeIntoRespectsCancelToken) {
  auto plan = PlanFor(
      "SELECT emp_id FROM emp, dept WHERE emp.dept_id = dept.dept_id");
  ExecContext ctx(db_.buffer_pool(), db_.catalog(), &db_.cost_model());
  auto exec = PipelineExecutor::Create(&ctx, plan.get()).value();
  std::vector<Tuple> rows;
  auto stage = exec->RunNextStage(&rows).value();
  ASSERT_NE(stage.stage_node, nullptr);

  ctx.cancel_token()->Cancel();
  HeapFile temp(db_.buffer_pool());
  Result<uint64_t> r = exec->MaterializeInto(stage.stage_node, &temp);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  (void)exec->Close();
}

// The ReoptOptions::deadline_ms end-to-end path still cancels under batched
// execution (the per-batch check is the only check on large scans).
TEST_F(BatchEquivalenceTest, DeadlineCancelsBatchedQuery) {
  ReoptOptions opts;
  opts.mode = ReoptMode::kFull;
  opts.batch_size = 1024;
  opts.deadline_ms = 0.001;  // expires almost immediately
  Result<QueryResult> r =
      db_->ExecuteWith(tpcd::AllQueries()[0].sql, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace reoptdb
