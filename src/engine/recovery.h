// Restart-resume: crash recovery driven by the query journal.
//
// A crashed query (Status kCrashed from fault injection) leaves its durable
// state behind: flushed temp-table pages on the simulated disk and the
// journal records written at each committed re-optimization stage. The
// RecoveryManager models the restart path: it loads the journal, validates
// every journaled temp table against its stored content checksum and row
// count, rebinds the survivors in the catalog (Detach + AdoptPages), and
// executes the journaled remainder query instead of starting over —
// producing results bit-identical to an uncrashed run while skipping the
// work the crashed run already paid for.
//
// The invariant is correctness over savings: a corrupt journal record, a
// checksum or row-count mismatch, missing pages — anything that casts doubt
// on the durable state — triggers a clean from-scratch re-run (with a
// RecoveryFallback trace record) after garbage-collecting the untrusted
// state. Recovery may sacrifice saved work; it never returns a wrong
// answer.

#ifndef REOPTDB_ENGINE_RECOVERY_H_
#define REOPTDB_ENGINE_RECOVERY_H_

#include <string>

#include "common/status.h"
#include "engine/database.h"
#include "reopt/controller.h"

namespace reoptdb {

/// \brief Drives restart-resume for one Database instance.
class RecoveryManager {
 public:
  explicit RecoveryManager(Database* db) : db_(db) {}

  /// Clears the injector's crash latch (the "restart"), then resumes `sql`
  /// from its latest journaled stage or re-runs it from scratch. The
  /// returned report's trace carries a RecoveryEvent (resumed or not) and,
  /// when durable state was rejected, a RecoveryFallback. A crash injected
  /// *during* recovery (recovery.load, or any point hit by the resumed
  /// execution) surfaces as kCrashed again; calling Recover once more
  /// continues from whatever the journal then holds.
  Result<QueryResult> Recover(const std::string& sql,
                              const ReoptOptions& reopt);

 private:
  Database* db_;
};

}  // namespace reoptdb

#endif  // REOPTDB_ENGINE_RECOVERY_H_
