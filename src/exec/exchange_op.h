// Exchange machinery for sharded execution (DESIGN.md §15).
//
// Data moves between simulated nodes as buffered tuple batches over an
// ExchangeChannel: every transfer is charged through the cost model's
// network term (per byte + per message) to both endpoints' simulated
// clocks, and every send/receive passes the net.send / net.recv fault
// points with the same bounded retry/backoff policy the DiskManager applies
// to transient device errors. A fragment plan consumes delivered buffers
// through ExchangeSourceOp, a leaf operator whose kExchange plan node names
// a buffer bound on the fragment's ExecContext.
//
// The channel itself is deliberately dumb: broadcast / hash-repartition /
// gather are routing decisions made by the shard executor (src/shard),
// which calls Send once per (source, destination) buffer and Receive once
// per destination. Keeping policy out of the channel is what lets the
// executor re-route mid-query (distribution switches, straggler
// re-weighting, node loss) without new exchange code.

#ifndef REOPTDB_EXEC_EXCHANGE_OP_H_
#define REOPTDB_EXEC_EXCHANGE_OP_H_

#include <map>
#include <vector>

#include "exec/operator.h"
#include "optimizer/cost_model.h"

namespace reoptdb {

/// Cumulative per-endpoint network counters (one per node, kept by the
/// ShardCluster across queries).
struct NetChannelStats {
  uint64_t msgs_sent = 0;
  uint64_t msgs_recv = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_recv = 0;
  /// Transient net.send/net.recv errors absorbed by retry.
  uint64_t retries = 0;
  /// Simulated milliseconds spent in retry backoff.
  double retry_penalty_ms = 0;
  /// Buffers rejected by the membership-epoch fence (stale senders).
  uint64_t fenced_buffers = 0;
};

/// \brief Per-query send/recv queues between simulated nodes.
///
/// Endpoints register an ExecContext (whose simulated clock is charged) and
/// a NetChannelStats (cumulative counters). Send enqueues a buffer into the
/// destination's inbox; Receive drains an inbox in deterministic
/// (sender id, FIFO) order. A transfer that still fails after the bounded
/// retries returns the error to the caller, which escalates it to a node
/// loss — the exchange layer never silently drops data.
class ExchangeChannel {
 public:
  /// Retry policy for transient net errors, mirroring the DiskManager's
  /// policy for transient I/O errors (storage/disk_manager.h).
  static constexpr int kMaxNetRetries = 3;
  static constexpr double kRetryBackoffBaseMs = 1.0;
  /// Tuples per simulated message (drives the per-message cost term).
  static constexpr uint64_t kTuplesPerMessage = 256;

  ExchangeChannel(const CostModel* cost, FaultInjector* faults)
      : cost_(cost), faults_(faults) {}

  /// Arms the membership-epoch fence: every buffer is stamped with its
  /// sender's epoch, and a stamp that disagrees with `epoch` is dropped at
  /// the channel (recorded, never delivered). 0 (the default) disables
  /// fencing — single-node and pre-replication callers are unaffected.
  void SetEpoch(uint64_t epoch) { current_epoch_ = epoch; }

  /// Registers endpoint `id`. `ctx` and `stats` must outlive the channel.
  /// `sender_epoch` is the membership epoch stamped on this endpoint's
  /// sends; 0 means "current" (stamps whatever SetEpoch installed). A
  /// zombie node re-registered with the epoch it last saw before dying
  /// gets every send fenced.
  void AddEndpoint(int id, ExecContext* ctx, NetChannelStats* stats,
                   uint64_t sender_epoch = 0);

  /// Enqueues `rows` into `to`'s inbox, charging the sender for the
  /// transfer. Empty buffers are free (no message). On a transient
  /// net.send fault the send is retried with doubling backoff (charged to
  /// the sender); exhausted retries return the error with nothing
  /// enqueued. A send stamped with a stale epoch returns OK — the zombie
  /// believes it succeeded — but the buffer is dropped and logged
  /// (TakeFences), exactly what a fencing token does in a real cluster.
  Status Send(int from, int to, std::vector<Tuple> rows);

  /// One fenced (dropped) stale send.
  struct Fence {
    int from = -1;
    int to = -1;
    uint64_t rows = 0;
    uint64_t stale_epoch = 0;
  };

  /// Drains the log of fenced sends accumulated since the last call.
  std::vector<Fence> TakeFences() {
    std::vector<Fence> out = std::move(fences_);
    fences_.clear();
    return out;
  }

  /// Drains `to`'s inbox (sender id order, FIFO within a sender) into
  /// `*out`, charging the receiver. net.recv faults follow the same
  /// retry/backoff policy as sends.
  Status Receive(int to, std::vector<Tuple>* out);

  /// Rows currently queued for `to` (all senders).
  uint64_t PendingRows(int to) const;

 private:
  struct Endpoint {
    ExecContext* ctx = nullptr;
    NetChannelStats* stats = nullptr;
    /// Epoch stamped on this endpoint's sends (0 = current).
    uint64_t sender_epoch = 0;
    /// sender id -> FIFO of buffers.
    std::map<int, std::vector<std::vector<Tuple>>> inbox;
  };

  /// Checks `point` with retry/backoff, charging `ep`'s clock and
  /// counters for absorbed retries.
  Status CheckWithRetry(const char* point, Endpoint* ep);

  static uint64_t BufferBytes(const std::vector<Tuple>& rows);
  static uint64_t Messages(uint64_t rows) {
    return rows == 0 ? 0 : (rows + kTuplesPerMessage - 1) / kTuplesPerMessage;
  }

  const CostModel* cost_;
  FaultInjector* faults_;
  std::map<int, Endpoint> endpoints_;
  uint64_t current_epoch_ = 0;  ///< 0 = fencing disabled
  std::vector<Fence> fences_;
};

/// \brief Leaf operator streaming a delivered exchange buffer.
///
/// The plan node's `table` field names a buffer bound on the ExecContext
/// (BindExchangeSource) by the shard executor before the fragment runs.
/// Transfer costs were already charged by the ExchangeChannel at delivery
/// time; this operator only charges the usual per-tuple CPU pass-through.
class ExchangeSourceOp : public Operator {
 public:
  ExchangeSourceOp(ExecContext* ctx, PlanNode* node) : Operator(ctx, node) {}

  Status OpenImpl() override;
  Result<bool> NextImpl(Tuple* out) override;
  Result<bool> NextBatchImpl(TupleBatch* out) override;
  Status CloseImpl() override;

 private:
  const std::vector<Tuple>* rows_ = nullptr;
  size_t pos_ = 0;
};

}  // namespace reoptdb

#endif  // REOPTDB_EXEC_EXCHANGE_OP_H_
