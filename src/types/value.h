// Scalar value type used throughout the engine.

#ifndef REOPTDB_TYPES_VALUE_H_
#define REOPTDB_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace reoptdb {

/// Supported column types. Dates are stored as kInt64 day numbers.
enum class ValueType : uint8_t { kInt64 = 0, kDouble = 1, kString = 2 };

/// Human-readable name ("INT", "DOUBLE", "STRING").
const char* ValueTypeName(ValueType t);

/// \brief A dynamically typed scalar.
///
/// Values are totally ordered within a type; comparing values of different
/// numeric types coerces to double. Comparing a string with a number is a
/// programming error (checked by the binder before execution).
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}
  explicit Value(const char* v) : v_(std::string(v)) {}

  ValueType type() const { return static_cast<ValueType>(v_.index()); }
  bool is_int() const { return type() == ValueType::kInt64; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }

  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Numeric view: int64 widened to double. Requires a numeric type.
  double AsNumeric() const {
    return is_int() ? static_cast<double>(AsInt()) : AsDouble();
  }

  /// Three-way comparison. Numeric types compare by value; strings
  /// lexicographically. Mixed string/number comparison asserts.
  int Compare(const Value& other) const;

  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator!=(const Value& o) const { return Compare(o) != 0; }
  bool operator<(const Value& o) const { return Compare(o) < 0; }
  bool operator<=(const Value& o) const { return Compare(o) <= 0; }
  bool operator>(const Value& o) const { return Compare(o) > 0; }
  bool operator>=(const Value& o) const { return Compare(o) >= 0; }

  /// Stable 64-bit hash (used by hash join / aggregation / sketches).
  uint64_t Hash() const;

  /// Serialized size in bytes (1-byte tag + payload).
  size_t SerializedSize() const;

  /// Appends the serialized form to `out`.
  void SerializeTo(std::string* out) const;

  /// Parses one value from `data + *offset`, advancing `*offset`.
  static Result<Value> Deserialize(const char* data, size_t size, size_t* offset);

  std::string ToString() const;

 private:
  std::variant<int64_t, double, std::string> v_;
};

}  // namespace reoptdb

#endif  // REOPTDB_TYPES_VALUE_H_
