// Fixed-capacity row container for block-at-a-time (vectorized) execution.

#ifndef REOPTDB_EXEC_TUPLE_BATCH_H_
#define REOPTDB_EXEC_TUPLE_BATCH_H_

#include <cstddef>
#include <vector>

#include "types/tuple.h"

namespace reoptdb {

/// \brief A batch of up to `capacity` tuples, passed between operators by
/// NextBatch().
///
/// The slot array is allocated once and reused across refills: Clear()
/// resets the logical size but keeps the Tuple objects (and whatever value
/// storage they have accumulated) alive, so steady-state refills avoid
/// per-row allocation. Slot addresses are stable for the lifetime of the
/// batch — operators may hold a pointer to a slot across calls as long as
/// the batch is not refilled underneath it.
class TupleBatch {
 public:
  /// Default row capacity (ReoptOptions::batch_size follows this).
  static constexpr size_t kDefaultCapacity = 1024;

  explicit TupleBatch(size_t capacity = kDefaultCapacity)
      : rows_(capacity == 0 ? 1 : capacity) {}

  size_t capacity() const { return rows_.size(); }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == rows_.size(); }

  /// Logically empties the batch; slot storage is retained for reuse.
  void Clear() { size_ = 0; }

  /// Claims the next slot for in-place filling (e.g. deserialization).
  /// The slot may hold a stale tuple from a previous refill.
  Tuple* AddSlot() { return &rows_[size_++]; }

  /// Releases the most recently claimed slot (used when a producer claims
  /// a slot and then discovers end-of-stream or a filtered-out row).
  void PopSlot() { --size_; }

  void PushBack(Tuple t) { rows_[size_++] = std::move(t); }

  Tuple& operator[](size_t i) { return rows_[i]; }
  const Tuple& operator[](size_t i) const { return rows_[i]; }

  Tuple* begin() { return rows_.data(); }
  Tuple* end() { return rows_.data() + size_; }
  const Tuple* begin() const { return rows_.data(); }
  const Tuple* end() const { return rows_.data() + size_; }

 private:
  std::vector<Tuple> rows_;  // fixed length == capacity
  size_t size_ = 0;
};

}  // namespace reoptdb

#endif  // REOPTDB_EXEC_TUPLE_BATCH_H_
