// Dynamic Re-Optimization controller (the paper's core contribution,
// Sections 2.4-2.6 and 3.1).
//
// Drives stage-by-stage execution. When statistics collectors complete, it
// refreshes the "improved estimates", re-invokes the memory manager for
// operators that have not started, and applies the re-optimization gate:
//
//   Eq. (1): do not re-invoke the optimizer unless its estimated cost is at
//            most theta1 of the improved remaining execution time;
//   Eq. (2): only consider re-optimization when
//            (T_improved - T_optimizer) / T_optimizer > theta2.
//
// When the gate fires, the remainder of the query is expressed as SQL over
// a temp table holding the in-flight operator's output, re-optimized, and
// the new plan is adopted only if its estimated total (re-optimization and
// materialization overheads included) beats the improved estimate of the
// current plan.

#ifndef REOPTDB_REOPT_CONTROLLER_H_
#define REOPTDB_REOPT_CONTROLLER_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/feedback_store.h"
#include "exec/exec_context.h"
#include "obs/query_trace.h"
#include "optimizer/calibration.h"
#include "optimizer/cost_model.h"
#include "optimizer/optimizer.h"
#include "plan/physical_plan.h"
#include "plan/query_spec.h"
#include "reopt/query_journal.h"
#include "reopt/scia.h"

namespace reoptdb {

/// Which parts of Dynamic Re-Optimization are active (Fig. 11 isolates
/// memory-only vs plan-modification-only).
enum class ReoptMode : uint8_t {
  kOff = 0,         ///< conventional execution, no collectors
  kMemoryOnly = 1,  ///< dynamic memory re-allocation only
  kPlanOnly = 2,    ///< plan modification only
  kFull = 3,        ///< both (the paper's default configuration)
};

const char* ReoptModeName(ReoptMode mode);

/// Default execution batch size: TupleBatch::kDefaultCapacity (1024),
/// overridable via the REOPTDB_BATCH_SIZE environment variable (values < 1
/// are ignored). Read once and cached.
size_t DefaultExecBatchSize();

/// Dynamic Re-Optimization knobs (defaults = the paper's experiments).
struct ReoptOptions {
  ReoptMode mode = ReoptMode::kFull;
  double mu = 0.05;      ///< max collection overhead fraction
  double theta1 = 0.05;  ///< Eq. (1) optimizer-cost gate
  double theta2 = 0.2;   ///< Eq. (2) sub-optimality indicator threshold
  int max_plan_switches = 2;
  /// Section 2.3 extension: when a collector finalizes mid-stage, re-run
  /// the memory manager immediately; running operators that can respond to
  /// budget changes (hash join builds, aggregates) pick the change up
  /// without waiting for the stage boundary. Off by default (the paper's
  /// base algorithm assumes allocations are fixed once an operator starts).
  bool mid_execution_memory = false;
  int histogram_buckets = 50;
  size_t reservoir_capacity = 1024;
  /// Graceful degradation: after this many *recovered* re-optimization
  /// failures (rolled-back switches, skipped advisory steps), the
  /// controller demotes itself to ReoptMode::kOff for the remainder of the
  /// query and records a DegradationEvent. The query must never fail
  /// because an optional optimization kept failing.
  int max_reopt_failures = 2;
  /// Cooperative deadline on the simulated clock (ms); 0 disables. A query
  /// exceeding it unwinds with Status::Cancelled at the next stage
  /// boundary / operator Next, with full temp-table and hook cleanup.
  double deadline_ms = 0;
  /// Stats-churn gate: when > 0, concurrent transactional DML against the
  /// query's base tables (rows appended/deleted, or update activity
  /// accrued, since this query started) contributes a churn fraction to
  /// the Eq.(2) sub-optimality indicator — the optimizer's inputs are
  /// provably stale, a new reason to distrust the plan. The gate can then
  /// fire even at a stage boundary with no fresh collector feedback; the
  /// Eq2Check record carries stats_churn = true. The query's *answer* is
  /// unaffected either way (scans are snapshot-bounded at query start).
  /// 0 disables (default), keeping decision traces bit-identical for
  /// DML-free workloads.
  double stats_churn_theta = 0;
  /// Deprecated alias for arming the `reopt.post_switch` fault-injection
  /// point on every call (see common/fault.h): fail the query right after
  /// the first accepted plan switch. Prefer
  /// FaultInjector::Arm(faults::kReoptPostSwitch, ...).
  bool fault_inject_after_switch = false;
  /// Rows moved per operator pull (vectorized execution). 1 selects the
  /// legacy row-at-a-time path. Results, ObservedStats, and re-optimization
  /// decisions are identical at every setting; only wall-clock overhead
  /// per tuple changes.
  size_t batch_size = DefaultExecBatchSize();
};

/// Comparison of one observed intermediate edge against the estimate.
struct EdgeComparison {
  int node_id = -1;
  double estimated_rows = 0;
  double observed_rows = 0;
};

/// What happened during one query execution.
struct ExecutionReport {
  double sim_time_ms = 0;        ///< total simulated execution time
  uint64_t page_ios = 0;
  uint64_t output_rows = 0;
  int collectors_inserted = 0;
  int memory_reallocations = 0;
  int reopts_considered = 0;     ///< optimizer re-invocations mid-query
  int plans_switched = 0;
  int reopt_failures = 0;        ///< ReoptFailure records (any action)
  bool reopt_degraded = false;   ///< demoted to off after repeated failures
  double reopt_overhead_ms = 0;  ///< simulated re-optimization cost charged
  double estimated_cost_ms = 0;  ///< the initial plan's estimated total
  std::string plan_before;
  std::string plan_after;        ///< empty unless a switch happened
  std::vector<EdgeComparison> edges;
  /// Structured trace: operator spans plus typed Eq.(1)/Eq.(2)/switch/
  /// memory-reallocation records. The source of truth for what happened;
  /// `events` below is a rendered view kept for compatibility.
  QueryTrace trace;
  std::vector<std::string> events;
};

class QuerySession;

/// \brief Executes queries under Dynamic Re-Optimization.
class DynamicReoptimizer {
 public:
  DynamicReoptimizer(Catalog* catalog, const CostModel* cost,
                     const OptimizerCalibration* calibration,
                     OptimizerOptions optimizer_opts, ReoptOptions reopt_opts,
                     double query_mem_pages)
      : catalog_(catalog),
        cost_(cost),
        calibration_(calibration),
        optimizer_opts_(optimizer_opts),
        opts_(reopt_opts),
        query_mem_pages_(query_mem_pages) {}

  /// Executes a bound query; appends output rows and returns the report.
  Result<ExecutionReport> Execute(QuerySpec spec, ExecContext* ctx,
                                  std::vector<Tuple>* rows,
                                  Schema* out_schema);

  /// Executes with a caller-supplied initial plan (e.g. one branch of a
  /// parametric plan set — the paper's Section 4 hybrid). Takes ownership;
  /// the plan's annotations are mutated during execution. `memo`, when
  /// supplied (e.g. from the plan-correction cache), seeds the session's
  /// retained DP memo so a mid-query re-optimization can repair
  /// incrementally instead of re-planning from scratch.
  Result<ExecutionReport> ExecuteWithPlan(QuerySpec spec,
                                          std::unique_ptr<PlanNode> plan,
                                          ExecContext* ctx,
                                          std::vector<Tuple>* rows,
                                          Schema* out_schema,
                                          std::unique_ptr<PlanMemo> memo =
                                              nullptr);

  /// Incremental session API (multi-query interleaving): optimizes the
  /// query and returns a session whose Step() runs exactly one scheduler
  /// stage plus the post-stage re-optimization logic. Execute() is
  /// StartSession + Step-until-done; the WorkloadManager round-robins
  /// Step() across sessions, using stage boundaries as yield points.
  /// The session borrows this reoptimizer and `ctx`; both must outlive it.
  Result<std::unique_ptr<QuerySession>> StartSession(QuerySpec spec,
                                                     ExecContext* ctx,
                                                     std::vector<Tuple>* rows,
                                                     Schema* out_schema);

  /// StartSession with a caller-supplied initial plan (takes ownership).
  /// `memo` optionally seeds the retained DP memo (see ExecuteWithPlan).
  Result<std::unique_ptr<QuerySession>> StartSessionWithPlan(
      QuerySpec spec, std::unique_ptr<PlanNode> plan, ExecContext* ctx,
      std::vector<Tuple>* rows, Schema* out_schema,
      std::unique_ptr<PlanMemo> memo = nullptr);

  /// Installs the Database's durable query journal. When set, every
  /// accepted plan switch appends a JournalStage at the point of no return
  /// and the records are cleared when the query ends without a crash.
  /// `root_sql_override` identifies the original user query when executing
  /// a recovered remainder, so resumed stages supersede the journaled one
  /// instead of starting a new chain. Empty = this query is its own root.
  void SetJournal(QueryJournal* journal, std::string root_sql_override = "") {
    journal_ = journal;
    journal_root_override_ = std::move(root_sql_override);
  }

  /// Installs the Database's cardinality feedback store. When set, the
  /// optimizer (initial and mid-query re-invocations) consults it before
  /// synthetic statistics, and observed collector statistics are harvested
  /// into it when a plan switch commits and when the query finishes.
  void SetFeedback(CardinalityFeedbackStore* feedback) {
    feedback_ = feedback;
  }

  /// Installs the cluster's monotonic scrub-findings counter (see
  /// shard/scrubber.h). When it advances between gate evaluations the
  /// controller revalidates this query's journaled temp snapshots before
  /// any resume decision may trust them, and annotates the Eq.(2) record
  /// (Eq2Check::integrity_recheck). Null disables the recheck.
  void SetScrubSignal(const uint64_t* counter) { scrub_signal_ = counter; }

 private:
  friend class QuerySession;

  Catalog* catalog_;
  const CostModel* cost_;
  const OptimizerCalibration* calibration_;
  OptimizerOptions optimizer_opts_;
  ReoptOptions opts_;
  double query_mem_pages_;
  QueryJournal* journal_ = nullptr;       ///< not owned; may be null
  std::string journal_root_override_;
  CardinalityFeedbackStore* feedback_ = nullptr;  ///< not owned; may be null
  const uint64_t* scrub_signal_ = nullptr;        ///< not owned; may be null
  /// Shared slot holding the live plan root for the mid-execution hook;
  /// shared_ptr so the hook closure stays valid (and harmless, pointing at
  /// null) even if Execute unwinds early on an error.
  std::shared_ptr<PlanNode*> live_plan_slot_;
};

/// \brief One query's stepwise execution under Dynamic Re-Optimization.
///
/// Produced by DynamicReoptimizer::StartSession. Each Step() runs one
/// scheduler stage (a blocking phase or the final delivery) followed by
/// the controller's post-stage logic — collector harvesting, dynamic
/// memory re-allocation, the Eq.(1)/Eq.(2) gates, and candidate plan
/// switches. Destroying an unfinished session runs the same cleanup as an
/// error unwind inside Execute(): temp tables dropped, collector hook
/// defused, journal records cleared (all crash-aware).
///
/// The broker surface (PinnedPages / OnGrantChanged) lets a WorkloadManager
/// revoke the un-started portion of this query's memory between steps.
class QuerySession {
 public:
  ~QuerySession();
  QuerySession(const QuerySession&) = delete;
  QuerySession& operator=(const QuerySession&) = delete;

  /// Runs one stage plus its post-stage re-optimization logic. Returns
  /// true when the query has delivered all rows (TakeReport() is then
  /// valid), false when more stages remain. Errors unwind with full
  /// cleanup, exactly like DynamicReoptimizer::Execute.
  Result<bool> Step();

  /// The final report; valid once Step() returned true.
  ExecutionReport TakeReport();

  /// Pages pinned by operators that have already started (Section 2.3:
  /// "once an operator starts executing, its memory allocation cannot be
  /// changed") — the non-revocable portion of this query's grant.
  double PinnedPages() const;

  /// Broker notification: this query's total grant changed (revocation or
  /// regrant). Re-divides memory among not-yet-started operators under the
  /// new total; in-flight operators that are now over budget spill at
  /// their next budget re-read. A shrink arms the reopt-thrash hysteresis:
  /// the next Eq.(2) evaluation with no new collector feedback is recorded
  /// as suppressed (revocation_only) instead of firing.
  void OnGrantChanged(double new_total_pages);

  ExecContext* ctx() const;

 private:
  friend class DynamicReoptimizer;
  struct State;
  explicit QuerySession(std::unique_ptr<State> state);
  std::unique_ptr<State> state_;
};

/// Recomputes est.cost_self/cost_total using the actual memory budgets
/// assigned by the MemoryManager (called once after initial allocation so
/// the "optimizer estimate" baseline reflects real memory conditions).
void RecostWithBudgets(PlanNode* root, const CostModel& cost);

/// Propagates run-time observations upward into the `improved` annotations:
/// observed cardinalities replace estimates where collectors reported;
/// un-observed nodes scale by their children's improvement ratios; operator
/// costs are recomputed with actual memory budgets (Section 2.2's
/// "improved estimates").
void RefreshImprovedEstimates(PlanNode* root, const CostModel& cost);

/// Harvests observed base-relation statistics (post-filter cardinalities,
/// run-time histograms, distinct counts) from a partially executed plan,
/// keyed by alias, for feeding the re-invoked optimizer.
BaseRelOverrides CollectBaseRelOverrides(const PlanNode& root,
                                         const QuerySpec& spec,
                                         const Catalog& catalog);

/// Builds catalog statistics for a temp table holding `frontier`'s output,
/// using observed statistics from the subtree where available and base
/// catalog statistics otherwise.
TableStats BuildTempStats(const PlanNode& frontier, const QuerySpec& spec,
                          const Catalog& catalog);

/// Re-verifies every journaled stage's temp snapshots against the live
/// catalog: each temp table must still exist with the journaled row count
/// and content checksum (recomputed from the stored bytes — charged I/O).
/// A stage that fails is removed from the journal (MarkComplete): a resume
/// must never trust a temp that integrity scrubbing has cast doubt on —
/// saved work is sacrificed, the answer never is. `root_sql` restricts the
/// check to one query's records; empty revalidates everything. Returns the
/// number of stages dropped.
Result<int> RevalidateJournaledStages(QueryJournal* journal, Catalog* catalog,
                                      FaultInjector* faults,
                                      const std::string& root_sql);

///// Harvests every valid observation in `plan` into the feedback store:
/// base-table scans become (table, predicate-signature) entries with the
/// observed post-filter selectivity; joins become join-signature entries.
/// Temp tables are skipped (their signatures are query-local), as are
/// collector nodes (the child carries the same observation). Partial
/// observations are recorded as lower bounds. No-op when `store` is null.
void HarvestFeedback(const PlanNode& plan, const QuerySpec& spec,
                     const Catalog& catalog, CardinalityFeedbackStore* store);

/// Merges per-node collector observations of the SAME plan edge (sharded
/// execution) into one cluster-wide observation: counts and byte totals
/// sum, per-column min/max union, and the node-local histograms / distinct
/// sketches are dropped (they describe partitions, not the relation — a
/// union would double-count overlapping sketch domains). The result is
/// what gets written into the coordinator plan before HarvestFeedback runs,
/// so the feedback store sees each logical edge exactly once regardless of
/// node count. `partial` is sticky: any partial input makes the merge a
/// lower bound. Invalid inputs are skipped; all-invalid yields invalid.
ObservedStats MergeObservedStats(const std::vector<const ObservedStats*>& parts);

}  // namespace reoptdb

#endif  // REOPTDB_REOPT_CONTROLLER_H_
