// Randomized oracle tests: random queries over random data, executed under
// every re-optimization mode and checked against a brute-force reference
// evaluator implemented here in the test. This is the strongest
// correctness net in the suite: any divergence between the engine's
// operators (spilling joins, aggregates, plan switches, remainder
// round-trips) and plain nested-loop semantics fails loudly.

#include <algorithm>
#include <map>
#include <sstream>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "optimizer/cost_model.h"
#include "optimizer/optimizer.h"
#include "optimizer/plan_memo.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "test_util.h"

namespace reoptdb {
namespace {

using testing_util::Canon;

struct FuzzData {
  // t1(a INT, b INT, c DOUBLE)  t2(a INT, d INT)
  std::vector<std::array<int64_t, 3>> t1;  // c stored as int, cast on use
  std::vector<std::array<int64_t, 2>> t2;
};

FuzzData MakeData(Rng* rng) {
  FuzzData data;
  int n1 = 50 + static_cast<int>(rng->NextBelow(400));
  int n2 = 10 + static_cast<int>(rng->NextBelow(100));
  for (int i = 0; i < n1; ++i) {
    data.t1.push_back({rng->NextInt(0, 40), rng->NextInt(0, 9),
                       rng->NextInt(0, 1000)});
  }
  for (int i = 0; i < n2; ++i) {
    data.t2.push_back({rng->NextInt(0, 40), rng->NextInt(0, 5)});
  }
  return data;
}

void LoadData(Database* db, const FuzzData& data) {
  Schema s1(std::vector<Column>{{"", "a", ValueType::kInt64, 8},
                                {"", "b", ValueType::kInt64, 8},
                                {"", "c", ValueType::kDouble, 8}});
  Schema s2(std::vector<Column>{{"", "a", ValueType::kInt64, 8},
                                {"", "d", ValueType::kInt64, 8}});
  ASSERT_TRUE(db->CreateTable("t1", s1).ok());
  ASSERT_TRUE(db->CreateTable("t2", s2).ok());
  for (const auto& r : data.t1) {
    ASSERT_TRUE(db->Insert("t1", Tuple({Value(r[0]), Value(r[1]),
                                        Value(static_cast<double>(r[2]))}))
                    .ok());
  }
  for (const auto& r : data.t2) {
    ASSERT_TRUE(db->Insert("t2", Tuple({Value(r[0]), Value(r[1])})).ok());
  }
  ASSERT_TRUE(db->Analyze("t1").ok());
  ASSERT_TRUE(db->Analyze("t2").ok());
}

struct FuzzQuery {
  bool join = false;
  bool group = false;
  // Filter: t1.a OP lit (always present), optional t2.d OP lit2.
  CmpOp op1 = CmpOp::kLt;
  int64_t lit1 = 0;
  bool filter2 = false;
  CmpOp op2 = CmpOp::kLt;
  int64_t lit2 = 0;

  std::string ToSql() const {
    std::ostringstream os;
    if (group) {
      os << "SELECT t1.b, COUNT(*) AS cnt, SUM(c) AS total FROM t1";
    } else if (join) {
      os << "SELECT b, d FROM t1";
    } else {
      os << "SELECT b, c FROM t1";
    }
    if (join) os << ", t2";
    os << " WHERE t1.a " << CmpOpName(op1) << " " << lit1;
    if (join) os << " AND t1.a = t2.a";
    if (join && filter2) os << " AND t2.d " << CmpOpName(op2) << " " << lit2;
    if (group) os << " GROUP BY t1.b";
    return os.str();
  }
};

FuzzQuery MakeQuery(Rng* rng) {
  FuzzQuery q;
  q.join = rng->NextBool(0.6);
  q.group = rng->NextBool(0.5);
  if (q.group) q.join = false;  // grouped single-table or plain join
  const CmpOp ops[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                       CmpOp::kGe, CmpOp::kEq, CmpOp::kNe};
  q.op1 = ops[rng->NextBelow(6)];
  q.lit1 = rng->NextInt(0, 40);
  q.filter2 = rng->NextBool(0.5);
  q.op2 = ops[rng->NextBelow(6)];
  q.lit2 = rng->NextInt(0, 5);
  return q;
}

bool Cmp(int64_t lhs, CmpOp op, int64_t rhs) {
  switch (op) {
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

/// Brute-force reference evaluation.
std::vector<Tuple> Reference(const FuzzData& data, const FuzzQuery& q) {
  std::vector<Tuple> out;
  if (q.group) {
    std::map<int64_t, std::pair<int64_t, double>> groups;  // b -> (cnt, sum)
    for (const auto& r : data.t1) {
      if (!Cmp(r[0], q.op1, q.lit1)) continue;
      auto& g = groups[r[1]];
      g.first += 1;
      g.second += static_cast<double>(r[2]);
    }
    for (const auto& [b, g] : groups)
      out.push_back(Tuple({Value(b), Value(g.first), Value(g.second)}));
    return out;
  }
  if (q.join) {
    for (const auto& l : data.t1) {
      if (!Cmp(l[0], q.op1, q.lit1)) continue;
      for (const auto& r : data.t2) {
        if (l[0] != r[0]) continue;
        if (q.filter2 && !Cmp(r[1], q.op2, q.lit2)) continue;
        out.push_back(Tuple({Value(l[1]), Value(r[1])}));
      }
    }
    return out;
  }
  for (const auto& r : data.t1) {
    if (!Cmp(r[0], q.op1, q.lit1)) continue;
    out.push_back(Tuple({Value(r[1]), Value(static_cast<double>(r[2]))}));
  }
  return out;
}

class FuzzOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzOracleTest, AllModesMatchBruteForce) {
  Rng rng(GetParam());
  FuzzData data = MakeData(&rng);

  // Tight memory so spills and re-allocations are exercised too.
  DatabaseOptions opts;
  opts.buffer_pool_pages = 32;
  opts.query_mem_pages = 8;
  Database db(opts);
  LoadData(&db, data);

  for (int trial = 0; trial < 12; ++trial) {
    FuzzQuery q = MakeQuery(&rng);
    std::vector<std::string> expected = Canon(Reference(data, q));
    for (ReoptMode mode : {ReoptMode::kOff, ReoptMode::kMemoryOnly,
                           ReoptMode::kPlanOnly, ReoptMode::kFull}) {
      ReoptOptions o;
      o.mode = mode;
      o.theta2 = 0.01;  // aggressive: force the gate to fire often
      Result<QueryResult> r = db.ExecuteWith(q.ToSql(), o);
      ASSERT_TRUE(r.ok()) << q.ToSql() << " [" << ReoptModeName(mode)
                          << "]: " << r.status().ToString();
      EXPECT_EQ(Canon(r.value().rows), expected)
          << q.ToSql() << " [" << ReoptModeName(mode) << "] seed "
          << GetParam() << " trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzOracleTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));

// ---------------------------------------------------------------------------
// DML fuzz: random INSERT / UPDATE / DELETE statements through the
// transactional write path, mirrored on an in-memory reference table, with
// periodic SELECTs checked against brute force. Any divergence between the
// write-set / lock / commit-apply machinery and plain list semantics —
// lost writes, phantom rows, misapplied predicates — fails loudly.

struct RefRow {
  int64_t a = 0;
  int64_t b = 0;
  double c = 0;
};

std::string DmlLit(int64_t v) { return std::to_string(v); }

TEST_P(FuzzOracleTest, DmlStatementsMatchReferenceSemantics) {
  Rng rng(GetParam() ^ 0xD31);
  Database db;
  Schema s1(std::vector<Column>{{"", "a", ValueType::kInt64, 8},
                                {"", "b", ValueType::kInt64, 8},
                                {"", "c", ValueType::kDouble, 8}});
  ASSERT_TRUE(db.CreateTable("t1", s1).ok());
  std::vector<RefRow> ref;
  const CmpOp ops[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                       CmpOp::kGe, CmpOp::kEq, CmpOp::kNe};

  auto check = [&](int step) {
    CmpOp op = ops[rng.NextBelow(6)];
    int64_t lit = rng.NextInt(0, 40);
    std::ostringstream sql;
    sql << "SELECT b, c FROM t1 WHERE a " << CmpOpName(op) << " " << lit;
    std::vector<Tuple> expected;
    for (const RefRow& r : ref)
      if (Cmp(r.a, op, lit))
        expected.push_back(Tuple({Value(r.b), Value(r.c)}));
    Result<QueryResult> got = db.Execute(sql.str());
    ASSERT_TRUE(got.ok()) << sql.str() << ": " << got.status().ToString();
    EXPECT_EQ(Canon(got.value().rows), Canon(expected))
        << sql.str() << " diverged at step " << step << " seed "
        << GetParam();
  };

  for (int step = 0; step < 60; ++step) {
    const uint64_t kind = rng.NextBelow(ref.empty() ? 1 : 3);
    if (kind == 0) {  // INSERT, sometimes multi-row
      int nrows = 1 + static_cast<int>(rng.NextBelow(4));
      std::string sql = "INSERT INTO t1 VALUES ";
      for (int i = 0; i < nrows; ++i) {
        RefRow r{rng.NextInt(0, 40), rng.NextInt(0, 9),
                 static_cast<double>(rng.NextInt(0, 1000))};
        ref.push_back(r);
        if (i) sql += ", ";
        sql += "(" + DmlLit(r.a) + ", " + DmlLit(r.b) + ", " +
               DmlLit(static_cast<int64_t>(r.c)) + ".0)";
      }
      Result<QueryResult> r = db.ExecuteSql(sql);
      ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
      EXPECT_NE(
          r.value().message.find("inserted " + std::to_string(nrows)),
          std::string::npos);
    } else if (kind == 1) {  // UPDATE b (and sometimes c) WHERE a cmp lit
      CmpOp op = ops[rng.NextBelow(6)];
      int64_t lit = rng.NextInt(0, 40);
      int64_t newb = rng.NextInt(0, 9);
      bool set_c = rng.NextBool(0.4);
      double newc = static_cast<double>(rng.NextInt(0, 1000));
      std::ostringstream sql;
      sql << "UPDATE t1 SET b = " << newb;
      if (set_c) sql << ", c = " << static_cast<int64_t>(newc) << ".0";
      sql << " WHERE a " << CmpOpName(op) << " " << lit;
      uint64_t expected_hits = 0;
      for (RefRow& r : ref) {
        if (!Cmp(r.a, op, lit)) continue;
        r.b = newb;
        if (set_c) r.c = newc;
        ++expected_hits;
      }
      Result<QueryResult> r = db.ExecuteSql(sql.str());
      ASSERT_TRUE(r.ok()) << sql.str() << ": " << r.status().ToString();
      EXPECT_NE(r.value().message.find(
                    "updated " + std::to_string(expected_hits)),
                std::string::npos)
          << sql.str() << " -> " << r.value().message;
    } else {  // DELETE WHERE a cmp lit
      CmpOp op = ops[rng.NextBelow(6)];
      int64_t lit = rng.NextInt(0, 40);
      std::ostringstream sql;
      sql << "DELETE FROM t1 WHERE a " << CmpOpName(op) << " " << lit;
      uint64_t expected_hits = 0;
      for (size_t i = 0; i < ref.size();) {
        if (Cmp(ref[i].a, op, lit)) {
          ref.erase(ref.begin() + static_cast<long>(i));
          ++expected_hits;
        } else {
          ++i;
        }
      }
      Result<QueryResult> r = db.ExecuteSql(sql.str());
      ASSERT_TRUE(r.ok()) << sql.str() << ": " << r.status().ToString();
      EXPECT_NE(r.value().message.find(
                    "deleted " + std::to_string(expected_hits)),
                std::string::npos)
          << sql.str() << " -> " << r.value().message;
    }
    if (step % 5 == 4) check(step);
  }
  check(-1);
  EXPECT_EQ(db.txn_manager()->active_count(), 0u);

  // Epilogue: crash the next statement mid-commit and recover — the
  // surviving state must equal the reference exactly (nothing lost,
  // nothing resurrected).
  ASSERT_TRUE(db.faults()->Configure("txn.commit=crash:nth:1").ok());
  Result<QueryResult> crashed = db.ExecuteSql("DELETE FROM t1");
  ASSERT_EQ(crashed.status().code(), StatusCode::kCrashed);
  ASSERT_TRUE(db.RecoverStorage().ok());
  check(-2);
}

// ---------------------------------------------------------------------------
// Optimizer repair fuzz: random join shapes over a synthetic catalog, with
// random per-table statistics perturbations between rounds. The retained
// DP memo is repaired — and rolled forward through successive repairs —
// and every repaired plan must be bit-identical (rendered plan text AND
// root cost) to a from-scratch re-plan against the same catalog state. Any
// divergence between the lazy delta-propagation path and the eager DP
// enumeration is a planner bug.

Status MakeFuzzJoinTable(Catalog* catalog, const std::string& name,
                         double rows, double distinct_frac) {
  constexpr int kCols = 4;
  Schema schema;
  for (int c = 0; c < kCols; ++c)
    schema.AddColumn(
        Column{"", "c" + std::to_string(c), ValueType::kInt64, 8});
  RETURN_IF_ERROR(catalog->CreateTable(name, schema).status());
  TableStats ts;
  ts.analyzed = true;
  ts.row_count = rows;
  ts.avg_tuple_bytes = kCols * 8.0;
  ts.page_count = std::max(1.0, rows * ts.avg_tuple_bytes / 4096.0);
  for (int c = 0; c < kCols; ++c) {
    ColumnStats cs;
    cs.type = ValueType::kInt64;
    cs.has_bounds = true;
    cs.min = 0;
    cs.max = rows;
    cs.distinct = std::max(1.0, rows * distinct_frac);
    ts.columns["c" + std::to_string(c)] = cs;
  }
  return catalog->SetStats(name, std::move(ts));
}

TEST_P(FuzzOracleTest, RepairPlanMatchesScratchUnderStatsChurn) {
  Rng rng(GetParam() ^ 0xA11CE);
  DiskManager disk;
  BufferPool pool(&disk, 64);
  Catalog catalog(&pool);
  const int tables = 4 + static_cast<int>(rng.NextBelow(6));  // 4..9
  for (int t = 0; t < tables; ++t) {
    ASSERT_TRUE(MakeFuzzJoinTable(&catalog, "t" + std::to_string(t),
                                  1000.0 * (1 + rng.NextBelow(40)),
                                  rng.NextBelow(2) ? 0.1 : 0.01)
                    .ok());
  }

  const bool star = rng.NextBelow(2) != 0;
  QuerySpec spec;
  for (int t = 0; t < tables; ++t) {
    std::string name = "t" + std::to_string(t);
    spec.relations.push_back(RelationRef{name, name});
  }
  for (int t = 1; t < tables; ++t) {
    JoinPred j;
    j.left_rel = star ? 0 : t - 1;
    j.left_col = "c" + std::to_string(1 + t % 3);
    j.right_rel = t;
    j.right_col = "c0";
    spec.joins.push_back(j);
  }
  FilterPred f;  // a selective filter so leaves differ from raw tables
  f.rel = static_cast<int>(rng.NextBelow(tables));
  f.column = "c2";
  f.op = CmpOp::kLt;
  f.literal = Value(rng.NextInt(100, 5000));
  spec.filters.push_back(f);
  OutputItem item;
  item.col = ColumnId{0, "c0", ValueType::kInt64};
  item.name = "c0";
  spec.items.push_back(item);

  CostModel cost{CostParams{}};
  Optimizer optimizer(&catalog, &cost);
  Result<OptimizeResult> initial = optimizer.Plan(spec);
  ASSERT_TRUE(initial.ok()) << initial.status().ToString();
  std::unique_ptr<PlanMemo> memo = std::move(initial.value().memo);

  for (int round = 0; round < 6; ++round) {
    const int perturbed = 1 + static_cast<int>(rng.NextBelow(3));
    for (int p = 0; p < perturbed; ++p) {
      std::string name = "t" + std::to_string(rng.NextBelow(tables));
      Result<TableInfo*> info = catalog.Get(name);
      ASSERT_TRUE(info.ok());
      TableStats ts = info.value()->stats;
      const double factor = rng.NextDouble(0.3, 4.0);
      ts.row_count = std::max(1.0, ts.row_count * factor);
      ts.page_count = std::max(1.0, ts.page_count * factor);
      for (auto& [col, cs] : ts.columns) {
        cs.max *= factor;
        cs.distinct = std::max(1.0, cs.distinct * factor);
      }
      ASSERT_TRUE(catalog.SetStats(name, std::move(ts)).ok());
    }

    Result<OptimizeResult> scratch = optimizer.Plan(spec);
    ASSERT_TRUE(scratch.ok()) << scratch.status().ToString();
    MemoRepair mr;
    Result<OptimizeResult> repaired =
        optimizer.RepairPlan(spec, nullptr, std::move(memo), &mr);
    ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
    EXPECT_FALSE(mr.fell_back) << "seed " << GetParam() << " round " << round;
    EXPECT_EQ(repaired.value().plan->ToString(),
              scratch.value().plan->ToString())
        << "seed " << GetParam() << " round " << round;
    EXPECT_EQ(repaired.value().plan->est.cost_total_ms,
              scratch.value().plan->est.cost_total_ms)
        << "seed " << GetParam() << " round " << round;
    // Roll the repaired memo forward: later rounds also exercise reuse of
    // entries that were themselves repaired (including decision-only
    // entries whose plan was never materialized).
    memo = std::move(repaired.value().memo);
    ASSERT_NE(memo, nullptr);
  }
}

}  // namespace
}  // namespace reoptdb
