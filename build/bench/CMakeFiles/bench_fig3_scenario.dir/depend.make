# Empty dependencies file for bench_fig3_scenario.
# This may be replaced when dependencies are built.
