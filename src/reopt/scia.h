// Statistics-collectors insertion algorithm — SCIA (paper Section 2.5).
//
// Post-processes the optimizer's plan: enumerates the potentially useful
// statistics (a histogram on an attribute used by a later join/selection; a
// unique count on attributes grouped later), ranks them by effectiveness
// (inaccuracy potential first, affected plan fraction second), drops the
// least effective until the estimated collection cost fits within
// mu x estimated query time, and inserts statistics-collector operators.
// Cardinality / average size / min-max are collected on every intermediate
// edge for free.

#ifndef REOPTDB_REOPT_SCIA_H_
#define REOPTDB_REOPT_SCIA_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "optimizer/cost_model.h"
#include "plan/physical_plan.h"
#include "plan/query_spec.h"
#include "reopt/inaccuracy.h"

namespace reoptdb {

/// SCIA knobs.
struct SciaOptions {
  /// Maximum acceptable statistics-collection overhead as a fraction of
  /// estimated query time (the paper's mu; experiments use 0.05).
  double mu = 0.05;
  int histogram_buckets = 50;
  size_t reservoir_capacity = 1024;
};

/// One candidate statistic considered by the algorithm (exposed for tests
/// and EXPLAIN-style introspection).
struct StatCandidate {
  int below_node_id = -1;  ///< collector goes on this node's output edge
  bool is_histogram = false;  ///< false = unique-value count
  std::string column;         ///< qualified name
  InaccuracyLevel potential = InaccuracyLevel::kLow;
  double affected_fraction = 0;  ///< of total plan cost
  double collect_cost_ms = 0;
  bool kept = false;
};

/// Result of the insertion pass.
struct SciaResult {
  int collectors_inserted = 0;
  /// Estimated cost of the kept histogram/unique statistics — the portion
  /// the mu budget governs.
  double estimated_overhead_ms = 0;
  /// Estimated cost of the always-on per-column min/max maintenance across
  /// all collector edges. Not deletable, so outside the mu budget, but
  /// costed into the collector nodes and charged at run time.
  double minmax_baseline_ms = 0;
  std::vector<StatCandidate> candidates;
};

/// Inserts statistics-collector nodes into `root` (mutated in place; node
/// ids are re-assigned; cumulative cost annotations updated).
Result<SciaResult> InsertStatsCollectors(std::unique_ptr<PlanNode>* root,
                                         const QuerySpec& spec,
                                         const Catalog& catalog,
                                         const CostModel& cost,
                                         const SciaOptions& opts);

/// Recomputes est.cost_total_ms bottom-up from est.cost_self_ms (used after
/// structural plan edits).
void RecomputeCostTotals(PlanNode* root);

/// Number of columns whose min/max a collector on an edge with this schema
/// maintains (the non-string columns). Used to cost the always-on min/max
/// baseline that every inserted collector pays.
int CollectorMinMaxCols(const Schema& schema);

}  // namespace reoptdb

#endif  // REOPTDB_REOPT_SCIA_H_
