// Retained dynamic-programming memo for incremental re-optimization.
//
// The System-R DP table the Planner builds (subset mask -> cheapest plan,
// stats, cost) used to die with the Plan() call; re-optimizing the mid-query
// remainder then re-derived every subset from scratch, and Eq.(1) priced
// that full cost against the switch. Following Liu/Ives/Loo ("Enabling
// Incremental Query Re-Optimization", PAPERS.md), the memo is lifted out
// into a PlanMemo owned by the query: the initial optimization populates
// it, and Optimizer::RepairPlan later invalidates only the entries whose
// leaf inputs changed and repairs them bottom-up, reusing every clean
// subplan verbatim.
//
// Validity is established from the inputs, not hoped for:
//   - per-relation catalog snapshots (schema fingerprint, heap/live tuple
//     counts, update activity, page count) catch stats churn, DML, and
//     index DDL that would alter leaf or join-level derivations;
//   - fresh leaf re-derivation is deep-compared (cost, full DerivedRel
//     including per-column stats and histograms, rendered plan) against the
//     retained leaf, so collector overrides and feedback corrections mark
//     exactly the affected leaves dirty;
//   - the cardinality feedback store's generation is snapshotted; any
//     mutation since the memo was built falls back to a from-scratch
//     re-plan (concurrent queries may have deposited join feedback the
//     retained join entries never saw).
// Under these guards a clean subset's optimal plan depends only on inputs
// proven unchanged, so reused entries are bit-identical to what a
// from-scratch enumeration would re-derive.

#ifndef REOPTDB_OPTIMIZER_PLAN_MEMO_H_
#define REOPTDB_OPTIMIZER_PLAN_MEMO_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "optimizer/selectivity.h"
#include "plan/physical_plan.h"
#include "plan/query_spec.h"

namespace reoptdb {

/// One DP table entry: the cheapest plan found for a relation subset.
struct MemoEntry {
  std::unique_ptr<PlanNode> plan;
  DerivedRel stats;
  double cost = 0;

  MemoEntry Clone() const;
};

/// Catalog state of one referenced relation at memo-build time. Any drift
/// marks the relation's leaf dirty: tuple counts and activity feed
/// feedback-staleness checks, page counts feed scan/probe costs, and the
/// schema fingerprint covers column and index DDL (a retained index-NL
/// subplan must never outlive its index).
struct MemoRelSnapshot {
  std::string table;
  uint64_t schema_fingerprint = 0;  ///< SchemaFingerprint (plan_cache.h)
  double heap_tuple_count = 0;      ///< live heap tuples (feedback anchors)
  double heap_page_count = 0;       ///< live heap pages (scan/probe costs)
  double stats_row_count = 0;       ///< catalog (ANALYZE/SetStats) row count
  double stats_page_count = 0;
  double update_activity = 0;
};

/// \brief The retained DP memo of one optimization run.
struct PlanMemo {
  /// Subset mask -> cheapest entry, exactly as the DP enumeration left it
  /// (leaves included; the Finish() wrappers are not subset-keyed and are
  /// always rebuilt).
  std::map<uint32_t, MemoEntry> entries;
  /// Pre-filter base-relation stats per relation ordinal at build time;
  /// compared on repair so catalog-stats changes that cancel out in the
  /// filtered leaf (or feed join-level derivations directly, like the
  /// index-NL inner estimate) still invalidate correctly.
  std::map<int, DerivedRel> leaf_raw;
  /// Indexed by relation ordinal.
  std::vector<MemoRelSnapshot> rel_snapshots;
  /// CardinalityFeedbackStore::generation() at build (0 = no store).
  uint64_t feedback_generation = 0;

  std::unique_ptr<PlanMemo> Clone() const;
};

/// Exact (bitwise) equality of derived statistics — the comparison behind
/// leaf dirty-detection. Per-column stats participate fully (distinct
/// counts drive join estimates; bounds and histograms drive ranges).
bool ColumnStatsEqual(const ColumnStats& a, const ColumnStats& b);
bool StatsEqual(const DerivedRel& a, const DerivedRel& b);

/// Translates a memo retained from `original`'s optimization into the
/// ordinal space of BuildRemainderSpec(original, covered, temp): entries
/// touching a covered relation are dropped (their work now lives in the
/// temp table), surviving masks/covers/rels are renumbered to the
/// remainder's ordinals, and relation 0 (the temp leaf) is left vacant so
/// it enters the repair as a new, always-dirty leaf. Consumes the memo —
/// surviving entries are moved, not cloned.
std::unique_ptr<PlanMemo> TranslateMemoForRemainder(
    PlanMemo memo, const QuerySpec& original, const std::set<int>& covered);

}  // namespace reoptdb

#endif  // REOPTDB_OPTIMIZER_PLAN_MEMO_H_
