#include "stats/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace reoptdb {

const char* HistogramKindName(HistogramKind k) {
  switch (k) {
    case HistogramKind::kNone:
      return "none";
    case HistogramKind::kEquiWidth:
      return "equi-width";
    case HistogramKind::kEquiDepth:
      return "equi-depth";
    case HistogramKind::kMaxDiff:
      return "maxdiff";
  }
  return "?";
}

namespace {

struct DistinctFreq {
  double value;
  double freq;
};

std::vector<DistinctFreq> DistinctFrequencies(const std::vector<double>& sorted) {
  std::vector<DistinctFreq> out;
  for (double v : sorted) {
    if (!out.empty() && out.back().value == v) {
      out.back().freq += 1;
    } else {
      out.push_back({v, 1});
    }
  }
  return out;
}

// Builds one bucket from a run of distinct-value frequencies [i, j).
HistogramBucket MakeBucket(const std::vector<DistinctFreq>& df, size_t i,
                           size_t j) {
  HistogramBucket b;
  b.lo = df[i].value;
  b.hi = df[j - 1].value;
  b.count = 0;
  b.distinct = static_cast<double>(j - i);
  for (size_t k = i; k < j; ++k) b.count += df[k].freq;
  return b;
}

}  // namespace

Histogram Histogram::Build(HistogramKind kind, std::vector<double> values,
                           int num_buckets, double population) {
  Histogram h;
  h.kind_ = kind;
  if (values.empty() || num_buckets <= 0 || kind == HistogramKind::kNone) {
    h.kind_ = HistogramKind::kNone;
    return h;
  }
  std::sort(values.begin(), values.end());
  h.min_ = values.front();
  h.max_ = values.back();
  double scale = population / static_cast<double>(values.size());

  std::vector<DistinctFreq> df = DistinctFrequencies(values);
  size_t nb = std::min<size_t>(num_buckets, df.size());

  switch (kind) {
    case HistogramKind::kEquiWidth: {
      double width = (h.max_ - h.min_) / static_cast<double>(nb);
      if (width <= 0) width = 1;
      size_t i = 0;
      for (size_t b = 0; b < nb && i < df.size(); ++b) {
        double hi = (b + 1 == nb) ? h.max_ : h.min_ + width * (b + 1);
        size_t j = i;
        while (j < df.size() && (df[j].value <= hi || b + 1 == nb)) ++j;
        if (j == i) continue;
        h.buckets_.push_back(MakeBucket(df, i, j));
        i = j;
      }
      break;
    }
    case HistogramKind::kEquiDepth: {
      double target = static_cast<double>(values.size()) / nb;
      size_t i = 0;
      double acc = 0;
      size_t start = 0;
      size_t made = 0;
      for (i = 0; i < df.size(); ++i) {
        acc += df[i].freq;
        bool last_bucket = (made + 1 == nb);
        if (!last_bucket && acc >= target) {
          h.buckets_.push_back(MakeBucket(df, start, i + 1));
          start = i + 1;
          acc = 0;
          ++made;
        }
      }
      if (start < df.size()) h.buckets_.push_back(MakeBucket(df, start, df.size()));
      break;
    }
    case HistogramKind::kMaxDiff: {
      // Boundaries at the nb-1 largest adjacent frequency differences
      // (MaxDiff(V,F) approximation; see DESIGN.md).
      std::vector<std::pair<double, size_t>> diffs;  // (diff, boundary after i)
      for (size_t i = 0; i + 1 < df.size(); ++i) {
        diffs.push_back({std::fabs(df[i + 1].freq - df[i].freq), i});
      }
      std::sort(diffs.begin(), diffs.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      std::vector<size_t> bounds;
      for (size_t k = 0; k + 1 < nb && k < diffs.size(); ++k)
        bounds.push_back(diffs[k].second);
      std::sort(bounds.begin(), bounds.end());
      size_t start = 0;
      for (size_t b : bounds) {
        h.buckets_.push_back(MakeBucket(df, start, b + 1));
        start = b + 1;
      }
      if (start < df.size())
        h.buckets_.push_back(MakeBucket(df, start, df.size()));
      break;
    }
    case HistogramKind::kNone:
      break;
  }

  for (HistogramBucket& b : h.buckets_) {
    b.count *= scale;
    h.total_ += b.count;
  }
  return h;
}

double Histogram::EstimateLess(double v, bool inclusive) const {
  if (empty()) return 0;
  double acc = 0;
  for (const HistogramBucket& b : buckets_) {
    if (v > b.hi || (inclusive && v == b.hi)) {
      acc += b.count;
      continue;
    }
    if (v < b.lo || (!inclusive && v == b.lo)) break;
    // Partial bucket: uniform interpolation.
    double width = b.hi - b.lo;
    double frac = width <= 0 ? 1.0 : (v - b.lo) / width;
    if (inclusive && b.distinct > 0) frac += 1.0 / b.distinct;
    // Strict `<` with v exactly on the upper bucket edge: interpolation
    // yields frac == 1, silently including the rows *at* the edge. Back out
    // one distinct value's share so `col < hi` excludes hi and the
    // complementary `col >= hi` keeps the edge value instead of dropping it.
    if (!inclusive && v == b.hi && b.distinct > 0) frac -= 1.0 / b.distinct;
    frac = std::clamp(frac, 0.0, 1.0);
    acc += b.count * frac;
    break;
  }
  return acc;
}

double Histogram::EstimateEqual(double v) const {
  if (empty()) return 0;
  for (const HistogramBucket& b : buckets_) {
    if (v < b.lo || v > b.hi) continue;
    return b.count / std::max(1.0, b.distinct);
  }
  return 0;
}

double Histogram::EstimateRange(double lo, bool lo_strict, double hi,
                                bool hi_strict) const {
  if (empty() || lo > hi) return 0;
  double upper = EstimateLess(hi, /*inclusive=*/!hi_strict);
  double lower = EstimateLess(lo, /*inclusive=*/lo_strict);
  return std::max(0.0, upper - lower);
}

double Histogram::EstimateDistinct() const {
  double d = 0;
  for (const HistogramBucket& b : buckets_) d += b.distinct;
  return d;
}

double Histogram::EstimateDistinctInRange(double lo, double hi) const {
  double d = 0;
  for (const HistogramBucket& b : buckets_) {
    if (b.hi < lo || b.lo > hi) continue;
    double width = b.hi - b.lo;
    if (width <= 0) {
      d += b.distinct;
      continue;
    }
    double olo = std::max(lo, b.lo), ohi = std::min(hi, b.hi);
    d += b.distinct * std::max(0.0, (ohi - olo) / width);
  }
  return std::max(1.0, d);
}

double Histogram::EstimateEquiJoinCard(const Histogram& left,
                                       const Histogram& right) {
  if (left.empty() || right.empty()) return 0;
  double total = 0;
  for (const HistogramBucket& lb : left.buckets_) {
    for (const HistogramBucket& rb : right.buckets_) {
      double lo = std::max(lb.lo, rb.lo);
      double hi = std::min(lb.hi, rb.hi);
      if (lo > hi) continue;
      // Fraction of each bucket falling inside the overlap (uniform
      // spread assumption; single-value buckets overlap fully).
      double lw = lb.hi - lb.lo, rw = rb.hi - rb.lo;
      double lfrac = lw <= 0 ? 1.0 : std::min(1.0, (hi - lo) / lw);
      double rfrac = rw <= 0 ? 1.0 : std::min(1.0, (hi - lo) / rw);
      double lcnt = lb.count * lfrac;
      double rcnt = rb.count * rfrac;
      double ld = std::max(1.0, lb.distinct * lfrac);
      double rd = std::max(1.0, rb.distinct * rfrac);
      total += lcnt * rcnt / std::max(ld, rd);
    }
  }
  return total;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << HistogramKindName(kind_) << "[" << buckets_.size() << " buckets, n="
     << total_ << "]";
  return os.str();
}

}  // namespace reoptdb
