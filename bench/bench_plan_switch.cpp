// Figures 4-6 scenario: mid-query plan modification on the running example.
//
// The filter over Rel1 carries two perfectly correlated attributes, so the
// optimizer's independence assumption UNDERestimates its output 10x
// (paper footnote 2: "the filter might involve two different correlated
// attributes ... and the histograms do not capture the correlation").
// Believing the intermediate result is tiny, the optimizer joins Rel3 with
// an indexed nested-loops join — the right choice for 600 outer rows, the
// wrong one for the actual 6000. The statistics collector on the filter
// output reports the truth when the first hash join's build completes; the
// remainder is re-optimized (Fig. 5), the in-flight join's output is
// redirected to a temporary table (Fig. 6), and the new plan hash-joins
// Rel3 instead.

#include "bench_common.h"
#include "common/rng.h"

using namespace reoptdb;
using namespace reoptdb::bench;

namespace {

void LoadScenario(Database* db, int n1, int n2, int n3) {
  Rng rng(11);
  // Chain topology r1 -- r2 -- r3: Rel3 is reachable only through Rel2,
  // so the plan must join Rel2 first and the Rel3 join method is still
  // pending when the filter's true cardinality is observed.
  Schema r1(std::vector<Column>{{"", "selectattr1", ValueType::kInt64, 8},
                                {"", "selectattr2", ValueType::kInt64, 8},
                                {"", "joinattr2", ValueType::kInt64, 8},
                                {"", "groupattr", ValueType::kInt64, 8},
                                {"", "payload1", ValueType::kString, 60}});
  Schema r2(std::vector<Column>{{"", "joinattr2", ValueType::kInt64, 8},
                                {"", "joinattr3", ValueType::kInt64, 8},
                                {"", "payload2", ValueType::kString, 60}});
  Schema r3(std::vector<Column>{{"", "joinattr3", ValueType::kInt64, 8},
                                {"", "payload3", ValueType::kString, 40}});
  (void)db->CreateTable("rel1", r1);
  (void)db->CreateTable("rel2", r2);
  (void)db->CreateTable("rel3", r3);
  std::string pay1(60, 'x'), pay2(60, 'y'), pay3(40, 'z');
  for (int i = 0; i < n1; ++i) {
    int64_t a1 = rng.NextInt(0, 999);
    int64_t a2 = a1;  // perfectly correlated
    (void)db->Insert(
        "rel1", Tuple({Value(a1), Value(a2),
                       Value(rng.NextInt(0, n2 - 1)),
                       Value(rng.NextInt(0, 199)), Value(pay1)}));
  }
  for (int i = 0; i < n2; ++i)
    (void)db->Insert("rel2", Tuple({Value(int64_t{i}),
                                    Value(rng.NextInt(0, n3 - 1)),
                                    Value(pay2)}));
  for (int i = 0; i < n3; ++i)
    (void)db->Insert("rel3", Tuple({Value(int64_t{i}), Value(pay3)}));
  (void)db->DeclareKey("rel2", "joinattr2");
  (void)db->DeclareKey("rel3", "joinattr3");
  (void)db->CreateIndex("rel3", "joinattr3");
  for (const char* t : {"rel1", "rel2", "rel3"}) (void)db->Analyze(t);
}

const char* JoinKinds(const std::string& plan) {
  bool inl = plan.find("IndexNLJoin") != std::string::npos;
  bool hash = plan.find("HashJoin") != std::string::npos;
  if (inl && hash) return "hash + indexed-NL";
  if (inl) return "indexed-NL";
  return "hash only";
}

}  // namespace

int main() {
  std::printf("\n## Figures 4-6 scenario: mid-query plan modification\n\n");

  DatabaseOptions opts;
  opts.buffer_pool_pages = 64;
  opts.query_mem_pages = 400;
  Database db(opts);
  LoadScenario(&db, 60000, 4000, 300000);

  const std::string sql =
      "SELECT groupattr, AVG(selectattr1) AS avg1, AVG(selectattr2) AS avg2 "
      "FROM rel1, rel2, rel3 "
      "WHERE selectattr1 < 100 AND selectattr2 < 100 "
      "AND rel1.joinattr2 = rel2.joinattr2 "
      "AND rel2.joinattr3 = rel3.joinattr3 "
      "GROUP BY groupattr";

  QueryResult normal = MustRun(&db, sql, Mode(ReoptMode::kOff));
  QueryResult reopt = MustRun(&db, sql, Mode(ReoptMode::kPlanOnly));

  std::printf("| run | time ms | page I/Os | plan switches | joins used |\n");
  std::printf("|---|---|---|---|---|\n");
  std::printf("| normal       | %.1f | %llu | - | %s |\n",
              normal.report.sim_time_ms,
              static_cast<unsigned long long>(normal.report.page_ios),
              JoinKinds(normal.report.plan_before));
  std::printf("| re-optimized | %.1f | %llu | %d | %s |\n",
              reopt.report.sim_time_ms,
              static_cast<unsigned long long>(reopt.report.page_ios),
              reopt.report.plans_switched,
              JoinKinds(reopt.report.plan_after.empty()
                            ? reopt.report.plan_before
                            : reopt.report.plan_after));

  std::printf("\nInitial plan:\n%s", reopt.report.plan_before.c_str());
  std::printf("\nEvents:\n");
  for (const std::string& e : reopt.report.events)
    std::printf("  %s\n", e.c_str());
  if (!reopt.report.plan_after.empty()) {
    std::printf("\nPlan for the remainder after the switch:\n%s",
                reopt.report.plan_after.c_str());
  }
  double imp = (1.0 - reopt.report.sim_time_ms / normal.report.sim_time_ms);
  std::printf("\nimprovement: %+.1f%%\n", imp * 100);
  return 0;
}
