// Per-query execution context: storage handles, work counters, and the
// simulated clock.

#ifndef REOPTDB_EXEC_EXEC_CONTEXT_H_
#define REOPTDB_EXEC_EXEC_CONTEXT_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "plan/physical_plan.h"
#include "common/fault.h"
#include "common/rng.h"
#include "obs/query_trace.h"
#include "optimizer/cost_model.h"
#include "storage/buffer_pool.h"

namespace reoptdb {

/// \brief Cooperative cancellation flag for one query.
///
/// Cancel() may be called from anywhere (another thread, a signal handler
/// trampoline, a mid-execution hook); operators and the controller observe
/// it at stage boundaries and inside Next loops and unwind with
/// Status::Cancelled, running full temp-table/hook cleanup on the way out.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// \brief State shared by all operators of one query execution.
///
/// The simulated clock is derived, not stored: elapsed time = (disk I/Os
/// since query start) x t_io + (CPU work counters) x per-op costs + any
/// externally charged time (e.g. simulated re-optimization cost). This
/// makes "work already done" queryable at any point mid-flight, which the
/// re-optimization gate needs.
class ExecContext {
 public:
  ExecContext(BufferPool* pool, Catalog* catalog, const CostModel* cost,
              uint64_t seed = 7);

  BufferPool* pool() const { return pool_; }
  Catalog* catalog() const { return catalog_; }
  const CostModel& cost() const { return *cost_; }
  Rng* rng() { return &rng_; }

  /// Rows per NextBatch() pull; 1 selects the legacy row-at-a-time drain
  /// loops. Set once by the controller (from ReoptOptions::batch_size)
  /// before execution starts. Batched and row modes are bit-identical in
  /// results, ObservedStats, and charged work.
  size_t batch_size() const { return batch_size_; }
  void SetBatchSize(size_t n) { batch_size_ = n == 0 ? 1 : n; }
  bool batched() const { return batch_size_ > 1; }

  void ChargeTuples(uint64_t n) { cpu_.tuples += n; }
  void ChargeHash(uint64_t n) { cpu_.hash_ops += n; }
  void ChargeCmp(uint64_t n) { cpu_.cmp_ops += n; }
  void ChargeStat(uint64_t n) { cpu_.stat_ops += n; }
  void ChargeMinMax(uint64_t n) { cpu_.minmax_ops += n; }

  /// Adds simulated time not captured by counters (re-optimization cost).
  void ChargeExternalMs(double ms) { external_ms_ += ms; }

  /// Simulated milliseconds elapsed since this context was created.
  double SimElapsedMs() const;

  /// Page I/Os since this context was created.
  uint64_t PageIos() const;

  /// Multi-query interleaving support. Concurrent sessions share one
  /// DiskManager, so "stats since context creation" would charge every
  /// session for everyone's I/O. The WorkloadManager brackets each session
  /// step: BeginIoSlice() re-baselines (discarding other sessions' I/O
  /// since this session last ran), EndIoSlice() folds the step's own delta
  /// into a private accumulator. Single-query execution never calls these
  /// and keeps the original since-creation semantics.
  void BeginIoSlice() { disk_start_ = pool_->disk()->stats(); }
  void EndIoSlice() {
    DiskStats now = pool_->disk()->stats();
    io_acc_ = io_acc_ + (now - disk_start_);
    disk_start_ = now;
  }

  const CpuWork& cpu_work() const { return cpu_; }
  double external_ms() const { return external_ms_; }

  /// Appends a human-readable execution event (spills, reopt decisions);
  /// surfaced in the ExecutionReport. Decision events are a rendered view
  /// of the typed records in trace() — assert against those, not these.
  void AddEvent(std::string event) { events_.push_back(std::move(event)); }
  const std::vector<std::string>& events() const { return events_; }

  /// Structured trace of this execution: operator spans plus typed reopt
  /// decision records. Always present; operators and the controller write
  /// into it as they run.
  QueryTrace* trace() { return &trace_; }
  const QueryTrace& trace() const { return trace_; }

  /// 0 for the initial plan; bumped by the controller on every accepted
  /// plan switch so span node ids stay unambiguous across generations.
  int plan_generation() const { return plan_generation_; }
  void BumpPlanGeneration() { ++plan_generation_; }

  /// Hook invoked by a statistics collector the moment it finalizes
  /// (possibly mid-stage). Used by the paper's Section 2.3 extension:
  /// "if operators can respond to changes in memory allocation in
  /// mid-execution, our algorithm can be extended to take advantage".
  using CollectorHook = std::function<void(PlanNode*)>;
  void SetCollectorHook(CollectorHook hook) { hook_ = std::move(hook); }
  void NotifyCollectorFinalized(PlanNode* node) {
    if (hook_) hook_(node);
  }
  /// True while a collector hook is installed (tests assert no hook
  /// dangles after the controller unwinds).
  bool has_collector_hook() const { return static_cast<bool>(hook_); }

  /// This query's cancellation flag. Cancel() makes the next
  /// CheckCancelled() — stage boundaries and operator Next loops — return
  /// Status::Cancelled.
  CancelToken* cancel_token() { return &cancel_; }

  /// Cooperative deadline on the simulated clock; 0 disables. Exceeding it
  /// cancels the query at the next CheckCancelled().
  void SetDeadlineMs(double deadline_ms) { deadline_ms_ = deadline_ms; }
  double deadline_ms() const { return deadline_ms_; }

  /// OK unless the token was cancelled or the deadline passed.
  Status CheckCancelled() const;

  /// Fault-injection registry shared with this query (nullptr = none
  /// armed; reopt/memory-layer injection points check through here).
  FaultInjector* faults() const { return faults_; }
  void SetFaultInjector(FaultInjector* faults) { faults_ = faults; }

  /// Creates a temp heap file on this query's buffer pool.
  std::unique_ptr<HeapFile> MakeTempHeap() const {
    return std::make_unique<HeapFile>(pool_);
  }

  /// Snapshot bound for one table's scans: the query sees rows with append
  /// ordinal below `tuple_limit` that were not deleted at or before
  /// `epoch`. Captured per base table when the query starts so concurrent
  /// transactional DML (which only touches heaps at commit) stays invisible
  /// — the query reads the same rows no matter how writers interleave.
  struct TableSnapshot {
    uint64_t tuple_limit = HeapFile::kLatest;
    uint64_t epoch = HeapFile::kLatest;
  };
  void SetSnapshot(const std::string& table, TableSnapshot snap) {
    snapshots_[table] = snap;
  }
  /// nullptr when no bound was captured (temp tables, legacy callers):
  /// scans then see the latest state.
  const TableSnapshot* FindSnapshot(const std::string& table) const {
    auto it = snapshots_.find(table);
    return it == snapshots_.end() ? nullptr : &it->second;
  }

  /// Exchange-buffer registry (sharded execution): a kExchange leaf's
  /// `table` field names a buffer of already-delivered tuples bound here by
  /// the shard driver before the fragment runs. The buffer must outlive the
  /// fragment's execution; the binding is per-context (per node).
  void BindExchangeSource(const std::string& key,
                          const std::vector<Tuple>* rows) {
    exchange_sources_[key] = rows;
  }
  const std::vector<Tuple>* FindExchangeSource(const std::string& key) const {
    auto it = exchange_sources_.find(key);
    return it == exchange_sources_.end() ? nullptr : it->second;
  }
  void ClearExchangeSources() { exchange_sources_.clear(); }

 private:
  BufferPool* pool_;
  Catalog* catalog_;
  const CostModel* cost_;
  Rng rng_;
  CpuWork cpu_;
  DiskStats disk_start_;
  /// I/O folded in by EndIoSlice(); zero outside workload interleaving.
  DiskStats io_acc_;
  double external_ms_ = 0;
  std::vector<std::string> events_;
  QueryTrace trace_;
  int plan_generation_ = 0;
  CollectorHook hook_;
  CancelToken cancel_;
  double deadline_ms_ = 0;
  FaultInjector* faults_ = nullptr;
  size_t batch_size_ = 1024;  // TupleBatch::kDefaultCapacity
  std::map<std::string, TableSnapshot> snapshots_;
  std::map<std::string, const std::vector<Tuple>*> exchange_sources_;

};

}  // namespace reoptdb

#endif  // REOPTDB_EXEC_EXEC_CONTEXT_H_
