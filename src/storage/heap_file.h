// Heap file: an unordered collection of variable-length tuples in slotted
// pages.
//
// I/O discipline (drives the simulated cost accounting):
//  - Appends fill an in-memory tail page that is written to disk exactly
//    once when full (or on Flush) — one write per page, deterministic.
//  - Sequential scans read pages directly from the disk manager (one read
//    per page per scan). At the paper's buffer:data ratios (~1%) an LRU
//    pool gives sequential scans nothing, so bypassing it keeps costs
//    honest and matches the optimizer's scan cost formula.
//  - Point fetches (Fetch by rid, used by index probes) go through the
//    buffer pool, where repeated hits are genuinely free.

#ifndef REOPTDB_STORAGE_HEAP_FILE_H_
#define REOPTDB_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "types/tuple.h"

namespace reoptdb {

/// \brief Slotted-page heap file.
///
/// Supports append, point fetch by Rid, and sequential scan. Individual
/// tuple deletion is intentionally absent (tables are bulk-loaded; temp
/// files are destroyed wholesale).
class HeapFile {
 public:
  explicit HeapFile(BufferPool* pool) : pool_(pool) {}
  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;
  ~HeapFile();

  /// Appends a tuple, returning its Rid. Tuples must fit on one page.
  Result<Rid> Append(const Tuple& tuple);

  /// Writes the tail page to disk if dirty. Call after bulk loads so page
  /// counts (and subsequent scan costs) are exact.
  Status Flush();

  /// Reads the tuple at `rid` (buffer-pool cached).
  Result<Tuple> Fetch(const Rid& rid) const;

  uint64_t tuple_count() const { return tuple_count_; }
  size_t page_count() const { return pages_.size() + (tail_ ? 1 : 0); }
  uint64_t total_tuple_bytes() const { return total_tuple_bytes_; }

  /// Average serialized tuple size in bytes (0 when empty).
  double avg_tuple_bytes() const {
    return tuple_count_ == 0 ? 0.0
                             : static_cast<double>(total_tuple_bytes_) /
                                   static_cast<double>(tuple_count_);
  }

  /// Page id of the i-th flushed page (for index builds).
  PageId page_id(size_t ordinal) const { return pages_[ordinal]; }
  size_t flushed_page_count() const { return pages_.size(); }

  /// Chained FNV-1a over every appended tuple's serialized payload (length
  /// then bytes), maintained incrementally by Append. The query journal
  /// records it for materialized temp tables; recovery recomputes it with
  /// ComputeContentChecksum() before trusting rebound pages.
  uint64_t content_checksum() const { return content_checksum_; }

  /// Recomputes the content checksum by scanning the raw slot payloads in
  /// append order (charges the scan's page reads). Matches
  /// content_checksum() iff the stored bytes are intact and complete.
  Result<uint64_t> ComputeContentChecksum() const;

  /// Rebinds this (empty) file to already-on-disk pages, e.g. a temp table
  /// surviving a simulated crash. Counters and the content checksum are
  /// taken from the journal record; callers validate via
  /// ComputeContentChecksum() + tuple_count().
  Status AdoptPages(std::vector<PageId> pages, uint64_t tuple_count,
                    uint64_t total_tuple_bytes, uint64_t content_checksum);

  /// Detaches the file from its pages WITHOUT freeing them (the inverse of
  /// AdoptPages): returns the flushed page ids and leaves the file empty,
  /// so the destructor will not reclaim storage that must survive a crash.
  /// An unflushed tail page is genuinely lost (it was memory-only) and is
  /// freed here.
  std::vector<PageId> ReleasePages();

  /// Frees every page of the file. The file is reusable (empty) afterwards.
  Status Destroy();

  /// \brief Sequential scan cursor (direct disk reads).
  class Iterator {
   public:
    explicit Iterator(const HeapFile* file) : file_(file) {}

    /// Fetches the next tuple; returns false at end-of-file.
    Result<bool> Next(Tuple* out);

    void Reset() {
      page_ordinal_ = 0;
      slot_ = 0;
      loaded_ = false;
    }

   private:
    const HeapFile* file_;
    size_t page_ordinal_ = 0;
    uint32_t slot_ = 0;
    bool loaded_ = false;
    Page buf_;
  };

  Iterator Scan() const { return Iterator(this); }

 private:
  friend class Iterator;

  BufferPool* pool_;
  std::vector<PageId> pages_;      // flushed pages
  std::unique_ptr<Page> tail_;     // page being filled (not yet on disk)
  PageId tail_id_ = kInvalidPageId;
  uint64_t tuple_count_ = 0;
  uint64_t total_tuple_bytes_ = 0;
  uint64_t content_checksum_ = 1469598103934665603ULL;  // FNV-1a offset
};

namespace slotted {
/// Number of tuples stored on the page.
uint16_t Count(const Page& p);
/// Appends `payload` to the page; returns the slot or NotSupported if full.
Result<uint32_t> Insert(Page* p, const std::string& payload);
/// Returns a pointer/length for the slot's payload.
Status Read(const Page& p, uint32_t slot, const char** data, size_t* len);
}  // namespace slotted

}  // namespace reoptdb

#endif  // REOPTDB_STORAGE_HEAP_FILE_H_
