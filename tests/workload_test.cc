// WorkloadManager tests: overload-robust multi-query execution.
//
// The contract under test (DESIGN.md §11): under an overload mix, every
// submitted query reaches exactly one clean terminal state — completed
// with rows bit-identical to a solo run, or rejected/cancelled with a
// typed AdmissionReject record — and the system leaks nothing: no temp
// tables, no lost disk pages, no dangling broker grants. Contention is
// resolved by revocable grants (victims spill, reason "shrink") and a
// bounded-FIFO admission queue with anti-starvation aging.

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/workload_manager.h"
#include "gtest/gtest.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "test_util.h"
#include "tpcd/dbgen.h"
#include "tpcd/queries.h"

namespace reoptdb {
namespace {

using testing_util::Canon;
using testing_util::LoadEmpDept;

std::unique_ptr<Database> MakeTpcdDb() {
  DatabaseOptions opts;
  opts.buffer_pool_pages = 128;
  opts.query_mem_pages = 48;
  auto db = std::make_unique<Database>(opts);
  tpcd::TpcdOptions gen;
  gen.scale_factor = 0.003;
  gen.update_fraction = 1.0;  // stale catalog: reopt has work to do
  EXPECT_TRUE(tpcd::Load(db.get(), gen).ok());
  return db;
}

void ExpectNoTempTables(Database* db) {
  EXPECT_TRUE(db->catalog()->TempTableNames().empty())
      << db->catalog()->TempTableNames().size() << " temp tables leaked";
}

// Every terminal state must be typed: OK, or a rejection/cancellation with
// a matching AdmissionReject record, or a clean error Status.
void ExpectTypedTerminalStates(const std::vector<WorkloadQueryResult>& results,
                               const std::vector<AdmissionReject>& rejections) {
  std::map<uint64_t, const AdmissionReject*> by_id;
  for (const AdmissionReject& r : rejections) by_id[r.query_id] = &r;
  for (const WorkloadQueryResult& r : results) {
    if (r.status.ok()) continue;
    ASSERT_TRUE(r.status.code() == StatusCode::kResourceExhausted ||
                r.status.code() == StatusCode::kCancelled)
        << "query " << r.query_id
        << " ended with untyped error: " << r.status.ToString();
    auto it = by_id.find(r.query_id);
    ASSERT_NE(it, by_id.end())
        << "query " << r.query_id << " rejected without a typed record";
    if (r.status.code() == StatusCode::kCancelled) {
      EXPECT_EQ(it->second->reason, "queued_deadline");
    } else {
      EXPECT_TRUE(it->second->reason == "queue_full" ||
                  it->second->reason == "ask_exceeds_budget")
          << it->second->reason;
    }
  }
}

// ---------------------------------------------------------------------------
// The flagship acceptance test: a seeded 16-query overload mix over a
// global budget sized for about four queries.

TEST(WorkloadTest, OverloadMixIsRobustAndBitIdentical) {
  std::unique_ptr<Database> db = MakeTpcdDb();
  const std::vector<tpcd::TpcdQuery> suite = tpcd::AllQueries();
  const size_t live_before = db->disk()->live_pages();

  WorkloadOptions wo;
  wo.global_mem_pages = 48;  // solo-sized budget shared by the whole mix
  wo.min_grant_pages = 8;    // => at most ~6 concurrent grants
  wo.max_active = 4;
  wo.max_queue = 8;
  wo.reopt.mode = ReoptMode::kFull;

  WorkloadManager wm(db.get(), wo);
  std::vector<std::string> sqls;
  for (int i = 0; i < 16; ++i) sqls.push_back(suite[i % suite.size()].sql);
  for (const std::string& sql : sqls) wm.Submit(sql);

  Result<std::vector<WorkloadQueryResult>> run = wm.Run();
  REOPTDB_ASSERT_OK(run.status());
  const std::vector<WorkloadQueryResult>& results = run.value();
  ASSERT_EQ(results.size(), 16u);

  // 16 submissions into an 8-deep queue: admission control must have
  // rejected the overflow with typed records.
  EXPECT_FALSE(wm.rejections().empty());
  ExpectTypedTerminalStates(results, wm.rejections());

  // Contention over a 48-page budget with everything asking for all of it:
  // the broker must have revoked at least once.
  EXPECT_FALSE(wm.broker().revocations().empty());

  // Every completed query is bit-identical to its solo run.
  int completed = 0;
  int spills = 0;
  for (const WorkloadQueryResult& r : results) {
    if (!r.status.ok()) continue;
    ++completed;
    spills += static_cast<int>(r.result.report.trace.spills.size());
    Result<QueryResult> solo = db->ExecuteWith(r.sql, wo.reopt);
    REOPTDB_ASSERT_OK(solo.status());
    EXPECT_EQ(Canon(r.result.rows), Canon(solo.value().rows))
        << "query " << r.query_id << " (" << r.sql
        << ") diverged from its solo run";
  }
  EXPECT_GT(completed, 0);
  EXPECT_GT(spills, 0) << "a 48-page budget mix should spill somewhere";

  // Nothing leaked: grants, temp tables, disk pages.
  EXPECT_EQ(wm.broker().active(), 0u);
  EXPECT_DOUBLE_EQ(wm.broker().free_pages(), wm.broker().total_pages());
  ExpectNoTempTables(db.get());
  EXPECT_EQ(db->disk()->live_pages(), live_before);

  // The engine stays usable afterwards.
  Result<QueryResult> again = db->ExecuteWith(tpcd::Q5Sql(), wo.reopt);
  REOPTDB_ASSERT_OK(again.status());
}

// ---------------------------------------------------------------------------
// Revocation mid-flight: a second query arriving while the first is
// executing shaves the first's grant; the victim's not-yet-run operators
// spill with reason "shrink" instead of overrunning the revoked pages,
// and the controller suppresses revocation-only re-optimization.

TEST(WorkloadTest, RevocationTriggersShrinkSpill) {
  std::unique_ptr<Database> db = MakeTpcdDb();

  // Q8's late join builds reliably spill once their budget shrinks
  // mid-flight, at any mid-query revocation point.
  std::string sql;
  for (const tpcd::TpcdQuery& q : tpcd::AllQueries())
    if (std::string(q.name) == "Q8") sql = q.sql;
  ASSERT_FALSE(sql.empty());

  ReoptOptions reopt;
  reopt.mode = ReoptMode::kFull;
  reopt.theta2 = 1e12;  // never switch: isolates revocation behaviour

  // Solo timing reference for placing the second arrival mid-query.
  Result<QueryResult> solo = db->ExecuteWith(sql, reopt);
  REOPTDB_ASSERT_OK(solo.status());
  const double solo_ms = solo.value().report.sim_time_ms;
  ASSERT_GT(solo_ms, 0);

  WorkloadOptions wo;
  wo.global_mem_pages = 48;
  wo.min_grant_pages = 8;
  wo.max_active = 2;
  wo.reopt = reopt;

  WorkloadManager wm(db.get(), wo);
  const uint64_t victim = wm.Submit(sql);
  SubmitOptions late;
  late.arrival_ms = 0.05 * solo_ms;  // victim is mid-flight, operators open
  const uint64_t beneficiary = wm.Submit(sql, late);

  Result<std::vector<WorkloadQueryResult>> run = wm.Run();
  REOPTDB_ASSERT_OK(run.status());
  const std::vector<WorkloadQueryResult>& results = run.value();
  ASSERT_EQ(results.size(), 2u);

  // Both complete, bit-identical to the solo run.
  for (const WorkloadQueryResult& r : results) {
    REOPTDB_ASSERT_OK(r.status);
    EXPECT_EQ(Canon(r.result.rows), Canon(solo.value().rows));
  }

  // The broker revoked from the victim for the beneficiary, and the
  // victim's trace carries the typed record.
  ASSERT_FALSE(wm.broker().revocations().empty());
  const RevocationEvent& rev = wm.broker().revocations().front();
  EXPECT_EQ(rev.victim_query_id, victim);
  EXPECT_EQ(rev.beneficiary_query_id, beneficiary);
  EXPECT_GT(rev.pages, 0);

  const QueryTrace& victim_trace = results[0].result.report.trace;
  ASSERT_FALSE(victim_trace.revocations.empty());

  // The revocation-triggered spill: at least one of the victim's spills
  // must carry reason "shrink" (its budget at spill time was below the
  // budget it opened with).
  bool shrink_spill = false;
  for (const SpillEvent& s : victim_trace.spills)
    shrink_spill |= s.reason == "shrink";
  EXPECT_TRUE(shrink_spill)
      << "victim recorded " << victim_trace.spills.size()
      << " spills but none with reason \"shrink\"";

  EXPECT_EQ(wm.broker().active(), 0u);
  ExpectNoTempTables(db.get());
}

// Oscillation damping: a revocation alone (no new collector feedback
// since the last gate decision) must not gate a re-optimization. The
// suppression is observable as a revocation_only Eq2Check that did not
// fire. The plan's sort stage sits above the aggregate, so its stage
// boundary delivers no new collectors — the pure-revocation case.

TEST(WorkloadTest, RevocationOnlyGateIsSuppressed) {
  Database db;
  LoadEmpDept(&db, 3000, 250);
  const std::string sql =
      "SELECT dept_id, SUM(salary) FROM emp GROUP BY dept_id "
      "ORDER BY dept_id";

  Result<SelectStmtAst> ast = ParseSelect(sql);
  REOPTDB_ASSERT_OK(ast.status());
  Result<QuerySpec> spec = Bind(ast.value(), *db.catalog());
  REOPTDB_ASSERT_OK(spec.status());

  ReoptOptions ropts;
  ropts.mode = ReoptMode::kFull;
  OptimizerOptions oopts = db.options().optimizer;
  oopts.assumed_mem_pages = 32;
  DynamicReoptimizer reopt(db.catalog(), &db.cost_model(), &db.calibration(),
                           oopts, ropts, /*query_mem_pages=*/32);
  ExecContext ctx(db.buffer_pool(), db.catalog(), &db.cost_model());
  std::vector<Tuple> rows;
  Schema schema;
  Result<std::unique_ptr<QuerySession>> session =
      reopt.StartSession(spec.value(), &ctx, &rows, &schema);
  REOPTDB_ASSERT_OK(session.status());

  int steps = 0;
  while (true) {
    Result<bool> done = session.value()->Step();
    REOPTDB_ASSERT_OK(done.status());
    if (done.value()) break;
    if (++steps == 1) session.value()->OnGrantChanged(6);  // broker shave
    ASSERT_LT(steps, 100) << "query did not terminate";
  }
  ExecutionReport rep = session.value()->TakeReport();

  int suppressed = 0;
  for (const Eq2Check& c : rep.trace.eq2_checks) {
    if (!c.revocation_only) continue;
    ++suppressed;
    EXPECT_FALSE(c.fired) << "suppressed gate must not fire";
  }
  EXPECT_EQ(suppressed, 1)
      << "the post-shave collector-less stage must record exactly one "
         "revocation-only suppression";
  EXPECT_EQ(rep.plans_switched, 0);

  // The shrunken query still answers correctly.
  Result<QueryResult> reference = db.Execute(sql);
  REOPTDB_ASSERT_OK(reference.status());
  EXPECT_EQ(Canon(rows), Canon(reference.value().rows));
}

// ---------------------------------------------------------------------------
// Anti-starvation aging: a stream of small queries cannot starve a queued
// large query once the head-skip bound is hit.

TEST(WorkloadTest, SmallQueryStreamCannotStarveLargeQuery) {
  const std::vector<tpcd::TpcdQuery> suite = tpcd::AllQueries();

  // Runs the mix: four small queries admitted first, then the large query
  // (needs nearly the whole budget), then four more smalls behind it.
  // Returns started_ms keyed by submit index (large = index 4).
  auto run_mix = [&](int max_head_skips, std::vector<double>* started,
                     std::vector<Status>* statuses) {
    std::unique_ptr<Database> db = MakeTpcdDb();
    WorkloadOptions wo;
    wo.global_mem_pages = 64;
    wo.max_active = 4;
    wo.max_queue = 16;
    wo.max_head_skips = max_head_skips;
    wo.reopt.mode = ReoptMode::kFull;

    WorkloadManager wm(db.get(), wo);
    SubmitOptions small;
    small.ask_pages = 16;
    small.min_grant_pages = 16;  // min == ask: small grants are irrevocable
    SubmitOptions large;
    large.ask_pages = 60;
    large.min_grant_pages = 60;  // infeasible while any small holds 16
    for (int i = 0; i < 4; ++i)
      wm.Submit(suite[i % suite.size()].sql, small);
    wm.Submit(tpcd::Q5Sql(), large);
    for (int i = 4; i < 8; ++i)
      wm.Submit(suite[i % suite.size()].sql, small);

    Result<std::vector<WorkloadQueryResult>> run = wm.Run();
    REOPTDB_ASSERT_OK(run.status());
    started->clear();
    statuses->clear();
    for (const WorkloadQueryResult& r : run.value()) {
      started->push_back(r.started_ms);
      statuses->push_back(r.status);
    }
    ExpectNoTempTables(db.get());
  };

  // With a bounded head-skip count the large query (submit index 4) must
  // be admitted before the tail smalls (indices 7, 8): after two skips
  // admission turns strictly FIFO and the budget drains to the head.
  std::vector<double> started;
  std::vector<Status> statuses;
  run_mix(/*max_head_skips=*/2, &started, &statuses);
  ASSERT_EQ(started.size(), 9u);
  for (const Status& s : statuses) REOPTDB_EXPECT_OK(s);
  EXPECT_LT(started[4], started[7])
      << "large query started after a younger small one despite aging";
  EXPECT_LT(started[4], started[8]);

  // Sanity check of the mechanism: with an effectively unbounded skip
  // count the small stream does starve the large query past the tail.
  run_mix(/*max_head_skips=*/1000, &started, &statuses);
  ASSERT_EQ(started.size(), 9u);
  for (const Status& s : statuses) REOPTDB_EXPECT_OK(s);
  EXPECT_GT(started[4], started[8])
      << "unbounded skips should admit every small query first";
}

// ---------------------------------------------------------------------------
// Queued-time-vs-deadline: waiting in the admission queue counts against
// the query's deadline, and cancellation out of the queue is clean.

TEST(WorkloadTest, QueuedWaitCountsAgainstDeadline) {
  std::unique_ptr<Database> db = MakeTpcdDb();
  const size_t live_before = db->disk()->live_pages();

  WorkloadOptions wo;
  wo.global_mem_pages = 48;
  wo.max_active = 1;  // the hog serializes everything behind it
  wo.reopt.mode = ReoptMode::kFull;

  WorkloadManager wm(db.get(), wo);
  const uint64_t hog = wm.Submit(tpcd::Q5Sql());
  SubmitOptions impatient;
  impatient.reopt = wo.reopt;
  impatient.reopt->deadline_ms = 1e-3;  // expires while queued behind hog
  const uint64_t cancelled = wm.Submit(tpcd::Q5Sql(), impatient);

  Result<std::vector<WorkloadQueryResult>> run = wm.Run();
  REOPTDB_ASSERT_OK(run.status());
  const std::vector<WorkloadQueryResult>& results = run.value();
  ASSERT_EQ(results.size(), 2u);

  EXPECT_EQ(results[0].query_id, hog);
  REOPTDB_EXPECT_OK(results[0].status);

  EXPECT_EQ(results[1].query_id, cancelled);
  EXPECT_EQ(results[1].status.code(), StatusCode::kCancelled);
  ASSERT_EQ(wm.rejections().size(), 1u);
  EXPECT_EQ(wm.rejections()[0].query_id, cancelled);
  EXPECT_EQ(wm.rejections()[0].reason, "queued_deadline");
  EXPECT_EQ(results[1].started_ms, 0) << "cancelled query must never start";

  // Full cleanup: the cancelled query held no grant, no pages, no temps.
  EXPECT_EQ(wm.broker().active(), 0u);
  ExpectNoTempTables(db.get());
  EXPECT_EQ(db->disk()->live_pages(), live_before);
}

// ---------------------------------------------------------------------------
// Queue overflow: submissions past max_queue are rejected immediately with
// a typed record, and the admitted ones are unaffected.

TEST(WorkloadTest, QueueOverflowRejectsTyped) {
  Database db;
  LoadEmpDept(&db, 200, 10);
  const std::string sql =
      "SELECT emp.dept_id, SUM(salary) FROM emp, dept "
      "WHERE emp.dept_id = dept.dept_id GROUP BY emp.dept_id";
  Result<QueryResult> solo = db.Execute(sql);
  REOPTDB_ASSERT_OK(solo.status());

  WorkloadOptions wo;
  wo.max_active = 1;
  wo.max_queue = 2;
  WorkloadManager wm(&db, wo);
  for (int i = 0; i < 5; ++i) wm.Submit(sql);

  // Admission happens in Run(): all five hit the queue, capacity two.
  ASSERT_EQ(wm.rejections().size(), 3u);
  for (const AdmissionReject& r : wm.rejections())
    EXPECT_EQ(r.reason, "queue_full");

  Result<std::vector<WorkloadQueryResult>> run = wm.Run();
  REOPTDB_ASSERT_OK(run.status());
  int ok = 0;
  for (const WorkloadQueryResult& r : run.value()) {
    if (!r.status.ok()) {
      EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
      continue;
    }
    ++ok;
    EXPECT_EQ(Canon(r.result.rows), Canon(solo.value().rows));
  }
  EXPECT_EQ(ok, 2);
  ExpectTypedTerminalStates(run.value(), wm.rejections());
}

// An ask that can never fit — even on an idle system — is rejected with
// reason "ask_exceeds_budget" instead of wedging the queue.

TEST(WorkloadTest, InfeasibleAskRejectedNotWedged) {
  Database db;
  LoadEmpDept(&db, 200, 10);
  WorkloadOptions wo;
  wo.global_mem_pages = 32;
  WorkloadManager wm(&db, wo);
  SubmitOptions huge;
  huge.ask_pages = 64;
  huge.min_grant_pages = 64;
  const uint64_t id = wm.Submit("SELECT eid FROM emp", huge);

  Result<std::vector<WorkloadQueryResult>> run = wm.Run();
  REOPTDB_ASSERT_OK(run.status());
  ASSERT_EQ(run.value().size(), 1u);
  EXPECT_EQ(run.value()[0].status.code(), StatusCode::kResourceExhausted);
  ASSERT_EQ(wm.rejections().size(), 1u);
  EXPECT_EQ(wm.rejections()[0].query_id, id);
  EXPECT_EQ(wm.rejections()[0].reason, "ask_exceeds_budget");
}

// ---------------------------------------------------------------------------
// Determinism: the same mix on identically-seeded databases reproduces the
// same clock, the same rejections, and the same per-query outcomes.

TEST(WorkloadTest, WorkloadIsDeterministic) {
  auto run_once = [](std::vector<double>* finished, double* now,
                     size_t* rejections) {
    std::unique_ptr<Database> db = MakeTpcdDb();
    WorkloadOptions wo;
    wo.global_mem_pages = 48;
    wo.max_active = 3;
    wo.max_queue = 4;
    wo.reopt.mode = ReoptMode::kFull;
    WorkloadManager wm(db.get(), wo);
    const std::vector<tpcd::TpcdQuery> suite = tpcd::AllQueries();
    for (int i = 0; i < 6; ++i) wm.Submit(suite[i % suite.size()].sql);
    Result<std::vector<WorkloadQueryResult>> run = wm.Run();
    REOPTDB_ASSERT_OK(run.status());
    finished->clear();
    for (const WorkloadQueryResult& r : run.value())
      finished->push_back(r.finished_ms);
    *now = wm.now_ms();
    *rejections = wm.rejections().size();
  };

  std::vector<double> f1, f2;
  double n1 = 0, n2 = 0;
  size_t r1 = 0, r2 = 0;
  run_once(&f1, &n1, &r1);
  run_once(&f2, &n2, &r2);
  EXPECT_EQ(f1, f2);
  EXPECT_DOUBLE_EQ(n1, n2);
  EXPECT_EQ(r1, r2);
}

}  // namespace
}  // namespace reoptdb
