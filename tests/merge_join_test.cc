// Tests for the sort-merge join operator and its optimizer integration.

#include "exec/scheduler.h"
#include "gtest/gtest.h"
#include "memory/memory_manager.h"
#include "optimizer/optimizer.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "test_util.h"

namespace reoptdb {
namespace {

using testing_util::Canon;
using testing_util::LoadEmpDept;

class MergeJoinTest : public ::testing::Test {
 protected:
  MergeJoinTest() { LoadEmpDept(&db_, 400, 10); }

  /// Hand-builds sort(emp) MERGE sort(dept) on dept_id and executes it.
  Result<std::vector<Tuple>> RunHandBuiltMergeJoin() {
    auto scan_emp = std::make_unique<PlanNode>();
    scan_emp->kind = OpKind::kSeqScan;
    scan_emp->table = "emp";
    scan_emp->alias = "emp";
    scan_emp->output_schema = db_.catalog()->Get("emp").value()->schema;

    auto scan_dept = std::make_unique<PlanNode>();
    scan_dept->kind = OpKind::kSeqScan;
    scan_dept->table = "dept";
    scan_dept->alias = "dept";
    scan_dept->output_schema = db_.catalog()->Get("dept").value()->schema;

    auto sort_emp = std::make_unique<PlanNode>();
    sort_emp->kind = OpKind::kSort;
    sort_emp->sort_keys = {{"emp.dept_id", true}};
    sort_emp->output_schema = scan_emp->output_schema;
    sort_emp->mem_budget_pages = 64;
    sort_emp->children.push_back(std::move(scan_emp));

    auto sort_dept = std::make_unique<PlanNode>();
    sort_dept->kind = OpKind::kSort;
    sort_dept->sort_keys = {{"dept.dept_id", true}};
    sort_dept->output_schema = scan_dept->output_schema;
    sort_dept->mem_budget_pages = 64;
    sort_dept->children.push_back(std::move(scan_dept));

    auto join = std::make_unique<PlanNode>();
    join->kind = OpKind::kMergeJoin;
    join->left_keys = {"emp.dept_id"};
    join->right_keys = {"dept.dept_id"};
    join->output_schema = Schema::Concat(sort_emp->output_schema,
                                         sort_dept->output_schema);
    join->children.push_back(std::move(sort_emp));
    join->children.push_back(std::move(sort_dept));
    int id = 0;
    join->PostOrder([&](PlanNode* n) {
      n->id = id++;
      n->improved = n->est;
    });

    ExecContext ctx(db_.buffer_pool(), db_.catalog(), &db_.cost_model());
    ASSIGN_OR_RETURN(std::unique_ptr<PipelineExecutor> exec,
                     PipelineExecutor::Create(&ctx, join.get()));
    std::vector<Tuple> rows;
    while (exec->HasMoreStages()) {
      ASSIGN_OR_RETURN(PipelineExecutor::StageResult stage,
                       exec->RunNextStage(&rows));
      if (stage.finished) break;
    }
    RETURN_IF_ERROR(exec->Close());
    return rows;
  }

  Database db_;
};

TEST_F(MergeJoinTest, MatchesHashJoinResults) {
  Result<std::vector<Tuple>> merge_rows = RunHandBuiltMergeJoin();
  ASSERT_TRUE(merge_rows.ok()) << merge_rows.status().ToString();
  // Every emp row matches exactly one dept row.
  EXPECT_EQ(merge_rows.value().size(), 400u);

  ReoptOptions off;
  off.mode = ReoptMode::kOff;
  Result<QueryResult> reference = db_.ExecuteWith(
      "SELECT emp_id, dept_name FROM emp, dept "
      "WHERE emp.dept_id = dept.dept_id",
      off);
  ASSERT_TRUE(reference.ok());
  // Project the hand-built join's output down to the same two columns.
  std::vector<Tuple> projected;
  for (const Tuple& t : merge_rows.value())
    projected.push_back(Tuple({t.at(0), t.at(5)}));  // emp_id, dept_name
  EXPECT_EQ(Canon(projected), Canon(reference.value().rows));
}

TEST_F(MergeJoinTest, DuplicateKeysCrossProduct) {
  // Self-join of dept on region_id: regions {0:{0,3,6,9}, 1:{1,4,7},
  // 2:{2,5,8}} -> 4*4 + 3*3 + 3*3 = 34 pairs.
  Database db;
  LoadEmpDept(&db, 10, 10);
  ReoptOptions off;
  off.mode = ReoptMode::kOff;
  Result<QueryResult> hash = db.ExecuteWith(
      "SELECT d1.dept_id FROM dept d1, dept d2 "
      "WHERE d1.region_id = d2.region_id",
      off);
  ASSERT_TRUE(hash.ok());
  EXPECT_EQ(hash.value().rows.size(), 34u);
}

TEST_F(MergeJoinTest, OptimizerCanChooseMergeJoin) {
  // With sort-merge enabled the DP must at least *consider* it; verify the
  // search space contains it by forcing the choice: disable nothing and
  // check a query where sorts are cheap (inputs fit memory) still returns
  // correct results whichever join wins.
  SelectStmtAst ast = ParseSelect(
      "SELECT emp_id FROM emp, dept WHERE emp.dept_id = dept.dept_id")
      .value();
  QuerySpec spec = Bind(ast, *db_.catalog()).value();

  OptimizerOptions with_smj;
  with_smj.enable_sort_merge_join = true;
  OptimizerOptions without;
  without.enable_sort_merge_join = false;
  Optimizer a(db_.catalog(), &db_.cost_model(), with_smj);
  Optimizer b(db_.catalog(), &db_.cost_model(), without);
  OptimizeResult ra = a.Plan(spec).value();
  OptimizeResult rb = b.Plan(spec).value();
  // The larger search space enumerates strictly more candidates...
  EXPECT_GT(ra.plans_enumerated, rb.plans_enumerated);
  // ...and never yields a worse plan estimate.
  EXPECT_LE(ra.plan->est.cost_total_ms, rb.plan->est.cost_total_ms * 1.0001);
}

TEST_F(MergeJoinTest, EmptyInputs) {
  Database db;
  LoadEmpDept(&db, 5, 5);
  ReoptOptions off;
  off.mode = ReoptMode::kOff;
  // Empty left side after filter.
  Result<QueryResult> r = db.ExecuteWith(
      "SELECT emp_id FROM emp, dept "
      "WHERE emp.dept_id = dept.dept_id AND emp_id < 0",
      off);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().rows.empty());
}

}  // namespace
}  // namespace reoptdb
