// Tests for DiskManager / BufferPool / HeapFile.

#include "common/rng.h"
#include "gtest/gtest.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"

namespace reoptdb {
namespace {

TEST(DiskManagerTest, AllocateReadWrite) {
  DiskManager disk;
  PageId id = disk.AllocatePage();
  Page p;
  p.Zero();
  p.data[0] = 'x';
  ASSERT_TRUE(disk.WritePage(id, p).ok());
  Page q;
  ASSERT_TRUE(disk.ReadPage(id, &q).ok());
  EXPECT_EQ(q.data[0], 'x');
  EXPECT_EQ(disk.stats().page_reads, 1u);
  EXPECT_EQ(disk.stats().page_writes, 1u);
  EXPECT_EQ(disk.stats().pages_allocated, 1u);
}

TEST(DiskManagerTest, FreedPageInaccessible) {
  DiskManager disk;
  PageId id = disk.AllocatePage();
  ASSERT_TRUE(disk.FreePage(id).ok());
  Page p;
  EXPECT_FALSE(disk.ReadPage(id, &p).ok());
  EXPECT_FALSE(disk.FreePage(id).ok());
  EXPECT_EQ(disk.live_pages(), 0u);
}

TEST(DiskManagerTest, CorruptPageSurfacesAsDataLossAfterOneReRead) {
  DiskManager disk;
  PageId id = disk.AllocatePage();
  Page p;
  p.Zero();
  p.data[0] = 'x';
  ASSERT_TRUE(disk.WritePage(id, p).ok());
  ASSERT_TRUE(disk.CorruptPageForTesting(id).ok());

  // On-media corruption is persistent, not transient: one confirming
  // re-read (to rule out a bus glitch) and the failure surfaces typed as
  // kDataLoss — the transient-retry budget is not burned, and the corrupt
  // bytes are never handed to the caller.
  Page q;
  Status st = disk.ReadPage(id, &q);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_NE(st.ToString().find("checksum mismatch"), std::string::npos);
  EXPECT_EQ(disk.stats().io_retries, 1u);  // the confirming re-read only
  EXPECT_EQ(disk.stats().retry_penalty_ms, DiskManager::kRetryBackoffBaseMs);
  EXPECT_EQ(disk.stats().data_loss_reads, 1u);
  EXPECT_EQ(disk.stats().page_reads, 0u);  // a failed read charges nothing

  // A rewrite re-records the checksum: the page is readable again.
  ASSERT_TRUE(disk.WritePage(id, p).ok());
  ASSERT_TRUE(disk.ReadPage(id, &q).ok());
  EXPECT_EQ(q.data[0], 'x');
}

TEST(DiskManagerTest, ChecksumVerifiedOnEveryReadPath) {
  // Corruption behind a buffer pool: the pool's miss path goes through
  // ReadPage, so the checksum rejects the bytes before they reach a frame.
  DiskManager disk;
  BufferPool pool(&disk, 8);
  PageId id = disk.AllocatePage();
  Page p;
  p.Zero();
  p.data[7] = 42;
  ASSERT_TRUE(disk.WritePage(id, p).ok());
  ASSERT_TRUE(disk.CorruptPageForTesting(id).ok());
  EXPECT_FALSE(PageGuard::Fetch(&pool, id).ok());
}

TEST(DiskManagerTest, InjectedReadFaultRetriesThenSurfaces) {
  // A transient injected IoError is absorbed by one retry; a persistent
  // (every-call) fault exhausts the retries and surfaces.
  FaultInjector fi;
  FaultSpec nth1;
  nth1.trigger = FaultTrigger::kNthCall;
  nth1.nth = 1;
  ASSERT_TRUE(fi.Arm(faults::kStorageRead, nth1).ok());
  DiskManager disk;
  disk.set_fault_injector(&fi);
  PageId id = disk.AllocatePage();
  Page p;
  ASSERT_TRUE(disk.ReadPage(id, &p).ok());  // transient: absorbed
  EXPECT_EQ(disk.stats().io_retries, 1u);

  FaultSpec every;
  every.trigger = FaultTrigger::kEveryCall;
  ASSERT_TRUE(fi.Arm(faults::kStorageRead, every).ok());
  Status st = disk.ReadPage(id, &p);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

TEST(BufferPoolTest, HitAvoidsDiskRead) {
  DiskManager disk;
  BufferPool pool(&disk, 8);
  PageId id = disk.AllocatePage();
  ASSERT_TRUE(pool.FetchPage(id).ok());
  ASSERT_TRUE(pool.Unpin(id, false).ok());
  uint64_t reads = disk.stats().page_reads;
  ASSERT_TRUE(pool.FetchPage(id).ok());
  ASSERT_TRUE(pool.Unpin(id, false).ok());
  EXPECT_EQ(disk.stats().page_reads, reads);  // served from the pool
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST(BufferPoolTest, EvictionWritesBackDirty) {
  DiskManager disk;
  BufferPool pool(&disk, 4);
  std::vector<PageId> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(disk.AllocatePage());
  // Dirty the first page.
  {
    Result<Page*> p = pool.FetchPage(ids[0]);
    ASSERT_TRUE(p.ok());
    p.value()->data[0] = 'd';
    ASSERT_TRUE(pool.Unpin(ids[0], true).ok());
  }
  // Flood the pool to force eviction of ids[0].
  for (int i = 1; i < 4; ++i) {
    ASSERT_TRUE(pool.FetchPage(ids[i]).ok());
    ASSERT_TRUE(pool.Unpin(ids[i], false).ok());
  }
  PageId extra = disk.AllocatePage();
  ASSERT_TRUE(pool.FetchPage(extra).ok());
  ASSERT_TRUE(pool.Unpin(extra, false).ok());
  EXPECT_GE(pool.stats().dirty_evictions, 1u);
  Page back;
  ASSERT_TRUE(disk.ReadPage(ids[0], &back).ok());
  EXPECT_EQ(back.data[0], 'd');
}

TEST(BufferPoolTest, AllPinnedIsResourceExhausted) {
  DiskManager disk;
  BufferPool pool(&disk, 4);
  std::vector<PageId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(disk.AllocatePage());
    ASSERT_TRUE(pool.FetchPage(ids[i]).ok());  // keep pinned
  }
  PageId extra = disk.AllocatePage();
  Result<Page*> r = pool.FetchPage(extra);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  for (PageId id : ids) ASSERT_TRUE(pool.Unpin(id, false).ok());
}

TEST(BufferPoolTest, UnpinErrors) {
  DiskManager disk;
  BufferPool pool(&disk, 4);
  PageId id = disk.AllocatePage();
  EXPECT_FALSE(pool.Unpin(id, false).ok());  // not resident
  ASSERT_TRUE(pool.FetchPage(id).ok());
  ASSERT_TRUE(pool.Unpin(id, false).ok());
  EXPECT_FALSE(pool.Unpin(id, false).ok());  // pin count already 0
}

TEST(PageGuardTest, ReleasesOnDestruction) {
  DiskManager disk;
  BufferPool pool(&disk, 4);
  PageId id = disk.AllocatePage();
  {
    Result<PageGuard> g = PageGuard::Fetch(&pool, id);
    ASSERT_TRUE(g.ok());
    EXPECT_TRUE(g.value().valid());
  }
  // If the guard leaked its pin this second fetch-all would fail.
  for (int i = 0; i < 8; ++i) {
    PageId extra = disk.AllocatePage();
    ASSERT_TRUE(pool.FetchPage(extra).ok());
    ASSERT_TRUE(pool.Unpin(extra, false).ok());
  }
}

class HeapFileTest : public ::testing::Test {
 protected:
  HeapFileTest() : pool_(&disk_, 16) {}
  DiskManager disk_;
  BufferPool pool_;
};

TEST_F(HeapFileTest, AppendFetchScan) {
  HeapFile heap(&pool_);
  std::vector<Rid> rids;
  for (int i = 0; i < 100; ++i) {
    Result<Rid> rid =
        heap.Append(Tuple({Value(int64_t{i}), Value("row" + std::to_string(i))}));
    ASSERT_TRUE(rid.ok());
    rids.push_back(rid.value());
  }
  EXPECT_EQ(heap.tuple_count(), 100u);

  // Point fetch (including rows still on the in-memory tail page).
  for (int i = 0; i < 100; i += 7) {
    Result<Tuple> t = heap.Fetch(rids[i]);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    EXPECT_EQ(t.value().at(0).AsInt(), i);
  }

  // Scan sees all rows in order.
  HeapFile::Iterator it = heap.Scan();
  Tuple t;
  int count = 0;
  while (true) {
    Result<bool> more = it.Next(&t);
    ASSERT_TRUE(more.ok());
    if (!more.value()) break;
    EXPECT_EQ(t.at(0).AsInt(), count);
    ++count;
  }
  EXPECT_EQ(count, 100);
}

TEST_F(HeapFileTest, SpillsToMultiplePages) {
  HeapFile heap(&pool_);
  std::string big(1000, 'x');
  for (int i = 0; i < 100; ++i)
    ASSERT_TRUE(heap.Append(Tuple({Value(int64_t{i}), Value(big)})).ok());
  EXPECT_GT(heap.page_count(), 10u);
  ASSERT_TRUE(heap.Flush().ok());
  EXPECT_EQ(heap.flushed_page_count(), heap.page_count());

  // Every scan of a flushed file reads every page from disk.
  uint64_t reads_before = disk_.stats().page_reads;
  HeapFile::Iterator it = heap.Scan();
  Tuple t;
  int count = 0;
  while (it.Next(&t).value()) ++count;
  EXPECT_EQ(count, 100);
  EXPECT_EQ(disk_.stats().page_reads - reads_before, heap.page_count());
}

TEST_F(HeapFileTest, WriteOncePerPage) {
  HeapFile heap(&pool_);
  uint64_t writes_before = disk_.stats().page_writes;
  std::string big(1500, 'y');
  for (int i = 0; i < 50; ++i)
    ASSERT_TRUE(heap.Append(Tuple({Value(big)})).ok());
  ASSERT_TRUE(heap.Flush().ok());
  EXPECT_EQ(disk_.stats().page_writes - writes_before, heap.page_count());
}

TEST_F(HeapFileTest, OversizeTupleRejected) {
  HeapFile heap(&pool_);
  std::string huge(kPageSize, 'z');
  Result<Rid> r = heap.Append(Tuple({Value(huge)}));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(HeapFileTest, DestroyFreesPages) {
  HeapFile heap(&pool_);
  std::string big(1000, 'x');
  for (int i = 0; i < 100; ++i)
    ASSERT_TRUE(heap.Append(Tuple({Value(big)})).ok());
  ASSERT_TRUE(heap.Flush().ok());
  size_t live = disk_.live_pages();
  ASSERT_TRUE(heap.Destroy().ok());
  EXPECT_LT(disk_.live_pages(), live);
  EXPECT_EQ(heap.tuple_count(), 0u);
  EXPECT_EQ(heap.page_count(), 0u);
}

TEST_F(HeapFileTest, AvgTupleBytes) {
  HeapFile heap(&pool_);
  ASSERT_TRUE(heap.Append(Tuple({Value(int64_t{1})})).ok());
  ASSERT_TRUE(heap.Append(Tuple({Value(int64_t{2})})).ok());
  Tuple t({Value(int64_t{1})});
  EXPECT_DOUBLE_EQ(heap.avg_tuple_bytes(),
                   static_cast<double>(t.SerializedSize()));
}

TEST(SlottedPageTest, InsertUntilFullThenRead) {
  Page p;
  p.Zero();
  std::string payload(100, 'a');
  int inserted = 0;
  while (true) {
    Result<uint32_t> slot = slotted::Insert(&p, payload);
    if (!slot.ok()) {
      EXPECT_EQ(slot.status().code(), StatusCode::kNotSupported);
      break;
    }
    ++inserted;
  }
  EXPECT_GT(inserted, 70);  // ~8192 / (100+4)
  EXPECT_EQ(slotted::Count(p), inserted);
  const char* data;
  size_t len;
  ASSERT_TRUE(slotted::Read(p, 0, &data, &len).ok());
  EXPECT_EQ(len, payload.size());
  EXPECT_FALSE(slotted::Read(p, inserted, &data, &len).ok());
}

}  // namespace
}  // namespace reoptdb
