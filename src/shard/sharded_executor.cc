#include "shard/sharded_executor.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "exec/exec_context.h"
#include "exec/scheduler.h"
#include "optimizer/optimizer.h"
#include "optimizer/remainder_sql.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "reopt/controller.h"
#include "reopt/query_journal.h"
#include "shard/scrubber.h"

namespace reoptdb {

namespace {

constexpr int kCoordEndpoint = -1;
/// ExecContext exchange-binding keys for a fragment's two inputs.
constexpr char kBuildKey[] = "__exchange_build";
constexpr char kProbeKey[] = "__exchange_probe";

const char* StrategyName(bool broadcast) {
  return broadcast ? "broadcast" : "repartition";
}

double MsgsFor(double rows) {
  return std::ceil(rows / static_cast<double>(ExchangeChannel::kTuplesPerMessage));
}

uint64_t SumBytes(const std::vector<Tuple>& rows) {
  uint64_t b = 0;
  for (const Tuple& t : rows) b += t.SerializedSize();
  return b;
}

Result<std::vector<size_t>> KeyIdxs(const Schema& s,
                                    const std::vector<std::string>& keys) {
  std::vector<size_t> out;
  out.reserve(keys.size());
  for (const std::string& k : keys) {
    ASSIGN_OR_RETURN(size_t idx, s.IndexOf(k));
    out.push_back(idx);
  }
  return out;
}

/// Projected per-stage costs of the two distribution strategies, from the
/// cost model's network term plus a hash-work proxy for per-node join
/// effort. `build_from_coord` = the build input scatters from the
/// coordinator temp (stage > 0) rather than node-to-node (stage 0).
struct StrategyCosts {
  double broadcast_ms = 0;
  double repartition_ms = 0;
};

StrategyCosts EstimateStrategies(const CostModel& cm, double build_rows,
                                 double build_bytes, double probe_rows,
                                 double probe_bytes, int n,
                                 bool build_from_coord) {
  StrategyCosts c;
  const double nd = std::max(1, n);
  const double bmsgs = MsgsFor(build_rows), pmsgs = MsgsFor(probe_rows);
  const double cross = (nd - 1) / nd;  // fraction of rows changing nodes
  if (build_from_coord) {
    c.broadcast_ms = cm.NetTransfer(build_bytes * nd, bmsgs * nd);
    c.repartition_ms = cm.NetTransfer(build_bytes, bmsgs) +
                       cm.NetTransfer(probe_bytes * cross, pmsgs * cross);
  } else {
    c.broadcast_ms = cm.NetTransfer(build_bytes * (nd - 1), bmsgs * (nd - 1));
    c.repartition_ms = cm.NetTransfer((build_bytes + probe_bytes) * cross,
                                      (bmsgs + pmsgs) * cross);
  }
  const double th = cm.params().t_hash_ms;
  c.broadcast_ms += th * (build_rows + probe_rows / nd);
  c.repartition_ms += th * (build_rows + probe_rows) / nd;
  return c;
}

/// One distributed execution in flight. Everything that must survive
/// across stage attempts (plan, temps, makespan, trace) lives here.
struct Run {
  Run(ShardCluster* c, const ShardQueryOptions& qo)
      : cluster(c),
        db(c->db()),
        q(qo),
        detector(c->options().skew),
        coord_ctx(c->db()->buffer_pool(), c->db()->catalog(),
                  &c->db()->cost_model()) {
    coord_ctx.SetFaultInjector(db->faults());
    coord_ctx.SetBatchSize(q.batch_size);
    scrub_seen = c->scrub_findings();
  }

  ShardCluster* cluster;
  Database* db;
  ShardQueryOptions q;
  SkewDetector detector;
  ExecContext coord_ctx;
  NetChannelStats coord_net;

  QuerySpec spec;
  std::string root_sql;
  std::unique_ptr<PlanNode> plan;
  std::vector<PlanNode*> joins;  ///< bottom-up
  std::vector<PlanNode*> scans;  ///< scans[0] = deepest build; [j+1] = probe j
  std::map<std::string, int> alias_rel;

  ShardExecResult out;
  std::set<int> covered;
  std::string prev_temp;
  Schema prev_temp_schema;
  std::vector<std::string> live_temps;
  std::map<std::string, ObservedStats> scan_observed;  ///< alias -> merged

  /// Failure attribution for the attempt loop: >=0 = node to kill,
  /// -2 = coordinator-side error (abort the query).
  int victim = -2;
  std::string fail_reason;
  /// Alias-qualified schema of the temp MaterializeStage just wrote.
  Schema pending_logical_;
  /// Cluster scrub generation when the run started; an advance means the
  /// scrubber found (and repaired) corruption while this query was in
  /// flight, so journaled temps are revalidated before being trusted.
  uint64_t scrub_seen = 0;

  // ---------------------------------------------------------------------

  Status NodeFail(int node_id, const char* reason, const Status& st) {
    if (st.code() == StatusCode::kCrashed) return st;  // whole process died
    victim = node_id;
    fail_reason = reason;
    return Status::Internal(std::string(reason) + ": " + st.message());
  }

  /// node.crash injection point, attributed to `node_id`.
  Status CheckNodeCrash(int node_id) {
    Status st = db->faults()->Check(faults::kNodeCrash);
    if (st.ok()) return st;
    return NodeFail(node_id, "node.crash", st);
  }

  /// node.resurrect injection point: the most recently evacuated node
  /// comes back as a zombie that still believes it is a member, and
  /// replays the sends it thinks it owes the stage — one buffer of its
  /// (stale) probe partition to every surviving peer. Its endpoint is
  /// registered with the epoch it last saw before dying, so the channel
  /// fences every buffer: the stale data never merges into the stage, the
  /// zombie pays no modeled cost, and each drop is recorded as a typed
  /// EpochFenceRecord.
  Status ReplayZombie(int stage_no, const std::vector<int>& alive,
                      const std::string& probe_table,
                      ExchangeChannel* channel) {
    if (cluster->last_dead() < 0) return Status::OK();
    Status rz = db->faults()->Check(faults::kNodeResurrect);
    if (rz.ok()) return rz;  // point unarmed or trigger not hit
    if (rz.code() == StatusCode::kCrashed) return rz;
    const int z = cluster->last_dead();
    ShardNode* zn = cluster->node(z);
    if (zn == nullptr || zn->alive) return Status::OK();
    channel->AddEndpoint(z, nullptr, &zn->net, zn->epoch_seen);
    std::vector<Tuple> stale;
    if (zn->catalog->Exists(probe_table)) {
      Result<TableInfo*> zi = zn->catalog->Get(probe_table);
      if (zi.ok()) {
        HeapFile::Iterator it = zi.value()->heap->Scan();
        Tuple t;
        while (true) {
          Result<bool> more = it.Next(&t);
          if (!more.ok() || !more.value()) break;
          stale.push_back(t);
        }
      }
    }
    if (stale.empty()) stale.emplace_back();  // at minimum a stale ping
    // Fenced sends report OK to the zombie; a non-OK here is structural
    // (unknown endpoint), not a link fault, and aborts the stage.
    for (int r : alive) RETURN_IF_ERROR(channel->Send(z, r, stale));
    for (const ExchangeChannel::Fence& f : channel->TakeFences()) {
      Record(EpochFenceRecord{stage_no, f.from, f.stale_epoch,
                              cluster->epoch(), f.rows});
    }
    return Status::OK();
  }

  /// Fragment scan schema: the node partition table re-qualified with the
  /// query alias (positional layout is identical).
  Result<Schema> PartitionSchemaFor(int node_id, const std::string& table,
                                    const std::string& alias) {
    ASSIGN_OR_RETURN(const TableInfo* info,
                     cluster->node(node_id)->catalog->Get(table));
    Schema s;
    for (const Column& col : info->schema.columns()) {
      if (col.qualifier == ShardCluster::kOrdQualifier) {
        s.AddColumn(Column{ShardCluster::kOrdQualifier, "__ord_" + alias,
                           ValueType::kInt64, 8.0});
      } else {
        s.AddColumn(Column{alias, col.name, col.type, col.avg_width});
      }
    }
    return s;
  }

  /// Runs one node's local scan (with a statistics collector) of the
  /// partition of `coord_scan`'s table, returning the filtered rows.
  Result<std::vector<Tuple>> RunLocalScan(int node_id, ExecContext* ctx,
                                          const PlanNode* coord_scan,
                                          ObservedStats* observed) {
    auto scan = std::make_unique<PlanNode>();
    scan->kind = OpKind::kSeqScan;
    scan->table = coord_scan->table;
    scan->alias = coord_scan->alias;
    scan->filters = coord_scan->filters;
    scan->est = coord_scan->est;
    scan->improved = coord_scan->est;
    ASSIGN_OR_RETURN(scan->output_schema,
                     PartitionSchemaFor(node_id, coord_scan->table,
                                        coord_scan->alias));
    auto coll = std::make_unique<PlanNode>();
    coll->kind = OpKind::kStatsCollector;
    coll->output_schema = scan->output_schema;
    coll->est = coord_scan->est;
    coll->improved = coord_scan->est;
    coll->children.push_back(std::move(scan));

    std::vector<Tuple> rows;
    ASSIGN_OR_RETURN(std::unique_ptr<PipelineExecutor> exec,
                     PipelineExecutor::Create(ctx, coll.get()));
    RETURN_IF_ERROR(exec->Open());
    while (exec->HasMoreStages()) {
      ASSIGN_OR_RETURN(PipelineExecutor::StageResult sr,
                       exec->RunNextStage(&rows));
      (void)sr;
    }
    RETURN_IF_ERROR(exec->Close());
    if (observed != nullptr) *observed = coll->children[0]->observed;
    return rows;
  }

  /// Per-partition scan observations, merged into one per-table truth
  /// before anything downstream (estimate refresh, feedback harvest) sees
  /// them — N node-local counts must not read as N observations.
  void MergeScanObservations(const PlanNode* coord_scan,
                             const std::vector<const ObservedStats*>& parts) {
    ObservedStats merged = MergeObservedStats(parts);
    if (!merged.valid) return;
    // Strip the shard-internal ordinal column: its 9 serialized bytes per
    // row and its min/max are partitioning artifacts, not table facts.
    for (auto it = merged.columns.begin(); it != merged.columns.end();) {
      if (it->first.rfind(std::string(ShardCluster::kOrdQualifier) + ".", 0) ==
          0) {
        it = merged.columns.erase(it);
      } else {
        ++it;
      }
    }
    if (merged.avg_tuple_bytes > 9.0) merged.avg_tuple_bytes -= 9.0;
    scan_observed[coord_scan->alias] = std::move(merged);
  }

  Result<std::vector<Tuple>> ReadTempRows(const std::string& temp) {
    ASSIGN_OR_RETURN(const TableInfo* info, db->catalog()->Get(temp));
    std::vector<Tuple> rows;
    rows.reserve(info->heap->tuple_count());
    HeapFile::Iterator it = info->heap->Scan();
    Tuple t;
    while (true) {
      ASSIGN_OR_RETURN(bool more, it.Next(&t));
      if (!more) break;
      rows.push_back(t);
    }
    return rows;
  }

  void Record(ShardSkewRecord r) {
    coord_ctx.trace()->shard_skews.push_back(r);
    coord_ctx.AddEvent(Render(r));
  }
  void Record(StragglerRecord r) {
    coord_ctx.trace()->stragglers.push_back(r);
    coord_ctx.AddEvent(Render(r));
  }
  void Record(NodeLostRecord r) {
    coord_ctx.trace()->node_losses.push_back(r);
    coord_ctx.AddEvent(Render(r));
  }
  void Record(DistributionSwitchRecord r) {
    coord_ctx.trace()->distribution_switches.push_back(r);
    coord_ctx.AddEvent(Render(r));
    ++out.distribution_switches;
  }
  void Record(NodeSuspectRecord r) {
    coord_ctx.trace()->node_suspects.push_back(r);
    coord_ctx.AddEvent(Render(r));
  }
  void Record(EpochFenceRecord r) {
    coord_ctx.trace()->epoch_fences.push_back(r);
    coord_ctx.AddEvent(Render(r));
  }
  void Record(ReplicaRepairRecord r) {
    coord_ctx.trace()->replica_repairs.push_back(r);
    coord_ctx.AddEvent(Render(r));
  }
  void Record(ScrubReportRecord r) {
    coord_ctx.trace()->scrub_reports.push_back(r);
    coord_ctx.AddEvent(Render(r));
  }

  // --- One stage attempt. ------------------------------------------------

  struct Attempt {
    std::vector<std::unique_ptr<ExecContext>> ctxs;  ///< indexed by node id
  };

  Result<std::string> TryStage(size_t js) {
    victim = -2;
    const double coord_baseline = coord_ctx.SimElapsedMs();
    Attempt a;
    Result<std::string> r = DoStage(js, &a);
    // Honest makespan: failed attempts' charges stay on the clock too.
    double stage_ms = 0;
    for (int id : cluster->AliveNodes()) {
      ExecContext* ctx = a.ctxs.size() > static_cast<size_t>(id)
                             ? a.ctxs[static_cast<size_t>(id)].get()
                             : nullptr;
      if (ctx == nullptr) continue;
      stage_ms = std::max(
          stage_ms, ctx->SimElapsedMs() * cluster->node(id)->slowdown);
    }
    stage_ms += coord_ctx.SimElapsedMs() - coord_baseline;
    cluster->AddClusterMs(stage_ms);
    out.cluster_ms += stage_ms;
    return r;
  }

  Result<std::string> DoStage(size_t js, Attempt* a) {
    const std::vector<int> alive = cluster->AliveNodes();
    if (alive.empty()) return Status::Internal("no alive nodes");
    const int n = static_cast<int>(alive.size());
    const bool scan_only = joins.empty();
    PlanNode* join = scan_only ? nullptr : joins[js];
    PlanNode* probe_scan = scan_only ? scans[0] : scans[js + 1];
    const int stage_no = static_cast<int>(js) + 1;

    // Fresh per-attempt contexts and channel: a re-run after a node loss
    // starts from durable inputs with clean queues.
    a->ctxs.resize(static_cast<size_t>(cluster->num_nodes()));
    ExchangeChannel channel(&db->cost_model(), db->faults());
    for (int id : alive) {
      ShardNode* node = cluster->node(id);
      auto ctx = std::make_unique<ExecContext>(
          node->pool.get(), node->catalog.get(), &db->cost_model());
      ctx->SetFaultInjector(db->faults());
      ctx->SetBatchSize(q.batch_size);
      channel.AddEndpoint(id, ctx.get(), &node->net);
      a->ctxs[static_cast<size_t>(id)] = std::move(ctx);
    }
    channel.AddEndpoint(kCoordEndpoint, &coord_ctx, &coord_net);
    channel.SetEpoch(cluster->epoch());

    for (int id : alive) RETURN_IF_ERROR(CheckNodeCrash(id));
    RETURN_IF_ERROR(ReplayZombie(stage_no, alive, probe_scan->table, &channel));

    // --- Local scans (build side first for stage 0, then probe).
    std::vector<std::vector<Tuple>> build_src(
        static_cast<size_t>(cluster->num_nodes()));
    std::vector<Tuple> coord_build_src;  // stage > 0: previous temp
    std::vector<const ObservedStats*> build_parts;
    std::vector<ObservedStats> build_obs(static_cast<size_t>(n));
    Schema build_schema;
    if (!scan_only) {
      if (js == 0) {
        ASSIGN_OR_RETURN(build_schema,
                         PartitionSchemaFor(alive[0], scans[0]->table,
                                            scans[0]->alias));
        for (int i = 0; i < n; ++i) {
          const int id = alive[static_cast<size_t>(i)];
          Result<std::vector<Tuple>> rows =
              RunLocalScan(id, a->ctxs[static_cast<size_t>(id)].get(),
                           scans[0], &build_obs[static_cast<size_t>(i)]);
          if (!rows.ok())
            return NodeFail(id, "build-scan", rows.status());
          build_src[static_cast<size_t>(id)] = std::move(rows).value();
          build_parts.push_back(&build_obs[static_cast<size_t>(i)]);
        }
      } else {
        build_schema = prev_temp_schema;
        ASSIGN_OR_RETURN(coord_build_src, ReadTempRows(prev_temp));
      }
    }

    std::vector<std::vector<Tuple>> probe_local(
        static_cast<size_t>(cluster->num_nodes()));
    std::vector<const ObservedStats*> probe_parts;
    std::vector<ObservedStats> probe_obs(static_cast<size_t>(n));
    ASSIGN_OR_RETURN(Schema probe_schema,
                     PartitionSchemaFor(alive[0], probe_scan->table,
                                        probe_scan->alias));
    for (int i = 0; i < n; ++i) {
      const int id = alive[static_cast<size_t>(i)];
      Result<std::vector<Tuple>> rows =
          RunLocalScan(id, a->ctxs[static_cast<size_t>(id)].get(), probe_scan,
                       &probe_obs[static_cast<size_t>(i)]);
      if (!rows.ok()) return NodeFail(id, "probe-scan", rows.status());
      probe_local[static_cast<size_t>(id)] = std::move(rows).value();
      probe_parts.push_back(&probe_obs[static_cast<size_t>(i)]);
    }

    // --- Scan-only queries: gather the single relation and materialize.
    if (scan_only) {
      for (int id : alive) {
        Status st = channel.Send(id, kCoordEndpoint,
                                 std::move(probe_local[static_cast<size_t>(id)]));
        if (!st.ok()) return NodeFail(id, "net.send", st);
      }
      std::vector<Tuple> all;
      Status st = channel.Receive(kCoordEndpoint, &all);
      if (!st.ok()) return NodeFail(alive.front(), "net.recv", st);
      const size_t ord_idx = probe_schema.NumColumns() - 1;
      std::sort(all.begin(), all.end(), [&](const Tuple& x, const Tuple& y) {
        return x.at(ord_idx).AsInt() < y.at(ord_idx).AsInt();
      });
      ASSIGN_OR_RETURN(std::string temp,
                       MaterializeStage(js, all, probe_schema, Schema(),
                                        probe_schema.NumColumns()));
      MergeScanObservations(probe_scan, probe_parts);
      return temp;
    }

    // --- Distribution choice.
    const double est_build_rows =
        js == 0 ? scans[0]->est.cardinality
                : static_cast<double>(coord_build_src.size());
    double obs_build_rows = 0, obs_build_bytes = 0;
    if (js == 0) {
      for (int id : alive) {
        obs_build_rows +=
            static_cast<double>(build_src[static_cast<size_t>(id)].size());
        obs_build_bytes += static_cast<double>(
            SumBytes(build_src[static_cast<size_t>(id)]));
      }
    } else {
      obs_build_rows = static_cast<double>(coord_build_src.size());
      obs_build_bytes = static_cast<double>(SumBytes(coord_build_src));
    }
    const double probe_est_rows = probe_scan->est.cardinality;
    const double probe_est_bytes =
        probe_est_rows * std::max(probe_scan->est.avg_tuple_bytes, 1.0);
    const bool from_coord = js > 0;

    // Planned choice, from the optimizer's estimates...
    StrategyCosts planned = EstimateStrategies(
        db->cost_model(), est_build_rows,
        est_build_rows * std::max(js == 0 ? scans[0]->est.avg_tuple_bytes : 1.0,
                                  1.0),
        probe_est_rows, probe_est_bytes, n, from_coord);
    bool broadcast = planned.broadcast_ms < planned.repartition_ms;
    // ...re-evaluated against the observed build before any data moves.
    StrategyCosts observed = EstimateStrategies(
        db->cost_model(), obs_build_rows, obs_build_bytes, probe_est_rows,
        probe_est_bytes, n, from_coord);
    if (q.force == ShardQueryOptions::Force::kBroadcast) {
      broadcast = true;
    } else if (q.force == ShardQueryOptions::Force::kRepartition) {
      broadcast = false;
    } else if (cluster->options().reopt_enabled) {
      const bool better_broadcast =
          observed.broadcast_ms < observed.repartition_ms;
      if (better_broadcast != broadcast) {
        Record(DistributionSwitchRecord{
            stage_no, StrategyName(broadcast), StrategyName(better_broadcast),
            "build-estimate",
            broadcast ? observed.broadcast_ms : observed.repartition_ms,
            better_broadcast ? observed.broadcast_ms
                             : observed.repartition_ms});
        broadcast = better_broadcast;
      }
    }

    // --- Build exchange.
    ASSIGN_OR_RETURN(std::vector<size_t> build_keys,
                     KeyIdxs(build_schema, join->left_keys));
    ASSIGN_OR_RETURN(std::vector<size_t> probe_keys,
                     KeyIdxs(probe_schema, join->right_keys));
    std::vector<double> weights;
    weights.reserve(static_cast<size_t>(n));
    for (int id : alive) weights.push_back(cluster->node(id)->weight);
    const std::vector<int> slots = SkewDetector::BuildSlotTable(alive, weights);

    std::vector<std::vector<Tuple>> build_buf(
        static_cast<size_t>(cluster->num_nodes()));
    RETURN_IF_ERROR(ExchangeBuild(js, broadcast, alive, slots, build_keys,
                                  build_src, coord_build_src, &channel,
                                  &build_buf));

    // --- Skew check on what actually landed, before probe data moves.
    // Only a repartitioned build can be skewed; broadcast replicates the
    // whole build to every node by design.
    if (q.force == ShardQueryOptions::Force::kAuto && !broadcast) {
      std::vector<uint64_t> recv;
      recv.reserve(static_cast<size_t>(n));
      for (int id : alive)
        recv.push_back(build_buf[static_cast<size_t>(id)].size());
      std::optional<SkewDetector::BuildSkew> skew =
          detector.CheckBuildSkew(alive, recv, est_build_rows);
      if (skew.has_value()) {
        Record(ShardSkewRecord{stage_no, skew->node, skew->node_rows,
                               skew->est_share,
                               detector.thresholds().skew_factor});
        if (cluster->options().reopt_enabled) {
          // Join-key skew concentrates the probe side on the same node;
          // project both makespans and switch if broadcast wins. The
          // repartition transfer already paid stays on the clock.
          const double th = db->cost_model().params().t_hash_ms;
          const double max_build = static_cast<double>(skew->node_rows);
          double max_probe_local = 0;
          for (int id : alive)
            max_probe_local = std::max(
                max_probe_local,
                static_cast<double>(probe_local[static_cast<size_t>(id)].size()));
          const double probe_total = [&] {
            double t = 0;
            for (int id : alive)
              t += static_cast<double>(
                  probe_local[static_cast<size_t>(id)].size());
            return t;
          }();
          const double skew_frac =
              max_build / std::max(obs_build_rows, 1.0);
          const double repart_ms =
              th * (max_build + probe_total * skew_frac);
          const double extra_net = db->cost_model().NetTransfer(
              obs_build_bytes * (from_coord ? n : n - 1),
              MsgsFor(obs_build_rows) * (from_coord ? n : n - 1));
          const double bcast_ms =
              extra_net + th * (obs_build_rows + max_probe_local);
          if (bcast_ms < repart_ms) {
            Record(DistributionSwitchRecord{stage_no, "repartition",
                                            "broadcast", "skew", repart_ms,
                                            bcast_ms});
            broadcast = true;
            // The window between the switch decision and the re-exchange is
            // a distinct kill point: a node that dies here has already
            // received (and discarded) repartitioned build data.
            RETURN_IF_ERROR(CheckNodeCrash(skew->node));
            for (auto& b : build_buf) b.clear();
            RETURN_IF_ERROR(ExchangeBuild(js, /*broadcast=*/true, alive,
                                          slots, build_keys, build_src,
                                          coord_build_src, &channel,
                                          &build_buf));
          }
        }
      }
    }

    // --- Probe exchange.
    std::vector<std::vector<Tuple>> probe_buf(
        static_cast<size_t>(cluster->num_nodes()));
    if (broadcast) {
      for (int id : alive)
        probe_buf[static_cast<size_t>(id)] =
            std::move(probe_local[static_cast<size_t>(id)]);
    } else {
      for (int id : alive) {
        std::vector<std::vector<Tuple>> buckets(
            static_cast<size_t>(cluster->num_nodes()));
        for (Tuple& t : probe_local[static_cast<size_t>(id)]) {
          const int target =
              slots[t.HashOn(probe_keys) % slots.size()];
          buckets[static_cast<size_t>(target)].push_back(std::move(t));
        }
        for (int r : alive) {
          if (r == id) {
            auto& own = buckets[static_cast<size_t>(r)];
            auto& buf = probe_buf[static_cast<size_t>(r)];
            buf.insert(buf.end(), std::make_move_iterator(own.begin()),
                       std::make_move_iterator(own.end()));
          } else {
            Status st = channel.Send(
                id, r, std::move(buckets[static_cast<size_t>(r)]));
            if (!st.ok()) return NodeFail(id, "net.send", st);
          }
        }
      }
      for (int id : alive) {
        Status st =
            channel.Receive(id, &probe_buf[static_cast<size_t>(id)]);
        if (!st.ok()) return NodeFail(id, "net.recv", st);
      }
    }

    // --- Join fragments.
    const Schema frag_schema = Schema::Concat(build_schema, probe_schema);
    std::vector<std::vector<Tuple>> frag_out(
        static_cast<size_t>(cluster->num_nodes()));
    for (int id : alive) {
      RETURN_IF_ERROR(CheckNodeCrash(id));
      ExecContext* ctx = a->ctxs[static_cast<size_t>(id)].get();
      auto bx = std::make_unique<PlanNode>();
      bx->kind = OpKind::kExchange;
      bx->table = kBuildKey;
      bx->output_schema = build_schema;
      auto px = std::make_unique<PlanNode>();
      px->kind = OpKind::kExchange;
      px->table = kProbeKey;
      px->output_schema = probe_schema;
      auto jn = std::make_unique<PlanNode>();
      jn->kind = OpKind::kHashJoin;
      jn->left_keys = join->left_keys;
      jn->right_keys = join->right_keys;
      jn->output_schema = frag_schema;
      jn->est = join->est;
      jn->improved = join->est;
      jn->mem_budget_pages = cluster->options().node_mem_pages;
      jn->children.push_back(std::move(bx));
      jn->children.push_back(std::move(px));

      ctx->BindExchangeSource(kBuildKey, &build_buf[static_cast<size_t>(id)]);
      ctx->BindExchangeSource(kProbeKey, &probe_buf[static_cast<size_t>(id)]);
      Status st = [&]() -> Status {
        ASSIGN_OR_RETURN(std::unique_ptr<PipelineExecutor> exec,
                         PipelineExecutor::Create(ctx, jn.get()));
        RETURN_IF_ERROR(exec->Open());
        while (exec->HasMoreStages()) {
          ASSIGN_OR_RETURN(PipelineExecutor::StageResult sr,
                           exec->RunNextStage(
                               &frag_out[static_cast<size_t>(id)]));
          (void)sr;
        }
        return exec->Close();
      }();
      ctx->ClearExchangeSources();
      if (!st.ok()) return NodeFail(id, "fragment", st);
    }

    // --- Straggler detection on this stage's charged times.
    if (n >= 2) {
      std::vector<double> node_ms;
      node_ms.reserve(static_cast<size_t>(n));
      for (int id : alive)
        node_ms.push_back(a->ctxs[static_cast<size_t>(id)]->SimElapsedMs() *
                          cluster->node(id)->slowdown);
      for (const SkewDetector::Straggler& s :
           detector.CheckStragglers(alive, node_ms)) {
        Record(StragglerRecord{stage_no, s.node, s.node_ms, s.percentile_ms,
                               s.new_weight});
        if (cluster->options().reopt_enabled)
          cluster->node(s.node)->weight = s.new_weight;
      }
    }

    // --- Gather, reorder by ordinals, materialize.
    for (int id : alive) {
      Status st = channel.Send(id, kCoordEndpoint,
                               std::move(frag_out[static_cast<size_t>(id)]));
      if (!st.ok()) return NodeFail(id, "net.send", st);
    }
    std::vector<Tuple> all;
    Status st = channel.Receive(kCoordEndpoint, &all);
    if (!st.ok()) return NodeFail(alive.front(), "net.recv", st);

    const size_t bl = build_schema.NumColumns();
    const size_t ord_b = bl - 1;
    const size_t ord_p = frag_schema.NumColumns() - 1;
    std::sort(all.begin(), all.end(), [&](const Tuple& x, const Tuple& y) {
      const int64_t xp = x.at(ord_p).AsInt(), yp = y.at(ord_p).AsInt();
      if (xp != yp) return xp < yp;
      return x.at(ord_b).AsInt() < y.at(ord_b).AsInt();
    });
    ASSIGN_OR_RETURN(std::string temp,
                     MaterializeStage(js, all, build_schema, probe_schema, bl));

    if (js == 0) MergeScanObservations(scans[0], build_parts);
    MergeScanObservations(probe_scan, probe_parts);
    return temp;
  }

  /// Routes the build input to the nodes under the given strategy.
  /// Sources are taken by const ref (copied into the channel) so a skew
  /// switch can re-exchange them without re-scanning.
  Status ExchangeBuild(size_t js, bool broadcast,
                       const std::vector<int>& alive,
                       const std::vector<int>& slots,
                       const std::vector<size_t>& build_keys,
                       const std::vector<std::vector<Tuple>>& build_src,
                       const std::vector<Tuple>& coord_build_src,
                       ExchangeChannel* channel,
                       std::vector<std::vector<Tuple>>* build_buf) {
    if (js == 0) {
      for (int s : alive) {
        const auto& rows = build_src[static_cast<size_t>(s)];
        if (broadcast) {
          for (int r : alive) {
            if (r == s) {
              auto& buf = (*build_buf)[static_cast<size_t>(r)];
              buf.insert(buf.end(), rows.begin(), rows.end());
            } else {
              Status st = channel->Send(s, r, rows);
              if (!st.ok()) return NodeFail(s, "net.send", st);
            }
          }
        } else {
          std::vector<std::vector<Tuple>> buckets(
              static_cast<size_t>(cluster->num_nodes()));
          for (const Tuple& t : rows) {
            const int target = slots[t.HashOn(build_keys) % slots.size()];
            buckets[static_cast<size_t>(target)].push_back(t);
          }
          for (int r : alive) {
            if (r == s) {
              auto& own = buckets[static_cast<size_t>(r)];
              auto& buf = (*build_buf)[static_cast<size_t>(r)];
              buf.insert(buf.end(), std::make_move_iterator(own.begin()),
                         std::make_move_iterator(own.end()));
            } else {
              Status st = channel->Send(
                  s, r, std::move(buckets[static_cast<size_t>(r)]));
              if (!st.ok()) return NodeFail(s, "net.send", st);
            }
          }
        }
      }
    } else {
      if (broadcast) {
        for (int r : alive) {
          Status st = channel->Send(kCoordEndpoint, r, coord_build_src);
          if (!st.ok()) return NodeFail(r, "net.send", st);
        }
      } else {
        std::vector<std::vector<Tuple>> buckets(
            static_cast<size_t>(cluster->num_nodes()));
        for (const Tuple& t : coord_build_src) {
          const int target = slots[t.HashOn(build_keys) % slots.size()];
          buckets[static_cast<size_t>(target)].push_back(t);
        }
        for (int r : alive) {
          Status st = channel->Send(kCoordEndpoint, r,
                                    std::move(buckets[static_cast<size_t>(r)]));
          if (!st.ok()) return NodeFail(r, "net.send", st);
        }
      }
    }
    for (int r : alive) {
      Status st = channel->Receive(r, &(*build_buf)[static_cast<size_t>(r)]);
      if (!st.ok()) return NodeFail(r, "net.recv", st);
    }
    return Status::OK();
  }

  /// Writes the gathered, ordinal-sorted stage output to a coordinator
  /// temp (dropping the input ordinal columns, appending a fresh one) and
  /// journals the stage. Scan-only stages pass the single input as
  /// `build_schema` with an empty `probe_schema`. The in-memory "logical"
  /// schema keeps the original alias qualifiers (so later stages resolve
  /// join keys like "d.region_id"); the catalog table gets the remainder
  /// machinery's "alias__col" naming so BuildRemainderSpec's SQL binds.
  Result<std::string> MaterializeStage(size_t js,
                                       const std::vector<Tuple>& sorted,
                                       const Schema& build_schema,
                                       const Schema& probe_schema,
                                       size_t build_len) {
    const bool scan_only = probe_schema.NumColumns() == 0;
    Schema out_schema;
    if (scan_only) {
      for (size_t i = 0; i + 1 < build_schema.NumColumns(); ++i)
        out_schema.AddColumn(build_schema.column(i));
    } else {
      for (size_t i = 0; i + 1 < build_len; ++i)
        out_schema.AddColumn(build_schema.column(i));
      for (size_t i = 0; i + 1 < probe_schema.NumColumns(); ++i)
        out_schema.AddColumn(probe_schema.column(i));
    }
    out_schema.AddColumn(Column{ShardCluster::kOrdQualifier,
                                "__ord_s" + std::to_string(js),
                                ValueType::kInt64, 8.0});
    pending_logical_ = out_schema;

    const std::string temp = db->catalog()->NextTempName();
    ASSIGN_OR_RETURN(TableInfo * ti,
                     db->catalog()->CreateTable(
                         temp, TempTableSchema(temp, out_schema),
                         /*is_temp=*/true));
    live_temps.push_back(temp);
    const size_t total = scan_only ? build_schema.NumColumns()
                                   : build_schema.NumColumns() +
                                         probe_schema.NumColumns();
    int64_t next_ord = 0;
    for (const Tuple& src : sorted) {
      Tuple row;
      for (size_t i = 0; i < total; ++i) {
        if (i + 1 == build_len && !scan_only) continue;  // build ordinal
        if (i + 1 == total) continue;                    // probe ordinal
        row.Append(src.at(i));
      }
      row.Append(Value(next_ord++));
      RETURN_IF_ERROR(ti->heap->Append(row).status());
    }
    RETURN_IF_ERROR(ti->heap->Flush());
    TableStats ts;
    ts.analyzed = true;
    ts.row_count = static_cast<double>(ti->heap->tuple_count());
    ts.page_count = static_cast<double>(ti->heap->page_count());
    ts.avg_tuple_bytes = ti->heap->avg_tuple_bytes();
    RETURN_IF_ERROR(db->catalog()->SetStats(temp, std::move(ts)));

    // Journal the completed stage: remainder SQL over the new temp plus a
    // full snapshot, so recovery (and a node-loss re-run) can trust it.
    std::set<int> covered_next = covered;
    covered_next.insert(alias_rel[scans[0]->alias]);
    for (size_t k = 0; k <= js && k + 1 < scans.size(); ++k)
      covered_next.insert(alias_rel[scans[k + 1]->alias]);
    ASSIGN_OR_RETURN(QuerySpec remainder,
                     BuildRemainderSpec(spec, covered_next, temp));
    JournalStage jstage;
    jstage.root_sql = root_sql;
    jstage.stage = static_cast<int>(js) + 1;
    jstage.remainder_sql = remainder.ToSql();
    jstage.plan_fingerprint = FingerprintPlanText(plan->ToString());
    jstage.work_done_ms = cluster->cluster_ms();
    jstage.membership_epoch = cluster->epoch();
    TempSnapshot snap;
    snap.name = ti->name;
    snap.schema = ti->schema;
    for (size_t p = 0; p < ti->heap->flushed_page_count(); ++p)
      snap.page_ids.push_back(ti->heap->page_id(p));
    snap.tuple_count = ti->heap->tuple_count();
    snap.total_tuple_bytes = ti->heap->total_tuple_bytes();
    snap.content_checksum = ti->heap->content_checksum();
    snap.stats = ti->stats;
    jstage.temps.push_back(std::move(snap));
    Status jst = db->journal()->AppendStage(jstage, db->faults());
    if (jst.code() == StatusCode::kCrashed) return jst;
    if (jst.ok()) {
      coord_ctx.ChargeExternalMs(db->cost_model().params().t_io_ms);
    } else {
      coord_ctx.AddEvent("journal append failed (continued): " +
                         jst.message());
    }
    return temp;
  }

  /// Validates the latest journaled stage for this query: every snapshot's
  /// temp must still be bound with matching row count and content
  /// checksum. True = the re-run may trust completed stages.
  bool ValidateJournal() {
    Result<std::vector<JournalStage>> stages =
        db->journal()->Load(db->faults());
    if (!stages.ok()) return false;
    const JournalStage* best = nullptr;
    for (const JournalStage& s : stages.value())
      if (s.root_sql == root_sql && (best == nullptr || s.stage > best->stage))
        best = &s;
    if (best == nullptr) return false;
    for (const TempSnapshot& snap : best->temps) {
      Result<TableInfo*> info = db->catalog()->Get(snap.name);
      if (!info.ok()) return false;
      if (info.value()->heap->tuple_count() != snap.tuple_count) return false;
      Result<uint64_t> sum = info.value()->heap->ComputeContentChecksum();
      if (!sum.ok() || sum.value() != snap.content_checksum) return false;
    }
    return true;
  }

  void DropTemp(const std::string& name) {
    db->catalog()->Drop(name);  // best effort
    live_temps.erase(std::remove(live_temps.begin(), live_temps.end(), name),
                     live_temps.end());
  }

  void Cleanup(bool crashed) {
    if (crashed) return;  // durable state survives a simulated crash
    std::vector<std::string> temps = live_temps;
    for (const std::string& t : temps) DropTemp(t);
    db->journal()->MarkComplete(root_sql);
  }

  /// Folds the shard-layer trace and events into the final report.
  void FinishReport() {
    QueryTrace& t = out.result.report.trace;
    const QueryTrace& mine = *coord_ctx.trace();
    t.shard_skews.insert(t.shard_skews.end(), mine.shard_skews.begin(),
                         mine.shard_skews.end());
    t.stragglers.insert(t.stragglers.end(), mine.stragglers.begin(),
                        mine.stragglers.end());
    t.node_losses.insert(t.node_losses.end(), mine.node_losses.begin(),
                         mine.node_losses.end());
    t.distribution_switches.insert(t.distribution_switches.end(),
                                   mine.distribution_switches.begin(),
                                   mine.distribution_switches.end());
    t.node_suspects.insert(t.node_suspects.end(), mine.node_suspects.begin(),
                           mine.node_suspects.end());
    t.epoch_fences.insert(t.epoch_fences.end(), mine.epoch_fences.begin(),
                          mine.epoch_fences.end());
    t.replica_repairs.insert(t.replica_repairs.end(),
                             mine.replica_repairs.begin(),
                             mine.replica_repairs.end());
    t.scrub_reports.insert(t.scrub_reports.end(), mine.scrub_reports.begin(),
                           mine.scrub_reports.end());
    out.result.report.events.insert(out.result.report.events.end(),
                                    coord_ctx.events().begin(),
                                    coord_ctx.events().end());
    out.nodes_lost = static_cast<int>(mine.node_losses.size());
  }
};

}  // namespace

Result<QueryResult> ShardedExecutor::ExecuteSingleNode(const std::string& sql,
                                                       size_t batch_size) {
  ReoptOptions off = cluster_->db()->options().reopt;
  off.mode = ReoptMode::kOff;
  off.batch_size = batch_size == 0 ? 1 : batch_size;
  return cluster_->db()->ExecuteWith(sql, off);
}

Result<ShardExecResult> ShardedExecutor::Execute(const std::string& sql,
                                                 const ShardQueryOptions& q) {
  Run run(cluster_, q);
  Database* db = cluster_->db();

  ASSIGN_OR_RETURN(SelectStmtAst ast, ParseSelect(sql));
  ASSIGN_OR_RETURN(run.spec, Bind(ast, *db->catalog()));
  run.root_sql = run.spec.ToSql();
  for (size_t i = 0; i < run.spec.relations.size(); ++i)
    run.alias_rel[run.spec.relations[i].alias] = static_cast<int>(i);

  // Every base relation must be partitioned, else the query runs whole on
  // the coordinator (which holds full copies).
  bool distributable = !cluster_->AliveNodes().empty();
  for (const RelationRef& rel : run.spec.relations) {
    Result<TableInfo*> info = db->catalog()->Get(rel.table);
    if (!info.ok() || !info.value()->partitioning.partitioned()) {
      distributable = false;
      break;
    }
  }

  if (distributable) {
    OptimizerOptions oopts = db->options().optimizer;
    oopts.assumed_mem_pages = db->options().query_mem_pages;
    oopts.pool_pages_hint =
        static_cast<double>(db->options().buffer_pool_pages);
    Optimizer optimizer(db->catalog(), &db->cost_model(), oopts,
                        db->feedback_enabled() ? db->feedback_store()
                                               : nullptr);
    ASSIGN_OR_RETURN(OptimizeResult optres, optimizer.Plan(run.spec));
    run.plan = std::move(optres.plan);

    // Frontier detection: descend the single-child upper chain to the join
    // subtree, which must be left-deep hash joins over seq scans (the
    // profile the coordinator optimizer is pinned to). Anything else falls
    // back to coordinator execution.
    PlanNode* cur = run.plan.get();
    while (cur->kind != OpKind::kHashJoin && cur->kind != OpKind::kSeqScan) {
      if (cur->children.size() != 1) break;
      cur = cur->children[0].get();
    }
    if (cur->kind == OpKind::kSeqScan && run.spec.relations.size() == 1) {
      run.scans.push_back(cur);
    } else if (cur->kind == OpKind::kHashJoin) {
      PlanNode* j = cur;
      while (j->kind == OpKind::kHashJoin) {
        run.joins.push_back(j);
        j = j->children[0].get();
      }
      std::reverse(run.joins.begin(), run.joins.end());
      distributable = j->kind == OpKind::kSeqScan;
      if (distributable) {
        run.scans.push_back(j);
        for (PlanNode* jn : run.joins) {
          if (jn->children[1]->kind != OpKind::kSeqScan) {
            distributable = false;
            break;
          }
          run.scans.push_back(jn->children[1].get());
        }
      }
      if (!distributable) {
        run.joins.clear();
        run.scans.clear();
      }
    } else {
      distributable = false;
    }
  }

  if (!distributable) {
    ASSIGN_OR_RETURN(run.out.result, ExecuteSingleNode(sql, q.batch_size));
    run.out.coordinator_fallback = true;
    run.out.cluster_ms = run.out.result.report.sim_time_ms;
    cluster_->AddClusterMs(run.out.cluster_ms);
    return std::move(run.out);
  }

  const size_t total_stages = run.joins.empty() ? 1 : run.joins.size();
  for (size_t js = 0; js < total_stages; ++js) {
    int guard = 0;
    std::string new_temp;
    while (true) {
      Result<std::string> r = run.TryStage(js);
      if (r.ok()) {
        // The stage's completion is this round's heartbeat: every node
        // that participated is demonstrably reachable again.
        for (int id : cluster_->AliveNodes()) cluster_->ClearSuspicion(id);
        new_temp = std::move(r).value();
        break;
      }
      const Status st = r.status();
      if (st.code() == StatusCode::kCrashed) {
        run.Cleanup(/*crashed=*/true);
        return st;
      }
      if (run.victim < 0) {
        run.Cleanup(false);
        return st;
      }
      const int victim = run.victim;
      const int guard_limit =
          cluster_->num_nodes() * (cluster_->options().max_missed_beats + 1) +
          2;
      // A link fault is a suspicion, not a death sentence: the node's
      // heartbeat state degrades and the stage retries on the same
      // membership. Only accumulated misses or an expired lease escalate
      // to the evacuation below; a node.crash still kills outright.
      const bool net_fault =
          run.fail_reason == "net.send" || run.fail_reason == "net.recv";
      if (net_fault && cluster_->node(victim)->alive) {
        const ShardCluster::BeatVerdict verdict =
            cluster_->ReportMissedBeat(victim);
        const double beat_ms = cluster_->options().heartbeat_ms;
        cluster_->AddClusterMs(beat_ms);
        run.out.cluster_ms += beat_ms;
        const ShardNode* sn = cluster_->node(victim);
        run.Record(NodeSuspectRecord{
            static_cast<int>(js) + 1, victim, run.fail_reason,
            sn->missed_beats,
            std::max(0.0, sn->lease_expiry_ms - cluster_->cluster_ms())});
        if (verdict == ShardCluster::BeatVerdict::kSuspect) {
          if (++guard > guard_limit) {
            run.Cleanup(false);
            return st;
          }
          continue;
        }
      }
      // Node loss: kill it, restore its slices — from surviving replicas
      // when the placement has them (local copies, zero coordinator I/O),
      // from the coordinator's durable copy otherwise — validate completed
      // stages from the journal, and re-run the stage on the survivors.
      RETURN_IF_ERROR(cluster_->MarkDead(victim));
      uint64_t rehomed = 0, promoted = 0, coord_rows = 0;
      std::vector<ReplicaRepairRecord> repairs;
      if (!cluster_->AliveNodes().empty()) {
        Result<ShardCluster::RehomeResult> rehome =
            cluster_->RehomeDeadNode(victim, &repairs);
        if (!rehome.ok()) {
          run.Cleanup(false);
          return rehome.status();
        }
        cluster_->AddClusterMs(rehome->sim_ms);
        run.out.cluster_ms += rehome->sim_ms;
        rehomed = rehome->rehomed_rows;
        promoted = rehome->promoted_rows;
        coord_rows = rehome->coordinator_rows;
      }
      const bool jresume = !run.prev_temp.empty() && run.ValidateJournal();
      NodeLostRecord lost;
      lost.stage = static_cast<int>(js) + 1;
      lost.node = victim;
      lost.reason = run.fail_reason;
      lost.survivors = static_cast<int>(cluster_->AliveNodes().size());
      lost.rehomed_rows = rehomed;
      lost.journal_resume = jresume;
      lost.promoted_rows = promoted;
      lost.coordinator_rows = coord_rows;
      lost.epoch = cluster_->epoch();
      run.Record(lost);
      for (const ReplicaRepairRecord& rr : repairs) run.Record(rr);
      if (cluster_->AliveNodes().empty()) {
        // No survivors: the coordinator finishes the query alone — from
        // the last journaled temp only when the journal just revalidated
        // it; an unvalidated temp is sacrificed for a clean re-run.
        run.out.coordinator_fallback = true;
        ReoptOptions off = db->options().reopt;
        off.mode = ReoptMode::kOff;
        off.batch_size = q.batch_size == 0 ? 1 : q.batch_size;
        Result<QueryResult> qr = Status::Internal("unreachable");
        if (!jresume) {
          qr = db->ExecuteWith(sql, off);
        } else {
          ASSIGN_OR_RETURN(
              QuerySpec remainder,
              BuildRemainderSpec(run.spec, run.covered, run.prev_temp));
          qr = db->ExecuteWith(remainder.ToSql(), off);
        }
        if (!qr.ok()) {
          run.Cleanup(qr.status().code() == StatusCode::kCrashed);
          return qr.status();
        }
        run.out.result = std::move(qr).value();
        run.out.cluster_ms += run.out.result.report.sim_time_ms;
        cluster_->AddClusterMs(run.out.result.report.sim_time_ms);
        run.FinishReport();
        run.Cleanup(false);
        return std::move(run.out);
      }
      if (++guard > guard_limit) {
        run.Cleanup(false);
        return st;
      }
    }
    // Stage committed: the previous temp was consumed and is droppable.
    if (!run.prev_temp.empty()) run.DropTemp(run.prev_temp);
    run.prev_temp = new_temp;
    run.prev_temp_schema = run.pending_logical_;
    run.covered.insert(run.alias_rel[run.scans[0]->alias]);
    for (size_t k = 0; k <= js && k + 1 < run.scans.size(); ++k)
      run.covered.insert(run.alias_rel[run.scans[k + 1]->alias]);
    ++run.out.stages_run;

    // Optional anti-entropy pass at the stage boundary: silent corruption
    // is caught (and repaired) before the next stage reads the partitions.
    if (q.scrub_between_stages) {
      Scrubber scrub(cluster_);
      Result<ScrubSummary> ssum = scrub.ScrubAll();
      if (!ssum.ok()) {
        if (ssum.status().code() == StatusCode::kCrashed) {
          run.Cleanup(/*crashed=*/true);
          return ssum.status();
        }
        run.coord_ctx.AddEvent("scrub failed (continued): " +
                               ssum.status().message());
      } else {
        cluster_->AddClusterMs(ssum->sim_ms);
        run.out.cluster_ms += ssum->sim_ms;
        for (const ScrubReportRecord& rr : ssum->reports) run.Record(rr);
        for (const ReplicaRepairRecord& rr : ssum->repairs) run.Record(rr);
      }
    }
  }

  // Remainder (aggregation / sort / projection) on the coordinator, over
  // the final temp — which holds the join output in exact single-node
  // emission order, so float aggregation reproduces the oracle bit for
  // bit.
  {
    ReoptOptions off = db->options().reopt;
    off.mode = ReoptMode::kOff;
    off.batch_size = q.batch_size == 0 ? 1 : q.batch_size;
    // Integrity ratchet: if the scrub generation advanced while this query
    // was in flight, the journaled temp is revalidated (row count +
    // content checksum) before the remainder trusts it; a failure
    // sacrifices the saved work for a clean single-node re-run, never the
    // answer.
    bool trust_temp = true;
    if (cluster_->scrub_findings() != run.scrub_seen) {
      run.scrub_seen = cluster_->scrub_findings();
      trust_temp = run.ValidateJournal();
      run.coord_ctx.AddEvent(
          trust_temp ? "scrub advanced: final temp revalidated"
                     : "scrub advanced: final temp failed revalidation, "
                       "re-running from scratch");
    }
    Result<QueryResult> qr = Status::Internal("unreachable");
    if (trust_temp) {
      ASSIGN_OR_RETURN(
          QuerySpec remainder,
          BuildRemainderSpec(run.spec, run.covered, run.prev_temp));
      qr = db->ExecuteWith(remainder.ToSql(), off);
    } else {
      run.out.coordinator_fallback = true;
      qr = db->ExecuteWith(sql, off);
    }
    if (!qr.ok()) {
      run.Cleanup(qr.status().code() == StatusCode::kCrashed);
      return qr.status();
    }
    run.out.result = std::move(qr).value();
    run.out.cluster_ms += run.out.result.report.sim_time_ms;
    cluster_->AddClusterMs(run.out.result.report.sim_time_ms);
  }

  // Cardinality feedback: merged per-partition observations, written into
  // the coordinator plan's scan nodes, harvested once (satellite fix: no
  // per-node double counting).
  run.plan->PostOrder([&](PlanNode* n) {
    if (n->kind != OpKind::kSeqScan) return;
    auto it = run.scan_observed.find(n->alias);
    if (it != run.scan_observed.end()) n->observed = it->second;
  });
  if (db->feedback_enabled())
    HarvestFeedback(*run.plan, run.spec, *db->catalog(), db->feedback_store());

  run.FinishReport();
  run.Cleanup(false);
  return std::move(run.out);
}

}  // namespace reoptdb
