# Empty dependencies file for parametric_test.
# This may be replaced when dependencies are built.
