#include "types/schema.h"

#include <sstream>

namespace reoptdb {

Result<size_t> Schema::IndexOf(const std::string& name) const {
  // Split "qual.col" if a dot is present.
  std::string qual, col;
  size_t dot = name.find('.');
  if (dot != std::string::npos) {
    qual = name.substr(0, dot);
    col = name.substr(dot + 1);
  } else {
    col = name;
  }

  size_t found = cols_.size();
  int matches = 0;
  for (size_t i = 0; i < cols_.size(); ++i) {
    const Column& c = cols_[i];
    if (c.name != col) continue;
    if (!qual.empty() && c.qualifier != qual) continue;
    ++matches;
    found = i;
  }
  if (matches == 0) return Status::NotFound("column not found: " + name);
  if (matches > 1) return Status::BindError("ambiguous column: " + name);
  return found;
}

double Schema::AvgTupleBytes() const {
  double total = 0;
  for (const Column& c : cols_) total += c.avg_width + 1.0;  // +1 type tag
  return total;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Column> cols = left.columns();
  for (const Column& c : right.columns()) cols.push_back(c);
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (i) os << ", ";
    os << cols_[i].QualifiedName() << " " << ValueTypeName(cols_[i].type);
  }
  os << ")";
  return os.str();
}

}  // namespace reoptdb
