// B+-tree index range scan with heap fetches and residual filters.

#ifndef REOPTDB_EXEC_INDEX_SCAN_H_
#define REOPTDB_EXEC_INDEX_SCAN_H_

#include <optional>

#include "exec/expression.h"
#include "exec/operator.h"
#include "storage/btree.h"

namespace reoptdb {

/// \brief Index range scan: walks index entries in [range_lo, range_hi],
/// fetches matching heap tuples (buffer-pool cached), and applies the
/// node's residual predicates.
class IndexScanOp : public Operator {
 public:
  IndexScanOp(ExecContext* ctx, PlanNode* node) : Operator(ctx, node) {}

  Status OpenImpl() override;
  Result<bool> NextImpl(Tuple* out) override;
  Status CloseImpl() override;

 private:
  const HeapFile* heap_ = nullptr;
  std::optional<BTree::Iterator> it_;
  std::vector<CompiledPred> preds_;
  /// Snapshot bound (see ExecContext::TableSnapshot); kLatest = unbounded.
  uint64_t snap_limit_ = HeapFile::kLatest;
  uint64_t snap_epoch_ = HeapFile::kLatest;
};

}  // namespace reoptdb

#endif  // REOPTDB_EXEC_INDEX_SCAN_H_
