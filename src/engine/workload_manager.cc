#include "engine/workload_manager.h"

#include <algorithm>

#include "parser/binder.h"
#include "parser/parser.h"

namespace reoptdb {

struct WorkloadManager::QueryRun {
  uint64_t id = 0;
  std::string sql;
  SubmitOptions sub;  ///< resolved against WorkloadOptions at Submit()
  ReoptOptions reopt;
  /// DML runs (INSERT/UPDATE/DELETE) execute as autocommit transactions
  /// against the lock manager and WAL instead of a query session. They
  /// occupy a running slot but never register with the memory broker.
  bool is_dml = false;
  Statement stmt;      ///< the parsed DML statement, re-issued on lock waits
  uint64_t txn_id = 0;
  uint64_t dml_rows = 0;
  bool dml_ready = false;  ///< statement done; commits with this round's group
  // Declaration order matters: the session borrows ctx and reoptimizer,
  // so it must be destroyed first (members destroy in reverse order).
  std::unique_ptr<ExecContext> ctx;
  std::unique_ptr<DynamicReoptimizer> reoptimizer;
  std::unique_ptr<QuerySession> session;
  std::unique_ptr<SessionGrantHolder> holder;
  WorkloadQueryResult out;
};

/// Adapts one QueryRun to the broker's GrantHolder surface and forwards
/// revocations into the victim's trace.
class WorkloadManager::SessionGrantHolder : public MemoryBroker::GrantHolder {
 public:
  explicit SessionGrantHolder(QueryRun* q) : q_(q) {}

  double PinnedPages() const override {
    return q_->session != nullptr ? q_->session->PinnedPages() : 0;
  }

  void OnGrantChanged(double new_grant_pages,
                      const RevocationEvent* cause) override {
    // During this query's own registration the session does not exist yet
    // (the grant lands via the DynamicReoptimizer's construction instead).
    if (q_->session == nullptr) return;
    if (cause != nullptr) {
      q_->ctx->trace()->revocations.push_back(*cause);
      q_->ctx->AddEvent(Render(*cause));
    }
    q_->session->OnGrantChanged(new_grant_pages);
  }

 private:
  QueryRun* q_;
};

WorkloadManager::WorkloadManager(Database* db, WorkloadOptions opts)
    : db_(db),
      opts_(opts),
      broker_(opts.global_mem_pages > 0 ? opts.global_mem_pages
                                        : db->options().query_mem_pages,
              db->faults()) {
  opts_.global_mem_pages = broker_.total_pages();
  if (opts_.max_active < 1) opts_.max_active = 1;
}

WorkloadManager::~WorkloadManager() {
  // Sessions release their grants before the broker goes away; QueryRun
  // member order handles per-query teardown.
  for (auto& [id, q] : queries_) {
    q->session.reset();
    broker_.Release(id);
  }
}

uint64_t WorkloadManager::Submit(std::string sql, SubmitOptions sub) {
  auto owned = std::make_unique<QueryRun>();
  QueryRun* q = owned.get();
  q->id = next_id_++;
  q->sql = std::move(sql);
  q->sub = sub;
  if (q->sub.ask_pages <= 0) {
    q->sub.ask_pages = opts_.per_query_mem_pages > 0 ? opts_.per_query_mem_pages
                                                     : broker_.total_pages();
  }
  if (q->sub.min_grant_pages <= 0) {
    q->sub.min_grant_pages = opts_.min_grant_pages;
  }
  q->reopt = q->sub.reopt.has_value() ? *q->sub.reopt : opts_.reopt;
  q->out.query_id = q->id;
  q->out.sql = q->sql;
  q->out.submitted_ms = std::max(now_ms_, q->sub.arrival_ms);
  queries_[q->id] = std::move(owned);

  if (q->sub.arrival_ms > now_ms_) {
    arrivals_.push_back(q->id);  // queue-entry (and capacity) at arrival
  } else {
    EnqueueOne(q);
  }
  return q->id;
}

void WorkloadManager::EnqueueOne(QueryRun* q) {
  if (q->sub.min_grant_pages > broker_.total_pages()) {
    // Infeasible by construction: even an empty system cannot satisfy the
    // admission floor. Reject up front, before the queue ages it out.
    RecordRejection(q, "ask_exceeds_budget",
                    Status::ResourceExhausted(
                        "admission: min grant exceeds the global budget"));
  } else if (queued_.size() >= opts_.max_queue) {
    RecordRejection(q, "queue_full",
                    Status::ResourceExhausted("admission queue full"));
  } else {
    queued_.push_back(q->id);
  }
}

void WorkloadManager::EnqueueArrivals() {
  // Arrivals are scanned in submission order; arrival_ms values need not be
  // monotone across submissions.
  for (size_t i = 0; i < arrivals_.size();) {
    QueryRun* q = queries_[arrivals_[i]].get();
    if (q->sub.arrival_ms <= now_ms_) {
      arrivals_.erase(arrivals_.begin() + static_cast<long>(i));
      EnqueueOne(q);
    } else {
      ++i;
    }
  }
}

Status WorkloadManager::AdmitOne(QueryRun* q) {
  ASSIGN_OR_RETURN(Statement stmt, ParseStatement(q->sql));
  if (IsDmlStatement(stmt)) {
    // A writer session: no plan, no broker grant — just a transaction.
    // Lock waits yield the slot each round; the statement re-issues until
    // its locks grant or the deadline kills it.
    q->stmt = std::move(stmt);
    q->is_dml = true;
    ASSIGN_OR_RETURN(q->txn_id, db_->txn_.Begin());
    q->out.started_ms = now_ms_;
    return Status::OK();
  }
  if (!std::holds_alternative<SelectStmtAst>(stmt))
    return Status::InvalidArgument(
        "workload statements must be SELECT or DML: " + q->sql);
  SelectStmtAst ast = std::get<SelectStmtAst>(std::move(stmt));
  QuerySpec spec;
  ASSIGN_OR_RETURN(spec, Bind(ast, db_->catalog_));

  if (q->holder == nullptr) q->holder = std::make_unique<SessionGrantHolder>(q);
  double granted = 0;
  ASSIGN_OR_RETURN(granted,
                   broker_.Register(q->id, q->holder.get(), q->sub.ask_pages,
                                    q->sub.min_grant_pages, now_ms_));

  OptimizerOptions opt_opts = db_->opts_.optimizer;
  opt_opts.assumed_mem_pages = granted;
  opt_opts.pool_pages_hint = static_cast<double>(db_->opts_.buffer_pool_pages);
  const OptimizerCalibration& cal = db_->calibration();
  q->reoptimizer = std::make_unique<DynamicReoptimizer>(
      &db_->catalog_, &db_->cost_, &cal, opt_opts, q->reopt, granted);
  q->reoptimizer->SetJournal(&db_->journal_);
  if (db_->feedback_enabled_)
    q->reoptimizer->SetFeedback(&db_->feedback_store_);
  q->ctx = std::make_unique<ExecContext>(&db_->pool_, &db_->catalog_,
                                         &db_->cost_,
                                         /*seed=*/1234 + ++db_->query_counter_);
  q->ctx->SetFaultInjector(&db_->faults_);
  // Readers are snapshot-bounded at admission: concurrent writer sessions
  // commit past the bound, so this query's rows match its solo run.
  db_->CaptureScanSnapshots(q->ctx.get());
  // Baseline the I/O slice now: other sessions' I/O since pool creation
  // must not be charged to this query.
  q->ctx->BeginIoSlice();

  Result<std::unique_ptr<QuerySession>> session = q->reoptimizer->StartSession(
      std::move(spec), q->ctx.get(), &q->out.result.rows,
      &q->out.result.schema);
  if (!session.ok()) {
    broker_.Release(q->id);
    q->ctx.reset();
    q->reoptimizer.reset();
    return session.status();
  }
  q->session = std::move(session).value();

  // The optimizer invocation advances the workload clock; the queue wait
  // is then charged to the query's own clock so deadline_ms covers time
  // spent waiting for admission.
  const double opt_ms = q->ctx->SimElapsedMs();
  const double wait_ms = std::max(0.0, now_ms_ - q->out.submitted_ms);
  now_ms_ += opt_ms;
  q->ctx->ChargeExternalMs(wait_ms);
  q->out.started_ms = now_ms_;
  q->out.granted_pages = granted;
  return Status::OK();
}

bool WorkloadManager::AdmitPending() {
  bool admitted_any = false;
  bool progress = true;
  while (progress && static_cast<int>(running_.size()) < opts_.max_active &&
         !queued_.empty()) {
    progress = false;
    for (size_t i = 0; i < queued_.size(); ++i) {
      // Anti-starvation: once the head has been skipped max_head_skips
      // times, admission turns strictly FIFO until it gets in — a stream
      // of small queries can then no longer starve a queued large one.
      if (i > 0 && head_skips_ >= opts_.max_head_skips) break;
      QueryRun* q = queries_[queued_[i]].get();
      Status st = AdmitOne(q);
      if (st.ok()) {
        if (i == 0) {
          head_skips_ = 0;
        } else {
          ++head_skips_;
        }
        queued_.erase(queued_.begin() + static_cast<long>(i));
        running_.push_back(q->id);
        admitted_any = true;
        progress = true;  // queue shifted: restart the scan
        break;
      }
      if (st.code() == StatusCode::kResourceExhausted) continue;  // later
      // Terminal failure (parse error, bind error, crash, ...).
      FinishQuery(q, st);
      queued_.erase(queued_.begin() + static_cast<long>(i));
      progress = true;
      break;
    }
  }
  return admitted_any;
}

void WorkloadManager::CancelExpiredQueued() {
  for (size_t i = 0; i < queued_.size();) {
    QueryRun* q = queries_[queued_[i]].get();
    if (q->reopt.deadline_ms > 0 &&
        now_ms_ - q->out.submitted_ms > q->reopt.deadline_ms) {
      RecordRejection(
          q, "queued_deadline",
          Status::Cancelled("cancelled in admission queue: waited past "
                            "deadline_ms"));
      queued_.erase(queued_.begin() + static_cast<long>(i));
    } else {
      ++i;
    }
  }
}

void WorkloadManager::FinishQuery(QueryRun* q, Status status) {
  // A writer whose transaction is still alive (error before commit) rolls
  // back; a committed or already-aborted one is left alone.
  if (q->is_dml && q->txn_id != 0 && db_->txn_.IsActive(q->txn_id))
    (void)db_->txn_.Abort(q->txn_id, status.ok() ? "rollback"
                                                 : status.message());
  q->out.status = std::move(status);
  q->out.finished_ms = now_ms_;
  // Session destruction runs the controller's cleanup guards (temp tables,
  // collector hook, journal) before the grant returns to the pool.
  q->session.reset();
  broker_.Release(q->id);
}

Result<bool> WorkloadManager::StepDml(QueryRun* q) {
  // One simulated lock-wait quantum per blocked round; mirrors
  // Database::ExecuteDml but yields the slot between attempts so the lock
  // holder can actually run (and release).
  constexpr double kWaitQuantumMs = 5.0;
  TransactionManager* tm = db_->txn_manager();
  Result<DmlResult> r = Status::Internal("not a DML statement");
  if (auto* ins = std::get_if<InsertAst>(&q->stmt)) {
    r = tm->ExecuteInsert(q->txn_id, *ins);
  } else if (auto* up = std::get_if<UpdateAst>(&q->stmt)) {
    r = tm->ExecuteUpdate(q->txn_id, *up);
  } else if (auto* del = std::get_if<DeleteAst>(&q->stmt)) {
    r = tm->ExecuteDelete(q->txn_id, *del);
  }
  if (r.ok()) {
    q->dml_rows = r.value().rows;
    return true;
  }
  if (r.status().code() != StatusCode::kLockWait) return r.status();
  const double waited = tm->ChargeLockWait(q->txn_id, kWaitQuantumMs);
  now_ms_ += kWaitQuantumMs;
  if (q->reopt.deadline_ms > 0 && waited >= q->reopt.deadline_ms) {
    (void)tm->Abort(q->txn_id, "timeout");
    return Status::Cancelled("lock wait timeout: txn " +
                             std::to_string(q->txn_id) + " aborted after " +
                             std::to_string(waited) + "ms");
  }
  return false;  // blocked; re-issue next round
}

void WorkloadManager::RecordRejection(QueryRun* q, const char* reason,
                                      Status status) {
  AdmissionReject rej;
  rej.query_id = q->id;
  rej.reason = reason;
  rej.queued = queued_.size();
  rej.active = static_cast<int>(running_.size());
  rej.at_ms = now_ms_;
  rejections_.push_back(rej);
  q->out.status = std::move(status);
  q->out.finished_ms = now_ms_;
}

Result<std::vector<WorkloadQueryResult>> WorkloadManager::Run() {
  while (!arrivals_.empty() || !queued_.empty() || !running_.empty()) {
    EnqueueArrivals();
    CancelExpiredQueued();
    AdmitPending();
    if (running_.empty()) {
      if (queued_.empty() && !arrivals_.empty()) {
        // Idle until the next arrival: advance the clock to it.
        double next = queries_[arrivals_.front()]->sub.arrival_ms;
        for (uint64_t id : arrivals_) {
          next = std::min(next, queries_[id]->sub.arrival_ms);
        }
        now_ms_ = std::max(now_ms_, next);
        continue;
      }
      if (!queued_.empty()) {
        // Nothing is running, so the whole budget is free — if the head
        // still cannot be admitted it never will be. Reject it rather
        // than spin.
        QueryRun* q = queries_[queued_.front()].get();
        RecordRejection(q, "ask_exceeds_budget",
                        Status::ResourceExhausted(
                            "admission: ask cannot be satisfied even by an "
                            "idle system"));
        queued_.pop_front();
      }
      continue;
    }

    // One cooperative round: each running session executes one scheduler
    // stage. The I/O slice brackets keep the shared DiskManager's counters
    // attributed to the session that incurred them.
    std::vector<uint64_t> commit_ready;
    for (size_t i = 0; i < running_.size();) {
      QueryRun* q = queries_[running_[i]].get();
      if (q->is_dml) {
        if (q->dml_ready) {
          ++i;  // already waiting on this round's group commit
          continue;
        }
        Result<bool> done = StepDml(q);
        if (!done.ok()) {
          FinishQuery(q, done.status());
          running_.erase(running_.begin() + static_cast<long>(i));
          continue;
        }
        if (done.value()) {
          q->dml_ready = true;
          commit_ready.push_back(q->id);
        }
        ++i;
        continue;
      }
      q->ctx->BeginIoSlice();
      const double t0 = q->ctx->SimElapsedMs();
      Result<bool> stepped = q->session->Step();
      q->ctx->EndIoSlice();
      const double t1 = q->ctx->SimElapsedMs();
      now_ms_ += std::max(0.0, t1 - t0);

      if (!stepped.ok()) {
        FinishQuery(q, stepped.status());
        running_.erase(running_.begin() + static_cast<long>(i));
        continue;
      }
      if (stepped.value()) {
        q->out.result.report = q->session->TakeReport();
        FinishQuery(q, Status::OK());
        running_.erase(running_.begin() + static_cast<long>(i));
        continue;
      }
      ++i;
    }

    // Group commit: every writer that finished its statement this round
    // becomes durable with one WAL fsync.
    if (!commit_ready.empty()) {
      std::vector<std::pair<uint64_t, std::string>> group;
      for (uint64_t id : commit_ready) {
        QueryRun* q = queries_[id].get();
        group.emplace_back(q->txn_id, "workload:" + std::to_string(q->id));
      }
      Status st = db_->txn_.CommitGroup(group);
      for (uint64_t id : commit_ready) {
        QueryRun* q = queries_[id].get();
        if (st.ok()) {
          const char* verb = std::holds_alternative<InsertAst>(q->stmt)
                                 ? "inserted"
                             : std::holds_alternative<UpdateAst>(q->stmt)
                                 ? "updated"
                                 : "deleted";
          q->out.result.message = std::string(verb) + " " +
                                  std::to_string(q->dml_rows) + " row(s)";
        }
        FinishQuery(q, st);
        running_.erase(std::find(running_.begin(), running_.end(), id));
      }
      if (st.code() == StatusCode::kCrashed) return st;
    }
  }

  std::vector<WorkloadQueryResult> out;
  out.reserve(queries_.size());
  for (auto& [id, q] : queries_) out.push_back(std::move(q->out));
  return out;
}

}  // namespace reoptdb
