# Empty compiler generated dependencies file for bench_hybrid.
# This may be replaced when dependencies are built.
