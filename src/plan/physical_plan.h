// Annotated physical query execution plans.
//
// Requirement #1 of the Dynamic Re-Optimization algorithm: the optimizer's
// estimates (cardinalities, sizes, costs, group counts) are embedded in the
// plan it produces and travel with it to the execution engine. Run-time
// observations are written back into the same nodes by the
// statistics-collector operators.

#ifndef REOPTDB_PLAN_PHYSICAL_PLAN_H_
#define REOPTDB_PLAN_PHYSICAL_PLAN_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "catalog/column_stats.h"
#include "parser/ast.h"
#include "plan/query_spec.h"
#include "types/schema.h"
#include "types/value.h"

namespace reoptdb {

enum class OpKind : uint8_t {
  kSeqScan,
  kIndexScan,
  kFilter,
  kProject,
  kHashJoin,       // child 0 = build (paper: "left input"), child 1 = probe
  kMergeJoin,      // children sorted on the join keys (via kSort nodes)
  kIndexNLJoin,    // child 0 = outer; inner is an indexed base table
  kHashAggregate,
  kSort,
  kMaterialize,    // writes child output to a temp heap, then streams it
  kStatsCollector, // streaming pass-through gathering statistics
  kLimit,
  kExchange,       // leaf streaming a bound exchange buffer (sharded exec);
                   // `table` names the ExecContext exchange binding
};

const char* OpKindName(OpKind k);

/// A predicate evaluated against an operator's input schema; columns are
/// qualified names ("alias.col") resolved at operator-build time.
struct ScalarPred {
  std::string column;
  CmpOp op = CmpOp::kEq;
  bool rhs_is_column = false;
  Value literal;
  std::string rhs_column;

  std::string ToString() const;
};

/// Optimizer annotations on one plan node (the paper's "annotated query
/// execution plan").
struct PlanEstimates {
  double cardinality = 0;      ///< estimated output rows
  double avg_tuple_bytes = 0;  ///< estimated output tuple width
  double pages = 0;            ///< estimated output size in pages
  double cost_self_ms = 0;     ///< operator's own simulated cost
  double cost_total_ms = 0;    ///< cumulative subtree cost
  double num_groups = 0;       ///< aggregates: estimated group count
  double selectivity = 1.0;    ///< filters/joins: estimated selectivity
};

/// Run-time observations for one plan edge, produced by a collector.
struct ObservedStats {
  bool valid = false;
  /// True when the collector closed before exhausting its input (e.g. the
  /// query switched plans or an operator shrink-spilled mid-probe): counts
  /// are lower bounds over the tuples seen so far, not exact observations.
  /// Controller estimate refreshes ignore partial observations; the
  /// feedback store only uses them to *raise* estimates, never lower them.
  bool partial = false;
  double cardinality = 0;
  double avg_tuple_bytes = 0;
  /// Per-attribute statistics (qualified column name -> stats). Histograms
  /// are built from a reservoir sample; distinct counts from an FM sketch.
  std::map<std::string, ColumnStats> columns;
};

/// What a statistics-collector node computes (chosen by the SCIA;
/// cardinality / average tuple size / min-max are always collected since
/// their cost is negligible — paper Section 2.5).
struct CollectorSpec {
  std::vector<std::string> histogram_cols;  ///< qualified names
  std::vector<std::string> unique_cols;     ///< qualified names
  int num_buckets = 50;
  size_t reservoir_capacity = 1024;  ///< one page worth of sample values
};

/// One aggregate computed by a kHashAggregate node.
struct AggSpec {
  AggFunc func = AggFunc::kNone;
  bool count_star = false;
  std::string column;  ///< qualified input column (unused for COUNT(*))
  std::string out_name;
  ValueType out_type = ValueType::kDouble;
};

/// \brief A node of the physical plan tree.
struct PlanNode {
  OpKind kind;
  int id = -1;  ///< unique within the plan (assigned by the optimizer)
  std::vector<std::unique_ptr<PlanNode>> children;
  Schema output_schema;

  /// QuerySpec relation ordinals covered by this subtree (drives remainder
  /// reconstruction during plan modification).
  std::set<int> covers;

  // --- Scans (kSeqScan / kIndexScan, and the inner side of kIndexNLJoin).
  std::string table;
  std::string alias;
  std::vector<ScalarPred> filters;  ///< pushed-down / residual predicates
  std::string index_column;         ///< bare column name carrying the index
  std::optional<int64_t> range_lo, range_hi;  ///< inclusive index bounds

  // --- Joins.
  std::vector<std::string> left_keys, right_keys;  ///< qualified names

  // --- Aggregation.
  std::vector<std::string> group_cols;  ///< qualified names
  std::vector<AggSpec> aggs;

  // --- Projection (kProject): qualified input columns and output names.
  std::vector<std::string> project_cols;
  std::vector<std::string> project_names;

  // --- Sort keys: (output-schema column name, ascending).
  std::vector<std::pair<std::string, bool>> sort_keys;

  // --- Limit.
  int64_t limit = -1;

  // --- Statistics collection (kStatsCollector).
  CollectorSpec collector;

  // --- Annotations.
  PlanEstimates est;       ///< the optimizer's original estimates
  ObservedStats observed;  ///< run-time observations (collectors)
  /// Estimates recomputed from run-time observations ("improved estimates",
  /// paper Section 2.2). Initialized to `est`; refreshed after each stage.
  PlanEstimates improved;

  // --- Memory (memory-consuming operators only).
  double min_mem_pages = 0;
  double max_mem_pages = 0;
  double mem_budget_pages = 0;  ///< assigned by the MemoryManager

  /// True for operators with a blocking phase that defines a scheduler
  /// stage boundary (hash-join build, aggregate absorb, sort, materialize).
  bool IsBlocking() const {
    return kind == OpKind::kHashJoin || kind == OpKind::kHashAggregate ||
           kind == OpKind::kSort || kind == OpKind::kMaterialize;
  }

  bool IsMemoryConsumer() const {
    return kind == OpKind::kHashJoin || kind == OpKind::kHashAggregate ||
           kind == OpKind::kSort;
  }

  /// Pretty-printed tree with annotations (EXPLAIN output).
  std::string ToString(int indent = 0) const;

  /// Deep copy (estimates included, observations reset).
  std::unique_ptr<PlanNode> Clone() const;

  /// Finds a node by id (nullptr when absent).
  PlanNode* Find(int node_id);

  /// Visits nodes in post-order.
  template <typename F>
  void PostOrder(F&& f) {
    for (auto& c : children) c->PostOrder(f);
    f(this);
  }
  template <typename F>
  void PostOrder(F&& f) const {
    for (const auto& c : children) c->PostOrder(f);
    f(this);
  }
};

}  // namespace reoptdb

#endif  // REOPTDB_PLAN_PHYSICAL_PLAN_H_
