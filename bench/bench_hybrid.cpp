// The paper's Section 4 proposal, measured: parametric plans vs static
// plans vs the parametric + Dynamic Re-Optimization hybrid.
//
// A query is compiled once (anticipating several memory budgets) and then
// executed under memory conditions unknown at compile time. Compared:
//   static    — one plan compiled assuming ample memory, run as-is;
//   parametric — pick the branch nearest the actual budget (as in [10]);
//   hybrid    — parametric pick + Dynamic Re-Optimization at run time
//               (the paper: "possibly in combination with parameterized
//               plans [this] will form the basis for the future evolution
//               of query optimizers").

#include "bench_common.h"

using namespace reoptdb;
using namespace reoptdb::bench;

int main() {
  BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader("Hybrid: parametric plans + Dynamic Re-Optimization", cfg);
  auto db = MakeTpcdDatabase(cfg);

  const std::string sql = tpcd::Q5Sql();
  Result<PreparedQuery> prepared = db->Prepare(sql, {24, 96, 384});
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n",
                 prepared.status().ToString().c_str());
    return 1;
  }
  std::printf("prepared Q5 with %zu branches (one-time simulated "
              "optimization cost %.1f ms)\n\n",
              prepared->plans.size(),
              prepared->plans.total_sim_opt_time_ms());

  ReoptOptions off;
  off.mode = ReoptMode::kOff;
  ReoptOptions full;

  std::printf("| actual memory (pages) | static (384-page plan) | "
              "parametric | hybrid |\n");
  std::printf("|---|---|---|---|\n");
  // Static baseline: one plan compiled for ample memory, reused as-is.
  Result<PreparedQuery> static_plan = db->Prepare(sql, {384});
  for (double mem : {24.0, 96.0, 384.0}) {
    QueryResult st = db->ExecutePrepared(*static_plan, mem, off).value();
    QueryResult par = db->ExecutePrepared(*prepared, mem, off).value();
    QueryResult hyb = db->ExecutePrepared(*prepared, mem, full).value();
    std::printf("| %.0f | %.1f ms | %.1f ms | %.1f ms (%d switches, "
                "%d reallocs) |\n",
                mem, st.report.sim_time_ms, par.report.sim_time_ms,
                hyb.report.sim_time_ms, hyb.report.plans_switched,
                hyb.report.memory_reallocations);
  }
  std::printf(
      "\nExpected shape: the hybrid tracks (or beats) the best of the other "
      "two at every memory point. Note that a parametric branch can still "
      "be a bad plan when the catalog is stale - anticipation only covers "
      "the parameters it anticipated - and that is exactly the case the "
      "paper says Dynamic Re-Optimization should catch.\n");
  return 0;
}
