# Empty dependencies file for skewed_catalog.
# This may be replaced when dependencies are built.
