// Lexer for the SQL subset.

#ifndef REOPTDB_PARSER_LEXER_H_
#define REOPTDB_PARSER_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "parser/token.h"

namespace reoptdb {

/// Tokenizes `sql`. Keywords are recognized case-insensitively and
/// normalized to upper case; identifiers are lower-cased (the engine is
/// case-insensitive, like most SQL systems).
Result<std::vector<Token>> Lex(const std::string& sql);

}  // namespace reoptdb

#endif  // REOPTDB_PARSER_LEXER_H_
