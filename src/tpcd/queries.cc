#include "tpcd/queries.h"

namespace reoptdb {
namespace tpcd {

std::string Q1Sql() {
  return "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, "
         "SUM(l_extendedprice) AS sum_base_price, AVG(l_discount) AS avg_disc, "
         "COUNT(*) AS count_order "
         "FROM lineitem WHERE l_shipdate <= 2100 "
         "GROUP BY l_returnflag, l_linestatus";
}

std::string Q3Sql() {
  return "SELECT l_orderkey, o_orderdate, SUM(l_extendedprice) AS revenue "
         "FROM customer, orders, lineitem "
         "WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey "
         "AND l_orderkey = o_orderkey AND o_orderdate < 1260 "
         "AND l_shipdate > 1260 "
         "GROUP BY l_orderkey, o_orderdate";
}

std::string Q5Sql() {
  return "SELECT n_name, SUM(l_extendedprice) AS revenue "
         "FROM customer, orders, lineitem, supplier, nation, region "
         "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey "
         "AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey "
         "AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey "
         "AND r_name = 'ASIA' AND o_orderdate >= 730 AND o_orderdate < 1095 "
         "GROUP BY n_name";
}

std::string Q6Sql() {
  return "SELECT SUM(l_extendedprice) AS revenue FROM lineitem "
         "WHERE l_shipdate >= 730 AND l_shipdate < 1095 "
         "AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24";
}

std::string Q7Sql() {
  return "SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation, "
         "l_shipyear, SUM(l_extendedprice) AS revenue "
         "FROM supplier, lineitem, orders, customer, nation n1, nation n2 "
         "WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey "
         "AND c_custkey = o_custkey AND s_nationkey = n1.n_nationkey "
         "AND c_nationkey = n2.n_nationkey AND n1.n_name = 'FRANCE' "
         "AND n2.n_name = 'GERMANY' "
         "AND l_shipdate >= 1095 AND l_shipdate <= 1825 "
         "GROUP BY n1.n_name, n2.n_name, l_shipyear";
}

std::string Q8Sql() {
  return "SELECT o_orderyear, AVG(l_extendedprice) AS mkt_share "
         "FROM part, supplier, lineitem, orders, customer, nation n1, "
         "nation n2, region "
         "WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey "
         "AND l_orderkey = o_orderkey AND o_custkey = c_custkey "
         "AND c_nationkey = n1.n_nationkey AND n1.n_regionkey = r_regionkey "
         "AND r_name = 'AMERICA' AND s_nationkey = n2.n_nationkey "
         "AND o_orderdate >= 1095 AND o_orderdate <= 1825 "
         "AND p_type = 'ECONOMY ANODIZED STEEL' "
         "GROUP BY o_orderyear";
}

std::string Q10Sql() {
  return "SELECT c_custkey, n_name, SUM(l_extendedprice) AS revenue "
         "FROM customer, orders, lineitem, nation "
         "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey "
         "AND o_orderdate >= 730 AND o_orderdate < 820 "
         "AND l_returnflag = 'R' AND c_nationkey = n_nationkey "
         "GROUP BY c_custkey, n_name";
}

std::vector<TpcdQuery> AllQueries() {
  return {
      {"Q1", QueryClass::kSimple, Q1Sql()},
      {"Q3", QueryClass::kMedium, Q3Sql()},
      {"Q5", QueryClass::kComplex, Q5Sql()},
      {"Q6", QueryClass::kSimple, Q6Sql()},
      {"Q7", QueryClass::kComplex, Q7Sql()},
      {"Q8", QueryClass::kComplex, Q8Sql()},
      {"Q10", QueryClass::kMedium, Q10Sql()},
  };
}

const char* QueryClassName(QueryClass cls) {
  switch (cls) {
    case QueryClass::kSimple:
      return "simple";
    case QueryClass::kMedium:
      return "medium";
    case QueryClass::kComplex:
      return "complex";
  }
  return "?";
}

}  // namespace tpcd
}  // namespace reoptdb
