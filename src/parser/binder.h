// Binder: resolves a parsed AST against the catalog, producing a QuerySpec.

#ifndef REOPTDB_PARSER_BINDER_H_
#define REOPTDB_PARSER_BINDER_H_

#include "catalog/catalog.h"
#include "parser/ast.h"
#include "plan/query_spec.h"

namespace reoptdb {

/// Resolves names, classifies predicates into per-relation filters and
/// equi-joins, and validates aggregation/grouping semantics.
///
/// Restrictions (returned as BindError / NotSupported):
///  - cross-relation predicates must be equality joins;
///  - with aggregation, every plain select item must appear in GROUP BY;
///  - ORDER BY must reference select-list columns (by alias or name).
Result<QuerySpec> Bind(const SelectStmtAst& stmt, const Catalog& catalog);

}  // namespace reoptdb

#endif  // REOPTDB_PARSER_BINDER_H_
