file(REMOVE_RECURSE
  "CMakeFiles/statement_test.dir/statement_test.cc.o"
  "CMakeFiles/statement_test.dir/statement_test.cc.o.d"
  "statement_test"
  "statement_test.pdb"
  "statement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
