#include "parser/binder.h"

#include <algorithm>
#include <map>

namespace reoptdb {

namespace {

/// Resolution context: the bound FROM clause.
struct Scope {
  const Catalog* catalog;
  std::vector<RelationRef> relations;
  std::vector<const TableInfo*> tables;

  Result<ColumnId> Resolve(const ColumnRefAst& ref) const {
    ColumnId out;
    int matches = 0;
    for (size_t r = 0; r < relations.size(); ++r) {
      if (!ref.qualifier.empty() && relations[r].alias != ref.qualifier)
        continue;
      Result<size_t> idx = tables[r]->schema.IndexOf(ref.name);
      if (!idx.ok()) continue;
      ++matches;
      out.rel = static_cast<int>(r);
      out.column = ref.name;
      out.type = tables[r]->schema.column(idx.value()).type;
    }
    if (matches == 0)
      return Status::BindError("column not found: " + ref.ToString());
    if (matches > 1)
      return Status::BindError("ambiguous column: " + ref.ToString());
    return out;
  }
};

bool IsNumeric(ValueType t) { return t != ValueType::kString; }

Status CheckComparable(ValueType a, ValueType b, const std::string& ctx) {
  bool ok = (a == ValueType::kString) == (b == ValueType::kString);
  if (!ok)
    return Status::BindError("type mismatch (string vs numeric) in " + ctx);
  return Status::OK();
}

}  // namespace

Result<QuerySpec> Bind(const SelectStmtAst& stmt, const Catalog& catalog) {
  if (stmt.tables.empty()) return Status::BindError("FROM clause is empty");

  Scope scope;
  scope.catalog = &catalog;
  for (const TableRefAst& t : stmt.tables) {
    ASSIGN_OR_RETURN(const TableInfo* info, catalog.Get(t.table));
    for (const RelationRef& existing : scope.relations) {
      if (existing.alias == t.alias)
        return Status::BindError("duplicate table alias: " + t.alias);
    }
    scope.relations.push_back(RelationRef{t.alias, t.table});
    scope.tables.push_back(info);
  }

  QuerySpec spec;
  spec.relations = scope.relations;
  spec.limit = stmt.limit;

  // Predicates.
  for (const PredicateAst& p : stmt.predicates) {
    const bool lhs_col = std::holds_alternative<ColumnRefAst>(p.lhs);
    const bool rhs_col = std::holds_alternative<ColumnRefAst>(p.rhs);
    if (!lhs_col && !rhs_col)
      return Status::NotSupported("constant-only predicate");

    if (lhs_col && rhs_col) {
      ASSIGN_OR_RETURN(ColumnId l, scope.Resolve(std::get<ColumnRefAst>(p.lhs)));
      ASSIGN_OR_RETURN(ColumnId r, scope.Resolve(std::get<ColumnRefAst>(p.rhs)));
      RETURN_IF_ERROR(CheckComparable(l.type, r.type, "predicate"));
      if (l.rel == r.rel) {
        FilterPred f;
        f.rel = l.rel;
        f.column = l.column;
        f.op = p.op;
        f.rhs_is_column = true;
        f.rhs_column = r.column;
        spec.filters.push_back(std::move(f));
      } else {
        if (p.op != CmpOp::kEq)
          return Status::NotSupported(
              "cross-relation predicates must be equi-joins");
        JoinPred j;
        if (l.rel < r.rel) {
          j = JoinPred{l.rel, l.column, r.rel, r.column};
        } else {
          j = JoinPred{r.rel, r.column, l.rel, l.column};
        }
        spec.joins.push_back(std::move(j));
      }
      continue;
    }

    // Column vs literal (normalize: column on the left).
    ColumnRefAst col_ref =
        lhs_col ? std::get<ColumnRefAst>(p.lhs) : std::get<ColumnRefAst>(p.rhs);
    Value lit = lhs_col ? std::get<Value>(p.rhs) : std::get<Value>(p.lhs);
    CmpOp op = lhs_col ? p.op : FlipCmp(p.op);
    ASSIGN_OR_RETURN(ColumnId c, scope.Resolve(col_ref));
    RETURN_IF_ERROR(CheckComparable(c.type, lit.type(), "predicate"));
    FilterPred f;
    f.rel = c.rel;
    f.column = c.column;
    f.op = op;
    f.literal = std::move(lit);
    spec.filters.push_back(std::move(f));
  }

  // Select items ('*' expands to every column of every relation).
  std::vector<SelectItemAst> items;
  for (const SelectItemAst& item : stmt.items) {
    if (!item.star) {
      items.push_back(item);
      continue;
    }
    for (size_t r = 0; r < scope.relations.size(); ++r) {
      for (const Column& c : scope.tables[r]->schema.columns()) {
        SelectItemAst expanded;
        expanded.column = ColumnRefAst{scope.relations[r].alias, c.name};
        items.push_back(std::move(expanded));
      }
    }
  }

  std::map<std::string, int> name_counts;
  for (const SelectItemAst& item : items) {
    OutputItem out;
    out.agg = item.agg;
    out.count_star = item.count_star;
    if (!item.count_star) {
      ASSIGN_OR_RETURN(out.col, scope.Resolve(item.column));
      if (item.agg != AggFunc::kNone && item.agg != AggFunc::kCount &&
          item.agg != AggFunc::kMin && item.agg != AggFunc::kMax &&
          !IsNumeric(out.col.type)) {
        return Status::BindError(std::string(AggFuncName(item.agg)) +
                                 " requires a numeric column");
      }
    }
    if (!item.alias.empty()) {
      out.name = item.alias;
    } else if (item.agg == AggFunc::kNone) {
      out.name = out.col.column;
    } else {
      std::string base = AggFuncName(item.agg);
      std::transform(base.begin(), base.end(), base.begin(), ::tolower);
      out.name = base + "_" + (item.count_star ? "star" : out.col.column);
    }
    int n = name_counts[out.name]++;
    if (n > 0) out.name += "_" + std::to_string(n);
    spec.items.push_back(std::move(out));
  }

  // Group by.
  for (const ColumnRefAst& g : stmt.group_by) {
    ASSIGN_OR_RETURN(ColumnId c, scope.Resolve(g));
    spec.group_by.push_back(std::move(c));
  }

  // Aggregation semantics.
  const bool has_agg = spec.has_aggregates() || !spec.group_by.empty();
  if (has_agg) {
    for (const OutputItem& item : spec.items) {
      if (item.agg != AggFunc::kNone) continue;
      bool grouped = false;
      for (const ColumnId& g : spec.group_by)
        if (g == item.col) grouped = true;
      if (!grouped)
        return Status::BindError("column " + spec.Qualified(item.col) +
                                 " must appear in GROUP BY");
    }
  }

  // Order by: bind to select items by output name, or by the bare/qualified
  // column name of a plain item.
  for (const OrderByAst& ob : stmt.order_by) {
    int idx = -1;
    for (size_t i = 0; i < spec.items.size(); ++i) {
      const OutputItem& item = spec.items[i];
      if (ob.column.qualifier.empty() && item.name == ob.column.name) {
        idx = static_cast<int>(i);
        break;
      }
      if (item.agg == AggFunc::kNone && item.col.column == ob.column.name &&
          (ob.column.qualifier.empty() ||
           spec.relations[item.col.rel].alias == ob.column.qualifier)) {
        idx = static_cast<int>(i);
        break;
      }
    }
    if (idx < 0)
      return Status::BindError("ORDER BY column not in select list: " +
                               ob.column.ToString());
    spec.order_by.emplace_back(idx, ob.ascending);
  }

  return spec;
}

}  // namespace reoptdb
