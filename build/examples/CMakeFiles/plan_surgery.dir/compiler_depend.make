# Empty compiler generated dependencies file for plan_surgery.
# This may be replaced when dependencies are built.
