#include "catalog/column_stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace reoptdb {

namespace {
// System-R fallback selectivities when no statistics exist [22].
constexpr double kDefaultEqSelectivity = 0.1;
constexpr double kDefaultRangeSelectivity = 1.0 / 3.0;
}  // namespace

double ColumnStats::SelectivityEquals(double v, double row_count) const {
  if (row_count <= 0) return 0;
  // A histogram built from zero rows (empty table at ANALYZE time) has
  // total_count() == 0; dividing by it would poison the estimate with NaN,
  // which std::clamp does not repair. Fall through to the other paths.
  if (has_histogram() && histogram.total_count() > 0) {
    return std::clamp(histogram.EstimateEqual(v) / histogram.total_count(), 0.0,
                      1.0);
  }
  if (distinct > 0) {
    if (has_bounds && (v < min || v > max)) return 0;
    // distinct can legitimately land in (0, 1) after scaled sampling;
    // 1/distinct would then exceed 1.
    return std::min(1.0, 1.0 / distinct);
  }
  return kDefaultEqSelectivity;
}

double ColumnStats::SelectivityRange(double lo, bool lo_strict, double hi,
                                     bool hi_strict, double row_count) const {
  if (row_count <= 0) return 0;
  if (has_histogram() && histogram.total_count() > 0) {
    return std::clamp(
        histogram.EstimateRange(lo, lo_strict, hi, hi_strict) /
            histogram.total_count(),
        0.0, 1.0);
  }
  if (has_bounds && max > min) {
    // Uniform interpolation over [min, max].
    double clo = std::max(lo, min), chi = std::min(hi, max);
    if (clo > chi) return 0;
    return std::clamp((chi - clo) / (max - min), 0.0, 1.0);
  }
  return kDefaultRangeSelectivity;
}

std::string ColumnStats::ToString() const {
  std::ostringstream os;
  os << ValueTypeName(type);
  if (has_bounds) os << " [" << min << ", " << max << "]";
  if (distinct > 0) os << (distinct_is_lower_bound ? " d>=" : " d=") << distinct;
  if (has_histogram()) os << " " << histogram.ToString();
  return os.str();
}

}  // namespace reoptdb
