#include "storage/btree.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace reoptdb {

namespace {

// Node layout.
//   0: u8  is_leaf
//   2: u16 count
//   4: u32 next-leaf (leaf) / first-child (internal)
//   8: entries
// Leaf entry: i64 key, u32 rid.page_ordinal, u32 rid.slot        (16 bytes)
// Internal entry: i64 key, u32 rpage, u32 rslot, u32 child       (20 bytes)
constexpr size_t kEntriesOff = 8;
constexpr size_t kLeafEntryBytes = 16;
constexpr size_t kInternalEntryBytes = 20;
constexpr size_t kLeafCap = (kPageSize - kEntriesOff) / kLeafEntryBytes;
constexpr size_t kInternalCap = (kPageSize - kEntriesOff) / kInternalEntryBytes;

struct LeafEntry {
  int64_t key;
  Rid rid;
};
struct InternalEntry {
  int64_t key;
  Rid rid;
  PageId child;
};

// Composite (key, rid) ordering.
bool CompositeLess(int64_t ka, const Rid& ra, int64_t kb, const Rid& rb) {
  if (ka != kb) return ka < kb;
  return ra < rb;
}

bool IsLeaf(const Page& p) { return p.data[0] != 0; }
uint16_t NodeCount(const Page& p) {
  uint16_t v;
  std::memcpy(&v, p.data + 2, sizeof(v));
  return v;
}
uint32_t NodeLink(const Page& p) {
  uint32_t v;
  std::memcpy(&v, p.data + 4, sizeof(v));
  return v;
}
void SetHeader(Page* p, bool leaf, uint16_t count, uint32_t link) {
  p->data[0] = leaf ? 1 : 0;
  std::memcpy(p->data + 2, &count, sizeof(count));
  std::memcpy(p->data + 4, &link, sizeof(link));
}

LeafEntry ReadLeafEntry(const Page& p, size_t i) {
  LeafEntry e;
  const char* base = p.data + kEntriesOff + i * kLeafEntryBytes;
  std::memcpy(&e.key, base, 8);
  std::memcpy(&e.rid.page_ordinal, base + 8, 4);
  std::memcpy(&e.rid.slot, base + 12, 4);
  return e;
}
void LoadLeaf(const Page& p, std::vector<LeafEntry>* out) {
  uint16_t n = NodeCount(p);
  out->resize(n);
  for (uint16_t i = 0; i < n; ++i) (*out)[i] = ReadLeafEntry(p, i);
}
void StoreLeaf(Page* p, const std::vector<LeafEntry>& entries, uint32_t next) {
  SetHeader(p, /*leaf=*/true, static_cast<uint16_t>(entries.size()), next);
  for (size_t i = 0; i < entries.size(); ++i) {
    char* base = p->data + kEntriesOff + i * kLeafEntryBytes;
    std::memcpy(base, &entries[i].key, 8);
    std::memcpy(base + 8, &entries[i].rid.page_ordinal, 4);
    std::memcpy(base + 12, &entries[i].rid.slot, 4);
  }
}

InternalEntry ReadInternalEntry(const Page& p, size_t i) {
  InternalEntry e;
  const char* base = p.data + kEntriesOff + i * kInternalEntryBytes;
  std::memcpy(&e.key, base, 8);
  std::memcpy(&e.rid.page_ordinal, base + 8, 4);
  std::memcpy(&e.rid.slot, base + 12, 4);
  std::memcpy(&e.child, base + 16, 4);
  return e;
}
void LoadInternal(const Page& p, PageId* first_child,
                  std::vector<InternalEntry>* out) {
  *first_child = NodeLink(p);
  uint16_t n = NodeCount(p);
  out->resize(n);
  for (uint16_t i = 0; i < n; ++i) (*out)[i] = ReadInternalEntry(p, i);
}
void StoreInternal(Page* p, PageId first_child,
                   const std::vector<InternalEntry>& entries) {
  SetHeader(p, /*leaf=*/false, static_cast<uint16_t>(entries.size()),
            first_child);
  for (size_t i = 0; i < entries.size(); ++i) {
    char* base = p->data + kEntriesOff + i * kInternalEntryBytes;
    std::memcpy(base, &entries[i].key, 8);
    std::memcpy(base + 8, &entries[i].rid.page_ordinal, 4);
    std::memcpy(base + 12, &entries[i].rid.slot, 4);
    std::memcpy(base + 16, &entries[i].child, 4);
  }
}

// Child that may contain the composite (key, rid): the child of the last
// entry whose composite is <= target, or first_child when all are greater.
PageId PickChild(PageId first_child, const std::vector<InternalEntry>& es,
                 int64_t key, const Rid& rid) {
  PageId child = first_child;
  for (const InternalEntry& e : es) {
    if (CompositeLess(key, rid, e.key, e.rid)) break;
    child = e.child;
  }
  return child;
}

}  // namespace

Result<BTree> BTree::Create(BufferPool* pool) {
  BTree tree(pool);
  ASSIGN_OR_RETURN(auto id_page, pool->NewPage());
  SetHeader(id_page.second, /*leaf=*/true, 0, kInvalidPageId);
  RETURN_IF_ERROR(pool->Unpin(id_page.first, /*dirty=*/true));
  tree.root_ = id_page.first;
  return tree;
}

Status BTree::InsertRec(PageId node, int64_t key, const Rid& rid,
                        std::optional<SplitResult>* split) {
  split->reset();
  ASSIGN_OR_RETURN(PageGuard guard, PageGuard::Fetch(pool_, node));

  if (IsLeaf(*guard.page())) {
    std::vector<LeafEntry> entries;
    LoadLeaf(*guard.page(), &entries);
    auto pos = std::lower_bound(
        entries.begin(), entries.end(), LeafEntry{key, rid},
        [](const LeafEntry& a, const LeafEntry& b) {
          return CompositeLess(a.key, a.rid, b.key, b.rid);
        });
    entries.insert(pos, LeafEntry{key, rid});
    if (entries.size() <= kLeafCap) {
      StoreLeaf(guard.page(), entries, NodeLink(*guard.page()));
      guard.MarkDirty();
      return Status::OK();
    }
    // Split: move the upper half to a new right sibling.
    size_t mid = entries.size() / 2;
    std::vector<LeafEntry> right_entries(entries.begin() + mid, entries.end());
    entries.resize(mid);
    uint32_t old_next = NodeLink(*guard.page());
    ASSIGN_OR_RETURN(auto right, pool_->NewPage());
    ++nodes_;
    StoreLeaf(right.second, right_entries, old_next);
    RETURN_IF_ERROR(pool_->Unpin(right.first, /*dirty=*/true));
    StoreLeaf(guard.page(), entries, right.first);
    guard.MarkDirty();
    *split = SplitResult{right_entries[0].key, right_entries[0].rid,
                         right.first};
    return Status::OK();
  }

  // Internal node.
  PageId first_child;
  std::vector<InternalEntry> entries;
  LoadInternal(*guard.page(), &first_child, &entries);
  PageId child = PickChild(first_child, entries, key, rid);

  std::optional<SplitResult> child_split;
  RETURN_IF_ERROR(InsertRec(child, key, rid, &child_split));
  if (!child_split) return Status::OK();

  InternalEntry new_entry{child_split->sep_key, child_split->sep_rid,
                          child_split->right};
  auto pos = std::lower_bound(
      entries.begin(), entries.end(), new_entry,
      [](const InternalEntry& a, const InternalEntry& b) {
        return CompositeLess(a.key, a.rid, b.key, b.rid);
      });
  entries.insert(pos, new_entry);
  if (entries.size() <= kInternalCap) {
    StoreInternal(guard.page(), first_child, entries);
    guard.MarkDirty();
    return Status::OK();
  }
  // Split internal node: middle entry is promoted.
  size_t mid = entries.size() / 2;
  InternalEntry promoted = entries[mid];
  std::vector<InternalEntry> right_entries(entries.begin() + mid + 1,
                                           entries.end());
  entries.resize(mid);
  ASSIGN_OR_RETURN(auto right, pool_->NewPage());
  ++nodes_;
  StoreInternal(right.second, promoted.child, right_entries);
  RETURN_IF_ERROR(pool_->Unpin(right.first, /*dirty=*/true));
  StoreInternal(guard.page(), first_child, entries);
  guard.MarkDirty();
  *split = SplitResult{promoted.key, promoted.rid, right.first};
  return Status::OK();
}

Status BTree::Insert(int64_t key, const Rid& rid) {
  std::optional<SplitResult> split;
  RETURN_IF_ERROR(InsertRec(root_, key, rid, &split));
  ++entries_;
  if (!split) return Status::OK();
  // Grow a new root.
  ASSIGN_OR_RETURN(auto new_root, pool_->NewPage());
  ++nodes_;
  std::vector<InternalEntry> entries{
      InternalEntry{split->sep_key, split->sep_rid, split->right}};
  StoreInternal(new_root.second, root_, entries);
  RETURN_IF_ERROR(pool_->Unpin(new_root.first, /*dirty=*/true));
  root_ = new_root.first;
  ++height_;
  return Status::OK();
}

Result<PageId> BTree::DescendToLeaf(int64_t key, const Rid& rid) const {
  PageId node = root_;
  while (true) {
    ASSIGN_OR_RETURN(PageGuard guard, PageGuard::Fetch(pool_, node));
    if (IsLeaf(*guard.page())) return node;
    PageId first_child;
    std::vector<InternalEntry> entries;
    LoadInternal(*guard.page(), &first_child, &entries);
    node = PickChild(first_child, entries, key, rid);
  }
}

Result<BTree::Iterator> BTree::SeekAtLeast(int64_t lo) const {
  Rid zero{0, 0};
  ASSIGN_OR_RETURN(PageId leaf, DescendToLeaf(lo, zero));
  Iterator it;
  it.pool_ = pool_;
  it.leaf_ = leaf;
  // Position at the first entry >= (lo, zero).
  ASSIGN_OR_RETURN(PageGuard guard, PageGuard::Fetch(pool_, leaf));
  uint16_t n = NodeCount(*guard.page());
  uint32_t pos = 0;
  while (pos < n) {
    LeafEntry e = ReadLeafEntry(*guard.page(), pos);
    if (!CompositeLess(e.key, e.rid, lo, zero)) break;
    ++pos;
  }
  it.pos_ = pos;
  return it;
}

Result<BTree::Iterator> BTree::SeekRange(int64_t lo, int64_t hi) const {
  ASSIGN_OR_RETURN(Iterator it, SeekAtLeast(lo));
  it.bounded_ = true;
  it.hi_ = hi;
  return it;
}

Status BTree::Lookup(int64_t key, std::vector<Rid>* out) const {
  ASSIGN_OR_RETURN(Iterator it, SeekRange(key, key));
  int64_t k;
  Rid rid;
  while (true) {
    ASSIGN_OR_RETURN(bool more, it.Next(&k, &rid));
    if (!more) break;
    out->push_back(rid);
  }
  return Status::OK();
}

Result<bool> BTree::Iterator::Next(int64_t* key, Rid* rid) {
  while (true) {
    if (leaf_ == kInvalidPageId) return false;
    ASSIGN_OR_RETURN(PageGuard guard, PageGuard::Fetch(pool_, leaf_));
    uint16_t n = NodeCount(*guard.page());
    if (pos_ >= n) {
      leaf_ = NodeLink(*guard.page());
      pos_ = 0;
      continue;
    }
    LeafEntry e = ReadLeafEntry(*guard.page(), pos_);
    ++pos_;
    if (bounded_ && e.key > hi_) {
      leaf_ = kInvalidPageId;
      return false;
    }
    *key = e.key;
    *rid = e.rid;
    return true;
  }
}

}  // namespace reoptdb
