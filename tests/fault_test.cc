// Fault-tolerance tests: the FaultInjector registry itself, a sweep of
// every injection point × trigger policy against a TPC-D query that
// reliably attempts plan switches, and cooperative cancellation.
//
// The contract under test (the failure model in DESIGN.md): with any
// point armed, a query either (a) completes with correct results and a
// recorded recovery (ReoptFailure / degradation / transparent I/O retry),
// or (b) fails with a clean typed error — and in both cases leaks nothing:
// no temp tables in the catalog, no live collector hook, no lost disk
// pages.

#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "engine/database.h"
#include "engine/workload_manager.h"
#include "exec/exchange_op.h"
#include "gtest/gtest.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "shard/sharded_executor.h"
#include "storage/disk_manager.h"
#include "test_util.h"
#include "tpcd/dbgen.h"
#include "tpcd/queries.h"

namespace reoptdb {
namespace {

using testing_util::Canon;
using testing_util::LoadEmpDept;

// ---------------------------------------------------------------------------
// FaultInjector unit tests.

TEST(FaultInjectorTest, NthCallFiresExactlyOnce) {
  FaultInjector fi;
  EXPECT_FALSE(fi.AnyArmed());
  EXPECT_TRUE(fi.Check(faults::kStorageRead).ok());  // unarmed: no-op

  FaultSpec nth2;
  nth2.trigger = FaultTrigger::kNthCall;
  nth2.nth = 2;
  REOPTDB_ASSERT_OK(fi.Arm(faults::kStorageRead, nth2));
  EXPECT_TRUE(fi.Check(faults::kStorageRead).ok());
  Status st = fi.Check(faults::kStorageRead);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);  // storage.* injects I/O errors
  EXPECT_NE(st.ToString().find("injected fault"), std::string::npos);
  EXPECT_TRUE(fi.Check(faults::kStorageRead).ok());  // nth fires only once
  EXPECT_EQ(fi.StatsFor(faults::kStorageRead).calls, 3u);
  EXPECT_EQ(fi.StatsFor(faults::kStorageRead).fires, 1u);
}

TEST(FaultInjectorTest, EveryCallAndErrorCodeByPrefix) {
  FaultInjector fi;
  FaultSpec every;
  every.trigger = FaultTrigger::kEveryCall;
  REOPTDB_ASSERT_OK(fi.Arm(faults::kMemoryGrant, every));
  REOPTDB_ASSERT_OK(fi.Arm(faults::kReoptOptimize, every));
  EXPECT_EQ(fi.Check(faults::kMemoryGrant).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(fi.Check(faults::kMemoryGrant).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(fi.Check(faults::kReoptOptimize).code(), StatusCode::kInternal);
}

TEST(FaultInjectorTest, ProbabilityStreamIsDeterministic) {
  FaultInjector fi;
  FaultSpec prob;
  prob.trigger = FaultTrigger::kProbability;
  prob.probability = 0.5;
  prob.seed = 9;
  REOPTDB_ASSERT_OK(fi.Arm(faults::kReoptScia, prob));
  std::vector<bool> first;
  for (int i = 0; i < 64; ++i)
    first.push_back(!fi.Check(faults::kReoptScia).ok());
  EXPECT_GT(fi.StatsFor(faults::kReoptScia).fires, 0u);
  EXPECT_LT(fi.StatsFor(faults::kReoptScia).fires, 64u);

  REOPTDB_ASSERT_OK(fi.Arm(faults::kReoptScia, prob));  // re-arm: fresh stream
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(!fi.Check(faults::kReoptScia).ok(), first[static_cast<size_t>(i)])
        << "probability stream diverged at call " << i;
}

TEST(FaultInjectorTest, ConfigureGrammar) {
  FaultInjector fi;
  REOPTDB_ASSERT_OK(
      fi.Configure("reopt.optimize=nth:3,storage.write=every,"
                   "storage.read=prob:0.25@7"));
  EXPECT_TRUE(fi.armed(faults::kReoptOptimize));
  EXPECT_TRUE(fi.armed(faults::kStorageWrite));
  EXPECT_TRUE(fi.armed(faults::kStorageRead));
  EXPECT_NE(fi.Describe().find("reopt.optimize"), std::string::npos);

  EXPECT_FALSE(fi.Configure("bogus").ok());
  EXPECT_FALSE(fi.Configure("no.such.point=every").ok());
  EXPECT_FALSE(fi.Configure("storage.read=nth:x").ok());
  EXPECT_FALSE(fi.Configure("storage.read=prob:2.0").ok());

  fi.Reset();
  EXPECT_FALSE(fi.AnyArmed());

  // Known points cover everything the sweep below arms, plus the crash
  // recovery points (journal.append, recovery.load), the workload
  // pressure points (memory.revoke, exec.spill), the transaction layer
  // (wal.append, wal.fsync, lock.acquire, txn.commit), and the cluster
  // points (net.send, net.recv, node.crash).
  EXPECT_EQ(FaultInjector::KnownPoints().size(), 20u);

  // The crash: prefix parses on any trigger and shows up in Describe().
  FaultInjector crash;
  REOPTDB_ASSERT_OK(
      crash.Configure("journal.append=crash:nth:1,recovery.load=crash:every,"
                      "storage.write=crash:prob:0.5@3"));
  EXPECT_NE(crash.Describe().find("crash:"), std::string::npos);
  Status st = crash.Check(faults::kJournalAppend);
  EXPECT_EQ(st.code(), StatusCode::kCrashed);
  // A firing crash point latches crash_pending (which CheckCancelled turns
  // into query-wide termination) until ClearCrash — the "restart".
  EXPECT_TRUE(crash.crash_pending());
  crash.ClearCrash();
  EXPECT_FALSE(crash.crash_pending());
}

// prob:p@seed schedules are a function of (seed, call index) only: the
// same seed produces the identical fire schedule no matter where the calls
// come from — the property chaos runs rely on to reproduce a crash
// schedule across row-mode and batched-mode executions.
TEST(FaultInjectorTest, SeededProbabilityFireLogIsReproducible) {
  auto run = [](uint64_t seed, int calls) {
    FaultInjector fi;
    FaultSpec prob;
    prob.trigger = FaultTrigger::kProbability;
    prob.probability = 0.3;
    prob.seed = seed;
    EXPECT_TRUE(fi.Arm(faults::kStorageRead, prob).ok());
    for (int i = 0; i < calls; ++i) (void)fi.Check(faults::kStorageRead);
    return fi.FireLog(faults::kStorageRead);
  };
  std::vector<uint64_t> a = run(11, 200);
  std::vector<uint64_t> b = run(11, 200);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // Prefix property: fewer calls (a shorter query) see a prefix of the
  // same schedule, not a different one.
  std::vector<uint64_t> shorter = run(11, 50);
  ASSERT_LE(shorter.size(), a.size());
  for (size_t i = 0; i < shorter.size(); ++i) EXPECT_EQ(shorter[i], a[i]);
  // A different seed gives a different schedule.
  EXPECT_NE(run(12, 200), a);
}

// End-to-end determinism of prob:p@seed across execution modes: the same
// seed must produce the same fire schedule for a row-mode and a batched
// query, because the injector's stream depends only on its own call count.
TEST(FaultInjectorTest, ProbSeedScheduleIdenticalAcrossBatchModes) {
  auto fire_log = [](size_t batch_size) {
    DatabaseOptions dopts;
    dopts.buffer_pool_pages = 128;
    dopts.query_mem_pages = 48;
    Database db(dopts);
    tpcd::TpcdOptions gen;
    gen.scale_factor = 0.003;
    EXPECT_TRUE(tpcd::Load(&db, gen).ok());
    // Arm a never-firing probability on the reopt path: calls advance the
    // stream identically in both modes while the query itself succeeds.
    EXPECT_TRUE(db.faults()->Configure("storage.read=prob:0.0@77").ok());
    ReoptOptions opts;
    opts.batch_size = batch_size;
    EXPECT_TRUE(db.ExecuteWith(tpcd::Q5Sql(), opts).ok());
    return db.faults()->StatsFor(faults::kStorageRead).calls;
  };
  // Row mode and batched mode issue the same page reads in the same order
  // (the batched engine is bit-identical), so the injector sees the same
  // call count — hence any prob:p@seed schedule fires identically.
  EXPECT_EQ(fire_log(1), fire_log(1024));
}

// ---------------------------------------------------------------------------
// The injection-point sweep.

// Eager-gate options under which TPC-D Q5 on a stale catalog reliably
// accepts a plan switch (the same setup reopt_test's FaultInjectionTest
// relies on), so the reopt.* points actually get exercised.
ReoptOptions EagerGate() {
  ReoptOptions o;
  o.mode = ReoptMode::kFull;
  o.theta2 = -1.0;  // any degradation (even none) passes Eq. 2
  o.theta1 = 1e9;
  return o;
}

std::unique_ptr<Database> MakeTpcdDb() {
  DatabaseOptions opts;
  opts.buffer_pool_pages = 128;
  opts.query_mem_pages = 48;
  auto db = std::make_unique<Database>(opts);
  tpcd::TpcdOptions gen;
  gen.scale_factor = 0.003;
  gen.update_fraction = 1.0;  // stale catalog: estimates are off
  EXPECT_TRUE(tpcd::Load(db.get(), gen).ok());
  return db;
}

void ExpectNoTempTables(Database* db) {
  for (int i = 1; i <= 16; ++i)
    EXPECT_FALSE(db->catalog()->Exists("__temp" + std::to_string(i)))
        << "__temp" << i << " leaked";
}

struct SweepCase {
  const char* point;
  FaultTrigger trigger;
};

std::string SweepName(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string name = info.param.point;
  for (char& c : name)
    if (c == '.') c = '_';
  name += info.param.trigger == FaultTrigger::kNthCall ? "_nth1" : "_every";
  return name;
}

class FaultSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(FaultSweep, RecoversOrFailsCleanly) {
  const SweepCase& p = GetParam();
  std::unique_ptr<Database> db = MakeTpcdDb();
  const ReoptOptions eager = EagerGate();

  // Clean reference: proves the query switches plans, so every reopt.*
  // point is on the executed path.
  Result<QueryResult> clean = db->ExecuteWith(tpcd::Q5Sql(), eager);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  ASSERT_GE(clean.value().report.plans_switched, 1);
  const std::vector<std::string> reference = Canon(clean.value().rows);
  const size_t live_before = db->disk()->live_pages();
  const uint64_t retries_before = db->disk()->stats().io_retries;

  FaultSpec spec;
  spec.trigger = p.trigger;
  spec.nth = 1;
  REOPTDB_ASSERT_OK(db->faults()->Arm(p.point, spec));
  Result<QueryResult> r = db->ExecuteWith(tpcd::Q5Sql(), eager);
  const FaultPointStats stats = db->faults()->StatsFor(p.point);
  db->faults()->Reset();
  const uint64_t retries = db->disk()->stats().io_retries - retries_before;

  // The armed point must actually have been exercised by this query.
  EXPECT_GE(stats.calls, 1u) << p.point << " was never checked";
  EXPECT_GE(stats.fires, 1u) << p.point << " never fired";

  if (r.ok()) {
    // (a) Recovered: identical results, and the recovery left evidence —
    // a ReoptFailure record, a degradation, or a transparent I/O retry.
    EXPECT_EQ(Canon(r.value().rows), reference)
        << p.point << ": recovered run returned different rows";
    const QueryTrace& trace = r.value().report.trace;
    EXPECT_TRUE(!trace.reopt_failures.empty() || !trace.degradations.empty() ||
                retries > 0)
        << p.point << " fired but left no recovery evidence";
    EXPECT_EQ(static_cast<size_t>(r.value().report.reopt_failures),
              trace.reopt_failures.size());
    EXPECT_EQ(r.value().report.reopt_degraded, !trace.degradations.empty());
    for (const ReoptFailure& f : trace.reopt_failures) {
      EXPECT_TRUE(f.action == "rolled_back" || f.action == "continued")
          << f.action;
      EXPECT_GE(f.attempts, 1);
    }
  } else {
    // (b) Fatal: a clean typed error carrying the injection message, not a
    // crash or a mangled result.
    EXPECT_NE(r.status().ToString().find("injected fault"), std::string::npos)
        << r.status().ToString();
  }

  // Either way, nothing leaks.
  ExpectNoTempTables(db.get());
  if (std::string(p.point) != faults::kStorageFree) {
    // (With free faults armed, pages legitimately cannot be released.)
    EXPECT_EQ(db->disk()->live_pages(), live_before)
        << p.point << ": disk pages leaked";
  }

  // The engine stays usable afterwards.
  Result<QueryResult> again = db->ExecuteWith(tpcd::Q5Sql(), eager);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(Canon(again.value().rows), reference);
}

std::vector<SweepCase> SweepCases() {
  std::vector<SweepCase> out;
  for (const char* point :
       {faults::kStorageRead, faults::kStorageWrite, faults::kStorageFree,
        faults::kMemoryGrant, faults::kReoptOptimize,
        faults::kReoptMaterialize, faults::kReoptScia,
        faults::kReoptPostSwitch, faults::kJournalAppend,
        faults::kExecSpill}) {
    out.push_back({point, FaultTrigger::kNthCall});
    out.push_back({point, FaultTrigger::kEveryCall});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllPoints, FaultSweep,
                         ::testing::ValuesIn(SweepCases()), SweepName);

// Single reopt.* faults (nth=1) must never change query results: the
// acceptance bar for the transactional switch protocol, across the whole
// TPC-D suite rather than just Q5.
TEST(FaultSweepSuite, SingleReoptFaultPreservesResultsAcrossQueries) {
  for (const char* point : {faults::kReoptOptimize, faults::kReoptMaterialize,
                            faults::kReoptScia, faults::kMemoryGrant}) {
    std::unique_ptr<Database> db = MakeTpcdDb();
    const ReoptOptions eager = EagerGate();
    for (const tpcd::TpcdQuery& q : tpcd::AllQueries()) {
      Result<QueryResult> clean = db->ExecuteWith(q.sql, eager);
      ASSERT_TRUE(clean.ok()) << q.name << ": " << clean.status().ToString();

      FaultSpec nth1;
      nth1.trigger = FaultTrigger::kNthCall;
      nth1.nth = 1;
      REOPTDB_ASSERT_OK(db->faults()->Arm(point, nth1));
      Result<QueryResult> r = db->ExecuteWith(q.sql, eager);
      db->faults()->Reset();
      ASSERT_TRUE(r.ok()) << point << "/" << q.name << ": "
                          << r.status().ToString();
      EXPECT_EQ(Canon(r.value().rows), Canon(clean.value().rows))
          << point << "/" << q.name;
      ExpectNoTempTables(db.get());
    }
  }
}

// Repeated recovered failures demote the controller to kOff for the query
// remainder — and that is recorded, not silent.
TEST(GracefulDegradation, RepeatedFailuresDemoteToOff) {
  std::unique_ptr<Database> db = MakeTpcdDb();
  ReoptOptions eager = EagerGate();
  eager.max_reopt_failures = 1;  // degrade on the first recovered failure

  FaultSpec every;
  every.trigger = FaultTrigger::kEveryCall;
  REOPTDB_ASSERT_OK(db->faults()->Arm(faults::kReoptOptimize, every));
  Result<QueryResult> r = db->ExecuteWith(tpcd::Q5Sql(), eager);
  db->faults()->Reset();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().report.reopt_degraded);
  ASSERT_FALSE(r.value().report.trace.degradations.empty());
  const DegradationEvent& d = r.value().report.trace.degradations.front();
  EXPECT_EQ(d.from_mode, "full");
  EXPECT_EQ(d.to_mode, "off");
  EXPECT_GE(d.failures, 1);
  EXPECT_EQ(r.value().report.plans_switched, 0);  // never got to switch

  // Degradation is per query: the next query re-optimizes again.
  Result<QueryResult> next = db->ExecuteWith(tpcd::Q5Sql(), eager);
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next.value().report.reopt_degraded);
  EXPECT_GE(next.value().report.plans_switched, 1);
}

// Transient I/O errors are absorbed by the disk manager's bounded retry
// loop: the query succeeds and the retries are visible in DiskStats and
// charged to the simulated clock.
TEST(TransientIoRetry, NthReadFaultIsAbsorbed) {
  std::unique_ptr<Database> db = MakeTpcdDb();
  Result<QueryResult> clean = db->ExecuteWith(tpcd::Q5Sql(), EagerGate());
  ASSERT_TRUE(clean.ok());

  FaultSpec nth1;
  nth1.trigger = FaultTrigger::kNthCall;
  nth1.nth = 1;
  REOPTDB_ASSERT_OK(db->faults()->Arm(faults::kStorageRead, nth1));
  const uint64_t retries_before = db->disk()->stats().io_retries;
  Result<QueryResult> r = db->ExecuteWith(tpcd::Q5Sql(), EagerGate());
  db->faults()->Reset();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Canon(r.value().rows), Canon(clean.value().rows));
  EXPECT_GT(db->disk()->stats().io_retries, retries_before);
  EXPECT_GT(db->disk()->stats().retry_penalty_ms, 0.0);
}

// ---------------------------------------------------------------------------
// Cluster fault points: net.send / net.recv on the exchange channel and
// node.crash on the sharded executor. Contract: transient net errors are
// absorbed by the same bounded retry/backoff policy the DiskManager applies
// to device errors; errors past the retry budget (and node.crash fires)
// escalate to a node loss that the executor survives with identical
// results; crash: actions terminate the whole simulated process.

TEST(NetFaults, TransientSendFaultAbsorbedWithBackoff) {
  Database db;
  ExecContext ctx_a(db.buffer_pool(), db.catalog(), &db.cost_model());
  ExecContext ctx_b(db.buffer_pool(), db.catalog(), &db.cost_model());
  NetChannelStats sa, sb;
  ExchangeChannel ch(&db.cost_model(), db.faults());
  ch.AddEndpoint(0, &ctx_a, &sa);
  ch.AddEndpoint(1, &ctx_b, &sb);

  std::vector<Tuple> rows;
  for (int i = 0; i < 5; ++i) rows.push_back(Tuple({Value(int64_t{i})}));

  REOPTDB_ASSERT_OK(db.faults()->Configure("net.send=nth:1"));
  REOPTDB_ASSERT_OK(ch.Send(0, 1, rows));
  // One absorbed retry, charged at the base backoff — the DiskManager's
  // policy (bounded attempts, doubling backoff) applied to the network.
  EXPECT_EQ(sa.retries, 1u);
  EXPECT_EQ(sa.retry_penalty_ms, ExchangeChannel::kRetryBackoffBaseMs);
  EXPECT_GT(ctx_a.SimElapsedMs(), 0.0);
  EXPECT_EQ(ch.PendingRows(1), 5u);

  std::vector<Tuple> out;
  REOPTDB_ASSERT_OK(ch.Receive(1, &out));
  EXPECT_EQ(out.size(), 5u);
  EXPECT_EQ(sb.msgs_recv, 1u);
  db.faults()->Reset();
}

TEST(NetFaults, ExhaustedRetriesFailCleanlyWithDoublingBackoff) {
  Database db;
  ExecContext ctx_a(db.buffer_pool(), db.catalog(), &db.cost_model());
  ExecContext ctx_b(db.buffer_pool(), db.catalog(), &db.cost_model());
  NetChannelStats sa, sb;
  ExchangeChannel ch(&db.cost_model(), db.faults());
  ch.AddEndpoint(0, &ctx_a, &sa);
  ch.AddEndpoint(1, &ctx_b, &sb);

  REOPTDB_ASSERT_OK(db.faults()->Configure("net.send=every"));
  Status st = ch.Send(0, 1, {Tuple({Value(int64_t{1})})});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  // All kMaxNetRetries absorbed attempts were charged (1 + 2 + 4 ms), the
  // final failure was not; nothing was enqueued.
  EXPECT_EQ(sa.retries,
            static_cast<uint64_t>(ExchangeChannel::kMaxNetRetries));
  EXPECT_EQ(sa.retry_penalty_ms, 1.0 + 2.0 + 4.0);
  EXPECT_EQ(ch.PendingRows(1), 0u);
  db.faults()->Reset();

  // net.recv mirrors the same policy on the receive side.
  REOPTDB_ASSERT_OK(ch.Send(0, 1, {Tuple({Value(int64_t{2})})}));
  REOPTDB_ASSERT_OK(db.faults()->Configure("net.recv=nth:1"));
  std::vector<Tuple> out;
  REOPTDB_ASSERT_OK(ch.Receive(1, &out));
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(sb.retries, 1u);
  EXPECT_EQ(sb.retry_penalty_ms, ExchangeChannel::kRetryBackoffBaseMs);
  db.faults()->Reset();
}

TEST(NetFaults, CrashActionBypassesRetryAndLatches) {
  Database db;
  ExecContext ctx_a(db.buffer_pool(), db.catalog(), &db.cost_model());
  ExecContext ctx_b(db.buffer_pool(), db.catalog(), &db.cost_model());
  NetChannelStats sa, sb;
  ExchangeChannel ch(&db.cost_model(), db.faults());
  ch.AddEndpoint(0, &ctx_a, &sa);
  ch.AddEndpoint(1, &ctx_b, &sb);

  REOPTDB_ASSERT_OK(db.faults()->Configure("net.send=crash:nth:1"));
  Status st = ch.Send(0, 1, {Tuple({Value(int64_t{1})})});
  EXPECT_EQ(st.code(), StatusCode::kCrashed);
  EXPECT_TRUE(db.faults()->crash_pending());
  EXPECT_EQ(sa.retries, 0u);  // a crash is not retried
  db.faults()->ClearCrash();
  db.faults()->Reset();
}

TEST(NetFaults, NodeCrashPointErrorCodes) {
  FaultInjector fi;
  REOPTDB_ASSERT_OK(fi.Configure("node.crash=nth:1"));
  EXPECT_EQ(fi.Check(faults::kNodeCrash).code(), StatusCode::kInternal);
  REOPTDB_ASSERT_OK(fi.Configure("node.crash=crash:nth:1"));
  EXPECT_EQ(fi.Check(faults::kNodeCrash).code(), StatusCode::kCrashed);
  EXPECT_TRUE(fi.crash_pending());
}

// The cluster-level sweep: each cluster point armed as a transient error,
// a persistent error, and a crash, against a distributed join. Transient
// errors are absorbed; persistent ones cost nodes (up to coordinator
// fallback) but never answers; crashes kill the simulated process.
TEST(ShardFaultSweep, ErrorActionsNeverChangeAnswers) {
  const std::string sql =
      "SELECT e.emp_id, e.salary, d.dept_name FROM emp e, dept d "
      "WHERE e.dept_id = d.dept_id AND e.salary > 1100.0";
  for (const char* arm :
       {"net.send=nth:1", "net.recv=nth:1", "node.crash=nth:1",
        "net.send=every", "net.recv=every", "node.crash=every"}) {
    ShardOptions so;
    so.num_nodes = 3;
    ShardCluster cluster(so);
    testing_util::LoadEmpDept(cluster.db(), 60, 6);
    REOPTDB_ASSERT_OK(cluster.ShardByHash("emp", "emp_id"));
    REOPTDB_ASSERT_OK(cluster.ShardByHash("dept", "dept_id"));
    ShardedExecutor exec(&cluster);

    Result<QueryResult> oracle = exec.ExecuteSingleNode(sql);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

    REOPTDB_ASSERT_OK(cluster.faults()->Configure(arm));
    Result<ShardExecResult> r = exec.Execute(sql);
    cluster.faults()->Reset();
    ASSERT_TRUE(r.ok()) << arm << ": " << r.status().ToString();
    EXPECT_EQ(Canon(r.value().result.rows), Canon(oracle.value().rows))
        << arm << ": distributed answer diverged from the oracle";
    const bool every = std::string(arm).find("=every") != std::string::npos;
    if (every) {
      // Persistent failures must have cost nodes; with every node dead the
      // coordinator finished the query alone.
      EXPECT_TRUE(r.value().nodes_lost > 0 || r.value().coordinator_fallback)
          << arm;
    }
  }
}

TEST(ShardFaultSweep, CrashActionsKillTheProcess) {
  const std::string sql =
      "SELECT e.emp_id, d.dept_name FROM emp e, dept d "
      "WHERE e.dept_id = d.dept_id";
  for (const char* arm : {"net.send=crash:nth:2", "net.recv=crash:nth:1",
                          "node.crash=crash:nth:1"}) {
    ShardOptions so;
    so.num_nodes = 2;
    ShardCluster cluster(so);
    testing_util::LoadEmpDept(cluster.db(), 40, 4);
    REOPTDB_ASSERT_OK(cluster.ShardByHash("emp", "emp_id"));
    REOPTDB_ASSERT_OK(cluster.ShardByHash("dept", "dept_id"));
    ShardedExecutor exec(&cluster);

    REOPTDB_ASSERT_OK(cluster.faults()->Configure(arm));
    Result<ShardExecResult> r = exec.Execute(sql);
    ASSERT_FALSE(r.ok()) << arm;
    EXPECT_EQ(r.status().code(), StatusCode::kCrashed) << arm;
    EXPECT_TRUE(cluster.faults()->crash_pending()) << arm;
    cluster.faults()->ClearCrash();
    cluster.faults()->Reset();

    // The "restarted" cluster still answers (the coordinator's durable
    // copy is intact).
    Result<QueryResult> again = exec.ExecuteSingleNode(sql);
    ASSERT_TRUE(again.ok()) << arm << ": " << again.status().ToString();
  }
}

// ---------------------------------------------------------------------------
// Workload-pressure faults: memory.revoke (the broker's grant shave) and
// exec.spill under concurrency. Contract: faults during revocation or
// spill-under-pressure never crash the process or leak pages/temp tables;
// each query still reaches a clean typed terminal state.

TEST(WorkloadFaults, MemoryRevokeFaultIsGraceful) {
  for (FaultTrigger trigger :
       {FaultTrigger::kNthCall, FaultTrigger::kEveryCall}) {
    std::unique_ptr<Database> db = MakeTpcdDb();
    const size_t live_before = db->disk()->live_pages();

    FaultSpec spec;
    spec.trigger = trigger;
    spec.nth = 1;
    REOPTDB_ASSERT_OK(db->faults()->Arm(faults::kMemoryRevoke, spec));

    // Overload mix: everyone asks for the whole budget, so admissions
    // revoke — and every shave hits the armed point.
    WorkloadOptions wo;
    wo.global_mem_pages = 48;
    wo.min_grant_pages = 8;
    wo.max_active = 3;
    wo.max_queue = 8;
    wo.reopt.mode = ReoptMode::kFull;
    WorkloadManager wm(db.get(), wo);
    for (int i = 0; i < 6; ++i) wm.Submit(tpcd::Q5Sql());
    Result<std::vector<WorkloadQueryResult>> run = wm.Run();
    const FaultPointStats stats = db->faults()->StatsFor(faults::kMemoryRevoke);
    db->faults()->Reset();

    REOPTDB_ASSERT_OK(run.status());
    EXPECT_GE(stats.calls, 1u) << "no revocation was ever attempted";
    EXPECT_GE(stats.fires, 1u);

    // Every query reached a typed terminal state; a revoke fault surfaces
    // as a failed admission (ResourceExhausted) or a query that continued
    // on its old grant — never a crash or an untyped error.
    int completed = 0;
    for (const WorkloadQueryResult& r : run.value()) {
      if (r.status.ok()) {
        ++completed;
      } else {
        EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted)
            << r.status.ToString();
      }
    }
    EXPECT_GT(completed, 0);

    // Nothing leaked, even with shaves failing mid-flight.
    EXPECT_EQ(wm.broker().active(), 0u);
    ExpectNoTempTables(db.get());
    EXPECT_EQ(db->disk()->live_pages(), live_before);

    // The engine stays usable afterwards.
    Result<QueryResult> again = db->ExecuteWith(tpcd::Q5Sql(), wo.reopt);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
  }
}

TEST(WorkloadFaults, ExecSpillFaultUnderConcurrencyIsClean) {
  std::unique_ptr<Database> db = MakeTpcdDb();
  const size_t live_before = db->disk()->live_pages();

  FaultSpec every;
  every.trigger = FaultTrigger::kEveryCall;
  REOPTDB_ASSERT_OK(db->faults()->Arm(faults::kExecSpill, every));

  WorkloadOptions wo;
  wo.global_mem_pages = 48;
  wo.min_grant_pages = 8;
  wo.max_active = 3;
  wo.reopt.mode = ReoptMode::kFull;
  WorkloadManager wm(db.get(), wo);
  for (int i = 0; i < 3; ++i) wm.Submit(tpcd::Q5Sql());
  Result<std::vector<WorkloadQueryResult>> run = wm.Run();
  const FaultPointStats stats = db->faults()->StatsFor(faults::kExecSpill);
  db->faults()->Reset();

  REOPTDB_ASSERT_OK(run.status());
  EXPECT_GE(stats.fires, 1u) << "the contended mix never tried to spill";

  // A spill fault fails that query with a clean typed error (the spill is
  // load-bearing: the operator cannot proceed within its budget), while
  // queries that never needed to spill may still complete.
  for (const WorkloadQueryResult& r : run.value()) {
    if (r.status.ok()) continue;
    EXPECT_NE(r.status.ToString().find("injected fault"), std::string::npos)
        << r.status.ToString();
  }

  EXPECT_EQ(wm.broker().active(), 0u);
  ExpectNoTempTables(db.get());
  EXPECT_EQ(db->disk()->live_pages(), live_before);

  Result<QueryResult> again = db->ExecuteWith(tpcd::Q5Sql(), wo.reopt);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
}

// ---------------------------------------------------------------------------
// Transaction-layer faults: wal.append, wal.fsync, lock.acquire,
// txn.commit. Contract: an error action fails the statement with a clean
// typed error and the transaction aborts atomically — no write becomes
// visible, no transaction stays active, no disk page leaks. A crash action
// latches crash_pending; after RecoverStorage the table state is exactly
// the pre-statement state and the engine stays usable.

constexpr const char* kTxnPoints[] = {faults::kWalAppend, faults::kWalFsync,
                                      faults::kLockAcquire,
                                      faults::kTxnCommit};

TEST(TxnFaults, ErrorActionsAbortStatementAtomically) {
  for (const char* point : kTxnPoints) {
    for (FaultTrigger trigger :
         {FaultTrigger::kNthCall, FaultTrigger::kEveryCall}) {
      Database db;
      LoadEmpDept(&db, 20, 4);
      const size_t live_before = db.disk()->live_pages();

      FaultSpec spec;
      spec.trigger = trigger;
      spec.nth = 1;
      REOPTDB_ASSERT_OK(db.faults()->Arm(point, spec));
      Result<QueryResult> r =
          db.ExecuteSql("UPDATE emp SET salary = 0.0 WHERE dept_id = 1");
      const FaultPointStats stats = db.faults()->StatsFor(point);
      db.faults()->Reset();

      ASSERT_FALSE(r.ok()) << point;
      EXPECT_NE(r.status().code(), StatusCode::kCrashed) << point;
      EXPECT_NE(r.status().ToString().find("injected fault"),
                std::string::npos)
          << point << ": " << r.status().ToString();
      EXPECT_GE(stats.fires, 1u) << point << " never fired";

      // Atomic: nothing visible, nothing active, nothing leaked.
      Result<QueryResult> check = db.Execute(
          "SELECT COUNT(*) AS c FROM emp WHERE salary < 1.0");
      REOPTDB_ASSERT_OK(check.status());
      EXPECT_EQ(check.value().rows[0].at(0).AsInt(), 0) << point;
      EXPECT_EQ(db.txn_manager()->active_count(), 0u) << point;
      EXPECT_EQ(db.disk()->live_pages(), live_before) << point;

      // Unarmed, the same statement succeeds.
      REOPTDB_ASSERT_OK(
          db.ExecuteSql("UPDATE emp SET salary = 0.0 WHERE dept_id = 1")
              .status());
    }
  }
}

TEST(TxnFaults, CrashActionsRecoverToPreStatementState) {
  for (const char* point : kTxnPoints) {
    Database db;
    LoadEmpDept(&db, 20, 4);
    // A committed pre-crash write that recovery must preserve.
    REOPTDB_ASSERT_OK(
        db.ExecuteSql("INSERT INTO emp VALUES (800, 1, 80.0, 'pre')")
            .status());
    const std::vector<std::string> baseline =
        Canon(db.Execute("SELECT emp_id, salary FROM emp").value().rows);

    REOPTDB_ASSERT_OK(
        db.faults()->Configure(std::string(point) + "=crash:nth:1"));
    Result<QueryResult> r =
        db.ExecuteSql("DELETE FROM emp WHERE dept_id = 1");
    ASSERT_FALSE(r.ok()) << point;
    EXPECT_EQ(r.status().code(), StatusCode::kCrashed) << point;
    EXPECT_TRUE(db.faults()->crash_pending()) << point;

    REOPTDB_ASSERT_OK(db.RecoverStorage());
    EXPECT_FALSE(db.faults()->crash_pending()) << point;
    EXPECT_EQ(Canon(db.Execute("SELECT emp_id, salary FROM emp").value().rows),
              baseline)
        << point << ": recovery did not restore the pre-statement state";
    EXPECT_EQ(db.txn_manager()->active_count(), 0u) << point;

    // Usable: the same statement lands once no fault is armed.
    db.faults()->Reset();
    REOPTDB_ASSERT_OK(
        db.ExecuteSql("DELETE FROM emp WHERE dept_id = 1").status());
  }
}

// ---------------------------------------------------------------------------
// Cancellation.

TEST(Cancellation, DeadlineCancelsMidQuery) {
  std::unique_ptr<Database> db = MakeTpcdDb();
  ReoptOptions opts = EagerGate();
  Result<QueryResult> clean = db->ExecuteWith(tpcd::Q5Sql(), opts);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  const double total_ms = clean.value().report.sim_time_ms;
  ASSERT_GT(total_ms, 0.0);

  opts.deadline_ms = total_ms / 2;  // expires mid-flight
  Result<QueryResult> r = db->ExecuteWith(tpcd::Q5Sql(), opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  ExpectNoTempTables(db.get());

  // The engine stays usable and still produces the full result.
  opts.deadline_ms = 0;
  Result<QueryResult> again = db->ExecuteWith(tpcd::Q5Sql(), opts);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(Canon(again.value().rows), Canon(clean.value().rows));
}

TEST(Cancellation, TokenUnwindsWithHookAndTempCleanup) {
  Database db;
  LoadEmpDept(&db, 300, 10);

  Result<SelectStmtAst> ast = ParseSelect(
      "SELECT e.emp_id FROM emp e, dept d WHERE e.dept_id = d.dept_id");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  Result<QuerySpec> spec = Bind(ast.value(), *db.catalog());
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();

  ReoptOptions ropts;
  ropts.mode = ReoptMode::kFull;
  ropts.mid_execution_memory = true;  // installs the collector hook
  OptimizerOptions oopts = db.options().optimizer;
  oopts.assumed_mem_pages = db.options().query_mem_pages;
  DynamicReoptimizer reopt(db.catalog(), &db.cost_model(), &db.calibration(),
                           oopts, ropts, db.options().query_mem_pages);

  ExecContext ctx(db.buffer_pool(), db.catalog(), &db.cost_model());
  ctx.cancel_token()->Cancel();  // cancelled before the first stage
  std::vector<Tuple> rows;
  Schema schema;
  Result<ExecutionReport> rep =
      reopt.Execute(spec.value(), &ctx, &rows, &schema);
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(rep.status().code(), StatusCode::kCancelled);
  // The unwind defused the mid-execution hook and left no temp tables.
  EXPECT_FALSE(ctx.has_collector_hook());
  ExpectNoTempTables(&db);
}

// ---------------------------------------------------------------------------
// corrupt: action — silent bit-rot injection (DESIGN.md §16). The device
// acks the write, the bytes rot, and the damage surfaces only on the next
// read as a typed kDataLoss after exactly one confirming re-read.

TEST(CorruptAction, SilentRotOnWriteSurfacesAsSingleDataLossRead) {
  FaultInjector fi;
  DiskManager dm;
  dm.set_fault_injector(&fi);
  const PageId id = dm.AllocatePage();
  Page p;
  p.Zero();
  std::memcpy(p.data, "payload", 7);
  REOPTDB_ASSERT_OK(fi.Configure("storage.write=corrupt:nth:1"));
  // The rotting write itself reports success — that is the "silent" part.
  REOPTDB_ASSERT_OK(dm.WritePage(id, p));
  EXPECT_EQ(dm.stats().pages_corrupted, 1u);
  EXPECT_EQ(fi.StatsFor(faults::kStorageWrite).fires, 1u);

  const DiskStats before = dm.stats();
  Page out;
  Status st = dm.ReadPage(id, &out);
  EXPECT_EQ(st.code(), StatusCode::kDataLoss) << st.ToString();
  const DiskStats d = dm.stats() - before;
  // Exactly one confirming re-read, then kDataLoss: bit-rot must not burn
  // the full transient-error retry budget (kMaxIoRetries) on damage a
  // retry can never fix, and must be counted as rot, not device flakiness.
  EXPECT_EQ(d.data_loss_reads, 1u);
  EXPECT_EQ(d.io_retries, 1u);
  EXPECT_EQ(d.retry_penalty_ms, DiskManager::kRetryBackoffBaseMs);
  EXPECT_EQ(d.page_reads, 0u);  // no payload was delivered

  // Other pages are unaffected; the injector only rotted write #1.
  const PageId ok_id = dm.AllocatePage();
  REOPTDB_ASSERT_OK(dm.WritePage(ok_id, p));
  REOPTDB_ASSERT_OK(dm.ReadPage(ok_id, &out));
  EXPECT_EQ(std::memcmp(out.data, p.data, kPageSize), 0);
}

TEST(CorruptAction, InjectedReadCorruptionSkipsTransientRetries) {
  // At a point with no silent interpretation (storage.read), a corrupt:
  // firing surfaces directly as kDataLoss — and because the retry loop only
  // absorbs kIoError, no backoff is charged for it.
  FaultInjector fi;
  DiskManager dm;
  dm.set_fault_injector(&fi);
  const PageId id = dm.AllocatePage();
  Page p;
  p.Zero();
  REOPTDB_ASSERT_OK(dm.WritePage(id, p));
  REOPTDB_ASSERT_OK(fi.Configure("storage.read=corrupt:nth:1"));
  Page out;
  Status st = dm.ReadPage(id, &out);
  EXPECT_EQ(st.code(), StatusCode::kDataLoss) << st.ToString();
  EXPECT_EQ(dm.stats().io_retries, 0u);
  EXPECT_EQ(dm.stats().retry_penalty_ms, 0.0);
  EXPECT_EQ(dm.stats().pages_corrupted, 0u);  // stored bytes were never touched
  fi.Reset();
  REOPTDB_ASSERT_OK(dm.ReadPage(id, &out));  // the page itself is fine
}

TEST(CorruptAction, FireScheduleIsDeterministicAcrossRuns) {
  // Two injectors armed with the same corrupt: spec must rot the same call
  // ordinals — byte-identical chaos runs regardless of wall clock.
  auto schedule = [](const std::string& spec) {
    FaultInjector fi;
    EXPECT_TRUE(fi.Configure(spec).ok()) << spec;
    for (int i = 0; i < 200; ++i) {
      const Status st = fi.Check(faults::kStorageWrite);
      EXPECT_TRUE(st.ok() || st.code() == StatusCode::kDataLoss) << spec;
    }
    return fi.FireLog(faults::kStorageWrite);
  };
  for (const char* spec :
       {"storage.write=corrupt:nth:7", "storage.write=corrupt:every",
        "storage.write=corrupt:prob:0.25@11"}) {
    const std::vector<uint64_t> a = schedule(spec);
    const std::vector<uint64_t> b = schedule(spec);
    EXPECT_EQ(a, b) << spec;
    EXPECT_FALSE(a.empty()) << spec;
  }
  EXPECT_EQ(schedule("storage.write=corrupt:nth:7"),
            (std::vector<uint64_t>{7}));
}

TEST(CorruptAction, RotLandsOnTheSamePageRegardlessOfLoadOrderNoise) {
  // Loading identical data twice with the same corrupt: schedule rots the
  // same physical pages: the damage itself is reproducible, not just the
  // fire count. (Cluster-level batch-mode equivalence under rot is covered
  // by shard_test's NodeFailure.BitRotOnPrimaryPartitionEvacuatesNode.)
  auto corrupted = [] {
    Database db;
    Schema s(std::vector<Column>{{"", "a", ValueType::kInt64, 8},
                                 {"", "b", ValueType::kString, 32}});
    EXPECT_TRUE(db.CreateTable("t", s).ok());
    EXPECT_TRUE(
        db.faults()->Configure("storage.write=corrupt:prob:0.5@31").ok());
    for (int i = 0; i < 2000; ++i) {
      EXPECT_TRUE(db.Insert("t", Tuple({Value(int64_t{i}),
                                        Value("row" + std::to_string(i))}))
                      .ok());
    }
    auto log = db.faults()->FireLog(faults::kStorageWrite);
    db.faults()->Reset();
    return std::make_pair(db.disk()->stats().pages_corrupted, log);
  };
  const auto a = corrupted();
  const auto b = corrupted();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_GT(a.first, 0u);
}

TEST(Cancellation, DeadlineFiresInsideOperatorNextLoop) {
  // A tiny deadline cancels during the very first stage's work, proving
  // the check sits inside operator Next/blocking loops, not only at stage
  // boundaries.
  std::unique_ptr<Database> db = MakeTpcdDb();
  ReoptOptions opts;  // defaults; reopt not needed for this property
  opts.deadline_ms = 1e-6;
  Result<QueryResult> r = db->ExecuteWith(tpcd::Q5Sql(), opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_NE(r.status().ToString().find("deadline"), std::string::npos)
      << r.status().ToString();
}

}  // namespace
}  // namespace reoptdb
