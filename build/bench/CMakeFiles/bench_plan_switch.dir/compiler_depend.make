# Empty compiler generated dependencies file for bench_plan_switch.
# This may be replaced when dependencies are built.
