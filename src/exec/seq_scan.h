// Sequential scan with pushed-down filters.

#ifndef REOPTDB_EXEC_SEQ_SCAN_H_
#define REOPTDB_EXEC_SEQ_SCAN_H_

#include <optional>

#include "exec/expression.h"
#include "exec/operator.h"
#include "storage/heap_file.h"

namespace reoptdb {

/// \brief Full-table scan applying the node's filter predicates inline.
class SeqScanOp : public Operator {
 public:
  SeqScanOp(ExecContext* ctx, PlanNode* node) : Operator(ctx, node) {}

  Status OpenImpl() override;
  Result<bool> NextImpl(Tuple* out) override;
  Result<bool> NextBatchImpl(TupleBatch* out) override;
  Status CloseImpl() override;

 private:
  const HeapFile* heap_ = nullptr;
  std::optional<HeapFile::Iterator> it_;
  std::vector<CompiledPred> preds_;
};

}  // namespace reoptdb

#endif  // REOPTDB_EXEC_SEQ_SCAN_H_
