// Tests for the segment scheduler: stage sequencing, collector completion
// reporting, frontier materialization, and the expression evaluator.

#include "exec/expression.h"
#include "exec/scheduler.h"
#include "gtest/gtest.h"
#include "memory/memory_manager.h"
#include "optimizer/optimizer.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "reopt/scia.h"
#include "test_util.h"

namespace reoptdb {
namespace {

using testing_util::LoadEmpDept;

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() { LoadEmpDept(&db_, 500, 10); }

  /// Optimizes `sql` (optionally inserting collectors) and returns the plan.
  std::unique_ptr<PlanNode> PlanFor(const std::string& sql,
                                    bool with_collectors) {
    SelectStmtAst ast = ParseSelect(sql).value();
    spec_ = Bind(ast, *db_.catalog()).value();
    Optimizer opt(db_.catalog(), &db_.cost_model());
    std::unique_ptr<PlanNode> plan = opt.Plan(spec_).value().plan;
    if (with_collectors) {
      SciaOptions opts;
      (void)InsertStatsCollectors(&plan, spec_, *db_.catalog(),
                                  db_.cost_model(), opts);
    }
    MemoryManager mm(&db_.cost_model(), 128);
    (void)mm.TryAllocate(nullptr, plan.get(), {});
    return plan;
  }

  Database db_;
  QuerySpec spec_;
};

TEST_F(SchedulerTest, StagesRunInOrderAndFinish) {
  auto plan = PlanFor(
      "SELECT emp.dept_id, COUNT(*) FROM emp, dept "
      "WHERE emp.dept_id = dept.dept_id GROUP BY emp.dept_id",
      /*with_collectors=*/false);
  ExecContext ctx(db_.buffer_pool(), db_.catalog(), &db_.cost_model());
  auto exec = PipelineExecutor::Create(&ctx, plan.get()).value();

  std::vector<OpKind> stage_kinds;
  std::vector<Tuple> rows;
  bool finished = false;
  while (exec->HasMoreStages()) {
    auto stage = exec->RunNextStage(&rows).value();
    if (stage.finished) {
      finished = true;
      break;
    }
    ASSERT_NE(stage.stage_node, nullptr);
    stage_kinds.push_back(stage.stage_node->kind);
  }
  EXPECT_TRUE(finished);
  // One hash-join build + the aggregate absorb, then delivery.
  ASSERT_EQ(stage_kinds.size(), 2u);
  EXPECT_EQ(stage_kinds[0], OpKind::kHashJoin);
  EXPECT_EQ(stage_kinds[1], OpKind::kHashAggregate);
  EXPECT_EQ(rows.size(), 10u);
  EXPECT_TRUE(exec->Close().ok());
}

TEST_F(SchedulerTest, CollectorsReportWhenTheirPipelineCompletes) {
  auto plan = PlanFor(
      "SELECT emp.dept_id, COUNT(*) FROM emp, dept "
      "WHERE emp.dept_id = dept.dept_id GROUP BY emp.dept_id",
      /*with_collectors=*/true);
  ExecContext ctx(db_.buffer_pool(), db_.catalog(), &db_.cost_model());
  auto exec = PipelineExecutor::Create(&ctx, plan.get()).value();

  int total_collectors = 0;
  plan->PostOrder([&](PlanNode* n) {
    if (n->kind == OpKind::kStatsCollector) ++total_collectors;
  });

  std::vector<Tuple> rows;
  int reported = 0;
  while (exec->HasMoreStages()) {
    auto stage = exec->RunNextStage(&rows).value();
    for (PlanNode* c : stage.new_collectors) {
      EXPECT_TRUE(c->observed.valid);
      EXPECT_GT(c->observed.cardinality, 0);
      ++reported;
    }
    if (stage.finished) break;
  }
  EXPECT_EQ(reported, total_collectors);
  EXPECT_TRUE(exec->Close().ok());
}

TEST_F(SchedulerTest, PendingStagesShrink) {
  auto plan = PlanFor(
      "SELECT e.emp_id FROM emp e, dept d1, dept d2 "
      "WHERE e.dept_id = d1.dept_id AND d1.region_id = d2.region_id",
      /*with_collectors=*/false);
  ExecContext ctx(db_.buffer_pool(), db_.catalog(), &db_.cost_model());
  auto exec = PipelineExecutor::Create(&ctx, plan.get()).value();
  size_t before = exec->PendingStages().size();
  EXPECT_GT(before, 0u);
  std::vector<Tuple> rows;
  (void)exec->RunNextStage(&rows).value();
  EXPECT_EQ(exec->PendingStages().size(), before - 1);
  EXPECT_TRUE(exec->Close().ok());
}

TEST_F(SchedulerTest, MaterializeIntoCapturesFrontierOutput) {
  auto plan = PlanFor(
      "SELECT emp_id FROM emp, dept WHERE emp.dept_id = dept.dept_id",
      /*with_collectors=*/false);
  ExecContext ctx(db_.buffer_pool(), db_.catalog(), &db_.cost_model());
  auto exec = PipelineExecutor::Create(&ctx, plan.get()).value();

  // Run the join's build stage, then redirect its output to a temp heap.
  std::vector<Tuple> rows;
  auto stage = exec->RunNextStage(&rows).value();
  ASSERT_NE(stage.stage_node, nullptr);
  ASSERT_EQ(stage.stage_node->kind, OpKind::kHashJoin);

  HeapFile temp(db_.buffer_pool());
  uint64_t n = exec->MaterializeInto(stage.stage_node, &temp).value();
  EXPECT_EQ(n, 500u);  // every emp row joins exactly one dept
  EXPECT_EQ(temp.tuple_count(), 500u);
  // Output schema arity: emp columns + dept columns.
  HeapFile::Iterator it = temp.Scan();
  Tuple t;
  ASSERT_TRUE(it.Next(&t).value());
  EXPECT_EQ(t.size(), stage.stage_node->output_schema.NumColumns());
  EXPECT_TRUE(exec->Close().ok());
}

TEST(ExpressionTest, EvalMatrix) {
  Schema schema(std::vector<Column>{{"t", "a", ValueType::kInt64, 8},
                                    {"t", "b", ValueType::kString, 8}});
  Tuple row({Value(int64_t{5}), Value("mm")});

  struct Case {
    CmpOp op;
    int64_t lit;
    bool expect;
  };
  for (const Case& c : std::vector<Case>{{CmpOp::kEq, 5, true},
                                         {CmpOp::kEq, 4, false},
                                         {CmpOp::kNe, 4, true},
                                         {CmpOp::kLt, 6, true},
                                         {CmpOp::kLt, 5, false},
                                         {CmpOp::kLe, 5, true},
                                         {CmpOp::kGt, 4, true},
                                         {CmpOp::kGe, 5, true},
                                         {CmpOp::kGe, 6, false}}) {
    ScalarPred p{"t.a", c.op, false, Value(c.lit), ""};
    CompiledPred cp = CompilePred(p, schema).value();
    EXPECT_EQ(cp.Eval(row), c.expect) << CmpOpName(c.op) << " " << c.lit;
  }

  // String comparison and column-vs-column.
  ScalarPred ps{"t.b", CmpOp::kGt, false, Value("aa"), ""};
  EXPECT_TRUE(CompilePred(ps, schema).value().Eval(row));

  Schema two(std::vector<Column>{{"t", "a", ValueType::kInt64, 8},
                                 {"t", "c", ValueType::kInt64, 8}});
  Tuple row2({Value(int64_t{5}), Value(int64_t{7})});
  ScalarPred pc{"t.a", CmpOp::kLt, true, Value(), "t.c"};
  EXPECT_TRUE(CompilePred(pc, two).value().Eval(row2));

  // Unknown column fails compilation.
  ScalarPred bad{"t.zzz", CmpOp::kEq, false, Value(int64_t{1}), ""};
  EXPECT_FALSE(CompilePred(bad, schema).ok());
}

TEST(ExpressionTest, EvalAllConjunction) {
  Schema schema(std::vector<Column>{{"t", "a", ValueType::kInt64, 8}});
  Tuple row({Value(int64_t{5})});
  std::vector<ScalarPred> preds{
      ScalarPred{"t.a", CmpOp::kGe, false, Value(int64_t{0}), ""},
      ScalarPred{"t.a", CmpOp::kLt, false, Value(int64_t{10}), ""}};
  auto compiled = CompilePreds(preds, schema).value();
  EXPECT_TRUE(EvalAll(compiled, row));
  EXPECT_TRUE(EvalAll({}, row));  // empty conjunction is true
  preds.push_back(ScalarPred{"t.a", CmpOp::kEq, false, Value(int64_t{9}), ""});
  compiled = CompilePreds(preds, schema).value();
  EXPECT_FALSE(EvalAll(compiled, row));
}

}  // namespace
}  // namespace reoptdb
