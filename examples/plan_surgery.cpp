// Plan surgery walkthrough: a step-by-step tour of the paper's Figures 4-6
// on the running example, printing each stage of the machinery:
//   1. the annotated plan with the optimizer's estimates,
//   2. the statistics collectors the SCIA chose (and why: inaccuracy
//      potentials),
//   3. the re-optimization gate firing,
//   4. the remainder query's SQL over the temp table,
//   5. the new plan and the final result.
//
//   ./build/examples/plan_surgery

#include <cstdio>

#include "common/rng.h"
#include "engine/database.h"
#include "optimizer/remainder_sql.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "reopt/inaccuracy.h"

using namespace reoptdb;

int main() {
  DatabaseOptions opts;
  opts.buffer_pool_pages = 64;
  opts.query_mem_pages = 400;
  Database db(opts);

  // The running example of the paper's Figure 1, with a correlated filter
  // the optimizer cannot see through (footnote 2).
  Rng rng(11);
  Schema r1(std::vector<Column>{{"", "selectattr1", ValueType::kInt64, 8},
                                {"", "selectattr2", ValueType::kInt64, 8},
                                {"", "joinattr2", ValueType::kInt64, 8},
                                {"", "groupattr", ValueType::kInt64, 8}});
  Schema r2(std::vector<Column>{{"", "joinattr2", ValueType::kInt64, 8},
                                {"", "joinattr3", ValueType::kInt64, 8}});
  Schema r3(std::vector<Column>{{"", "joinattr3", ValueType::kInt64, 8},
                                {"", "payload", ValueType::kString, 40}});
  (void)db.CreateTable("rel1", r1);
  (void)db.CreateTable("rel2", r2);
  (void)db.CreateTable("rel3", r3);
  std::string pay(40, 'z');
  for (int i = 0; i < 40000; ++i) {
    int64_t a1 = rng.NextInt(0, 999);
    (void)db.Insert("rel1", Tuple({Value(a1), Value(a1),  // correlated!
                                   Value(rng.NextInt(0, 3999)),
                                   Value(rng.NextInt(0, 99))}));
  }
  for (int i = 0; i < 4000; ++i)
    (void)db.Insert("rel2", Tuple({Value(int64_t{i}),
                                   Value(rng.NextInt(0, 199999))}));
  for (int i = 0; i < 200000; ++i)
    (void)db.Insert("rel3", Tuple({Value(int64_t{i}), Value(pay)}));
  (void)db.DeclareKey("rel2", "joinattr2");
  (void)db.DeclareKey("rel3", "joinattr3");
  (void)db.CreateIndex("rel3", "joinattr3");
  for (const char* t : {"rel1", "rel2", "rel3"}) (void)db.Analyze(t);

  const std::string sql =
      "SELECT groupattr, COUNT(*) AS n FROM rel1, rel2, rel3 "
      "WHERE selectattr1 < 100 AND selectattr2 < 100 "
      "AND rel1.joinattr2 = rel2.joinattr2 "
      "AND rel2.joinattr3 = rel3.joinattr3 "
      "GROUP BY groupattr";

  std::printf("=== 1. The annotated plan (optimizer estimates inline)\n\n");
  Result<std::string> explain = db.Explain(sql);
  if (explain.ok()) std::printf("%s\n", explain->c_str());

  std::printf("=== 2. Inaccuracy potentials (paper Section 2.5)\n\n");
  {
    SelectStmtAst ast = ParseSelect(sql).value();
    QuerySpec spec = Bind(ast, *db.catalog()).value();
    InaccuracyAnalyzer analyzer(db.catalog(), &spec);
    for (const char* col :
         {"rel1.selectattr1", "rel1.joinattr2", "rel3.joinattr3"}) {
      std::printf("  histogram on %-18s -> %s\n", col,
                  InaccuracyLevelName(analyzer.BaseHistogramPotential(col)));
    }
    PlanNode scan;
    scan.kind = OpKind::kSeqScan;
    scan.table = "rel1";
    scan.alias = "rel1";
    scan.filters.push_back(
        ScalarPred{"rel1.selectattr1", CmpOp::kLt, false,
                   Value(int64_t{100}), ""});
    scan.filters.push_back(
        ScalarPred{"rel1.selectattr2", CmpOp::kLt, false,
                   Value(int64_t{100}), ""});
    std::printf("  filtered rel1 scan output -> %s "
                "(multi-attribute selection bump)\n",
                InaccuracyLevelName(analyzer.NodePotential(scan)));
  }

  std::printf("\n=== 3. Execution with Dynamic Re-Optimization\n\n");
  ReoptOptions full;  // paper defaults
  Result<QueryResult> r = db.ExecuteWith(sql, full);
  if (!r.ok()) {
    std::fprintf(stderr, "failed: %s\n", r.status().ToString().c_str());
    return 1;
  }
  for (const std::string& e : r->report.events)
    std::printf("  %s\n", e.c_str());
  for (const EdgeComparison& e : r->report.edges)
    std::printf("  observed edge %d: est %.0f vs actual %.0f rows\n",
                e.node_id, e.estimated_rows, e.observed_rows);

  if (!r->report.plan_after.empty()) {
    std::printf("\n=== 4. Plan for the remainder (over the temp table)\n\n%s",
                r->report.plan_after.c_str());
  }

  std::printf("\n=== 5. Result (%zu groups), %0.1f simulated ms, "
              "%d plan switch(es)\n",
              r->rows.size(), r->report.sim_time_ms,
              r->report.plans_switched);
  ReoptOptions off;
  off.mode = ReoptMode::kOff;
  Result<QueryResult> baseline = db.ExecuteWith(sql, off);
  if (baseline.ok()) {
    std::printf("    normal execution: %.1f ms -> improvement %+.1f%%\n",
                baseline->report.sim_time_ms,
                (1.0 - r->report.sim_time_ms /
                           baseline->report.sim_time_ms) * 100);
  }
  return 0;
}
