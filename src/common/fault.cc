#include "common/fault.h"

#include <cstdio>

namespace reoptdb {

namespace {

/// Injected status code for a point, by layer prefix.
Status InjectedError(const std::string& point, uint64_t call) {
  std::string msg = "injected fault at " + point + " (call #" +
                    std::to_string(call) + ")";
  if (point.rfind("storage.", 0) == 0) return Status::IoError(std::move(msg));
  if (point.rfind("memory.", 0) == 0)
    return Status::ResourceExhausted(std::move(msg));
  // exec.* models a scratch-file failure during an operator's spill; like
  // storage.* it is an I/O error, but it surfaces at the operator (no
  // transparent DiskManager retry between the spill site and the query).
  if (point.rfind("exec.", 0) == 0) return Status::IoError(std::move(msg));
  // wal.* models the log device: append buffers can hit a full/broken
  // device, fsync can fail. Both are I/O errors the transaction layer maps
  // to an abort (never a partial commit).
  if (point.rfind("wal.", 0) == 0) return Status::IoError(std::move(msg));
  // net.* models a transient link error on an exchange channel; like
  // storage.* it is retryable, and the ExchangeChannel absorbs it with the
  // same bounded retry/backoff policy the DiskManager uses. node.crash is
  // not a link error: the shard controller maps it to a node loss.
  if (point.rfind("net.", 0) == 0) return Status::IoError(std::move(msg));
  return Status::Internal(std::move(msg));
}

const char* TriggerName(FaultTrigger t) {
  switch (t) {
    case FaultTrigger::kNthCall:
      return "nth";
    case FaultTrigger::kEveryCall:
      return "every";
    case FaultTrigger::kProbability:
      return "prob";
  }
  return "?";
}

}  // namespace

const std::vector<std::string>& FaultInjector::KnownPoints() {
  static const std::vector<std::string> kPoints = {
      faults::kStorageRead,     faults::kStorageWrite,
      faults::kStorageFree,     faults::kMemoryGrant,
      faults::kReoptOptimize,   faults::kReoptMaterialize,
      faults::kReoptScia,       faults::kReoptPostSwitch,
      faults::kJournalAppend,   faults::kRecoveryLoad,
      faults::kMemoryRevoke,    faults::kExecSpill,
      faults::kWalAppend,       faults::kWalFsync,
      faults::kLockAcquire,     faults::kTxnCommit,
      faults::kNetSend,         faults::kNetRecv,
      faults::kNodeCrash,       faults::kNodeResurrect,
  };
  return kPoints;
}

Status FaultInjector::Arm(const std::string& point, const FaultSpec& spec) {
  bool known = false;
  for (const std::string& p : KnownPoints()) known = known || p == point;
  if (!known)
    return Status::InvalidArgument("unknown fault injection point: " + point);
  if (spec.trigger == FaultTrigger::kNthCall && spec.nth == 0)
    return Status::InvalidArgument("nth trigger requires a 1-based call index");
  if (spec.trigger == FaultTrigger::kProbability &&
      (spec.probability < 0 || spec.probability > 1))
    return Status::InvalidArgument("fault probability must be in [0, 1]");
  ArmedPoint armed;
  armed.spec = spec;
  armed.rng = Rng(spec.seed);
  armed_[point] = std::move(armed);
  return Status::OK();
}

void FaultInjector::Disarm(const std::string& point) { armed_.erase(point); }

void FaultInjector::Reset() { armed_.clear(); }

bool FaultInjector::armed(const std::string& point) const {
  return armed_.count(point) > 0;
}

Status FaultInjector::Check(const char* point) {
  if (armed_.empty()) return Status::OK();
  auto it = armed_.find(point);
  if (it == armed_.end()) return Status::OK();
  ArmedPoint& a = it->second;
  ++a.stats.calls;
  bool fire = false;
  switch (a.spec.trigger) {
    case FaultTrigger::kNthCall:
      fire = a.stats.calls == a.spec.nth;
      break;
    case FaultTrigger::kEveryCall:
      fire = true;
      break;
    case FaultTrigger::kProbability:
      fire = a.rng.NextDouble() < a.spec.probability;
      break;
  }
  if (!fire) return Status::OK();
  ++a.stats.fires;
  a.fire_log.push_back(a.stats.calls);
  if (a.spec.action == FaultAction::kCrash) {
    crash_pending_ = true;
    return Status::Crashed("injected crash at " + it->first + " (call #" +
                           std::to_string(a.stats.calls) + ")");
  }
  if (a.spec.action == FaultAction::kCorrupt) {
    return Status::DataLoss("injected corruption at " + it->first +
                            " (call #" + std::to_string(a.stats.calls) + ")");
  }
  return InjectedError(it->first, a.stats.calls);
}

Status FaultInjector::Configure(const std::string& config) {
  size_t pos = 0;
  while (pos < config.size()) {
    size_t end = config.find(',', pos);
    if (end == std::string::npos) end = config.size();
    std::string entry = config.substr(pos, end - pos);
    pos = end + 1;
    // Trim whitespace.
    size_t b = entry.find_first_not_of(" \t");
    size_t e = entry.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    entry = entry.substr(b, e - b + 1);

    size_t eq = entry.find('=');
    if (eq == std::string::npos)
      return Status::InvalidArgument("fault spec entry missing '=': " + entry);
    std::string point = entry.substr(0, eq);
    std::string trig = entry.substr(eq + 1);

    FaultSpec spec;
    if (trig.rfind("crash:", 0) == 0) {
      spec.action = FaultAction::kCrash;
      trig = trig.substr(6);
    } else if (trig.rfind("corrupt:", 0) == 0) {
      spec.action = FaultAction::kCorrupt;
      trig = trig.substr(8);
    }
    if (trig == "every") {
      spec.trigger = FaultTrigger::kEveryCall;
    } else if (trig.rfind("nth:", 0) == 0) {
      spec.trigger = FaultTrigger::kNthCall;
      char* parse_end = nullptr;
      spec.nth = std::strtoull(trig.c_str() + 4, &parse_end, 10);
      if (parse_end == trig.c_str() + 4 || *parse_end != '\0')
        return Status::InvalidArgument("bad nth trigger: " + trig);
    } else if (trig.rfind("prob:", 0) == 0) {
      spec.trigger = FaultTrigger::kProbability;
      std::string rest = trig.substr(5);
      size_t at = rest.find('@');
      std::string p_str = at == std::string::npos ? rest : rest.substr(0, at);
      char* parse_end = nullptr;
      spec.probability = std::strtod(p_str.c_str(), &parse_end);
      if (parse_end == p_str.c_str() || *parse_end != '\0')
        return Status::InvalidArgument("bad probability trigger: " + trig);
      if (at != std::string::npos) {
        std::string s_str = rest.substr(at + 1);
        spec.seed = std::strtoull(s_str.c_str(), &parse_end, 10);
        if (parse_end == s_str.c_str() || *parse_end != '\0')
          return Status::InvalidArgument("bad probability seed: " + trig);
      }
    } else {
      return Status::InvalidArgument(
          "unknown fault trigger (want [crash:|corrupt:]every|nth:<k>|"
          "prob:<p>[@seed]): " +
          trig);
    }
    RETURN_IF_ERROR(Arm(point, spec));
  }
  return Status::OK();
}

FaultPointStats FaultInjector::StatsFor(const std::string& point) const {
  auto it = armed_.find(point);
  return it == armed_.end() ? FaultPointStats{} : it->second.stats;
}

std::vector<uint64_t> FaultInjector::FireLog(const std::string& point) const {
  auto it = armed_.find(point);
  return it == armed_.end() ? std::vector<uint64_t>{} : it->second.fire_log;
}

std::string FaultInjector::Describe() const {
  if (armed_.empty()) return "no faults armed\n";
  std::string out;
  char buf[192];
  for (const auto& [point, a] : armed_) {
    const char* act = a.spec.action == FaultAction::kCrash     ? "crash:"
                      : a.spec.action == FaultAction::kCorrupt ? "corrupt:"
                                                               : "";
    switch (a.spec.trigger) {
      case FaultTrigger::kNthCall:
        std::snprintf(buf, sizeof(buf),
                      "  %-20s %snth:%llu       calls=%llu fires=%llu\n",
                      point.c_str(), act,
                      static_cast<unsigned long long>(a.spec.nth),
                      static_cast<unsigned long long>(a.stats.calls),
                      static_cast<unsigned long long>(a.stats.fires));
        break;
      case FaultTrigger::kEveryCall:
        std::snprintf(buf, sizeof(buf),
                      "  %-20s %severy       calls=%llu fires=%llu\n",
                      point.c_str(), act,
                      static_cast<unsigned long long>(a.stats.calls),
                      static_cast<unsigned long long>(a.stats.fires));
        break;
      case FaultTrigger::kProbability:
        std::snprintf(buf, sizeof(buf),
                      "  %-20s %sprob:%.3f@%llu calls=%llu fires=%llu\n",
                      point.c_str(), act, a.spec.probability,
                      static_cast<unsigned long long>(a.spec.seed),
                      static_cast<unsigned long long>(a.stats.calls),
                      static_cast<unsigned long long>(a.stats.fires));
        break;
    }
    out += buf;
  }
  return out;
}

}  // namespace reoptdb
