#include "engine/database.h"

#include <cstdlib>

#include "common/logging.h"
#include "engine/recovery.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "parser/statement.h"

namespace reoptdb {

namespace {

/// Rewrites a REOPTDB_FAULTS-grammar schedule so every trigger carries the
/// crash: prefix (REOPTDB_CRASH_SCHEDULE is sugar for crash-only runs:
/// "reopt.materialize=nth:1" means crash there, not error there).
std::string ForceCrashTriggers(const std::string& schedule) {
  std::string out;
  size_t pos = 0;
  while (pos <= schedule.size()) {
    size_t end = schedule.find(',', pos);
    if (end == std::string::npos) end = schedule.size();
    std::string entry = schedule.substr(pos, end - pos);
    size_t eq = entry.find('=');
    if (eq != std::string::npos &&
        entry.compare(eq + 1, 6, "crash:") != 0)
      entry.insert(eq + 1, "crash:");
    if (!out.empty()) out += ',';
    out += entry;
    if (end == schedule.size()) break;
    pos = end + 1;
  }
  return out;
}

}  // namespace

// Writers only touch heaps at commit — appending past the captured tuple
// bound or deleting at a later epoch — so a snapshot frozen here makes the
// query's reads independent of how concurrent DML interleaves.
void Database::CaptureScanSnapshots(ExecContext* ctx) const {
  for (const std::string& name : catalog_.TableNames()) {
    Result<const TableInfo*> info = catalog_.Get(name);
    if (!info.ok() || info.value()->is_temp) continue;
    ctx->SetSnapshot(name,
                     ExecContext::TableSnapshot{
                         info.value()->heap->tuple_count(),
                         txn_.commit_epoch()});
  }
}

Database::Database(DatabaseOptions opts)
    : opts_(opts),
      pool_(&disk_, opts.buffer_pool_pages),
      catalog_(&pool_),
      txn_(&catalog_, &pool_, &faults_),
      cost_(opts.cost_params),
      feedback_store_(opts.feedback),
      plan_cache_(opts.plan_cache),
      feedback_enabled_(opts.enable_feedback),
      plan_cache_enabled_(opts.enable_plan_cache) {
  if (const char* env = std::getenv("REOPTDB_FAULTS");
      env != nullptr && env[0] != '\0') {
    Status st = faults_.Configure(env);
    if (!st.ok()) REOPTDB_LOG(kWarn) << "REOPTDB_FAULTS: " << st.ToString();
  }
  if (const char* env = std::getenv("REOPTDB_CRASH_SCHEDULE");
      env != nullptr && env[0] != '\0') {
    Status st = faults_.Configure(ForceCrashTriggers(env));
    if (!st.ok())
      REOPTDB_LOG(kWarn) << "REOPTDB_CRASH_SCHEDULE: " << st.ToString();
  }
  disk_.set_fault_injector(&faults_);
}

Status Database::CreateTable(const std::string& name, Schema schema) {
  RETURN_IF_ERROR(catalog_.CreateTable(name, std::move(schema)).status());
  txn_.MarkStorageDirty();
  return Status::OK();
}

Status Database::Insert(const std::string& table, Tuple row) {
  ASSIGN_OR_RETURN(TableInfo * info, catalog_.Get(table));
  if (row.size() != info->schema.NumColumns())
    return Status::InvalidArgument("row arity mismatch for " + table);
  txn_.MarkStorageDirty();
  return info->heap->Append(row).status();
}

Status Database::BulkLoad(const std::string& table,
                          const std::vector<Tuple>& rows) {
  ASSIGN_OR_RETURN(TableInfo * info, catalog_.Get(table));
  txn_.MarkStorageDirty();
  for (const Tuple& row : rows) {
    if (row.size() != info->schema.NumColumns())
      return Status::InvalidArgument("row arity mismatch for " + table);
    RETURN_IF_ERROR(info->heap->Append(row).status());
  }
  return info->heap->Flush();
}

Status Database::CreateIndex(const std::string& table,
                             const std::string& column) {
  return catalog_.CreateIndex(table, column);
}

Status Database::DeclareKey(const std::string& table,
                            const std::string& column) {
  return catalog_.DeclareKey(table, column);
}

Status Database::Analyze(const std::string& table, const AnalyzeOptions& opts) {
  return catalog_.Analyze(table, opts);
}

Status Database::BumpUpdateActivity(const std::string& table,
                                    double fraction) {
  return catalog_.BumpUpdateActivity(table, fraction);
}

const OptimizerCalibration& Database::calibration() {
  if (!calibrated_ && opts_.calibrate_max_relations > 1) {
    Result<OptimizerCalibration> cal =
        OptimizerCalibration::Run(opts_.calibrate_max_relations, cost_);
    if (cal.ok()) calibration_ = std::move(cal).value();
    calibrated_ = true;
  }
  return calibration_;
}

Result<QueryResult> Database::Execute(const std::string& sql) {
  return ExecuteWith(sql, opts_.reopt);
}

Result<QueryResult> Database::ExecuteWith(const std::string& sql,
                                          const ReoptOptions& reopt) {
  return ExecuteWithRoot(sql, reopt, /*journal_root=*/"");
}

Result<QueryResult> Database::ExecuteWithRoot(const std::string& sql,
                                              const ReoptOptions& reopt,
                                              const std::string& journal_root) {
  ASSIGN_OR_RETURN(SelectStmtAst ast, ParseSelect(sql));
  ASSIGN_OR_RETURN(QuerySpec spec, Bind(ast, catalog_));
  const std::string canonical_sql = spec.ToSql();

  OptimizerOptions opt_opts = opts_.optimizer;
  opt_opts.assumed_mem_pages = opts_.query_mem_pages;
  opt_opts.pool_pages_hint = static_cast<double>(opts_.buffer_pool_pages);

  const OptimizerCalibration& cal = calibration();
  DynamicReoptimizer reoptimizer(&catalog_, &cost_, &cal, opt_opts, reopt,
                                 opts_.query_mem_pages);
  reoptimizer.SetJournal(&journal_, journal_root);
  reoptimizer.SetScrubSignal(scrub_signal_);
  if (feedback_enabled_) reoptimizer.SetFeedback(&feedback_store_);
  ExecContext ctx(&pool_, &catalog_, &cost_, /*seed=*/1234 + ++query_counter_);
  ctx.SetFaultInjector(&faults_);
  CaptureScanSnapshots(&ctx);

  // Plan-correction cache: a repeat of a query whose plan was corrected
  // mid-run starts directly on the corrected plan, skipping optimization.
  std::unique_ptr<PlanNode> cached;
  std::unique_ptr<PlanMemo> cached_memo;
  if (plan_cache_enabled_) {
    std::string reason;
    double saved_opt_ms = 0;
    uint64_t entry_hits = 0;
    cached = plan_cache_.Lookup(canonical_sql, opts_.query_mem_pages, catalog_,
                                &reason, &saved_opt_ms, &entry_hits,
                                &cached_memo);
    if (cached != nullptr) {
      PlanCacheHit hit;
      hit.sql = canonical_sql;
      hit.saved_opt_ms = saved_opt_ms;
      hit.entry_hits = entry_hits;
      ctx.AddEvent(Render(hit));
      ctx.trace()->plan_cache_hits.push_back(std::move(hit));
    }
  }

  QuerySpec spec_for_install;
  if (plan_cache_enabled_) spec_for_install = spec;

  QueryResult result;
  if (cached != nullptr) {
    ASSIGN_OR_RETURN(result.report,
                     reoptimizer.ExecuteWithPlan(std::move(spec),
                                                 std::move(cached), &ctx,
                                                 &result.rows,
                                                 &result.schema,
                                                 std::move(cached_memo)));
  } else {
    ASSIGN_OR_RETURN(result.report,
                     reoptimizer.Execute(std::move(spec), &ctx, &result.rows,
                                         &result.schema));
  }

  if (plan_cache_enabled_ && result.report.plans_switched > 0) {
    // The controller paid to learn the static plan was wrong; bank the
    // lesson. The committed post-switch plan reads query-local temp tables,
    // so the cacheable correction comes from re-planning the *original*
    // spec with the freshly harvested feedback. Happens after delivery and
    // is not charged to the query's simulated time.
    Optimizer corrective(&catalog_, &cost_, opt_opts,
                         feedback_enabled_ ? &feedback_store_ : nullptr);
    Result<OptimizeResult> corrected = corrective.Plan(spec_for_install);
    if (corrected.ok()) {
      plan_cache_.Install(canonical_sql, *corrected.value().plan,
                          corrected.value().sim_opt_time_ms,
                          opts_.query_mem_pages, catalog_,
                          corrected.value().memo.get());
    }
  }
  return result;
}

Result<QueryResult> Database::Recover(const std::string& sql,
                                      const ReoptOptions& reopt) {
  RecoveryManager rm(this);
  return rm.Recover(sql, reopt);
}

Result<PreparedQuery> Database::Prepare(
    const std::string& sql, std::vector<double> memory_candidates) {
  ASSIGN_OR_RETURN(SelectStmtAst ast, ParseSelect(sql));
  ASSIGN_OR_RETURN(QuerySpec spec, Bind(ast, catalog_));
  if (memory_candidates.empty()) {
    memory_candidates = {opts_.query_mem_pages / 4, opts_.query_mem_pages,
                         opts_.query_mem_pages * 4};
  }
  OptimizerOptions opt_opts = opts_.optimizer;
  opt_opts.pool_pages_hint = static_cast<double>(opts_.buffer_pool_pages);
  ASSIGN_OR_RETURN(ParametricPlanSet plans,
                   ParametricPlanSet::Plan(&catalog_, &cost_, opt_opts, spec,
                                           std::move(memory_candidates)));
  return PreparedQuery{std::move(spec), std::move(plans)};
}

Result<QueryResult> Database::ExecutePrepared(const PreparedQuery& prepared,
                                              double actual_mem_pages,
                                              const ReoptOptions& reopt) {
  const ParametricBranch& branch = prepared.plans.Pick(actual_mem_pages);
  std::unique_ptr<PlanNode> plan = branch.plan->Clone();
  plan->PostOrder([](PlanNode* n) {
    n->observed = ObservedStats{};
    n->improved = n->est;
    n->mem_budget_pages = 0;
  });

  OptimizerOptions opt_opts = opts_.optimizer;
  opt_opts.assumed_mem_pages = actual_mem_pages;
  opt_opts.pool_pages_hint = static_cast<double>(opts_.buffer_pool_pages);
  const OptimizerCalibration& cal = calibration();
  DynamicReoptimizer reoptimizer(&catalog_, &cost_, &cal, opt_opts, reopt,
                                 actual_mem_pages);
  reoptimizer.SetJournal(&journal_);
  reoptimizer.SetScrubSignal(scrub_signal_);
  ExecContext ctx(&pool_, &catalog_, &cost_, /*seed=*/1234 + ++query_counter_);
  ctx.SetFaultInjector(&faults_);
  CaptureScanSnapshots(&ctx);

  QueryResult result;
  ASSIGN_OR_RETURN(result.report,
                   reoptimizer.ExecuteWithPlan(prepared.spec, std::move(plan),
                                               &ctx, &result.rows,
                                               &result.schema));
  return result;
}

Result<QueryResult> Database::ExecuteSql(const std::string& sql) {
  uint64_t session = 0;
  Result<QueryResult> result = ExecuteSqlInTxn(sql, &session);
  // A bare BEGIN through this entry point has no session handle to live
  // in; discard the transaction instead of leaking it (it would block
  // checkpoints forever).
  if (session != 0) (void)txn_.Abort(session, "no session");
  return result;
}

Result<uint64_t> Database::ExecuteDml(uint64_t txn_id, const Statement& stmt) {
  // One simulated lock-wait quantum. Deterministic: waits accrue on the
  // transaction's clock in fixed steps until the lock frees or the
  // deadline kills the wait.
  constexpr double kWaitQuantumMs = 5.0;
  const double deadline = opts_.reopt.deadline_ms;
  while (true) {
    Result<DmlResult> r = Status::InvalidArgument("not a DML statement");
    if (auto* ins = std::get_if<InsertAst>(&stmt)) {
      r = txn_.ExecuteInsert(txn_id, *ins);
    } else if (auto* up = std::get_if<UpdateAst>(&stmt)) {
      r = txn_.ExecuteUpdate(txn_id, *up);
    } else if (auto* del = std::get_if<DeleteAst>(&stmt)) {
      r = txn_.ExecuteDelete(txn_id, *del);
    }
    if (r.ok()) return r.value().rows;
    if (r.status().code() != StatusCode::kLockWait) return r.status();
    double waited = txn_.ChargeLockWait(txn_id, kWaitQuantumMs);
    if (deadline <= 0) return r.status();  // caller interleaves and retries
    if (waited >= deadline) {
      (void)txn_.Abort(txn_id, "timeout");
      return Status::Cancelled(
          "lock wait timeout: txn " + std::to_string(txn_id) +
          " aborted after " + std::to_string(waited) + "ms");
    }
  }
}

Status Database::RecoverStorage() {
  faults_.ClearCrash();
  return txn_.Recover();
}

Result<QueryResult> Database::ExecuteSqlInTxn(const std::string& sql,
                                              uint64_t* session_txn) {
  ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  QueryResult result;

  if (std::holds_alternative<SelectStmtAst>(stmt)) {
    return Execute(sql);
  }
  if (std::holds_alternative<BeginTxnAst>(stmt)) {
    if (*session_txn != 0)
      return Status::InvalidArgument("transaction already in progress");
    ASSIGN_OR_RETURN(*session_txn, txn_.Begin());
    result.message = "began transaction " + std::to_string(*session_txn);
    return result;
  }
  if (std::holds_alternative<CommitTxnAst>(stmt)) {
    if (*session_txn == 0)
      return Status::InvalidArgument("no transaction in progress");
    const uint64_t id = *session_txn;
    *session_txn = 0;
    RETURN_IF_ERROR(txn_.Commit(id));
    result.message = "committed transaction " + std::to_string(id);
    return result;
  }
  if (std::holds_alternative<RollbackTxnAst>(stmt)) {
    if (*session_txn == 0)
      return Status::InvalidArgument("no transaction in progress");
    const uint64_t id = *session_txn;
    *session_txn = 0;
    RETURN_IF_ERROR(txn_.Abort(id));
    result.message = "rolled back transaction " + std::to_string(id);
    return result;
  }
  if (IsDmlStatement(stmt)) {
    const bool autocommit = *session_txn == 0;
    uint64_t txn = *session_txn;
    if (autocommit) {
      Result<uint64_t> begun = txn_.Begin();
      if (!begun.ok()) return begun.status();
      txn = begun.value();
    }
    Result<uint64_t> rows = ExecuteDml(txn, stmt);
    if (!rows.ok()) {
      if (autocommit && txn_.IsActive(txn))
        (void)txn_.Abort(txn, rows.status().message());
      // A deadlock victim / timeout abort may have killed a session
      // transaction inside ExecuteDml; don't leave the handle dangling.
      if (!autocommit && !txn_.IsActive(txn)) *session_txn = 0;
      return rows.status();
    }
    if (autocommit) RETURN_IF_ERROR(txn_.Commit(txn));
    const char* verb = std::holds_alternative<InsertAst>(stmt)   ? "inserted"
                       : std::holds_alternative<UpdateAst>(stmt) ? "updated"
                                                                 : "deleted";
    result.message =
        std::string(verb) + " " + std::to_string(rows.value()) + " row(s)";
    return result;
  }
  if (auto* ct = std::get_if<CreateTableAst>(&stmt)) {
    RETURN_IF_ERROR(CreateTable(ct->table, Schema(ct->columns)));
    for (const std::string& key : ct->keys)
      RETURN_IF_ERROR(DeclareKey(ct->table, key));
    result.message = "created table " + ct->table;
    return result;
  }
  if (auto* ci = std::get_if<CreateIndexAst>(&stmt)) {
    RETURN_IF_ERROR(CreateIndex(ci->table, ci->column));
    result.message = "created index on " + ci->table + "." + ci->column;
    return result;
  }
  if (auto* dt = std::get_if<DropTableAst>(&stmt)) {
    RETURN_IF_ERROR(catalog_.Drop(dt->table));
    // Feedback and corrected plans for a dropped table are garbage even if
    // a same-named table reappears later. Same for its restore point.
    feedback_store_.InvalidateTable(dt->table);
    plan_cache_.InvalidateTable(dt->table);
    txn_.OnTableDropped(dt->table);
    txn_.MarkStorageDirty();
    result.message = "dropped table " + dt->table;
    return result;
  }
  if (auto* an = std::get_if<AnalyzeAst>(&stmt)) {
    RETURN_IF_ERROR(Analyze(an->table));
    result.message = "analyzed " + an->table;
    return result;
  }
  if (auto* ex = std::get_if<ExplainAst>(&stmt)) {
    ASSIGN_OR_RETURN(QuerySpec spec, Bind(ex->select, catalog_));
    OptimizerOptions opt_opts = opts_.optimizer;
    opt_opts.assumed_mem_pages = opts_.query_mem_pages;
    opt_opts.pool_pages_hint = static_cast<double>(opts_.buffer_pool_pages);
    if (ex->analyze) {
      // EXPLAIN ANALYZE: actually execute and render the structured trace
      // (operator spans, reopt decisions) below the plan(s).
      const OptimizerCalibration& cal = calibration();
      DynamicReoptimizer reoptimizer(&catalog_, &cost_, &cal, opt_opts,
                                     opts_.reopt, opts_.query_mem_pages);
      reoptimizer.SetJournal(&journal_);
      reoptimizer.SetScrubSignal(scrub_signal_);
      if (feedback_enabled_) reoptimizer.SetFeedback(&feedback_store_);
      ExecContext ctx(&pool_, &catalog_, &cost_,
                      /*seed=*/1234 + ++query_counter_);
      ctx.SetFaultInjector(&faults_);
      CaptureScanSnapshots(&ctx);
      ASSIGN_OR_RETURN(result.report,
                       reoptimizer.Execute(std::move(spec), &ctx,
                                           &result.rows, &result.schema));
      result.message = result.report.plan_before;
      if (!result.report.plan_after.empty())
        result.message += "-- switched to --\n" + result.report.plan_after;
      result.message += result.report.trace.Summary();
      result.rows.clear();  // EXPLAIN output is the message, not the rows
      return result;
    }
    Optimizer optimizer(&catalog_, &cost_, opt_opts);
    ASSIGN_OR_RETURN(OptimizeResult opt, optimizer.Plan(spec));
    result.message = opt.plan->ToString();
    return result;
  }
  return Status::Internal("unhandled statement kind");
}

Result<std::string> Database::Explain(const std::string& sql) {
  ASSIGN_OR_RETURN(SelectStmtAst ast, ParseSelect(sql));
  ASSIGN_OR_RETURN(QuerySpec spec, Bind(ast, catalog_));
  OptimizerOptions opt_opts = opts_.optimizer;
  opt_opts.assumed_mem_pages = opts_.query_mem_pages;
  opt_opts.pool_pages_hint = static_cast<double>(opts_.buffer_pool_pages);
  Optimizer optimizer(&catalog_, &cost_, opt_opts);
  ASSIGN_OR_RETURN(OptimizeResult opt, optimizer.Plan(spec));
  return opt.plan->ToString();
}

}  // namespace reoptdb
