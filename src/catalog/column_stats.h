// Per-column statistics stored in the catalog and produced by collectors.

#ifndef REOPTDB_CATALOG_COLUMN_STATS_H_
#define REOPTDB_CATALOG_COLUMN_STATS_H_

#include <string>

#include "stats/histogram.h"
#include "types/value.h"

namespace reoptdb {

/// \brief Statistics about one column.
///
/// Numeric columns carry min/max and (optionally) a histogram; string
/// columns carry only a distinct count (equality selectivity = 1/distinct).
struct ColumnStats {
  ValueType type = ValueType::kInt64;
  bool has_bounds = false;
  double min = 0;
  double max = 0;
  double distinct = 0;        // 0 = unknown
  /// True when `distinct` is a lower bound rather than an exact estimate
  /// (e.g. an FM sketch harvested mid-query after a shrink-spill saw only
  /// the partitions probed so far). Consumers must never use a lower-bound
  /// distinct to *reduce* an existing estimate.
  bool distinct_is_lower_bound = false;
  Histogram histogram;        // kind kNone when absent
  double avg_width = 8.0;     // bytes

  bool has_histogram() const { return histogram.kind() != HistogramKind::kNone; }

  /// Selectivity of `col = v` given `row_count` table rows.
  double SelectivityEquals(double v, double row_count) const;

  /// Selectivity of a range predicate lo </<= col </<= hi. Pass
  /// -inf/+inf for one-sided ranges.
  double SelectivityRange(double lo, bool lo_strict, double hi, bool hi_strict,
                          double row_count) const;

  std::string ToString() const;
};

}  // namespace reoptdb

#endif  // REOPTDB_CATALOG_COLUMN_STATS_H_
