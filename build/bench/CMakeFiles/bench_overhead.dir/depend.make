# Empty dependencies file for bench_overhead.
# This may be replaced when dependencies are built.
