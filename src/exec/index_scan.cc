#include "exec/index_scan.h"

#include <limits>

namespace reoptdb {

Status IndexScanOp::OpenImpl() {
  ASSIGN_OR_RETURN(const TableInfo* info, ctx_->catalog()->Get(node_->table));
  heap_ = info->heap.get();
  const BTree* index = info->FindIndex(node_->index_column);
  if (index == nullptr)
    return Status::Internal("index scan: no index on " + node_->table + "." +
                            node_->index_column);
  int64_t lo = node_->range_lo.value_or(std::numeric_limits<int64_t>::min());
  int64_t hi = node_->range_hi.value_or(std::numeric_limits<int64_t>::max());
  ASSIGN_OR_RETURN(BTree::Iterator it, index->SeekRange(lo, hi));
  it_.emplace(std::move(it));
  if (const ExecContext::TableSnapshot* snap =
          ctx_->FindSnapshot(node_->table)) {
    snap_limit_ = snap->tuple_limit;
    snap_epoch_ = snap->epoch;
  }
  ASSIGN_OR_RETURN(preds_, CompilePreds(node_->filters, node_->output_schema));
  return Status::OK();
}

Result<bool> IndexScanOp::NextImpl(Tuple* out) {
  int64_t key;
  Rid rid;
  while (true) {
    ASSIGN_OR_RETURN(bool more, it_->Next(&key, &rid));
    if (!more) return false;
    // Snapshot visibility: rows appended after the query started are past
    // the ordinal bound; rows deleted since are filtered by epoch. Ordinals
    // are unknown only for adopted (recovered temp) heaps, which are never
    // snapshot-bounded.
    if (snap_limit_ != HeapFile::kLatest) {
      std::optional<uint64_t> ord = heap_->RidOrdinal(rid);
      if (ord.has_value() && *ord >= snap_limit_) continue;
    }
    if (heap_->IsDeletedAsOf(rid, snap_epoch_)) continue;
    ASSIGN_OR_RETURN(*out, heap_->Fetch(rid));
    ctx_->ChargeTuples(1);
    if (EvalAll(preds_, *out)) return true;
  }
}

Status IndexScanOp::CloseImpl() {
  it_.reset();
  return Status::OK();
}

}  // namespace reoptdb
