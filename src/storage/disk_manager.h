// Simulated disk with exact I/O accounting.
//
// The paper's measurements (SIGMOD'98 hardware) are dominated by page I/O:
// one-pass vs. two-pass hash joins, extra materializations, wrong join
// orders. We therefore simulate the disk: pages live in host memory, and
// every page read/write increments counters that the cost model converts
// into deterministic "simulated milliseconds". This reproduces the paper's
// result *shapes* independent of 2026 hardware (see DESIGN.md §3).

#ifndef REOPTDB_STORAGE_DISK_MANAGER_H_
#define REOPTDB_STORAGE_DISK_MANAGER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/fault.h"
#include "common/status.h"
#include "storage/page.h"

namespace reoptdb {

/// Monotonic counters of disk traffic.
struct DiskStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t pages_allocated = 0;
  uint64_t pages_freed = 0;
  /// Transient-IoError retries (injected faults absorbed by backoff).
  uint64_t io_retries = 0;
  /// Simulated milliseconds spent in retry backoff; folded into the query
  /// clock by ExecContext::SimElapsedMs.
  double retry_penalty_ms = 0;
  /// Reads that failed their checksum and whose single confirming re-read
  /// failed too: surfaced as kDataLoss, never retried further. Distinct
  /// from io_retries so bit-rot is not mistaken for a flaky device.
  uint64_t data_loss_reads = 0;
  /// Writes silently corrupted by an armed corrupt: fault (ground truth
  /// for scrub-detection tests; the writer itself was told "OK").
  uint64_t pages_corrupted = 0;

  DiskStats operator-(const DiskStats& o) const {
    return DiskStats{page_reads - o.page_reads,
                     page_writes - o.page_writes,
                     pages_allocated - o.pages_allocated,
                     pages_freed - o.pages_freed,
                     io_retries - o.io_retries,
                     retry_penalty_ms - o.retry_penalty_ms,
                     data_loss_reads - o.data_loss_reads,
                     pages_corrupted - o.pages_corrupted};
  }

  DiskStats operator+(const DiskStats& o) const {
    return DiskStats{page_reads + o.page_reads,
                     page_writes + o.page_writes,
                     pages_allocated + o.pages_allocated,
                     pages_freed + o.pages_freed,
                     io_retries + o.io_retries,
                     retry_penalty_ms + o.retry_penalty_ms,
                     data_loss_reads + o.data_loss_reads,
                     pages_corrupted + o.pages_corrupted};
  }
};

/// \brief Allocates, reads and writes simulated pages.
///
/// Single-threaded; the engine is a single-query-at-a-time system, like the
/// per-node data server in Paradise.
class DiskManager {
 public:
  DiskManager() = default;
  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Allocates a zeroed page and returns its id.
  PageId AllocatePage();

  /// Releases a page's storage. Reading a freed page is an error.
  Status FreePage(PageId id);

  /// Copies the page contents into `*out`, charging one read. The page's
  /// stored checksum is verified first; a mismatch gets exactly one
  /// confirming re-read (a torn buffer would heal, on-media rot would not)
  /// and then surfaces as kDataLoss — retry cannot fix bit-rot, so the
  /// transient-error backoff budget is not burned on it.
  Status ReadPage(PageId id, Page* out);

  /// Copies `page` to the simulated disk, charging one write. If a
  /// corrupt:-action fault fires at storage.write, the write succeeds and
  /// then stored bytes are flipped without updating the recorded checksum —
  /// silent bit-rot, reported as OK to the writer.
  Status WritePage(PageId id, const Page& page);

  const DiskStats& stats() const { return stats_; }

  /// Number of live (allocated, not freed) pages.
  size_t live_pages() const { return pages_.size(); }

  /// Fault-injection hook (storage.read / storage.write / storage.free).
  /// Injected kIoError is treated as transient: the operation retries with
  /// bounded exponential backoff (simulated, charged to retry_penalty_ms)
  /// before the error is surfaced to the caller. nullptr disables.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  /// Maximum retries after a transient IoError before it is surfaced.
  static constexpr int kMaxIoRetries = 3;
  /// First-retry backoff in simulated ms; doubles per attempt.
  static constexpr double kRetryBackoffBaseMs = 1.0;

  /// Flips bytes of the stored page without updating its recorded checksum,
  /// modeling on-media corruption. The next ReadPage confirms the damage
  /// with one re-read and fails with kDataLoss. Test-only (the corrupt:
  /// fault action drives the same flip through WritePage).
  Status CorruptPageForTesting(PageId id);

 private:
  /// Consults the injector for `point`, absorbing transient faults via the
  /// retry/backoff policy above. OK when nothing is armed.
  Status CheckFault(const char* point);

  std::unordered_map<PageId, std::unique_ptr<Page>> pages_;
  /// Expected checksum per live page, maintained on allocate/write.
  std::unordered_map<PageId, uint64_t> checksums_;
  PageId next_id_ = 0;
  DiskStats stats_;
  FaultInjector* faults_ = nullptr;
};

}  // namespace reoptdb

#endif  // REOPTDB_STORAGE_DISK_MANAGER_H_
