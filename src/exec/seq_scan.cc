#include "exec/seq_scan.h"

namespace reoptdb {

Status SeqScanOp::OpenImpl() {
  ASSIGN_OR_RETURN(const TableInfo* info, ctx_->catalog()->Get(node_->table));
  heap_ = info->heap.get();
  if (const ExecContext::TableSnapshot* snap =
          ctx_->FindSnapshot(node_->table)) {
    it_.emplace(heap_->ScanSnapshot(snap->tuple_limit, snap->epoch));
  } else {
    it_.emplace(heap_->Scan());
  }
  ASSIGN_OR_RETURN(preds_, CompilePreds(node_->filters, node_->output_schema));
  return Status::OK();
}

Result<bool> SeqScanOp::NextImpl(Tuple* out) {
  while (true) {
    ASSIGN_OR_RETURN(bool more, it_->Next(out));
    if (!more) return false;
    ctx_->ChargeTuples(1);
    if (EvalAll(preds_, *out)) return true;
  }
}

Result<bool> SeqScanOp::NextBatchImpl(TupleBatch* out) {
  // Deserializes straight into (reused) batch slots; work is charged once
  // per batch with the same per-row totals as NextImpl.
  uint64_t scanned = 0;
  while (!out->full()) {
    Tuple* slot = out->AddSlot();
    ASSIGN_OR_RETURN(bool more, it_->Next(slot));
    if (!more) {
      out->PopSlot();
      break;
    }
    ++scanned;
    if (!EvalAll(preds_, *slot)) out->PopSlot();
  }
  if (scanned > 0) ctx_->ChargeTuples(scanned);
  return !out->empty();
}

Status SeqScanOp::CloseImpl() {
  it_.reset();
  return Status::OK();
}

}  // namespace reoptdb
