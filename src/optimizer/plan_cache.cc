#include "optimizer/plan_cache.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

namespace reoptdb {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvMix(uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
  // Field separator so {"ab","c"} and {"a","bc"} differ.
  h ^= 0x1f;
  h *= kFnvPrime;
  return h;
}

/// Base (non-temp) tables referenced by scans in the plan, deduplicated.
std::set<std::string> ReferencedTables(const PlanNode& plan) {
  std::set<std::string> tables;
  plan.PostOrder([&](const PlanNode* n) {
    if (!n->table.empty()) tables.insert(n->table);
  });
  return tables;
}

}  // namespace

uint64_t SchemaFingerprint(const TableInfo& info) {
  uint64_t h = kFnvOffset;
  h = FnvMix(h, info.name);
  for (const Column& c : info.schema.columns()) {
    h = FnvMix(h, c.QualifiedName());
    h = FnvMix(h, std::to_string(static_cast<int>(c.type)));
    h = FnvMix(h, std::to_string(c.avg_width));
  }
  for (const std::string& k : info.key_columns) h = FnvMix(h, "key:" + k);
  for (const auto& [col, tree] : info.indexes) {
    (void)tree;
    h = FnvMix(h, "idx:" + col);
  }
  return h;
}

void PlanCorrectionCache::Install(const std::string& sql, const PlanNode& plan,
                                  double opt_time_ms, double query_mem_pages,
                                  const Catalog& catalog,
                                  const PlanMemo* memo) {
  Entry entry;
  entry.plan = plan.Clone();
  if (memo != nullptr) entry.memo = memo->Clone();
  entry.opt_time_ms = opt_time_ms;
  entry.query_mem_pages = query_mem_pages;
  for (const std::string& t : ReferencedTables(plan)) {
    Result<const TableInfo*> info = catalog.Get(t);
    // A plan over a temp table must not be cached: the temp table is gone
    // when the query finishes. The controller caches corrected plans for
    // the *original* spec, so this only fires on misuse.
    if (!info.ok() || info.value()->is_temp) return;
    PlanCacheTableMark mark;
    mark.table = t;
    mark.schema_fingerprint = SchemaFingerprint(*info.value());
    mark.row_count = static_cast<double>(info.value()->heap->tuple_count());
    mark.update_activity = info.value()->stats.update_activity;
    entry.marks.push_back(std::move(mark));
  }
  auto it = entries_.find(sql);
  if (it != entries_.end()) {
    lru_.remove(sql);
  }
  entries_[sql] = std::move(entry);
  lru_.push_back(sql);
  ++counters_.installs;
  EnforceCapacity();
}

std::unique_ptr<PlanNode> PlanCorrectionCache::Lookup(
    const std::string& sql, double query_mem_pages, const Catalog& catalog,
    std::string* reason, double* saved_opt_ms, uint64_t* entry_hits,
    std::unique_ptr<PlanMemo>* memo_out) {
  auto it = entries_.find(sql);
  if (it == entries_.end()) {
    ++counters_.misses;
    if (reason != nullptr) *reason = "miss";
    return nullptr;
  }
  Entry& entry = it->second;
  for (const PlanCacheTableMark& mark : entry.marks) {
    Result<const TableInfo*> info = catalog.Get(mark.table);
    const bool schema_ok =
        info.ok() && !info.value()->is_temp &&
        SchemaFingerprint(*info.value()) == mark.schema_fingerprint;
    if (!schema_ok) {
      ++counters_.schema_evictions;
      lru_.remove(sql);
      entries_.erase(it);
      if (reason != nullptr) *reason = "schema_changed";
      return nullptr;
    }
    const double rows = static_cast<double>(info.value()->heap->tuple_count());
    const double drift =
        std::abs(rows - mark.row_count) / std::max(1.0, mark.row_count);
    const double activity =
        std::abs(info.value()->stats.update_activity - mark.update_activity);
    if (drift > opts_.staleness_rows_frac ||
        activity > opts_.staleness_activity) {
      ++counters_.stale_evictions;
      lru_.remove(sql);
      entries_.erase(it);
      if (reason != nullptr) *reason = "stats_stale";
      return nullptr;
    }
  }
  if (query_mem_pages < entry.query_mem_pages) {
    // Plan was corrected under a larger budget; keep the entry and let the
    // optimizer size operators for the current (transiently smaller) one.
    ++counters_.memory_rejects;
    if (reason != nullptr) *reason = "insufficient_memory";
    return nullptr;
  }
  ++counters_.hits;
  ++entry.hits;
  lru_.remove(sql);
  lru_.push_back(sql);
  if (reason != nullptr) *reason = "hit";
  if (saved_opt_ms != nullptr) *saved_opt_ms = entry.opt_time_ms;
  if (entry_hits != nullptr) *entry_hits = entry.hits;
  if (memo_out != nullptr)
    *memo_out = entry.memo != nullptr ? entry.memo->Clone() : nullptr;
  std::unique_ptr<PlanNode> clone = entry.plan->Clone();
  clone->PostOrder([](PlanNode* n) {
    n->improved = n->est;
    n->mem_budget_pages = 0;
  });
  return clone;
}

void PlanCorrectionCache::InvalidateTable(const std::string& table) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    const bool references =
        std::any_of(it->second.marks.begin(), it->second.marks.end(),
                    [&](const PlanCacheTableMark& m) { return m.table == table; });
    if (references) {
      lru_.remove(it->first);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void PlanCorrectionCache::Clear() {
  entries_.clear();
  lru_.clear();
}

void PlanCorrectionCache::EnforceCapacity() {
  while (entries_.size() > opts_.max_entries && !lru_.empty()) {
    entries_.erase(lru_.front());
    lru_.pop_front();
  }
}

std::string PlanCorrectionCache::Describe() const {
  std::ostringstream os;
  os << "plan-correction cache: " << entries_.size() << " entr"
     << (entries_.size() == 1 ? "y" : "ies") << " (hits=" << counters_.hits
     << " misses=" << counters_.misses
     << " installs=" << counters_.installs
     << " schema_evict=" << counters_.schema_evictions
     << " stale_evict=" << counters_.stale_evictions
     << " mem_reject=" << counters_.memory_rejects << ")\n";
  for (const auto& [sql, entry] : entries_) {
    os << "  [" << entry.hits << " hit" << (entry.hits == 1 ? "" : "s")
       << ", saves " << entry.opt_time_ms << "ms opt, mem "
       << entry.query_mem_pages << "pg] " << sql << "\n";
    for (const PlanCacheTableMark& m : entry.marks) {
      os << "      " << m.table << ": rows=" << m.row_count
         << " activity=" << m.update_activity << "\n";
    }
  }
  return os.str();
}

}  // namespace reoptdb
