# Empty compiler generated dependencies file for reopt_extension_test.
# This may be replaced when dependencies are built.
