// Cardinality and selectivity estimation.
//
// Standard System-R-style estimation over catalog statistics: histograms
// when available, distinct counts for equality, magic numbers as a last
// resort, independence across conjuncts, and 1/max(V_l, V_r) for equi-joins.
// These assumptions are exactly the error sources the paper targets
// (footnote 2: stale histograms, correlated attributes, opaque predicates;
// [9]: errors grow exponentially with join count).

#ifndef REOPTDB_OPTIMIZER_SELECTIVITY_H_
#define REOPTDB_OPTIMIZER_SELECTIVITY_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/feedback_store.h"
#include "obs/query_trace.h"
#include "plan/query_spec.h"

namespace reoptdb {

/// \brief Statistics derived for an intermediate planning relation.
struct DerivedRel {
  double rows = 0;
  double avg_tuple_bytes = 0;
  /// QuerySpec relation ordinals this derivation covers (single element for
  /// base relations, the union for joins) — keys feedback-store lookups.
  std::set<int> rels;
  /// Qualified column name ("alias.col") -> propagated stats.
  std::map<std::string, ColumnStats> cols;

  /// Estimated size in pages (slotted-page overhead included).
  double Pages() const;

  const ColumnStats* Find(const std::string& qualified) const {
    auto it = cols.find(qualified);
    return it == cols.end() ? nullptr : &it->second;
  }
};

/// Observed statistics for a base relation *after* its filters, collected
/// at run time and fed back into re-optimization ("the optimizer is
/// re-invoked with new statistics", paper Section 2.4). Keyed by alias.
using BaseRelOverrides = std::map<std::string, DerivedRel>;

/// \brief Estimator bound to one query's catalog snapshot.
class Estimator {
 public:
  /// `histogram_joins` enables bucket-overlap equi-join estimation — a
  /// post-1998 technique that sees partial/disjoint key domains. Default
  /// off: the paper-era baseline is the System-R 1/max(V) formula, and the
  /// reproduction depends on its blind spots (see DESIGN.md §7).
  /// `feedback`, when set, is consulted before synthetic statistics: a
  /// non-stale entry for the same (table, predicate-signature) or join
  /// signature replaces the derived cardinality (partial entries only ever
  /// raise it). Applications are appended to `feedback_log` when provided
  /// (deduplicated per signature — join enumeration revisits subsets).
  Estimator(const Catalog* catalog, const QuerySpec* spec,
            const BaseRelOverrides* overrides = nullptr,
            bool histogram_joins = false,
            const CardinalityFeedbackStore* feedback = nullptr,
            std::vector<FeedbackApplied>* feedback_log = nullptr)
      : catalog_(catalog),
        spec_(spec),
        overrides_(overrides),
        histogram_joins_(histogram_joins),
        feedback_(feedback),
        feedback_log_(feedback_log) {}

  /// Stats for relation `rel_idx` after applying its pushed-down filters.
  /// Run-time overrides, when present, replace the catalog-derived result.
  Result<DerivedRel> BaseRel(int rel_idx) const;

  /// Stats for relation `rel_idx` before any filters.
  Result<DerivedRel> RawRel(int rel_idx) const;

  /// Combined selectivity of the spec's filters on `rel_idx`.
  Result<double> FilterSelectivity(int rel_idx) const;

  /// Selectivity of a single filter given the column's stats (may be null).
  static double OnePredSelectivity(const ColumnStats* cs, const FilterPred& f,
                                   double rows);

  /// Join of two derived relations over the given equi-join predicates.
  /// Equivalent to JoinShallow followed by FillJoinCols.
  DerivedRel Join(const DerivedRel& left, const DerivedRel& right,
                  const std::vector<const JoinPred*>& preds) const;

  /// Join cardinality/size estimate WITHOUT the per-column stats merge:
  /// `rows` (feedback-corrected, exactly as Join computes it),
  /// `avg_tuple_bytes` and `rels` are filled; `cols` is left empty.
  /// Feedback lookup and logging happen here (once), so a later
  /// FillJoinCols completes the result with no further side effects. The
  /// incremental re-planner costs every candidate from the shallow
  /// estimate and only pays for the column merge on candidates it keeps.
  /// `prefeedback_rows`, when non-null, receives the row estimate before
  /// the feedback correction (FillJoinCols needs it to reproduce Join's
  /// distinct-count clamp ordering exactly).
  DerivedRel JoinShallow(const DerivedRel& left, const DerivedRel& right,
                         const std::vector<const JoinPred*>& preds,
                         double* prefeedback_rows = nullptr) const;

  /// Completes a JoinShallow result: merges the input column stats and
  /// clamps distinct counts exactly as Join does (to the minimum of the
  /// pre- and post-feedback row estimates). Pure; no feedback access.
  static void FillJoinCols(DerivedRel* out, const DerivedRel& left,
                           const DerivedRel& right, double prefeedback_rows);

  /// Estimated number of groups for GROUP BY over `group_cols`.
  static double GroupCount(const DerivedRel& input,
                           const std::vector<std::string>& qualified_cols);

 private:
  /// Applies a feedback-store correction to a freshly derived base rel.
  void ApplyBaseFeedback(int rel_idx, DerivedRel* rel) const;
  /// Applies a feedback-store correction to a join result.
  void ApplyJoinFeedback(DerivedRel* out) const;
  void LogFeedback(FeedbackApplied rec) const;

  /// Qualified "alias.col" names for a join predicate, cached per spec
  /// predicate — join enumeration calls JoinShallow O(2^n) times and the
  /// string concatenations dominated its profile.
  const std::pair<std::string, std::string>& PredNames(const JoinPred* p) const;

  const Catalog* catalog_;
  const QuerySpec* spec_;
  const BaseRelOverrides* overrides_;
  bool histogram_joins_;
  const CardinalityFeedbackStore* feedback_;
  std::vector<FeedbackApplied>* feedback_log_;
  /// Signatures already logged (join enumeration revisits subsets).
  mutable std::set<std::string> logged_;
  /// Lazily built cache indexed like spec_->joins (see PredNames).
  mutable std::vector<std::pair<std::string, std::string>> pred_names_;
  /// Fallback slot for predicates not backed by spec_->joins.
  mutable std::pair<std::string, std::string> pred_names_scratch_;
};

}  // namespace reoptdb

#endif  // REOPTDB_OPTIMIZER_SELECTIVITY_H_
