// Segment scheduler / dispatcher (paper Section 3.1).
//
// A plan is partitioned into stages at blocking-operator boundaries: each
// stage runs one pipeline to completion (a hash-join build, an aggregate
// absorb, a sort's run formation, a materialization), and the final
// delivery stage streams the root's output. Statistics collectors finalize
// when the pipeline draining them completes; after every stage the
// dispatcher reports newly finalized collectors so the Dynamic
// Re-Optimization controller can act between stages.

#ifndef REOPTDB_EXEC_SCHEDULER_H_
#define REOPTDB_EXEC_SCHEDULER_H_

#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "exec/operator.h"
#include "exec/stats_collector_op.h"
#include "storage/heap_file.h"

namespace reoptdb {

/// \brief Stage-by-stage executor for one physical plan.
class PipelineExecutor {
 public:
  /// Builds the operator tree and computes the stage sequence.
  static Result<std::unique_ptr<PipelineExecutor>> Create(ExecContext* ctx,
                                                          PlanNode* root);

  /// Outcome of one stage.
  struct StageResult {
    bool finished = false;       ///< delivery stage completed
    PlanNode* stage_node = nullptr;  ///< blocking node run (null = delivery)
    /// Collectors that finalized during this stage.
    std::vector<PlanNode*> new_collectors;
  };

  /// Runs the next stage. During the delivery stage, output rows are
  /// appended to `*sink` (pass nullptr to discard them).
  Result<StageResult> RunNextStage(std::vector<Tuple>* sink);

  /// True when stages remain (including delivery).
  bool HasMoreStages() const { return !delivery_done_; }

  /// The next stage's blocking node (nullptr when the next stage is
  /// delivery).
  PlanNode* PeekNextStage() const {
    return next_stage_ < stages_.size() ? stages_[next_stage_] : nullptr;
  }

  /// Blocking nodes that have not started yet (their stage has not run).
  std::vector<PlanNode*> PendingStages() const;

  /// Plan modification support: runs `node`'s remaining output to
  /// completion, appending every tuple to `temp` (the paper's redirect of
  /// the in-flight operator's output to a temporary file). The executor
  /// must be abandoned afterwards. Returns the number of rows written.
  Result<uint64_t> MaterializeInto(PlanNode* node, HeapFile* temp);

  Status Open();
  Status Close();

  PlanNode* root() const { return root_; }
  Operator* FindOp(const PlanNode* node) const;

 private:
  PipelineExecutor(ExecContext* ctx, PlanNode* root)
      : ctx_(ctx), root_(root) {}

  void CollectStages(PlanNode* node);
  void IndexOps(Operator* op);
  void SweepCollectors(StageResult* result);

  ExecContext* ctx_;
  PlanNode* root_;
  std::unique_ptr<Operator> root_op_;
  std::vector<PlanNode*> stages_;
  size_t next_stage_ = 0;
  bool delivery_done_ = false;
  bool opened_ = false;

  std::vector<std::pair<PlanNode*, StatsCollectorOp*>> collectors_;
  std::set<int> reported_collectors_;
  /// Node → operator lookup. FindOp runs once per stage and once per
  /// re-optimization probe; a hash map keeps it O(1) on bushy plans where
  /// the linear scan it replaced was quadratic across a stage sequence.
  std::unordered_map<const PlanNode*, Operator*> op_index_;
};

}  // namespace reoptdb

#endif  // REOPTDB_EXEC_SCHEDULER_H_
